(* Randomized correctness fuzzing: seeded generators + the ten
   oracles of lib/check (DESIGN.md §11).  Exit status 0 iff every
   case passed. *)

open Cmdliner

let run seed count start size oracles no_shrink verbose =
  let oracles =
    match oracles with
    | [] -> Check.Fuzz.all_oracles
    | names ->
        List.map
          (fun n ->
            match Check.Fuzz.oracle_of_name n with
            | Some o -> o
            | None ->
                Printf.eprintf
                  "fuzz: unknown oracle %S (known: %s)\n" n
                  (String.concat ", "
                     (List.map Check.Fuzz.oracle_name
                        Check.Fuzz.all_oracles));
                exit 2)
          names
  in
  let cfg =
    {
      Check.Fuzz.seed;
      count;
      start;
      size;
      oracles;
      shrink = not no_shrink;
      verbose;
    }
  in
  let summary = Check.Fuzz.run ~out:Format.err_formatter cfg in
  Check.Fuzz.pp_summary Format.std_formatter summary;
  if Check.Fuzz.all_passed summary then 0 else 1

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let count =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N" ~doc:"Cases per oracle.")

let start =
  Arg.(
    value & opt int 0
    & info [ "start" ] ~docv:"I"
        ~doc:"First case index; use with --count 1 to replay one case.")

let size =
  Arg.(
    value & opt int 8
    & info [ "size" ] ~docv:"N"
        ~doc:"Approximate instance size (operators / LP variables).")

let oracles =
  Arg.(
    value & opt_all string []
    & info [ "oracle" ] ~docv:"NAME"
        ~doc:
          "Oracle to run (repeatable): lp-certificate, ilp-brute, \
           cut-enumeration, split-equivalence, degradation, \
           placement-equivalence, service-equivalence, \
           degraded-soundness ($(b,degraded) for short), \
           tree-equivalence ($(b,tree) for short), \
           sched-equivalence ($(b,sched) for short).  Default: all \
           ten.")

let no_shrink =
  Arg.(
    value & flag
    & info [ "no-shrink" ] ~doc:"Report failures without minimising them.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Progress.")

let cmd =
  let doc = "randomized correctness oracles for the Wishbone reproduction" in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seed $ count $ start $ size $ oracles $ no_shrink $ verbose)

let () = exit (Cmd.eval' cmd)
