(* The wishbone command-line tool: profile, partition, rate-sweep and
   deploy the bundled applications from the shell.

     wishbone platforms
     wishbone profile  -a speech -p tmote
     wishbone partition -a eeg -p tmote --mode permissive --rate 0.5
     wishbone sweep    -a speech -p tmote --from 0.01 --to 0.2 --steps 10
     wishbone deploy   -a speech -p tmote --nodes 20 --cut 6
     wishbone serve    --queries fleet.txt --shards 2 --repeat 2
     wishbone netprofile --nodes 20 --target 0.9 *)

open Cmdliner

(* ---- shared arguments ---- *)

type app = Speech | Eeg | Eeg1

let app_conv =
  let parse = function
    | "speech" -> Ok Speech
    | "eeg" -> Ok Eeg
    | "eeg1" -> Ok Eeg1
    | s -> Error (`Msg (Printf.sprintf "unknown app %S (speech|eeg|eeg1)" s))
  in
  let print ppf = function
    | Speech -> Format.fprintf ppf "speech"
    | Eeg -> Format.fprintf ppf "eeg"
    | Eeg1 -> Format.fprintf ppf "eeg1"
  in
  Arg.conv (parse, print)

let app_arg =
  Arg.(
    value
    & opt app_conv Speech
    & info [ "a"; "app" ] ~docv:"APP"
        ~doc:"Application: speech (MFCC pipeline), eeg (22 channels), eeg1 \
              (single channel).")

let platform_conv =
  let parse s =
    match Profiler.Platform.find s with
    | p -> Ok p
    | exception Not_found ->
        Error
          (`Msg
            (Printf.sprintf "unknown platform %S; try: %s" s
               (String.concat ", "
                  (List.map
                     (fun p -> p.Profiler.Platform.name)
                     Profiler.Platform.all))))
  in
  let print ppf p = Format.fprintf ppf "%s" p.Profiler.Platform.name in
  Arg.conv (parse, print)

let platform_arg =
  Arg.(
    value
    & opt platform_conv Profiler.Platform.tmote_sky
    & info [ "p"; "platform" ] ~docv:"PLATFORM"
        ~doc:"Embedded node platform (see $(b,wishbone platforms)).")

let duration_arg =
  Arg.(
    value & opt float 30.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Profiling trace length.")

let mode_conv =
  let parse = function
    | "conservative" -> Ok Wishbone.Movable.Conservative
    | "permissive" -> Ok Wishbone.Movable.Permissive
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print ppf = function
    | Wishbone.Movable.Conservative -> Format.fprintf ppf "conservative"
    | Wishbone.Movable.Permissive -> Format.fprintf ppf "permissive"
  in
  Arg.conv (parse, print)

let mode_arg =
  Arg.(
    value
    & opt mode_conv Wishbone.Movable.Conservative
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Stateful relocation mode: conservative refuses to put loss \
           upstream of state; permissive relocates with per-node state \
           tables (§2.1.1).")

(* ---- tier chains (--tiers) ---- *)

let tiers_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tiers" ] ~docv:"PLAT,PLAT,..."
        ~doc:
          "Solve over a multi-tier platform chain instead of the two-way \
           cut: comma-separated platform names, node-most first (e.g. \
           $(b,tmote,gumstix)); an unbudgeted central server is appended \
           implicitly.  Overrides $(b,--platform) for the node tier.")

let parse_chain s =
  let names =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if names = [] then Error "--tiers: empty platform chain"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match Profiler.Platform.find n with
          | p -> go (p :: acc) rest
          | exception Not_found ->
              Error (Printf.sprintf "--tiers: unknown platform %S" n))
    in
    go [] names

(* The spec (built for the chain's first platform) is tier 0, each
   further platform a middle tier, plus an implicit unbudgeted central
   server.  Link k leaves tier k on that tier's radio; the per-byte
   objective weight falls off by 0.3 per hop — Three_tier's
   beta_micro default, upstream radio bytes being the scarce
   resource. *)
let placement_of_chain (spec : Wishbone.Spec.t) raw middles =
  let n = Array.length spec.Wishbone.Spec.cpu in
  let node_tier =
    {
      Wishbone.Placement.tname = "node";
      cpu = spec.Wishbone.Spec.cpu;
      cpu_budget = spec.Wishbone.Spec.cpu_budget;
      alpha = spec.Wishbone.Spec.alpha;
    }
  in
  let middle_tiers =
    List.map
      (fun (p : Profiler.Platform.t) ->
        let costed = Profiler.Profile.cost raw p in
        {
          Wishbone.Placement.tname = p.name;
          cpu = costed.Profiler.Profile.cpu_fraction;
          cpu_budget = p.cpu_budget;
          alpha = 0.;
        })
      middles
  in
  let server =
    {
      Wishbone.Placement.tname = "server";
      cpu = Array.make n 0.;
      cpu_budget = infinity;
      alpha = 0.;
    }
  in
  let links =
    {
      Wishbone.Placement.lname = "radio0";
      net_budget = spec.Wishbone.Spec.net_budget;
      beta = spec.Wishbone.Spec.beta;
    }
    :: List.mapi
         (fun i (p : Profiler.Platform.t) ->
           {
             Wishbone.Placement.lname = Printf.sprintf "uplink%d" (i + 1);
             net_budget = p.Profiler.Platform.radio_bytes_per_sec;
             beta =
               spec.Wishbone.Spec.beta *. (0.3 ** Float.of_int (i + 1));
           })
         middles
  in
  Wishbone.Placement.v ~spec
    ~tiers:((node_tier :: middle_tiers) @ [ server ])
    ~links ()

(* ---- tier trees (--topology) ---- *)

(* A rooted tier tree over the listed platforms, node-most first, plus
   the implicit unbudgeted central server as the root (one past the
   last listed platform).  [parents = None] is the plain chain, routed
   through [placement_of_chain] so it stays byte-identical to
   --tiers. *)
type topo_spec = {
  plats : Profiler.Platform.t list;
  parents : int array option;
}

let topology_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "topology" ] ~docv:"PLAT[>K],..."
        ~doc:
          "Solve over a rooted tier $(i,tree) instead of a chain: \
           comma-separated $(b,PLATFORM[>K]) entries, node-most first, \
           where $(b,>K) uplinks the tier to the K'th entry (0-based; K \
           may also be one past the last entry, naming the implicit \
           unbudgeted central server at the root).  Without $(b,>K) an \
           entry uplinks to the next one, so a list with no $(b,>K) at \
           all is exactly the $(b,--tiers) chain.  Example: \
           $(b,tmote>2,tmote>2,gumstix) is a Y — two motes sharing one \
           gumstix whose uplink reaches the server.")

let parse_topology s =
  if not (String.contains s '>') then
    Result.map (fun plats -> { plats; parents = None }) (parse_chain s)
  else
    let toks =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
    in
    let n = List.length toks in
    if n = 0 then Error "--topology: empty platform list"
    else
      let rec go i plats parents = function
        | [] -> (
            let parents = Array.of_list (List.rev (-1 :: parents)) in
            match Wishbone.Placement.Topology.of_parents parents with
            | _ -> Ok { plats = List.rev plats; parents = Some parents }
            | exception Invalid_argument m -> Error ("--topology: " ^ m))
        | tok :: rest -> (
            let name, parent =
              match String.index_opt tok '>' with
              | None -> (tok, Ok (i + 1))
              | Some j -> (
                  let k =
                    String.sub tok (j + 1) (String.length tok - j - 1)
                  in
                  ( String.sub tok 0 j,
                    match int_of_string_opt (String.trim k) with
                    | Some p when p > i && p <= n -> Ok p
                    | Some p ->
                        Error
                          (Printf.sprintf
                             "--topology: %S: parent %d not in (%d, %d] \
                              (parents must sit later in the list; %d is \
                              the server)"
                             tok p i n n)
                    | None ->
                        Error
                          (Printf.sprintf "--topology: bad parent index in %S"
                             tok) ))
            in
            match parent with
            | Error m -> Error m
            | Ok p -> (
                match Profiler.Platform.find (String.trim name) with
                | plat -> go (i + 1) (plat :: plats) (p :: parents) rest
                | exception Not_found ->
                    Error
                      (Printf.sprintf "--topology: unknown platform %S" name)))
      in
      go 0 [] [] toks

(* The tree analogue of [placement_of_chain]: tier 0 is the spec, each
   further listed platform a costed tier, the implicit server the
   root.  Link k is tier k's uplink; its per-byte weight falls off by
   0.3 per hop of tree depth $(i,below) it (the leafward radios being
   the scarce resource), which on a chain reproduces the historical
   0.3^k fall-off exactly. *)
let placement_of_topology (spec : Wishbone.Spec.t) raw plats parents =
  let topo = Wishbone.Placement.Topology.of_parents parents in
  let n = Array.length spec.Wishbone.Spec.cpu in
  let n_tiers = Wishbone.Placement.Topology.n_tiers topo in
  let depth_below = Array.make n_tiers 0 in
  (* children always carry smaller indices, so one ascending pass *)
  for k = 0 to n_tiers - 1 do
    List.iter
      (fun c ->
        depth_below.(k) <- Int.max depth_below.(k) (depth_below.(c) + 1))
      (Wishbone.Placement.Topology.children topo k)
  done;
  let node_tier =
    {
      Wishbone.Placement.tname = "node";
      cpu = spec.Wishbone.Spec.cpu;
      cpu_budget = spec.Wishbone.Spec.cpu_budget;
      alpha = spec.Wishbone.Spec.alpha;
    }
  in
  let rest =
    List.mapi
      (fun i (p : Profiler.Platform.t) ->
        let costed = Profiler.Profile.cost raw p in
        {
          Wishbone.Placement.tname = Printf.sprintf "%s#%d" p.name (i + 1);
          cpu = costed.Profiler.Profile.cpu_fraction;
          cpu_budget = p.cpu_budget;
          alpha = 0.;
        })
      (List.tl plats)
  in
  let server =
    {
      Wishbone.Placement.tname = "server";
      cpu = Array.make n 0.;
      cpu_budget = infinity;
      alpha = 0.;
    }
  in
  let links =
    List.mapi
      (fun k (p : Profiler.Platform.t) ->
        if k = 0 then
          {
            Wishbone.Placement.lname = "radio0";
            net_budget = spec.Wishbone.Spec.net_budget;
            beta = spec.Wishbone.Spec.beta;
          }
        else
          {
            Wishbone.Placement.lname = Printf.sprintf "uplink%d" k;
            net_budget = p.Profiler.Platform.radio_bytes_per_sec;
            beta =
              spec.Wishbone.Spec.beta
              *. (0.3 ** Float.of_int depth_below.(k));
          })
      plats
  in
  Wishbone.Placement.v ~topology:topo ~spec
    ~tiers:((node_tier :: rest) @ [ server ])
    ~links ()

let placement_of_topo_spec spec raw ts =
  match ts.parents with
  | None -> placement_of_chain spec raw (List.tl ts.plats)
  | Some parents -> placement_of_topology spec raw ts.plats parents

(* ---- app construction ---- *)

type built = {
  graph : Dataflow.Graph.t;
  profile : duration:float -> Profiler.Profile.raw;
  label : string;
}

let build_app = function
  | Speech ->
      let t = Apps.Speech.build () in
      {
        graph = t.Apps.Speech.graph;
        profile = (fun ~duration -> Apps.Speech.profile ~duration t);
        label = "speech detection (MFCC pipeline)";
      }
  | Eeg ->
      let t = Apps.Eeg.build () in
      {
        graph = t.Apps.Eeg.graph;
        profile = (fun ~duration -> Apps.Eeg.profile ~duration t);
        label = "EEG seizure detection, 22 channels";
      }
  | Eeg1 ->
      let t = Apps.Eeg.single_channel () in
      {
        graph = t.Apps.Eeg.graph;
        profile = (fun ~duration -> Apps.Eeg.profile ~duration t);
        label = "EEG seizure detection, single channel";
      }

(* ---- commands ---- *)

let platforms_cmd =
  let run () =
    Printf.printf "%-10s %10s %12s %14s  %s\n" "name" "clock" "float cyc"
      "radio B/s" "description";
    List.iter
      (fun (p : Profiler.Platform.t) ->
        Printf.printf "%-10s %7.0f MHz %12.0f %14.0f  %s\n" p.name
          (p.clock_hz /. 1e6) p.cycles_float p.radio_bytes_per_sec
          p.description)
      Profiler.Platform.all
  in
  Cmd.v (Cmd.info "platforms" ~doc:"List the platform catalog.")
    Term.(const run $ const ())

let profile_cmd =
  let run app platform duration =
    let b = build_app app in
    Printf.printf "profiling %s for %.0f s...\n" b.label duration;
    let raw = b.profile ~duration in
    let costed = Profiler.Profile.cost raw platform in
    Printf.printf "%-16s %6s %14s %10s %12s\n" "operator" "fires" "us/fire"
      "cpu %" "out B/s";
    Array.iter
      (fun (op : Dataflow.Op.t) ->
        let out_bps =
          List.fold_left
            (fun acc (e : Dataflow.Graph.edge) ->
              acc +. Profiler.Profile.edge_bytes_per_sec raw e.eid)
            0.
            (Dataflow.Graph.succs b.graph op.id)
        in
        Printf.printf "%-16s %6d %14.1f %10.3f %12.1f\n" op.name
          (Profiler.Profile.op_fires raw op.id)
          (costed.seconds_per_fire.(op.id) *. 1e6)
          (100. *. costed.cpu_fraction.(op.id))
          out_bps)
      (Dataflow.Graph.ops b.graph)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile an application on synthetic sample data (§3).")
    Term.(const run $ app_arg $ platform_arg $ duration_arg)

let partition_cmd =
  let rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "rate" ] ~docv:"X" ~doc:"Input rate multiplier (§4.3).")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Write a GraphViz visualization of the partition.")
  in
  let search_arg =
    Arg.(
      value & flag
      & info [ "search" ]
          ~doc:"Binary-search the maximum sustainable rate instead of \
                partitioning at --rate.")
  in
  let max_pivots_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-pivots" ] ~docv:"N"
          ~doc:
            "Simplex pivot budget per LP relaxation.  When the budget \
             runs out mid-search the best incumbent found so far is \
             reported together with its optimality gap.")
  in
  let time_limit_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-limit-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for the branch & bound, in milliseconds. \
             On expiry the best incumbent found so far is reported \
             together with its optimality gap.")
  in
  let node_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-budget" ] ~docv:"N"
          ~doc:
            "Deterministic branch & bound node budget: counts work \
             units, not seconds, so — unlike $(b,--time-limit-ms) — a \
             bounded run stops at the same node and returns the same \
             incumbent and gap on any machine.")
  in
  let pivot_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pivot-budget" ] ~docv:"N"
          ~doc:
            "Deterministic tree-wide simplex pivot budget, checked at \
             every node boundary and threaded into each LP solve.  Like \
             $(b,--node-budget) the answer is machine-independent.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Concurrent branch & bound node expansions (deterministic: \
             the partition returned is the same for any worker count).")
  in
  let pricing_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("devex", Lp.Simplex.Devex); ("dantzig", Lp.Simplex.Dantzig) ]))
          None
      & info [ "pricing" ] ~docv:"RULE"
          ~doc:
            "Simplex pricing rule: $(b,devex) (reference-framework \
             weights, the default) or $(b,dantzig) (candidate-list most \
             negative reduced cost).  Either rule reaches the same \
             optimum; only the pivot trajectory differs.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("wave", Lp.Branch_bound.Wave);
                  ("steal", Lp.Branch_bound.Steal);
                ]))
          None
      & info [ "schedule" ] ~docv:"MODE"
          ~doc:
            "Node scheduling across --workers: $(b,wave) (deterministic \
             bulk-synchronous waves, the default) or $(b,steal) \
             (work-stealing worker domains; same optimum, \
             timing-dependent node order).")
  in
  let solver_options base max_pivots time_limit_ms node_budget pivot_budget
      workers pricing schedule =
    let o = base in
    {
      o with
      Lp.Branch_bound.workers;
      schedule =
        (match schedule with
        | Some s -> s
        | None -> o.Lp.Branch_bound.schedule);
      time_limit =
        (match time_limit_ms with
        | Some ms -> ms /. 1000.
        | None -> o.Lp.Branch_bound.time_limit);
      max_nodes =
        (match node_budget with
        | Some n -> n
        | None -> o.Lp.Branch_bound.max_nodes);
      pivot_budget =
        (match pivot_budget with
        | Some n -> n
        | None -> o.Lp.Branch_bound.pivot_budget);
      simplex =
        (let s = o.Lp.Branch_bound.simplex in
         let s =
           match max_pivots with
           | Some p -> { s with Lp.Simplex.max_pivots = p }
           | None -> s
         in
         match pricing with
         | Some p -> { s with Lp.Simplex.pricing = p }
         | None -> s);
    }
  in
  (* process-wide solver work counters, reset at solve entry: the
     verbose tail of the report, for eyeballing the effect of
     --pricing / --schedule / --workers on actual work done *)
  let report_counters (options : Lp.Branch_bound.options) ~fb0 =
    let c = Lp.Sparse.counters () in
    Printf.printf
      "solver counters: pricing %s, schedule %s, %d pivots, %d \
       refactorisations, %d FT updates (%d entries), %d dense fallbacks\n"
      (match options.Lp.Branch_bound.simplex.Lp.Simplex.pricing with
      | Lp.Simplex.Devex -> "devex"
      | Lp.Simplex.Dantzig -> "dantzig")
      (match options.Lp.Branch_bound.schedule with
      | Lp.Branch_bound.Wave -> "wave"
      | Lp.Branch_bound.Steal -> "steal")
      (Lp.Simplex.cumulative_pivots ())
      c.Lp.Sparse.refactorisations c.Lp.Sparse.ft_updates
      c.Lp.Sparse.ft_entries
      (Lp.Sparse.dense_fallbacks () - fb0)
  in
  (* on budget exhaustion the solver keeps its best incumbent; surface
     it with the gap to the strongest remaining bound instead of
     failing *)
  let report_budget ~objective (stats : Lp.Branch_bound.stats) =
    if not stats.Lp.Branch_bound.proved_optimal then
      let bound = stats.Lp.Branch_bound.best_bound in
      if Float.is_nan bound then
        Printf.printf
          "budget exhausted: best incumbent so far (no dual bound available)\n"
      else
        Printf.printf
          "budget exhausted: best incumbent so far, gap %.2f%% (objective \
           %g, strongest bound %g)\n"
          (100. *. Float.abs (objective -. bound)
          /. Float.max 1. (Float.abs objective))
          objective bound
  in
  let budget_failure m =
    Printf.eprintf
      "%s before any feasible partition was found; raise --max-pivots, \
       --node-budget, --pivot-budget or --time-limit-ms\n"
      m;
    exit 1
  in
  let run app platform duration mode rate dot search tiers topology max_pivots
      time_limit_ms node_budget pivot_budget workers pricing schedule =
    (* the rate search keeps its looser per-solve budgets unless
       overridden explicitly *)
    let options =
      solver_options
        (if search then Wishbone.Rate_search.default_search_options
         else Lp.Branch_bound.default_options)
        max_pivots time_limit_ms node_budget pivot_budget workers pricing
        schedule
    in
    Lp.Simplex.reset_cumulative_pivots ();
    Lp.Sparse.reset_counters ();
    let fb0 = Lp.Sparse.dense_fallbacks () in
    let b = build_app app in
    let raw = b.profile ~duration in
    let ts =
      match (tiers, topology) with
      | Some _, Some _ ->
          Printf.eprintf "error: --tiers and --topology are mutually exclusive\n";
          exit 1
      | Some s, None -> (
          match parse_chain s with
          | Ok plats -> Some { plats; parents = None }
          | Error m ->
              Printf.eprintf "error: %s\n" m;
              exit 1)
      | None, Some s -> (
          match parse_topology s with
          | Ok t -> Some t
          | Error m ->
              Printf.eprintf "error: %s\n" m;
              exit 1)
      | None, None -> None
    in
    let node_platform =
      match ts with Some { plats = p :: _; _ } -> p | _ -> platform
    in
    let write_dot assignment =
      match dot with
      | Some path ->
          let costed = Profiler.Profile.cost raw node_platform in
          Wishbone.Viz.save ~path ~assignment ~costed raw;
          Printf.printf "wrote %s\n" path
      | None -> ()
    in
    match Wishbone.Spec.of_profile ~mode ~node_platform raw with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 1
    | Ok spec -> (
        match ts with
        | None -> (
            let finish (report : Wishbone.Partitioner.report) =
              Format.printf "%a@."
                (Wishbone.Partitioner.pp_report b.graph)
                report;
              report_counters options ~fb0;
              report_budget ~objective:report.objective report.solver;
              write_dot report.assignment
            in
            if search then
              match Wishbone.Rate_search.search ~options spec with
              | Some { rate_multiplier; report } ->
                  Printf.printf "maximum sustainable rate: x%.4f\n"
                    rate_multiplier;
                  finish report
              | None ->
                  print_endline "no feasible partition at any rate";
                  exit 1
            else
              let spec = Wishbone.Spec.scale_rate spec rate in
              match Wishbone.Partitioner.solve ~options spec with
              | Wishbone.Partitioner.Partitioned report -> finish report
              | Wishbone.Partitioner.No_feasible_partition ->
                  print_endline
                    "no feasible partition at this rate; try --search";
                  exit 1
              | Wishbone.Partitioner.Solver_failure m
                when m = "solver budget exhausted" ->
                  budget_failure m
              | Wishbone.Partitioner.Solver_failure m ->
                  Printf.eprintf "solver failure: %s\n" m;
                  exit 1)
        | Some ts -> (
            let pl = placement_of_topo_spec spec raw ts in
            let finish pl (r : Wishbone.Placement.report) =
              Format.printf "%a@." (Wishbone.Placement.pp_report b.graph pl) r;
              report_counters options ~fb0;
              report_budget ~objective:r.objective r.solver;
              write_dot (Array.map (fun tier -> tier = 0) r.tier_of)
            in
            if search then
              match Wishbone.Rate_search.search_placement ~options pl with
              | Some { placement_multiplier; placement_report; placement_exact }
                ->
                  Printf.printf "maximum sustainable rate: x%.4f%s\n"
                    placement_multiplier
                    (if placement_exact then ""
                     else
                       " (degraded: a search probe died on the solver \
                        budget; this rate is a safe lower bound)");
                  finish
                    (Wishbone.Placement.scale_rate pl placement_multiplier)
                    placement_report
              | None ->
                  print_endline "no feasible placement at any rate";
                  exit 1
            else
              let pl = Wishbone.Placement.scale_rate pl rate in
              match Wishbone.Placement.solve ~options pl with
              | Wishbone.Placement.Partitioned r -> finish pl r
              | Wishbone.Placement.No_feasible_partition ->
                  print_endline
                    "no feasible placement at this rate; try --search";
                  exit 1
              | Wishbone.Placement.Solver_failure m
                when m = "solver budget exhausted" ->
                  budget_failure m
              | Wishbone.Placement.Solver_failure m ->
                  Printf.eprintf "solver failure: %s\n" m;
                  exit 1))
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:
         "Compute the optimal node/server partition (§4), or — with \
          $(b,--tiers) / $(b,--topology) — the optimal placement over a \
          multi-tier platform chain or rooted tier tree.")
    Term.(
      const run $ app_arg $ platform_arg $ duration_arg $ mode_arg $ rate_arg
      $ dot_arg $ search_arg $ tiers_arg $ topology_arg $ max_pivots_arg
      $ time_limit_arg $ node_budget_arg $ pivot_budget_arg $ workers_arg
      $ pricing_arg $ schedule_arg)

let sweep_cmd =
  let from_arg =
    Arg.(value & opt float 0.25 & info [ "from" ] ~docv:"X" ~doc:"Lowest rate.")
  in
  let to_arg =
    Arg.(value & opt float 2.0 & info [ "to" ] ~docv:"X" ~doc:"Highest rate.")
  in
  let steps_arg =
    Arg.(value & opt int 8 & info [ "steps" ] ~docv:"N" ~doc:"Sweep points.")
  in
  let run app platform duration mode lo hi steps =
    let b = build_app app in
    let raw = b.profile ~duration in
    match Wishbone.Spec.of_profile ~mode ~node_platform:platform raw with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 1
    | Ok spec ->
        Printf.printf "%-10s %16s %16s %12s\n" "rate x" "ops on node"
          "cut B/s" "node cpu %";
        for i = 0 to steps - 1 do
          let mult =
            lo +. ((hi -. lo) *. Float.of_int i /. Float.of_int (Int.max 1 (steps - 1)))
          in
          match
            Wishbone.Partitioner.solve (Wishbone.Spec.scale_rate spec mult)
          with
          | Wishbone.Partitioner.Partitioned r ->
              Printf.printf "%-10.3f %16d %16.1f %12.1f\n" mult
                (List.length (Wishbone.Partitioner.node_ops r))
                r.net (100. *. r.cpu)
          | Wishbone.Partitioner.No_feasible_partition ->
              Printf.printf "%-10.3f %16s\n" mult "(does not fit)"
          | Wishbone.Partitioner.Solver_failure m ->
              Printf.printf "%-10.3f solver failure: %s\n" mult m
        done
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Partition across a range of input rates.")
    Term.(
      const run $ app_arg $ platform_arg $ duration_arg $ mode_arg $ from_arg
      $ to_arg $ steps_arg)

let deploy_cmd =
  let nodes_arg =
    Arg.(value & opt int 1 & info [ "nodes" ] ~docv:"N" ~doc:"Network size.")
  in
  let cut_arg =
    Arg.(
      value & opt int 6
      & info [ "cut" ] ~docv:"K"
          ~doc:"Pipeline cut: first K operators on the node (speech only).")
  in
  let sim_duration_arg =
    Arg.(
      value & opt float 60.
      & info [ "sim-duration" ] ~docv:"SECONDS" ~doc:"Simulated seconds.")
  in
  let faults_arg =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:"Inject faults: Gilbert-Elliott burst loss (--burst-loss) and \
                node crash/reboot cycles (--crash-rate).")
  in
  let burst_loss_arg =
    Arg.(
      value & opt float 0.1
      & info [ "burst-loss" ] ~docv:"P"
          ~doc:"Long-run extra loss probability injected as bursts (with \
                --faults).")
  in
  let crash_rate_arg =
    Arg.(
      value & opt float 0.
      & info [ "crash-rate" ] ~docv:"PER_SEC"
          ~doc:"Per-node crash rate in crashes/second (with --faults); state \
                is lost and the node reboots after a fixed delay.")
  in
  let reliable_arg =
    Arg.(
      value & flag
      & info [ "reliable" ]
          ~doc:"Use the end-to-end ack/retry transport instead of best-effort \
                delivery.")
  in
  let adaptive_arg =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:"Close the loop: run the adaptive controller, which probes \
                goodput and steps the rate down the §4.3 lattice and/or \
                repartitions until the target is met.")
  in
  let rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "rate" ] ~docv:"X" ~doc:"Input rate multiplier.")
  in
  let seed_arg =
    Arg.(value & opt int 5 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.")
  in
  let run_tiers_deploy ~ts ~replicas ~sim_duration ~rate ~seed t =
    let node_platform = List.hd ts.plats in
    let raw = Apps.Speech.profile ~duration:10. t in
    match
      Wishbone.Spec.of_profile ~mode:Wishbone.Movable.Conservative
        ~node_platform raw
    with
    | Error m ->
        Printf.eprintf "error: %s\n" m;
        exit 1
    | Ok spec -> (
        let spec = Wishbone.Spec.scale_rate spec rate in
        let pl = placement_of_topo_spec spec raw ts in
        match Wishbone.Placement.solve pl with
        | Wishbone.Placement.No_feasible_partition ->
            print_endline "no feasible placement at this rate";
            exit 1
        | Wishbone.Placement.Solver_failure m ->
            Printf.eprintf "solver failure: %s\n" m;
            exit 1
        | Wishbone.Placement.Partitioned r ->
            Format.printf "%a@."
              (Wishbone.Placement.pp_report t.Apps.Speech.graph pl)
              r;
            let n_links = Wishbone.Placement.n_tiers pl - 1 in
            (* every link is a bounded shedding channel so overload
               shows up as per-link drop counters, not silence *)
            let links =
              List.init n_links (fun k ->
                  Some
                    {
                      Runtime.Multirun.policy = Runtime.Shed.Drop_newest;
                      capacity = 8;
                      service = 1;
                      seed = seed + k;
                    })
            in
            let sources =
              List.map
                (fun (s : Netsim.Testbed.source_spec) -> (s.source, s.gen))
                (Apps.Speech.testbed_sources ~rate_mult:rate t)
            in
            let rounds = Int.max 1 (int_of_float sim_duration) in
            let tc =
              Wishbone.Deploy.run_tiers ~n_nodes:replicas ~links ~rounds
                ~placement:pl ~tier_of:r.tier_of ~sources ()
            in
            (* rounds injections per node at frame_rate*rate windows/s
               -> per-node offered B/s for the predicted-vs-measured
               comparison *)
            let per_sec bytes =
              Float.of_int bytes
              *. Apps.Speech.frame_rate *. rate
              /. Float.of_int (rounds * replicas)
            in
            Printf.printf "%-10s %16s %16s %10s\n" "link" "predicted B/s"
              "offered B/s" "dropped";
            for k = 0 to n_links - 1 do
              Printf.printf "%-10s %16.1f %16.1f %10d\n"
                pl.Wishbone.Placement.links.(k).Wishbone.Placement.lname
                tc.Wishbone.Deploy.predicted_link_net.(k)
                (per_sec tc.Wishbone.Deploy.offered_bytes.(k))
                tc.Wishbone.Deploy.link_dropped.(k)
            done;
            Printf.printf "sink outputs: %d\n"
              tc.Wishbone.Deploy.sink_outputs)
  in
  let run platform nodes cut sim_duration faults burst_loss crash_rate
      reliable adaptive rate seed tiers topology =
    let t = Apps.Speech.build () in
    let die m =
      Printf.eprintf "error: %s\n" m;
      exit 1
    in
    match (tiers, topology) with
    | Some _, Some _ -> die "--tiers and --topology are mutually exclusive"
    | Some s, None -> (
        match parse_chain s with
        | Error m -> die m
        | Ok plats ->
            run_tiers_deploy
              ~ts:{ plats; parents = None }
              ~replicas:nodes ~sim_duration ~rate ~seed t)
    | None, Some "testbed" ->
        (* the fig. 9/10 routing tree: every mote a leaf tier of the
           node platform, one radio hop from the basestation root; the
           sensing sources sit on tier 0, so the fan-out IS the
           topology and no extra tier-0 replication applies *)
        let n = Int.max 1 nodes in
        run_tiers_deploy
          ~ts:
            {
              plats = List.init n (fun _ -> platform);
              parents = Some (Netsim.Testbed.routing_parents ~n_nodes:n);
            }
          ~replicas:1 ~sim_duration ~rate ~seed t
    | None, Some s -> (
        match parse_topology s with
        | Error m -> die m
        | Ok ts ->
            run_tiers_deploy ~ts ~replicas:nodes ~sim_duration ~rate ~seed t)
    | None, None ->
    let assignment = Apps.Speech.cut_assignment t cut in
    let link =
      if platform.Profiler.Platform.radio_payload_bytes <= 64 then
        Netsim.Link.cc2420
      else Netsim.Link.wifi
    in
    let fault_spec =
      if not faults then Netsim.Faults.none
      else
        {
          Netsim.Faults.none with
          Netsim.Faults.crash_rate;
          burst =
            (if burst_loss > 0. then
               Some (Netsim.Faults.burst_of_loss burst_loss)
             else None);
        }
    in
    let transport =
      if reliable then Netsim.Transport.default_reliable ()
      else Netsim.Transport.Unreliable
    in
    let config =
      Netsim.Testbed.default_config ~n_nodes:nodes ~duration:sim_duration
        ~seed ~platform ~link ~faults:fault_spec ~transport ()
    in
    let sources ~rate =
      Apps.Speech.testbed_sources ~rate_mult:rate t
    in
    if adaptive then begin
      let raw = Apps.Speech.profile ~duration:10. t in
      match
        Wishbone.Spec.of_profile ~mode:Wishbone.Movable.Conservative
          ~node_platform:platform raw
      with
      | Error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
      | Ok spec ->
          let probe ~rate:r ~assignment =
            Wishbone.Adaptive.testbed_probe ~config ~graph:t.Apps.Speech.graph
              ~sources:(fun ~rate:r' -> sources ~rate:(rate *. r'))
              ~rate:r ~assignment
          in
          let out = Wishbone.Adaptive.run ~spec ~assignment ~probe () in
          Format.printf "%a" Wishbone.Adaptive.pp_trace out.Wishbone.Adaptive.trace;
          Printf.printf
            "final: rate x%.4f, goodput %.1f%%%s\n"
            (rate *. out.Wishbone.Adaptive.rate)
            (100. *. out.Wishbone.Adaptive.goodput)
            (if out.Wishbone.Adaptive.converged then "" else " (not converged)")
    end
    else begin
      let r =
        Netsim.Testbed.run config ~graph:t.Apps.Speech.graph
          ~node_of:(fun i -> assignment.(i))
          ~sources:(sources ~rate)
      in
      Printf.printf
        "inputs %d (processed %.1f%%)\nmessages %d (received %.1f%%)\n\
         packets %d (collisions %d, channel %d, queue %d)\n\
         goodput %.2f%%; node cpu %.1f%%; offered %.0f B/s\n"
        r.inputs_offered
        (100. *. r.input_fraction)
        r.msgs_sent
        (100. *. r.msg_fraction)
        r.packets_sent r.packets_lost_collision r.packets_lost_channel
        r.packets_lost_queue
        (100. *. r.goodput_fraction)
        (100. *. r.node_busy_fraction)
        r.offered_bytes_per_sec;
      if faults || reliable then
        Printf.printf
          "faults: crashes %d, inputs lost while down %d\n\
           transport: retransmissions %d, duplicates %d, expired %d, \
           pending %d; acks %d sent / %d lost\n"
          r.crashes r.inputs_lost_down r.retransmissions r.msgs_duplicate
          r.msgs_expired r.msgs_pending r.acks_sent r.acks_lost
    end
  in
  Cmd.v
    (Cmd.info "deploy"
       ~doc:
         "Run the speech app on the simulated wireless testbed (§7.3), \
          optionally under injected faults; with $(b,--tiers) or \
          $(b,--topology), execute a multi-tier placement through the \
          tier-level engine with bounded inter-tier channels and a \
          per-edge predicted-vs-offered table.  $(b,--topology testbed) \
          places against the testbed's own routing tree ($(b,--nodes) \
          motes, one hop from the basestation).")
    Term.(
      const run $ platform_arg $ nodes_arg $ cut_arg $ sim_duration_arg
      $ faults_arg $ burst_loss_arg $ crash_rate_arg $ reliable_arg
      $ adaptive_arg $ rate_arg $ seed_arg $ tiers_arg $ topology_arg)

(* ---- serve: the fleet placement service over a query file ---- *)

let serve_cmd =
  let queries_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:
            "Newline-delimited query file.  Each line is $(b,APP CHAIN \
             REQUEST [cpu=F] [net=F]) where APP is \
             speech|eeg1|eeg14|eeg22|synthetic:SEED[:NOPS], CHAIN is a \
             comma-separated platform chain (node-most first; $(b,-) for \
             synthetic specs, which carry their own budgets) — or, with \
             $(b,PLAT>K) entries, a rooted tier tree as in \
             $(b,--topology) — REQUEST is $(b,rate X) or $(b,search), \
             and cpu=/net= override the node CPU and radio budgets.  \
             Blank lines and $(b,#) comments are skipped.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Solver domains per batch.  Responses are identical for every \
             shard count; only wall-clock changes.")
  in
  let cache_arg =
    Arg.(
      value & opt int 512
      & info [ "cache" ] ~docv:"N" ~doc:"LRU cache capacity in entries.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Serve the batch N times through the same service; later \
             passes replay from the warm cache.")
  in
  let node_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-budget" ] ~docv:"N"
          ~doc:
            "Deterministic branch & bound node budget per solve; \
             exhaustion surfaces as gap-certified $(b,degraded) answers, \
             identical on every machine and shard count.")
  in
  let retry_arg =
    Arg.(
      value & opt int 1
      & info [ "retry" ] ~docv:"N"
          ~doc:
            "Extra solve attempts the per-query supervisor makes after a \
             contained exception before answering $(b,failed).")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Crash-safe cache snapshot: restore the cache from FILE \
             before serving (a missing, corrupt or stale snapshot starts \
             cold) and atomically rewrite it after each pass.")
  in
  let inject_faults_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-faults" ] ~docv:"SEED"
          ~doc:
            "Inject seeded solver faults (transient declines, permanent \
             faults, mid-solve crashes, worker deaths) into ~10% of \
             solves — the containment test harness.  Answers remain \
             deterministic per seed and shard count.")
  in
  let run queries_file shards cache repeat node_budget retry checkpoint
      inject_faults mode duration =
    let fail line msg =
      Printf.eprintf "serve: line %d: %s\n" line msg;
      exit 1
    in
    (* profiling dominates query construction, so raw traces are
       cached per app token and re-costed per platform *)
    let profiles : (string, Dataflow.Graph.t * Profiler.Profile.raw) Hashtbl.t =
      Hashtbl.create 4
    in
    let profile_app line token =
      match Hashtbl.find_opt profiles token with
      | Some gr -> gr
      | None ->
          let build () =
            match token with
            | "speech" ->
                let t = Apps.Speech.build () in
                (t.Apps.Speech.graph, Apps.Speech.profile ~duration t)
            | "eeg1" ->
                let t = Apps.Eeg.single_channel () in
                (t.Apps.Eeg.graph, Apps.Eeg.profile ~duration t)
            | "eeg14" ->
                let t = Apps.Eeg.build ~n_channels:14 () in
                (t.Apps.Eeg.graph, Apps.Eeg.profile ~duration t)
            | "eeg22" ->
                let t = Apps.Eeg.build ~n_channels:22 () in
                (t.Apps.Eeg.graph, Apps.Eeg.profile ~duration t)
            | _ -> fail line (Printf.sprintf "unknown app %S" token)
          in
          let gr = build () in
          Hashtbl.add profiles token gr;
          gr
    in
    let synthetic_spec line token =
      match String.split_on_char ':' token with
      | [ _; seed ] -> (
          match int_of_string_opt seed with
          | Some seed -> Apps.Synthetic.random_spec ~seed ~mode ()
          | None -> fail line (Printf.sprintf "bad synthetic seed %S" seed))
      | [ _; seed; n_ops ] -> (
          match (int_of_string_opt seed, int_of_string_opt n_ops) with
          | Some seed, Some n_ops ->
              Apps.Synthetic.random_spec ~seed ~n_ops ~mode ()
          | _ -> fail line (Printf.sprintf "bad synthetic token %S" token))
      | _ ->
          fail line
            (Printf.sprintf "bad synthetic token %S (synthetic:SEED[:NOPS])"
               token)
    in
    let parse_overrides line (spec : Wishbone.Spec.t) tokens =
      List.fold_left
        (fun (spec : Wishbone.Spec.t) tok ->
          match String.split_on_char '=' tok with
          | [ "cpu"; v ] -> (
              match float_of_string_opt v with
              | Some f -> { spec with Wishbone.Spec.cpu_budget = f }
              | None -> fail line (Printf.sprintf "bad override %S" tok))
          | [ "net"; v ] -> (
              match float_of_string_opt v with
              | Some f -> { spec with Wishbone.Spec.net_budget = f }
              | None -> fail line (Printf.sprintf "bad override %S" tok))
          | _ -> fail line (Printf.sprintf "unknown override %S" tok))
        spec tokens
    in
    let parse_line lineno text =
      let tokens =
        String.split_on_char ' ' text
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "")
      in
      match tokens with
      | [] -> None
      | _ when String.length (List.hd tokens) > 0
               && (List.hd tokens).[0] = '#' -> None
      | app :: chain :: rest ->
          let request, overrides =
            match rest with
            | "search" :: o -> (Wishbone.Service.Search, o)
            | "rate" :: x :: o -> (
                match float_of_string_opt x with
                | Some r -> (Wishbone.Service.Rate r, o)
                | None -> fail lineno (Printf.sprintf "bad rate %S" x))
            | _ -> fail lineno "expected `rate X' or `search'"
          in
          let placement =
            if String.length app >= 9 && String.sub app 0 9 = "synthetic"
            then begin
              if chain <> "-" then
                fail lineno
                  "synthetic specs carry their own budgets; use `-' for \
                   the chain";
              let spec = synthetic_spec lineno app in
              Wishbone.Placement.of_spec (parse_overrides lineno spec overrides)
            end
            else begin
              let _, raw = profile_app lineno app in
              let ts =
                match parse_topology chain with
                | Ok t -> t
                | Error m -> fail lineno m
              in
              let node_platform = List.hd ts.plats in
              match Wishbone.Spec.of_profile ~mode ~node_platform raw with
              | Error m -> fail lineno m
              | Ok spec -> (
                  let spec = parse_overrides lineno spec overrides in
                  match ts with
                  | { plats = [ _ ]; parents = None } ->
                      Wishbone.Placement.of_spec spec
                  | _ -> placement_of_topo_spec spec raw ts)
            end
          in
          Some (text, { Wishbone.Service.placement; request })
      | _ -> fail lineno "expected `APP CHAIN REQUEST'"
    in
    let lines =
      let ic = open_in queries_file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc n =
            match input_line ic with
            | line -> go ((n, line) :: acc) (n + 1)
            | exception End_of_file -> List.rev acc
          in
          go [] 1)
    in
    let labelled =
      List.filter_map (fun (n, l) -> parse_line n l) lines |> Array.of_list
    in
    if Array.length labelled = 0 then begin
      Printf.eprintf "serve: %s: no queries\n" queries_file;
      exit 1
    end;
    let queries = Array.map snd labelled in
    let options =
      match node_budget with
      | None -> Wishbone.Service.default_options
      | Some n ->
          { Wishbone.Service.default_options with Lp.Branch_bound.max_nodes = n }
    in
    let fault_plan =
      match inject_faults with
      | None -> Wishbone.Service.Fault_plan.none
      | Some seed -> Wishbone.Service.Fault_plan.seeded seed
    in
    let svc =
      match checkpoint with
      | None ->
          Wishbone.Service.create ~capacity:cache ~options ~retries:retry
            ~fault_plan ()
      | Some path -> (
          let svc, outcome =
            Wishbone.Service.restore ~capacity:cache ~options ~retries:retry
              ~fault_plan path
          in
          match outcome with
          | Wishbone.Service.Restored n ->
              Printf.printf "checkpoint: restored %d cache entries from %s\n"
                n path;
              svc
          | Wishbone.Service.Cold_start reason ->
              Printf.printf "checkpoint: cold start (%s)\n" reason;
              svc)
    in
    for pass = 1 to repeat do
      let t0 = Unix.gettimeofday () in
      let responses = Wishbone.Service.run_batch ~shards svc queries in
      let dt = Unix.gettimeofday () -. t0 in
      Array.iteri
        (fun i (r : Wishbone.Service.response) ->
          let label, _ = labelled.(i) in
          Printf.printf "[%d.%02d] %-9s %8.2f ms  %s\n    %s\n" pass i
            (match r.Wishbone.Service.served with
            | Wishbone.Service.Hit -> "hit"
            | Wishbone.Service.Warm_start -> "warm"
            | Wishbone.Service.Cold -> "cold")
            r.Wishbone.Service.latency_ms
            (let node_ops (report : Wishbone.Placement.report) =
               Array.fold_left
                 (fun acc t -> if t = 0 then acc + 1 else acc)
                 0 report.Wishbone.Placement.tier_of
             in
             match r.Wishbone.Service.answer with
            | Wishbone.Service.Placed { rate; report } ->
                Printf.sprintf
                  "placed: rate x%.4f, objective %.6g, %d ops on node \
                   (digest %s)"
                  rate report.Wishbone.Placement.objective (node_ops report)
                  (String.sub r.Wishbone.Service.digest 0 12)
            | Wishbone.Service.Degraded { rate; report; gap } ->
                Printf.sprintf
                  "degraded: rate x%.4f, objective %.6g within %.2f%% of \
                   optimal, %d ops on node (digest %s)"
                  rate report.Wishbone.Placement.objective (100. *. gap)
                  (node_ops report)
                  (String.sub r.Wishbone.Service.digest 0 12)
            | Wishbone.Service.Infeasible -> "infeasible"
            | Wishbone.Service.Failed m -> "failed: " ^ m)
            label)
        responses;
      Printf.printf "pass %d: %d queries in %.1f ms (%.1f queries/s)\n" pass
        (Array.length queries) (1000. *. dt)
        (Float.of_int (Array.length queries) /. Float.max 1e-9 dt);
      match checkpoint with
      | None -> ()
      | Some path -> Wishbone.Service.checkpoint svc path
    done;
    let c = Wishbone.Service.counters svc in
    Printf.printf
      "counters: %d queries, %d hits, %d misses (%d warm starts), %d \
       inserts, %d evictions, %d resident\n"
      c.Wishbone.Service.queries c.Wishbone.Service.hits
      c.Wishbone.Service.misses c.Wishbone.Service.warm_starts
      c.Wishbone.Service.inserts c.Wishbone.Service.evictions
      c.Wishbone.Service.resident;
    Printf.printf
      "health:   %d ok, %d degraded, %d failed, %d retries, %d worker \
       deaths\n"
      c.Wishbone.Service.ok c.Wishbone.Service.degraded
      c.Wishbone.Service.failed c.Wishbone.Service.retries
      c.Wishbone.Service.worker_deaths
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a batch of placement queries through the sharded, cached \
          fleet placement service (DESIGN.md §16).")
    Term.(
      const run $ queries_arg $ shards_arg $ cache_arg $ repeat_arg
      $ node_budget_arg $ retry_arg $ checkpoint_arg $ inject_faults_arg
      $ mode_arg $ duration_arg)

let netprofile_cmd =
  let nodes_arg =
    Arg.(value & opt int 1 & info [ "nodes" ] ~docv:"N" ~doc:"Network size.")
  in
  let target_arg =
    Arg.(
      value & opt float 0.9
      & info [ "target" ] ~docv:"FRACTION" ~doc:"Target reception rate.")
  in
  let run nodes target =
    let p =
      Netsim.Netprofile.max_send_rate ~target ~n_nodes:nodes
        ~link:Netsim.Link.cc2420 ()
    in
    Printf.printf
      "max per-node send rate %.2f msg/s at %.1f%% reception (%.0f B/s \
       aggregate goodput)\n"
      p.offered_msgs_per_sec (100. *. p.reception) p.goodput_bytes_per_sec
  in
  Cmd.v
    (Cmd.info "netprofile"
       ~doc:"Profile the radio channel: max send rate for a target \
             reception rate (§7.3.1).")
    Term.(const run $ nodes_arg $ target_arg)

let () =
  let doc = "profile-based partitioning for sensornet applications" in
  let info = Cmd.info "wishbone" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            platforms_cmd; profile_cmd; partition_cmd; sweep_cmd; deploy_cmd;
            serve_cmd; netprofile_cmd;
          ]))
