(** Target platform descriptors.

    A platform turns an abstract instruction mix ({!Dataflow.Workload})
    into cycles, and cycles into seconds — the reproduction's stand-in
    for running instrumented code on real hardware or a cycle-accurate
    simulator (§3).  Per-class costs capture the paper's key
    observation (Figure 8): relative operator costs vary wildly across
    platforms — most dramatically the software-emulated floating point
    of the TMote's MSP430 — so a single scalar "speed" would
    mis-estimate costs by an order of magnitude. *)

type t = {
  name : string;
  description : string;
  clock_hz : float;
  cycles_int : float;
  cycles_float : float;  (** >> 1 when there is no FPU *)
  cycles_trans : float;  (** log/cos/sqrt library calls *)
  cycles_mem : float;
  cycles_branch : float;
  cycles_call : float;
  overhead : float;
      (** multiplicative runtime penalty (JVM dispatch, interpreter,
          frequency scaling) applied on top of the cycle model *)
  radio_bytes_per_sec : float;
      (** effective link goodput at the target reception rate, as the
          §7.3.1 network profiling tool would report *)
  radio_payload_bytes : int;  (** usable payload per radio message *)
  cpu_budget : float;
      (** fraction of the CPU the partitioner may assign (1.0 = all) *)
}

val cycles : t -> Dataflow.Workload.t -> float
val seconds : t -> Dataflow.Workload.t -> float

(** {1 Catalog}

    Calibrated so that the cross-platform ratios reported in §7.2
    hold: the N80 performs only about twice the TMote despite a 55x
    clock (JVM overhead); the iPhone runs about 3x slower than the
    similarly clocked Gumstix (frequency scaling); the Meraki has
    ~15x the TMote's CPU but at least 10x its bandwidth. *)

val tmote_sky : t
val nokia_n80 : t
val iphone : t
val gumstix : t
val meraki : t
val voxnet : t
val scheme_server : t
val xeon_server : t

val all : t list
val find : string -> t
(** Look up by name (case-insensitive). @raise Not_found otherwise. *)
