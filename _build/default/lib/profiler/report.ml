open Dataflow

let out_bytes_per_sec raw op =
  List.fold_left
    (fun acc (e : Graph.edge) -> acc +. Profile.edge_bytes_per_sec raw e.eid)
    0.
    (Graph.succs (Profile.graph raw) op)

let per_op_table raw platform ~order =
  let costed = Profile.cost raw platform in
  let cum = ref 0. in
  Array.to_list order
  |> List.map (fun op ->
         let us = costed.seconds_per_fire.(op) *. 1e6 in
         cum := !cum +. us;
         let name = (Graph.op (Profile.graph raw) op).Op.name in
         (name, us, !cum, out_bytes_per_sec raw op))

let normalized_cumulative_cpu raw platform ~order =
  let costed = Profile.cost raw platform in
  let total =
    Array.fold_left
      (fun acc op -> acc +. costed.seconds_per_fire.(op))
      0. order
  in
  let cum = ref 0. in
  Array.map
    (fun op ->
      cum := !cum +. costed.seconds_per_fire.(op);
      if total > 0. then !cum /. total else 0.)
    order

let pp_comparison ppf raw ~platforms ~order =
  let columns =
    List.map (fun p -> (p, normalized_cumulative_cpu raw p ~order)) platforms
  in
  Format.fprintf ppf "@[<v>%-14s" "operator";
  List.iter
    (fun (p, _) -> Format.fprintf ppf " %10s" p.Platform.name)
    columns;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun i op ->
      let name = (Graph.op (Profile.graph raw) op).Op.name in
      Format.fprintf ppf "%-14s" name;
      List.iter
        (fun (_, cum) -> Format.fprintf ppf " %10.3f" cum.(i))
        columns;
      Format.fprintf ppf "@,")
    order;
  Format.fprintf ppf "@]"
