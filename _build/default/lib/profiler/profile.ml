open Dataflow

module Trace = struct
  type event = { time : float; source : int; value : Value.t }

  let periodic ~source ~rate ~duration ~gen =
    if rate <= 0. then invalid_arg "Trace.periodic: rate must be positive";
    let n = int_of_float (Float.floor (duration *. rate)) in
    List.init n (fun i ->
        { time = Float.of_int i /. rate; source; value = gen i })

  let merge traces =
    let all = List.concat traces in
    List.stable_sort (fun a b -> Float.compare a.time b.time) all
end

type raw = {
  graph : Graph.t;
  duration : float;
  window : float;
  fires : int array;
  workload : Workload.t array;  (* cumulative per op *)
  peak_window_workload : Workload.t array;
      (* worst single window per op, compared by Workload.total; a
         platform-independent proxy that is accurate enough for peak
         estimation *)
  edge_elems : int array;
  edge_bytes : int array;
  peak_window_edge_bytes : int array;
  scale : float;
}

let collect ?(window = 1.0) ~duration graph events =
  if duration <= 0. then invalid_arg "Profile.collect: duration must be positive";
  if window <= 0. then invalid_arg "Profile.collect: window must be positive";
  let n = Graph.n_ops graph in
  let m = Graph.n_edges graph in
  let exec = Runtime.Exec.full graph in
  let fires = Array.make n 0 in
  let workload = Array.make n Workload.zero in
  let peak_w = Array.make n Workload.zero in
  let edge_elems = Array.make m 0 in
  let edge_bytes = Array.make m 0 in
  let peak_eb = Array.make m 0 in
  (* current-window accumulators *)
  let win_w = Array.make n Workload.zero in
  let win_eb = Array.make m 0 in
  let cur_win = ref 0 in
  (* previous cumulative snapshots, to compute per-event deltas *)
  let prev_w = Array.make n Workload.zero in
  let prev_eb = Array.make m 0 in
  let flush_window () =
    for i = 0 to n - 1 do
      if Workload.total win_w.(i) > Workload.total peak_w.(i) then
        peak_w.(i) <- win_w.(i);
      win_w.(i) <- Workload.zero
    done;
    for e = 0 to m - 1 do
      if win_eb.(e) > peak_eb.(e) then peak_eb.(e) <- win_eb.(e);
      win_eb.(e) <- 0
    done
  in
  List.iter
    (fun (ev : Trace.event) ->
      if ev.time < 0. || ev.time >= duration then
        invalid_arg "Profile.collect: event outside [0, duration)";
      let w = int_of_float (ev.time /. window) in
      while !cur_win < w do
        flush_window ();
        incr cur_win
      done;
      ignore (Runtime.Exec.fire exec ~op:ev.source ~port:0 ev.value);
      (* fold this traversal's deltas into the window accumulators *)
      for i = 0 to n - 1 do
        let cum = Runtime.Exec.op_workload exec i in
        let delta =
          Workload.add cum (Workload.scale (-1.) prev_w.(i))
        in
        if Workload.total delta > 0. then begin
          win_w.(i) <- Workload.add win_w.(i) delta;
          prev_w.(i) <- cum
        end
      done;
      for e = 0 to m - 1 do
        let cum = Runtime.Exec.edge_bytes exec e in
        if cum > prev_eb.(e) then begin
          win_eb.(e) <- win_eb.(e) + (cum - prev_eb.(e));
          prev_eb.(e) <- cum
        end
      done)
    events;
  flush_window ();
  for i = 0 to n - 1 do
    fires.(i) <- Runtime.Exec.op_fires exec i;
    workload.(i) <- Runtime.Exec.op_workload exec i
  done;
  for e = 0 to m - 1 do
    edge_elems.(e) <- Runtime.Exec.edge_elements exec e;
    edge_bytes.(e) <- Runtime.Exec.edge_bytes exec e
  done;
  {
    graph;
    duration;
    window;
    fires;
    workload;
    peak_window_workload = peak_w;
    edge_elems;
    edge_bytes;
    peak_window_edge_bytes = peak_eb;
    scale = 1.;
  }

let graph r = r.graph
let duration r = r.duration
let rate_scale r = r.scale

let scale_rate r factor =
  if factor <= 0. then invalid_arg "Profile.scale_rate: factor must be positive";
  { r with scale = r.scale *. factor }

let op_fires r i = r.fires.(i)

let op_workload_per_fire r i =
  if r.fires.(i) = 0 then Workload.zero
  else Workload.scale (1. /. Float.of_int r.fires.(i)) r.workload.(i)

let op_fires_per_sec r i = Float.of_int r.fires.(i) /. r.duration *. r.scale

let edge_elements_per_sec r e =
  Float.of_int r.edge_elems.(e) /. r.duration *. r.scale

let edge_bytes_per_sec r e =
  Float.of_int r.edge_bytes.(e) /. r.duration *. r.scale

let edge_peak_bytes_per_sec r e =
  Float.of_int r.peak_window_edge_bytes.(e) /. r.window *. r.scale

type costed = {
  platform : Platform.t;
  seconds_per_fire : float array;
  cpu_fraction : float array;
  peak_cpu_fraction : float array;
}

let cost r platform =
  let n = Graph.n_ops r.graph in
  let seconds_per_fire =
    Array.init n (fun i -> Platform.seconds platform (op_workload_per_fire r i))
  in
  let cpu_fraction =
    Array.init n (fun i ->
        Platform.seconds platform r.workload.(i) /. r.duration *. r.scale)
  in
  let peak_cpu_fraction =
    Array.init n (fun i ->
        Platform.seconds platform r.peak_window_workload.(i)
        /. r.window *. r.scale)
  in
  { platform; seconds_per_fire; cpu_fraction; peak_cpu_fraction }

let total_cpu_fraction c ~on =
  let acc = ref 0. in
  Array.iteri (fun i f -> if on i then acc := !acc +. f) c.cpu_fraction;
  !acc
