(** Profile-driven cost estimation (§3 of the paper).

    [collect] executes the full operator graph on a timed trace of
    sample data, recording per-operator instruction mixes and per-edge
    traffic.  The platform-independent measurements ({!raw}) are then
    priced for a concrete platform with {!cost}, yielding per-operator
    CPU fractions and per-edge bandwidths — the inputs of the
    partitioning ILP.  Both mean and peak loads are computed (§4.2.1);
    Wishbone uses mean loads for predictable-rate applications.

    {!scale_rate} implements "data rate as a free variable" (§4.3):
    CPU and network load scale linearly with the input rate, so one
    profiling run supports the whole binary search. *)

module Trace : sig
  type event = { time : float; source : int; value : Dataflow.Value.t }

  val periodic :
    source:int -> rate:float -> duration:float ->
    gen:(int -> Dataflow.Value.t) -> event list
  (** [gen i] produces the i-th sample; events at times [i /. rate]. *)

  val merge : event list list -> event list
  (** Merge time-sorted traces into one time-sorted trace. *)
end

type raw

val collect :
  ?window:float -> duration:float -> Dataflow.Graph.t ->
  Trace.event list -> raw
(** Runs the trace through {!Runtime.Exec.full}.  [window] (default
    1 s) is the averaging window for peak-load estimation.  Events
    must lie within [0, duration). *)

val graph : raw -> Dataflow.Graph.t
val duration : raw -> float
val rate_scale : raw -> float

val scale_rate : raw -> float -> raw
(** A view of the same profile with all rates multiplied by the given
    factor (> 0).  O(1); shares measurement data. *)

(** {1 Platform-independent measurements} *)

val op_fires : raw -> int -> int
val op_workload_per_fire : raw -> int -> Dataflow.Workload.t
val op_fires_per_sec : raw -> int -> float
val edge_elements_per_sec : raw -> int -> float
val edge_bytes_per_sec : raw -> int -> float
val edge_peak_bytes_per_sec : raw -> int -> float

(** {1 Platform costing} *)

type costed = {
  platform : Platform.t;
  seconds_per_fire : float array;
      (** per operator: execution time of one firing *)
  cpu_fraction : float array;
      (** per operator: mean fraction of the platform CPU consumed *)
  peak_cpu_fraction : float array;
      (** per operator: worst averaging window *)
}

val cost : raw -> Platform.t -> costed

val total_cpu_fraction : costed -> on:(int -> bool) -> float
(** Sum of mean CPU fractions over the selected operators (Wishbone's
    additive-cost assumption, §7.3.1). *)
