lib/profiler/platform.ml: Dataflow List String
