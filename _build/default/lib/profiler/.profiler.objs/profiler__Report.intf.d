lib/profiler/report.mli: Format Platform Profile
