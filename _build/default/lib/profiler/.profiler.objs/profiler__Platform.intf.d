lib/profiler/platform.mli: Dataflow
