lib/profiler/profile.mli: Dataflow Platform
