lib/profiler/profile.ml: Array Dataflow Float Graph List Platform Runtime Value Workload
