lib/profiler/report.ml: Array Dataflow Format Graph List Op Platform Profile
