(** Human-readable profiling reports (the data behind Figures 7/8). *)

val per_op_table :
  Profile.raw -> Platform.t -> order:int array ->
  (string * float * float * float) list
(** For each operator in [order]: (name, microseconds per firing,
    cumulative microseconds per firing, output bytes/s).  The
    cumulative column is the sum over the prefix — the per-cut node
    CPU cost of a linear pipeline (Figure 7). *)

val normalized_cumulative_cpu :
  Profile.raw -> Platform.t -> order:int array -> float array
(** Fraction of total CPU consumed by each prefix of [order]
    (Figure 8); last element is 1 (or 0 for an idle graph). *)

val pp_comparison :
  Format.formatter ->
  Profile.raw -> platforms:Platform.t list -> order:int array -> unit
(** Figure-8 style table: one row per operator, one column per
    platform, each cell the platform-normalized CPU share. *)
