type t = {
  name : string;
  description : string;
  clock_hz : float;
  cycles_int : float;
  cycles_float : float;
  cycles_trans : float;
  cycles_mem : float;
  cycles_branch : float;
  cycles_call : float;
  overhead : float;
  radio_bytes_per_sec : float;
  radio_payload_bytes : int;
  cpu_budget : float;
}

let cycles p (w : Dataflow.Workload.t) =
  (w.int_ops *. p.cycles_int)
  +. (w.float_ops *. p.cycles_float)
  +. (w.trans_ops *. p.cycles_trans)
  +. (w.mem_ops *. p.cycles_mem)
  +. (w.branch_ops *. p.cycles_branch)
  +. (w.call_ops *. p.cycles_call)

let seconds p w = cycles p w *. p.overhead /. p.clock_hz

let tmote_sky =
  {
    name = "tmote";
    description = "TMote Sky: 8 MHz MSP430, no FPU, CC2420 radio, TinyOS 2.0";
    clock_hz = 8e6;
    cycles_int = 1.;
    cycles_float = 120.;  (* software-emulated double precision *)
    cycles_trans = 9000.;  (* soft-float libm cos/log *)
    cycles_mem = 2.;
    cycles_branch = 2.;
    cycles_call = 12.;  (* task post / split-phase overhead *)
    overhead = 1.;
    radio_bytes_per_sec = 1250.;  (* ~50 msg/s * 28 B at 90% reception *)
    radio_payload_bytes = 28;
    cpu_budget = 1.0;
  }

let nokia_n80 =
  {
    name = "n80";
    description = "Nokia N80: 220 MHz ARM9, JavaME (JVM-interpreted)";
    clock_hz = 220e6;
    cycles_int = 1.;
    cycles_float = 600.;  (* boxed doubles, no JIT float pipeline *)
    cycles_trans = 20000.;  (* Math.cos on interpreted doubles *)
    cycles_mem = 2.;
    cycles_branch = 2.;
    cycles_call = 20.;
    overhead = 3.;  (* bytecode dispatch: §7.2 "poor JVM performance" *)
    radio_bytes_per_sec = 60_000.;  (* WiFi via JSR-135 streaming *)
    radio_payload_bytes = 512;
    cpu_budget = 1.0;
  }

let iphone =
  {
    name = "iphone";
    description = "iPhone: 412 MHz ARM11 + VFP, GCC, frequency-scaled";
    clock_hz = 412e6;
    cycles_int = 1.;
    cycles_float = 2.;
    cycles_trans = 45.;
    cycles_mem = 1.5;
    cycles_branch = 1.5;
    cycles_call = 6.;
    overhead = 25.;  (* §7.2: 3x worse than the 400 MHz Gumstix, on top
                        of the generated-code overhead below *)
    radio_bytes_per_sec = 120_000.;
    radio_payload_bytes = 1024;
    cpu_budget = 1.0;
  }

let gumstix =
  {
    name = "gumstix";
    description = "Gumstix: 400 MHz XScale ARM-Linux, GCC";
    clock_hz = 400e6;
    cycles_int = 1.;
    cycles_float = 2.5;  (* XScale has no FPU but fast kernel emu *)
    cycles_trans = 50.;
    cycles_mem = 1.5;
    cycles_branch = 1.5;
    cycles_call = 6.;
    overhead = 8.5;  (* compiler-generated single-threaded code; lands
                        the §7.3.1 prediction of ~11.5% CPU for the
                        whole speech pipeline *)
    radio_bytes_per_sec = 120_000.;
    radio_payload_bytes = 1024;
    cpu_budget = 1.0;
  }

let meraki =
  {
    name = "meraki";
    description = "Meraki Mini: 180 MHz MIPS, WiFi (~15x TMote CPU, 10x radio)";
    clock_hz = 180e6;
    cycles_int = 1.5;
    cycles_float = 200.;  (* soft-float MIPS *)
    cycles_trans = 5000.;
    cycles_mem = 3.;
    cycles_branch = 3.;
    cycles_call = 10.;
    overhead = 1.5;
    radio_bytes_per_sec = 25_000.;
    radio_payload_bytes = 1024;
    cpu_budget = 1.0;
  }

let voxnet =
  {
    name = "voxnet";
    description = "VoxNet acoustic node: 400 MHz PXA ARM-Linux with DSP libs";
    clock_hz = 400e6;
    cycles_int = 1.;
    cycles_float = 1.5;
    cycles_trans = 30.;
    cycles_mem = 1.;
    cycles_branch = 1.;
    cycles_call = 4.;
    overhead = 1.;
    radio_bytes_per_sec = 250_000.;
    radio_payload_bytes = 1024;
    cpu_budget = 1.0;
  }

let scheme_server =
  {
    name = "scheme";
    description = "WaveScript graph interpreted inside Scheme on a server PC";
    clock_hz = 3.2e9;
    cycles_int = 1.;
    cycles_float = 1.;
    cycles_trans = 25.;
    cycles_mem = 1.;
    cycles_branch = 1.;
    cycles_call = 3.;
    overhead = 3.;  (* graph interpretation overhead *)
    radio_bytes_per_sec = 10e6;
    radio_payload_bytes = 1400;
    cpu_budget = 1.0;
  }

let xeon_server =
  {
    name = "xeon";
    description = "3.2 GHz Intel Xeon server (native C backend)";
    clock_hz = 3.2e9;
    cycles_int = 0.5;  (* superscalar issue *)
    cycles_float = 0.5;
    cycles_trans = 20.;
    cycles_mem = 0.7;
    cycles_branch = 0.7;
    cycles_call = 2.;
    overhead = 1.;
    radio_bytes_per_sec = 100e6;
    radio_payload_bytes = 1400;
    cpu_budget = 1.0;
  }

let all =
  [
    tmote_sky; nokia_n80; iphone; gumstix; meraki; voxnet; scheme_server;
    xeon_server;
  ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find (fun p -> String.lowercase_ascii p.name = lower) all
