(** The acoustic speech-detection application (§6.2): a linear
    pipeline computing Mel Frequency Cepstral Coefficients over 25 ms
    audio frames sampled at 8 kHz.

    Pipeline (Figure 7):
    [source → preemph → hamming → prefilt → fft → filtbank → logs →
     cepstrals → detect(sink)]

    Wire formats are chosen as a real port would choose them, which
    yields exactly the paper's viable cut points: raw frames are
    402-byte int16 arrays; the integer front-end stages are
    data-neutral; the FFT power spectrum is data-expanding (518 B);
    the 32-filter bank reduces to 130 B; quantized log energies to
    66 B; and the 13 cepstral coefficients to 54 B. *)

type t = {
  graph : Dataflow.Graph.t;
  source : int;
  order : int array;  (** pipeline order, source first, sink last *)
}

val sample_rate : float  (** 8000 Hz *)

val frame_samples : int  (** 200 (25 ms) *)

val frame_rate : float  (** 40 windows/s *)

val build : unit -> t

val frame_gen : seed:int -> int -> Dataflow.Value.t
(** Deterministic speech-like frame generator (one generator state per
    call chain; frame [i] of the given seed's stream). *)

val profile :
  ?duration:float -> ?seed:int -> t -> Profiler.Profile.raw
(** Profile on synthetic audio (default 30 s). *)

val testbed_sources :
  ?seed:int -> rate_mult:float -> t -> Netsim.Testbed.source_spec list
(** Per-node independent audio streams at [rate_mult *. frame_rate]
    windows/s. *)

val cut_assignment : t -> int -> bool array
(** [cut_assignment t k] places the first [k] pipeline operators on
    the node (k in 1 .. n-1). *)

val relevant_cutpoints : t -> int list
(** The six cut indices examined in Figures 9/10: after source,
    prefilt, fft, filtbank, logs, cepstrals. *)
