open Dataflow

type t = { graph : Graph.t; source : int; order : int array }

let sample_rate = 8000.
let frame_samples = 200
let frame_rate = sample_rate /. Float.of_int frame_samples

let n_mel = 32
let n_ceps = 13

(* ---- work functions ----
   The front-end stages run in 16-bit fixed point, as a careful mote
   port would; FFT onwards uses floats.  Every function returns the
   instruction mix it actually performed. *)

let preemph_work v =
  let x = Value.int16_arr v in
  let n = Array.length x in
  let out = Array.make n 0 in
  let prev = ref x.(0) in
  for i = 0 to n - 1 do
    (* y = x - 0.97 x[-1], in Q: 97/100 via integer mul/div *)
    out.(i) <- x.(i) - (97 * !prev / 100);
    prev := x.(i)
  done;
  let nf = Float.of_int n in
  ( Value.Int16_arr out,
    Workload.make ~int_ops:(3. *. nf) ~mem_ops:(3. *. nf) ~branch_ops:nf
      ~call_ops:1. () )

let hamming_q15 =
  lazy
    (Array.map
       (fun w -> int_of_float (Float.round (w *. 32767.)))
       (Dsp.Window.hamming frame_samples))

let hamming_work v =
  let x = Value.int16_arr v in
  let w = Lazy.force hamming_q15 in
  let n = Array.length x in
  if n <> frame_samples then invalid_arg "speech: bad frame length";
  let out = Array.init n (fun i -> (x.(i) * w.(i)) asr 15) in
  let nf = Float.of_int n in
  ( Value.Int16_arr out,
    Workload.make ~int_ops:(2. *. nf) ~mem_ops:(3. *. nf) ~branch_ops:nf
      ~call_ops:1. () )

let prefilt_work v =
  (* DC removal in integer arithmetic *)
  let x = Value.int16_arr v in
  let n = Array.length x in
  let sum = Array.fold_left ( + ) 0 x in
  let mean = sum / Int.max 1 n in
  let out = Array.map (fun s -> s - mean) x in
  let nf = Float.of_int n in
  ( Value.Int16_arr out,
    Workload.make ~int_ops:(2. *. nf) ~mem_ops:(2. *. nf)
      ~branch_ops:(2. *. nf) ~call_ops:1. () )

let fft_work v =
  let x = Value.float_arr v in
  let power, w = Dsp.Fft.power_spectrum x in
  (* conversion from int16 adds a float op per sample *)
  let conv = Workload.make ~float_ops:(Float.of_int (Array.length x)) () in
  (Value.Float_arr power, Workload.add w conv)

let mel_bank =
  lazy
    (Dsp.Mel.create ~n_filters:n_mel
       ~n_fft:(Dsp.Fft.next_pow2 frame_samples)
       ~sample_rate ())

let filtbank_work v =
  let power = Value.float_arr v in
  let e, w = Dsp.Mel.apply (Lazy.force mel_bank) power in
  (Value.Float_arr e, w)

let logs_work v =
  let e = Value.float_arr v in
  let logs, w = Dsp.Mel.log_energies e in
  (* stays 32 floats on the wire: data-neutral, exactly as in the
     paper (Figure 7's bandwidth line is flat from filtbank to logs) *)
  (Value.Float_arr logs, w)

let cepstrals_work v =
  let logs = Value.float_arr v in
  (* a direct port computes the full DCT and keeps the first 13 *)
  let all, w = Dsp.Dct.dct_ii logs in
  let out = Array.sub all 0 n_ceps in
  (Value.Float_arr out, w)

let build () =
  let b = Builder.create () in
  let source = ref 0 in
  Builder.in_node b (fun () ->
      let s0 = Builder.source b ~name:"source" ~kind:"adc" () in
      source := Builder.op_id s0;
      let s1 = Builder.map b ~name:"preemph" ~kind:"fir" preemph_work s0 in
      let s2 = Builder.map b ~name:"hamming" ~kind:"window" hamming_work s1 in
      let s3 = Builder.map b ~name:"prefilt" ~kind:"filter" prefilt_work s2 in
      let s4 = Builder.map b ~name:"fft" ~kind:"fft" fft_work s3 in
      let s5 =
        Builder.map b ~name:"filtbank" ~kind:"mel" filtbank_work s4
      in
      let s6 = Builder.map b ~name:"logs" ~kind:"log" logs_work s5 in
      let s7 =
        Builder.map b ~name:"cepstrals" ~kind:"dct" cepstrals_work s6
      in
      Builder.sink b ~name:"detect" s7);
  let graph = Builder.build b in
  { graph; source = !source; order = Graph.topo_order graph }

(* Per-seed generator states, so repeated calls with increasing frame
   index stream a continuous signal. *)
let gen_table : (int, Dsp.Siggen.Speech.t * int ref) Hashtbl.t =
  Hashtbl.create 8

let frame_gen ~seed i =
  let g, next =
    match Hashtbl.find_opt gen_table seed with
    | Some ((_, next) as entry) when !next <= i -> entry
    | _ ->
        (* fresh stream (also replays deterministically when a caller
           rewinds to an earlier frame index) *)
        let entry = (Dsp.Siggen.Speech.create ~seed ~sample_rate (), ref 0) in
        Hashtbl.replace gen_table seed entry;
        entry
  in
  let frame = ref [||] in
  while !next <= i do
    frame := Dsp.Siggen.Speech.frame g frame_samples;
    incr next
  done;
  Value.Int16_arr !frame

let profile ?(duration = 30.) ?(seed = 42) t =
  Hashtbl.remove gen_table seed;
  let events =
    Profiler.Profile.Trace.periodic ~source:t.source ~rate:frame_rate
      ~duration ~gen:(frame_gen ~seed)
  in
  Profiler.Profile.collect ~duration t.graph events

let testbed_sources ?(seed = 1000) ~rate_mult t =
  let per_node : (int, Dsp.Siggen.Speech.t) Hashtbl.t = Hashtbl.create 32 in
  let gen ~node ~seq:_ =
    let g =
      match Hashtbl.find_opt per_node node with
      | Some g -> g
      | None ->
          let g = Dsp.Siggen.Speech.create ~seed:(seed + node) ~sample_rate () in
          Hashtbl.add per_node node g;
          g
    in
    Value.Int16_arr (Dsp.Siggen.Speech.frame g frame_samples)
  in
  [ { Netsim.Testbed.source = t.source; rate = frame_rate *. rate_mult; gen } ]

let cut_assignment t k =
  let n = Array.length t.order in
  if k < 1 || k >= n then invalid_arg "Speech.cut_assignment: k out of range";
  let a = Array.make n false in
  for i = 0 to k - 1 do
    a.(t.order.(i)) <- true
  done;
  a

let relevant_cutpoints _t = [ 1; 4; 5; 6; 7; 8 ]
