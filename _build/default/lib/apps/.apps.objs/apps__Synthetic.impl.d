lib/apps/synthetic.ml: Array Dataflow Graph List Op Printf Prng Wishbone Workload
