lib/apps/synthetic.mli: Wishbone
