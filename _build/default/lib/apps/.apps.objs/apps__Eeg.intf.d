lib/apps/eeg.mli: Dataflow Dsp Profiler
