lib/apps/speech.mli: Dataflow Netsim Profiler
