lib/apps/speech.ml: Array Builder Dataflow Dsp Float Graph Hashtbl Int Lazy Netsim Profiler Value Workload
