lib/apps/eeg.ml: Array Builder Dataflow Dsp Float Graph Int List Printf Profiler Queue Value Workload
