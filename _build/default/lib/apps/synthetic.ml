open Dataflow

let passthrough () =
  Op.stateless_instance (fun v -> ([ v ], Workload.make ~call_ops:1. ()))

let dummy_op ~id ~name ~namespace ~stateful ~side_effect =
  { Op.id; name; kind = "synthetic"; namespace; stateful; side_effect;
    fresh = passthrough }

(* Build a spec directly from shape + cost arrays. *)
let spec_of ~ops ~edges ~cpu ~bw ?(mode = Wishbone.Movable.Conservative)
    ~cpu_budget ~net_budget ~alpha ~beta () =
  let graph = Graph.make ops edges in
  match Wishbone.Movable.classify mode graph with
  | Error msg -> invalid_arg ("Synthetic: " ^ msg)
  | Ok placement ->
      {
        Wishbone.Spec.graph;
        placement;
        cpu;
        bandwidth = bw;
        cpu_budget;
        net_budget;
        alpha;
        beta;
      }

let random_spec ?(seed = 1) ?(n_ops = 10) ?(extra_edge_prob = 0.15)
    ?(stateful_prob = 0.2) ?(mode = Wishbone.Movable.Conservative)
    ?(cpu_budget = 1.0) ?(net_budget = 200.) ?(alpha = 0.) ?(beta = 1.) () =
  if n_ops < 3 then invalid_arg "Synthetic.random_spec: need at least 3 ops";
  let rng = Prng.create seed in
  let sink = n_ops - 1 in
  let ops =
    Array.init n_ops (fun id ->
        if id = 0 then
          dummy_op ~id ~name:"src" ~namespace:Op.Node ~stateful:false
            ~side_effect:Op.Sensor_input
        else if id = sink then
          dummy_op ~id ~name:"out" ~namespace:Op.Server ~stateful:false
            ~side_effect:Op.Display_output
        else
          dummy_op ~id
            ~name:(Printf.sprintf "op%d" id)
            ~namespace:Op.Node
            ~stateful:(Prng.bool rng stateful_prob)
            ~side_effect:Op.Pure)
  in
  (* spine: each interior op reads from a random earlier op; ports are
     assigned densely per destination *)
  let in_count = Array.make n_ops 0 in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v, in_count.(v)) :: !edges;
    in_count.(v) <- in_count.(v) + 1
  in
  for v = 1 to sink - 1 do
    add_edge (Prng.int rng v) v
  done;
  (* extra forward edges *)
  for u = 0 to sink - 2 do
    for v = u + 1 to sink - 1 do
      if v > u && Prng.bool rng extra_edge_prob then add_edge u v
    done
  done;
  (* every terminal interior op feeds the sink *)
  let has_out = Array.make n_ops false in
  List.iter (fun (u, _, _) -> has_out.(u) <- true) !edges;
  for u = 0 to sink - 1 do
    if not has_out.(u) then add_edge u sink
  done;
  let edges = List.rev !edges in
  let n_edges = List.length edges in
  let cpu =
    Array.init n_ops (fun i ->
        if i = 0 || i = sink then 0.01 else Prng.uniform rng 0.01 0.3)
  in
  let bw = Array.init n_edges (fun _ -> Prng.uniform rng 1. 100.) in
  spec_of ~ops ~edges ~cpu ~bw ~mode ~cpu_budget ~net_budget ~alpha ~beta ()

let random_pipeline_spec ?(seed = 2) ?(n_ops = 8) ?(cpu_budget = 1.0)
    ?(net_budget = 500.) () =
  if n_ops < 3 then invalid_arg "Synthetic.random_pipeline_spec: too small";
  let rng = Prng.create seed in
  let sink = n_ops - 1 in
  let ops =
    Array.init n_ops (fun id ->
        if id = 0 then
          dummy_op ~id ~name:"src" ~namespace:Op.Node ~stateful:false
            ~side_effect:Op.Sensor_input
        else if id = sink then
          dummy_op ~id ~name:"out" ~namespace:Op.Server ~stateful:false
            ~side_effect:Op.Display_output
        else
          dummy_op ~id
            ~name:(Printf.sprintf "stage%d" id)
            ~namespace:Op.Node ~stateful:false ~side_effect:Op.Pure)
  in
  let edges = List.init (n_ops - 1) (fun i -> (i, i + 1, 0)) in
  let cpu =
    Array.init n_ops (fun i ->
        if i = 0 || i = sink then 0.01 else Prng.uniform rng 0.02 0.4)
  in
  (* mostly decreasing bandwidth with occasional expansion *)
  let bw = Array.make (n_ops - 1) 0. in
  let cur = ref 1000. in
  for e = 0 to n_ops - 2 do
    let factor =
      if Prng.bool rng 0.2 then Prng.uniform rng 1.0 1.5
      else Prng.uniform rng 0.3 0.95
    in
    cur := !cur *. factor;
    bw.(e) <- !cur
  done;
  spec_of ~ops ~edges ~cpu ~bw ~cpu_budget ~net_budget ~alpha:0. ~beta:1. ()

let fig3_spec ~cpu_budget =
  (* source S feeding two 2-stage chains A and B into the sink; see
     interface comment for the optimal cuts per budget *)
  let names = [| "S"; "A1"; "A2"; "B1"; "B2"; "T" |] in
  let ops =
    Array.init 6 (fun id ->
        if id = 0 then
          dummy_op ~id ~name:names.(id) ~namespace:Op.Node ~stateful:false
            ~side_effect:Op.Sensor_input
        else if id = 5 then
          dummy_op ~id ~name:names.(id) ~namespace:Op.Server ~stateful:false
            ~side_effect:Op.Display_output
        else
          dummy_op ~id ~name:names.(id) ~namespace:Op.Node ~stateful:false
            ~side_effect:Op.Pure)
  in
  let edges =
    [ (0, 1, 0); (1, 2, 0); (2, 5, 0); (0, 3, 0); (3, 4, 0); (4, 5, 1) ]
  in
  let cpu = [| 1.; 2.; 1.; 2.; 1.; 0. |] in
  let bw = [| 4.; 2.; 1.; 4.; 2.; 1. |] in
  spec_of ~ops ~edges ~cpu ~bw ~cpu_budget ~net_budget:1e9 ~alpha:0. ~beta:1. ()
