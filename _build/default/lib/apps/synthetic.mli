(** Random partitioning problems for solver stress tests and property
    tests (no real work functions; costs are drawn directly).

    Shapes: random connected DAGs, random linear pipelines, and the
    paper's Figure 3 motivating example. *)

val random_spec :
  ?seed:int ->
  ?n_ops:int ->
  ?extra_edge_prob:float ->
  ?stateful_prob:float ->
  ?mode:Wishbone.Movable.mode ->
  ?cpu_budget:float ->
  ?net_budget:float ->
  ?alpha:float ->
  ?beta:float ->
  unit ->
  Wishbone.Spec.t
(** A connected DAG of [n_ops] (default 10) operators: one source
    pinned to the node, one sink pinned to the server, the rest
    movable (modulo random statefulness under [mode]).  CPU costs are
    uniform in [0, 0.3]; bandwidths in [1, 100]. *)

val random_pipeline_spec :
  ?seed:int -> ?n_ops:int -> ?cpu_budget:float -> ?net_budget:float ->
  unit -> Wishbone.Spec.t
(** A linear pipeline with generally decreasing bandwidths, like the
    speech application. *)

val fig3_spec : cpu_budget:float -> Wishbone.Spec.t
(** The 6-operator motivating example of Figure 3: vertex CPU costs
    [1;2;5;4;1;1] and the edge bandwidths drawn in the figure.  With
    [alpha = 0, beta = 1] the optimal node partition's cut bandwidth
    is 8, 6, 5 at CPU budgets 2, 3, 4. *)
