(** Exhaustive reference solver for small mixed-integer programs.

    Enumerates every integer assignment within the declared bounds and
    solves the continuous remainder with {!Simplex}.  Exponential —
    intended only as a test oracle for {!Branch_bound} and for the
    partitioner property tests. *)

val solve : ?max_combinations:int -> Problem.t -> Solution.status
(** @raise Invalid_argument if an integer variable has an infinite
    bound or the assignment count exceeds [max_combinations]
    (default [2_000_000]). *)
