lib/lp/basis.ml: Array
