lib/lp/branch_bound.mli: Basis Problem Simplex Solution
