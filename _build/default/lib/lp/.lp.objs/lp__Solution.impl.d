lib/lp/solution.ml: Format
