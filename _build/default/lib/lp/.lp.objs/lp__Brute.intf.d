lib/lp/brute.mli: Problem Solution
