lib/lp/simplex.mli: Basis Problem Solution
