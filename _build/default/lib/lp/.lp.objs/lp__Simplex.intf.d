lib/lp/simplex.mli: Problem Solution
