lib/lp/simplex.ml: Array Basis Float List Problem Solution
