lib/lp/solution.mli: Format
