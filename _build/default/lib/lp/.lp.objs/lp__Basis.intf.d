lib/lp/basis.mli:
