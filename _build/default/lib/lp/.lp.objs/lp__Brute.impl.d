lib/lp/brute.ml: Array Float List Problem Simplex Solution
