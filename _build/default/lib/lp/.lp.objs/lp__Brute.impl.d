lib/lp/brute.ml: Array Float Problem Simplex Solution
