lib/lp/branch_bound.ml: Array Basis Float Heap List Problem Simplex Solution Unix
