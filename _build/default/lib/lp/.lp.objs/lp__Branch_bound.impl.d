lib/lp/branch_bound.ml: Array Float Heap List Problem Simplex Solution Unix
