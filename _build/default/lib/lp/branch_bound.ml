type options = {
  max_nodes : int;
  int_tol : float;
  gap_tol : float;
  time_limit : float;
  warm_start : bool;
  simplex : Simplex.options;
}

let default_options =
  {
    max_nodes = 200_000;
    int_tol = 1e-6;
    gap_tol = 0.;
    time_limit = infinity;
    warm_start = true;
    simplex = Simplex.default_options;
  }

type stats = {
  nodes_explored : int;
  lp_solves : int;
  hot_solves : int;
  total_pivots : int;
  time_to_incumbent : float;
  time_total : float;
  proved_optimal : bool;
  best_bound : float;
  incumbent_trace : (float * float) list;
  root_basis : Basis.t option;
}

type node = {
  lo : float array;
  hi : float array;
  relax : Solution.t;
  basis : Basis.t option;  (* optimal basis of this node's relaxation *)
  mutable hot : Simplex.hot option;
      (* final tableau of this node's relaxation, kept for at most
         [hot_cache] recent nodes so child LPs can skip
         refactorisation; dropped tableaus degrade to [basis] *)
}

(* How many recent nodes keep their full tableau alive.  Each costs
   O(rows * cols) floats, so this bounds warm-start memory while still
   covering best-first search's common case of popping a just-pushed
   child. *)
let hot_cache = 4

(* Most fractional integer variable, or [None] when integral within
   [int_tol]: score each candidate by its distance to the nearest
   integer (so a fractional part of .5 scores highest) and take the
   maximum, breaking ties towards the lowest index so the branching
   choice is deterministic. *)
let fractional_var ~int_tol int_vars (x : float array) =
  let best = ref None in
  let best_score = ref int_tol in
  List.iter
    (fun v ->
      let f = x.(v) -. Float.floor x.(v) in
      let score = Float.min f (1. -. f) in
      if score > !best_score then begin
        best_score := score;
        best := Some v
      end)
    int_vars;
  !best

let snap ~int_tol int_vars (x : float array) =
  let x = Array.copy x in
  List.iter
    (fun v ->
      let r = Float.round x.(v) in
      if Float.abs (x.(v) -. r) <= int_tol *. 10. then x.(v) <- r)
    int_vars;
  x

let solve ?(options = default_options) ?initial ?root_basis problem =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let minimize = Problem.direction problem = Problem.Minimize in
  (* internal keys are always "minimize": smaller is better *)
  let key_of_obj obj = if minimize then obj else -.obj in
  let obj_of_key key = if minimize then key else -.key in
  let int_vars = Problem.integer_vars problem in
  let lp_solves = ref 0 in
  let hot_solves = ref 0 in
  let pivots = ref 0 in
  let root_b = ref None in
  let relaxation ?hot ~warm ~lo ~hi () =
    incr lp_solves;
    let warm, hot =
      if options.warm_start then (warm, hot) else (None, None)
    in
    let r =
      Simplex.solve_warm ~options:options.simplex ?warm ?hot
        ~keep_hot:options.warm_start ~lo ~hi problem
    in
    if r.Simplex.hot_used then incr hot_solves;
    pivots := !pivots + r.Simplex.pivots;
    r
  in
  (* ring of nodes currently holding a hot tableau, newest first *)
  let hot_nodes = ref [] in
  let retain_hot node =
    if node.hot <> None then begin
      let rest = List.filter (fun o -> o != node) !hot_nodes in
      let keep, drop =
        let rec split i = function
          | [] -> ([], [])
          | l when i = 0 -> ([], l)
          | x :: tl ->
              let k, d = split (i - 1) tl in
              (x :: k, d)
        in
        split (hot_cache - 1) rest
      in
      List.iter (fun o -> o.hot <- None) drop;
      hot_nodes := node :: keep
    end
  in
  (* a node that has been expanded or pruned never needs its tableau
     again; free the slot for live nodes *)
  let release_hot node =
    if node.hot <> None then begin
      node.hot <- None;
      hot_nodes := List.filter (fun o -> o != node) !hot_nodes
    end
  in
  let vars = Problem.vars problem in
  let lo0 = Array.map (fun (v : Problem.var_info) -> v.lo) vars in
  let hi0 = Array.map (fun (v : Problem.var_info) -> v.hi) vars in
  let finish status ~proved ~best_bound ~t_inc ~nodes ~trace =
    ( status,
      {
        nodes_explored = nodes;
        lp_solves = !lp_solves;
        hot_solves = !hot_solves;
        total_pivots = !pivots;
        time_to_incumbent = t_inc;
        time_total = elapsed ();
        proved_optimal = proved;
        best_bound;
        incumbent_trace = List.rev trace;
        root_basis = !root_b;
      } )
  in
  let root = relaxation ~warm:root_basis ~lo:lo0 ~hi:hi0 () in
  root_b := root.Simplex.basis;
  match root.Simplex.status with
  | Solution.Infeasible ->
      finish Solution.Infeasible ~proved:true ~best_bound:nan ~t_inc:0.
        ~nodes:0 ~trace:[]
  | Solution.Unbounded ->
      finish Solution.Unbounded ~proved:true ~best_bound:nan ~t_inc:0. ~nodes:0
        ~trace:[]
  | Solution.Iteration_limit ->
      finish Solution.Iteration_limit ~proved:false ~best_bound:nan ~t_inc:0.
        ~nodes:0 ~trace:[]
  | Solution.Optimal root_relax -> (
      let open_nodes : node Heap.Pqueue.t = Heap.Pqueue.create () in
      let root_node =
        { lo = lo0; hi = hi0; relax = root_relax; basis = root.Simplex.basis;
          hot = root.Simplex.hot }
      in
      retain_hot root_node;
      Heap.Pqueue.push open_nodes (key_of_obj root_relax.objective) root_node;
      let incumbent = ref None in
      let incumbent_key = ref infinity in
      let t_incumbent = ref 0. in
      let trace = ref [] in
      let nodes = ref 0 in
      let hit_budget = ref false in
      let try_incumbent (sol : Solution.t) =
        let x = snap ~int_tol:options.int_tol int_vars sol.x in
        let obj = Problem.objective_value problem x in
        let key = key_of_obj obj in
        if
          Problem.constraint_violation problem x <= 1e-5
          && key < !incumbent_key -. 1e-12
        then begin
          incumbent := Some { Solution.x; objective = obj };
          incumbent_key := key;
          t_incumbent := elapsed ();
          trace := (!t_incumbent, obj) :: !trace
        end
      in
      (* incremental callers (rate search) seed the incumbent with the
         previous step's feasible point: a valid primal bound that lets
         best-first search prune most of the tree immediately *)
      (match initial with
      | Some x0 when Array.length x0 = Array.length lo0 ->
          try_incumbent
            { Solution.x = x0; objective = Problem.objective_value problem x0 }
      | _ -> ());
      let gap_closed bound_key =
        match !incumbent with
        | None -> false
        | Some _ ->
            let gap = !incumbent_key -. bound_key in
            gap <= options.gap_tol *. Float.max 1. (Float.abs !incumbent_key)
                   +. 1e-9
      in
      let continue = ref true in
      while !continue do
        match Heap.Pqueue.min_key open_nodes with
        | None -> continue := false
        | Some bound_key when gap_closed bound_key -> continue := false
        | Some _ ->
            if !nodes >= options.max_nodes || elapsed () > options.time_limit
            then begin
              hit_budget := true;
              continue := false
            end
            else begin
              match Heap.Pqueue.pop open_nodes with
              | None -> continue := false
              | Some (key, node) ->
                  (* stale-node pruning: the bound was checked when the
                     node was pushed, but the incumbent may have
                     improved since; discard without branching.  (With
                     best-first order the loop-head gap check usually
                     fires first — this is the safety net for any
                     other exploration order and for nodes pushed
                     within one expansion batch.) *)
                  if key >= !incumbent_key -. 1e-12 || gap_closed key then
                    release_hot node
                  else begin
                    incr nodes;
                    match
                      fractional_var ~int_tol:options.int_tol int_vars
                        node.relax.x
                    with
                    | None ->
                        release_hot node;
                        try_incumbent node.relax
                    | Some v ->
                        let xv = node.relax.x.(v) in
                        (* one refactorisation per expansion at most:
                           if the node's tableau was evicted from the
                           hot ring, rebuild it from the basis
                           snapshot once and let both children clone
                           it instead of refactorising twice *)
                        let parent_hot =
                          match node.hot with
                          | Some _ as h -> h
                          | None when options.warm_start -> (
                              match
                                relaxation ~warm:node.basis ~lo:node.lo
                                  ~hi:node.hi ()
                              with
                              | { Simplex.status = Solution.Optimal _; hot; _ }
                                ->
                                  hot
                              | _ -> None)
                          | None -> None
                        in
                        release_hot node;
                        let expand ~lo ~hi =
                          match
                            relaxation ?hot:parent_hot ~warm:node.basis ~lo
                              ~hi ()
                          with
                          | { Simplex.status = Solution.Optimal relax; basis;
                              hot; _ } ->
                              let key = key_of_obj relax.objective in
                              if key < !incumbent_key -. 1e-12 then begin
                                let child = { lo; hi; relax; basis; hot } in
                                retain_hot child;
                                Heap.Pqueue.push open_nodes key child
                              end
                          | { Simplex.status = Solution.Infeasible; _ } -> ()
                          | { Simplex.status = Solution.Unbounded; _ } ->
                              (* a bounded parent cannot have an unbounded
                                 child; treat as numerical noise *)
                              ()
                          | { Simplex.status = Solution.Iteration_limit; _ }
                            ->
                              hit_budget := true
                        in
                        (* down child: x_v <= floor *)
                        let hi_down = Array.copy node.hi in
                        hi_down.(v) <-
                          Float.of_int (int_of_float (Float.floor xv));
                        expand ~lo:node.lo ~hi:hi_down;
                        (* up child: x_v >= ceil *)
                        let lo_up = Array.copy node.lo in
                        lo_up.(v) <-
                          Float.of_int (int_of_float (Float.ceil xv));
                        expand ~lo:lo_up ~hi:node.hi
                  end
            end
      done;
      let best_bound_key =
        match Heap.Pqueue.min_key open_nodes with
        | Some k -> Float.min k !incumbent_key
        | None -> !incumbent_key
      in
      match !incumbent with
      | Some sol ->
          let proved = (not !hit_budget) || gap_closed best_bound_key in
          finish (Solution.Optimal sol) ~proved
            ~best_bound:(obj_of_key best_bound_key) ~t_inc:!t_incumbent
            ~nodes:!nodes ~trace:!trace
      | None ->
          if !hit_budget then
            finish Solution.Iteration_limit ~proved:false
              ~best_bound:(obj_of_key best_bound_key) ~t_inc:0. ~nodes:!nodes
              ~trace:!trace
          else
            finish Solution.Infeasible ~proved:true ~best_bound:nan ~t_inc:0.
              ~nodes:!nodes ~trace:!trace)
