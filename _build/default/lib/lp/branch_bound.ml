type options = {
  max_nodes : int;
  int_tol : float;
  gap_tol : float;
  time_limit : float;
  simplex : Simplex.options;
}

let default_options =
  {
    max_nodes = 200_000;
    int_tol = 1e-6;
    gap_tol = 0.;
    time_limit = infinity;
    simplex = Simplex.default_options;
  }

type stats = {
  nodes_explored : int;
  lp_solves : int;
  time_to_incumbent : float;
  time_total : float;
  proved_optimal : bool;
  best_bound : float;
  incumbent_trace : (float * float) list;
}

type node = { lo : float array; hi : float array; relax : Solution.t }

(* Most fractional integer variable, or None when integral. *)
let fractional_var ~int_tol int_vars (x : float array) =
  let best = ref None in
  let best_score = ref int_tol in
  List.iter
    (fun v ->
      let f = x.(v) -. Float.round x.(v) in
      let dist = Float.abs f in
      if dist > !best_score then begin
        (* prefer the variable closest to .5 *)
        best_score := dist;
        best := Some v
      end)
    int_vars;
  !best

let snap ~int_tol int_vars (x : float array) =
  let x = Array.copy x in
  List.iter
    (fun v ->
      let r = Float.round x.(v) in
      if Float.abs (x.(v) -. r) <= int_tol *. 10. then x.(v) <- r)
    int_vars;
  x

let solve ?(options = default_options) problem =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let minimize = Problem.direction problem = Problem.Minimize in
  (* internal keys are always "minimize": smaller is better *)
  let key_of_obj obj = if minimize then obj else -.obj in
  let obj_of_key key = if minimize then key else -.key in
  let int_vars = Problem.integer_vars problem in
  let lp_solves = ref 0 in
  let relaxation ~lo ~hi =
    incr lp_solves;
    Simplex.solve ~options:options.simplex ~lo ~hi problem
  in
  let vars = Problem.vars problem in
  let lo0 = Array.map (fun (v : Problem.var_info) -> v.lo) vars in
  let hi0 = Array.map (fun (v : Problem.var_info) -> v.hi) vars in
  let finish status ~proved ~best_bound ~t_inc ~nodes ~trace =
    ( status,
      {
        nodes_explored = nodes;
        lp_solves = !lp_solves;
        time_to_incumbent = t_inc;
        time_total = elapsed ();
        proved_optimal = proved;
        best_bound;
        incumbent_trace = List.rev trace;
      } )
  in
  match relaxation ~lo:lo0 ~hi:hi0 with
  | Solution.Infeasible ->
      finish Solution.Infeasible ~proved:true ~best_bound:nan ~t_inc:0.
        ~nodes:0 ~trace:[]
  | Solution.Unbounded ->
      finish Solution.Unbounded ~proved:true ~best_bound:nan ~t_inc:0. ~nodes:0
        ~trace:[]
  | Solution.Iteration_limit ->
      finish Solution.Iteration_limit ~proved:false ~best_bound:nan ~t_inc:0.
        ~nodes:0 ~trace:[]
  | Solution.Optimal root_relax -> (
      let open_nodes : node Heap.Pqueue.t = Heap.Pqueue.create () in
      Heap.Pqueue.push open_nodes
        (key_of_obj root_relax.objective)
        { lo = lo0; hi = hi0; relax = root_relax };
      let incumbent = ref None in
      let incumbent_key = ref infinity in
      let t_incumbent = ref 0. in
      let trace = ref [] in
      let nodes = ref 0 in
      let hit_budget = ref false in
      let try_incumbent (sol : Solution.t) =
        let x = snap ~int_tol:options.int_tol int_vars sol.x in
        let obj = Problem.objective_value problem x in
        let key = key_of_obj obj in
        if
          Problem.constraint_violation problem x <= 1e-5
          && key < !incumbent_key -. 1e-12
        then begin
          incumbent := Some { Solution.x; objective = obj };
          incumbent_key := key;
          t_incumbent := elapsed ();
          trace := (!t_incumbent, obj) :: !trace
        end
      in
      let gap_closed bound_key =
        match !incumbent with
        | None -> false
        | Some _ ->
            let gap = !incumbent_key -. bound_key in
            gap <= options.gap_tol *. Float.max 1. (Float.abs !incumbent_key)
                   +. 1e-9
      in
      let continue = ref true in
      while !continue do
        match Heap.Pqueue.min_key open_nodes with
        | None -> continue := false
        | Some bound_key when gap_closed bound_key -> continue := false
        | Some _ ->
            if !nodes >= options.max_nodes || elapsed () > options.time_limit
            then begin
              hit_budget := true;
              continue := false
            end
            else begin
              match Heap.Pqueue.pop open_nodes with
              | None -> continue := false
              | Some (_, node) -> (
                  incr nodes;
                  match
                    fractional_var ~int_tol:options.int_tol int_vars
                      node.relax.x
                  with
                  | None -> try_incumbent node.relax
                  | Some v ->
                      let xv = node.relax.x.(v) in
                      let expand ~lo ~hi =
                        match relaxation ~lo ~hi with
                        | Solution.Optimal relax ->
                            let key = key_of_obj relax.objective in
                            if key < !incumbent_key -. 1e-12 then
                              Heap.Pqueue.push open_nodes key { lo; hi; relax }
                        | Solution.Infeasible -> ()
                        | Solution.Unbounded ->
                            (* a bounded parent cannot have an unbounded
                               child; treat as numerical noise *)
                            ()
                        | Solution.Iteration_limit -> hit_budget := true
                      in
                      (* down child: x_v <= floor *)
                      let hi_down = Array.copy node.hi in
                      hi_down.(v) <- Float.of_int (int_of_float (Float.floor xv));
                      expand ~lo:node.lo ~hi:hi_down;
                      (* up child: x_v >= ceil *)
                      let lo_up = Array.copy node.lo in
                      lo_up.(v) <- Float.of_int (int_of_float (Float.ceil xv));
                      expand ~lo:lo_up ~hi:node.hi)
            end
      done;
      let best_bound_key =
        match Heap.Pqueue.min_key open_nodes with
        | Some k -> Float.min k !incumbent_key
        | None -> !incumbent_key
      in
      match !incumbent with
      | Some sol ->
          let proved = (not !hit_budget) || gap_closed best_bound_key in
          finish (Solution.Optimal sol) ~proved
            ~best_bound:(obj_of_key best_bound_key) ~t_inc:!t_incumbent
            ~nodes:!nodes ~trace:!trace
      | None ->
          if !hit_budget then
            finish Solution.Iteration_limit ~proved:false
              ~best_bound:(obj_of_key best_bound_key) ~t_inc:0. ~nodes:!nodes
              ~trace:!trace
          else
            finish Solution.Infeasible ~proved:true ~best_bound:nan ~t_inc:0.
              ~nodes:!nodes ~trace:!trace)
