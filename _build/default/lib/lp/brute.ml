let solve ?(max_combinations = 2_000_000) problem =
  let int_vars = Array.of_list (Problem.integer_vars problem) in
  let vars = Problem.vars problem in
  let ranges =
    Array.map
      (fun v ->
        let info = vars.(v) in
        if not (Float.is_finite info.lo && Float.is_finite info.hi) then
          invalid_arg "Brute.solve: integer variable with infinite bound";
        let lo = int_of_float (Float.ceil (info.lo -. 1e-9)) in
        let hi = int_of_float (Float.floor (info.hi +. 1e-9)) in
        (lo, hi))
      int_vars
  in
  let count =
    Array.fold_left
      (fun acc (lo, hi) ->
        if hi < lo then 0 else acc * (hi - lo + 1))
      1 ranges
  in
  if count > max_combinations then
    invalid_arg "Brute.solve: too many integer combinations";
  if count = 0 then Solution.Infeasible
  else begin
    let n = Problem.n_vars problem in
    let lo0 = Array.map (fun (v : Problem.var_info) -> v.lo) vars in
    let hi0 = Array.map (fun (v : Problem.var_info) -> v.hi) vars in
    let minimize = Problem.direction problem = Problem.Minimize in
    let best = ref None in
    let best_key = ref infinity in
    let assignment = Array.map fst ranges in
    let saw_unbounded = ref false in
    let rec enumerate i =
      if i = Array.length int_vars then begin
        let lo = Array.make n 0. and hi = Array.make n 0. in
        Array.blit lo0 0 lo 0 n;
        Array.blit hi0 0 hi 0 n;
        Array.iteri
          (fun k v ->
            let x = Float.of_int assignment.(k) in
            lo.(v) <- x;
            hi.(v) <- x)
          int_vars;
        match Simplex.solve ~lo ~hi problem with
        | Solution.Optimal sol ->
            let key = if minimize then sol.objective else -.sol.objective in
            if key < !best_key then begin
              best_key := key;
              best := Some sol
            end
        | Solution.Infeasible -> ()
        | Solution.Unbounded -> saw_unbounded := true
        | Solution.Iteration_limit -> ()
      end
      else begin
        let lo, hi = ranges.(i) in
        for v = lo to hi do
          assignment.(i) <- v;
          enumerate (i + 1)
        done
      end
    in
    enumerate 0;
    if !saw_unbounded then Solution.Unbounded
    else match !best with Some s -> Solution.Optimal s | None -> Solution.Infeasible
  end
