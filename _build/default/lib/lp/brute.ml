(* Shared exhaustive enumeration over all integer assignments within
   the declared bounds.  [visit] is called once per assignment with the
   integer vector and the status of the continuous remainder. *)
let enumerate ?(max_combinations = 2_000_000) problem visit =
  let int_vars = Array.of_list (Problem.integer_vars problem) in
  let vars = Problem.vars problem in
  let ranges =
    Array.map
      (fun v ->
        let info = vars.(v) in
        if not (Float.is_finite info.lo && Float.is_finite info.hi) then
          invalid_arg "Brute.solve: integer variable with infinite bound";
        let lo = int_of_float (Float.ceil (info.lo -. 1e-9)) in
        let hi = int_of_float (Float.floor (info.hi +. 1e-9)) in
        (lo, hi))
      int_vars
  in
  let count =
    Array.fold_left
      (fun acc (lo, hi) ->
        if hi < lo then 0 else acc * (hi - lo + 1))
      1 ranges
  in
  if count > max_combinations then
    invalid_arg "Brute.solve: too many integer combinations";
  if count > 0 then begin
    let n = Problem.n_vars problem in
    let lo0 = Array.map (fun (v : Problem.var_info) -> v.lo) vars in
    let hi0 = Array.map (fun (v : Problem.var_info) -> v.hi) vars in
    let assignment = Array.map fst ranges in
    let rec go i =
      if i = Array.length int_vars then begin
        let lo = Array.make n 0. and hi = Array.make n 0. in
        Array.blit lo0 0 lo 0 n;
        Array.blit hi0 0 hi 0 n;
        Array.iteri
          (fun k v ->
            let x = Float.of_int assignment.(k) in
            lo.(v) <- x;
            hi.(v) <- x)
          int_vars;
        visit assignment (Simplex.solve ~lo ~hi problem)
      end
      else begin
        let lo, hi = ranges.(i) in
        for v = lo to hi do
          assignment.(i) <- v;
          go (i + 1)
        done
      end
    in
    go 0
  end

let solve ?max_combinations problem =
  let minimize = Problem.direction problem = Problem.Minimize in
  let best = ref None in
  let best_key = ref infinity in
  let saw_unbounded = ref false in
  let seen_any = ref false in
  enumerate ?max_combinations problem (fun _ status ->
      seen_any := true;
      match status with
      | Solution.Optimal sol ->
          let key = if minimize then sol.objective else -.sol.objective in
          if key < !best_key then begin
            best_key := key;
            best := Some sol
          end
      | Solution.Unbounded -> saw_unbounded := true
      | Solution.Infeasible | Solution.Iteration_limit -> ());
  if not !seen_any then Solution.Infeasible
  else if !saw_unbounded then Solution.Unbounded
  else
    match !best with
    | Some s -> Solution.Optimal s
    | None -> Solution.Infeasible

let optimal_points ?max_combinations ?(obj_tol = 1e-6) problem =
  let minimize = Problem.direction problem = Problem.Minimize in
  let best_key = ref infinity in
  let acc = ref [] in  (* (key, integer assignment), best-so-far window *)
  enumerate ?max_combinations problem (fun assignment status ->
      match status with
      | Solution.Optimal sol ->
          let key = if minimize then sol.objective else -.sol.objective in
          if key < !best_key -. obj_tol then begin
            best_key := key;
            (* drop entries that the new best pushes out of the window *)
            acc :=
              (key, Array.map Float.of_int assignment)
              :: List.filter (fun (k, _) -> k <= key +. obj_tol) !acc
          end
          else if key <= !best_key +. obj_tol then
            acc := (key, Array.map Float.of_int assignment) :: !acc
      | Solution.Infeasible | Solution.Unbounded | Solution.Iteration_limit ->
          ());
  match !acc with
  | [] -> None
  | entries ->
      let best = !best_key in
      let points =
        List.rev_map snd
          (List.filter (fun (k, _) -> k <= best +. obj_tol) entries)
      in
      let obj = if minimize then best else -.best in
      Some (obj, points)
