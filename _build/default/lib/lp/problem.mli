(** Linear / integer linear program builder.

    A problem is a set of bounded variables, a list of linear
    constraints, and a linear objective.  Variables are identified by
    the integer index returned from {!add_var}.  The builder is
    mutable; once handed to a solver it is treated as read-only.

    This module replaces the role of [lp_solve] in the original
    Wishbone system (see DESIGN.md, substitution table). *)

type sense = Le | Ge | Eq

type direction = Minimize | Maximize

(** A single linear constraint [sum coeffs {<=,>=,=} rhs].  Terms with
    duplicate variable indices are summed. *)
type constr = {
  terms : (int * float) list;
  sense : sense;
  rhs : float;
  cname : string;
}

type var_info = {
  vname : string;
  lo : float;  (** lower bound; must be finite *)
  hi : float;  (** upper bound; may be [infinity] *)
  integer : bool;
}

type t

val create : unit -> t

val add_var :
  ?name:string -> ?lo:float -> ?hi:float -> ?integer:bool -> t -> int
(** [add_var p] registers a fresh variable and returns its index.
    Defaults: [lo = 0.], [hi = infinity], [integer = false].
    @raise Invalid_argument if [lo] is infinite or [lo > hi]. *)

val add_constr :
  ?name:string -> t -> (int * float) list -> sense -> float -> unit
(** [add_constr p terms sense rhs] appends a constraint.
    @raise Invalid_argument on an out-of-range variable index. *)

val set_objective : t -> direction -> (int * float) list -> unit
(** Replaces the objective.  The default objective is [Minimize 0]. *)

val fix_var : t -> int -> float -> unit
(** [fix_var p v x] clamps both bounds of [v] to [x]; used by branch &
    bound and by partition pinning. *)

val set_bounds : t -> int -> lo:float -> hi:float -> unit

(** {1 Accessors} *)

val n_vars : t -> int
val n_constrs : t -> int
val var : t -> int -> var_info
val vars : t -> var_info array
val constrs : t -> constr array
val objective : t -> (int * float) list
val direction : t -> direction
val integer_vars : t -> int list
(** Indices of variables declared integral, in increasing order. *)

val copy : t -> t
(** Deep copy; bound changes on the copy do not affect the original. *)

val objective_value : t -> float array -> float
(** Evaluate the objective (in the problem's own direction) at a point. *)

val constraint_violation : t -> float array -> float
(** Largest violation of any constraint or bound at a point; [0.] when
    the point is feasible. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering in an LP-file-like syntax. *)
