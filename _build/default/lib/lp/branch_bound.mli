(** Best-first branch & bound for mixed-integer linear programs.

    LP relaxations are solved by {!Simplex}; open nodes are kept in a
    min-heap ordered by relaxation bound so the most promising subtree
    is explored first (this mirrors how [lp_solve]'s branch-and-bound
    behaves on the Wishbone formulations and lets us reproduce the
    paper's Figure 6 "time to discover" vs "time to prove"
    distinction).

    Statistics record when the final incumbent was found
    ([time_to_incumbent]) separately from when optimality was proved
    ([time_total]). *)

type options = {
  max_nodes : int;  (** open-node exploration budget *)
  int_tol : float;  (** how close to integral a relaxed value must be *)
  gap_tol : float;
      (** terminate when (incumbent - bound) / max(1, |incumbent|)
          falls below this; [0.] demands a full proof *)
  time_limit : float;  (** wall-clock seconds; [infinity] = unlimited *)
  simplex : Simplex.options;
}

val default_options : options

type stats = {
  nodes_explored : int;
  lp_solves : int;
  time_to_incumbent : float;
      (** seconds until the returned solution was first discovered *)
  time_total : float;  (** seconds until termination (proof or budget) *)
  proved_optimal : bool;
  best_bound : float;
      (** strongest dual bound at termination, in the problem's own
          direction *)
  incumbent_trace : (float * float) list;
      (** (time, objective) for each incumbent improvement, in
          chronological order *)
}

val solve : ?options:options -> Problem.t -> Solution.status * stats
(** Solves the problem honouring the [integer] markers set through
    {!Problem.add_var}.  Never mutates the problem. *)
