type options = {
  max_pivots : int;
  feas_tol : float;
  cost_tol : float;
  degen_window : int;
}

let default_options =
  { max_pivots = 200_000; feas_tol = 1e-7; cost_tol = 1e-9; degen_window = 40 }

(* Column status in the bounded-variable simplex. *)
type cstat = At_lower | At_upper | Basic

type tableau = {
  m : int;  (* rows *)
  ncols : int;  (* structural + slack + artificial columns *)
  n : int;  (* structural columns *)
  t : float array array;  (* m x ncols, kept reduced w.r.t. the basis *)
  beta : float array;  (* current value of the basic variable per row *)
  basis : int array;  (* column basic in each row *)
  in_row : int array;  (* column -> row index, or -1 when nonbasic *)
  stat : cstat array;  (* per column *)
  up : float array;  (* per-column upper bound in shifted space *)
  d : float array;  (* reduced costs for the current phase *)
  opts : options;
}

(* Value of column [j] in shifted space. *)
let col_value tab j =
  match tab.stat.(j) with
  | Basic -> tab.beta.(tab.in_row.(j))
  | At_lower -> 0.
  | At_upper -> tab.up.(j)

(* Reduced costs d_j = c_j - sum_i c_basis(i) * T[i][j]. *)
let compute_duals tab (c : float array) =
  Array.blit c 0 tab.d 0 tab.ncols;
  for i = 0 to tab.m - 1 do
    let cb = c.(tab.basis.(i)) in
    if cb <> 0. then begin
      let row = tab.t.(i) in
      let d = tab.d in
      for j = 0 to tab.ncols - 1 do
        d.(j) <- d.(j) -. (cb *. row.(j))
      done
    end
  done

let phase_objective tab (c : float array) =
  let v = ref 0. in
  for j = 0 to tab.ncols - 1 do
    if c.(j) <> 0. then v := !v +. (c.(j) *. col_value tab j)
  done;
  !v

(* Gauss-reduce all rows (and the dual row) against pivot row [r],
   column [j].  [beta] is updated separately by the caller via the
   step formula, so only the matrix and duals change here. *)
let row_reduce tab r j =
  let piv_row = tab.t.(r) in
  let inv = 1. /. piv_row.(j) in
  for k = 0 to tab.ncols - 1 do
    piv_row.(k) <- piv_row.(k) *. inv
  done;
  piv_row.(j) <- 1.;
  for i = 0 to tab.m - 1 do
    if i <> r then begin
      let f = tab.t.(i).(j) in
      if f <> 0. then begin
        let row = tab.t.(i) in
        for k = 0 to tab.ncols - 1 do
          row.(k) <- row.(k) -. (f *. piv_row.(k))
        done;
        row.(j) <- 0.
      end
    end
  done;
  let f = tab.d.(j) in
  if f <> 0. then begin
    for k = 0 to tab.ncols - 1 do
      tab.d.(k) <- tab.d.(k) -. (f *. piv_row.(k))
    done;
    tab.d.(j) <- 0.
  end

type step = Optimal_reached | Unbounded_ray | Budget_exhausted

(* Core bounded-variable simplex loop for the current [tab.d].
   [allowed j] filters entering candidates (used to freeze artificial
   columns in phase 2). *)
let iterate tab ~allowed ~pivots_left =
  let opts = tab.opts in
  let degen_run = ref 0 in
  let result = ref None in
  while !result = None do
    if !pivots_left <= 0 then result := Some Budget_exhausted
    else begin
      decr pivots_left;
      let use_bland = !degen_run > opts.degen_window in
      (* --- pricing: pick the entering column --- *)
      let enter = ref (-1) in
      let best = ref 0. in
      (let j = ref 0 in
       while !j < tab.ncols && not (use_bland && !enter >= 0) do
         let jj = !j in
         (if tab.stat.(jj) <> Basic && tab.up.(jj) > opts.feas_tol
             && allowed jj
          then
            let dj = tab.d.(jj) in
            let eligible =
              match tab.stat.(jj) with
              | At_lower -> dj < -.opts.cost_tol
              | At_upper -> dj > opts.cost_tol
              | Basic -> false
            in
            if eligible then
              let score = Float.abs dj in
              if use_bland || score > !best then begin
                best := score;
                enter := jj
              end);
         incr j
       done);
      if !enter < 0 then result := Some Optimal_reached
      else begin
        let j = !enter in
        let sigma = if tab.stat.(j) = At_lower then 1. else -1. in
        (* --- ratio test --- *)
        let tmax = ref tab.up.(j) in
        (* row index achieving the minimum, -1 = bound flip *)
        let leave = ref (-1) in
        let leave_to_upper = ref false in
        let best_alpha = ref 0. in
        for i = 0 to tab.m - 1 do
          let alpha = tab.t.(i).(j) in
          let rate = sigma *. alpha in
          if rate > opts.feas_tol then begin
            (* basic variable decreases towards 0 *)
            let limit = Float.max 0. (tab.beta.(i) /. rate) in
            if
              limit < !tmax -. opts.feas_tol
              || (limit <= !tmax +. opts.feas_tol
                  && !leave >= 0
                  && Float.abs alpha > !best_alpha)
            then begin
              tmax := Float.min limit !tmax;
              leave := i;
              leave_to_upper := false;
              best_alpha := Float.abs alpha
            end
          end
          else if rate < -.opts.feas_tol then begin
            let ub = tab.up.(tab.basis.(i)) in
            if Float.is_finite ub then begin
              (* basic variable increases towards its upper bound *)
              let limit = Float.max 0. ((ub -. tab.beta.(i)) /. -.rate) in
              if
                limit < !tmax -. opts.feas_tol
                || (limit <= !tmax +. opts.feas_tol
                    && !leave >= 0
                    && Float.abs alpha > !best_alpha)
              then begin
                tmax := Float.min limit !tmax;
                leave := i;
                leave_to_upper := true;
                best_alpha := Float.abs alpha
              end
            end
          end
        done;
        if Float.is_finite !tmax then begin
          let t = !tmax in
          let improvement = t *. Float.abs tab.d.(j) in
          if improvement <= opts.cost_tol then incr degen_run
          else degen_run := 0;
          (* apply the step to the basic values *)
          for i = 0 to tab.m - 1 do
            tab.beta.(i) <- tab.beta.(i) -. (sigma *. t *. tab.t.(i).(j))
          done;
          if !leave < 0 then begin
            (* pure bound flip of the entering column *)
            tab.stat.(j) <-
              (if tab.stat.(j) = At_lower then At_upper else At_lower)
          end
          else begin
            let r = !leave in
            let old = tab.basis.(r) in
            tab.stat.(old) <- (if !leave_to_upper then At_upper else At_lower);
            tab.in_row.(old) <- -1;
            let enter_val =
              (if tab.stat.(j) = At_lower then 0. else tab.up.(j))
              +. (sigma *. t)
            in
            tab.basis.(r) <- j;
            tab.in_row.(j) <- r;
            tab.stat.(j) <- Basic;
            row_reduce tab r j;
            tab.beta.(r) <- enter_val
          end
        end
        else result := Some Unbounded_ray
      end
    end
  done;
  match !result with Some s -> s | None -> assert false

(* Degenerate pivot to remove a basic artificial variable sitting at
   zero after phase 1; returns false when the row is redundant. *)
let pivot_out_artificial tab r ~n_real =
  let best = ref (-1) in
  let best_mag = ref 1e-7 in
  for j = 0 to n_real - 1 do
    if tab.stat.(j) <> Basic then begin
      let mag = Float.abs tab.t.(r).(j) in
      if mag > !best_mag then begin
        best_mag := mag;
        best := j
      end
    end
  done;
  if !best < 0 then false
  else begin
    let j = !best in
    let old = tab.basis.(r) in
    tab.stat.(old) <- At_lower;
    tab.in_row.(old) <- -1;
    let v = col_value tab j in
    tab.basis.(r) <- j;
    tab.in_row.(j) <- r;
    tab.stat.(j) <- Basic;
    row_reduce tab r j;
    tab.beta.(r) <- v;
    true
  end

let solve ?(options = default_options) ?lo ?hi problem =
  let n = Problem.n_vars problem in
  let vars = Problem.vars problem in
  let constrs = Problem.constrs problem in
  let m = Array.length constrs in
  let lo =
    match lo with
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Simplex.solve: lo override has wrong length";
        a
    | None -> Array.map (fun (v : Problem.var_info) -> v.lo) vars
  in
  let hi =
    match hi with
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Simplex.solve: hi override has wrong length";
        a
    | None -> Array.map (fun (v : Problem.var_info) -> v.hi) vars
  in
  let bound_conflict = ref false in
  for j = 0 to n - 1 do
    if lo.(j) > hi.(j) +. options.feas_tol then bound_conflict := true
  done;
  if !bound_conflict then Solution.Infeasible
  else begin
    (* slack column per inequality *)
    let n_slack =
      Array.fold_left
        (fun acc (c : Problem.constr) ->
          match c.sense with Le | Ge -> acc + 1 | Eq -> acc)
        0 constrs
    in
    let ncols = n + n_slack + m in
    let t = Array.init m (fun _ -> Array.make ncols 0.) in
    let beta = Array.make m 0. in
    let up = Array.make ncols infinity in
    for j = 0 to n - 1 do
      up.(j) <- Float.max 0. (hi.(j) -. lo.(j))
    done;
    (* fill rows; shift structural variables by their lower bound *)
    let slack_idx = ref n in
    Array.iteri
      (fun i (c : Problem.constr) ->
        let row = t.(i) in
        List.iter (fun (v, coef) -> row.(v) <- row.(v) +. coef) c.terms;
        let rhs = ref c.rhs in
        for j = 0 to n - 1 do
          if row.(j) <> 0. then rhs := !rhs -. (row.(j) *. lo.(j))
        done;
        (match c.sense with
        | Le ->
            row.(!slack_idx) <- 1.;
            incr slack_idx
        | Ge ->
            row.(!slack_idx) <- -1.;
            incr slack_idx
        | Eq -> ());
        (* row equilibration: normalise by the largest coefficient so
           mixed-magnitude models stay well conditioned *)
        let norm = ref 0. in
        for k = 0 to ncols - 1 do
          norm := Float.max !norm (Float.abs row.(k))
        done;
        if !norm > 0. && (!norm > 16. || !norm < 1. /. 16.) then begin
          let inv = 1. /. !norm in
          for k = 0 to ncols - 1 do
            row.(k) <- row.(k) *. inv
          done;
          rhs := !rhs *. inv
        end;
        if !rhs < 0. then begin
          for k = 0 to ncols - 1 do
            row.(k) <- -.row.(k)
          done;
          rhs := -. !rhs
        end;
        (* artificial column for this row *)
        row.(n + n_slack + i) <- 1.;
        beta.(i) <- !rhs)
      constrs;
    let basis = Array.init m (fun i -> n + n_slack + i) in
    let in_row = Array.make ncols (-1) in
    Array.iteri (fun i b -> in_row.(b) <- i) basis;
    let stat = Array.make ncols At_lower in
    Array.iter (fun b -> stat.(b) <- Basic) basis;
    let tab =
      { m; ncols; n; t; beta; basis; in_row; stat; up; d = Array.make ncols 0.;
        opts = options }
    in
    let pivots_left = ref options.max_pivots in
    (* ---- phase 1: drive artificials to zero ---- *)
    let c1 = Array.make ncols 0. in
    for j = n + n_slack to ncols - 1 do
      c1.(j) <- 1.
    done;
    compute_duals tab c1;
    let phase1 = iterate tab ~allowed:(fun _ -> true) ~pivots_left in
    match phase1 with
    | Budget_exhausted -> Solution.Iteration_limit
    | Unbounded_ray ->
        (* cannot happen: the phase-1 objective is bounded below *)
        Solution.Infeasible
    | Optimal_reached ->
        (* feasibility is judged by the actual violation of each
           original constraint, with a tolerance that grows mildly with
           the right-hand-side magnitude (rounding accumulates in
           absolute terms).  Judging by the phase-1 objective alone is
           unsafe when one constraint has a huge vacuous bound. *)
        let x_now = Array.make n 0. in
        for j = 0 to n - 1 do
          x_now.(j) <- lo.(j) +. col_value tab j
        done;
        let violated = ref false in
        Array.iter
          (fun (c : Problem.constr) ->
            let lhs =
              List.fold_left
                (fun acc (v, coef) -> acc +. (coef *. x_now.(v)))
                0. c.terms
            in
            let viol =
              match c.sense with
              | Problem.Le -> lhs -. c.rhs
              | Problem.Ge -> c.rhs -. lhs
              | Problem.Eq -> Float.abs (lhs -. c.rhs)
            in
            let tol =
              options.feas_tol *. 100. *. (1. +. (1e-6 *. Float.abs c.rhs))
            in
            if viol > tol then violated := true)
          constrs;
        if !violated then Solution.Infeasible
        else begin
          (* remove artificials from the basis where possible *)
          let n_real = n + n_slack in
          for i = 0 to m - 1 do
            if tab.basis.(i) >= n_real then
              ignore (pivot_out_artificial tab i ~n_real)
          done;
          for j = n_real to ncols - 1 do
            up.(j) <- 0.
          done;
          (* ---- phase 2: the real objective ---- *)
          let minimize = Problem.direction problem = Problem.Minimize in
          let c2 = Array.make ncols 0. in
          let offset = ref 0. in
          List.iter
            (fun (v, coef) ->
              let coef = if minimize then coef else -.coef in
              c2.(v) <- c2.(v) +. coef;
              offset := !offset +. (coef *. lo.(v)))
            (Problem.objective problem);
          compute_duals tab c2;
          let allowed j = j < n_real in
          let phase2 = iterate tab ~allowed ~pivots_left in
          match phase2 with
          | Budget_exhausted -> Solution.Iteration_limit
          | Unbounded_ray -> Solution.Unbounded
          | Optimal_reached ->
              let x = Array.make n 0. in
              for j = 0 to n - 1 do
                x.(j) <- lo.(j) +. col_value tab j
              done;
              let obj = phase_objective tab c2 +. !offset in
              let obj = if minimize then obj else -.obj in
              Solution.Optimal { x; objective = obj }
        end
  end
