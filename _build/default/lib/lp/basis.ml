type cstat = At_lower | At_upper | Basic

type t = { rows : int array; stat : cstat array }

let n_rows b = Array.length b.rows
let n_cols b = Array.length b.stat
let copy b = { rows = Array.copy b.rows; stat = Array.copy b.stat }

let compatible b ~rows ~cols =
  Array.length b.rows = rows
  && Array.length b.stat = cols
  && Array.for_all (fun j -> j >= 0 && j < cols) b.rows
