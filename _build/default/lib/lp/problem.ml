type sense = Le | Ge | Eq

type direction = Minimize | Maximize

type constr = {
  terms : (int * float) list;
  sense : sense;
  rhs : float;
  cname : string;
}

type var_info = {
  vname : string;
  lo : float;
  hi : float;
  integer : bool;
}

type t = {
  mutable vars_rev : var_info list;
  mutable n : int;
  mutable constrs_rev : constr list;
  mutable m : int;
  mutable obj : (int * float) list;
  mutable dir : direction;
  (* caches invalidated on mutation *)
  mutable vars_cache : var_info array option;
  mutable constrs_cache : constr array option;
}

let create () =
  {
    vars_rev = [];
    n = 0;
    constrs_rev = [];
    m = 0;
    obj = [];
    dir = Minimize;
    vars_cache = None;
    constrs_cache = None;
  }

let add_var ?name ?(lo = 0.) ?(hi = infinity) ?(integer = false) p =
  if not (Float.is_finite lo) then
    invalid_arg "Problem.add_var: lower bound must be finite";
  if lo > hi then invalid_arg "Problem.add_var: lo > hi";
  let id = p.n in
  let vname = match name with Some s -> s | None -> Printf.sprintf "x%d" id in
  p.vars_rev <- { vname; lo; hi; integer } :: p.vars_rev;
  p.n <- id + 1;
  p.vars_cache <- None;
  id

let check_terms p terms =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= p.n then
        invalid_arg (Printf.sprintf "Problem: variable index %d out of range" v))
    terms

let add_constr ?name p terms sense rhs =
  check_terms p terms;
  let cname =
    match name with Some s -> s | None -> Printf.sprintf "c%d" p.m
  in
  p.constrs_rev <- { terms; sense; rhs; cname } :: p.constrs_rev;
  p.m <- p.m + 1;
  p.constrs_cache <- None

let set_objective p dir terms =
  check_terms p terms;
  p.obj <- terms;
  p.dir <- dir

let vars p =
  match p.vars_cache with
  | Some a -> a
  | None ->
      let a = Array.of_list (List.rev p.vars_rev) in
      p.vars_cache <- Some a;
      a

let constrs p =
  match p.constrs_cache with
  | Some a -> a
  | None ->
      let a = Array.of_list (List.rev p.constrs_rev) in
      p.constrs_cache <- Some a;
      a

let var p i =
  if i < 0 || i >= p.n then invalid_arg "Problem.var: index out of range";
  (vars p).(i)

let update_var p i f =
  let a = Array.copy (vars p) in
  a.(i) <- f a.(i);
  p.vars_rev <- List.rev (Array.to_list a);
  p.vars_cache <- Some a

let fix_var p i x =
  if i < 0 || i >= p.n then invalid_arg "Problem.fix_var: index out of range";
  update_var p i (fun v -> { v with lo = x; hi = x })

let set_bounds p i ~lo ~hi =
  if i < 0 || i >= p.n then invalid_arg "Problem.set_bounds: index out of range";
  if not (Float.is_finite lo) then
    invalid_arg "Problem.set_bounds: lower bound must be finite";
  if lo > hi then invalid_arg "Problem.set_bounds: lo > hi";
  update_var p i (fun v -> { v with lo; hi })

let n_vars p = p.n
let n_constrs p = p.m
let objective p = p.obj
let direction p = p.dir

let integer_vars p =
  let a = vars p in
  let acc = ref [] in
  for i = Array.length a - 1 downto 0 do
    if a.(i).integer then acc := i :: !acc
  done;
  !acc

let copy p =
  {
    vars_rev = p.vars_rev;
    n = p.n;
    constrs_rev = p.constrs_rev;
    m = p.m;
    obj = p.obj;
    dir = p.dir;
    vars_cache = (match p.vars_cache with Some a -> Some (Array.copy a) | None -> None);
    constrs_cache = p.constrs_cache;
  }

let eval_terms terms (x : float array) =
  List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0. terms

let objective_value p x = eval_terms p.obj x

let constraint_violation p x =
  let worst = ref 0. in
  let bump v = if v > !worst then worst := v in
  Array.iter
    (fun c ->
      let lhs = eval_terms c.terms x in
      match c.sense with
      | Le -> bump (lhs -. c.rhs)
      | Ge -> bump (c.rhs -. lhs)
      | Eq -> bump (Float.abs (lhs -. c.rhs)))
    (constrs p);
  Array.iteri
    (fun i v ->
      bump (v.lo -. x.(i));
      if Float.is_finite v.hi then bump (x.(i) -. v.hi))
    (vars p);
  !worst

let pp_terms ppf terms names =
  let first = ref true in
  List.iter
    (fun (v, c) ->
      if !first then begin
        Format.fprintf ppf "%g %s" c names.(v);
        first := false
      end
      else if c >= 0. then Format.fprintf ppf " + %g %s" c names.(v)
      else Format.fprintf ppf " - %g %s" (-.c) names.(v))
    terms;
  if !first then Format.fprintf ppf "0"

let pp ppf p =
  let names = Array.map (fun v -> v.vname) (vars p) in
  let dir = match p.dir with Minimize -> "min" | Maximize -> "max" in
  Format.fprintf ppf "@[<v>%s: " dir;
  pp_terms ppf p.obj names;
  Format.fprintf ppf "@,subject to:@,";
  Array.iter
    (fun c ->
      let s = match c.sense with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
      Format.fprintf ppf "  %s: " c.cname;
      pp_terms ppf c.terms names;
      Format.fprintf ppf " %s %g@," s c.rhs)
    (constrs p);
  Format.fprintf ppf "bounds:@,";
  Array.iteri
    (fun i v ->
      Format.fprintf ppf "  %g <= %s <= %g%s@," v.lo names.(i) v.hi
        (if v.integer then " (int)" else ""))
    (vars p);
  Format.fprintf ppf "@]"
