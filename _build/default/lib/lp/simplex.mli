(** Two-phase primal simplex for linear programs with bounded
    variables.

    The implementation is a dense-tableau bounded-variable simplex:
    nonbasic variables rest at either bound, the ratio test allows
    bound flips, and phase 1 drives a full set of artificial variables
    to zero.  Dantzig pricing is used with a Bland's-rule fallback
    after a run of degenerate pivots, which guarantees termination.

    Problem sizes in Wishbone are small (at most a few thousand rows
    after preprocessing), so a dense tableau is both simple and fast
    enough; see DESIGN.md. *)

type options = {
  max_pivots : int;  (** total pivot budget across both phases *)
  feas_tol : float;  (** feasibility / integrality of the basis *)
  cost_tol : float;  (** reduced-cost optimality tolerance *)
  degen_window : int;
      (** consecutive non-improving pivots before switching to Bland *)
}

val default_options : options

val solve :
  ?options:options ->
  ?lo:float array ->
  ?hi:float array ->
  Problem.t ->
  Solution.status
(** [solve p] ignores integrality markers and solves the LP
    relaxation.  [lo] / [hi], when given, override the problem's
    variable bounds without mutating it (used by branch & bound).
    Overriding arrays must have length [Problem.n_vars p]. *)
