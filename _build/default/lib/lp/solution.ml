type t = { x : float array; objective : float }

type status = Optimal of t | Infeasible | Unbounded | Iteration_limit

let is_optimal = function Optimal _ -> true | _ -> false

let get = function
  | Optimal s -> s
  | Infeasible -> invalid_arg "Solution.get: infeasible"
  | Unbounded -> invalid_arg "Solution.get: unbounded"
  | Iteration_limit -> invalid_arg "Solution.get: iteration limit"

let pp_status ppf = function
  | Optimal s -> Format.fprintf ppf "optimal (objective %g)" s.objective
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
  | Iteration_limit -> Format.fprintf ppf "iteration limit reached"
