(** Solver results shared by {!Simplex} and {!Branch_bound}. *)

type t = {
  x : float array;  (** one entry per problem variable *)
  objective : float;
      (** objective value at [x], in the problem's own direction *)
}

type status =
  | Optimal of t
  | Infeasible
  | Unbounded
  | Iteration_limit
      (** the solver hit its pivot / node budget before finishing *)

val is_optimal : status -> bool
val get : status -> t
(** @raise Invalid_argument when the status carries no solution. *)

val pp_status : Format.formatter -> status -> unit
