(** Partition visualisation (§3): GraphViz output where color encodes
    profiling heat (cool blue to hot red, by CPU cost) and shape
    encodes the partition (boxes on the node, ellipses on the
    server). *)

val render :
  ?assignment:bool array ->
  ?costed:Profiler.Profile.costed ->
  Profiler.Profile.raw ->
  string
(** Dot source for the profiled graph; edge labels carry bandwidth. *)

val save :
  path:string ->
  ?assignment:bool array ->
  ?costed:Profiler.Profile.costed ->
  Profiler.Profile.raw ->
  unit
