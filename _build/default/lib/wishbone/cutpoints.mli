(** Exhaustive cut-point analysis for linear pipelines.

    The speech-detection application is a pipeline of a dozen
    operators, so every cut can be examined directly (§7.2, Figures 5b
    and 7).  A cut at index [k] places the first [k] operators (in
    pipeline order) on the node. *)

type cut = {
  index : int;  (** operators on the node side *)
  label : string;  (** name of the last node-side operator *)
  node_us_per_input : float;
      (** node CPU microseconds consumed per input window *)
  cut_bytes_per_input : float;  (** bytes crossing per input window *)
  cut_bandwidth : float;  (** bytes/s at the profiled rate *)
  cpu_fraction : float;  (** node CPU fraction at the profiled rate *)
  max_rate_compute : float;
      (** highest input-rate multiple the node CPU sustains *)
  max_rate_network : float;
      (** highest input-rate multiple the radio budget sustains *)
  viable : bool;
      (** strictly data-reducing relative to shallower viable cuts —
          the only cuts §4.1 preprocessing keeps *)
}

val pipeline_order : Profiler.Profile.raw -> int array
(** Topological order of a linear pipeline.
    @raise Invalid_argument when the graph is not a pipeline. *)

val enumerate :
  ?net_budget:float ->
  Profiler.Profile.raw ->
  Profiler.Platform.t ->
  cut list
(** One entry per cut index 1..n-1 (the source always stays on the
    node, the sink on the server).  [net_budget] defaults to the
    platform radio goodput. *)

val best_by_rate : cut list -> cut option
(** The viable cut admitting the highest min(compute, network)
    sustainable rate — the throughput-optimal split. *)

val pp : Format.formatter -> cut list -> unit
