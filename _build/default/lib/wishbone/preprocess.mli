(** Graph preprocessing (§4.1): eliminate edges that can never be
    viable cut points.

    Any data-expanding or data-neutral operator (total output
    bandwidth at least its input bandwidth) is merged with its
    downstream operators — a cut below it can always be improved by
    cutting above it.  This shrinks the search space without
    eliminating optimal solutions; on the EEG application it is what
    makes the 1412-operator ILP solvable in seconds.

    The result is a contracted multigraph of supernodes with summed
    CPU costs and aggregated inter-supernode bandwidths.  Strongly
    connected components introduced by contraction are collapsed so
    the quotient stays a DAG.  If collapsing would merge a node-pinned
    and a server-pinned supernode, preprocessing backs off to the
    identity contraction (correctness over reduction). *)

type contracted = {
  spec : Spec.t;  (** the original problem *)
  n_super : int;
  super_of : int array;  (** original op -> supernode *)
  members : int list array;  (** supernode -> original ops *)
  cpu : float array;  (** per supernode *)
  placement : Movable.placement array;  (** per supernode *)
  edges : (int * int * float) array;
      (** (src supernode, dst supernode, bytes/s), deduplicated *)
}

val identity : Spec.t -> contracted
(** One supernode per operator (preprocessing disabled). *)

val contract : Spec.t -> contracted

val expand : contracted -> bool array -> bool array
(** Map a supernode assignment (true = node) back to original
    operators. *)

val reduction : contracted -> int * int
(** (original movable vertices, movable supernodes) — the search-space
    shrink achieved. *)
