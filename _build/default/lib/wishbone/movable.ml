open Dataflow

type mode = Conservative | Permissive

type placement = Pin_node | Pin_server | Movable

let base_placement mode (op : Op.t) =
  match op.side_effect with
  | Op.Sensor_input | Op.Actuator -> Pin_node
  | Op.Display_output -> Pin_server
  | Op.Pure -> (
      match op.namespace with
      | Op.Server -> Pin_server
      | Op.Node ->
          if op.stateful then
            match mode with
            | Conservative -> Pin_node
            | Permissive -> Movable
          else Movable)

let classify mode graph =
  let n = Graph.n_ops graph in
  let placement =
    Array.init n (fun i -> base_placement mode (Graph.op graph i))
  in
  (* sanity: node-pinned hardware ops must be declared in Node{} *)
  let bad = ref None in
  Array.iteri
    (fun i p ->
      if p = Pin_node && (Graph.op graph i).Op.namespace = Op.Server then
        bad :=
          Some
            (Printf.sprintf
               "operator %s samples node hardware but is declared on the server"
               (Graph.op graph i).Op.name))
    placement;
  match !bad with
  | Some msg -> Error msg
  | None ->
      (* single-crossing closure: ancestors of node-pinned operators
         are node-pinned; descendants of server-pinned operators are
         server-pinned *)
      let node_seeds = ref [] and server_seeds = ref [] in
      Array.iteri
        (fun i p ->
          match p with
          | Pin_node -> node_seeds := i :: !node_seeds
          | Pin_server -> server_seeds := i :: !server_seeds
          | Movable -> ())
        placement;
      let must_node = Graph.ancestors graph !node_seeds in
      let must_server = Graph.descendants graph !server_seeds in
      let conflict = ref None in
      for i = 0 to n - 1 do
        if must_node.(i) && must_server.(i) && !conflict = None then
          conflict :=
            Some
              (Printf.sprintf
                 "operator %s is forced onto both node and server: the data \
                  path would cross the network more than once"
                 (Graph.op graph i).Op.name)
      done;
      (match !conflict with
      | Some msg -> Error msg
      | None ->
          for i = 0 to n - 1 do
            if must_node.(i) then placement.(i) <- Pin_node
            else if must_server.(i) then placement.(i) <- Pin_server
          done;
          Ok placement)

let movable_count placement =
  Array.fold_left
    (fun acc p -> if p = Movable then acc + 1 else acc)
    0 placement

let pp_placement ppf = function
  | Pin_node -> Format.fprintf ppf "node (pinned)"
  | Pin_server -> Format.fprintf ppf "server (pinned)"
  | Movable -> Format.fprintf ppf "movable"
