(** Tree-based in-network aggregation (§9, future work).

    A "reduce" operator lives in the logical node partition but
    implicitly takes input not just from local streams but from child
    nodes routing through this node in an aggregation tree.  The
    partitioning algorithm is unchanged: if the reduce operator is
    assigned to the embedded node, aggregation happens in-network
    (each node forwards one aggregate instead of its children's raw
    data); otherwise all data is sent to the server.

    Concretely this changes the cost model: placed on the node, the
    reduce operator processes [fan_in] times more input (its own plus
    its children's), so its CPU cost is scaled by the tree fan-in —
    which the vertex-cost formulation expresses directly, since vertex
    costs only apply to node-resident operators. *)

val reduce_op :
  Dataflow.Builder.t ->
  name:string ->
  window:int ->
  combine:(Dataflow.Value.t list -> Dataflow.Value.t * Dataflow.Workload.t) ->
  Dataflow.Builder.stream ->
  Dataflow.Builder.stream
(** A stateful windowed reducer: buffers [window] consecutive elements
    and emits [combine] of them (e.g. a mean of sensor readings). *)

val annotate_fan_in : Spec.t -> op:int -> fan_in:float -> Spec.t
(** Scale the CPU cost of a reduce operator by the aggregation-tree
    fan-in: the extra work it absorbs when running in-network.
    @raise Invalid_argument when [fan_in < 1] or the op is unknown. *)

val in_network_benefit :
  Spec.t -> op:int -> float
(** Bandwidth saved per node when the reduce operator runs in-network:
    total input bandwidth minus output bandwidth of the operator
    (clamped at 0). *)
