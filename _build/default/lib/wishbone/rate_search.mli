(** Data rate as a free variable (§4.3).

    When no partition satisfies the budgets at the requested input
    rate, Wishbone binary-searches for the maximum rate multiplier
    that still admits a feasible partition.  Because CPU and network
    load grow monotonically with input rate, feasibility is monotone
    and binary search is exact (up to [tol]). *)

type result = {
  rate_multiplier : float;
      (** highest feasible multiple of the profiled input rate *)
  report : Partitioner.report;  (** the partition at that rate *)
}

val default_search_options : Lp.Branch_bound.options
(** A small optimality gap (0.5%) and a per-solve node/time budget.
    Near the feasibility boundary the CPU constraint is a tight
    knapsack and exact proofs can take minutes (the paper's §7.1 tail);
    the search trades marginal optimality for bounded runtime, as the
    paper itself suggests ("use an approximate lower bound to establish
    a termination condition"). *)

val search :
  ?encoding:Ilp.encoding ->
  ?preprocess:bool ->
  ?options:Lp.Branch_bound.options ->
  ?tol:float ->
  ?max_multiplier:float ->
  Spec.t ->
  result option
(** [None] when even a vanishing input rate has no feasible partition
    (contradictory pinning or zero budgets).  [tol] is the relative
    precision of the search (default 0.01); [max_multiplier] caps the
    upward bracket (default 65536).  [options] defaults to
    {!default_search_options}. *)

val feasible_at : ?encoding:Ilp.encoding -> ?preprocess:bool ->
  ?options:Lp.Branch_bound.options -> Spec.t -> float ->
  Partitioner.outcome
(** Partition the problem with all rates scaled by the given factor. *)
