type class_spec = {
  platform : Profiler.Platform.t;
  n_nodes : int;
  net_share : float option;
}

type class_plan = {
  platform : Profiler.Platform.t;
  n_nodes : int;
  report : Partitioner.report;
}

let plan ?mode ?alpha ?beta raw ~classes =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
        let net_budget =
          match c.net_share with
          | Some s -> Some s
          | None ->
              Some
                (c.platform.Profiler.Platform.radio_bytes_per_sec
                /. Float.of_int (Int.max 1 c.n_nodes))
        in
        match
          Spec.of_profile ?mode ?net_budget ?alpha ?beta
            ~node_platform:c.platform raw
        with
        | Error m -> Error m
        | Ok spec -> (
            match Partitioner.solve spec with
            | Partitioner.Partitioned report ->
                go
                  ({ platform = c.platform; n_nodes = c.n_nodes; report }
                  :: acc)
                  rest
            | Partitioner.No_feasible_partition -> (
                match Rate_search.search spec with
                | Some { report; _ } ->
                    go
                      ({ platform = c.platform; n_nodes = c.n_nodes; report }
                      :: acc)
                      rest
                | None ->
                    Error
                      (Printf.sprintf "class %s: no feasible partition"
                         c.platform.Profiler.Platform.name))
            | Partitioner.Solver_failure m -> Error m))
  in
  go [] classes

let pp graph ppf plans =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun p ->
      Format.fprintf ppf "%s x%d: %d ops on node, cut %.1f B/s, cpu %.1f%%@,"
        p.platform.Profiler.Platform.name p.n_nodes
        (List.length (Partitioner.node_ops p.report))
        p.report.Partitioner.net
        (100. *. p.report.Partitioner.cpu);
      ignore graph)
    plans;
  Format.fprintf ppf "@]"
