open Dataflow

type cut = {
  index : int;
  label : string;
  node_us_per_input : float;
  cut_bytes_per_input : float;
  cut_bandwidth : float;
  cpu_fraction : float;
  max_rate_compute : float;
  max_rate_network : float;
  viable : bool;
}

let pipeline_order raw =
  let g = Profiler.Profile.graph raw in
  if not (Graph.is_linear_pipeline g) then
    invalid_arg "Cutpoints: graph is not a linear pipeline";
  Graph.topo_order g

let enumerate ?net_budget raw platform =
  let g = Profiler.Profile.graph raw in
  let order = pipeline_order raw in
  let n = Array.length order in
  let costed = Profiler.Profile.cost raw platform in
  let net_budget =
    match net_budget with
    | Some b -> b
    | None -> platform.Profiler.Platform.radio_bytes_per_sec
  in
  (* input windows per second at the profiled rate *)
  let source = order.(0) in
  let input_rate = Profiler.Profile.op_fires_per_sec raw source in
  let cuts = ref [] in
  let cum_cpu_fraction = ref 0. in
  let cum_us = ref 0. in
  let best_bw = ref infinity in
  for k = 1 to n - 1 do
    let op = order.(k - 1) in
    cum_cpu_fraction := !cum_cpu_fraction +. costed.cpu_fraction.(op);
    (cum_us :=
       !cum_us
       +. costed.seconds_per_fire.(op)
          *. 1e6
          *. (Float.of_int (Profiler.Profile.op_fires raw op)
             /. Float.max 1.
                  (Float.of_int (Profiler.Profile.op_fires raw source))));
    (* the single out-edge of the k-th operator is the cut *)
    let bw =
      match Graph.succs g op with
      | [ e ] -> Profiler.Profile.edge_bytes_per_sec raw e.eid
      | _ -> 0.
    in
    (* strictly data-reducing relative to every shallower cut, as in
       §4.1 (the paper's Figure 5b additionally plots the data-neutral
       "logs" stage; the benches do the same explicitly) *)
    let viable = bw < !best_bw -. 1e-9 in
    if viable then best_bw := bw;
    let max_rate_compute =
      if !cum_cpu_fraction > 0. then
        platform.Profiler.Platform.cpu_budget /. !cum_cpu_fraction
      else infinity
    in
    let max_rate_network = if bw > 0. then net_budget /. bw else infinity in
    cuts :=
      {
        index = k;
        label = (Graph.op g op).Op.name;
        node_us_per_input = !cum_us;
        cut_bytes_per_input =
          (if input_rate > 0. then bw /. input_rate else 0.);
        cut_bandwidth = bw;
        cpu_fraction = !cum_cpu_fraction;
        max_rate_compute;
        max_rate_network;
        viable;
      }
      :: !cuts
  done;
  List.rev !cuts

let best_by_rate cuts =
  List.fold_left
    (fun best c ->
      if not c.viable then best
      else
        let rate = Float.min c.max_rate_compute c.max_rate_network in
        match best with
        | Some b
          when Float.min b.max_rate_compute b.max_rate_network >= rate ->
            best
        | _ -> Some c)
    None cuts

let pp ppf cuts =
  Format.fprintf ppf "@[<v>%-4s %-12s %12s %12s %10s %10s %s@,"
    "cut" "after" "us/input" "cut B/s" "rate_cpu" "rate_net" "viable";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-4d %-12s %12.1f %12.1f %10.4g %10.4g %b@," c.index
        c.label c.node_us_per_input c.cut_bandwidth c.max_rate_compute
        c.max_rate_network c.viable)
    cuts;
  Format.fprintf ppf "@]"
