open Dataflow

let solve (spec : Spec.t) =
  let g = spec.Spec.graph in
  if not (Graph.is_linear_pipeline g) then
    invalid_arg "Pipeline_dp.solve: not a linear pipeline";
  let order = Graph.topo_order g in
  let n = Array.length order in
  let best = ref None in
  let assignment = Array.make n false in
  (* prefix of length k on the node, k = 1 .. n-1 *)
  for k = 1 to n - 1 do
    Array.iteri (fun pos op -> assignment.(op) <- pos < k) order;
    if Spec.feasible spec ~node_side:assignment then begin
      let obj = Spec.objective_value spec ~node_side:assignment in
      match !best with
      | Some (_, b) when b <= obj -> ()
      | _ -> best := Some (Array.copy assignment, obj)
    end
  done;
  !best
