open Dataflow

type contracted = {
  spec : Spec.t;
  n_super : int;
  super_of : int array;
  members : int list array;
  cpu : float array;
  placement : Movable.placement array;
  edges : (int * int * float) array;
}

(* ---- union-find with placement merging ---- *)

type uf = {
  parent : int array;
  rank : int array;
  place : Movable.placement array;
}

let uf_create placement =
  let n = Array.length placement in
  { parent = Array.init n Fun.id; rank = Array.make n 0; place = Array.copy placement }

let rec uf_find uf i =
  if uf.parent.(i) = i then i
  else begin
    let root = uf_find uf uf.parent.(i) in
    uf.parent.(i) <- root;
    root
  end

let merge_place a b =
  match (a, b) with
  | Movable.Movable, x | x, Movable.Movable -> Some x
  | Movable.Pin_node, Movable.Pin_node -> Some Movable.Pin_node
  | Movable.Pin_server, Movable.Pin_server -> Some Movable.Pin_server
  | Movable.Pin_node, Movable.Pin_server
  | Movable.Pin_server, Movable.Pin_node ->
      None

(* Returns false when the union would merge contradictory pins. *)
let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  if ra = rb then true
  else
    match merge_place uf.place.(ra) uf.place.(rb) with
    | None -> false
    | Some p ->
        let big, small =
          if uf.rank.(ra) >= uf.rank.(rb) then (ra, rb) else (rb, ra)
        in
        uf.parent.(small) <- big;
        if uf.rank.(big) = uf.rank.(small) then
          uf.rank.(big) <- uf.rank.(big) + 1;
        uf.place.(big) <- p;
        true

let build_quotient (spec : Spec.t) uf =
  let n = Graph.n_ops spec.graph in
  (* dense supernode ids *)
  let super_of = Array.make n (-1) in
  let n_super = ref 0 in
  for i = 0 to n - 1 do
    let r = uf_find uf i in
    if super_of.(r) < 0 then begin
      super_of.(r) <- !n_super;
      incr n_super
    end
  done;
  for i = 0 to n - 1 do
    super_of.(i) <- super_of.(uf_find uf i)
  done;
  let k = !n_super in
  let members = Array.make k [] in
  let cpu = Array.make k 0. in
  let placement = Array.make k Movable.Movable in
  for i = n - 1 downto 0 do
    let s = super_of.(i) in
    members.(s) <- i :: members.(s);
    cpu.(s) <- cpu.(s) +. spec.cpu.(i);
    placement.(s) <- uf.place.(uf_find uf i)
  done;
  let bw : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (e : Graph.edge) ->
      let su = super_of.(e.src) and sv = super_of.(e.dst) in
      if su <> sv then begin
        let key = (su, sv) in
        let prev = Option.value ~default:0. (Hashtbl.find_opt bw key) in
        Hashtbl.replace bw key (prev +. spec.bandwidth.(e.eid))
      end)
    (Graph.edges spec.graph);
  let edges =
    Hashtbl.fold (fun (u, v) b acc -> (u, v, b) :: acc) bw []
    |> List.sort compare |> Array.of_list
  in
  { spec; n_super = k; super_of; members; cpu; placement; edges }

let identity spec = build_quotient spec (uf_create spec.placement)

(* Tarjan SCC over the quotient edge list. *)
let sccs n (edges : (int * int * float) array) =
  let succs = Array.make n [] in
  Array.iter (fun (u, v, _) -> succs.(u) <- v :: succs.(u)) edges;
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp_of = Array.make n (-1) in
  let n_comp = ref 0 in
  (* iterative Tarjan to avoid stack overflow on long pipelines *)
  let rec strongconnect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          low.(v) <- Int.min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- Int.min low.(v) index.(w))
      succs.(v);
    if low.(v) = index.(v) then begin
      let c = !n_comp in
      incr n_comp;
      let rec popall () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp_of.(w) <- c;
            if w <> v then popall ()
      in
      popall ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (comp_of, !n_comp)

let out_in_bw (spec : Spec.t) v =
  let out =
    List.fold_left
      (fun acc (e : Graph.edge) -> acc +. spec.bandwidth.(e.eid))
      0.
      (Graph.succs spec.graph v)
  in
  let inb =
    List.fold_left
      (fun acc (e : Graph.edge) -> acc +. spec.bandwidth.(e.eid))
      0.
      (Graph.preds spec.graph v)
  in
  (out, inb)

let contract spec =
  let graph = spec.Spec.graph in
  let uf = uf_create spec.placement in
  Array.iter
    (fun v ->
      (* merge a data-expanding or data-neutral movable operator with
         its single downstream operator.  The local-improvement
         argument (a cut below v is never better than a cut above v)
         only holds when v has one output edge; for fan-out the forced
         co-location of all successors can eliminate optima, so we
         leave those vertices alone. *)
      if spec.placement.(v) = Movable.Movable
         && Graph.out_degree graph v = 1
      then begin
        let out, inb = out_in_bw spec v in
        if out >= inb -. 1e-12 then
          List.iter
            (fun (e : Graph.edge) -> ignore (uf_union uf v e.dst))
            (Graph.succs graph v)
      end)
    (Graph.topo_order graph);
  let q = build_quotient spec uf in
  (* collapse any SCCs the contraction introduced *)
  let comp_of, n_comp = sccs q.n_super q.edges in
  if n_comp = q.n_super then q
  else begin
    (* merge whole components in the union-find; back off entirely on
       a pin conflict *)
    let rep = Array.make n_comp (-1) in
    let ok = ref true in
    Array.iteri
      (fun s c ->
        (* s is a supernode; use any original member as uf element *)
        let m = List.hd q.members.(s) in
        if rep.(c) < 0 then rep.(c) <- m
        else if not (uf_union uf rep.(c) m) then ok := false)
      comp_of;
    if !ok then build_quotient spec uf else identity spec
  end

let expand c super_assign =
  if Array.length super_assign <> c.n_super then
    invalid_arg "Preprocess.expand: assignment length mismatch";
  Array.map (fun s -> super_assign.(s)) c.super_of

let reduction c =
  let orig = Movable.movable_count c.spec.Spec.placement in
  let super = Movable.movable_count c.placement in
  (orig, super)
