open Dataflow

let render ?assignment ?costed raw =
  let g = Profiler.Profile.graph raw in
  let max_cost =
    match costed with
    | None -> 1.
    | Some c ->
        Array.fold_left Float.max 1e-12 c.Profiler.Profile.seconds_per_fire
  in
  let vertex_attrs i =
    let heat =
      match costed with
      | None -> 0.
      | Some c -> c.Profiler.Profile.seconds_per_fire.(i) /. max_cost
    in
    let shape =
      match assignment with
      | Some a when a.(i) -> "box"
      | Some _ -> "ellipse"
      | None -> "ellipse"
    in
    [ ("fillcolor", Dot.heat_color heat); ("shape", shape) ]
  in
  let edge_attrs (e : Graph.edge) =
    let bw = Profiler.Profile.edge_bytes_per_sec raw e.eid in
    let cut =
      match assignment with
      | Some a -> a.(e.src) && not a.(e.dst)
      | None -> false
    in
    [ ("label", Printf.sprintf "%.0f B/s" bw) ]
    @ if cut then [ ("style", "dashed"); ("color", "red") ] else []
  in
  Dot.render ~graph_name:"wishbone_partition" ~vertex_attrs ~edge_attrs g

let save ~path ?assignment ?costed raw =
  Dot.write_file path (render ?assignment ?costed raw)
