(** Relocation constraints (§2.1.1–§2.1.2).

    Classifies every operator as pinned to the node, pinned to the
    server, or movable:

    - sensor sources and actuators are pinned to the node;
    - output sinks and every [Server]-namespace operator are pinned to
      the server (server state is single-instance and cannot move into
      the network);
    - stateful [Node]-namespace operators are pinned to the node in
      {!Conservative} mode (relocation would put a lossy link upstream
      of state) and movable in {!Permissive} mode (the server then
      keeps a per-node state table);
    - stateless pure operators are always movable.

    Because the prototype allows only one network crossing on any
    source-to-sink path (§2.1.2), pinning an operator transitively
    pins everything up- or downstream: ancestors of node-pinned
    operators become node-pinned and descendants of server-pinned
    operators become server-pinned. *)

type mode = Conservative | Permissive

type placement = Pin_node | Pin_server | Movable

val classify : mode -> Dataflow.Graph.t -> (placement array, string) result
(** [Error] describes a program with contradictory pinning — e.g. a
    server-pinned operator feeding a node-pinned one, which would need
    the data to cross the network twice. *)

val movable_count : placement array -> int
val pp_placement : Format.formatter -> placement -> unit
