(** A concrete partitioning problem instance: the movable DAG with
    vertex CPU costs, edge bandwidths, resource budgets, and objective
    coefficients (§4).

    Costs follow the paper's units: vertex cost is the fraction of the
    embedded node's CPU the operator consumes at the profiled input
    rate (mean or peak); edge cost is bytes/second crossing the radio
    if the edge is cut. *)

type t = {
  graph : Dataflow.Graph.t;
  placement : Movable.placement array;
  cpu : float array;  (** per op: node CPU fraction at this data rate *)
  bandwidth : float array;  (** per edge: bytes/s at this data rate *)
  cpu_budget : float;  (** C in eq. (2) *)
  net_budget : float;  (** N in eq. (4), bytes/s *)
  alpha : float;  (** CPU weight in the objective, eq. (5) *)
  beta : float;  (** network weight *)
}

val of_profile :
  ?mode:Movable.mode ->
  ?use_peak:bool ->
  ?cpu_budget:float ->
  ?net_budget:float ->
  ?alpha:float ->
  ?beta:float ->
  node_platform:Profiler.Platform.t ->
  Profiler.Profile.raw ->
  (t, string) result
(** Defaults: [mode = Conservative], mean loads, budgets from the
    platform descriptor ([cpu_budget] fraction, radio goodput for
    [net_budget]), objective [alpha = 0., beta = 1.] — minimize
    network subject to fitting the CPU, as in the paper's
    evaluation. *)

val scale_rate : t -> float -> t
(** Multiply every CPU cost and bandwidth by a factor: the §4.3
    data-rate free variable. *)

val cut_stats : t -> node_side:bool array -> float * float
(** [(cpu, net)] of an assignment: summed node CPU fraction and cut
    bandwidth. *)

val feasible : ?require_single_crossing:bool -> t -> node_side:bool array -> bool
(** Budgets respected, pinning respected, and (by default) the
    single-crossing restriction of §2.1.2 holds — no server→node edge.
    Pass [~require_single_crossing:false] when validating a solution
    of the {e general} ILP encoding, which legitimately allows
    back-and-forth communication. *)

val objective_value : t -> node_side:bool array -> float
(** [alpha *. cpu +. beta *. net]. *)
