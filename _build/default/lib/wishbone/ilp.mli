(** ILP encodings of the partitioning problem (§4.2.1).

    {!General} is the bidirectional formulation, eqs. (1)–(5): one
    binary [f_v] per supernode plus two continuous edge variables
    [e_uv], [e'_uv] linearizing the quadratic cut indicator.

    {!Restricted} exploits the single-crossing restriction of §2.1.2,
    eqs. (6)–(7): data flows only node→server, so [f_u >= f_v] along
    every edge and the edge variables disappear — [|V|] variables and
    at most [|E| + |V| + 1] constraints.  This is the formulation the
    prototype uses. *)

type encoding = General | Restricted

type encoded = {
  problem : Lp.Problem.t;
  f_var : int array;  (** supernode id -> ILP variable index *)
  encoding : encoding;
}

(** An additional per-operator resource consumed only by node-resident
    operators — RAM under static allocation, or code storage.  §4.2.1:
    "adding additional constraints for RAM usage (assuming static
    allocation) or code storage is straightforward in this
    formulation". *)
type resource = {
  rname : string;
  per_op : float array;  (** indexed by original operator id *)
  budget : float;
}

val encode :
  ?resources:resource list -> encoding -> Preprocess.contracted -> encoded
(** @raise Invalid_argument when a resource array has the wrong
    length. *)

val assignment_of_solution : encoded -> Lp.Solution.t -> bool array
(** Supernode assignment (true = node) from a solved instance. *)
