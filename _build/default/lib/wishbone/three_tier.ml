open Dataflow

type tier = Mote | Microserver | Central

type t = {
  contracted : Preprocess.contracted;
  micro_cpu : float array;  (* per supernode, on the microserver *)
  mote_cpu_budget : float;
  micro_cpu_budget : float;
  mote_net_budget : float;
  micro_net_budget : float;
  beta_mote : float;
  beta_micro : float;
}

let of_profile ?(mode = Movable.Conservative) ?mote_cpu_budget
    ?micro_cpu_budget ?mote_net_budget ?micro_net_budget ?(beta_mote = 1.)
    ?(beta_micro = 0.3) ~mote ~micro raw =
  match Spec.of_profile ~mode ~node_platform:mote raw with
  | Error _ as e -> e
  | Ok spec ->
      let contracted = Preprocess.contract spec in
      let micro_costed = Profiler.Profile.cost raw micro in
      let micro_cpu =
        Array.map
          (fun members ->
            List.fold_left
              (fun acc i ->
                acc +. micro_costed.Profiler.Profile.cpu_fraction.(i))
              0. members)
          contracted.Preprocess.members
      in
      let dflt o v = match o with Some x -> x | None -> v in
      Ok
        {
          contracted;
          micro_cpu;
          mote_cpu_budget =
            dflt mote_cpu_budget mote.Profiler.Platform.cpu_budget;
          micro_cpu_budget =
            dflt micro_cpu_budget micro.Profiler.Platform.cpu_budget;
          mote_net_budget =
            dflt mote_net_budget mote.Profiler.Platform.radio_bytes_per_sec;
          micro_net_budget =
            dflt micro_net_budget micro.Profiler.Platform.radio_bytes_per_sec;
          beta_mote;
          beta_micro;
        }

type report = {
  tiers : tier array;
  mote_cpu : float;
  micro_cpu : float;
  mote_net : float;
  micro_net : float;
  objective : float;
  solver : Lp.Branch_bound.stats;
}

type outcome =
  | Partitioned of report
  | No_feasible_partition
  | Solver_failure of string

let solve ?options t =
  let c = t.contracted in
  let p = Lp.Problem.create () in
  let bounds s =
    match c.Preprocess.placement.(s) with
    | Movable.Pin_node -> (1., 1.)
    | Movable.Pin_server -> (0., 0.)
    | Movable.Movable -> (0., 1.)
  in
  let x =
    Array.init c.Preprocess.n_super (fun s ->
        let lo, hi = bounds s in
        Lp.Problem.add_var ~name:(Printf.sprintf "x%d" s) ~lo ~hi
          ~integer:true p)
  in
  let y =
    Array.init c.Preprocess.n_super (fun s ->
        let lo, hi = bounds s in
        Lp.Problem.add_var ~name:(Printf.sprintf "y%d" s) ~lo ~hi
          ~integer:true p)
  in
  (* tier ordering: on the mote implies at least microserver depth *)
  for s = 0 to c.Preprocess.n_super - 1 do
    Lp.Problem.add_constr p [ (y.(s), 1.); (x.(s), -1.) ] Lp.Problem.Ge 0.
  done;
  (* monotone descent along edges, both levels *)
  Array.iter
    (fun (u, v, _) ->
      Lp.Problem.add_constr p [ (x.(u), 1.); (x.(v), -1.) ] Lp.Problem.Ge 0.;
      Lp.Problem.add_constr p [ (y.(u), 1.); (y.(v), -1.) ] Lp.Problem.Ge 0.)
    c.Preprocess.edges;
  (* CPU budgets: mote runs x, microserver runs y - x *)
  let clamp budget costs =
    Float.min budget (Array.fold_left ( +. ) 1. costs)
  in
  Lp.Problem.add_constr ~name:"mote_cpu" p
    (Array.to_list (Array.mapi (fun s cost -> (x.(s), cost)) c.Preprocess.cpu))
    Lp.Problem.Le
    (clamp t.mote_cpu_budget c.Preprocess.cpu);
  Lp.Problem.add_constr ~name:"micro_cpu" p
    (List.concat
       (Array.to_list
          (Array.mapi
             (fun s cost -> [ (y.(s), cost); (x.(s), -.cost) ])
             t.micro_cpu)))
    Lp.Problem.Le
    (clamp t.micro_cpu_budget t.micro_cpu);
  (* bandwidth budgets and objective *)
  let total_bw =
    Array.fold_left (fun acc (_, _, r) -> acc +. r) 1. c.Preprocess.edges
  in
  let mote_net_terms = ref [] and micro_net_terms = ref [] in
  let obj = Hashtbl.create 64 in
  let add_obj v coef =
    Hashtbl.replace obj v (coef +. Option.value ~default:0. (Hashtbl.find_opt obj v))
  in
  Array.iter
    (fun (u, v, r) ->
      mote_net_terms := (x.(u), r) :: (x.(v), -.r) :: !mote_net_terms;
      micro_net_terms := (y.(u), r) :: (y.(v), -.r) :: !micro_net_terms;
      add_obj x.(u) (t.beta_mote *. r);
      add_obj x.(v) (-.t.beta_mote *. r);
      add_obj y.(u) (t.beta_micro *. r);
      add_obj y.(v) (-.t.beta_micro *. r))
    c.Preprocess.edges;
  Lp.Problem.add_constr ~name:"mote_net" p !mote_net_terms Lp.Problem.Le
    (Float.min t.mote_net_budget total_bw);
  Lp.Problem.add_constr ~name:"micro_net" p !micro_net_terms Lp.Problem.Le
    (Float.min t.micro_net_budget total_bw);
  Lp.Problem.set_objective p Lp.Problem.Minimize
    (Hashtbl.fold (fun v coef acc -> (v, coef) :: acc) obj []);
  match Lp.Branch_bound.solve ?options p with
  | Lp.Solution.Optimal sol, stats ->
      let n = Graph.n_ops c.Preprocess.spec.Spec.graph in
      let tiers =
        Array.init n (fun i ->
            let s = c.Preprocess.super_of.(i) in
            if sol.x.(x.(s)) >= 0.5 then Mote
            else if sol.x.(y.(s)) >= 0.5 then Microserver
            else Central)
      in
      let spec = c.Preprocess.spec in
      let mote_cpu = ref 0. and micro_cpu = ref 0. in
      Array.iteri
        (fun s members ->
          ignore members;
          if sol.x.(x.(s)) >= 0.5 then
            mote_cpu := !mote_cpu +. c.Preprocess.cpu.(s)
          else if sol.x.(y.(s)) >= 0.5 then
            micro_cpu := !micro_cpu +. t.micro_cpu.(s))
        c.Preprocess.members;
      let mote_net = ref 0. and micro_net = ref 0. in
      Array.iter
        (fun (e : Graph.edge) ->
          let tu = tiers.(e.src) and tv = tiers.(e.dst) in
          let r = spec.Spec.bandwidth.(e.eid) in
          (match (tu, tv) with
          | Mote, (Microserver | Central) -> mote_net := !mote_net +. r
          | _ -> ());
          match (tu, tv) with
          | (Mote | Microserver), Central -> micro_net := !micro_net +. r
          | _ -> ())
        (Graph.edges spec.Spec.graph);
      Partitioned
        {
          tiers;
          mote_cpu = !mote_cpu;
          micro_cpu = !micro_cpu;
          mote_net = !mote_net;
          micro_net = !micro_net;
          objective = sol.objective;
          solver = stats;
        }
  | Lp.Solution.Infeasible, _ -> No_feasible_partition
  | Lp.Solution.Unbounded, _ -> Solver_failure "three-tier ILP unbounded"
  | Lp.Solution.Iteration_limit, _ -> Solver_failure "solver budget exhausted"

let brute_force ?(max_super = 12) t =
  let c = t.contracted in
  let n = c.Preprocess.n_super in
  if n > max_super then
    invalid_arg "Three_tier.brute_force: too many supernodes";
  (* the same vacuous-budget clamp the ILP encoding applies *)
  let clamp budget costs =
    Float.min budget (Array.fold_left ( +. ) 1. costs)
  in
  let mote_cpu_budget = clamp t.mote_cpu_budget c.Preprocess.cpu in
  let micro_cpu_budget = clamp t.micro_cpu_budget t.micro_cpu in
  let total_bw =
    Array.fold_left (fun acc (_, _, r) -> acc +. r) 1. c.Preprocess.edges
  in
  let mote_net_budget = Float.min t.mote_net_budget total_bw in
  let micro_net_budget = Float.min t.micro_net_budget total_bw in
  let rank = function Mote -> 2 | Microserver -> 1 | Central -> 0 in
  let allowed s =
    match c.Preprocess.placement.(s) with
    | Movable.Pin_node -> [ Mote ]
    | Movable.Pin_server -> [ Central ]
    | Movable.Movable -> [ Mote; Microserver; Central ]
  in
  let tiers = Array.make n Central in
  let best = ref None in
  let evaluate () =
    let monotone =
      Array.for_all
        (fun (u, v, _) -> rank tiers.(u) >= rank tiers.(v))
        c.Preprocess.edges
    in
    if monotone then begin
      let mote_cpu = ref 0. and micro_cpu = ref 0. in
      Array.iteri
        (fun s tier ->
          match tier with
          | Mote -> mote_cpu := !mote_cpu +. c.Preprocess.cpu.(s)
          | Microserver -> micro_cpu := !micro_cpu +. t.micro_cpu.(s)
          | Central -> ())
        tiers;
      let mote_net = ref 0. and micro_net = ref 0. in
      Array.iter
        (fun (u, v, r) ->
          if tiers.(u) = Mote && tiers.(v) <> Mote then
            mote_net := !mote_net +. r;
          if tiers.(u) <> Central && tiers.(v) = Central then
            micro_net := !micro_net +. r)
        c.Preprocess.edges;
      if
        !mote_cpu <= mote_cpu_budget +. 1e-9
        && !micro_cpu <= micro_cpu_budget +. 1e-9
        && !mote_net <= mote_net_budget +. 1e-6
        && !micro_net <= micro_net_budget +. 1e-6
      then begin
        let obj =
          (t.beta_mote *. !mote_net) +. (t.beta_micro *. !micro_net)
        in
        match !best with
        | Some (_, b) when b <= obj -> ()
        | _ -> best := Some (Array.copy tiers, obj)
      end
    end
  in
  let rec go s =
    if s = n then evaluate ()
    else
      List.iter
        (fun tier ->
          tiers.(s) <- tier;
          go (s + 1))
        (allowed s)
  in
  go 0;
  Option.map
    (fun (super_tiers, obj) ->
      let n_orig = Graph.n_ops c.Preprocess.spec.Spec.graph in
      ( Array.init n_orig (fun i ->
            super_tiers.(c.Preprocess.super_of.(i))),
        obj ))
    !best

let tier_counts r =
  Array.fold_left
    (fun (m, mi, c) t ->
      match t with
      | Mote -> (m + 1, mi, c)
      | Microserver -> (m, mi + 1, c)
      | Central -> (m, mi, c + 1))
    (0, 0, 0) r.tiers
