open Dataflow

let reduce_op b ~name ~window ~combine strm =
  if window <= 0 then invalid_arg "Aggregation.reduce_op: window must be positive";
  Builder.stateful b ~name ~kind:"reduce"
    ~init:(fun () ->
      let buf : Value.t Queue.t = Queue.create () in
      fun ~port:_ v ->
        Queue.add v buf;
        if Queue.length buf >= window then begin
          let items = List.init window (fun _ -> Queue.pop buf) in
          let out, w = combine items in
          ([ out ], w)
        end
        else ([], Workload.make ~mem_ops:1. ~call_ops:1. ()))
    [ strm ]

let annotate_fan_in spec ~op ~fan_in =
  if fan_in < 1. then invalid_arg "Aggregation.annotate_fan_in: fan_in < 1";
  if op < 0 || op >= Array.length spec.Spec.cpu then
    invalid_arg "Aggregation.annotate_fan_in: unknown operator";
  let cpu = Array.copy spec.Spec.cpu in
  cpu.(op) <- cpu.(op) *. fan_in;
  { spec with Spec.cpu }

let in_network_benefit spec ~op =
  let graph = spec.Spec.graph in
  let sum edges =
    List.fold_left
      (fun acc (e : Graph.edge) -> acc +. spec.Spec.bandwidth.(e.eid))
      0. edges
  in
  Float.max 0. (sum (Graph.preds graph op) -. sum (Graph.succs graph op))
