(** Deploying a computed partition on the simulated testbed and
    comparing Wishbone's predictions against "measured" behaviour
    (§7.3).

    The ILP's cost model is additive and ignores OS overheads and the
    processor cost of communication; the testbed includes both, so
    [measured_cpu] runs a little hotter than [predicted_cpu] — the
    reproduction of the paper's Gumstix observation (11.5% predicted
    vs 15% measured). *)

type comparison = {
  predicted_cpu : float;  (** ILP additive model, fraction of node CPU *)
  measured_cpu : float;  (** testbed busy fraction *)
  predicted_net : float;  (** cut bandwidth, bytes/s *)
  measured_net : float;  (** offered bytes/s on the testbed *)
  result : Netsim.Testbed.result;
}

val run :
  config:Netsim.Testbed.config ->
  sources:Netsim.Testbed.source_spec list ->
  spec:Spec.t ->
  assignment:bool array ->
  comparison
