lib/wishbone/viz.mli: Profiler
