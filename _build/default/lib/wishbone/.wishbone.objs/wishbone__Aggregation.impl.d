lib/wishbone/aggregation.ml: Array Builder Dataflow Float Graph List Queue Spec Value Workload
