lib/wishbone/partitioner.mli: Dataflow Format Ilp Lp Spec
