lib/wishbone/deploy.ml: Array Netsim Spec
