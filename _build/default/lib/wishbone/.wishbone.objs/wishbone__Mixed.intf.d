lib/wishbone/mixed.mli: Dataflow Format Movable Partitioner Profiler
