lib/wishbone/three_tier.ml: Array Dataflow Float Graph Hashtbl List Lp Movable Option Preprocess Printf Profiler Spec
