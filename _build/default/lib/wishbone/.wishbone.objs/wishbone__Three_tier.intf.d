lib/wishbone/three_tier.mli: Lp Movable Profiler
