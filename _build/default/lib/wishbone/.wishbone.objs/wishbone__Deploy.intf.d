lib/wishbone/deploy.mli: Netsim Spec
