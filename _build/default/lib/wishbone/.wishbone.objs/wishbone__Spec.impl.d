lib/wishbone/spec.ml: Array Dataflow Graph Movable Profiler
