lib/wishbone/partitioner.ml: Array Dataflow Format Fun Ilp List Lp Movable Option Preprocess Spec String
