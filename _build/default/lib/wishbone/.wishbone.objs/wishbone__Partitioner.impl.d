lib/wishbone/partitioner.ml: Array Dataflow Format Fun Ilp List Lp Movable Preprocess Spec String
