lib/wishbone/spec.mli: Dataflow Movable Profiler
