lib/wishbone/mixed.ml: Float Format Int List Partitioner Printf Profiler Rate_search Spec
