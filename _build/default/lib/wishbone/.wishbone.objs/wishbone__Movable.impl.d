lib/wishbone/movable.ml: Array Dataflow Format Graph Op Printf
