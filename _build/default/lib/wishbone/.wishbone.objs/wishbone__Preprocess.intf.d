lib/wishbone/preprocess.mli: Movable Spec
