lib/wishbone/ilp.ml: Array Dataflow Float List Lp Movable Preprocess Printf Spec
