lib/wishbone/ilp.mli: Lp Preprocess
