lib/wishbone/rate_search.ml: Float Lp Partitioner Spec
