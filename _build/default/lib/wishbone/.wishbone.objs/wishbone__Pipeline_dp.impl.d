lib/wishbone/pipeline_dp.ml: Array Dataflow Graph Spec
