lib/wishbone/cutpoints.mli: Format Profiler
