lib/wishbone/preprocess.ml: Array Dataflow Fun Graph Hashtbl Int List Movable Option Spec
