lib/wishbone/movable.mli: Dataflow Format
