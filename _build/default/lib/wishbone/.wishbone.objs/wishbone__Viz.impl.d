lib/wishbone/viz.ml: Array Dataflow Dot Float Graph Printf Profiler
