lib/wishbone/aggregation.mli: Dataflow Spec
