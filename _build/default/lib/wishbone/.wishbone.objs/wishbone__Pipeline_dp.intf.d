lib/wishbone/pipeline_dp.mli: Spec
