lib/wishbone/cutpoints.ml: Array Dataflow Float Format Graph List Op Profiler
