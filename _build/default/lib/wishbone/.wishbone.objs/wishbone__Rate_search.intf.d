lib/wishbone/rate_search.mli: Ilp Lp Partitioner Spec
