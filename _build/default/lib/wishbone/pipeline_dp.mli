(** Exact partitioning of linear pipelines by direct enumeration.

    For a pipeline, single-crossing assignments are exactly the
    prefixes of the topological order, so the optimum is found in
    O(n) — no solver needed.  Used as a fast path and as an
    independent oracle for the ILP in tests (the paper makes the same
    observation: "the optimization process for picking a cut point
    should be trivial — a brute force testing of all cut points will
    suffice", §7.2). *)

val solve : Spec.t -> (bool array * float) option
(** The best feasible prefix cut and its objective, or [None] if no
    prefix is feasible.
    @raise Invalid_argument when the graph is not a linear pipeline. *)
