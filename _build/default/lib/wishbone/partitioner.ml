type report = {
  assignment : bool array;
  cpu : float;
  net : float;
  objective : float;
  solver : Lp.Branch_bound.stats;
  supernodes : int;
  movable_supernodes : int;
  encoding : Ilp.encoding;
  preprocessed : bool;
}

type outcome =
  | Partitioned of report
  | No_feasible_partition
  | Solver_failure of string

let solve ?(encoding = Ilp.Restricted) ?(preprocess = true) ?options
    ?(resources = []) ?initial ?root_basis spec =
  (* the contraction's dominance argument ("a cut below v is never
     better than a cut above v") relies on the single-crossing
     restriction of §2.1.2; the general encoding legally places an
     operator server-side below node-side successors, which the merged
     supernode cannot express, so it must solve the uncontracted
     graph *)
  let contracted =
    if preprocess && encoding = Ilp.Restricted then Preprocess.contract spec
    else Preprocess.identity spec
  in
  let encoded = Ilp.encode ~resources encoding contracted in
  let initial =
    Option.bind initial (fun a -> Ilp.initial_point encoded contracted a)
  in
  let status, stats =
    Lp.Branch_bound.solve ?options ?initial ?root_basis encoded.problem
  in
  match status with
  | Lp.Solution.Optimal sol ->
      let super_assign = Ilp.assignment_of_solution encoded sol in
      let assignment = Preprocess.expand contracted super_assign in
      let cpu, net = Spec.cut_stats spec ~node_side:assignment in
      let require_single_crossing = encoding = Ilp.Restricted in
      if not (Spec.feasible ~require_single_crossing spec ~node_side:assignment)
      then
        Solver_failure
          "internal error: ILP solution violates the original constraints"
      else
        Partitioned
          {
            assignment;
            cpu;
            net;
            objective = Spec.objective_value spec ~node_side:assignment;
            solver = stats;
            supernodes = contracted.n_super;
            movable_supernodes = Movable.movable_count contracted.placement;
            encoding;
            preprocessed = preprocess;
          }
  | Lp.Solution.Infeasible -> No_feasible_partition
  | Lp.Solution.Unbounded ->
      Solver_failure "partitioning ILP unbounded (bad cost data?)"
  | Lp.Solution.Iteration_limit -> Solver_failure "solver budget exhausted"

let brute_force ?(max_movable = 20) spec =
  let n = Array.length spec.Spec.placement in
  let movable =
    List.filter
      (fun i -> spec.Spec.placement.(i) = Movable.Movable)
      (List.init n Fun.id)
  in
  let m = List.length movable in
  if m > max_movable then
    invalid_arg "Partitioner.brute_force: too many movable operators";
  let movable = Array.of_list movable in
  let best = ref None in
  let assignment = Array.make n false in
  Array.iteri
    (fun i p -> assignment.(i) <- p = Movable.Pin_node)
    spec.Spec.placement;
  for mask = 0 to (1 lsl m) - 1 do
    Array.iteri
      (fun bit op -> assignment.(op) <- mask land (1 lsl bit) <> 0)
      movable;
    if Spec.feasible spec ~node_side:assignment then begin
      let obj = Spec.objective_value spec ~node_side:assignment in
      match !best with
      | Some (_, b) when b <= obj -> ()
      | _ -> best := Some (Array.copy assignment, obj)
    end
  done;
  !best

let node_ops r =
  let acc = ref [] in
  for i = Array.length r.assignment - 1 downto 0 do
    if r.assignment.(i) then acc := i :: !acc
  done;
  !acc

let pp_report graph ppf r =
  let enc =
    match r.encoding with
    | Ilp.Restricted -> "restricted"
    | Ilp.General -> "general"
  in
  Format.fprintf ppf
    "@[<v>partition: %d operators on node, %d on server@,\
     node CPU %.1f%%, cut bandwidth %.1f B/s, objective %g@,\
     %d supernodes (%d movable), %s encoding%s@,\
     solver: %d nodes, %d LPs, %.3fs (optimal found at %.3fs, proved=%b)@,\
     node ops: %s@]"
    (List.length (node_ops r))
    (Dataflow.Graph.n_ops graph - List.length (node_ops r))
    (100. *. r.cpu) r.net r.objective r.supernodes r.movable_supernodes enc
    (if r.preprocessed then " (preprocessed)" else "")
    r.solver.Lp.Branch_bound.nodes_explored r.solver.Lp.Branch_bound.lp_solves
    r.solver.Lp.Branch_bound.time_total
    r.solver.Lp.Branch_bound.time_to_incumbent
    r.solver.Lp.Branch_bound.proved_optimal
    (String.concat ","
       (List.map
          (fun i -> (Dataflow.Graph.op graph i).Dataflow.Op.name)
          (node_ops r)))
