type comparison = {
  predicted_cpu : float;
  measured_cpu : float;
  predicted_net : float;
  measured_net : float;
  result : Netsim.Testbed.result;
}

let run ~config ~sources ~spec ~assignment =
  let predicted_cpu, predicted_net = Spec.cut_stats spec ~node_side:assignment in
  let result =
    Netsim.Testbed.run config ~graph:spec.Spec.graph
      ~node_of:(fun i -> assignment.(i))
      ~sources
  in
  {
    predicted_cpu;
    measured_cpu = result.node_busy_fraction;
    predicted_net;
    measured_net = result.offered_bytes_per_sec;
    result;
  }
