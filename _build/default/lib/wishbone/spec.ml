open Dataflow

type t = {
  graph : Graph.t;
  placement : Movable.placement array;
  cpu : float array;
  bandwidth : float array;
  cpu_budget : float;
  net_budget : float;
  alpha : float;
  beta : float;
}

let of_profile ?(mode = Movable.Conservative) ?(use_peak = false) ?cpu_budget
    ?net_budget ?(alpha = 0.) ?(beta = 1.) ~node_platform raw =
  let graph = Profiler.Profile.graph raw in
  match Movable.classify mode graph with
  | Error _ as e -> e
  | Ok placement ->
      let costed = Profiler.Profile.cost raw node_platform in
      let cpu =
        if use_peak then costed.peak_cpu_fraction else costed.cpu_fraction
      in
      let bandwidth =
        Array.init (Graph.n_edges graph) (fun e ->
            if use_peak then Profiler.Profile.edge_peak_bytes_per_sec raw e
            else Profiler.Profile.edge_bytes_per_sec raw e)
      in
      let cpu_budget =
        match cpu_budget with
        | Some c -> c
        | None -> node_platform.Profiler.Platform.cpu_budget
      in
      let net_budget =
        match net_budget with
        | Some n -> n
        | None -> node_platform.Profiler.Platform.radio_bytes_per_sec
      in
      Ok { graph; placement; cpu; bandwidth; cpu_budget; net_budget; alpha; beta }

let scale_rate t factor =
  if factor <= 0. then invalid_arg "Spec.scale_rate: factor must be positive";
  {
    t with
    cpu = Array.map (fun c -> c *. factor) t.cpu;
    bandwidth = Array.map (fun b -> b *. factor) t.bandwidth;
  }

let cut_stats t ~node_side =
  let cpu = ref 0. in
  Array.iteri (fun i c -> if node_side.(i) then cpu := !cpu +. c) t.cpu;
  let net = ref 0. in
  Array.iter
    (fun (e : Graph.edge) ->
      if node_side.(e.src) <> node_side.(e.dst) then
        net := !net +. t.bandwidth.(e.eid))
    (Graph.edges t.graph);
  (!cpu, !net)

let feasible ?(require_single_crossing = true) t ~node_side =
  let pin_ok =
    Array.for_all2
      (fun p on_node ->
        match p with
        | Movable.Pin_node -> on_node
        | Movable.Pin_server -> not on_node
        | Movable.Movable -> true)
      t.placement node_side
  in
  let one_crossing =
    Array.for_all
      (fun (e : Graph.edge) -> node_side.(e.src) || not node_side.(e.dst))
      (Graph.edges t.graph)
  in
  let cpu, net = cut_stats t ~node_side in
  pin_ok
  && ((not require_single_crossing) || one_crossing)
  && cpu <= t.cpu_budget +. 1e-9
  && net <= t.net_budget +. 1e-6

let objective_value t ~node_side =
  let cpu, net = cut_stats t ~node_side in
  (t.alpha *. cpu) +. (t.beta *. net)
