type encoding = General | Restricted

type encoded = {
  problem : Lp.Problem.t;
  f_var : int array;
  encoding : encoding;
  edge_vars : (int * int * int * int) array;
}

type resource = { rname : string; per_op : float array; budget : float }

let encode ?(resources = []) encoding (c : Preprocess.contracted) =
  let spec = c.spec in
  let p = Lp.Problem.create () in
  (* clamp vacuous budgets to the total cost they bound: equivalent
     feasible regions, far better numerical scaling *)
  let cpu_budget =
    Float.min spec.Spec.cpu_budget
      (Array.fold_left ( +. ) 1. c.cpu)
  in
  let net_budget =
    Float.min spec.Spec.net_budget
      (Array.fold_left (fun acc (_, _, r) -> acc +. r) 1. c.edges)
  in
  (* one binary f_v per supernode; pinning via bounds, eq. (1) *)
  let f_var =
    Array.init c.n_super (fun s ->
        let lo, hi =
          match c.placement.(s) with
          | Movable.Pin_node -> (1., 1.)
          | Movable.Pin_server -> (0., 0.)
          | Movable.Movable -> (0., 1.)
        in
        Lp.Problem.add_var ~name:(Printf.sprintf "f%d" s) ~lo ~hi
          ~integer:true p)
  in
  (* objective coefficients accumulate per variable *)
  let obj = Array.make c.n_super 0. in
  Array.iteri
    (fun s cost -> obj.(s) <- obj.(s) +. (spec.Spec.alpha *. cost))
    c.cpu;
  (* CPU budget, eq. (2) *)
  let cpu_terms =
    Array.to_list (Array.mapi (fun s cost -> (f_var.(s), cost)) c.cpu)
  in
  Lp.Problem.add_constr ~name:"cpu_budget" p cpu_terms Lp.Problem.Le
    cpu_budget;
  let net_terms = ref [] in
  let edge_vars = ref [] in
  (match encoding with
  | Restricted ->
      (* eq. (6): f_u >= f_v along every edge; eq. (7): net as a
         telescoping sum of (f_u - f_v) r_uv *)
      Array.iter
        (fun (u, v, r) ->
          Lp.Problem.add_constr
            ~name:(Printf.sprintf "dir_%d_%d" u v)
            p
            [ (f_var.(u), 1.); (f_var.(v), -1.) ]
            Lp.Problem.Ge 0.;
          obj.(u) <- obj.(u) +. (spec.Spec.beta *. r);
          obj.(v) <- obj.(v) -. (spec.Spec.beta *. r);
          net_terms := (f_var.(u), r) :: (f_var.(v), -.r) :: !net_terms)
        c.edges
  | General ->
      (* eq. (3): e_uv >= f_v - f_u and e'_uv >= f_u - f_v *)
      Array.iter
        (fun (u, v, r) ->
          let e =
            Lp.Problem.add_var ~name:(Printf.sprintf "e_%d_%d" u v) p
          in
          let e' =
            Lp.Problem.add_var ~name:(Printf.sprintf "e'_%d_%d" u v) p
          in
          Lp.Problem.add_constr p
            [ (f_var.(u), 1.); (f_var.(v), -1.); (e, 1.) ]
            Lp.Problem.Ge 0.;
          Lp.Problem.add_constr p
            [ (f_var.(v), 1.); (f_var.(u), -1.); (e', 1.) ]
            Lp.Problem.Ge 0.;
          edge_vars := (u, v, e, e') :: !edge_vars;
          net_terms := (e, r) :: (e', r) :: !net_terms)
        c.edges);
  (* network budget, eq. (4) *)
  Lp.Problem.add_constr ~name:"net_budget" p !net_terms Lp.Problem.Le
    net_budget;
  (* optional resource rows (RAM, code storage): consumed on the node *)
  let n_orig = Dataflow.Graph.n_ops spec.Spec.graph in
  List.iter
    (fun r ->
      if Array.length r.per_op <> n_orig then
        invalid_arg
          (Printf.sprintf "Ilp.encode: resource %s has wrong length" r.rname);
      let terms =
        Array.to_list
          (Array.mapi
             (fun s members ->
               let cost =
                 List.fold_left (fun acc i -> acc +. r.per_op.(i)) 0. members
               in
               (f_var.(s), cost))
             c.members)
      in
      let total =
        Array.fold_left ( +. ) 1. r.per_op
      in
      Lp.Problem.add_constr ~name:r.rname p terms Lp.Problem.Le
        (Float.min r.budget total))
    resources;
  (* objective, eq. (5) *)
  let obj_terms =
    let base = ref [] in
    Array.iteri
      (fun s coef -> if coef <> 0. then base := (f_var.(s), coef) :: !base)
      obj;
    (match encoding with
    | Restricted -> ()
    | General ->
        (* the e/e' variables carry the network cost directly *)
        List.iter
          (fun (v, r) ->
            if r <> 0. then base := (v, spec.Spec.beta *. r) :: !base)
          !net_terms);
    !base
  in
  Lp.Problem.set_objective p Lp.Problem.Minimize obj_terms;
  { problem = p; f_var; encoding;
    edge_vars = Array.of_list (List.rev !edge_vars) }

let assignment_of_solution enc (sol : Lp.Solution.t) =
  Array.map (fun v -> sol.x.(v) >= 0.5) enc.f_var

let initial_point enc (c : Preprocess.contracted) (assign : bool array) =
  if Array.length assign <> Array.length c.super_of then None
  else begin
    let x = Array.make (Lp.Problem.n_vars enc.problem) 0. in
    (* every member of a supernode must sit on the same side, or the
       assignment does not survive the contraction *)
    let consistent = ref true in
    Array.iteri
      (fun s members ->
        match members with
        | [] -> ()
        | first :: rest ->
            let side = assign.(first) in
            if List.exists (fun i -> assign.(i) <> side) rest then
              consistent := false
            else x.(enc.f_var.(s)) <- (if side then 1. else 0.))
      c.members;
    if not !consistent then None
    else begin
      (* general encoding: the cut-indicator variables take their
         minimal feasible values *)
      Array.iter
        (fun (u, v, e, e') ->
          let fu = x.(enc.f_var.(u)) and fv = x.(enc.f_var.(v)) in
          x.(e) <- Float.max 0. (fv -. fu);
          x.(e') <- Float.max 0. (fu -. fv))
        enc.edge_vars;
      Some x
    end
  end
