(** Discrete cosine transform (type II), used for the cepstral step:
    the first 13 DCT coefficients of the log mel spectrum are the
    MFCCs (§6.2.1).  The direct implementation evaluates a cosine per
    (coefficient, input) pair, which is what makes the [cepstrals]
    operator float- and transcendental-heavy — the dominant cost on a
    TMote (Figure 8). *)

val dct_ii : ?n_out:int -> float array -> float array * Dataflow.Workload.t
(** [dct_ii ~n_out x] returns the first [n_out] (default all) DCT-II
    coefficients with orthonormal scaling. *)

val idct_ii : ?n:int -> float array -> float array
(** Inverse (DCT-III with orthonormal scaling); [n] is the output
    length (default: input length).  Test oracle. *)
