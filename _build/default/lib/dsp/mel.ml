type t = {
  n_fft : int;
  (* per filter: bin range and triangle weights *)
  filters : (int * float array) array;
}

let hz_to_mel f = 2595. *. Float.log10 (1. +. (f /. 700.))
let mel_to_hz m = 700. *. ((10. ** (m /. 2595.)) -. 1.)

let create ~n_filters ~n_fft ~sample_rate ?(f_lo = 0.) ?f_hi () =
  if n_filters <= 0 then invalid_arg "Mel.create: n_filters must be positive";
  let f_hi = match f_hi with Some f -> f | None -> sample_rate /. 2. in
  if f_lo < 0. || f_hi <= f_lo then invalid_arg "Mel.create: bad band";
  let n_bins = (n_fft / 2) + 1 in
  let mel_lo = hz_to_mel f_lo and mel_hi = hz_to_mel f_hi in
  (* n_filters + 2 boundary points, evenly spaced in mel *)
  let centers =
    Array.init (n_filters + 2) (fun i ->
        let m =
          mel_lo +. ((mel_hi -. mel_lo) *. Float.of_int i /. Float.of_int (n_filters + 1))
        in
        mel_to_hz m)
  in
  let hz_of_bin k = Float.of_int k *. sample_rate /. Float.of_int n_fft in
  let filters =
    Array.init n_filters (fun f ->
        let left = centers.(f) and mid = centers.(f + 1) and right = centers.(f + 2) in
        let weights = ref [] in
        let start = ref (-1) in
        for k = 0 to n_bins - 1 do
          let hz = hz_of_bin k in
          if hz > left && hz < right then begin
            let w =
              if hz <= mid then (hz -. left) /. Float.max 1e-9 (mid -. left)
              else (right -. hz) /. Float.max 1e-9 (right -. mid)
            in
            if !start < 0 then start := k;
            weights := w :: !weights
          end
        done;
        let arr = Array.of_list (List.rev !weights) in
        ((if !start < 0 then 0 else !start), arr))
  in
  { n_fft; filters }

let n_filters bank = Array.length bank.filters

let apply bank power =
  let n_bins = (bank.n_fft / 2) + 1 in
  if Array.length power <> n_bins then
    invalid_arg "Mel.apply: power spectrum length mismatch";
  let total_taps = ref 0 in
  let out =
    Array.map
      (fun (start, weights) ->
        let acc = ref 0. in
        Array.iteri (fun i w -> acc := !acc +. (w *. power.(start + i))) weights;
        total_taps := !total_taps + Array.length weights;
        !acc)
      bank.filters
  in
  let taps = Float.of_int !total_taps in
  ( out,
    Dataflow.Workload.make ~float_ops:(2. *. taps) ~mem_ops:(2. *. taps)
      ~branch_ops:taps
      ~call_ops:(Float.of_int (Array.length bank.filters))
      () )

let log_energies e =
  let eps = 1e-12 in
  let out = Array.map (fun x -> Float.log (Float.max eps x)) e in
  let nf = Float.of_int (Array.length e) in
  ( out,
    Dataflow.Workload.make ~trans_ops:nf ~float_ops:nf ~mem_ops:(2. *. nf)
      ~branch_ops:nf ~call_ops:1. () )
