type t = {
  coeffs : float array;
  hist : float array;  (* circular buffer of past inputs *)
  mutable pos : int;
}

let create coeffs =
  if Array.length coeffs = 0 then invalid_arg "Fir.create: empty coefficients";
  { coeffs; hist = Array.make (Array.length coeffs) 0.; pos = 0 }

let reset f =
  Array.fill f.hist 0 (Array.length f.hist) 0.;
  f.pos <- 0

let tap_workload n =
  let nf = Float.of_int n in
  Dataflow.Workload.make ~float_ops:(2. *. nf) ~mem_ops:(2. *. nf)
    ~branch_ops:nf ~int_ops:nf ()

let push_sample f x =
  let n = Array.length f.coeffs in
  f.hist.(f.pos) <- x;
  let acc = ref 0. in
  for k = 0 to n - 1 do
    let idx = (f.pos - k + n) mod n in
    acc := !acc +. (f.coeffs.(k) *. f.hist.(idx))
  done;
  f.pos <- (f.pos + 1) mod n;
  !acc

let push f x = (push_sample f x, tap_workload (Array.length f.coeffs))

let filter_frame f frame =
  let out = Array.map (fun x -> push_sample f x) frame in
  let w =
    Dataflow.Workload.add
      (Dataflow.Workload.scale
         (Float.of_int (Array.length frame))
         (tap_workload (Array.length f.coeffs)))
      (Dataflow.Workload.make ~call_ops:1. ())
  in
  (out, w)

let decimate f ~factor frame =
  if factor <= 0 then invalid_arg "Fir.decimate: factor must be positive";
  let n = Array.length frame in
  let m = n / factor in
  let out = Array.make m 0. in
  for i = 0 to n - 1 do
    let y = push_sample f frame.(i) in
    if i mod factor = factor - 1 then out.((i / factor)) <- y
  done;
  let w =
    Dataflow.Workload.add
      (Dataflow.Workload.scale (Float.of_int n)
         (tap_workload (Array.length f.coeffs)))
      (Dataflow.Workload.make ~int_ops:(Float.of_int n)
         ~branch_ops:(Float.of_int n) ~call_ops:1. ())
  in
  (out, w)

let moving_average n =
  if n <= 0 then invalid_arg "Fir.moving_average: length must be positive";
  Array.make n (1. /. Float.of_int n)

let low_pass ~cutoff ~taps =
  if cutoff <= 0. || cutoff > 0.5 then
    invalid_arg "Fir.low_pass: cutoff must be in (0, 0.5]";
  if taps <= 0 then invalid_arg "Fir.low_pass: taps must be positive";
  let mid = Float.of_int (taps - 1) /. 2. in
  let h =
    Array.init taps (fun i ->
        let t = Float.of_int i -. mid in
        let sinc =
          if Float.abs t < 1e-12 then 2. *. cutoff
          else Float.sin (2. *. Float.pi *. cutoff *. t) /. (Float.pi *. t)
        in
        let hamming =
          0.54
          -. 0.46
             *. Float.cos (2. *. Float.pi *. Float.of_int i /. Float.of_int (Int.max 1 (taps - 1)))
        in
        sinc *. hamming)
  in
  (* normalize DC gain to 1 *)
  let s = Array.fold_left ( +. ) 0. h in
  if Float.abs s > 1e-12 then Array.map (fun x -> x /. s) h else h
