type kind = Low | High

(* Daubechies D4 scaling coefficients. *)
let qmf_low =
  let s3 = Float.sqrt 3. and d = 4. *. Float.sqrt 2. in
  [| (1. +. s3) /. d; (3. +. s3) /. d; (3. -. s3) /. d; (1. -. s3) /. d |]

let qmf_high =
  (* alternating-sign mirror of the low-pass taps *)
  let n = Array.length qmf_low in
  Array.init n (fun i ->
      let c = qmf_low.(n - 1 - i) in
      if i mod 2 = 0 then c else -.c)

type branch = {
  even : Fir.t;
  odd : Fir.t;
  mutable pending : float option;  (* leftover sample from an odd frame *)
}

let taps_of = function Low -> qmf_low | High -> qmf_high

let split_taps taps =
  (* polyphase split: even-index taps filter even samples, odd-index
     taps filter odd samples *)
  let n = Array.length taps in
  let even = Array.init ((n + 1) / 2) (fun i -> taps.(2 * i)) in
  let odd = Array.init (n / 2) (fun i -> taps.((2 * i) + 1)) in
  (even, odd)

let create_branch kind =
  let even_taps, odd_taps = split_taps (taps_of kind) in
  { even = Fir.create even_taps; odd = Fir.create odd_taps; pending = None }

let reset_branch b =
  Fir.reset b.even;
  Fir.reset b.odd;
  b.pending <- None

let apply b frame =
  let buf =
    match b.pending with
    | None -> frame
    | Some x ->
        let n = Array.length frame in
        let out = Array.make (n + 1) x in
        Array.blit frame 0 out 1 n;
        out
  in
  let n = Array.length buf in
  let pairs = n / 2 in
  b.pending <- (if n land 1 = 1 then Some buf.(n - 1) else None);
  let out = Array.make pairs 0. in
  let w = ref (Dataflow.Workload.make ~call_ops:1. ()) in
  for i = 0 to pairs - 1 do
    let ye, we = Fir.push b.even buf.(2 * i) in
    let yo, wo = Fir.push b.odd buf.((2 * i) + 1) in
    out.(i) <- ye +. yo;
    w :=
      Dataflow.Workload.add !w
        (Dataflow.Workload.add we
           (Dataflow.Workload.add wo
              (Dataflow.Workload.make ~float_ops:1. ~mem_ops:1. ~branch_ops:1. ())))
  done;
  (out, !w)

let mag_with_scale ~gain frame =
  let acc = ref 0. in
  Array.iter (fun x -> acc := !acc +. (x *. x)) frame;
  let nf = Float.of_int (Array.length frame) in
  ( gain *. !acc,
    Dataflow.Workload.make ~float_ops:((2. *. nf) +. 1.) ~mem_ops:nf
      ~branch_ops:nf ~call_ops:1. () )
