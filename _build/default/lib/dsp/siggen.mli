(** Deterministic synthetic signal generators.

    Substitutes for the paper's microphone and EEG-cap sample data
    (see DESIGN.md): the generators exercise the same operator code
    paths at the paper's sampling rates.  All generators are seeded
    and reproducible. *)

(** Speech-like audio: alternating voiced segments (harmonic
    excitation shaped by formant-ish envelopes) and silence/noise. *)
module Speech : sig
  type t

  val create : ?seed:int -> ?sample_rate:float -> unit -> t

  val frame : t -> int -> int array
  (** [frame t n] produces the next [n] 12-bit signed samples, as
      delivered by the TMote ADC. *)

  val is_voiced : t -> bool
  (** Whether the generator is currently inside a voiced segment
      (ground truth for detection tests). *)
end

(** EEG-like multichannel signal: 1/f-ish background plus 3 Hz
    oscillatory bursts below 20 Hz during "ictal" (seizure) episodes,
    matching the §6.1 description of what the detector looks for. *)
module Eeg : sig
  type t

  val create : ?seed:int -> ?n_channels:int -> ?sample_rate:float ->
    ?seizure_period_s:float -> ?seizure_len_s:float -> unit -> t

  val window : t -> int -> float array array
  (** [window t n] advances time by [n] samples and returns one
      [n]-sample array per channel (16-bit-range floats). *)

  val in_seizure : t -> bool
end

val white_noise : Prng.t -> int -> float array
val sine : sample_rate:float -> freq:float -> ?phase:float -> int -> float array
