let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let bit_reverse_permute re im =
  let n = Array.length re in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(!j);
      im.(i) <- im.(!j);
      re.(!j) <- tr;
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

let transform ~sign re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  if not (is_pow2 n) then invalid_arg "Fft: length must be a power of two";
  bit_reverse_permute re im;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2. *. Float.pi /. Float.of_int !len in
    let wr = Float.cos theta and wi = Float.sin theta in
    let start = ref 0 in
    while !start < n do
      let cr = ref 1. and ci = ref 0. in
      for k = 0 to half - 1 do
        let i0 = !start + k and i1 = !start + k + half in
        let tr = (re.(i1) *. !cr) -. (im.(i1) *. !ci) in
        let ti = (re.(i1) *. !ci) +. (im.(i1) *. !cr) in
        re.(i1) <- re.(i0) -. tr;
        im.(i1) <- im.(i0) -. ti;
        re.(i0) <- re.(i0) +. tr;
        im.(i0) <- im.(i0) +. ti;
        let ncr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := ncr
      done;
      start := !start + !len
    done;
    len := !len * 2
  done

let forward re im = transform ~sign:(-1.) re im

let inverse re im =
  transform ~sign:1. re im;
  let n = Array.length re in
  let s = 1. /. Float.of_int n in
  for i = 0 to n - 1 do
    re.(i) <- re.(i) *. s;
    im.(i) <- im.(i) *. s
  done

let naive_dft re im =
  let n = Array.length re in
  let out_re = Array.make n 0. and out_im = Array.make n 0. in
  for k = 0 to n - 1 do
    let sr = ref 0. and si = ref 0. in
    for t = 0 to n - 1 do
      let ang = -2. *. Float.pi *. Float.of_int (k * t) /. Float.of_int n in
      let c = Float.cos ang and s = Float.sin ang in
      sr := !sr +. (re.(t) *. c) -. (im.(t) *. s);
      si := !si +. (re.(t) *. s) +. (im.(t) *. c)
    done;
    out_re.(k) <- !sr;
    out_im.(k) <- !si
  done;
  (out_re, out_im)

let workload n =
  let nf = Float.of_int n in
  let stages = Float.of_int (int_of_float (Float.round (Float.log2 nf))) in
  (* per stage: n/2 butterflies, each ~10 float ops + a complex twiddle
     update (~6 float ops); bit-reversal is ~n int ops *)
  Dataflow.Workload.make
    ~float_ops:(8. *. nf *. stages)
    ~trans_ops:(2. *. stages)
    ~int_ops:(2. *. nf)
    ~mem_ops:(4. *. nf *. stages)
    ~branch_ops:(nf *. stages /. 2.)
    ~call_ops:1. ()

let power_spectrum frame =
  let n = next_pow2 (Array.length frame) in
  let re = Array.make n 0. and im = Array.make n 0. in
  Array.blit frame 0 re 0 (Array.length frame);
  forward re im;
  let half = (n / 2) + 1 in
  let out = Array.make half 0. in
  for k = 0 to half - 1 do
    out.(k) <- (re.(k) *. re.(k)) +. (im.(k) *. im.(k))
  done;
  let w =
    Dataflow.Workload.add (workload n)
      (Dataflow.Workload.make
         ~float_ops:(3. *. Float.of_int half)
         ~mem_ops:(2. *. Float.of_int half)
         ~branch_ops:(Float.of_int half) ())
  in
  (out, w)
