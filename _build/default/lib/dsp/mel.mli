(** Mel-scale filter bank.

    Summarizes a power spectrum with overlapping triangular filters
    spaced on the perceptual mel scale (§6.2.1); the 32-filter bank
    reduces a 400-byte frame to 128 bytes, the first data-reducing
    step of the speech pipeline. *)

type t

val create :
  n_filters:int -> n_fft:int -> sample_rate:float ->
  ?f_lo:float -> ?f_hi:float -> unit -> t
(** [n_fft] is the FFT length whose [n_fft/2 + 1] power bins feed the
    bank.  Default band: 0 Hz to Nyquist. *)

val hz_to_mel : float -> float
val mel_to_hz : float -> float

val n_filters : t -> int

val apply : t -> float array -> float array * Dataflow.Workload.t
(** [apply bank power_bins] returns one energy per filter.
    @raise Invalid_argument when [power_bins] has the wrong length. *)

val log_energies : float array -> float array * Dataflow.Workload.t
(** Elementwise [log (max eps e)] — the "logs" operator. *)
