(** Linear support vector machine.

    The EEG application feeds a 66-element feature vector into a
    patient-specific SVM; a seizure is declared after three
    consecutive positive windows (§6.1). *)

type t = { weights : float array; bias : float }

val decision : t -> float array -> float * Dataflow.Workload.t
(** Signed distance [w . x + b].
    @raise Invalid_argument on a dimension mismatch. *)

val classify : t -> float array -> bool * Dataflow.Workload.t
(** [decision > 0]. *)

val train :
  ?epochs:int -> ?learning_rate:float -> ?lambda:float ->
  (float array * bool) array -> t
(** Stochastic sub-gradient descent on the L2-regularized hinge loss
    (Pegasos-style); enough to produce a working patient-specific
    detector from labelled windows.
    @raise Invalid_argument on empty or ragged training data. *)

(** Post-classifier that declares an event after [k] consecutive
    positive windows. *)
module Debounce : sig
  type state

  val create : k:int -> state
  val reset : state -> unit
  val step : state -> bool -> bool
  (** Feed one window classification; returns whether the event fires
      on this window (edge-triggered: fires once per run of
      positives). *)
end
