let white_noise rng n = Array.init n (fun _ -> Prng.gaussian rng)

let sine ~sample_rate ~freq ?(phase = 0.) n =
  Array.init n (fun i ->
      Float.sin (phase +. (2. *. Float.pi *. freq *. Float.of_int i /. sample_rate)))

module Speech = struct
  type t = {
    rng : Prng.t;
    sample_rate : float;
    mutable t_samples : int;
    mutable voiced : bool;
    mutable segment_left : int;  (* samples until segment switch *)
    mutable pitch_hz : float;
    mutable phase : float;
  }

  let create ?(seed = 42) ?(sample_rate = 8000.) () =
    {
      rng = Prng.create seed;
      sample_rate;
      t_samples = 0;
      voiced = false;
      segment_left = int_of_float (0.5 *. sample_rate);
      pitch_hz = 120.;
      phase = 0.;
    }

  let switch_segment t =
    t.voiced <- not t.voiced;
    let dur_s =
      if t.voiced then Prng.uniform t.rng 0.5 2.0
      else Prng.uniform t.rng 0.3 1.5
    in
    t.segment_left <- Int.max 1 (int_of_float (dur_s *. t.sample_rate));
    if t.voiced then t.pitch_hz <- Prng.uniform t.rng 90. 220.

  let sample t =
    if t.segment_left <= 0 then switch_segment t;
    t.segment_left <- t.segment_left - 1;
    t.t_samples <- t.t_samples + 1;
    let noise = Prng.gaussian t.rng in
    let v =
      if t.voiced then begin
        t.phase <- t.phase +. (2. *. Float.pi *. t.pitch_hz /. t.sample_rate);
        if t.phase > 2. *. Float.pi then t.phase <- t.phase -. (2. *. Float.pi);
        (* a few harmonics with decaying amplitude, like glottal pulses
           shaped by the vocal tract *)
        let h1 = Float.sin t.phase in
        let h2 = 0.6 *. Float.sin (2. *. t.phase) in
        let h3 = 0.35 *. Float.sin (3. *. t.phase) in
        let h4 = 0.2 *. Float.sin (5. *. t.phase) in
        (0.55 *. (h1 +. h2 +. h3 +. h4)) +. (0.03 *. noise)
      end
      else 0.02 *. noise
    in
    (* 12-bit signed ADC range *)
    let q = int_of_float (Float.round (v *. 1500.)) in
    Int.max (-2048) (Int.min 2047 q)

  let frame t n = Array.init n (fun _ -> sample t)

  let is_voiced t = t.voiced
end

module Eeg = struct
  type t = {
    rng : Prng.t;
    n_channels : int;
    sample_rate : float;
    seizure_period : int;  (* samples *)
    seizure_len : int;
    mutable t_samples : int;
    (* per-channel one-pole low-pass state for pink-ish background *)
    lp_state : float array;
    chan_gain : float array;
  }

  let create ?(seed = 7) ?(n_channels = 22) ?(sample_rate = 256.)
      ?(seizure_period_s = 60.) ?(seizure_len_s = 12.) () =
    let rng = Prng.create seed in
    {
      rng;
      n_channels;
      sample_rate;
      seizure_period = Int.max 1 (int_of_float (seizure_period_s *. sample_rate));
      seizure_len = Int.max 1 (int_of_float (seizure_len_s *. sample_rate));
      t_samples = 0;
      lp_state = Array.make n_channels 0.;
      chan_gain = Array.init n_channels (fun _ -> Prng.uniform rng 0.7 1.3);
    }

  let in_seizure_at t k = k mod t.seizure_period < t.seizure_len

  let in_seizure t = in_seizure_at t t.t_samples

  let window t n =
    let start = t.t_samples in
    let out =
      Array.init t.n_channels (fun _ -> Array.make n 0.)
    in
    for i = 0 to n - 1 do
      let k = start + i in
      let ictal = in_seizure_at t k in
      let tsec = Float.of_int k /. t.sample_rate in
      (* oscillatory seizure wave: ~3 Hz with a touch of 7 Hz, well
         below the 20 Hz band the detector inspects *)
      let burst =
        if ictal then
          (40. *. Float.sin (2. *. Float.pi *. 3. *. tsec))
          +. (15. *. Float.sin (2. *. Float.pi *. 7. *. tsec))
        else 0.
      in
      for c = 0 to t.n_channels - 1 do
        let w = Prng.gaussian t.rng in
        (* one-pole low-pass gives a 1/f-ish background *)
        t.lp_state.(c) <- (0.95 *. t.lp_state.(c)) +. (0.05 *. w *. 60.);
        out.(c).(i) <-
          t.chan_gain.(c) *. (t.lp_state.(c) +. burst +. (3. *. w))
      done
    done;
    t.t_samples <- start + n;
    out
end
