(** Radix-2 fast Fourier transform.

    The MFCC front end computes the spectrum of each 25 ms audio frame
    (§6.2.1).  Frames are zero-padded to the next power of two.  A
    naive O(n²) DFT is exposed as a test oracle. *)

val next_pow2 : int -> int

val forward : float array -> float array -> unit
(** [forward re im] transforms in place; lengths must be equal and a
    power of two.
    @raise Invalid_argument otherwise. *)

val inverse : float array -> float array -> unit
(** Inverse transform in place (scaled by 1/n). *)

val naive_dft : float array -> float array -> float array * float array
(** O(n²) reference; returns fresh (re, im). *)

val power_spectrum : float array -> float array * Dataflow.Workload.t
(** [power_spectrum frame] zero-pads to the next power of two [n] and
    returns the [n/2 + 1] power-spectrum bins together with the
    instruction mix of the computation. *)

val workload : int -> Dataflow.Workload.t
(** Instruction mix of one [n]-point transform ([n] a power of 2). *)
