type t = { weights : float array; bias : float }

let decision svm x =
  let n = Array.length svm.weights in
  if Array.length x <> n then invalid_arg "Svm.decision: dimension mismatch";
  let acc = ref svm.bias in
  for i = 0 to n - 1 do
    acc := !acc +. (svm.weights.(i) *. x.(i))
  done;
  let nf = Float.of_int n in
  ( !acc,
    Dataflow.Workload.make ~float_ops:(2. *. nf) ~mem_ops:(2. *. nf)
      ~branch_ops:nf ~call_ops:1. () )

let classify svm x =
  let d, w = decision svm x in
  (d > 0., w)

let train ?(epochs = 50) ?(learning_rate = 0.05) ?(lambda = 1e-3) samples =
  let m = Array.length samples in
  if m = 0 then invalid_arg "Svm.train: no samples";
  let dim = Array.length (fst samples.(0)) in
  Array.iter
    (fun (x, _) ->
      if Array.length x <> dim then invalid_arg "Svm.train: ragged samples")
    samples;
  let w = Array.make dim 0. in
  let b = ref 0. in
  let rng = Prng.create 0x5743 in
  for epoch = 1 to epochs do
    let eta = learning_rate /. Float.of_int epoch in
    for _ = 1 to m do
      let x, label = samples.(Prng.int rng m) in
      let y = if label then 1. else -1. in
      let margin =
        let acc = ref !b in
        for i = 0 to dim - 1 do
          acc := !acc +. (w.(i) *. x.(i))
        done;
        y *. !acc
      in
      for i = 0 to dim - 1 do
        let grad =
          (lambda *. w.(i)) -. (if margin < 1. then y *. x.(i) else 0.)
        in
        w.(i) <- w.(i) -. (eta *. grad)
      done;
      if margin < 1. then b := !b +. (eta *. y)
    done
  done;
  { weights = w; bias = !b }

module Debounce = struct
  type state = { k : int; mutable run : int; mutable fired : bool }

  let create ~k =
    if k <= 0 then invalid_arg "Svm.Debounce.create: k must be positive";
    { k; run = 0; fired = false }

  let reset s =
    s.run <- 0;
    s.fired <- false

  let step s positive =
    if positive then begin
      s.run <- s.run + 1;
      if s.run >= s.k && not s.fired then begin
        s.fired <- true;
        true
      end
      else false
    end
    else begin
      s.run <- 0;
      s.fired <- false;
      false
    end
end
