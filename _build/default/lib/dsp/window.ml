let hamming n =
  if n <= 1 then Array.make (Int.max n 0) 1.
  else
    Array.init n (fun i ->
        0.54 -. (0.46 *. Float.cos (2. *. Float.pi *. Float.of_int i /. Float.of_int (n - 1))))

let hann n =
  if n <= 1 then Array.make (Int.max n 0) 1.
  else
    Array.init n (fun i ->
        0.5 *. (1. -. Float.cos (2. *. Float.pi *. Float.of_int i /. Float.of_int (n - 1))))

let apply window frame =
  let n = Array.length frame in
  if Array.length window <> n then invalid_arg "Window.apply: length mismatch";
  let out = Array.init n (fun i -> window.(i) *. frame.(i)) in
  let nf = Float.of_int n in
  ( out,
    Dataflow.Workload.make ~float_ops:nf ~mem_ops:(3. *. nf) ~branch_ops:nf
      ~call_ops:1. () )

let preemphasis ?(alpha = 0.97) ~prev frame =
  let n = Array.length frame in
  let out = Array.make n 0. in
  let last = ref prev in
  for i = 0 to n - 1 do
    out.(i) <- frame.(i) -. (alpha *. !last);
    last := frame.(i)
  done;
  let nf = Float.of_int n in
  ( out,
    !last,
    Dataflow.Workload.make ~float_ops:(2. *. nf) ~mem_ops:(3. *. nf)
      ~branch_ops:nf ~call_ops:1. () )

let dc_remove frame =
  let n = Array.length frame in
  let nf = Float.of_int n in
  let mean = Array.fold_left ( +. ) 0. frame /. Float.max 1. nf in
  let out = Array.map (fun x -> x -. mean) frame in
  ( out,
    Dataflow.Workload.make ~float_ops:(2. *. nf) ~mem_ops:(2. *. nf)
      ~branch_ops:(2. *. nf) ~call_ops:1. () )
