(** Polyphase wavelet decomposition, the filtering structure of the
    EEG application (§6.1): each level splits the signal into even and
    odd sample streams, passes each through a 4-tap FIR filter, and
    adds the two — halving the data rate.  Low-pass and high-pass
    variants differ only in coefficients.  Cascading 7 levels and
    taking band energies of the last high-pass outputs yields the
    seizure-detection features. *)

type kind = Low | High

type branch
(** Streaming state of one (even FIR, odd FIR) pair; preserves
    continuity across frames like the stateful [FIRFilter] of
    Figure 1. *)

val create_branch : kind -> branch
val reset_branch : branch -> unit

val apply : branch -> float array -> float array * Dataflow.Workload.t
(** Consumes a frame and emits roughly half as many samples (an odd
    trailing sample is carried to the next frame). *)

val mag_with_scale :
  gain:float -> float array -> float * Dataflow.Workload.t
(** Scaled band energy [gain * sum x_i^2] — the [MagWithScale]
    operator. *)

val qmf_low : float array
(** The 4 Daubechies-style low-pass taps used by both polyphase
    branches. *)

val qmf_high : float array
(** Quadrature mirror of [qmf_low]. *)
