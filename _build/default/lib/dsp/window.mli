(** Analysis windows for frame-based processing. *)

val hamming : int -> float array
(** Hamming coefficients [0.54 - 0.46 cos(2 pi i / (n-1))]. *)

val hann : int -> float array

val apply : float array -> float array -> float array * Dataflow.Workload.t
(** [apply window frame] multiplies elementwise.
    @raise Invalid_argument on a length mismatch. *)

val preemphasis :
  ?alpha:float -> prev:float -> float array ->
  float array * float * Dataflow.Workload.t
(** First-order high-pass [y(n) = x(n) - alpha * x(n-1)] across frame
    boundaries; returns the filtered frame, the carry for the next
    frame, and the instruction mix.  Default [alpha = 0.97] (standard
    in MFCC front ends). *)

val dc_remove : float array -> float array * Dataflow.Workload.t
(** Subtract the frame mean — the "prefilt" stage of the speech
    pipeline. *)
