let dct_ii ?n_out x =
  let n = Array.length x in
  if n = 0 then invalid_arg "Dct.dct_ii: empty input";
  let n_out = match n_out with Some k -> k | None -> n in
  if n_out < 0 || n_out > n then invalid_arg "Dct.dct_ii: bad n_out";
  let nf = Float.of_int n in
  let out = Array.make n_out 0. in
  for k = 0 to n_out - 1 do
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc :=
        !acc
        +. x.(i)
           *. Float.cos (Float.pi /. nf *. (Float.of_int i +. 0.5) *. Float.of_int k)
    done;
    let scale =
      if k = 0 then Float.sqrt (1. /. nf) else Float.sqrt (2. /. nf)
    in
    out.(k) <- scale *. !acc
  done;
  let pairs = Float.of_int (n * n_out) in
  ( out,
    Dataflow.Workload.make ~trans_ops:pairs ~float_ops:(4. *. pairs)
      ~mem_ops:(2. *. pairs) ~branch_ops:pairs
      ~call_ops:(Float.of_int n_out) () )

let idct_ii ?n coeffs =
  let k_in = Array.length coeffs in
  let n = match n with Some v -> v | None -> k_in in
  if n < k_in then invalid_arg "Dct.idct_ii: output shorter than input";
  let nf = Float.of_int n in
  Array.init n (fun i ->
      let acc = ref 0. in
      for k = 0 to k_in - 1 do
        let scale =
          if k = 0 then Float.sqrt (1. /. nf) else Float.sqrt (2. /. nf)
        in
        acc :=
          !acc
          +. scale *. coeffs.(k)
             *. Float.cos (Float.pi /. nf *. (Float.of_int i +. 0.5) *. Float.of_int k)
      done;
      !acc)
