lib/dsp/wavelet.ml: Array Dataflow Fir Float
