lib/dsp/fft.ml: Array Dataflow Float
