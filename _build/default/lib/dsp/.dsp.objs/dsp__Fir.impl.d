lib/dsp/fir.ml: Array Dataflow Float Int
