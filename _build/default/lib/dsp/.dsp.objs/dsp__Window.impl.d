lib/dsp/window.ml: Array Dataflow Float Int
