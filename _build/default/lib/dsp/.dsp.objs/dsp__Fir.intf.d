lib/dsp/fir.mli: Dataflow
