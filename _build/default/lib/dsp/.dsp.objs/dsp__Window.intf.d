lib/dsp/window.mli: Dataflow
