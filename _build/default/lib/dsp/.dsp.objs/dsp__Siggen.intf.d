lib/dsp/siggen.mli: Prng
