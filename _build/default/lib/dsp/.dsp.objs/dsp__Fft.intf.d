lib/dsp/fft.mli: Dataflow
