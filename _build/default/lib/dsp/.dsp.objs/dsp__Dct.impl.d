lib/dsp/dct.ml: Array Dataflow Float
