lib/dsp/dct.mli: Dataflow
