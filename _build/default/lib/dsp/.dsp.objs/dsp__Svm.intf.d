lib/dsp/svm.mli: Dataflow
