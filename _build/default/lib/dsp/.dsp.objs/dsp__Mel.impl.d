lib/dsp/mel.ml: Array Dataflow Float List
