lib/dsp/siggen.ml: Array Float Int Prng
