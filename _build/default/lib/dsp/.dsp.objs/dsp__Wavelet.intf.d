lib/dsp/wavelet.mli: Dataflow
