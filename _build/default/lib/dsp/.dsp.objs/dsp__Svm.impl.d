lib/dsp/svm.ml: Array Dataflow Float Prng
