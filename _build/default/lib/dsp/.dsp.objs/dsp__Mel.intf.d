lib/dsp/mel.mli: Dataflow
