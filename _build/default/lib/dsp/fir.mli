(** Finite impulse response filters.

    Mirrors the paper's Figure 1: a streaming FIR keeps an N-deep FIFO
    of past samples as private operator state.  A frame-based variant
    filters a whole window at once (used by the mote's 32 kS/s to
    8 kS/s decimating low-pass, §6.2.3). *)

type t
(** Streaming filter state. *)

val create : float array -> t
(** [create coeffs]; the FIFO starts zero-filled like [FIRFilter] in
    Figure 1. *)

val reset : t -> unit

val push : t -> float -> float * Dataflow.Workload.t
(** Feed one sample; returns the filter output. *)

val filter_frame : t -> float array -> float array * Dataflow.Workload.t
(** Feed a frame through the streaming state, preserving continuity
    across frames. *)

val decimate :
  t -> factor:int -> float array -> float array * Dataflow.Workload.t
(** Low-pass through the filter and keep every [factor]-th output —
    the anti-aliasing decimator of the TMote audio board. *)

val moving_average : int -> float array
(** Box-car coefficients of the given length (a simple low-pass for
    tests and the prefilter). *)

val low_pass : cutoff:float -> taps:int -> float array
(** Windowed-sinc low-pass; [cutoff] is the normalized frequency in
    (0, 0.5]. *)
