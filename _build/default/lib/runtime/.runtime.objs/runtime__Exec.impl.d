lib/runtime/exec.ml: Array Dataflow Graph Hashtbl List Op Value Workload
