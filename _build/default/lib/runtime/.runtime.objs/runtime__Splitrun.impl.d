lib/runtime/splitrun.ml: Array Dataflow Exec Graph List Op Value
