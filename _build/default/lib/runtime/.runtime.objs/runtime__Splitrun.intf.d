lib/runtime/splitrun.mli: Dataflow Exec
