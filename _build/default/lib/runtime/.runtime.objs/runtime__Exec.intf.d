lib/runtime/exec.mli: Dataflow
