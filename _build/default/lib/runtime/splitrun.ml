open Dataflow

type t = {
  graph : Graph.t;
  node_of : bool array;
  nodes : Exec.t array;
  server : Exec.t;
  mutable cross_elems : int;
  mutable cross_bytes : int;
}

let create ?(n_nodes = 1) ~node_of graph =
  let n = Graph.n_ops graph in
  let node_mask = Array.init n node_of in
  let replicated i =
    (Graph.op graph i).Op.namespace = Op.Node && not node_mask.(i)
  in
  {
    graph;
    node_of = node_mask;
    nodes =
      Array.init n_nodes (fun _ ->
          Exec.create ~member:(fun i -> node_mask.(i)) graph);
    server =
      Exec.create ~replicated ~member:(fun i -> not node_mask.(i)) graph;
    cross_elems = 0;
    cross_bytes = 0;
  }

let reset t =
  Array.iter Exec.reset t.nodes;
  Exec.reset t.server;
  t.cross_elems <- 0;
  t.cross_bytes <- 0

let inject ?(node = 0) t ~source value =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Splitrun.inject: bad node id";
  if not t.node_of.(source) then
    invalid_arg "Splitrun.inject: source operator is not on the node";
  let fired = Exec.fire t.nodes.(node) ~op:source ~port:0 value in
  let sink_values = ref (List.rev fired.sink_values) in
  List.iter
    (fun (c : Exec.crossing) ->
      t.cross_elems <- t.cross_elems + 1;
      t.cross_bytes <- t.cross_bytes + Value.size_bytes c.value;
      let f =
        Exec.fire ~node t.server ~op:c.edge.dst ~port:c.edge.dst_port c.value
      in
      sink_values := List.rev_append f.sink_values !sink_values)
    fired.crossings;
  List.rev !sink_values

let node_exec t i = t.nodes.(i)
let server_exec t = t.server
let crossing_traffic t = (t.cross_elems, t.cross_bytes)
