(** Depth-first stream execution over a subset of a dataflow graph.

    This mirrors the paper's C backend (§5.1): emitting a value is a
    function call into the downstream operator, so one injected sample
    drives a complete depth-first traversal of the graph.  An [Exec.t]
    executes only the operators for which [member] is true; values
    emitted along edges that leave the member set are returned as
    {!crossing}s — on a deployed system those become radio messages.

    Replicated operators (logical [Node] namespace) that have been
    relocated to the server keep one private-state instance per
    physical node, looked up by the [node] argument of {!fire} — the
    per-node state table of §2.1.1. *)

type crossing = { edge : Dataflow.Graph.edge; value : Dataflow.Value.t }

type fired = {
  crossings : crossing list;  (** values that left the member set *)
  workload : Dataflow.Workload.t;  (** work performed by this traversal *)
  sink_values : Dataflow.Value.t list;
      (** values delivered to [Display_output] operators during the
          traversal *)
}

type t

val create :
  ?replicated:(int -> bool) -> member:(int -> bool) -> Dataflow.Graph.t -> t
(** [replicated op] marks operators that need one state instance per
    node id (default: none — single-instance).  Instances are created
    lazily per node id. *)

val full : Dataflow.Graph.t -> t
(** Everything is a member; single node. *)

val reset : t -> unit
(** Reset all operator state and statistics. *)

val fire : ?node:int -> t -> op:int -> port:int -> Dataflow.Value.t -> fired
(** Deliver a value to a member operator's input port and run the
    depth-first traversal.  For a source operator, [port] is ignored
    by convention (sources have no in-edges; the injected value is the
    sensor sample).
    @raise Invalid_argument when [op] is not a member. *)

(** {1 Accumulated statistics} *)

val op_fires : t -> int -> int
val op_workload : t -> int -> Dataflow.Workload.t
val edge_elements : t -> int -> int
(** Elements carried by edge [eid] (within or leaving the member set). *)

val edge_bytes : t -> int -> int
val sink_count : t -> int
val sink_log : t -> Dataflow.Value.t list
(** Values delivered to sinks, oldest first, capped at 65536. *)
