(** Lossless split execution of a partitioned program.

    Runs the node-side and server-side halves of a graph connected by
    a perfect (lossless, zero-latency) channel.  Used to check that
    partitioning never changes program semantics when no messages are
    lost — the invariant behind Wishbone's freedom to move stateless
    operators (§2.1.1) — and as the reference for the netsim deploy
    path. *)

type t

val create :
  ?n_nodes:int -> node_of:(int -> bool) -> Dataflow.Graph.t -> t
(** [node_of op] says whether the operator lives on the embedded node.
    Operators with a [Node] namespace that are placed on the server
    get per-node state instances. *)

val reset : t -> unit

val inject :
  ?node:int -> t -> source:int -> Dataflow.Value.t ->
  Dataflow.Value.t list
(** Push one sensor sample into [source] on the given node (default
    0); both halves execute and the values reaching server sinks
    during this traversal are returned in order. *)

val node_exec : t -> int -> Exec.t
(** Per-node executor (for statistics inspection). *)

val server_exec : t -> Exec.t

val crossing_traffic : t -> int * int
(** Total (elements, bytes) that crossed the node→server boundary so
    far. *)
