open Dataflow

type crossing = { edge : Graph.edge; value : Value.t }

type fired = {
  crossings : crossing list;
  workload : Workload.t;
  sink_values : Value.t list;
}

type t = {
  graph : Graph.t;
  member : bool array;
  replicated : bool array;
  (* per op, node-id keyed instances; non-replicated ops use key 0 *)
  instances : (int, Op.instance) Hashtbl.t array;
  fires : int array;
  workloads : Workload.t array;
  edge_elems : int array;
  edge_bytes : int array;
  mutable sinks_seen : int;
  mutable sink_log_rev : Value.t list;
  mutable sink_log_len : int;
}

let sink_log_cap = 65536

let create ?(replicated = fun _ -> false) ~member graph =
  let n = Graph.n_ops graph in
  {
    graph;
    member = Array.init n member;
    replicated = Array.init n replicated;
    instances = Array.init n (fun _ -> Hashtbl.create 1);
    fires = Array.make n 0;
    workloads = Array.make n Workload.zero;
    edge_elems = Array.make (Graph.n_edges graph) 0;
    edge_bytes = Array.make (Graph.n_edges graph) 0;
    sinks_seen = 0;
    sink_log_rev = [];
    sink_log_len = 0;
  }

let full graph = create ~member:(fun _ -> true) graph

let reset t =
  Array.iter (fun tbl -> Hashtbl.iter (fun _ inst -> inst.Op.reset ()) tbl)
    t.instances;
  Array.fill t.fires 0 (Array.length t.fires) 0;
  Array.fill t.workloads 0 (Array.length t.workloads) Workload.zero;
  Array.fill t.edge_elems 0 (Array.length t.edge_elems) 0;
  Array.fill t.edge_bytes 0 (Array.length t.edge_bytes) 0;
  t.sinks_seen <- 0;
  t.sink_log_rev <- [];
  t.sink_log_len <- 0

let instance t ~node op_id =
  let key = if t.replicated.(op_id) then node else 0 in
  let tbl = t.instances.(op_id) in
  match Hashtbl.find_opt tbl key with
  | Some inst -> inst
  | None ->
      let inst = (Graph.op t.graph op_id).Op.fresh () in
      Hashtbl.add tbl key inst;
      inst

let log_sink t v =
  t.sinks_seen <- t.sinks_seen + 1;
  if t.sink_log_len < sink_log_cap then begin
    t.sink_log_rev <- v :: t.sink_log_rev;
    t.sink_log_len <- t.sink_log_len + 1
  end

let fire ?(node = 0) t ~op ~port value =
  if op < 0 || op >= Array.length t.member || not t.member.(op) then
    invalid_arg "Exec.fire: operator is not a member of this partition";
  let crossings = ref [] in
  let total = ref Workload.zero in
  let sink_vals = ref [] in
  let rec deliver op_id port v =
    let inst = instance t ~node op_id in
    let outputs, w = inst.Op.work ~port v in
    t.fires.(op_id) <- t.fires.(op_id) + 1;
    t.workloads.(op_id) <- Workload.add t.workloads.(op_id) w;
    total := Workload.add !total w;
    let is_sink = (Graph.op t.graph op_id).Op.side_effect = Op.Display_output in
    if is_sink then begin
      (* the value consumed by a sink counts as application output *)
      log_sink t v;
      sink_vals := v :: !sink_vals
    end;
    List.iter
      (fun out ->
        List.iter
          (fun (e : Graph.edge) ->
            t.edge_elems.(e.eid) <- t.edge_elems.(e.eid) + 1;
            t.edge_bytes.(e.eid) <- t.edge_bytes.(e.eid) + Value.size_bytes out;
            if t.member.(e.dst) then deliver e.dst e.dst_port out
            else crossings := { edge = e; value = out } :: !crossings)
          (Graph.succs t.graph op_id))
      outputs
  in
  deliver op port value;
  {
    crossings = List.rev !crossings;
    workload = !total;
    sink_values = List.rev !sink_vals;
  }

let op_fires t i = t.fires.(i)
let op_workload t i = t.workloads.(i)
let edge_elements t eid = t.edge_elems.(eid)
let edge_bytes t eid = t.edge_bytes.(eid)
let sink_count t = t.sinks_seen
let sink_log t = List.rev t.sink_log_rev
