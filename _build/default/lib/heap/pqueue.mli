(** Minimal binary min-heap keyed by floats, used by branch & bound to
    order open nodes by their LP relaxation bound (best-first). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest key. *)

val min_key : 'a t -> float option
