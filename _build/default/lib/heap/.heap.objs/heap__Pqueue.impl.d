lib/heap/pqueue.ml: Array
