lib/heap/pqueue.mli:
