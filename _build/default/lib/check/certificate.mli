(** LP optimality certificates.

    {!Lp.Simplex.solve_warm} returns, alongside an [Optimal] solution,
    the final simplex {!Lp.Basis.t}.  That pair is a checkable
    certificate: rebuilding the (unscaled) augmented equality system
    [A z = b] — structural columns, one slack per inequality in
    constraint order ([Le] +1, [Ge] -1), one artificial per row — and
    solving [B^T y = c_B] for the dual prices recovers everything
    optimality requires:

    - primal feasibility: bounds, constraint rows, slack signs;
    - the recorded nonbasic columns actually rest at their recorded
      bounds at the claimed point;
    - dual feasibility: reduced costs [d_j = c_j - y . A_j] are
      [>= 0] at lower bounds and [<= 0] at upper bounds (minimisation
      space; fixed columns such as artificials are exempt);
    - complementary slackness / zero duality gap:
      [c . z = y . b + sum_j d_j z_j].

    Internal row equilibration and sign flips in the solver do not
    disturb any of this: they rescale the basis matrix by a
    nonsingular diagonal, so basis validity and the certificate's
    conclusions are unchanged in unscaled space.

    The checker is deliberately independent of the solver: dense
    Gaussian elimination with partial pivoting, no tableau reuse. *)

type verdict = Valid | Invalid of string list

val pp_verdict : Format.formatter -> verdict -> unit

val check :
  ?tol:float ->
  ?lo:float array ->
  ?hi:float array ->
  Lp.Problem.t ->
  Lp.Solution.t ->
  Lp.Basis.t ->
  verdict
(** [check p sol basis] certifies that [sol] is an optimal vertex of
    the LP relaxation of [p] with basis [basis].  [lo]/[hi] override
    the problem's bounds exactly as in {!Lp.Simplex.solve}; [tol]
    (default [1e-6]) is scaled internally by row/objective magnitude.
    Every violated condition contributes one message to [Invalid]. *)

val check_result :
  ?tol:float ->
  ?lo:float array ->
  ?hi:float array ->
  Lp.Problem.t ->
  Lp.Simplex.result ->
  verdict
(** Certify a {!Lp.Simplex.solve_warm} result: [Optimal] results must
    carry a basis and pass {!check}; an [Optimal] without a basis is
    itself [Invalid].  [Infeasible] / [Unbounded] / [Iteration_limit]
    results are accepted as-is (no certificate is available for
    them — the fuzz oracles cross-check those statuses by other
    means). *)
