open Dataflow

type cfg = {
  n_ops : int;
  extra_edge_prob : float;
  stateful_prob : float;
  mode : Wishbone.Movable.mode;
  tightness : float;
  alpha : float;
  beta : float;
}

let default_cfg =
  {
    n_ops = 8;
    extra_edge_prob = 0.2;
    stateful_prob = 0.2;
    mode = Wishbone.Movable.Conservative;
    tightness = 0.5;
    alpha = 0.;
    beta = 1.;
  }

(* ---- deterministic integer work functions --------------------------

   Every interior operator computes an exact integer function of its
   inputs (port-sensitive, so fan-in matters), which makes the
   split-equivalence oracle a bitwise comparison rather than a float
   tolerance judgement. *)

let as_int = function Value.Int i -> i | v -> Value.size_bytes v

let affine_instance m a =
  {
    Op.work =
      (fun ~port v ->
        let x = as_int v + (7 * port) in
        ([ Value.Int ((m * x) + a) ], Workload.make ~int_ops:2. ()));
    reset = (fun () -> ());
  }

let filter_instance k =
  {
    Op.work =
      (fun ~port v ->
        let x = as_int v + (7 * port) in
        let out = if (x + k) mod 3 = 0 then [] else [ Value.Int x ] in
        (out, Workload.make ~int_ops:1. ~branch_ops:1. ()));
    reset = (fun () -> ());
  }

let expander_instance a =
  {
    Op.work =
      (fun ~port v ->
        let x = as_int v + (7 * port) in
        ([ Value.Int x; Value.Int (x + a) ], Workload.make ~int_ops:2. ()));
    reset = (fun () -> ());
  }

let counter_instance () =
  let c = ref 0 in
  {
    Op.work =
      (fun ~port v ->
        let x = as_int v + (7 * port) in
        incr c;
        ([ Value.Int (x + !c) ], Workload.make ~int_ops:2. ()));
    reset = (fun () -> c := 0);
  }

let decimator_instance () =
  let seen = ref 0 in
  {
    Op.work =
      (fun ~port v ->
        let x = as_int v + (7 * port) in
        incr seen;
        let out = if !seen mod 2 = 0 then [ Value.Int x ] else [] in
        (out, Workload.make ~int_ops:1. ~branch_ops:1. ()));
    reset = (fun () -> seen := 0);
  }

let passthrough_instance () =
  { Op.work = (fun ~port:_ v -> ([ v ], Workload.make ~call_ops:1. ()));
    reset = (fun () -> ()) }

let sink_instance () =
  { Op.work = (fun ~port:_ _ -> ([], Workload.make ~call_ops:1. ()));
    reset = (fun () -> ()) }

let interior_op rng ~id ~stateful_prob =
  let stateful = Prng.bool rng stateful_prob in
  let kind, fresh =
    if stateful then
      if Prng.bool rng 0.5 then ("counter", counter_instance)
      else ("decimator", decimator_instance)
    else begin
      match Prng.int rng 3 with
      | 0 ->
          let m = 1 + Prng.int rng 3 and a = Prng.int rng 11 - 5 in
          ("affine", fun () -> affine_instance m a)
      | 1 ->
          let k = Prng.int rng 3 in
          ("filter", fun () -> filter_instance k)
      | _ ->
          let a = 1 + Prng.int rng 5 in
          ("expander", fun () -> expander_instance a)
    end
  in
  {
    Op.id;
    name = Printf.sprintf "%s%d" kind id;
    kind;
    namespace = Op.Node;
    stateful;
    side_effect = Op.Pure;
    fresh;
  }

let graph rng cfg =
  if cfg.n_ops < 3 then invalid_arg "Check.Gen.graph: need at least 3 ops";
  let n = cfg.n_ops in
  let sink = n - 1 in
  let ops =
    Array.init n (fun id ->
        if id = 0 then
          { Op.id; name = "src"; kind = "source"; namespace = Op.Node;
            stateful = false; side_effect = Op.Sensor_input;
            fresh = passthrough_instance }
        else if id = sink then
          { Op.id; name = "out"; kind = "sink"; namespace = Op.Server;
            stateful = false; side_effect = Op.Display_output;
            fresh = sink_instance }
        else interior_op rng ~id ~stateful_prob:cfg.stateful_prob)
  in
  (* spine: every interior op reads from a random earlier op, ports
     assigned densely per destination *)
  let in_count = Array.make n 0 in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v, in_count.(v)) :: !edges;
    in_count.(v) <- in_count.(v) + 1
  in
  for v = 1 to sink - 1 do
    add_edge (Prng.int rng v) v
  done;
  for u = 0 to sink - 2 do
    for v = u + 1 to sink - 1 do
      if Prng.bool rng cfg.extra_edge_prob then add_edge u v
    done
  done;
  (* every terminal op feeds the sink so the DAG is connected *)
  let has_out = Array.make n false in
  List.iter (fun (u, _, _) -> has_out.(u) <- true) !edges;
  for u = 0 to sink - 1 do
    if not has_out.(u) then add_edge u sink
  done;
  Graph.make ops (List.rev !edges)

let spec rng cfg =
  let g = graph rng cfg in
  match Wishbone.Movable.classify cfg.mode g with
  | Error msg ->
      (* cannot happen for the shapes generated above: the only
         server-pinned operator is the sink, which has no successors *)
      invalid_arg ("Check.Gen.spec: " ^ msg)
  | Ok placement ->
      let n = Graph.n_ops g in
      let sink = n - 1 in
      let cpu =
        Array.init n (fun i ->
            if i = 0 || i = sink then 0.01 else Prng.uniform rng 0.01 0.3)
      in
      let bw =
        Array.init (Graph.n_edges g) (fun _ -> Prng.uniform rng 1. 100.)
      in
      let cpu_pinned = ref 0. and cpu_total = ref 0. in
      Array.iteri
        (fun i c ->
          cpu_total := !cpu_total +. c;
          if placement.(i) = Wishbone.Movable.Pin_node then
            cpu_pinned := !cpu_pinned +. c)
        cpu;
      let frac = 1. -. (cfg.tightness *. Prng.uniform rng 0.5 1.) in
      let cpu_budget =
        !cpu_pinned +. (frac *. (!cpu_total -. !cpu_pinned)) +. 1e-3
      in
      let total_bw = Array.fold_left ( +. ) 0. bw in
      let net_budget =
        (total_bw *. (1. -. (cfg.tightness *. Prng.uniform rng 0.5 1.))) +. 1.
      in
      {
        Wishbone.Spec.graph = g;
        placement;
        cpu;
        bandwidth = bw;
        cpu_budget;
        net_budget;
        alpha = cfg.alpha;
        beta = cfg.beta;
      }

let random_cut rng (spec : Wishbone.Spec.t) =
  let g = spec.Wishbone.Spec.graph in
  let n = Graph.n_ops g in
  let on_node = Array.make n false in
  Array.iter
    (fun v ->
      on_node.(v) <-
        (match spec.Wishbone.Spec.placement.(v) with
        | Wishbone.Movable.Pin_node -> true
        | Wishbone.Movable.Pin_server -> false
        | Wishbone.Movable.Movable ->
            List.for_all
              (fun (e : Graph.edge) -> on_node.(e.src))
              (Graph.preds g v)
            && Prng.bool rng 0.6))
    (Graph.topo_order g);
  on_node

(* ---- random LPs / ILPs ---- *)

let lp rng ~size =
  let p = Lp.Problem.create () in
  let n = 2 + Prng.int rng (Int.max 1 size) in
  let vars =
    Array.init n (fun _ ->
        let lo = if Prng.bool rng 0.3 then -.Prng.uniform rng 0. 3. else 0. in
        let hi =
          if Prng.bool rng 0.15 then infinity
          else lo +. Prng.uniform rng 0.5 8.
        in
        Lp.Problem.add_var ~lo ~hi p)
  in
  let m = 1 + Prng.int rng (n + 1) in
  for _ = 1 to m do
    let terms =
      Array.to_list
        (Array.map
           (fun v ->
             let c =
               if Prng.bool rng 0.3 then 0. else Prng.uniform rng (-3.) 3.
             in
             (v, c))
           vars)
    in
    let sense =
      let u = Prng.float rng in
      if u < 0.6 then Lp.Problem.Le
      else if u < 0.85 then Lp.Problem.Ge
      else Lp.Problem.Eq
    in
    Lp.Problem.add_constr p terms sense (Prng.uniform rng (-4.) 8.)
  done;
  let dir =
    if Prng.bool rng 0.5 then Lp.Problem.Maximize else Lp.Problem.Minimize
  in
  Lp.Problem.set_objective p dir
    (Array.to_list
       (Array.map (fun v -> (v, Prng.uniform rng (-3.) 3.)) vars));
  p

let ilp rng ~size =
  let p = Lp.Problem.create () in
  let n = 2 + Prng.int rng (Int.max 1 (Int.min size 6)) in
  let vars =
    Array.init n (fun _ ->
        let lo = if Prng.bool rng 0.2 then -1. else 0. in
        let hi = lo +. Float.of_int (1 + Prng.int rng 2) in
        Lp.Problem.add_var ~lo ~hi ~integer:true p)
  in
  let m = 1 + Prng.int rng 4 in
  for _ = 1 to m do
    let terms =
      Array.to_list
        (Array.map
           (fun v -> (v, Float.of_int (Prng.int rng 7 - 3)))
           vars)
    in
    let sense =
      if Prng.bool rng 0.75 then Lp.Problem.Le else Lp.Problem.Ge
    in
    Lp.Problem.add_constr p terms sense (Float.of_int (Prng.int rng 10 - 2))
  done;
  let dir =
    if Prng.bool rng 0.5 then Lp.Problem.Maximize else Lp.Problem.Minimize
  in
  Lp.Problem.set_objective p dir
    (Array.to_list
       (Array.map (fun v -> (v, Float.of_int (Prng.int rng 11 - 5))) vars));
  p

let resources rng (spec : Wishbone.Spec.t) =
  let n = Graph.n_ops spec.Wishbone.Spec.graph in
  let count = Prng.int rng 3 in
  List.init count (fun k ->
      let per_op = Array.init n (fun _ -> Prng.uniform rng 0. 10.) in
      let pinned = ref 0. and total = ref 0. in
      Array.iteri
        (fun i c ->
          total := !total +. c;
          if spec.Wishbone.Spec.placement.(i) = Wishbone.Movable.Pin_node
          then pinned := !pinned +. c)
        per_op;
      let frac = Prng.uniform rng 0.3 1.1 in
      {
        Wishbone.Ilp.rname = (if k = 0 then "ram" else "flash");
        per_op;
        budget = !pinned +. (frac *. (!total -. !pinned)) +. 1e-3;
      })

let pp_spec ppf (s : Wishbone.Spec.t) =
  let g = s.Wishbone.Spec.graph in
  let placement_letter = function
    | Wishbone.Movable.Pin_node -> 'N'
    | Wishbone.Movable.Pin_server -> 'S'
    | Wishbone.Movable.Movable -> 'M'
  in
  Format.fprintf ppf "@[<v>spec: %d ops, %d edges@," (Graph.n_ops g)
    (Graph.n_edges g);
  Array.iter
    (fun (o : Op.t) ->
      Format.fprintf ppf "  op %d %s [%c] cpu=%.4f%s@," o.Op.id o.Op.name
        (placement_letter s.Wishbone.Spec.placement.(o.Op.id))
        s.Wishbone.Spec.cpu.(o.Op.id)
        (if o.Op.stateful then " stateful" else ""))
    (Graph.ops g);
  Array.iter
    (fun (e : Graph.edge) ->
      Format.fprintf ppf "  edge %d: %d -> %d (port %d) bw=%.3f@," e.eid
        e.src e.dst e.dst_port
        s.Wishbone.Spec.bandwidth.(e.eid))
    (Graph.edges g);
  Format.fprintf ppf "  cpu_budget=%.6f net_budget=%.3f alpha=%g beta=%g@]"
    s.Wishbone.Spec.cpu_budget s.Wishbone.Spec.net_budget
    s.Wishbone.Spec.alpha s.Wishbone.Spec.beta
