lib/check/fuzz.mli: Format
