lib/check/oracle.mli: Lp Prng Wishbone
