lib/check/oracle.ml: Array Certificate Dataflow Float Format Fun Gen Graph List Lp Option Printf Prng Runtime Stdlib String Wishbone
