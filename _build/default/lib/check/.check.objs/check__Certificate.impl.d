lib/check/certificate.ml: Array Float Format List Lp
