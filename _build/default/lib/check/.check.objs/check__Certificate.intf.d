lib/check/certificate.mli: Format Lp
