lib/check/gen.ml: Array Dataflow Float Format Graph Int List Lp Op Printf Prng Value Wishbone Workload
