lib/check/gen.mli: Dataflow Format Lp Prng Wishbone
