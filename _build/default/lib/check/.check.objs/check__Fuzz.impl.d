lib/check/fuzz.ml: Format Gen Int Int64 List Lp Oracle Printf Prng Shrink String Wishbone
