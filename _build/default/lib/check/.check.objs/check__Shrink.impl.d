lib/check/shrink.ml: Array Dataflow Graph List Lp Op Option Wishbone
