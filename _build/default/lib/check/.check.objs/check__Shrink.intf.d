lib/check/shrink.mli: Lp Wishbone
