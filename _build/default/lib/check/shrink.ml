open Dataflow

(* ---- spec shrinking ---- *)

(* Rebuild a spec from op-keep decisions and an explicit edge list of
   (src, dst, bandwidth) in old vertex numbering; ids are renumbered
   densely and destination ports reassigned densely in list order. *)
let rebuild_spec (s : Wishbone.Spec.t) ~keep ~edges =
  let g = s.Wishbone.Spec.graph in
  let n = Graph.n_ops g in
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if keep.(v) then begin
      remap.(v) <- !next;
      incr next
    end
  done;
  let n' = !next in
  if n' = 0 then None
  else begin
    let ops = Array.make n' (Graph.op g 0) in
    for v = 0 to n - 1 do
      if keep.(v) then
        ops.(remap.(v)) <- { (Graph.op g v) with Op.id = remap.(v) }
    done;
    let port_next = Array.make n' 0 in
    let triples = ref [] and bws = ref [] in
    List.iter
      (fun (u, w, bw) ->
        if keep.(u) && keep.(w) then begin
          let u' = remap.(u) and w' = remap.(w) in
          triples := (u', w', port_next.(w')) :: !triples;
          port_next.(w') <- port_next.(w') + 1;
          bws := bw :: !bws
        end)
      edges;
    match Graph.make ops (List.rev !triples) with
    | g' ->
        let project a =
          let out = Array.make n' a.(0) in
          for v = 0 to n - 1 do
            if keep.(v) then out.(remap.(v)) <- a.(v)
          done;
          out
        in
        Some
          {
            s with
            Wishbone.Spec.graph = g';
            placement = project s.Wishbone.Spec.placement;
            cpu = project s.Wishbone.Spec.cpu;
            bandwidth = Array.of_list (List.rev !bws);
          }
    | exception Invalid_argument _ -> None
  end

let all_edges (s : Wishbone.Spec.t) =
  Array.to_list
    (Array.map
       (fun (e : Graph.edge) -> (e.src, e.dst, s.Wishbone.Spec.bandwidth.(e.eid)))
       (Graph.edges s.Wishbone.Spec.graph))

let remove_op (s : Wishbone.Spec.t) v =
  let g = s.Wishbone.Spec.graph in
  let n = Graph.n_ops g in
  if n <= 2 then None
  else begin
    let keep = Array.make n true in
    keep.(v) <- false;
    (* splice every predecessor to every successor, inheriting the
       incoming edge's bandwidth *)
    let spliced =
      List.concat_map
        (fun (pe : Graph.edge) ->
          List.map
            (fun (se : Graph.edge) ->
              (pe.src, se.dst, s.Wishbone.Spec.bandwidth.(pe.eid)))
            (Graph.succs g v))
        (Graph.preds g v)
    in
    let kept =
      List.filter (fun (u, w, _) -> u <> v && w <> v) (all_edges s)
    in
    rebuild_spec s ~keep ~edges:(kept @ spliced)
  end

let remove_edge (s : Wishbone.Spec.t) eid =
  let g = s.Wishbone.Spec.graph in
  let keep = Array.make (Graph.n_ops g) true in
  let edges =
    List.filteri (fun i _ -> i <> eid) (all_edges s)
  in
  if List.length edges = Graph.n_edges g then None
  else rebuild_spec s ~keep ~edges

let spec_candidates (s : Wishbone.Spec.t) =
  let g = s.Wishbone.Spec.graph in
  let n = Graph.n_ops g in
  let removals =
    List.init n (fun v () -> remove_op s v)
  in
  let edge_removals =
    List.init (Graph.n_edges g) (fun e () -> remove_edge s e)
  in
  let zero_cpu =
    List.init n (fun v () ->
        if s.Wishbone.Spec.cpu.(v) <> 0. then begin
          let cpu = Array.copy s.Wishbone.Spec.cpu in
          cpu.(v) <- 0.;
          Some { s with Wishbone.Spec.cpu = cpu }
        end
        else None)
  in
  let zero_bw =
    List.init (Graph.n_edges g) (fun e () ->
        if s.Wishbone.Spec.bandwidth.(e) <> 0. then begin
          let bw = Array.copy s.Wishbone.Spec.bandwidth in
          bw.(e) <- 0.;
          Some { s with Wishbone.Spec.bandwidth = bw }
        end
        else None)
  in
  let relax =
    [
      (fun () ->
        let total = Array.fold_left ( +. ) 0. s.Wishbone.Spec.cpu in
        if s.Wishbone.Spec.cpu_budget < total then
          Some { s with Wishbone.Spec.cpu_budget = total +. 1. }
        else None);
      (fun () ->
        let total = Array.fold_left ( +. ) 0. s.Wishbone.Spec.bandwidth in
        if s.Wishbone.Spec.net_budget < total then
          Some { s with Wishbone.Spec.net_budget = total +. 1. }
        else None);
      (fun () ->
        if s.Wishbone.Spec.alpha <> 0. then
          Some { s with Wishbone.Spec.alpha = 0. }
        else None);
    ]
  in
  removals @ edge_removals @ zero_cpu @ zero_bw @ relax

let rec fixpoint candidates pred x =
  let next =
    List.find_map
      (fun f ->
        match f () with
        | Some x' when pred x' -> Some x'
        | _ -> None
        | exception _ -> None)
      (candidates x)
  in
  match next with None -> x | Some x' -> fixpoint candidates pred x'

let spec pred s = fixpoint spec_candidates pred s

(* ---- LP shrinking ---- *)

type lp_parts = {
  vars : Lp.Problem.var_info array;
  constrs : Lp.Problem.constr array;
  dir : Lp.Problem.direction;
  obj : (int * float) list;
}

let parts_of p =
  {
    vars = Lp.Problem.vars p;
    constrs = Lp.Problem.constrs p;
    dir = Lp.Problem.direction p;
    obj = Lp.Problem.objective p;
  }

let problem_of parts =
  let p = Lp.Problem.create () in
  Array.iter
    (fun (v : Lp.Problem.var_info) ->
      ignore
        (Lp.Problem.add_var ~name:v.vname ~lo:v.lo ~hi:v.hi
           ~integer:v.integer p))
    parts.vars;
  Array.iter
    (fun (c : Lp.Problem.constr) ->
      Lp.Problem.add_constr ~name:c.cname p c.terms c.sense c.rhs)
    parts.constrs;
  Lp.Problem.set_objective p parts.dir parts.obj;
  p

let drop_constr parts i =
  Some
    {
      parts with
      constrs =
        Array.of_list
          (List.filteri
             (fun j _ -> j <> i)
             (Array.to_list parts.constrs));
    }

let drop_var parts v =
  if Array.length parts.vars <= 1 then None
  else begin
    let remap u = if u < v then u else u - 1 in
    let strip terms =
      List.filter_map
        (fun (u, c) -> if u = v then None else Some (remap u, c))
        terms
    in
    Some
      {
        vars =
          Array.of_list
            (List.filteri (fun j _ -> j <> v) (Array.to_list parts.vars));
        constrs =
          Array.map
            (fun (c : Lp.Problem.constr) ->
              { c with Lp.Problem.terms = strip c.terms })
            parts.constrs;
        dir = parts.dir;
        obj = strip parts.obj;
      }
  end

let zero_term parts i j =
  let c = parts.constrs.(i) in
  if List.length c.Lp.Problem.terms <= j then None
  else begin
    let constrs = Array.copy parts.constrs in
    constrs.(i) <-
      { c with Lp.Problem.terms = List.filteri (fun k _ -> k <> j) c.terms };
    Some { parts with constrs }
  end

let zero_obj_term parts j =
  if List.length parts.obj <= j then None
  else Some { parts with obj = List.filteri (fun k _ -> k <> j) parts.obj }

let zero_rhs parts i =
  let c = parts.constrs.(i) in
  if c.Lp.Problem.rhs = 0. then None
  else begin
    let constrs = Array.copy parts.constrs in
    constrs.(i) <- { c with Lp.Problem.rhs = 0. };
    Some { parts with constrs }
  end

let problem_candidates p =
  let parts = parts_of p in
  let m = Array.length parts.constrs in
  let n = Array.length parts.vars in
  let lift f () = Option.map problem_of (f ()) in
  List.concat
    [
      List.init m (fun i -> lift (fun () -> drop_constr parts i));
      List.init n (fun v -> lift (fun () -> drop_var parts v));
      List.concat
        (List.init m (fun i ->
             List.init
               (List.length parts.constrs.(i).Lp.Problem.terms)
               (fun j -> lift (fun () -> zero_term parts i j))));
      List.init (List.length parts.obj) (fun j ->
          lift (fun () -> zero_obj_term parts j));
      List.init m (fun i -> lift (fun () -> zero_rhs parts i));
    ]

let problem pred p = fixpoint problem_candidates pred p
