(** Deterministic splittable pseudo-random numbers (SplitMix64).

    All stochastic parts of the reproduction (synthetic signals, radio
    loss, CSMA backoff) draw from explicitly seeded generators so that
    every experiment is bit-reproducible. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> float -> float -> float
(** Uniform in [lo, hi). *)

val int : t -> int -> int
(** Uniform in [0, bound); [bound] must be positive. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val exponential : t -> float -> float
(** [exponential t rate] with mean [1/rate]. *)
