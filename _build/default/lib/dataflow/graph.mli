(** The operator DAG.

    Vertices are {!Op.t} values indexed by their [id]; edges are
    streams.  An edge carries the destination input port so that
    multi-input operators (e.g. [zipN], [AddOddAndEven]) know which
    upstream fired.  Every operator has at most one logical output
    stream; fan-out is expressed as multiple out-edges carrying the
    same elements (WaveScript semantics). *)

type edge = { eid : int; src : int; dst : int; dst_port : int }
(** [eid] is the dense edge index assigned by {!make}, usable to key
    per-edge statistics arrays. *)

type t

val make : Op.t array -> (int * int * int) list -> t
(** [make ops edges] with edges given as [(src, dst, dst_port)]
    triples; edge ids are assigned in list order.
    @raise Invalid_argument when ids are not dense [0..n-1], an edge
    endpoint is out of range, input ports of some vertex are not dense
    [0..k-1], or the graph has a cycle. *)

val n_ops : t -> int
val op : t -> int -> Op.t
val ops : t -> Op.t array
val edges : t -> edge array
val n_edges : t -> int

val succs : t -> int -> edge list
(** Out-edges of a vertex, in insertion order. *)

val preds : t -> int -> edge list
(** In-edges of a vertex, ordered by destination port. *)

val in_degree : t -> int -> int
val out_degree : t -> int -> int

val sources : t -> int list
(** Vertices with no in-edges, ascending. *)

val sinks : t -> int list
(** Vertices with no out-edges, ascending. *)

val topo_order : t -> int array
(** A topological order of all vertices. *)

val descendants : t -> int list -> bool array
(** [descendants g seeds] marks every vertex reachable from [seeds]
    (seeds included). *)

val ancestors : t -> int list -> bool array
(** Reverse reachability (seeds included). *)

val is_linear_pipeline : t -> bool
(** True when every vertex has in- and out-degree at most one and the
    graph is connected — the shape of the speech-detection app. *)

val map_ops : (Op.t -> Op.t) -> t -> t
(** Rebuild the graph with transformed operators (ids must be kept). *)
