type namespace = Node | Server

type side_effect = Pure | Sensor_input | Actuator | Display_output

type instance = {
  work : port:int -> Value.t -> Value.t list * Workload.t;
  reset : unit -> unit;
}

type t = {
  id : int;
  name : string;
  kind : string;
  namespace : namespace;
  stateful : bool;
  side_effect : side_effect;
  fresh : unit -> instance;
}

let is_pinned op =
  match op.side_effect with
  | Sensor_input | Actuator | Display_output -> true
  | Pure -> false

let stateless_instance f =
  { work = (fun ~port:_ v -> f v); reset = (fun () -> ()) }

let pp ppf op =
  let ns = match op.namespace with Node -> "node" | Server -> "server" in
  Format.fprintf ppf "#%d %s (%s, %s%s%s)" op.id op.name op.kind ns
    (if op.stateful then ", stateful" else "")
    (if is_pinned op then ", pinned" else "")
