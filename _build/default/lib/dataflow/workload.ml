type t = {
  int_ops : float;
  float_ops : float;
  trans_ops : float;
  mem_ops : float;
  branch_ops : float;
  call_ops : float;
}

let zero =
  {
    int_ops = 0.;
    float_ops = 0.;
    trans_ops = 0.;
    mem_ops = 0.;
    branch_ops = 0.;
    call_ops = 0.;
  }

let add a b =
  {
    int_ops = a.int_ops +. b.int_ops;
    float_ops = a.float_ops +. b.float_ops;
    trans_ops = a.trans_ops +. b.trans_ops;
    mem_ops = a.mem_ops +. b.mem_ops;
    branch_ops = a.branch_ops +. b.branch_ops;
    call_ops = a.call_ops +. b.call_ops;
  }

let scale k a =
  {
    int_ops = k *. a.int_ops;
    float_ops = k *. a.float_ops;
    trans_ops = k *. a.trans_ops;
    mem_ops = k *. a.mem_ops;
    branch_ops = k *. a.branch_ops;
    call_ops = k *. a.call_ops;
  }

let total a =
  a.int_ops +. a.float_ops +. a.trans_ops +. a.mem_ops +. a.branch_ops
  +. a.call_ops

let make ?(int_ops = 0.) ?(float_ops = 0.) ?(trans_ops = 0.) ?(mem_ops = 0.)
    ?(branch_ops = 0.) ?(call_ops = 0.) () =
  { int_ops; float_ops; trans_ops; mem_ops; branch_ops; call_ops }

let loop ~iters ~body =
  let n = Float.of_int iters in
  add (scale n body) { zero with branch_ops = n }

let pp ppf w =
  Format.fprintf ppf
    "{int=%.0f float=%.0f trans=%.0f mem=%.0f branch=%.0f call=%.0f}"
    w.int_ops w.float_ops w.trans_ops w.mem_ops w.branch_ops w.call_ops
