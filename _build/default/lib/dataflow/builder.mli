(** WaveScript-style graph construction.

    Programs manipulate streams as values and wire together operator
    graphs (cf. Figure 1 of the paper).  [iterate] creates an operator
    from a work function and returns its output stream; placing
    construction inside {!in_node} puts operators in the [Node{}]
    namespace, replicated once per embedded node (§2.1). *)

type t
type stream

val create : unit -> t

val in_node : t -> (unit -> 'a) -> 'a
(** [in_node b f] evaluates [f ()] with the current namespace set to
    [Node]; nests arbitrarily (the innermost wins). *)

val iterate :
  t ->
  name:string ->
  ?kind:string ->
  ?stateful:bool ->
  ?side_effect:Op.side_effect ->
  fresh:(unit -> Op.instance) ->
  stream list ->
  stream
(** General operator constructor: inputs are connected to ports
    [0..k-1] in list order. *)

val source : t -> name:string -> ?kind:string -> unit -> stream
(** A sensor source: pinned to the node ([Sensor_input]), passes
    injected samples downstream unchanged. *)

val sink : t -> name:string -> stream -> unit
(** A server output sink ([Display_output]); elements delivered here
    count as application output. *)

val map :
  t ->
  name:string ->
  ?kind:string ->
  (Value.t -> Value.t * Workload.t) ->
  stream ->
  stream
(** Stateless one-in one-out operator. *)

val map_multi :
  t ->
  name:string ->
  ?kind:string ->
  (Value.t -> Value.t list * Workload.t) ->
  stream ->
  stream
(** Stateless operator that may emit zero or more elements per input
    (filters, decimators, framers). *)

val stateful :
  t ->
  name:string ->
  ?kind:string ->
  init:(unit -> port:int -> Value.t -> Value.t list * Workload.t) ->
  stream list ->
  stream
(** Stateful operator; [init] allocates fresh private state captured
    by the returned work closure.  Reset re-runs [init]. *)

val op_id : stream -> int
(** The graph vertex the stream is produced by. *)

val build : t -> Graph.t
(** Finalize.  The builder must not be reused afterwards.
    @raise Invalid_argument on an ill-formed graph. *)
