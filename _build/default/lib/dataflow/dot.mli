(** GraphViz rendering of operator graphs.

    Wishbone generates a visualization after profiling and
    partitioning: colorization encodes profiling heat (cool to hot)
    and vertex shape encodes the node/server assignment (§3).  The
    attribute callbacks let the caller inject that information. *)

val render :
  ?graph_name:string ->
  ?vertex_attrs:(int -> (string * string) list) ->
  ?edge_attrs:(Graph.edge -> (string * string) list) ->
  Graph.t ->
  string
(** Returns the [.dot] source text. *)

val heat_color : float -> string
(** [heat_color f] maps [0. .. 1.] to a cool-to-hot HSV color string
    suitable for a GraphViz [fillcolor]. *)

val write_file : string -> string -> unit
(** [write_file path dot_text] *)
