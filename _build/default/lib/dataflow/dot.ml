let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_to_string attrs =
  match attrs with
  | [] -> ""
  | _ ->
      let body =
        String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) attrs)
      in
      Printf.sprintf " [%s]" body

let heat_color f =
  let f = Float.max 0. (Float.min 1. f) in
  (* hue 0.66 (blue, cool) down to 0.0 (red, hot) *)
  Printf.sprintf "%.3f 0.8 0.95" (0.66 *. (1. -. f))

let render ?(graph_name = "wishbone") ?(vertex_attrs = fun _ -> [])
    ?(edge_attrs = fun _ -> []) g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" graph_name);
  Buffer.add_string buf "  rankdir=TB;\n  node [style=filled];\n";
  Array.iter
    (fun (op : Op.t) ->
      let base = [ ("label", Printf.sprintf "%s\\n#%d" op.name op.id) ] in
      Buffer.add_string buf
        (Printf.sprintf "  n%d%s;\n" op.id
           (attrs_to_string (base @ vertex_attrs op.id))))
    (Graph.ops g);
  Array.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d%s;\n" e.src e.dst
           (attrs_to_string (edge_attrs e))))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)
