type stream = int

type t = {
  mutable ops_rev : Op.t list;
  mutable n : int;
  mutable edges_rev : (int * int * int) list;  (* src, dst, dst_port *)
  mutable namespace : Op.namespace;
  mutable built : bool;
}

let create () =
  { ops_rev = []; n = 0; edges_rev = []; namespace = Op.Server; built = false }

let in_node b f =
  let saved = b.namespace in
  b.namespace <- Op.Node;
  Fun.protect ~finally:(fun () -> b.namespace <- saved) f

let check_alive b = if b.built then invalid_arg "Builder: already built"

let iterate b ~name ?(kind = "iterate") ?(stateful = false)
    ?(side_effect = Op.Pure) ~fresh inputs =
  check_alive b;
  let id = b.n in
  List.iter
    (fun s ->
      if s < 0 || s >= id then invalid_arg "Builder.iterate: unknown stream")
    inputs;
  let op =
    {
      Op.id;
      name;
      kind;
      namespace = b.namespace;
      stateful;
      side_effect;
      fresh;
    }
  in
  b.ops_rev <- op :: b.ops_rev;
  b.n <- id + 1;
  List.iteri
    (fun port src -> b.edges_rev <- (src, id, port) :: b.edges_rev)
    inputs;
  id

let passthrough_instance () =
  Op.stateless_instance (fun v ->
      ([ v ], Workload.make ~call_ops:1. ~mem_ops:1. ()))

let source b ~name ?(kind = "source") () =
  iterate b ~name ~kind ~side_effect:Op.Sensor_input
    ~fresh:passthrough_instance []

let sink b ~name s =
  let fresh () =
    Op.stateless_instance (fun _ -> ([], Workload.make ~call_ops:1. ()))
  in
  ignore (iterate b ~name ~kind:"sink" ~side_effect:Op.Display_output ~fresh [ s ])

let map b ~name ?(kind = "map") f s =
  let fresh () =
    Op.stateless_instance (fun v ->
        let v', w = f v in
        ([ v' ], w))
  in
  iterate b ~name ~kind ~fresh [ s ]

let map_multi b ~name ?(kind = "map") f s =
  let fresh () = Op.stateless_instance f in
  iterate b ~name ~kind ~fresh [ s ]

let stateful b ~name ?(kind = "stateful") ~init inputs =
  let fresh () =
    let work = ref (init ()) in
    {
      Op.work = (fun ~port v -> !work ~port v);
      reset = (fun () -> work := init ());
    }
  in
  iterate b ~name ~kind ~stateful:true ~fresh inputs

let op_id s = s

let build b =
  check_alive b;
  b.built <- true;
  Graph.make (Array.of_list (List.rev b.ops_rev)) (List.rev b.edges_rev)
