type edge = { eid : int; src : int; dst : int; dst_port : int }

type t = {
  ops : Op.t array;
  edges : edge array;
  succs : edge list array;  (* insertion order *)
  preds : edge list array;  (* ordered by dst_port *)
  topo : int array;
}

let compute_topo n succs =
  let indeg = Array.make n 0 in
  Array.iter (List.iter (fun e -> indeg.(e.dst) <- indeg.(e.dst) + 1)) succs;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!k) <- v;
    incr k;
    List.iter
      (fun e ->
        indeg.(e.dst) <- indeg.(e.dst) - 1;
        if indeg.(e.dst) = 0 then Queue.add e.dst queue)
      succs.(v)
  done;
  if !k <> n then invalid_arg "Graph.make: graph has a cycle";
  order

let make ops edge_list =
  let n = Array.length ops in
  Array.iteri
    (fun i (op : Op.t) ->
      if op.id <> i then
        invalid_arg
          (Printf.sprintf "Graph.make: operator at index %d has id %d" i op.id))
    ops;
  let edges =
    Array.of_list
      (List.mapi (fun eid (src, dst, dst_port) -> { eid; src; dst; dst_port }) edge_list)
  in
  Array.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg "Graph.make: edge endpoint out of range";
      if e.dst_port < 0 then invalid_arg "Graph.make: negative port")
    edges;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iter
    (fun e ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  for v = 0 to n - 1 do
    succs.(v) <- List.rev succs.(v);
    preds.(v) <-
      List.sort (fun a b -> compare a.dst_port b.dst_port) preds.(v);
    (* input ports must be dense 0..k-1 *)
    List.iteri
      (fun i e ->
        if e.dst_port <> i then
          invalid_arg
            (Printf.sprintf "Graph.make: vertex %d input ports not dense" v))
      preds.(v)
  done;
  let topo = compute_topo n succs in
  { ops; edges; succs; preds; topo }

let n_ops g = Array.length g.ops

let op g i =
  if i < 0 || i >= n_ops g then invalid_arg "Graph.op: index out of range";
  g.ops.(i)

let ops g = g.ops
let edges g = g.edges
let n_edges g = Array.length g.edges
let succs g v = g.succs.(v)
let preds g v = g.preds.(v)
let in_degree g v = List.length g.preds.(v)
let out_degree g v = List.length g.succs.(v)

let filter_vertices g p =
  let acc = ref [] in
  for v = n_ops g - 1 downto 0 do
    if p v then acc := v :: !acc
  done;
  !acc

let sources g = filter_vertices g (fun v -> g.preds.(v) = [])
let sinks g = filter_vertices g (fun v -> g.succs.(v) = [])
let topo_order g = Array.copy g.topo

let reach n adjacency seeds =
  let seen = Array.make n false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit (adjacency v)
    end
  in
  List.iter visit seeds;
  seen

let descendants g seeds =
  reach (n_ops g) (fun v -> List.map (fun e -> e.dst) g.succs.(v)) seeds

let ancestors g seeds =
  reach (n_ops g) (fun v -> List.map (fun e -> e.src) g.preds.(v)) seeds

let is_linear_pipeline g =
  let n = n_ops g in
  n > 0
  && Array.length g.edges = n - 1
  && Array.for_all
       (fun (op : Op.t) ->
         in_degree g op.id <= 1 && out_degree g op.id <= 1)
       g.ops

let map_ops f g =
  let ops = Array.map f g.ops in
  Array.iteri
    (fun i (op : Op.t) ->
      if op.id <> i then invalid_arg "Graph.map_ops: id changed")
    ops;
  { g with ops }
