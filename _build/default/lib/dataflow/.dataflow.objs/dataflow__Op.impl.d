lib/dataflow/op.ml: Format Value Workload
