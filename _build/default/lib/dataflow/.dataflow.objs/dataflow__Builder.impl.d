lib/dataflow/builder.ml: Array Fun Graph List Op Workload
