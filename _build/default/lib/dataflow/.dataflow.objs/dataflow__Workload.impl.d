lib/dataflow/workload.ml: Float Format
