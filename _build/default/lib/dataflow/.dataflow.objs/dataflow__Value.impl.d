lib/dataflow/value.ml: Array Float Format List String
