lib/dataflow/op.mli: Format Value Workload
