lib/dataflow/graph.mli: Op
