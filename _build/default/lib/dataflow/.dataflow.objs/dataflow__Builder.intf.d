lib/dataflow/builder.mli: Graph Op Value Workload
