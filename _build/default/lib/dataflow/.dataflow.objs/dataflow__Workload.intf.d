lib/dataflow/workload.mli: Format
