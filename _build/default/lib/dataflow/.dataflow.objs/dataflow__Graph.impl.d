lib/dataflow/graph.ml: Array List Op Printf Queue
