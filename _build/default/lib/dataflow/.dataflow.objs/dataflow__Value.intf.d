lib/dataflow/value.mli: Format
