lib/dataflow/dot.ml: Array Buffer Float Fun Graph List Op Printf String
