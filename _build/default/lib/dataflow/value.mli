(** Runtime values flowing along dataflow edges.

    Wishbone measures edge bandwidth as the number of bytes a value
    occupies in the radio message format, so every value has a
    deterministic wire size ({!size_bytes}).  The wire format mirrors
    the WaveScript marshaller used on motes: 16-bit integers for raw
    ADC samples, 32-bit floats for processed signals. *)

type t =
  | Unit
  | Bool of bool
  | Int of int  (** 32-bit on the wire *)
  | Float of float  (** 32-bit float on the wire *)
  | String of string
  | Int16_arr of int array  (** raw samples; 2 bytes per element *)
  | Float_arr of float array  (** 4 bytes per element *)
  | Tuple of t list

val size_bytes : t -> int
(** Serialized size, including a small length header for variable-size
    payloads. *)

val equal : t -> t -> bool
(** Structural equality with exact float comparison. *)

val close : ?tol:float -> t -> t -> bool
(** Structural equality with float tolerance (default [1e-9]),
    used by the partition-invariance tests. *)

val float_arr : t -> float array
(** Coerce to a float array, converting an [Int16_arr] elementwise.
    @raise Invalid_argument on other shapes. *)

val int16_arr : t -> int array
(** @raise Invalid_argument unless the value is an [Int16_arr]. *)

val pp : Format.formatter -> t -> unit
(** Summary rendering; long arrays are abbreviated. *)
