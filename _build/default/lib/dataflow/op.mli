(** Stream operators: the vertices of the dataflow graph.

    An operator is a work function plus optional private state
    (§2 of the paper).  Statefulness and side effects drive the
    relocation constraints of §2.1.1:
    - side-effecting operators are pinned to their logical partition;
    - stateless pure operators are always movable;
    - stateful [Node]-namespace operators are movable onto the server
      only in permissive mode (their state is then replicated per
      node), and stateful [Server] operators can never move into the
      network. *)

type namespace = Node | Server

type side_effect =
  | Pure  (** no externally visible effect *)
  | Sensor_input  (** samples node hardware; pinned to the node *)
  | Actuator  (** drives node hardware (LED, speaker); pinned to node *)
  | Display_output  (** prints/stores results; pinned to the server *)

(** A live instance of an operator.  [work ~port v] processes one
    element arriving on input [port] and returns the elements emitted
    on the output stream together with the instruction mix the firing
    performed.  [reset] returns private state to its initial value. *)
type instance = {
  work : port:int -> Value.t -> Value.t list * Workload.t;
  reset : unit -> unit;
}

type t = {
  id : int;
  name : string;
  kind : string;  (** operator class, e.g. ["fir"], ["fft"]; cosmetic *)
  namespace : namespace;
  stateful : bool;
  side_effect : side_effect;
  fresh : unit -> instance;
      (** creates an instance with private state at its initial value;
          called once per physical node for replicated operators *)
}

val is_pinned : t -> bool
(** True when the §2.1.1 rules forbid moving this operator out of its
    logical partition regardless of mode. *)

val stateless_instance : (Value.t -> Value.t list * Workload.t) -> instance
(** Wrap a pure single-input work function (ignores [port]). *)

val pp : Format.formatter -> t -> unit
