(** Abstract instruction-mix accounting.

    Work functions report how much work one firing performed, broken
    down by instruction class.  The profiler turns a mix into cycles
    on a concrete platform by taking the dot product with that
    platform's per-class cycle costs — this is the "cycle-accurate
    simulation" substitute for running on real hardware or MSPsim
    (see DESIGN.md).  Keeping classes separate is what lets the model
    reproduce the paper's Figure 8: on a TMote every float op is
    software-emulated and dominates, while on a PC floats are cheap. *)

type t = {
  int_ops : float;  (** integer ALU operations *)
  float_ops : float;  (** float add/sub/mul/div *)
  trans_ops : float;  (** transcendental calls: log, cos, sqrt, exp *)
  mem_ops : float;  (** loads/stores beyond register traffic *)
  branch_ops : float;  (** loop iterations and conditionals *)
  call_ops : float;  (** function-call / emit / task overhead *)
}

val zero : t
val add : t -> t -> t
val scale : float -> t -> t
val total : t -> float
(** Unweighted total operation count (platform-independent). *)

val make :
  ?int_ops:float ->
  ?float_ops:float ->
  ?trans_ops:float ->
  ?mem_ops:float ->
  ?branch_ops:float ->
  ?call_ops:float ->
  unit ->
  t

val loop : iters:int -> body:t -> t
(** Workload of a counted loop: [iters] executions of [body] plus one
    branch per iteration — the shape Wishbone's TinyOS profiler
    recovers by timestamping loop heads (§3). *)

val pp : Format.formatter -> t -> unit
