type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Int16_arr of int array
  | Float_arr of float array
  | Tuple of t list

let rec size_bytes = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 4
  | Float _ -> 4
  | String s -> 2 + String.length s
  | Int16_arr a -> 2 + (2 * Array.length a)
  | Float_arr a -> 2 + (4 * Array.length a)
  | Tuple vs -> List.fold_left (fun acc v -> acc + size_bytes v) 1 vs

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Int16_arr x, Int16_arr y -> x = y
  | Float_arr x, Float_arr y ->
      Array.length x = Array.length y
      && (let ok = ref true in
          Array.iteri (fun i v -> if not (Float.equal v y.(i)) then ok := false) x;
          !ok)
  | Tuple x, Tuple y -> List.length x = List.length y && List.for_all2 equal x y
  | ( (Unit | Bool _ | Int _ | Float _ | String _ | Int16_arr _ | Float_arr _
      | Tuple _),
      _ ) ->
      false

let rec close ?(tol = 1e-9) a b =
  match (a, b) with
  | Float x, Float y -> Float.abs (x -. y) <= tol
  | Float_arr x, Float_arr y ->
      Array.length x = Array.length y
      && (let ok = ref true in
          Array.iteri
            (fun i v -> if Float.abs (v -. y.(i)) > tol then ok := false)
            x;
          !ok)
  | Tuple x, Tuple y ->
      List.length x = List.length y && List.for_all2 (close ~tol) x y
  | _ -> equal a b

let float_arr = function
  | Float_arr a -> a
  | Int16_arr a -> Array.map Float.of_int a
  | _ -> invalid_arg "Value.float_arr: not an array value"

let int16_arr = function
  | Int16_arr a -> a
  | _ -> invalid_arg "Value.int16_arr: not an int16 array"

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Int16_arr a -> Format.fprintf ppf "int16[%d]" (Array.length a)
  | Float_arr a -> Format.fprintf ppf "float[%d]" (Array.length a)
  | Tuple vs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp)
        vs
