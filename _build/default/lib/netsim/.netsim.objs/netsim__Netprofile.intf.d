lib/netsim/netprofile.mli: Link
