lib/netsim/netprofile.ml: Array Builder Dataflow Float Int List Option Profiler Testbed Value
