lib/netsim/link.mli:
