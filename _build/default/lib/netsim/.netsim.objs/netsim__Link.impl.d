lib/netsim/link.ml: Float
