lib/netsim/testbed.mli: Dataflow Link Profiler
