lib/netsim/testbed.ml: Array Dataflow Float Graph Hashtbl Heap Int Link List Op Prng Profiler Queue Runtime Value
