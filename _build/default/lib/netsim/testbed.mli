(** Discrete-event simulation of a deployed, partitioned program on a
    single-hop wireless testbed (the reproduction of §7.3's 20-TMote
    deployment).

    Per node: sensor windows arrive periodically; if the CPU is still
    busy with an earlier traversal (beyond one buffered window) the
    input is {e missed}.  Completing a traversal turns every value
    crossing the node→server cut into a fragmented radio message.
    Nodes contend for one shared channel with CSMA + random backoff;
    two transmissions starting within the carrier-sense turnaround
    window collide.  A message is delivered only when all of its
    fragments arrive; delivered messages drive the server half of the
    graph, whose sink outputs are the application's goodput.

    The three measured quantities of Figure 9 map to
    {!result.input_fraction}, {!result.msg_fraction}, and their
    product {!result.goodput_fraction}. *)

type source_spec = {
  source : int;  (** source operator id *)
  rate : float;  (** windows per second *)
  gen : node:int -> seq:int -> Dataflow.Value.t;
}

type config = {
  n_nodes : int;
  platform : Profiler.Platform.t;
  link : Link.t;
  duration : float;  (** simulated seconds *)
  seed : int;
  tx_queue_packets : int;  (** per-node radio queue capacity *)
  per_packet_cpu_s : float;
      (** node CPU consumed per transmitted packet (the "processor
          involvement in communication" the paper's additive model
          omits, §7.3.1) *)
  os_overhead : float;
      (** multiplier on traversal compute time for OS/task overheads *)
}

val default_config :
  ?n_nodes:int -> ?duration:float -> ?seed:int ->
  platform:Profiler.Platform.t -> link:Link.t -> unit -> config

type result = {
  inputs_offered : int;
  inputs_processed : int;
  msgs_sent : int;  (** whole values crossing the cut *)
  msgs_received : int;  (** fully reassembled at the basestation *)
  packets_sent : int;
  packets_lost_collision : int;
  packets_lost_channel : int;
  packets_lost_queue : int;
  sink_outputs : int;
  input_fraction : float;
  msg_fraction : float;
  goodput_fraction : float;  (** input_fraction *. msg_fraction *)
  node_busy_fraction : float;  (** mean CPU utilisation across nodes *)
  offered_bytes_per_sec : float;
}

val run :
  config -> graph:Dataflow.Graph.t -> node_of:(int -> bool) ->
  sources:source_spec list -> result
(** Simulate the given partition.  [node_of] must place every source
    operator on the node. *)
