open Dataflow

type source_spec = {
  source : int;
  rate : float;
  gen : node:int -> seq:int -> Value.t;
}

type config = {
  n_nodes : int;
  platform : Profiler.Platform.t;
  link : Link.t;
  duration : float;
  seed : int;
  tx_queue_packets : int;
  per_packet_cpu_s : float;
  os_overhead : float;
}

let default_config ?(n_nodes = 1) ?(duration = 60.) ?(seed = 1) ~platform ~link
    () =
  {
    n_nodes;
    platform;
    link;
    duration;
    seed;
    tx_queue_packets = 24;
    (* copying and driving the radio costs a few thousand cycles per
       packet regardless of platform: ~0.75 ms on an 8 MHz mote, ~15 us
       on a 400 MHz Gumstix *)
    per_packet_cpu_s = 6000. /. platform.Profiler.Platform.clock_hz;
    os_overhead = 1.15;
  }

type result = {
  inputs_offered : int;
  inputs_processed : int;
  msgs_sent : int;
  msgs_received : int;
  packets_sent : int;
  packets_lost_collision : int;
  packets_lost_channel : int;
  packets_lost_queue : int;
  sink_outputs : int;
  input_fraction : float;
  msg_fraction : float;
  goodput_fraction : float;
  node_busy_fraction : float;
  offered_bytes_per_sec : float;
}

(* ---- internal simulation structures ---- *)

type message = {
  mid : int;
  from_node : int;
  edge : Graph.edge;
  value : Value.t;
  total_frags : int;
}

type packet = { msg : message; mutable attempts : int }

type tx = { sender : int; pkt : packet; start : float; mutable corrupted : bool }

type event =
  | Sample of int * int * int  (* node, source index, seq *)
  | Cpu_done of int
  | Attempt of int
  | Tx_end

type node_state = {
  exec : Runtime.Exec.t;
  queue : packet Queue.t;  (* radio send queue *)
  mutable cpu_busy : bool;
  mutable buffered : (int * Value.t) option;  (* source op, value *)
  mutable waiting : bool;  (* an Attempt event is outstanding *)
  mutable cw : int;  (* congestion-backoff exponent, grows on busy/collision *)
  mutable busy_time : float;
  mutable next_mid : int;
}

let run config ~graph ~node_of ~sources =
  if config.n_nodes <= 0 then invalid_arg "Testbed.run: need at least one node";
  List.iter
    (fun s ->
      if not (node_of s.source) then
        invalid_arg "Testbed.run: source operator not placed on the node")
    sources;
  let link = config.link in
  let rng = Prng.create config.seed in
  let node_mask = Array.init (Graph.n_ops graph) node_of in
  let replicated i =
    (Graph.op graph i).Op.namespace = Op.Node && not node_mask.(i)
  in
  let server =
    Runtime.Exec.create ~replicated ~member:(fun i -> not node_mask.(i)) graph
  in
  let nodes =
    Array.init config.n_nodes (fun _ ->
        {
          exec = Runtime.Exec.create ~member:(fun i -> node_mask.(i)) graph;
          queue = Queue.create ();
          cpu_busy = false;
          buffered = None;
          waiting = false;
          cw = 0;
          busy_time = 0.;
          next_mid = 0;
        })
  in
  let events : event Heap.Pqueue.t = Heap.Pqueue.create () in
  let channel_busy_until = ref 0. in
  let current_tx : tx option ref = ref None in
  (* reassembly: (node, mid) -> fragments still missing *)
  let missing : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  (* counters *)
  let inputs_offered = ref 0 in
  let inputs_processed = ref 0 in
  let msgs_sent = ref 0 in
  let msgs_received = ref 0 in
  let packets_sent = ref 0 in
  let lost_collision = ref 0 in
  let lost_channel = ref 0 in
  let lost_queue = ref 0 in
  let sink_outputs = ref 0 in
  let offered_bytes = ref 0 in
  let sources_arr = Array.of_list sources in
  (* schedule the first window of every (node, source) pair with a
     small per-node phase offset so nodes do not fire in lockstep *)
  Array.iteri
    (fun si spec ->
      if spec.rate > 0. then
        for node = 0 to config.n_nodes - 1 do
          let phase = Prng.uniform rng 0. (1. /. spec.rate) in
          Heap.Pqueue.push events phase (Sample (node, si, 0))
        done)
    sources_arr;
  let schedule t ev = Heap.Pqueue.push events t ev in
  (* congestion backoff: the contention window doubles each time a node
     finds the channel busy or collides, like the TinyOS CSMA layer *)
  let backoff st =
    let window = link.backoff_s *. Float.of_int (1 lsl Int.min st.cw 6) in
    Prng.uniform rng 0. window
  in
  let ensure_attempt now node_id =
    let st = nodes.(node_id) in
    if (not st.waiting) && not (Queue.is_empty st.queue) then begin
      st.waiting <- true;
      schedule (now +. backoff st) (Attempt node_id)
    end
  in
  let start_processing now node_id source_op value =
    let st = nodes.(node_id) in
    st.cpu_busy <- true;
    let fired =
      Runtime.Exec.fire ~node:node_id st.exec ~op:source_op ~port:0 value
    in
    sink_outputs := !sink_outputs + List.length fired.sink_values;
    let crossings = fired.crossings in
    let n_packets =
      List.fold_left
        (fun acc (c : Runtime.Exec.crossing) ->
          acc + Link.packets_of_bytes link (Value.size_bytes c.value))
        0 crossings
    in
    let compute_s =
      (Profiler.Platform.seconds config.platform fired.workload
       *. config.os_overhead)
      +. (Float.of_int n_packets *. config.per_packet_cpu_s)
    in
    st.busy_time <- st.busy_time +. compute_s;
    schedule (now +. compute_s) (Cpu_done node_id);
    (* queue the messages now; they go on air as the channel allows *)
    List.iter
      (fun (c : Runtime.Exec.crossing) ->
        let bytes = Value.size_bytes c.value in
        offered_bytes := !offered_bytes + bytes;
        let total_frags = Link.packets_of_bytes link bytes in
        let msg =
          {
            mid = st.next_mid;
            from_node = node_id;
            edge = c.edge;
            value = c.value;
            total_frags;
          }
        in
        st.next_mid <- st.next_mid + 1;
        incr msgs_sent;
        (* fragments are admitted individually, like a per-packet send
           queue: losing any fragment makes the message undeliverable,
           but admitted siblings still burn airtime -- the §4.3
           overload effect where offering more data delivers less *)
        Hashtbl.replace missing (node_id, msg.mid) total_frags;
        let dropped = ref false in
        for _ = 1 to total_frags do
          if Queue.length st.queue < config.tx_queue_packets then
            Queue.add { msg; attempts = 0 } st.queue
          else begin
            incr lost_queue;
            dropped := true
          end
        done;
        if !dropped then Hashtbl.remove missing (node_id, msg.mid))
      crossings;
    ensure_attempt now node_id
  in
  let deliver_fragment (pkt : packet) =
    let key = (pkt.msg.from_node, pkt.msg.mid) in
    match Hashtbl.find_opt missing key with
    | None -> ()
    | Some left when left <= 1 ->
        Hashtbl.remove missing key;
        incr msgs_received;
        let fired =
          Runtime.Exec.fire ~node:pkt.msg.from_node server ~op:pkt.msg.edge.dst
            ~port:pkt.msg.edge.dst_port pkt.msg.value
        in
        sink_outputs := !sink_outputs + List.length fired.sink_values
    | Some left -> Hashtbl.replace missing key (left - 1)
  in
  let kill_message (pkt : packet) =
    (* one lost fragment dooms the message; siblings already queued
       keep transmitting (a NACK-free stack cannot know) *)
    Hashtbl.remove missing (pkt.msg.from_node, pkt.msg.mid)
  in
  let handle now = function
    | Sample (node_id, si, seq) ->
        let spec = sources_arr.(si) in
        (* next arrival *)
        let next = now +. (1. /. spec.rate) in
        if next < config.duration then
          schedule next (Sample (node_id, si, seq + 1));
        incr inputs_offered;
        let st = nodes.(node_id) in
        let value = spec.gen ~node:node_id ~seq in
        if not st.cpu_busy then begin
          incr inputs_processed;
          start_processing now node_id spec.source value
        end
        else if st.buffered = None then begin
          (* double-buffered ADC: hold exactly one pending window *)
          incr inputs_processed;
          st.buffered <- Some (spec.source, value)
        end
        (* else: missed input event *)
    | Cpu_done node_id -> (
        let st = nodes.(node_id) in
        st.cpu_busy <- false;
        match st.buffered with
        | Some (src, v) ->
            st.buffered <- None;
            start_processing now node_id src v
        | None -> ())
    | Attempt node_id ->
        let st = nodes.(node_id) in
        st.waiting <- false;
        if not (Queue.is_empty st.queue) then begin
          if now +. 1e-12 >= !channel_busy_until then begin
            (* channel idle: transmit the head-of-line packet *)
            let pkt = Queue.pop st.queue in
            pkt.attempts <- pkt.attempts + 1;
            incr packets_sent;
            let dur = Link.packet_airtime link in
            let tx = { sender = node_id; pkt; start = now; corrupted = false } in
            current_tx := Some tx;
            channel_busy_until := now +. dur;
            schedule (now +. dur) Tx_end
          end
          else begin
            (match !current_tx with
            | Some tx when now -. tx.start < link.turnaround_s ->
                (* carrier not yet detectable: we transmit blindly and
                   collide with the ongoing packet *)
                tx.corrupted <- true;
                st.cw <- st.cw + 1;
                let pkt = Queue.pop st.queue in
                pkt.attempts <- pkt.attempts + 1;
                incr packets_sent;
                incr lost_collision;
                let dur = Link.packet_airtime link in
                channel_busy_until :=
                  Float.max !channel_busy_until (now +. dur);
                if pkt.attempts <= link.retries then begin
                  (* retry later, head of line *)
                  let q = Queue.create () in
                  Queue.add pkt q;
                  Queue.transfer st.queue q;
                  Queue.transfer q st.queue
                end
                else kill_message pkt
            | _ -> st.cw <- st.cw + 1);
            ensure_attempt (Float.max now !channel_busy_until) node_id
          end
        end
    | Tx_end -> (
        match !current_tx with
        | None -> ()
        | Some tx ->
            current_tx := None;
            let st = nodes.(tx.sender) in
            (if tx.corrupted then begin
               incr lost_collision;
               st.cw <- st.cw + 1;
               if tx.pkt.attempts <= link.retries then begin
                 let q = Queue.create () in
                 Queue.add tx.pkt q;
                 Queue.transfer st.queue q;
                 Queue.transfer q st.queue
               end
               else kill_message tx.pkt
             end
             else begin
               st.cw <- 0;
               if Prng.bool rng link.base_loss then begin
                 (* clean-channel loss: no link-layer ack, no retry *)
                 incr lost_channel;
                 kill_message tx.pkt
               end
               else deliver_fragment tx.pkt
             end);
            ensure_attempt now tx.sender)
  in
  let rec loop () =
    match Heap.Pqueue.pop events with
    | None -> ()
    | Some (t, _) when t > config.duration -> ()
    | Some (t, ev) ->
        handle t ev;
        loop ()
  in
  loop ();
  let busy_total = Array.fold_left (fun acc st -> acc +. st.busy_time) 0. nodes in
  let fdiv a b = if b = 0 then 0. else Float.of_int a /. Float.of_int b in
  let input_fraction = fdiv !inputs_processed !inputs_offered in
  let msg_fraction = fdiv !msgs_received !msgs_sent in
  {
    inputs_offered = !inputs_offered;
    inputs_processed = !inputs_processed;
    msgs_sent = !msgs_sent;
    msgs_received = !msgs_received;
    packets_sent = !packets_sent;
    packets_lost_collision = !lost_collision;
    packets_lost_channel = !lost_channel;
    packets_lost_queue = !lost_queue;
    sink_outputs = !sink_outputs;
    input_fraction;
    msg_fraction;
    goodput_fraction = input_fraction *. msg_fraction;
    node_busy_fraction =
      busy_total /. (config.duration *. Float.of_int config.n_nodes);
    offered_bytes_per_sec = Float.of_int !offered_bytes /. config.duration;
  }
