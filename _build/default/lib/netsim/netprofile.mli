(** The network profiling tool of §7.3.1.

    "This tool sends packets from all nodes at an identical rate,
    which gradually increases … it takes as input a target reception
    rate (e.g. 90%) and returns a maximum send rate that the network
    can maintain."

    The returned bound is what makes the §4.3 binary search valid:
    within it, sending more data means receiving more data. *)

type point = {
  offered_msgs_per_sec : float;  (** per node *)
  reception : float;  (** fraction of messages received *)
  goodput_bytes_per_sec : float;  (** aggregate at the basestation *)
}

val sweep :
  ?payload_bytes:int -> ?duration:float -> ?seed:int ->
  n_nodes:int -> link:Link.t -> rates:float list -> unit -> point list
(** Measure the reception curve at the given per-node message rates. *)

val max_send_rate :
  ?payload_bytes:int -> ?target:float -> ?duration:float -> ?seed:int ->
  n_nodes:int -> link:Link.t -> unit -> point
(** Binary-search the highest per-node send rate whose reception stays
    at or above [target] (default 0.9). *)
