(* Shared helpers for the figure-reproduction benches. *)

let header title =
  Printf.printf "\n=== %s ===\n" title

let paper_vs s = Printf.printf "    [paper] %s\n" s

let row fmt = Printf.printf fmt

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let idx = int_of_float (Float.of_int (n - 1) *. p) in
    sorted.(idx)
  end

let speech = lazy (Apps.Speech.build ())

let speech_profile = lazy (Apps.Speech.profile ~duration:30. (Lazy.force speech))

let eeg_full = lazy (Apps.Eeg.build ())

let eeg_profile = lazy (Apps.Eeg.profile ~duration:120. (Lazy.force eeg_full))

let eeg_channel = lazy (Apps.Eeg.single_channel ())

let eeg_channel_profile =
  lazy (Apps.Eeg.profile ~duration:120. (Lazy.force eeg_channel))

let spec_exn ?mode ~platform raw =
  match Wishbone.Spec.of_profile ?mode ~node_platform:platform raw with
  | Ok s -> s
  | Error m -> failwith m

let cut_names (speech : Apps.Speech.t) report =
  List.map
    (fun i -> (Dataflow.Graph.op speech.Apps.Speech.graph i).Dataflow.Op.name)
    (Wishbone.Partitioner.node_ops report)
