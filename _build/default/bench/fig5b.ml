(* Figure 5(b): speech detection.  For each of the paper's labelled
   cut points (source, filtbank, logs, cepstral), the maximum input
   data rate each platform can sustain, as a multiple of the native
   8 kHz stream.  Bars under 1.0 mean the platform cannot keep up. *)

let labelled = [ "source"; "filtbank"; "logs"; "cepstrals" ]

let run () =
  Bench_util.header "Figure 5(b): max sustainable rate per cut per platform";
  Bench_util.paper_vs
    "TinyOS lowest, JavaME ~2x TinyOS, then iPhone << VoxNet < Scheme; \
     TinyOS/JavaME bars fall below 1.0 beyond the source cut";
  let raw = Lazy.force Bench_util.speech_profile in
  let platforms =
    Profiler.Platform.[ tmote_sky; nokia_n80; iphone; voxnet; scheme_server ]
  in
  Bench_util.row "%-10s" "cutpoint";
  List.iter
    (fun (p : Profiler.Platform.t) -> Bench_util.row " %10s" p.name)
    platforms;
  print_newline ();
  List.iter
    (fun label ->
      Bench_util.row "%-10s" label;
      List.iter
        (fun p ->
          let cuts = Wishbone.Cutpoints.enumerate raw p in
          let c =
            List.find (fun c -> c.Wishbone.Cutpoints.label = label) cuts
          in
          Bench_util.row " %10.4g" c.Wishbone.Cutpoints.max_rate_compute)
        platforms;
      print_newline ())
    labelled
