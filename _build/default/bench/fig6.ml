(* Figure 6: CDF of solver runtime for the full EEG application,
   invoked across linearly spaced data rates.  Two distributions:
   time until the final incumbent was discovered, and time until
   optimality was proved.  (The paper ran lp_solve 2100 times; the
   default here is 200 invocations - pass a count to change it.) *)

let run ?(count = 200) () =
  Bench_util.header
    (Printf.sprintf
       "Figure 6: solver runtime CDF, full EEG app, %d invocations" count);
  Bench_util.paper_vs
    "95%% of runs find the optimum quickly; proving optimality has a \
     longer tail; all runs finish";
  let raw = Lazy.force Bench_util.eeg_profile in
  let spec =
    Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
      ~platform:Profiler.Platform.tmote_sky raw
  in
  (* rates from "everything fits easily" to "nothing fits" *)
  let lo = 0.01 and hi = 2.0 in
  (* the paper notes worst-case proofs of ~12 minutes and suggests an
     approximate-bound termination condition; we cap each solve at 20 s
     and report how many runs hit the cap *)
  let options =
    { Lp.Branch_bound.default_options with Lp.Branch_bound.time_limit = 20. }
  in
  let discover = ref [] and prove = ref [] in
  let feasible = ref 0 and capped = ref 0 in
  for i = 0 to count - 1 do
    let mult = lo +. ((hi -. lo) *. Float.of_int i /. Float.of_int (count - 1)) in
    match
      Wishbone.Partitioner.solve ~options (Wishbone.Spec.scale_rate spec mult)
    with
    | Wishbone.Partitioner.Partitioned r ->
        incr feasible;
        if not r.solver.Lp.Branch_bound.proved_optimal then incr capped;
        discover := r.solver.Lp.Branch_bound.time_to_incumbent :: !discover;
        prove := r.solver.Lp.Branch_bound.time_total :: !prove
    | Wishbone.Partitioner.No_feasible_partition -> ()
    | Wishbone.Partitioner.Solver_failure _ -> incr capped
  done;
  let d = Array.of_list !discover and p = Array.of_list !prove in
  Array.sort compare d;
  Array.sort compare p;
  Bench_util.row "feasible at %d of %d rates; %d proofs hit the 20 s cap\n"
    !feasible count !capped;
  Bench_util.row "%-12s %12s %12s\n" "percentile" "discover(s)" "prove(s)";
  List.iter
    (fun q ->
      Bench_util.row "%-12.0f %12.4f %12.4f\n" (q *. 100.)
        (Bench_util.percentile d q) (Bench_util.percentile p q))
    [ 0.5; 0.9; 0.95; 0.99; 1.0 ]
