(* §7 headline numbers that are not a single figure:
   - the TMote binary search lands at ~3 input events/s with the cut
     right after the filter bank;
   - the Meraki optimum is cut point 1 (raw data);
   - picking the best working partition beats the worst by a large
     factor (paper: 20x);
   - the additive cost model underestimates deployed CPU (paper:
     Gumstix predicted 11.5% vs measured 15%). *)

let run () =
  let speech = Lazy.force Bench_util.speech in
  let raw = Lazy.force Bench_util.speech_profile in
  Bench_util.header "Headline: TMote rate search";
  Bench_util.paper_vs
    "highest feasible rate = 3 events/s; optimal cut right after the \
     filter bank (cut point 4)";
  (let spec = Bench_util.spec_exn ~platform:Profiler.Platform.tmote_sky raw in
   match Wishbone.Rate_search.search spec with
   | Some { rate_multiplier; report } ->
       Bench_util.row
         "max rate x%.3f = %.2f windows/s; node = {%s}; cut bw %.0f B/s\n"
         rate_multiplier
         (rate_multiplier *. Apps.Speech.frame_rate)
         (String.concat "," (Bench_util.cut_names speech report))
         report.net
   | None -> Bench_util.row "rate search failed\n");
  Bench_util.header "Headline: Meraki partition";
  Bench_util.paper_vs
    "~15x the TMote CPU but >=10x the bandwidth: optimal cut is point 1, \
     send the raw data";
  (let spec = Bench_util.spec_exn ~platform:Profiler.Platform.meraki raw in
   match Wishbone.Rate_search.search spec with
   | Some { rate_multiplier; report } ->
       Bench_util.row "max rate x%.2f; node = {%s}\n" rate_multiplier
         (String.concat "," (Bench_util.cut_names speech report))
   | None -> Bench_util.row "rate search failed\n");
  Bench_util.header "Headline: best vs worst working partition (1 TMote)";
  Bench_util.paper_vs
    "0% of results at the all-server cut, 0.5% all-node; the right \
     intermediate cut is ~20x better";
  (let cuts = Apps.Speech.relevant_cutpoints speech in
   let goodputs =
     List.map (fun c -> (c, (Fig9_10.deploy ~n_nodes:1 c).goodput_fraction)) cuts
   in
   let best = List.fold_left (fun a (_, g) -> Float.max a g) 0. goodputs in
   let all_server = List.assoc 1 goodputs in
   let all_node = List.assoc 8 goodputs in
   Bench_util.row
     "all-server %.2f%%, all-node %.2f%%, best %.2f%% (%.0fx the all-node cut)\n"
     (100. *. all_server) (100. *. all_node) (100. *. best)
     (best /. Float.max 1e-9 all_node));
  Bench_util.header "Headline: predicted vs measured CPU (Gumstix)";
  Bench_util.paper_vs "predicted 11.5% CPU from profiles; measured ~15%";
  let spec = Bench_util.spec_exn ~platform:Profiler.Platform.gumstix raw in
  let assignment = Apps.Speech.cut_assignment speech 8 in
  let config =
    Netsim.Testbed.default_config ~n_nodes:1 ~duration:30. ~seed:4
      ~platform:Profiler.Platform.gumstix ~link:Netsim.Link.wifi ()
  in
  let sources = Apps.Speech.testbed_sources ~rate_mult:1.0 speech in
  let c = Wishbone.Deploy.run ~config ~sources ~spec ~assignment in
  Bench_util.row
    "whole pipeline on node: predicted %.2f%% CPU, measured %.2f%% (x%.2f)\n"
    (100. *. c.predicted_cpu) (100. *. c.measured_cpu)
    (c.measured_cpu /. Float.max 1e-9 c.predicted_cpu)
