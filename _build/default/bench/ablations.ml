(* Ablation benches for the design choices DESIGN.md calls out. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let encoding () =
  Bench_util.header
    "Ablation: restricted (eq. 6-7) vs general (eq. 1-5) encoding";
  let raw = Lazy.force Bench_util.eeg_profile in
  let spec =
    Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
      ~platform:Profiler.Platform.tmote_sky raw
  in
  let spec = Wishbone.Spec.scale_rate spec 0.5 in
  let solve enc =
    time (fun () -> Wishbone.Partitioner.solve ~encoding:enc spec)
  in
  let describe name (outcome, dt) =
    match outcome with
    | Wishbone.Partitioner.Partitioned r ->
        Bench_util.row
          "%-12s obj %10.2f  %6.2fs  %5d B&B nodes  %5d LPs  %d vars\n" name
          r.Wishbone.Partitioner.objective dt
          r.Wishbone.Partitioner.solver.Lp.Branch_bound.nodes_explored
          r.Wishbone.Partitioner.solver.Lp.Branch_bound.lp_solves
          r.Wishbone.Partitioner.supernodes
    | Wishbone.Partitioner.No_feasible_partition ->
        Bench_util.row "%-12s infeasible (%.2fs)\n" name dt
    | Wishbone.Partitioner.Solver_failure m ->
        Bench_util.row "%-12s FAILURE %s\n" name m
  in
  describe "restricted" (solve Wishbone.Ilp.Restricted);
  describe "general" (solve Wishbone.Ilp.General)

let preprocess () =
  Bench_util.header "Ablation: §4.1 preprocessing on vs off (EEG app)";
  let raw = Lazy.force Bench_util.eeg_profile in
  let spec =
    Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
      ~platform:Profiler.Platform.tmote_sky raw
  in
  let spec = Wishbone.Spec.scale_rate spec 0.5 in
  List.iter
    (fun (name, pre) ->
      let outcome, dt =
        time (fun () -> Wishbone.Partitioner.solve ~preprocess:pre spec)
      in
      match outcome with
      | Wishbone.Partitioner.Partitioned r ->
          Bench_util.row "%-6s obj %10.2f  %6.2fs  %4d supernodes (%d movable)\n"
            name r.Wishbone.Partitioner.objective dt
            r.Wishbone.Partitioner.supernodes
            r.Wishbone.Partitioner.movable_supernodes
      | _ -> Bench_util.row "%-6s no partition (%.2fs)\n" name dt)
    [ ("on", true); ("off", false) ]

let modes () =
  Bench_util.header "Ablation: conservative vs permissive stateful relocation";
  let raw = Lazy.force Bench_util.eeg_profile in
  List.iter
    (fun (name, mode) ->
      match
        Wishbone.Spec.of_profile ~mode
          ~node_platform:Profiler.Platform.tmote_sky raw
      with
      | Error m -> Bench_util.row "%-14s error: %s\n" name m
      | Ok spec -> (
          let movable = Wishbone.Movable.movable_count spec.Wishbone.Spec.placement in
          match Wishbone.Rate_search.search spec with
          | Some { rate_multiplier; report } ->
              Bench_util.row
                "%-14s %5d movable ops; max rate x%.3f; cut bw %.1f B/s\n" name
                movable rate_multiplier report.Wishbone.Partitioner.net
          | None ->
              Bench_util.row "%-14s %5d movable ops; no feasible rate\n" name
                movable))
    [ ("conservative", Wishbone.Movable.Conservative);
      ("permissive", Wishbone.Movable.Permissive) ]

let mean_peak () =
  Bench_util.header "Ablation: mean vs peak load profiles (bursty input)";
  (* a bursty synthetic source: all frames of each second arrive in its
     first 250 ms *)
  let speech = Lazy.force Bench_util.speech in
  let duration = 30. in
  let events =
    List.concat_map
      (fun sec ->
        List.init 10 (fun i ->
            {
              Profiler.Profile.Trace.time =
                Float.of_int sec +. (Float.of_int i *. 0.025);
              source = speech.Apps.Speech.source;
              value = Apps.Speech.frame_gen ~seed:5 ((sec * 10) + i);
            }))
      (List.init (int_of_float duration) Fun.id)
  in
  let raw =
    Profiler.Profile.collect ~window:0.25 ~duration speech.Apps.Speech.graph
      events
  in
  List.iter
    (fun (name, use_peak) ->
      match
        Wishbone.Spec.of_profile ~use_peak
          ~node_platform:Profiler.Platform.tmote_sky raw
      with
      | Error m -> Bench_util.row "%-6s error: %s\n" name m
      | Ok spec -> (
          match Wishbone.Rate_search.search spec with
          | Some { rate_multiplier; report } ->
              Bench_util.row
                "%-6s max rate x%.3f; node cpu %.1f%%; cut bw %.1f B/s\n" name
                rate_multiplier
                (100. *. report.Wishbone.Partitioner.cpu)
                report.Wishbone.Partitioner.net
          | None -> Bench_util.row "%-6s no feasible rate\n" name))
    [ ("mean", false); ("peak", true) ]

let run () =
  encoding ();
  preprocess ();
  modes ();
  mean_peak ()
