bench/fig6.ml: Array Bench_util Float Lazy List Lp Printf Profiler Wishbone
