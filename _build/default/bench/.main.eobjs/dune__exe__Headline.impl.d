bench/headline.ml: Apps Bench_util Fig9_10 Float Lazy List Netsim Profiler String Wishbone
