bench/bench_util.ml: Apps Array Dataflow Float Lazy List Printf Wishbone
