bench/ablations.ml: Apps Bench_util Float Fun Lazy List Lp Profiler Unix Wishbone
