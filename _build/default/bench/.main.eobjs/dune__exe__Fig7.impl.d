bench/fig7.ml: Bench_util Lazy List Profiler Wishbone
