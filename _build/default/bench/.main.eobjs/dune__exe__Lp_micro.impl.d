bench/lp_micro.ml: Apps Bench_util Float Lp Printf Profiler Unix Wishbone
