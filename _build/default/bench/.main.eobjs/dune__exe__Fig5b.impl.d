bench/fig5b.ml: Bench_util Lazy List Profiler Wishbone
