bench/fig9_10.ml: Apps Array Bench_util Dataflow Lazy List Netsim Profiler
