bench/fig8.ml: Bench_util Format Lazy Profiler Wishbone
