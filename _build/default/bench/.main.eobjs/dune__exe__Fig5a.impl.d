bench/fig5a.ml: Bench_util Lazy List Profiler Wishbone
