bench/fig3.ml: Apps Bench_util Dataflow List String Wishbone
