bench/main.mli:
