bench/main.ml: Ablations Array Fig3 Fig5a Fig5b Fig6 Fig7 Fig8 Fig9_10 Headline List Lp_micro Micro Printf String Sys
