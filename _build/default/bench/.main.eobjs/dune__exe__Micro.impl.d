bench/micro.ml: Analyze Apps Array Bechamel Bench_util Benchmark Dsp Hashtbl Instance Lazy List Lp Measure Netsim Prng Profiler Runtime Staged Test Time Toolkit Wishbone
