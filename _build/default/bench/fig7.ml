(* Figure 7: speech pipeline on the TMote.  Per-operator execution
   time (microseconds per frame, impulses in the paper) against the
   output bandwidth of each stage (line, right-hand scale). *)

let run () =
  Bench_util.header "Figure 7: TMote per-operator cost vs bandwidth";
  Bench_util.paper_vs
    "~400 B frames; 128 B after filtbank (cumulative ~250 ms); 52 B after \
     the DCT (total ~2 s); processing reduces data but costs CPU";
  let raw = Lazy.force Bench_util.speech_profile in
  let order = Wishbone.Cutpoints.pipeline_order raw in
  let table =
    Profiler.Report.per_op_table raw Profiler.Platform.tmote_sky ~order
  in
  Bench_util.row "%-12s %14s %14s %14s\n" "operator" "us/frame" "cum us/frame"
    "out B/s";
  List.iter
    (fun (name, us, cum, bps) ->
      Bench_util.row "%-12s %14.1f %14.1f %14.1f\n" name us cum bps)
    table
