(* Bechamel micro-benchmarks for the hot paths: the simplex pivot
   machinery, the ILP solve, the FFT, a full pipeline traversal, and
   one second of simulated testbed time. *)

open Bechamel
open Toolkit

let lp_test () =
  (* a 30-var knapsack-ish ILP *)
  let rng = Prng.create 4 in
  let p = Lp.Problem.create () in
  let vars =
    Array.init 30 (fun _ -> Lp.Problem.add_var ~hi:1. ~integer:true p)
  in
  Lp.Problem.add_constr p
    (Array.to_list (Array.map (fun v -> (v, Prng.uniform rng 1. 5.)) vars))
    Lp.Problem.Le 30.;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Array.to_list (Array.map (fun v -> (v, Prng.uniform rng 1. 10.)) vars));
  fun () -> ignore (Lp.Branch_bound.solve p)

let simplex_test () =
  let rng = Prng.create 5 in
  let p = Lp.Problem.create () in
  let vars = Array.init 60 (fun _ -> Lp.Problem.add_var ~hi:10. p) in
  for _ = 1 to 40 do
    Lp.Problem.add_constr p
      (Array.to_list (Array.map (fun v -> (v, Prng.uniform rng (-2.) 3.)) vars))
      Lp.Problem.Le
      (Prng.uniform rng 5. 50.)
  done;
  Lp.Problem.set_objective p Lp.Problem.Maximize
    (Array.to_list (Array.map (fun v -> (v, Prng.uniform rng 0. 5.)) vars));
  fun () -> ignore (Lp.Simplex.solve p)

let fft_test () =
  let rng = Prng.create 6 in
  let x = Array.init 256 (fun _ -> Prng.gaussian rng) in
  fun () -> ignore (Dsp.Fft.power_spectrum x)

let traversal_test () =
  let speech = Lazy.force Bench_util.speech in
  let exec = Runtime.Exec.full speech.Apps.Speech.graph in
  let frame = Apps.Speech.frame_gen ~seed:9 0 in
  fun () ->
    ignore
      (Runtime.Exec.fire exec ~op:speech.Apps.Speech.source ~port:0 frame)

let partition_test () =
  let spec = Apps.Synthetic.random_spec ~seed:11 ~n_ops:40 () in
  fun () -> ignore (Wishbone.Partitioner.solve spec)

let testbed_test () =
  let speech = Lazy.force Bench_util.speech in
  let assignment = Apps.Speech.cut_assignment speech 6 in
  let sources = Apps.Speech.testbed_sources ~rate_mult:1.0 speech in
  let config =
    Netsim.Testbed.default_config ~n_nodes:4 ~duration:1. ~seed:8
      ~platform:Profiler.Platform.tmote_sky ~link:Netsim.Link.cc2420 ()
  in
  fun () ->
    ignore
      (Netsim.Testbed.run config ~graph:speech.Apps.Speech.graph
         ~node_of:(fun i -> assignment.(i))
         ~sources)

let tests =
  Test.make_grouped ~name:"micro" ~fmt:"%s %s"
    [
      Test.make ~name:"ilp_30bin" (Staged.stage (lp_test ()));
      Test.make ~name:"simplex_60x40" (Staged.stage (simplex_test ()));
      Test.make ~name:"fft_256" (Staged.stage (fft_test ()));
      Test.make ~name:"speech_traversal" (Staged.stage (traversal_test ()));
      Test.make ~name:"partition_40ops" (Staged.stage (partition_test ()));
      Test.make ~name:"testbed_4n_1s" (Staged.stage (testbed_test ()));
    ]

let run () =
  Bench_util.header "Micro-benchmarks (Bechamel, ns per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
          if est > 1e6 then Bench_util.row "%-28s %14.3f ms/run\n" name (est /. 1e6)
          else Bench_util.row "%-28s %14.1f ns/run\n" name est
      | _ -> Bench_util.row "%-28s (no estimate)\n" name)
    (List.sort compare rows)
