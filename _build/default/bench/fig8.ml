(* Figure 8: normalized cumulative CPU usage per operator across
   platforms.  If relative operator costs were platform-independent the
   three columns would match; the mote's software floating point makes
   the cepstral stage dominate there. *)

let run () =
  Bench_util.header "Figure 8: normalized cumulative CPU share per platform";
  Bench_util.paper_vs
    "curves differ by over an order of magnitude per stage: cepstrals \
     dominate on the mote (no FPU), far less so on the PC";
  let raw = Lazy.force Bench_util.speech_profile in
  let order = Wishbone.Cutpoints.pipeline_order raw in
  Profiler.Report.pp_comparison Format.std_formatter raw
    ~platforms:
      Profiler.Platform.[ tmote_sky; nokia_n80; xeon_server ]
    ~order;
  Format.pp_print_flush Format.std_formatter ()
