(* Figure 5(a): one EEG channel.  Sweep the input data rate and report
   the number of operators in the computed optimal node partition for
   the TMote and the N80 (alpha = 0, beta = 1: minimize network
   subject to fitting the CPU). *)

let ops_on_node spec mult =
  match Wishbone.Partitioner.solve (Wishbone.Spec.scale_rate spec mult) with
  | Wishbone.Partitioner.Partitioned r ->
      List.length (Wishbone.Partitioner.node_ops r)
  | Wishbone.Partitioner.No_feasible_partition -> -1
  | Wishbone.Partitioner.Solver_failure m -> failwith m

let run () =
  Bench_util.header
    "Figure 5(a): EEG single channel, operators on node vs input rate";
  Bench_util.paper_vs
    "sloping staircase: fewer operators fit as the rate grows; N80 above TMote";
  let raw = Lazy.force Bench_util.eeg_channel_profile in
  (* as in the paper, the network budget is left unconstrained here to
     remove confounding factors (alpha = 0, beta = 1) *)
  let spec p =
    match
      Wishbone.Spec.of_profile ~mode:Wishbone.Movable.Permissive
        ~net_budget:infinity ~node_platform:p raw
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  let tmote = spec Profiler.Platform.tmote_sky in
  let n80 = spec Profiler.Platform.nokia_n80 in
  Bench_util.row "%-10s %10s %10s\n" "rate x" "tmote" "n80";
  List.iter
    (fun mult ->
      Bench_util.row "%-10.1f %10d %10d\n" mult (ops_on_node tmote mult)
        (ops_on_node n80 mult))
    [ 1.; 2.; 4.; 8.; 12.; 16.; 20.; 24.; 28.; 32.; 40.; 48.; 64.; 96.;
      128.; 192.; 256. ]
