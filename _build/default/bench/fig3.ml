(* Figure 3: the motivating example.  Six operators, CPU budgets 2, 3
   and 4; the optimal node partition's cut bandwidth must fall 8, 6, 5
   and flip between "horizontal" and "vertical" shapes. *)

let run () =
  Bench_util.header "Figure 3: motivating example (budget sweep)";
  Bench_util.paper_vs "optimal cut bandwidth 8 / 6 / 5 at CPU budgets 2 / 3 / 4";
  List.iter
    (fun budget ->
      let spec = Apps.Synthetic.fig3_spec ~cpu_budget:budget in
      match Wishbone.Partitioner.solve spec with
      | Wishbone.Partitioner.Partitioned r ->
          let names =
            List.map
              (fun i ->
                (Dataflow.Graph.op spec.Wishbone.Spec.graph i).Dataflow.Op.name)
              (Wishbone.Partitioner.node_ops r)
          in
          Bench_util.row "budget %.0f -> cut bandwidth %.0f, cpu %.0f, node = {%s}\n"
            budget r.net r.cpu (String.concat "," names)
      | Wishbone.Partitioner.No_feasible_partition ->
          Bench_util.row "budget %.0f -> infeasible\n" budget
      | Wishbone.Partitioner.Solver_failure m ->
          Bench_util.row "budget %.0f -> solver failure: %s\n" budget m)
    [ 2.; 3.; 4. ]
