(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md experiment index).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig7    -- one experiment
     dune exec bench/main.exe -- fig6 2100   -- full-size Figure 6
     dune exec bench/main.exe -- micro   -- Bechamel micro-benchmarks *)

let experiments =
  [
    ("fig3", fun () -> Fig3.run ());
    ("fig5a", fun () -> Fig5a.run ());
    ("fig5b", fun () -> Fig5b.run ());
    ("fig6", fun () -> Fig6.run ());
    ("fig7", fun () -> Fig7.run ());
    ("fig8", fun () -> Fig8.run ());
    ("fig9", fun () -> Fig9_10.run ());
    ("fig10", fun () -> Fig9_10.run ());
    ("headline", fun () -> Headline.run ());
    ("ablations", fun () -> Ablations.run ());
    ("micro", fun () -> Micro.run ());
  ]

let default_order =
  [ "fig3"; "fig5a"; "fig5b"; "fig6"; "fig7"; "fig8"; "fig9"; "headline";
    "ablations"; "micro" ]

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
      print_endline "Wishbone reproduction: all evaluation experiments";
      List.iter (fun name -> (List.assoc name experiments) ()) default_order
  | [ _; "fig6"; count ] -> Fig6.run ~count:(int_of_string count) ()
  | [ _; name ] -> (
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
  | _ ->
      prerr_endline "usage: main.exe [experiment] | fig6 <count>";
      exit 1
