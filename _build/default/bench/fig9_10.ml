(* Figures 9 and 10: deploying the speech application on the simulated
   TMote testbed at every relevant cut point.

   Figure 9 (single mote + basestation): percentage of input events
   processed, percentage of network messages received, and their
   product - the goodput.

   Figure 10: goodput for 1 mote vs a 20-mote network.  The single
   mote peaks at the filter-bank cut; the 20-node network is limited
   by the shared channel until the final, compute-bound cut. *)

let deploy ~n_nodes cut =
  let speech = Lazy.force Bench_util.speech in
  let assignment = Apps.Speech.cut_assignment speech cut in
  let config =
    Netsim.Testbed.default_config ~n_nodes ~duration:60. ~seed:5
      ~platform:Profiler.Platform.tmote_sky ~link:Netsim.Link.cc2420 ()
  in
  let sources = Apps.Speech.testbed_sources ~rate_mult:1.0 speech in
  Netsim.Testbed.run config ~graph:speech.Apps.Speech.graph
    ~node_of:(fun i -> assignment.(i))
    ~sources

let run () =
  let speech = Lazy.force Bench_util.speech in
  let cuts = Apps.Speech.relevant_cutpoints speech in
  Bench_util.header "Figure 9: single TMote loss rates per cut point";
  Bench_util.paper_vs
    "early cuts drive reception to ~0; late cuts starve the input; the \
     middle processes ~10% of windows";
  Bench_util.row "%-4s %-10s %10s %10s %10s\n" "cut" "after" "input%"
    "msgs%" "goodput%";
  let label cut =
    let order = (Lazy.force Bench_util.speech).Apps.Speech.order in
    (Dataflow.Graph.op speech.Apps.Speech.graph order.(cut - 1)).Dataflow.Op.name
  in
  let single =
    List.mapi
      (fun i cut ->
        let r = deploy ~n_nodes:1 cut in
        Bench_util.row "%-4d %-10s %10.1f %10.1f %10.2f\n" (i + 1) (label cut)
          (100. *. r.input_fraction)
          (100. *. r.msg_fraction)
          (100. *. r.goodput_fraction);
        (cut, r))
      cuts
  in
  Bench_util.header "Figure 10: goodput, 1 TMote vs 20-TMote network";
  Bench_util.paper_vs
    "single mote peaks at the 4th cut (filterbank); the 20-node network \
     peaks at the 6th and final cut (cepstral)";
  Bench_util.row "%-4s %-10s %12s %12s\n" "cut" "after" "1 mote %"
    "20 motes %";
  List.iteri
    (fun i cut ->
      let r20 = deploy ~n_nodes:20 cut in
      let _, r1 = List.nth single i in
      Bench_util.row "%-4d %-10s %12.2f %12.2f\n" (i + 1) (label cut)
        (100. *. r1.goodput_fraction)
        (100. *. r20.goodput_fraction))
    cuts
