(* §9 extensions: in-network aggregation, mixed networks, three-tier
   partitioning. *)

open Dataflow
open Wishbone

(* a small averaging app: node sources -> reduce(mean of 4) -> sink *)
let reduce_app () =
  let b = Builder.create () in
  let reduce = ref 0 in
  let src = ref 0 in
  Builder.in_node b (fun () ->
      let s = Builder.source b ~name:"sample" () in
      src := Builder.op_id s;
      let r =
        Aggregation.reduce_op b ~name:"mean4" ~window:4
          ~combine:(fun vs ->
            let total =
              List.fold_left
                (fun acc v ->
                  match v with Value.Float f -> acc +. f | _ -> acc)
                0. vs
            in
            ( Value.Float (total /. 4.),
              Workload.make ~float_ops:5. ~call_ops:1. () ))
          s
      in
      reduce := Builder.op_id r;
      Builder.sink b ~name:"log" r);
  (Builder.build b, !src, !reduce)

let test_reduce_op_windows () =
  let g, src, _ = reduce_app () in
  let exec = Runtime.Exec.full g in
  let outs = ref [] in
  for i = 1 to 8 do
    let fired =
      Runtime.Exec.fire exec ~op:src ~port:0 (Value.Float (Float.of_int i))
    in
    outs := !outs @ fired.sink_values
  done;
  (* two windows: mean(1..4) = 2.5, mean(5..8) = 6.5 *)
  Alcotest.(check bool) "two aggregates" true
    (!outs = [ Value.Float 2.5; Value.Float 6.5 ])

let test_aggregation_cost_annotation () =
  let g, src, reduce = reduce_app () in
  let events =
    Profiler.Profile.Trace.periodic ~source:src ~rate:8. ~duration:10.
      ~gen:(fun i -> Value.Float (Float.of_int i))
  in
  let raw = Profiler.Profile.collect ~duration:10. g events in
  match
    Spec.of_profile ~mode:Movable.Permissive
      ~node_platform:Profiler.Platform.tmote_sky raw
  with
  | Error m -> Alcotest.fail m
  | Ok spec ->
      let fanned = Aggregation.annotate_fan_in spec ~op:reduce ~fan_in:5. in
      Alcotest.(check (float 1e-12)) "cpu scaled by fan-in"
        (5. *. spec.Spec.cpu.(reduce))
        fanned.Spec.cpu.(reduce);
      (* aggregation saves bandwidth in-network: 4 floats in, 1 out *)
      Alcotest.(check bool) "positive in-network benefit" true
        (Aggregation.in_network_benefit spec ~op:reduce > 0.);
      Alcotest.check_raises "fan_in < 1"
        (Invalid_argument "Aggregation.annotate_fan_in: fan_in < 1")
        (fun () -> ignore (Aggregation.annotate_fan_in spec ~op:reduce ~fan_in:0.5))

let test_aggregation_changes_partition () =
  (* with high fan-in the reduce op becomes too expensive for the node
     and moves to the server *)
  let g, src, reduce = reduce_app () in
  let events =
    Profiler.Profile.Trace.periodic ~source:src ~rate:8. ~duration:10.
      ~gen:(fun i -> Value.Float (Float.of_int i))
  in
  let raw = Profiler.Profile.collect ~duration:10. g events in
  match
    Spec.of_profile ~mode:Movable.Permissive
      ~node_platform:Profiler.Platform.tmote_sky raw
  with
  | Error m -> Alcotest.fail m
  | Ok spec -> (
      (* make the reduce meaningfully expensive, then inflate by fan-in *)
      let cpu = Array.copy spec.Spec.cpu in
      cpu.(reduce) <- 0.3;
      let spec = { spec with Spec.cpu } in
      let in_network = Partitioner.solve spec in
      let overloaded =
        Partitioner.solve (Aggregation.annotate_fan_in spec ~op:reduce ~fan_in:5.)
      in
      match (in_network, overloaded) with
      | Partitioner.Partitioned a, Partitioner.Partitioned b ->
          Alcotest.(check bool) "cheap reduce runs in-network" true
            a.assignment.(reduce);
          Alcotest.(check bool) "overloaded reduce moves to the server" true
            (not b.assignment.(reduce))
      | _ -> Alcotest.fail "partitioning failed")

let test_mixed_network_plans () =
  let speech = Apps.Speech.build () in
  let raw = Apps.Speech.profile ~duration:10. speech in
  match
    Mixed.plan raw
      ~classes:
        [
          { Mixed.platform = Profiler.Platform.tmote_sky; n_nodes = 10;
            net_share = None };
          { Mixed.platform = Profiler.Platform.meraki; n_nodes = 1;
            net_share = None };
        ]
  with
  | Error m -> Alcotest.fail m
  | Ok plans ->
      Alcotest.(check int) "one plan per class" 2 (List.length plans);
      let by name =
        List.find
          (fun p -> p.Mixed.platform.Profiler.Platform.name = name)
          plans
      in
      let tmote_ops =
        List.length (Partitioner.node_ops (by "tmote").Mixed.report)
      in
      let meraki_ops =
        List.length (Partitioner.node_ops (by "meraki").Mixed.report)
      in
      (* the classes end up with different physical partitions *)
      Alcotest.(check bool)
        (Printf.sprintf "different cuts (tmote %d vs meraki %d)" tmote_ops
           meraki_ops)
        true
        (tmote_ops <> meraki_ops)

let test_three_tier_pipeline () =
  let speech = Apps.Speech.build () in
  let raw = Apps.Speech.profile ~duration:10. speech in
  (* at 8% of the native rate the mote tier can run the front end *)
  let raw = Profiler.Profile.scale_rate raw 0.08 in
  match
    Three_tier.of_profile ~mote:Profiler.Platform.tmote_sky
      ~micro:Profiler.Platform.meraki raw
  with
  | Error m -> Alcotest.fail m
  | Ok t -> (
      match Three_tier.solve t with
      | Three_tier.Partitioned r ->
          let motes, micros, central = Three_tier.tier_counts r in
          Alcotest.(check int) "all ops placed" 9 (motes + micros + central);
          (* source on the mote, sink central *)
          Alcotest.(check bool) "source on mote" true
            (r.tiers.(speech.Apps.Speech.source) = Three_tier.Mote);
          let sink = (Dataflow.Graph.sinks speech.Apps.Speech.graph) |> List.hd in
          Alcotest.(check bool) "sink central" true
            (r.tiers.(sink) = Three_tier.Central);
          (* tiers descend monotonically along the pipeline *)
          let rank = function
            | Three_tier.Mote -> 2
            | Three_tier.Microserver -> 1
            | Three_tier.Central -> 0
          in
          Array.iter
            (fun (e : Graph.edge) ->
              Alcotest.(check bool) "monotone descent" true
                (rank r.tiers.(e.src) >= rank r.tiers.(e.dst)))
            (Graph.edges speech.Apps.Speech.graph);
          (* budget respected on the mote radio *)
          Alcotest.(check bool) "mote net within budget" true
            (r.mote_net
            <= Profiler.Platform.tmote_sky.Profiler.Platform
               .radio_bytes_per_sec
               +. 1e-6)
      | Three_tier.No_feasible_partition ->
          Alcotest.fail "expected a three-tier partition"
      | Three_tier.Solver_failure m -> Alcotest.fail m)

let test_three_tier_uses_middle () =
  (* when the mote cannot afford a stage but the microserver can, the
     middle tier must actually be used *)
  let speech = Apps.Speech.build () in
  let raw = Apps.Speech.profile ~duration:10. speech in
  let raw = Profiler.Profile.scale_rate raw 0.08 in
  match
    Three_tier.of_profile ~mote:Profiler.Platform.tmote_sky
      ~micro:Profiler.Platform.meraki
      ~micro_net_budget:300.  (* tight uplink: push work into the middle *)
      raw
  with
  | Error m -> Alcotest.fail m
  | Ok t -> (
      match Three_tier.solve t with
      | Three_tier.Partitioned r ->
          let _, micros, _ = Three_tier.tier_counts r in
          Alcotest.(check bool) "microserver tier non-empty" true (micros > 0)
      | Three_tier.No_feasible_partition ->
          Alcotest.fail "expected a partition"
      | Three_tier.Solver_failure m -> Alcotest.fail m)

let test_mixed_matches_brute_force () =
  (* every per-class ILP answer must equal exhaustive search over the
     class's reconstructed spec *)
  let speech = Apps.Speech.build () in
  let raw = Apps.Speech.profile ~duration:10. speech in
  let raw = Profiler.Profile.scale_rate raw 0.05 in
  let classes =
    [
      { Mixed.platform = Profiler.Platform.tmote_sky; n_nodes = 4;
        net_share = Some 1e7 };
      { Mixed.platform = Profiler.Platform.meraki; n_nodes = 1;
        net_share = Some 1e7 };
    ]
  in
  match Mixed.plan raw ~classes with
  | Error m -> Alcotest.fail m
  | Ok plans ->
      List.iter
        (fun (p : Mixed.class_plan) ->
          (* reconstruct the spec exactly as Mixed.plan does *)
          match
            Spec.of_profile ~net_budget:1e7
              ~node_platform:p.Mixed.platform raw
          with
          | Error m -> Alcotest.fail m
          | Ok spec -> (
              Alcotest.(check bool)
                (p.Mixed.platform.Profiler.Platform.name ^ " at rate 1")
                true
                (p.Mixed.report.Partitioner.solver.Lp.Branch_bound
                   .proved_optimal);
              match Partitioner.brute_force spec with
              | None -> Alcotest.fail "brute force found no feasible cut"
              | Some (_, best) ->
                  Alcotest.(check (float 1e-6))
                    (p.Mixed.platform.Profiler.Platform.name
                    ^ " objective = brute force")
                    best p.Mixed.report.Partitioner.objective))
        plans

let three_tier_of_speech ?micro_net_budget () =
  let speech = Apps.Speech.build () in
  let raw = Apps.Speech.profile ~duration:10. speech in
  let raw = Profiler.Profile.scale_rate raw 0.08 in
  Three_tier.of_profile ~mote:Profiler.Platform.tmote_sky
    ~micro:Profiler.Platform.meraki ?micro_net_budget raw

let check_three_tier_matches_brute t =
  match (Three_tier.solve t, Three_tier.brute_force t) with
  | Three_tier.Partitioned r, Some (tiers, best) ->
      Alcotest.(check (float 1e-6)) "objective = brute force" best
        r.Three_tier.objective;
      Alcotest.(check int) "same tier count" (Array.length tiers)
        (Array.length r.Three_tier.tiers)
  | Three_tier.Partitioned _, None ->
      Alcotest.fail "ILP found a partition but brute force did not"
  | Three_tier.No_feasible_partition, Some _ ->
      Alcotest.fail "brute force found a partition but the ILP did not"
  | Three_tier.No_feasible_partition, None -> ()
  | Three_tier.Solver_failure m, _ -> Alcotest.fail m

let test_three_tier_matches_brute_force () =
  match three_tier_of_speech () with
  | Error m -> Alcotest.fail m
  | Ok t -> check_three_tier_matches_brute t

let test_three_tier_matches_brute_force_tight () =
  match three_tier_of_speech ~micro_net_budget:300. () with
  | Error m -> Alcotest.fail m
  | Ok t -> check_three_tier_matches_brute t

let () =
  (* the pivot counter is process-wide; start every suite from a
     clean slate so no test depends on which suite ran before it
     (asserted centrally in test_check.ml) *)
  Lp.Simplex.reset_cumulative_pivots ();
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extensions"
    [
      ( "aggregation",
        [
          tc "windowed reduce" test_reduce_op_windows;
          tc "fan-in cost annotation" test_aggregation_cost_annotation;
          tc "fan-in changes the partition" test_aggregation_changes_partition;
        ] );
      ( "mixed",
        [
          tc "per-class plans" test_mixed_network_plans;
          tc "matches brute force" test_mixed_matches_brute_force;
        ] );
      ( "three_tier",
        [
          tc "speech pipeline tiers" test_three_tier_pipeline;
          tc "middle tier used" test_three_tier_uses_middle;
          tc "matches brute force" test_three_tier_matches_brute_force;
          tc "matches brute force (tight uplink)"
            test_three_tier_matches_brute_force_tight;
        ] );
    ]
