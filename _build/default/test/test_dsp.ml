(* DSP operator tests: FFT vs naive DFT, window/FIR/mel/DCT/wavelet
   numerics, SVM training, signal generators. *)

let feq ?(tol = 1e-6) = Alcotest.(check (float tol))

let arr_close ?(tol = 1e-6) msg a b =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if Float.abs (x -. b.(i)) > tol then
        Alcotest.failf "%s[%d]: %g vs %g" msg i x b.(i))
    a

(* ---- FFT ---- *)

let test_fft_vs_dft () =
  let rng = Prng.create 3 in
  let n = 64 in
  let re = Array.init n (fun _ -> Prng.gaussian rng) in
  let im = Array.init n (fun _ -> Prng.gaussian rng) in
  let fre = Array.copy re and fim = Array.copy im in
  Dsp.Fft.forward fre fim;
  let dre, dim = Dsp.Fft.naive_dft re im in
  arr_close ~tol:1e-8 "re" dre fre;
  arr_close ~tol:1e-8 "im" dim fim

let test_fft_roundtrip () =
  let rng = Prng.create 4 in
  let n = 128 in
  let re = Array.init n (fun _ -> Prng.gaussian rng) in
  let im = Array.init n (fun _ -> Prng.gaussian rng) in
  let fre = Array.copy re and fim = Array.copy im in
  Dsp.Fft.forward fre fim;
  Dsp.Fft.inverse fre fim;
  arr_close ~tol:1e-9 "roundtrip re" re fre;
  arr_close ~tol:1e-9 "roundtrip im" im fim

let test_fft_impulse () =
  (* FFT of a unit impulse is all-ones *)
  let n = 16 in
  let re = Array.make n 0. and im = Array.make n 0. in
  re.(0) <- 1.;
  Dsp.Fft.forward re im;
  Array.iter (fun x -> feq "re one" 1. x) re;
  Array.iter (fun x -> feq "im zero" 0. x) im

let test_fft_sine_peak () =
  (* a pure tone concentrates power in one bin *)
  let n = 256 in
  let k = 13 in
  let x =
    Array.init n (fun i ->
        Float.sin (2. *. Float.pi *. Float.of_int (k * i) /. Float.of_int n))
  in
  let power, _ = Dsp.Fft.power_spectrum x in
  let best = ref 0 in
  Array.iteri (fun i p -> if p > power.(!best) then best := i) power;
  Alcotest.(check int) "peak bin" k !best

let test_fft_rejects_bad_length () =
  Alcotest.check_raises "non power of 2"
    (Invalid_argument "Fft: length must be a power of two") (fun () ->
      Dsp.Fft.forward (Array.make 3 0.) (Array.make 3 0.))

let test_fft_parseval () =
  (* energy is preserved (up to the 1/n convention) *)
  let rng = Prng.create 6 in
  let n = 64 in
  let x = Array.init n (fun _ -> Prng.gaussian rng) in
  let re = Array.copy x and im = Array.make n 0. in
  Dsp.Fft.forward re im;
  let time_e = Array.fold_left (fun a v -> a +. (v *. v)) 0. x in
  let freq_e = ref 0. in
  for i = 0 to n - 1 do
    freq_e := !freq_e +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i))
  done;
  feq ~tol:1e-6 "parseval" time_e (!freq_e /. Float.of_int n)

let test_next_pow2 () =
  Alcotest.(check int) "1" 1 (Dsp.Fft.next_pow2 1);
  Alcotest.(check int) "200" 256 (Dsp.Fft.next_pow2 200);
  Alcotest.(check int) "256" 256 (Dsp.Fft.next_pow2 256);
  Alcotest.(check int) "257" 512 (Dsp.Fft.next_pow2 257)

(* ---- windows / preemphasis ---- *)

let test_hamming_shape () =
  let w = Dsp.Window.hamming 100 in
  feq ~tol:1e-9 "ends" 0.08 w.(0);
  feq ~tol:1e-9 "symmetric" w.(0) w.(99);
  feq ~tol:1e-3 "peak" 1.0 w.(50);
  Alcotest.(check bool) "monotone to middle" true (w.(10) < w.(40))

let test_window_apply () =
  let w = [| 0.5; 1.0 |] in
  let out, _ = Dsp.Window.apply w [| 4.; 3. |] in
  arr_close "apply" [| 2.; 3. |] out;
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Window.apply: length mismatch") (fun () ->
      ignore (Dsp.Window.apply w [| 1. |]))

let test_preemphasis () =
  let out, carry, _ =
    Dsp.Window.preemphasis ~alpha:0.5 ~prev:2. [| 4.; 6. |]
  in
  arr_close "preemph" [| 3.; 4. |] out;
  feq "carry" 6. carry

let test_dc_remove () =
  let out, _ = Dsp.Window.dc_remove [| 1.; 2.; 3. |] in
  feq "mean zero" 0. (Array.fold_left ( +. ) 0. out)

(* ---- FIR ---- *)

let test_fir_impulse_response () =
  let taps = [| 0.5; 0.3; 0.2 |] in
  let f = Dsp.Fir.create taps in
  let impulse = [| 1.; 0.; 0.; 0. |] in
  let out, _ = Dsp.Fir.filter_frame f impulse in
  arr_close "impulse response" [| 0.5; 0.3; 0.2; 0. |] out

let test_fir_streaming_continuity () =
  (* filtering frame-by-frame equals filtering the whole signal *)
  let taps = Dsp.Fir.low_pass ~cutoff:0.2 ~taps:9 in
  let rng = Prng.create 5 in
  let x = Array.init 100 (fun _ -> Prng.gaussian rng) in
  let whole, _ = Dsp.Fir.filter_frame (Dsp.Fir.create taps) x in
  let f2 = Dsp.Fir.create taps in
  let p1, _ = Dsp.Fir.filter_frame f2 (Array.sub x 0 37) in
  let p2, _ = Dsp.Fir.filter_frame f2 (Array.sub x 37 63) in
  arr_close ~tol:1e-9 "streaming" whole (Array.append p1 p2)

let test_fir_reset () =
  let f = Dsp.Fir.create [| 1.; 1. |] in
  ignore (Dsp.Fir.push f 5.);
  Dsp.Fir.reset f;
  let y, _ = Dsp.Fir.push f 1. in
  feq "after reset" 1. y

let test_fir_decimate () =
  let f = Dsp.Fir.create [| 1. |] in
  let out, _ = Dsp.Fir.decimate f ~factor:4 (Array.init 32 Float.of_int) in
  Alcotest.(check int) "length" 8 (Array.length out);
  feq "first kept" 3. out.(0)

let test_fir_low_pass_dc_gain () =
  let taps = Dsp.Fir.low_pass ~cutoff:0.1 ~taps:21 in
  feq ~tol:1e-9 "dc gain" 1. (Array.fold_left ( +. ) 0. taps)

let test_moving_average () =
  let taps = Dsp.Fir.moving_average 4 in
  feq "uniform" 0.25 taps.(0);
  feq ~tol:1e-12 "sums to one" 1. (Array.fold_left ( +. ) 0. taps)

(* ---- Mel ---- *)

let test_mel_scale_roundtrip () =
  List.iter
    (fun hz -> feq ~tol:1e-6 "roundtrip" hz (Dsp.Mel.mel_to_hz (Dsp.Mel.hz_to_mel hz)))
    [ 0.; 100.; 1000.; 4000. ]

let test_mel_bank_energies () =
  let bank = Dsp.Mel.create ~n_filters:8 ~n_fft:256 ~sample_rate:8000. () in
  Alcotest.(check int) "filters" 8 (Dsp.Mel.n_filters bank);
  (* flat spectrum -> all energies positive *)
  let power = Array.make 129 1. in
  let e, _ = Dsp.Mel.apply bank power in
  Array.iteri
    (fun i v ->
      if v <= 0. then Alcotest.failf "filter %d has nonpositive energy %g" i v)
    e;
  Alcotest.check_raises "length" (Invalid_argument "Mel.apply: power spectrum length mismatch")
    (fun () -> ignore (Dsp.Mel.apply bank (Array.make 10 1.)))

let test_mel_tone_selectivity () =
  (* a 1 kHz tone at 8 kHz puts most mel energy in a middle filter *)
  let n = 256 in
  let x =
    Array.init n (fun i -> Float.sin (2. *. Float.pi *. 1000. *. Float.of_int i /. 8000.))
  in
  let power, _ = Dsp.Fft.power_spectrum x in
  let bank = Dsp.Mel.create ~n_filters:16 ~n_fft:256 ~sample_rate:8000. () in
  let e, _ = Dsp.Mel.apply bank power in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > e.(!best) then best := i) e;
  Alcotest.(check bool) "peak is interior" true (!best > 2 && !best < 14)

let test_log_energies () =
  let out, _ = Dsp.Mel.log_energies [| 1.; Float.exp 1.; 0. |] in
  feq "log 1" 0. out.(0);
  feq "log e" 1. out.(1);
  Alcotest.(check bool) "log 0 clamped finite" true (Float.is_finite out.(2))

(* ---- DCT ---- *)

let test_dct_constant_signal () =
  (* a constant signal has only the 0th DCT coefficient *)
  let x = Array.make 16 2. in
  let c, _ = Dsp.Dct.dct_ii x in
  feq ~tol:1e-9 "dc coeff" (2. *. Float.sqrt 16.) c.(0);
  for k = 1 to 15 do
    feq ~tol:1e-9 "zero" 0. c.(k)
  done

let test_dct_orthonormal_roundtrip () =
  let rng = Prng.create 8 in
  let x = Array.init 32 (fun _ -> Prng.gaussian rng) in
  let c, _ = Dsp.Dct.dct_ii x in
  let back = Dsp.Dct.idct_ii c in
  arr_close ~tol:1e-9 "idct(dct(x))" x back

let test_dct_truncation () =
  let x = Array.init 32 (fun i -> Float.of_int i) in
  let c13, _ = Dsp.Dct.dct_ii ~n_out:13 x in
  Alcotest.(check int) "13 coeffs" 13 (Array.length c13);
  let full, _ = Dsp.Dct.dct_ii x in
  arr_close ~tol:1e-12 "prefix" c13 (Array.sub full 0 13)

(* ---- Wavelet ---- *)

let test_qmf_properties () =
  (* Daubechies-4: low-pass sums to sqrt 2, high-pass sums to 0 *)
  feq ~tol:1e-9 "low sum" (Float.sqrt 2.)
    (Array.fold_left ( +. ) 0. Dsp.Wavelet.qmf_low);
  feq ~tol:1e-9 "high sum" 0.
    (Array.fold_left ( +. ) 0. Dsp.Wavelet.qmf_high)

let test_wavelet_halves_rate () =
  let b = Dsp.Wavelet.create_branch Dsp.Wavelet.Low in
  let out, _ = Dsp.Wavelet.apply b (Array.make 64 1.) in
  Alcotest.(check int) "halved" 32 (Array.length out)

let test_wavelet_odd_frame_carry () =
  let b = Dsp.Wavelet.create_branch Dsp.Wavelet.Low in
  let o1, _ = Dsp.Wavelet.apply b (Array.make 5 1.) in
  let o2, _ = Dsp.Wavelet.apply b (Array.make 5 1.) in
  Alcotest.(check int) "total conserved" 5 (Array.length o1 + Array.length o2)

let test_wavelet_separates_bands () =
  (* a slow sine has much more low-band than high-band energy *)
  let n = 512 in
  let slow = Dsp.Siggen.sine ~sample_rate:256. ~freq:3. n in
  let lo_b = Dsp.Wavelet.create_branch Dsp.Wavelet.Low in
  let hi_b = Dsp.Wavelet.create_branch Dsp.Wavelet.High in
  let lo, _ = Dsp.Wavelet.apply lo_b slow in
  let hi, _ = Dsp.Wavelet.apply hi_b slow in
  let e a = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. a in
  Alcotest.(check bool) "low band dominates" true (e lo > 50. *. e hi)

let test_mag_with_scale () =
  let e, _ = Dsp.Wavelet.mag_with_scale ~gain:0.5 [| 3.; 4. |] in
  feq "scaled energy" 12.5 e

(* ---- SVM ---- *)

let test_svm_decision () =
  let svm = { Dsp.Svm.weights = [| 1.; -2. |]; bias = 0.5 } in
  let d, _ = Dsp.Svm.decision svm [| 2.; 1. |] in
  feq "w.x+b" 0.5 d;
  let c, _ = Dsp.Svm.classify svm [| 2.; 1. |] in
  Alcotest.(check bool) "positive" true c;
  Alcotest.check_raises "dim" (Invalid_argument "Svm.decision: dimension mismatch")
    (fun () -> ignore (Dsp.Svm.decision svm [| 1. |]))

let test_svm_train_separable () =
  let rng = Prng.create 12 in
  let sample label =
    let base = if label then 2. else -2. in
    (Array.init 4 (fun _ -> base +. (0.3 *. Prng.gaussian rng)), label)
  in
  let data = Array.init 200 (fun i -> sample (i mod 2 = 0)) in
  let svm = Dsp.Svm.train data in
  let errors =
    Array.fold_left
      (fun acc (x, label) ->
        let c, _ = Dsp.Svm.classify svm x in
        if c = label then acc else acc + 1)
      0 data
  in
  Alcotest.(check bool) "separable data learned" true (errors < 10)

let test_debounce () =
  let d = Dsp.Svm.Debounce.create ~k:3 in
  let fire = Dsp.Svm.Debounce.step d in
  Alcotest.(check (list bool)) "fires once at 3rd consecutive"
    [ false; false; true; false; false; false; false; true ]
    (List.map fire [ true; true; true; true; false; true; true; true ])

(* ---- signal generators ---- *)

let test_speech_gen_deterministic () =
  let g1 = Dsp.Siggen.Speech.create ~seed:42 () in
  let g2 = Dsp.Siggen.Speech.create ~seed:42 () in
  Alcotest.(check bool) "same frames" true
    (Dsp.Siggen.Speech.frame g1 100 = Dsp.Siggen.Speech.frame g2 100)

let test_speech_gen_range () =
  let g = Dsp.Siggen.Speech.create ~seed:1 () in
  let frame = Dsp.Siggen.Speech.frame g 8000 in
  Array.iter
    (fun s ->
      if s < -2048 || s > 2047 then Alcotest.failf "sample %d out of 12-bit range" s)
    frame

let test_speech_gen_voiced_louder () =
  let g = Dsp.Siggen.Speech.create ~seed:2 () in
  let voiced_e = ref 0. and quiet_e = ref 0. in
  let voiced_n = ref 0 and quiet_n = ref 0 in
  for _ = 1 to 200 do
    let f = Dsp.Siggen.Speech.frame g 200 in
    let e =
      Array.fold_left (fun a s -> a +. (Float.of_int s *. Float.of_int s)) 0. f
    in
    if Dsp.Siggen.Speech.is_voiced g then begin
      voiced_e := !voiced_e +. e;
      incr voiced_n
    end
    else begin
      quiet_e := !quiet_e +. e;
      incr quiet_n
    end
  done;
  Alcotest.(check bool) "saw both" true (!voiced_n > 0 && !quiet_n > 0);
  Alcotest.(check bool) "voiced louder" true
    (!voiced_e /. Float.of_int !voiced_n > 10. *. (!quiet_e /. Float.of_int !quiet_n))

let test_eeg_gen_seizure_energy () =
  let g = Dsp.Siggen.Eeg.create ~seed:3 ~n_channels:2 () in
  let ictal_e = ref 0. and normal_e = ref 0. in
  let ictal_n = ref 0 and normal_n = ref 0 in
  for _ = 1 to 40 do
    let ictal = Dsp.Siggen.Eeg.in_seizure g in
    let w = Dsp.Siggen.Eeg.window g 512 in
    let e = Array.fold_left (fun a x -> a +. (x *. x)) 0. w.(0) in
    if ictal then begin
      ictal_e := !ictal_e +. e;
      incr ictal_n
    end
    else begin
      normal_e := !normal_e +. e;
      incr normal_n
    end
  done;
  Alcotest.(check bool) "saw both phases" true (!ictal_n > 0 && !normal_n > 0);
  Alcotest.(check bool) "seizures carry extra energy" true
    (!ictal_e /. Float.of_int !ictal_n > 1.5 *. (!normal_e /. Float.of_int !normal_n))

(* property: FFT matches DFT on random sizes *)
let prop_fft_dft =
  QCheck.Test.make ~count:40 ~name:"fft = dft on random inputs"
    QCheck.(pair (int_range 0 100000) (int_range 2 6))
    (fun (seed, logn) ->
      let n = 1 lsl logn in
      let rng = Prng.create seed in
      let re = Array.init n (fun _ -> Prng.gaussian rng) in
      let im = Array.init n (fun _ -> Prng.gaussian rng) in
      let fre = Array.copy re and fim = Array.copy im in
      Dsp.Fft.forward fre fim;
      let dre, dim = Dsp.Fft.naive_dft re im in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Float.abs (fre.(i) -. dre.(i)) > 1e-7 then ok := false;
        if Float.abs (fim.(i) -. dim.(i)) > 1e-7 then ok := false
      done;
      !ok)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dsp"
    [
      ( "fft",
        [
          tc "matches naive dft" test_fft_vs_dft;
          tc "roundtrip" test_fft_roundtrip;
          tc "impulse" test_fft_impulse;
          tc "sine peak bin" test_fft_sine_peak;
          tc "rejects bad length" test_fft_rejects_bad_length;
          tc "parseval" test_fft_parseval;
          tc "next_pow2" test_next_pow2;
          QCheck_alcotest.to_alcotest prop_fft_dft;
        ] );
      ( "window",
        [
          tc "hamming shape" test_hamming_shape;
          tc "apply" test_window_apply;
          tc "preemphasis" test_preemphasis;
          tc "dc remove" test_dc_remove;
        ] );
      ( "fir",
        [
          tc "impulse response" test_fir_impulse_response;
          tc "streaming continuity" test_fir_streaming_continuity;
          tc "reset" test_fir_reset;
          tc "decimate" test_fir_decimate;
          tc "low-pass dc gain" test_fir_low_pass_dc_gain;
          tc "moving average" test_moving_average;
        ] );
      ( "mel",
        [
          tc "scale roundtrip" test_mel_scale_roundtrip;
          tc "bank energies" test_mel_bank_energies;
          tc "tone selectivity" test_mel_tone_selectivity;
          tc "log energies" test_log_energies;
        ] );
      ( "dct",
        [
          tc "constant signal" test_dct_constant_signal;
          tc "orthonormal roundtrip" test_dct_orthonormal_roundtrip;
          tc "truncation" test_dct_truncation;
        ] );
      ( "wavelet",
        [
          tc "qmf properties" test_qmf_properties;
          tc "halves rate" test_wavelet_halves_rate;
          tc "odd frame carry" test_wavelet_odd_frame_carry;
          tc "band separation" test_wavelet_separates_bands;
          tc "mag with scale" test_mag_with_scale;
        ] );
      ( "svm",
        [
          tc "decision" test_svm_decision;
          tc "training" test_svm_train_separable;
          tc "debounce" test_debounce;
        ] );
      ( "siggen",
        [
          tc "speech deterministic" test_speech_gen_deterministic;
          tc "speech 12-bit range" test_speech_gen_range;
          tc "voiced louder" test_speech_gen_voiced_louder;
          tc "eeg seizure energy" test_eeg_gen_seizure_energy;
        ] );
    ]
