test/test_wishbone.mli:
