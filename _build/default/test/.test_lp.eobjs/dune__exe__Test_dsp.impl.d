test/test_dsp.ml: Alcotest Array Dsp Float List Prng QCheck QCheck_alcotest
