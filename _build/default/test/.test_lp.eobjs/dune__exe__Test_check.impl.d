test/test_check.ml: Alcotest Array Certificate Check Dataflow Float Format Fuzz Gen List Lp Option Oracle Printf Prng QCheck QCheck_alcotest Shrink String Wishbone
