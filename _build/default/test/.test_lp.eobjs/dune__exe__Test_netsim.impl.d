test/test_netsim.ml: Alcotest Array Builder Dataflow Float Graph Int Netsim Profiler Value Workload
