test/test_extensions.ml: Aggregation Alcotest Apps Array Builder Dataflow Float Graph List Lp Mixed Movable Partitioner Printf Profiler Runtime Spec Three_tier Value Wishbone Workload
