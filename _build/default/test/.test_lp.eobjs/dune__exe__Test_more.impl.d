test/test_more.ml: Alcotest Apps Array Branch_bound Dataflow Float Format List Lp Netsim Printf Prng Problem Profiler QCheck QCheck_alcotest Simplex Solution String Unix Wishbone
