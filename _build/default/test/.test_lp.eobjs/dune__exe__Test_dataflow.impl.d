test/test_dataflow.ml: Alcotest Array Builder Dataflow Dot Float Graph List Op Printf Prng QCheck QCheck_alcotest Runtime String Value Workload
