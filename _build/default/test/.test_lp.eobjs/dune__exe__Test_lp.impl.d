test/test_lp.ml: Alcotest Apps Array Branch_bound Brute Float Heap List Lp Option Prng Problem QCheck QCheck_alcotest Simplex Solution Wishbone
