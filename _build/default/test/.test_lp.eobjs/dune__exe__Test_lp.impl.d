test/test_lp.ml: Alcotest Array Branch_bound Brute Float Heap List Lp Prng Problem QCheck QCheck_alcotest Simplex Solution
