test/test_profiler.ml: Alcotest Array Builder Dataflow Float Graph List Op Profiler Value Workload
