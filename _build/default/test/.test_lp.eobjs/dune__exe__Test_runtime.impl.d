test/test_runtime.ml: Alcotest Array Builder Dataflow Graph List Op Printf Prng QCheck QCheck_alcotest Runtime Value Workload
