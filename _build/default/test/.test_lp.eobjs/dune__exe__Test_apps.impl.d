test/test_apps.ml: Alcotest Apps Array Char Dataflow Dsp Float Graph List Op Profiler Runtime String Value Wishbone
