test/test_apps.ml: Alcotest Apps Array Char Dataflow Dsp Float Graph List Lp Op Profiler Runtime String Value Wishbone
