test/test_integration.ml: Alcotest Apps Array Cutpoints Dataflow Deploy Float Lazy List Lp Movable Netsim Partitioner Preprocess Printf Profiler Rate_search Spec Wishbone
