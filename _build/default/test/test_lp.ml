(* LP / ILP solver tests: hand-checked instances plus randomized
   comparison against exhaustive oracles. *)

open Lp

let check_close ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let solve_lp p =
  match Simplex.solve p with
  | Solution.Optimal s -> s
  | st -> Alcotest.failf "expected optimal, got %a" Solution.pp_status st

(* ---- basic LPs ---- *)

let test_lp_basic () =
  (* max 3x + 2y st x+y<=4, x+3y<=6 -> (4,0), obj 12 *)
  let p = Problem.create () in
  let x = Problem.add_var p and y = Problem.add_var p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 4.;
  Problem.add_constr p [ (x, 1.); (y, 3.) ] Problem.Le 6.;
  Problem.set_objective p Problem.Maximize [ (x, 3.); (y, 2.) ];
  let s = solve_lp p in
  check_close "objective" 12. s.objective;
  check_close "x" 4. s.x.(x);
  check_close "y" 0. s.x.(y)

let test_lp_degenerate () =
  (* multiple optimal bases; classic degeneracy *)
  let p = Problem.create () in
  let x = Problem.add_var p and y = Problem.add_var p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 1.;
  Problem.add_constr p [ (x, 1.) ] Problem.Le 1.;
  Problem.add_constr p [ (x, 2.); (y, 2.) ] Problem.Le 2.;
  Problem.set_objective p Problem.Maximize [ (x, 1.); (y, 1.) ];
  let s = solve_lp p in
  check_close "objective" 1. s.objective

let test_lp_equality () =
  (* min x + y st x + 2y = 3, x,y >= 0 -> y=1.5, obj 1.5 *)
  let p = Problem.create () in
  let x = Problem.add_var p and y = Problem.add_var p in
  Problem.add_constr p [ (x, 1.); (y, 2.) ] Problem.Eq 3.;
  Problem.set_objective p Problem.Minimize [ (x, 1.); (y, 1.) ];
  let s = solve_lp p in
  check_close "objective" 1.5 s.objective

let test_lp_negative_rhs () =
  (* constraints with negative rhs exercise the row-flip path *)
  let p = Problem.create () in
  let x = Problem.add_var ~lo:(-10.) ~hi:10. p in
  Problem.add_constr p [ (x, -1.) ] Problem.Le 5.;  (* x >= -5 *)
  Problem.set_objective p Problem.Minimize [ (x, 1.) ];
  let s = solve_lp p in
  check_close "x" (-5.) s.x.(x)

let test_lp_upper_bounds () =
  (* optimum at a variable's upper bound (bound-flip machinery) *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:3. p and y = Problem.add_var ~hi:2. p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 10.;
  Problem.set_objective p Problem.Maximize [ (x, 1.); (y, 5.) ];
  let s = solve_lp p in
  check_close "objective" 13. s.objective;
  check_close "x" 3. s.x.(x);
  check_close "y" 2. s.x.(y)

let test_lp_free_negative_lo () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:(-4.) ~hi:(-1.) p in
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  let s = solve_lp p in
  check_close "x" (-1.) s.x.(x)

let test_lp_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var ~hi:1. p in
  Problem.add_constr p [ (x, 1.) ] Problem.Ge 2.;
  match Simplex.solve p with
  | Solution.Infeasible -> ()
  | st -> Alcotest.failf "expected infeasible, got %a" Solution.pp_status st

let test_lp_unbounded () =
  let p = Problem.create () in
  let x = Problem.add_var p in
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  match Simplex.solve p with
  | Solution.Unbounded -> ()
  | st -> Alcotest.failf "expected unbounded, got %a" Solution.pp_status st

let test_lp_no_constraints () =
  (* optimum determined purely by bounds *)
  let p = Problem.create () in
  let x = Problem.add_var ~lo:2. ~hi:7. p in
  Problem.set_objective p Problem.Minimize [ (x, 3.) ];
  let s = solve_lp p in
  check_close "objective" 6. s.objective

let test_lp_fixed_var () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:2. ~hi:2. p in
  let y = Problem.add_var ~hi:5. p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 6.;
  Problem.set_objective p Problem.Maximize [ (y, 1.) ];
  let s = solve_lp p in
  check_close "y" 4. s.x.(y)

let test_lp_duplicate_terms () =
  (* duplicate variable indices in a constraint must be summed *)
  let p = Problem.create () in
  let x = Problem.add_var p in
  Problem.add_constr p [ (x, 1.); (x, 1.) ] Problem.Le 4.;  (* 2x <= 4 *)
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  let s = solve_lp p in
  check_close "x" 2. s.x.(x)

let test_lp_bound_override () =
  let p = Problem.create () in
  let x = Problem.add_var ~hi:10. p in
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  let s =
    match Simplex.solve ~lo:[| 0. |] ~hi:[| 3. |] p with
    | Solution.Optimal s -> s
    | st -> Alcotest.failf "expected optimal, got %a" Solution.pp_status st
  in
  check_close "x" 3. s.x.(0);
  (* the original problem is untouched *)
  let s2 = solve_lp p in
  check_close "x orig" 10. s2.x.(0)

let test_lp_conflicting_override () =
  let p = Problem.create () in
  let _ = Problem.add_var ~hi:10. p in
  match Simplex.solve ~lo:[| 5. |] ~hi:[| 3. |] p with
  | Solution.Infeasible -> ()
  | st -> Alcotest.failf "expected infeasible, got %a" Solution.pp_status st

let test_lp_mixed_scale () =
  (* a vacuous huge budget next to a tight small one: the regression
     that once let infeasible branch-and-bound children pass *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:1. p and y = Problem.add_var ~hi:1. p in
  Problem.add_constr p [ (x, 2.); (y, 2.) ] Problem.Le 2.;
  Problem.add_constr p [ (x, 8.); (y, 4.) ] Problem.Le 1e9;
  Problem.set_objective p Problem.Maximize [ (x, 1.); (y, 1.) ];
  let s = solve_lp p in
  check_close "objective" 1. s.objective;
  match Simplex.solve ~lo:[| 1.; 1. |] ~hi:[| 1.; 1. |] p with
  | Solution.Infeasible -> ()
  | st -> Alcotest.failf "expected infeasible, got %a" Solution.pp_status st

(* ---- ILP ---- *)

let solve_ilp p =
  match Branch_bound.solve p with
  | Solution.Optimal s, stats -> (s, stats)
  | st, _ -> Alcotest.failf "expected optimal, got %a" Solution.pp_status st

let test_ilp_knapsack () =
  let p = Problem.create () in
  let a = Problem.add_var ~hi:1. ~integer:true p in
  let b = Problem.add_var ~hi:1. ~integer:true p in
  let c = Problem.add_var ~hi:1. ~integer:true p in
  Problem.add_constr p [ (a, 5.); (b, 4.); (c, 3.) ] Problem.Le 8.;
  Problem.set_objective p Problem.Maximize [ (a, 10.); (b, 6.); (c, 4.) ];
  let s, stats = solve_ilp p in
  check_close "objective" 14. s.objective;
  Alcotest.(check bool) "proved" true stats.proved_optimal

let test_ilp_integrality_matters () =
  (* LP relaxation is 2.5; integer optimum is 2 *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:10. ~integer:true p in
  Problem.add_constr p [ (x, 2.) ] Problem.Le 5.;
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  let s, _ = solve_ilp p in
  check_close "x" 2. s.x.(x)

let test_ilp_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var ~hi:1. ~integer:true p in
  let y = Problem.add_var ~hi:1. ~integer:true p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Ge 3.;
  match Branch_bound.solve p with
  | Solution.Infeasible, _ -> ()
  | st, _ -> Alcotest.failf "expected infeasible, got %a" Solution.pp_status st

let test_ilp_gap_between_lp_and_ip () =
  (* equality forcing x + 2y = 3 with binaries: only (1,1) works *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:1. ~integer:true p in
  let y = Problem.add_var ~hi:1. ~integer:true p in
  Problem.add_constr p [ (x, 1.); (y, 2.) ] Problem.Eq 3.;
  Problem.set_objective p Problem.Minimize [ (x, 1.); (y, 1.) ];
  let s, _ = solve_ilp p in
  check_close "x" 1. s.x.(x);
  check_close "y" 1. s.x.(y)

let test_ilp_mixed_integer () =
  (* one integer, one continuous *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:10. ~integer:true p in
  let y = Problem.add_var ~hi:10. p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 4.5;
  Problem.set_objective p Problem.Maximize [ (x, 2.); (y, 1.) ];
  let s, _ = solve_ilp p in
  check_close "objective" 8.5 s.objective;
  check_close "x" 4. s.x.(x)

let test_ilp_incumbent_trace () =
  let p = Problem.create () in
  let vars = Array.init 8 (fun _ -> Problem.add_var ~hi:1. ~integer:true p) in
  Problem.add_constr p
    (Array.to_list (Array.map (fun v -> (v, 1.)) vars))
    Problem.Le 4.;
  Problem.set_objective p Problem.Maximize
    (Array.to_list (Array.mapi (fun i v -> (v, Float.of_int (i + 1))) vars));
  let s, stats = solve_ilp p in
  check_close "objective" 26. s.objective;
  Alcotest.(check bool) "trace nonempty" true (stats.incumbent_trace <> []);
  Alcotest.(check bool)
    "incumbent time <= total" true
    (stats.time_to_incumbent <= stats.time_total +. 1e-9)

(* ---- randomized: B&B vs brute force ---- *)

let random_problem seed =
  let rng = Prng.create seed in
  let p = Problem.create () in
  let n = 3 + Prng.int rng 6 in
  let vars =
    Array.init n (fun _ ->
        Problem.add_var ~hi:(Float.of_int (1 + Prng.int rng 3)) ~integer:true p)
  in
  let m = 1 + Prng.int rng 4 in
  for _ = 1 to m do
    let terms =
      Array.to_list
        (Array.map (fun v -> (v, Float.of_int (Prng.int rng 7 - 3))) vars)
    in
    let sense = if Prng.bool rng 0.8 then Problem.Le else Problem.Ge in
    let rhs = Float.of_int (Prng.int rng 10 - 2) in
    Problem.add_constr p terms sense rhs
  done;
  let dir = if Prng.bool rng 0.5 then Problem.Maximize else Problem.Minimize in
  Problem.set_objective p dir
    (Array.to_list
       (Array.map (fun v -> (v, Float.of_int (Prng.int rng 11 - 5))) vars));
  p

let prop_bb_matches_brute =
  QCheck.Test.make ~count:300 ~name:"branch&bound matches brute force"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_problem seed in
      let bb, _ = Branch_bound.solve p in
      let brute = Brute.solve p in
      match (bb, brute) with
      | Solution.Optimal a, Solution.Optimal b ->
          if Float.abs (a.objective -. b.objective) > 1e-5 then
            QCheck.Test.fail_reportf "seed %d: bb=%.9g brute=%.9g" seed
              a.objective b.objective
          else if Problem.constraint_violation p a.x > 1e-5 then
            QCheck.Test.fail_reportf "seed %d: bb solution infeasible" seed
          else true
      | Solution.Infeasible, Solution.Infeasible -> true
      | Solution.Unbounded, Solution.Unbounded -> true
      | a, b ->
          QCheck.Test.fail_reportf "seed %d: bb=%a brute=%a" seed
            Solution.pp_status a Solution.pp_status b)

let random_lp seed =
  let rng = Prng.create seed in
  let p = Problem.create () in
  let n = 2 + Prng.int rng 5 in
  let vars =
    Array.init n (fun _ -> Problem.add_var ~hi:(Prng.uniform rng 1. 10.) p)
  in
  for _ = 1 to 1 + Prng.int rng 4 do
    let terms =
      Array.to_list (Array.map (fun v -> (v, Prng.uniform rng (-3.) 3.)) vars)
    in
    Problem.add_constr p terms Problem.Le (Prng.uniform rng 0. 10.)
  done;
  Problem.set_objective p Problem.Maximize
    (Array.to_list (Array.map (fun v -> (v, Prng.uniform rng (-2.) 5.)) vars));
  p

let prop_lp_feasible_optimal =
  QCheck.Test.make ~count:300 ~name:"simplex returns feasible points"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_lp seed in
      match Simplex.solve p with
      | Solution.Optimal s ->
          if Problem.constraint_violation p s.x > 1e-5 then
            QCheck.Test.fail_reportf "seed %d: violation %g" seed
              (Problem.constraint_violation p s.x)
          else Float.abs (Problem.objective_value p s.x -. s.objective) < 1e-5
      | Solution.Infeasible -> true
      | Solution.Unbounded | Solution.Iteration_limit -> true)

let prop_lp_relaxation_bounds_ilp =
  QCheck.Test.make ~count:200 ~name:"LP relaxation bounds the ILP optimum"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_problem seed in
      match (Simplex.solve p, Branch_bound.solve p) with
      | Solution.Optimal lp, (Solution.Optimal ip, _) -> (
          match Problem.direction p with
          | Problem.Maximize -> lp.objective >= ip.objective -. 1e-5
          | Problem.Minimize -> lp.objective <= ip.objective +. 1e-5)
      | _ -> true)

(* ---- pqueue ---- *)

let test_pqueue_order () =
  let q = Heap.Pqueue.create () in
  let rng = Prng.create 9 in
  let items = List.init 500 (fun i -> (Prng.float rng, i)) in
  List.iter (fun (k, v) -> Heap.Pqueue.push q k v) items;
  Alcotest.(check int) "length" 500 (Heap.Pqueue.length q);
  let rec drain last acc =
    match Heap.Pqueue.pop q with
    | None -> acc
    | Some (k, _) ->
        if k < last then Alcotest.fail "heap order violated";
        drain k (acc + 1)
  in
  Alcotest.(check int) "drained" 500 (drain neg_infinity 0)

let test_pqueue_empty () =
  let q = Heap.Pqueue.create () in
  Alcotest.(check bool) "empty" true (Heap.Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Heap.Pqueue.pop q = None);
  Alcotest.(check bool) "min none" true (Heap.Pqueue.min_key q = None)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          tc "basic max" test_lp_basic;
          tc "degenerate" test_lp_degenerate;
          tc "equality" test_lp_equality;
          tc "negative rhs" test_lp_negative_rhs;
          tc "upper bounds" test_lp_upper_bounds;
          tc "negative domain" test_lp_free_negative_lo;
          tc "infeasible" test_lp_infeasible;
          tc "unbounded" test_lp_unbounded;
          tc "no constraints" test_lp_no_constraints;
          tc "fixed variable" test_lp_fixed_var;
          tc "duplicate terms" test_lp_duplicate_terms;
          tc "bound override" test_lp_bound_override;
          tc "conflicting override" test_lp_conflicting_override;
          tc "mixed scale budgets" test_lp_mixed_scale;
        ] );
      ( "branch_bound",
        [
          tc "knapsack" test_ilp_knapsack;
          tc "integrality matters" test_ilp_integrality_matters;
          tc "infeasible" test_ilp_infeasible;
          tc "equality binaries" test_ilp_gap_between_lp_and_ip;
          tc "mixed integer" test_ilp_mixed_integer;
          tc "incumbent trace" test_ilp_incumbent_trace;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bb_matches_brute;
          QCheck_alcotest.to_alcotest prop_lp_feasible_optimal;
          QCheck_alcotest.to_alcotest prop_lp_relaxation_bounds_ilp;
        ] );
      ( "pqueue",
        [ tc "heap order" test_pqueue_order; tc "empty" test_pqueue_empty ] );
    ]
