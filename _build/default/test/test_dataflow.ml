(* Dataflow IR tests: values, workloads, graph construction, builder
   DSL, dot output. *)

open Dataflow

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let passthrough () =
  Op.stateless_instance (fun v -> ([ v ], Workload.make ~call_ops:1. ()))

let mk_op ?(namespace = Op.Node) ?(stateful = false) ?(side_effect = Op.Pure)
    id name =
  { Op.id; name; kind = "t"; namespace; stateful; side_effect;
    fresh = passthrough }

(* ---- Value ---- *)

let test_value_sizes () =
  Alcotest.(check int) "unit" 0 (Value.size_bytes Value.Unit);
  Alcotest.(check int) "bool" 1 (Value.size_bytes (Value.Bool true));
  Alcotest.(check int) "int" 4 (Value.size_bytes (Value.Int 7));
  Alcotest.(check int) "float" 4 (Value.size_bytes (Value.Float 1.5));
  Alcotest.(check int) "string" 7 (Value.size_bytes (Value.String "hello"));
  Alcotest.(check int) "int16 arr"
    (2 + (2 * 200))
    (Value.size_bytes (Value.Int16_arr (Array.make 200 0)));
  Alcotest.(check int) "float arr"
    (2 + (4 * 32))
    (Value.size_bytes (Value.Float_arr (Array.make 32 0.)));
  Alcotest.(check int) "tuple"
    (1 + 4 + 1)
    (Value.size_bytes (Value.Tuple [ Value.Float 0.; Value.Bool false ]))

let test_value_equal () =
  let a = Value.Tuple [ Value.Int 1; Value.Float_arr [| 1.; 2. |] ] in
  let b = Value.Tuple [ Value.Int 1; Value.Float_arr [| 1.; 2. |] ] in
  let c = Value.Tuple [ Value.Int 1; Value.Float_arr [| 1.; 2.1 |] ] in
  Alcotest.(check bool) "equal" true (Value.equal a b);
  Alcotest.(check bool) "not equal" false (Value.equal a c);
  Alcotest.(check bool) "close" true (Value.close ~tol:0.2 a c);
  Alcotest.(check bool) "not close" false (Value.close ~tol:0.01 a c)

let test_value_coercions () =
  let f = Value.float_arr (Value.Int16_arr [| 1; -2; 3 |]) in
  Alcotest.(check (float 1e-9)) "coerced" (-2.) f.(1);
  Alcotest.check_raises "bad coercion"
    (Invalid_argument "Value.float_arr: not an array value") (fun () ->
      ignore (Value.float_arr (Value.Int 3)))

(* ---- Workload ---- *)

let test_workload_algebra () =
  let a = Workload.make ~int_ops:1. ~float_ops:2. () in
  let b = Workload.make ~float_ops:3. ~mem_ops:4. () in
  let s = Workload.add a b in
  Alcotest.(check (float 0.)) "float add" 5. s.Workload.float_ops;
  Alcotest.(check (float 0.)) "mem add" 4. s.Workload.mem_ops;
  let d = Workload.scale 2. s in
  Alcotest.(check (float 0.)) "scaled" 10. d.Workload.float_ops;
  Alcotest.(check (float 0.)) "total" (Workload.total d)
    (d.Workload.int_ops +. d.Workload.float_ops +. d.Workload.mem_ops);
  let l = Workload.loop ~iters:10 ~body:a in
  Alcotest.(check (float 0.)) "loop floats" 20. l.Workload.float_ops;
  Alcotest.(check (float 0.)) "loop branches" 10. l.Workload.branch_ops

(* ---- Graph ---- *)

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 *)
  let ops = Array.init 4 (fun i -> mk_op i (Printf.sprintf "n%d" i)) in
  Graph.make ops [ (0, 1, 0); (0, 2, 0); (1, 3, 0); (2, 3, 1) ]

let test_graph_basic () =
  let g = diamond () in
  Alcotest.(check int) "ops" 4 (Graph.n_ops g);
  Alcotest.(check int) "edges" 4 (Graph.n_edges g);
  Alcotest.(check (list int)) "sources" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Graph.sinks g);
  Alcotest.(check int) "out deg" 2 (Graph.out_degree g 0);
  Alcotest.(check int) "in deg" 2 (Graph.in_degree g 3)

let test_graph_topo () =
  let g = diamond () in
  let order = Graph.topo_order g in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Array.iter
    (fun (e : Graph.edge) ->
      Alcotest.(check bool) "topo respects edges" true (pos.(e.src) < pos.(e.dst)))
    (Graph.edges g)

let test_graph_cycle_rejected () =
  let ops = Array.init 2 (fun i -> mk_op i (Printf.sprintf "n%d" i)) in
  Alcotest.check_raises "cycle" (Invalid_argument "Graph.make: graph has a cycle")
    (fun () -> ignore (Graph.make ops [ (0, 1, 0); (1, 0, 0) ]))

let test_graph_bad_ports () =
  let ops = Array.init 3 (fun i -> mk_op i (Printf.sprintf "n%d" i)) in
  (* vertex 2's input ports are 0 and 2: not dense *)
  Alcotest.check_raises "ports"
    (Invalid_argument "Graph.make: vertex 2 input ports not dense") (fun () ->
      ignore (Graph.make ops [ (0, 2, 0); (1, 2, 2) ]))

let test_graph_reachability () =
  let g = diamond () in
  let desc = Graph.descendants g [ 1 ] in
  Alcotest.(check bool) "1 reaches 3" true desc.(3);
  Alcotest.(check bool) "1 not 2" false desc.(2);
  let anc = Graph.ancestors g [ 3 ] in
  Alcotest.(check bool) "3 from 0" true anc.(0);
  Alcotest.(check bool) "all ancestors" true (anc.(1) && anc.(2))

let test_graph_pipeline_detection () =
  let ops = Array.init 3 (fun i -> mk_op i (Printf.sprintf "n%d" i)) in
  let pipe = Graph.make ops [ (0, 1, 0); (1, 2, 0) ] in
  Alcotest.(check bool) "pipeline" true (Graph.is_linear_pipeline pipe);
  Alcotest.(check bool) "diamond is not" false
    (Graph.is_linear_pipeline (diamond ()))

let test_graph_edge_ids_dense () =
  let g = diamond () in
  Array.iteri
    (fun i (e : Graph.edge) -> Alcotest.(check int) "eid" i e.eid)
    (Graph.edges g)

(* ---- Builder ---- *)

let test_builder_namespace () =
  let b = Builder.create () in
  let src = Builder.in_node b (fun () -> Builder.source b ~name:"s" ()) in
  let mapped = Builder.map b ~name:"m" (fun v -> (v, Workload.zero)) src in
  Builder.sink b ~name:"out" mapped;
  let g = Builder.build b in
  Alcotest.(check int) "three ops" 3 (Graph.n_ops g);
  Alcotest.(check bool) "source in node ns" true
    ((Graph.op g (Builder.op_id src)).Op.namespace = Op.Node);
  Alcotest.(check bool) "map in server ns" true
    ((Graph.op g (Builder.op_id mapped)).Op.namespace = Op.Server);
  Alcotest.(check bool) "source pinned" true
    (Op.is_pinned (Graph.op g (Builder.op_id src)))

let test_builder_namespace_restored_on_exception () =
  let b = Builder.create () in
  (try Builder.in_node b (fun () -> failwith "boom") with Failure _ -> ());
  let s = Builder.source b ~name:"after" () in
  Builder.sink b ~name:"k" s;
  let g = Builder.build b in
  Alcotest.(check bool) "namespace restored" true
    ((Graph.op g (Builder.op_id s)).Op.namespace = Op.Server
    || (Graph.op g (Builder.op_id s)).Op.side_effect = Op.Sensor_input)

let test_builder_reuse_rejected () =
  let b = Builder.create () in
  let s = Builder.source b ~name:"s" () in
  Builder.sink b ~name:"k" s;
  ignore (Builder.build b);
  Alcotest.check_raises "rebuild" (Invalid_argument "Builder: already built")
    (fun () -> ignore (Builder.build b))

let test_builder_unknown_stream () =
  (* a stream handle from a bigger builder is rejected by a smaller one *)
  let big = Builder.create () in
  let s0 = Builder.source big ~name:"a" () in
  let foreign = Builder.map big ~name:"b" (fun v -> (v, Workload.zero)) s0 in
  let b = Builder.create () in
  Alcotest.check_raises "foreign stream"
    (Invalid_argument "Builder.iterate: unknown stream") (fun () ->
      ignore (Builder.iterate b ~name:"bad" ~fresh:passthrough [ foreign ]))

let test_builder_multi_input_ports () =
  let b = Builder.create () in
  let s1 = Builder.source b ~name:"a" () in
  let s2 = Builder.source b ~name:"b" () in
  let seen = ref [] in
  let zip =
    Builder.iterate b ~name:"zip"
      ~fresh:(fun () ->
        {
          Op.work =
            (fun ~port v ->
              seen := (port, v) :: !seen;
              ([], Workload.zero));
          reset = (fun () -> ());
        })
      [ s1; s2 ]
  in
  let g = Builder.build b in
  let exec = Runtime.Exec.full g in
  ignore (Runtime.Exec.fire exec ~op:(Builder.op_id s1) ~port:0 (Value.Int 1));
  ignore (Runtime.Exec.fire exec ~op:(Builder.op_id s2) ~port:0 (Value.Int 2));
  ignore zip;
  Alcotest.(check bool) "ports distinguish inputs" true
    (List.mem (0, Value.Int 1) !seen && List.mem (1, Value.Int 2) !seen)

(* ---- Dot ---- *)

let test_dot_render () =
  let g = diamond () in
  let dot =
    Dot.render
      ~vertex_attrs:(fun i ->
        [ ("fillcolor", Dot.heat_color (Float.of_int i /. 3.)) ])
      ~edge_attrs:(fun e -> [ ("label", string_of_int e.Graph.eid) ])
      g
  in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "has node" true (contains dot "n0");
  Alcotest.(check bool) "has edge" true (contains dot "n0 -> n1")

let test_dot_escaping () =
  let ops = [| mk_op 0 "weird\"name" |] in
  let g = Graph.make ops [] in
  let dot = Dot.render g in
  Alcotest.(check bool) "escaped quote" true (contains dot "\\\"")

let test_heat_color_range () =
  List.iter
    (fun f ->
      let c = Dot.heat_color f in
      Alcotest.(check bool) "hsv triple" true (String.length c > 5))
    [ -1.; 0.; 0.5; 1.; 2. ];
  Alcotest.(check string) "hot is red hue" "0.000 0.8 0.95" (Dot.heat_color 1.)

(* randomized: builder graphs are always valid DAGs *)
let prop_builder_dag =
  QCheck.Test.make ~count:100 ~name:"builder output is a valid DAG"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let b = Builder.create () in
      let streams = ref [ Builder.source b ~name:"s" () ] in
      let n = 3 + Prng.int rng 20 in
      for i = 0 to n - 1 do
        let input = List.nth !streams (Prng.int rng (List.length !streams)) in
        let s =
          Builder.map b ~name:(Printf.sprintf "m%d" i)
            (fun v -> (v, Workload.zero))
            input
        in
        streams := s :: !streams
      done;
      Builder.sink b ~name:"out" (List.hd !streams);
      let g = Builder.build b in
      let order = Graph.topo_order g in
      Array.length order = Graph.n_ops g)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dataflow"
    [
      ( "value",
        [
          tc "wire sizes" test_value_sizes;
          tc "equality" test_value_equal;
          tc "coercions" test_value_coercions;
        ] );
      ("workload", [ tc "algebra" test_workload_algebra ]);
      ( "graph",
        [
          tc "basics" test_graph_basic;
          tc "topological order" test_graph_topo;
          tc "cycle rejected" test_graph_cycle_rejected;
          tc "bad ports rejected" test_graph_bad_ports;
          tc "reachability" test_graph_reachability;
          tc "pipeline detection" test_graph_pipeline_detection;
          tc "edge ids dense" test_graph_edge_ids_dense;
        ] );
      ( "builder",
        [
          tc "namespaces" test_builder_namespace;
          tc "namespace restored on exception"
            test_builder_namespace_restored_on_exception;
          tc "reuse rejected" test_builder_reuse_rejected;
          tc "unknown stream" test_builder_unknown_stream;
          tc "multi-input ports" test_builder_multi_input_ports;
          QCheck_alcotest.to_alcotest prop_builder_dag;
        ] );
      ( "dot",
        [
          tc "render" test_dot_render;
          tc "escaping" test_dot_escaping;
          tc "heat colors" test_heat_color_range;
        ] );
    ]
