(* Runtime engine tests: depth-first traversal semantics, crossing
   detection, per-node state replication, partition invariance. *)

open Dataflow

let add_one v =
  match v with
  | Value.Int i -> (Value.Int (i + 1), Workload.make ~int_ops:1. ())
  | _ -> invalid_arg "expected int"

let build_pipeline n =
  (* source -> inc^n -> sink *)
  let b = Builder.create () in
  let src = ref 0 in
  Builder.in_node b (fun () ->
      let s0 = Builder.source b ~name:"src" () in
      src := Builder.op_id s0;
      let rec chain s i =
        if i = 0 then s
        else chain (Builder.map b ~name:(Printf.sprintf "inc%d" i) add_one s) (i - 1)
      in
      let last = chain s0 n in
      Builder.sink b ~name:"sink" last);
  (Builder.build b, !src)

let test_full_traversal () =
  let g, src = build_pipeline 3 in
  let exec = Runtime.Exec.full g in
  let fired = Runtime.Exec.fire exec ~op:src ~port:0 (Value.Int 0) in
  Alcotest.(check int) "no crossings" 0 (List.length fired.crossings);
  Alcotest.(check (list bool)) "sink got 3" [ true ]
    (List.map (fun v -> Value.equal v (Value.Int 3)) fired.sink_values);
  Alcotest.(check int) "sink count" 1 (Runtime.Exec.sink_count exec);
  (* every op fired exactly once *)
  for i = 0 to Graph.n_ops g - 1 do
    Alcotest.(check int) "fires" 1 (Runtime.Exec.op_fires exec i)
  done

let test_edge_stats () =
  let g, src = build_pipeline 2 in
  let exec = Runtime.Exec.full g in
  for i = 0 to 9 do
    ignore (Runtime.Exec.fire exec ~op:src ~port:0 (Value.Int i))
  done;
  Array.iter
    (fun (e : Graph.edge) ->
      Alcotest.(check int) "elements" 10 (Runtime.Exec.edge_elements exec e.eid);
      Alcotest.(check int) "bytes" 40 (Runtime.Exec.edge_bytes exec e.eid))
    (Graph.edges g)

let test_crossing_detection () =
  let g, src = build_pipeline 3 in
  (* put source + first inc on the node: one crossing edge *)
  let order = Graph.topo_order g in
  let node_set = [ order.(0); order.(1) ] in
  let exec = Runtime.Exec.create ~member:(fun i -> List.mem i node_set) g in
  let fired = Runtime.Exec.fire exec ~op:src ~port:0 (Value.Int 0) in
  Alcotest.(check int) "one crossing" 1 (List.length fired.crossings);
  let c = List.hd fired.crossings in
  Alcotest.(check bool) "crossing carries inc1 output" true
    (Value.equal c.Runtime.Exec.value (Value.Int 1));
  Alcotest.(check int) "no sink on node side" 0 (List.length fired.sink_values)

let test_fire_nonmember_rejected () =
  let g, src = build_pipeline 1 in
  let exec = Runtime.Exec.create ~member:(fun i -> i <> src) g in
  Alcotest.check_raises "not a member"
    (Invalid_argument "Exec.fire: operator is not a member of this partition")
    (fun () -> ignore (Runtime.Exec.fire exec ~op:src ~port:0 Value.Unit))

let build_counter_graph () =
  (* stateful counter: emits the number of elements seen so far *)
  let b = Builder.create () in
  let src = ref 0 in
  Builder.in_node b (fun () ->
      let s0 = Builder.source b ~name:"src" () in
      src := Builder.op_id s0;
      let counted =
        Builder.stateful b ~name:"count"
          ~init:(fun () ->
            let n = ref 0 in
            fun ~port:_ _ ->
              incr n;
              ([ Value.Int !n ], Workload.make ~int_ops:1. ()))
          [ s0 ]
      in
      Builder.sink b ~name:"sink" counted);
  (Builder.build b, !src)

let test_stateful_state_persists () =
  let g, src = build_counter_graph () in
  let exec = Runtime.Exec.full g in
  let out i = (Runtime.Exec.fire exec ~op:src ~port:0 (Value.Int i)).sink_values in
  Alcotest.(check bool) "1st" true (out 0 = [ Value.Int 1 ]);
  Alcotest.(check bool) "2nd" true (out 0 = [ Value.Int 2 ]);
  Runtime.Exec.reset exec;
  Alcotest.(check bool) "after reset" true (out 0 = [ Value.Int 1 ])

let test_replicated_state_per_node () =
  (* a replicated stateful operator on the "server" keeps one counter
     per node id: the per-node state table of §2.1.1 *)
  let g, src = build_counter_graph () in
  let exec =
    Runtime.Exec.create
      ~replicated:(fun i -> (Graph.op g i).Op.namespace = Op.Node)
      ~member:(fun _ -> true)
      g
  in
  let out node = (Runtime.Exec.fire ~node exec ~op:src ~port:0 Value.Unit).sink_values in
  Alcotest.(check bool) "node 0 first" true (out 0 = [ Value.Int 1 ]);
  Alcotest.(check bool) "node 0 second" true (out 0 = [ Value.Int 2 ]);
  Alcotest.(check bool) "node 1 has fresh state" true (out 1 = [ Value.Int 1 ]);
  Alcotest.(check bool) "node 0 unaffected" true (out 0 = [ Value.Int 3 ])

let test_unreplicated_state_shared () =
  let g, src = build_counter_graph () in
  let exec = Runtime.Exec.create ~member:(fun _ -> true) g in
  let out node = (Runtime.Exec.fire ~node exec ~op:src ~port:0 Value.Unit).sink_values in
  Alcotest.(check bool) "node 0" true (out 0 = [ Value.Int 1 ]);
  Alcotest.(check bool) "node 1 shares the instance" true (out 1 = [ Value.Int 2 ])

(* ---- Splitrun ---- *)

let test_splitrun_matches_full () =
  let g, src = build_pipeline 4 in
  let order = Graph.topo_order g in
  (* cut after 2 ops *)
  let node_set = [ order.(0); order.(1) ] in
  let split = Runtime.Splitrun.create ~node_of:(fun i -> List.mem i node_set) g in
  let outs = Runtime.Splitrun.inject split ~source:src (Value.Int 10) in
  Alcotest.(check bool) "sink value" true (outs = [ Value.Int 14 ]);
  let elems, bytes = Runtime.Splitrun.crossing_traffic split in
  Alcotest.(check int) "one crossing element" 1 elems;
  Alcotest.(check int) "crossing bytes" 4 bytes

let test_splitrun_source_must_be_on_node () =
  let g, src = build_pipeline 1 in
  let split = Runtime.Splitrun.create ~node_of:(fun _ -> false) g in
  Alcotest.check_raises "source misplaced"
    (Invalid_argument "Splitrun.inject: source operator is not on the node")
    (fun () -> ignore (Runtime.Splitrun.inject split ~source:src Value.Unit))

let test_splitrun_multi_node_isolation () =
  let g, src = build_counter_graph () in
  (* counter relocated to the server: replicated per node *)
  let split =
    Runtime.Splitrun.create ~n_nodes:2 ~node_of:(fun i -> i = src) g
  in
  let o1 = Runtime.Splitrun.inject ~node:0 split ~source:src Value.Unit in
  let o2 = Runtime.Splitrun.inject ~node:1 split ~source:src Value.Unit in
  let o3 = Runtime.Splitrun.inject ~node:0 split ~source:src Value.Unit in
  Alcotest.(check bool) "n0 w1" true (o1 = [ Value.Int 1 ]);
  Alcotest.(check bool) "n1 w1 (own state)" true (o2 = [ Value.Int 1 ]);
  Alcotest.(check bool) "n0 w2" true (o3 = [ Value.Int 2 ])

(* partition invariance: for any cut of a pipeline, outputs equal the
   unpartitioned run (lossless channel) *)
let prop_partition_invariance =
  QCheck.Test.make ~count:60 ~name:"any pipeline cut preserves semantics"
    QCheck.(pair (int_range 1 6) (int_range 0 100000))
    (fun (len, seed) ->
      let g, src = build_pipeline len in
      let order = Graph.topo_order g in
      let n = Graph.n_ops g in
      let rng = Prng.create seed in
      let k = 1 + Prng.int rng (n - 1) in
      let node_set = Array.sub order 0 k in
      let full = Runtime.Exec.full g in
      let split =
        Runtime.Splitrun.create
          ~node_of:(fun i -> Array.exists (( = ) i) node_set)
          g
      in
      let inputs = List.init 5 (fun i -> Value.Int (Prng.int rng 100 + i)) in
      List.for_all
        (fun v ->
          let a = (Runtime.Exec.fire full ~op:src ~port:0 v).sink_values in
          let b = Runtime.Splitrun.inject split ~source:src v in
          List.length a = List.length b && List.for_all2 Value.equal a b)
        inputs)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "runtime"
    [
      ( "exec",
        [
          tc "full traversal" test_full_traversal;
          tc "edge statistics" test_edge_stats;
          tc "crossing detection" test_crossing_detection;
          tc "non-member rejected" test_fire_nonmember_rejected;
          tc "stateful persistence + reset" test_stateful_state_persists;
          tc "replicated per-node state" test_replicated_state_per_node;
          tc "unreplicated shared state" test_unreplicated_state_shared;
        ] );
      ( "splitrun",
        [
          tc "matches full run" test_splitrun_matches_full;
          tc "source placement" test_splitrun_source_must_be_on_node;
          tc "multi-node isolation" test_splitrun_multi_node_isolation;
          QCheck_alcotest.to_alcotest prop_partition_invariance;
        ] );
    ]
