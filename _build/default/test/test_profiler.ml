(* Profiler tests: platform cost model, trace collection, rate
   scaling, peak vs mean, reports. *)

open Dataflow

let feq ?(tol = 1e-9) = Alcotest.(check (float tol))

(* a pipeline where each stage does a known workload and known data
   reduction *)
let build_known () =
  let b = Builder.create () in
  let src = ref 0 in
  Builder.in_node b (fun () ->
      let s0 = Builder.source b ~name:"src" () in
      src := Builder.op_id s0;
      let heavy =
        Builder.map b ~name:"heavy"
          (fun v ->
            (* emits half the input array, 1000 float ops *)
            let x = Value.float_arr v in
            let out = Array.sub x 0 (Array.length x / 2) in
            (Value.Float_arr out, Workload.make ~float_ops:1000. ()))
          s0
      in
      let light =
        Builder.map b ~name:"light"
          (fun v -> (v, Workload.make ~int_ops:10. ()))
          heavy
      in
      Builder.sink b ~name:"sink" light);
  (Builder.build b, !src)

let profile_known ?(rate = 10.) ?(duration = 10.) () =
  let g, src = build_known () in
  let events =
    Profiler.Profile.Trace.periodic ~source:src ~rate ~duration ~gen:(fun _ ->
        Value.Float_arr (Array.make 64 1.))
  in
  (g, src, Profiler.Profile.collect ~duration g events)

(* ---- platform model ---- *)

let test_platform_cycles () =
  let w = Workload.make ~int_ops:10. ~float_ops:5. ~trans_ops:1. () in
  let p = Profiler.Platform.tmote_sky in
  feq "cycles"
    ((10. *. p.cycles_int) +. (5. *. p.cycles_float) +. (1. *. p.cycles_trans))
    (Profiler.Platform.cycles p w);
  feq "seconds"
    (Profiler.Platform.cycles p w *. p.overhead /. p.clock_hz)
    (Profiler.Platform.seconds p w)

let test_platform_float_penalty_ordering () =
  (* the mote pays far more for float work than the server; int work
     is much closer - Figure 8's premise *)
  let floats = Workload.make ~float_ops:1000. () in
  let ints = Workload.make ~int_ops:1000. () in
  let ratio p w =
    Profiler.Platform.seconds p w
    /. Profiler.Platform.seconds Profiler.Platform.xeon_server w
  in
  Alcotest.(check bool) "float gap >> int gap" true
    (ratio Profiler.Platform.tmote_sky floats
    > 10. *. ratio Profiler.Platform.tmote_sky ints /. 10.
    && ratio Profiler.Platform.tmote_sky floats
       > ratio Profiler.Platform.tmote_sky ints)

let test_platform_catalog () =
  Alcotest.(check int) "8 platforms" 8 (List.length Profiler.Platform.all);
  let p = Profiler.Platform.find "TMote" in
  Alcotest.(check string) "case-insensitive find" "tmote" p.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Profiler.Platform.find "z80"))

(* ---- profile collection ---- *)

let test_profile_rates () =
  let g, src, raw = profile_known () in
  ignore g;
  (* 10 events/s for 10 s -> 100 firings of each op *)
  feq ~tol:1e-6 "source rate" 10. (Profiler.Profile.op_fires_per_sec raw src);
  Alcotest.(check int) "fires" 100 (Profiler.Profile.op_fires raw src)

let test_profile_edge_bandwidth () =
  let g, _, raw = profile_known () in
  (* src->heavy carries 64 floats (258 B) at 10/s; heavy->light 32
     floats (130 B) *)
  let edge_between a b =
    let e =
      Array.to_list (Graph.edges g)
      |> List.find (fun (e : Graph.edge) ->
             (Graph.op g e.src).Op.name = a && (Graph.op g e.dst).Op.name = b)
    in
    e.Graph.eid
  in
  feq ~tol:1e-6 "src->heavy" 2580. (Profiler.Profile.edge_bytes_per_sec raw (edge_between "src" "heavy"));
  feq ~tol:1e-6 "heavy->light" 1300. (Profiler.Profile.edge_bytes_per_sec raw (edge_between "heavy" "light"));
  feq ~tol:1e-6 "elements" 10. (Profiler.Profile.edge_elements_per_sec raw (edge_between "src" "heavy"))

let test_profile_workload_per_fire () =
  let g, _, raw = profile_known () in
  let heavy =
    Array.to_list (Graph.ops g)
    |> List.find (fun (o : Op.t) -> o.name = "heavy")
  in
  let w = Profiler.Profile.op_workload_per_fire raw heavy.id in
  feq "1000 floats per fire" 1000. w.Workload.float_ops

let test_profile_cpu_fraction () =
  let g, _, raw = profile_known () in
  let heavy =
    Array.to_list (Graph.ops g)
    |> List.find (fun (o : Op.t) -> o.name = "heavy")
  in
  let p = Profiler.Platform.gumstix in
  let c = Profiler.Profile.cost raw p in
  (* 1000 float ops at 10 Hz *)
  let expect = Profiler.Platform.seconds p (Workload.make ~float_ops:1000. ()) *. 10. in
  feq ~tol:1e-9 "cpu fraction" expect c.cpu_fraction.(heavy.id);
  feq ~tol:1e-9 "sec/fire"
    (Profiler.Platform.seconds p (Workload.make ~float_ops:1000. ()))
    c.seconds_per_fire.(heavy.id)

let test_scale_rate () =
  let _, src, raw = profile_known () in
  let doubled = Profiler.Profile.scale_rate raw 2. in
  feq ~tol:1e-6 "rate doubles" 20.
    (Profiler.Profile.op_fires_per_sec doubled src);
  feq ~tol:1e-6 "original untouched" 10.
    (Profiler.Profile.op_fires_per_sec raw src);
  let c1 = Profiler.Profile.cost raw Profiler.Platform.tmote_sky in
  let c2 = Profiler.Profile.cost doubled Profiler.Platform.tmote_sky in
  feq ~tol:1e-12 "cpu fraction scales" (2. *. c1.cpu_fraction.(src)) c2.cpu_fraction.(src);
  feq ~tol:1e-12 "sec/fire invariant" c1.seconds_per_fire.(src) c2.seconds_per_fire.(src)

let test_peak_vs_mean () =
  (* bursty trace: everything in the first second of a 10 s window *)
  let g, src = build_known () in
  let events =
    List.init 10 (fun i ->
        {
          Profiler.Profile.Trace.time = 0.05 +. (Float.of_int i *. 0.05);
          source = src;
          value = Value.Float_arr (Array.make 64 1.);
        })
  in
  let raw = Profiler.Profile.collect ~window:1. ~duration:10. g events in
  let e0 = (List.hd (Graph.succs g src)).Graph.eid in
  let mean = Profiler.Profile.edge_bytes_per_sec raw e0 in
  let peak = Profiler.Profile.edge_peak_bytes_per_sec raw e0 in
  Alcotest.(check bool) "peak ~10x mean for 10%% duty cycle" true
    (peak > 8. *. mean)

let test_trace_merge_sorted () =
  let a =
    List.init 5 (fun i ->
        { Profiler.Profile.Trace.time = Float.of_int i; source = 0; value = Value.Unit })
  in
  let b =
    List.init 5 (fun i ->
        { Profiler.Profile.Trace.time = Float.of_int i +. 0.5; source = 1; value = Value.Unit })
  in
  let merged = Profiler.Profile.Trace.merge [ a; b ] in
  let times = List.map (fun e -> e.Profiler.Profile.Trace.time) merged in
  Alcotest.(check bool) "sorted" true (times = List.sort compare times)

let test_collect_validates_events () =
  let g, src = build_known () in
  let bad =
    [ { Profiler.Profile.Trace.time = 11.; source = src; value = Value.Unit } ]
  in
  Alcotest.check_raises "outside duration"
    (Invalid_argument "Profile.collect: event outside [0, duration)") (fun () ->
      ignore (Profiler.Profile.collect ~duration:10. g bad))

(* ---- reports ---- *)

let test_normalized_cumulative () =
  let g, _, raw = profile_known () in
  let order = Graph.topo_order g in
  let cum =
    Profiler.Report.normalized_cumulative_cpu raw Profiler.Platform.tmote_sky
      ~order
  in
  feq ~tol:1e-9 "ends at 1" 1. cum.(Array.length cum - 1);
  Array.iteri
    (fun i v ->
      if i > 0 && v < cum.(i - 1) -. 1e-12 then
        Alcotest.fail "cumulative not monotone")
    cum

let test_per_op_table () =
  let g, _, raw = profile_known () in
  let order = Graph.topo_order g in
  let table = Profiler.Report.per_op_table raw Profiler.Platform.gumstix ~order in
  Alcotest.(check int) "rows" (Graph.n_ops g) (List.length table);
  (* cumulative column is monotone *)
  let rec check last = function
    | [] -> ()
    | (_, _, cum, _) :: rest ->
        Alcotest.(check bool) "monotone" true (cum >= last);
        check cum rest
  in
  check 0. table

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "profiler"
    [
      ( "platform",
        [
          tc "cycle accounting" test_platform_cycles;
          tc "float penalty ordering" test_platform_float_penalty_ordering;
          tc "catalog" test_platform_catalog;
        ] );
      ( "profile",
        [
          tc "firing rates" test_profile_rates;
          tc "edge bandwidth" test_profile_edge_bandwidth;
          tc "workload per fire" test_profile_workload_per_fire;
          tc "cpu fraction" test_profile_cpu_fraction;
          tc "rate scaling" test_scale_rate;
          tc "peak vs mean" test_peak_vs_mean;
          tc "trace merge" test_trace_merge_sorted;
          tc "event validation" test_collect_validates_events;
        ] );
      ( "report",
        [
          tc "normalized cumulative" test_normalized_cumulative;
          tc "per-op table" test_per_op_table;
        ] );
    ]
