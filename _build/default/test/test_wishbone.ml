(* Wishbone core tests: relocation rules, preprocessing, ILP
   encodings, optimality against brute force, rate search, cut-point
   analysis, the Figure 3 example. *)

open Dataflow
open Wishbone

let feq ?(tol = 1e-6) = Alcotest.(check (float tol))

let passthrough () =
  Op.stateless_instance (fun v -> ([ v ], Workload.make ~call_ops:1. ()))

let mk_op ?(namespace = Op.Node) ?(stateful = false) ?(side_effect = Op.Pure)
    id name =
  { Op.id; name; kind = "t"; namespace; stateful; side_effect;
    fresh = passthrough }

(* chain: src(pinned node) -> a -> b -> sink(pinned server) *)
let chain_graph ?(a_stateful = false) ?(b_stateful = false) () =
  let ops =
    [|
      mk_op ~side_effect:Op.Sensor_input 0 "src";
      mk_op ~stateful:a_stateful 1 "a";
      mk_op ~stateful:b_stateful 2 "b";
      mk_op ~namespace:Op.Server ~side_effect:Op.Display_output 3 "sink";
    |]
  in
  Graph.make ops [ (0, 1, 0); (1, 2, 0); (2, 3, 0) ]

(* ---- Movable ---- *)

let test_classify_stateless () =
  match Movable.classify Movable.Conservative (chain_graph ()) with
  | Error m -> Alcotest.fail m
  | Ok p ->
      Alcotest.(check bool) "src pinned node" true (p.(0) = Movable.Pin_node);
      Alcotest.(check bool) "a movable" true (p.(1) = Movable.Movable);
      Alcotest.(check bool) "b movable" true (p.(2) = Movable.Movable);
      Alcotest.(check bool) "sink pinned server" true (p.(3) = Movable.Pin_server)

let test_classify_stateful_modes () =
  let g = chain_graph ~b_stateful:true () in
  (match Movable.classify Movable.Conservative g with
  | Error m -> Alcotest.fail m
  | Ok p ->
      Alcotest.(check bool) "stateful pinned (conservative)" true
        (p.(2) = Movable.Pin_node);
      (* single-crossing closure pins everything upstream too *)
      Alcotest.(check bool) "upstream closure" true (p.(1) = Movable.Pin_node));
  match Movable.classify Movable.Permissive g with
  | Error m -> Alcotest.fail m
  | Ok p ->
      Alcotest.(check bool) "stateful movable (permissive)" true
        (p.(2) = Movable.Movable)

let test_classify_server_namespace_pins () =
  let ops =
    [|
      mk_op ~side_effect:Op.Sensor_input 0 "src";
      mk_op ~namespace:Op.Server 1 "server_op";
      mk_op 2 "node_op";
      mk_op ~namespace:Op.Server ~side_effect:Op.Display_output 3 "sink";
    |]
  in
  (* src -> server_op -> node_op -> sink: node_op downstream of a
     server-pinned op gets server-pinned by the closure *)
  let g = Graph.make ops [ (0, 1, 0); (1, 2, 0); (2, 3, 0) ] in
  match Movable.classify Movable.Conservative g with
  | Error m -> Alcotest.fail m
  | Ok p ->
      Alcotest.(check bool) "server op pinned" true (p.(1) = Movable.Pin_server);
      Alcotest.(check bool) "downstream closure" true (p.(2) = Movable.Pin_server)

let test_classify_conflict_detected () =
  (* sink-side actuator downstream of a server-pinned op: data would
     need to cross twice *)
  let ops =
    [|
      mk_op ~side_effect:Op.Sensor_input 0 "src";
      mk_op ~namespace:Op.Server 1 "server_op";
      mk_op ~side_effect:Op.Actuator 2 "led";
    |]
  in
  let g = Graph.make ops [ (0, 1, 0); (1, 2, 0) ] in
  match Movable.classify Movable.Conservative g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "conflict not detected"

let test_classify_hardware_in_server_namespace () =
  let ops = [| mk_op ~namespace:Op.Server ~side_effect:Op.Sensor_input 0 "adc" |] in
  let g = Graph.make ops [] in
  match Movable.classify Movable.Conservative g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject sensor declared on server"

(* ---- Spec ---- *)

let simple_spec ?(cpu_budget = 10.) ?(net_budget = 1e6) ?(alpha = 0.)
    ?(beta = 1.) ~cpu ~bw graph =
  match Movable.classify Movable.Conservative graph with
  | Error m -> Alcotest.fail m
  | Ok placement ->
      { Spec.graph; placement; cpu; bandwidth = bw; cpu_budget; net_budget;
        alpha; beta }

let test_spec_cut_stats () =
  let g = chain_graph () in
  let spec =
    simple_spec ~cpu:[| 0.1; 0.2; 0.3; 0. |] ~bw:[| 100.; 50.; 10. |] g
  in
  let node_side = [| true; true; false; false |] in
  let cpu, net = Spec.cut_stats spec ~node_side in
  feq "cpu" 0.3 cpu;
  feq "net" 50. net;
  feq "objective" 50. (Spec.objective_value spec ~node_side)

let test_spec_feasibility () =
  let g = chain_graph () in
  let spec =
    simple_spec ~cpu_budget:0.25 ~cpu:[| 0.1; 0.2; 0.3; 0. |]
      ~bw:[| 100.; 50.; 10. |] g
  in
  Alcotest.(check bool) "within budget" true
    (Spec.feasible spec ~node_side:[| true; false; false; false |]);
  Alcotest.(check bool) "cpu exceeded" false
    (Spec.feasible spec ~node_side:[| true; true; false; false |]);
  Alcotest.(check bool) "pin violated" false
    (Spec.feasible spec ~node_side:[| false; false; false; false |]);
  Alcotest.(check bool) "single crossing violated" false
    (Spec.feasible spec ~node_side:[| true; false; true; false |])

let test_spec_scale_rate () =
  let g = chain_graph () in
  let spec = simple_spec ~cpu:[| 0.1; 0.2; 0.3; 0. |] ~bw:[| 100.; 50.; 10. |] g in
  let s2 = Spec.scale_rate spec 2. in
  feq "cpu scaled" 0.4 s2.Spec.cpu.(1);
  feq "bw scaled" 100. s2.Spec.bandwidth.(1);
  feq "original untouched" 0.2 spec.Spec.cpu.(1)

(* ---- Preprocess ---- *)

let test_preprocess_merges_expanding () =
  (* a expands data (bw 10 in, 20 out): it must merge downstream *)
  let g = chain_graph () in
  let spec = simple_spec ~cpu:[| 0.1; 0.1; 0.1; 0. |] ~bw:[| 10.; 20.; 5. |] g in
  let c = Preprocess.contract spec in
  Alcotest.(check bool) "a and b merged" true
    (c.Preprocess.super_of.(1) = c.Preprocess.super_of.(2));
  (* the merged supernode has summed cpu *)
  let s = c.Preprocess.super_of.(1) in
  feq "summed cpu" 0.2 c.Preprocess.cpu.(s)

let test_preprocess_keeps_reducing () =
  let g = chain_graph () in
  let spec = simple_spec ~cpu:[| 0.1; 0.1; 0.1; 0. |] ~bw:[| 100.; 50.; 10. |] g in
  let c = Preprocess.contract spec in
  Alcotest.(check int) "nothing merged" 4 c.Preprocess.n_super

let test_preprocess_identity () =
  let g = chain_graph () in
  let spec = simple_spec ~cpu:[| 0.1; 0.1; 0.1; 0. |] ~bw:[| 10.; 20.; 5. |] g in
  let c = Preprocess.identity spec in
  Alcotest.(check int) "identity keeps all" 4 c.Preprocess.n_super

let test_preprocess_expand_roundtrip () =
  let g = chain_graph () in
  let spec = simple_spec ~cpu:[| 0.1; 0.1; 0.1; 0. |] ~bw:[| 10.; 20.; 5. |] g in
  let c = Preprocess.contract spec in
  let assign = Array.make c.Preprocess.n_super false in
  assign.(c.Preprocess.super_of.(0)) <- true;
  let full = Preprocess.expand c assign in
  Alcotest.(check bool) "source on node" true full.(0);
  Alcotest.(check bool) "merged ops follow supernode" true
    (full.(1) = full.(2))

let test_preprocess_preserves_optimum () =
  (* optimum with and without preprocessing agree on random specs *)
  for seed = 0 to 30 do
    let spec = Apps.Synthetic.random_spec ~seed ~n_ops:9 () in
    let a = Partitioner.solve ~preprocess:true spec in
    let b = Partitioner.solve ~preprocess:false spec in
    match (a, b) with
    | Partitioner.Partitioned ra, Partitioner.Partitioned rb ->
        if Float.abs (ra.objective -. rb.objective) > 1e-6 then
          Alcotest.failf "seed %d: preprocessed %g vs raw %g" seed ra.objective
            rb.objective
    | Partitioner.No_feasible_partition, Partitioner.No_feasible_partition -> ()
    | _ -> Alcotest.failf "seed %d: feasibility disagreement" seed
  done

(* ---- Figure 3 ---- *)

let test_fig3_budgets () =
  List.iter
    (fun (budget, expect_bw) ->
      let spec = Apps.Synthetic.fig3_spec ~cpu_budget:budget in
      match Partitioner.solve spec with
      | Partitioner.Partitioned r -> feq "cut bandwidth" expect_bw r.net
      | _ -> Alcotest.failf "budget %g failed" budget)
    [ (2., 8.); (3., 6.); (4., 5.) ]

let test_fig3_partition_shape () =
  (* at budget 4 the whole A chain moves to the node (vertical cut) *)
  let spec = Apps.Synthetic.fig3_spec ~cpu_budget:4. in
  match Partitioner.solve spec with
  | Partitioner.Partitioned r ->
      Alcotest.(check (list int)) "node ops" [ 0; 1; 2 ] (Partitioner.node_ops r)
  | _ -> Alcotest.fail "no partition"

(* ---- encodings ---- *)

let test_encodings_agree () =
  (* the general encoding (eqs. 1-5) allows back-and-forth crossings,
     so it dominates the restricted one (eqs. 6-7): whenever the
     restricted problem is feasible, general is too and at least as
     good.  The two coincide exactly on linear pipelines. *)
  for seed = 0 to 30 do
    let spec = Apps.Synthetic.random_spec ~seed ~n_ops:10 () in
    let a = Partitioner.solve ~encoding:Ilp.Restricted spec in
    let b = Partitioner.solve ~encoding:Ilp.General ~preprocess:false spec in
    match (a, b) with
    | Partitioner.Partitioned ra, Partitioner.Partitioned rb ->
        if rb.objective > ra.objective +. 1e-6 then
          Alcotest.failf "seed %d: general %g worse than restricted %g" seed
            rb.objective ra.objective
    | Partitioner.No_feasible_partition, _ -> ()
    | Partitioner.Partitioned _, Partitioner.No_feasible_partition ->
        Alcotest.failf "seed %d: general infeasible, restricted not" seed
    | Partitioner.Solver_failure m, _ | _, Partitioner.Solver_failure m ->
        Alcotest.failf "seed %d: solver failure %s" seed m
  done;
  for seed = 0 to 15 do
    let spec = Apps.Synthetic.random_pipeline_spec ~seed ~n_ops:8 () in
    let a = Partitioner.solve ~encoding:Ilp.Restricted spec in
    let b = Partitioner.solve ~encoding:Ilp.General spec in
    match (a, b) with
    | Partitioner.Partitioned ra, Partitioner.Partitioned rb ->
        if Float.abs (ra.objective -. rb.objective) > 1e-6 then
          Alcotest.failf "pipeline seed %d: restricted %g vs general %g" seed
            ra.objective rb.objective
    | Partitioner.No_feasible_partition, Partitioner.No_feasible_partition ->
        ()
    | _ -> Alcotest.failf "pipeline seed %d: feasibility disagreement" seed
  done

let test_general_encoding_bidirectional () =
  (* without the single-crossing rule, the general encoding can place
     a heavy middle op on the server between two node ops; the
     restricted one cannot.  Build: src -> heavy -> act(sink on node is
     not allowed, so check objective difference directly) *)
  let ops =
    [|
      mk_op ~side_effect:Op.Sensor_input 0 "src";
      mk_op 1 "mid";
      mk_op ~namespace:Op.Server ~side_effect:Op.Display_output 2 "sink";
    |]
  in
  let g = Graph.make ops [ (0, 1, 0); (1, 2, 0) ] in
  let spec = simple_spec ~cpu_budget:0.05 ~cpu:[| 0.; 0.5; 0. |] ~bw:[| 1.; 1. |] g in
  let c = Preprocess.identity spec in
  let enc = Ilp.encode Ilp.General c in
  (match Lp.Branch_bound.solve enc.problem with
  | Lp.Solution.Optimal s, _ ->
      let assign = Ilp.assignment_of_solution enc s in
      Alcotest.(check bool) "mid on server" true (not assign.(1))
  | st, _ -> Alcotest.failf "general encoding: %a" Lp.Solution.pp_status st)

(* ---- partitioner vs brute force ---- *)

let prop_ilp_matches_brute =
  QCheck.Test.make ~count:120 ~name:"ILP partition matches brute force"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let spec =
        Apps.Synthetic.random_spec ~seed ~n_ops:(5 + (seed mod 8))
          ~cpu_budget:(0.2 +. Float.of_int (seed mod 5) /. 5.)
          ~net_budget:(50. +. Float.of_int (seed mod 7) *. 40.)
          ()
      in
      let ilp = Partitioner.solve spec in
      let brute = Partitioner.brute_force spec in
      match (ilp, brute) with
      | Partitioner.Partitioned r, Some (_, best_obj) ->
          if Float.abs (r.objective -. best_obj) > 1e-6 then
            QCheck.Test.fail_reportf "seed %d: ilp %.9g brute %.9g" seed
              r.objective best_obj
          else Spec.feasible spec ~node_side:r.assignment
      | Partitioner.No_feasible_partition, None -> true
      | Partitioner.Partitioned _, None ->
          QCheck.Test.fail_reportf "seed %d: ilp found, brute did not" seed
      | Partitioner.No_feasible_partition, Some _ ->
          QCheck.Test.fail_reportf "seed %d: brute found, ilp did not" seed
      | Partitioner.Solver_failure m, _ ->
          QCheck.Test.fail_reportf "seed %d: solver failure %s" seed m)

let prop_alpha_beta_tradeoff =
  QCheck.Test.make ~count:60 ~name:"objective weights steer the cut"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let base = Apps.Synthetic.random_spec ~seed ~n_ops:8 () in
      let net_heavy = { base with Spec.alpha = 0.; beta = 1. } in
      let cpu_heavy = { base with Spec.alpha = 1.; beta = 0. } in
      match (Partitioner.solve net_heavy, Partitioner.solve cpu_heavy) with
      | Partitioner.Partitioned rn, Partitioner.Partitioned rc ->
          (* each optimum is at least as good as the other point under
             its own objective *)
          rn.net <= rc.net +. 1e-6 && rc.cpu <= rn.cpu +. 1e-6
      | _ -> true)

(* ---- rate search ---- *)

let test_rate_search_finds_max () =
  (* pipeline with cpu 0.2 per stage: at most budget/cpu rate *)
  let g = chain_graph () in
  let spec =
    simple_spec ~cpu_budget:1.0 ~net_budget:30.
      ~cpu:[| 0.01; 0.2; 0.2; 0. |]
      ~bw:[| 100.; 50.; 10. |] g
  in
  (* at x1: cut at b->sink needs cpu 0.41 (ok) net 10 (ok): feasible.
     max rate: cpu-bound 1/0.41 = 2.43; net-bound 30/10 = 3 -> 2.43 *)
  match Rate_search.search ~tol:0.001 spec with
  | Some { rate_multiplier; report } ->
      Alcotest.(check bool) "close to 2.43" true
        (Float.abs (rate_multiplier -. (1. /. 0.41)) < 0.05);
      Alcotest.(check bool) "report feasible at found rate" true
        (Spec.feasible
           (Spec.scale_rate spec rate_multiplier)
           ~node_side:report.assignment)
  | None -> Alcotest.fail "rate search failed"

let test_rate_search_monotonicity () =
  (* feasibility is monotone in rate on every random spec *)
  for seed = 0 to 20 do
    let spec = Apps.Synthetic.random_spec ~seed ~n_ops:8 ~net_budget:100. () in
    match Rate_search.search spec with
    | None -> ()
    | Some { rate_multiplier; _ } ->
        (match Rate_search.feasible_at spec (rate_multiplier /. 2.) with
        | Partitioner.Partitioned _ -> ()
        | _ -> Alcotest.failf "seed %d: infeasible below the found max" seed)
  done

let test_rate_search_overloaded_start () =
  (* infeasible at x1 forces the search below 1 *)
  let g = chain_graph () in
  let spec =
    simple_spec ~cpu_budget:0.5 ~net_budget:20.
      ~cpu:[| 0.01; 2.0; 2.0; 0. |]
      ~bw:[| 100.; 50.; 10. |] g
  in
  match Rate_search.search spec with
  | Some { rate_multiplier; _ } ->
      Alcotest.(check bool) "below 1" true (rate_multiplier < 1.)
  | None -> Alcotest.fail "expected a reduced-rate partition"

let test_rate_search_incremental_consistent () =
  (* incumbent seeding and root-basis reuse are performance hints:
     the found rate must match the cold search *)
  for seed = 0 to 9 do
    let spec = Apps.Synthetic.random_spec ~seed ~n_ops:14 () in
    match
      ( Rate_search.search ~incremental:false spec,
        Rate_search.search ~incremental:true spec )
    with
    | Some a, Some b ->
        if
          Float.abs (a.rate_multiplier -. b.rate_multiplier)
          > 0.02 *. a.rate_multiplier
        then
          Alcotest.failf "seed %d: cold rate %g, incremental rate %g" seed
            a.rate_multiplier b.rate_multiplier
    | None, None -> ()
    | _ -> Alcotest.failf "seed %d: feasibility disagreement" seed
  done

(* ---- cutpoints ---- *)

let test_cutpoints_on_speech () =
  let t = Apps.Speech.build () in
  let raw = Apps.Speech.profile ~duration:5. t in
  let cuts = Cutpoints.enumerate raw Profiler.Platform.tmote_sky in
  Alcotest.(check int) "8 cuts for 9 ops" 8 (List.length cuts);
  let viable = List.filter (fun c -> c.Cutpoints.viable) cuts in
  Alcotest.(check (list string)) "viable labels"
    [ "source"; "filtbank"; "cepstrals" ]
    (List.map (fun c -> c.Cutpoints.label) viable);
  (* compute-bound rate decreases with depth *)
  let rates = List.map (fun c -> c.Cutpoints.max_rate_compute) cuts in
  List.iteri
    (fun i r ->
      if i > 0 && r > List.nth rates (i - 1) +. 1e-9 then
        Alcotest.fail "compute rate should fall with cut depth")
    rates;
  (* best throughput cut is the filterbank (paper: cut point 4) *)
  match Cutpoints.best_by_rate cuts with
  | Some c -> Alcotest.(check string) "best cut" "filtbank" c.Cutpoints.label
  | None -> Alcotest.fail "no best cut"

let test_cutpoints_reject_nonpipeline () =
  let spec = Apps.Synthetic.fig3_spec ~cpu_budget:2. in
  let g = spec.Spec.graph in
  let events =
    [ { Profiler.Profile.Trace.time = 0.; source = 0; value = Value.Unit } ]
  in
  let raw = Profiler.Profile.collect ~duration:1. g events in
  Alcotest.check_raises "not a pipeline"
    (Invalid_argument "Cutpoints: graph is not a linear pipeline") (fun () ->
      ignore (Cutpoints.enumerate raw Profiler.Platform.tmote_sky))

(* ---- viz ---- *)

let test_viz_shapes_and_cut () =
  let t = Apps.Speech.build () in
  let raw = Apps.Speech.profile ~duration:2. t in
  let costed = Profiler.Profile.cost raw Profiler.Platform.tmote_sky in
  let assignment = Apps.Speech.cut_assignment t 6 in
  let dot = Viz.render ~assignment ~costed raw in
  let contains n h =
    let nl = String.length n and hl = String.length h in
    let rec go i = i + nl <= hl && (String.sub h i nl = n || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "node ops are boxes" true (contains "box" dot);
  Alcotest.(check bool) "server ops are ellipses" true (contains "ellipse" dot);
  Alcotest.(check bool) "cut edge dashed" true (contains "dashed" dot)


(* ---- resource constraints (§4.2.1 RAM / code storage) ---- *)

let test_resource_constraint_forces_server () =
  let g = chain_graph () in
  let spec =
    simple_spec ~cpu_budget:10. ~cpu:[| 0.1; 0.1; 0.1; 0. |]
      ~bw:[| 100.; 50.; 10. |] g
  in
  (* without the RAM row, everything fits on the node *)
  (match Partitioner.solve spec with
  | Partitioner.Partitioned r ->
      Alcotest.(check int) "all three on node" 3
        (List.length (Partitioner.node_ops r))
  | _ -> Alcotest.fail "base problem should partition");
  (* op b needs 8 kB of RAM but the mote only has 10 kB total with a
     6 kB budget for operators *)
  let ram =
    { Ilp.rname = "ram"; per_op = [| 100.; 500.; 8000.; 0. |]; budget = 6000. }
  in
  match Partitioner.solve ~resources:[ ram ] spec with
  | Partitioner.Partitioned r ->
      Alcotest.(check bool) "b forced to the server" true
        (not r.assignment.(2));
      Alcotest.(check bool) "a still on node" true r.assignment.(1)
  | _ -> Alcotest.fail "resource-constrained problem should partition"

let test_resource_infeasible () =
  let g = chain_graph () in
  let spec =
    simple_spec ~cpu:[| 0.1; 0.1; 0.1; 0. |] ~bw:[| 100.; 50.; 10. |] g
  in
  (* even the pinned source exceeds the budget: no partition at all *)
  let ram =
    { Ilp.rname = "ram"; per_op = [| 9000.; 1.; 1.; 0. |]; budget = 6000. }
  in
  match Partitioner.solve ~resources:[ ram ] spec with
  | Partitioner.No_feasible_partition -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_resource_wrong_length () =
  let g = chain_graph () in
  let spec =
    simple_spec ~cpu:[| 0.1; 0.1; 0.1; 0. |] ~bw:[| 100.; 50.; 10. |] g
  in
  let bad = { Ilp.rname = "ram"; per_op = [| 1. |]; budget = 5. } in
  Alcotest.check_raises "length check"
    (Invalid_argument "Ilp.encode: resource ram has wrong length") (fun () ->
      ignore (Partitioner.solve ~resources:[ bad ] spec))

(* ---- pipeline fast path ---- *)

let prop_pipeline_dp_matches_ilp =
  QCheck.Test.make ~count:100 ~name:"pipeline enumeration matches the ILP"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let spec =
        Apps.Synthetic.random_pipeline_spec ~seed ~n_ops:(4 + (seed mod 8))
          ~cpu_budget:(0.3 +. Float.of_int (seed mod 4) /. 4.)
          ~net_budget:(200. +. Float.of_int (seed mod 5) *. 150.)
          ()
      in
      match (Pipeline_dp.solve spec, Partitioner.solve spec) with
      | Some (_, dp_obj), Partitioner.Partitioned r ->
          if Float.abs (dp_obj -. r.objective) > 1e-6 then
            QCheck.Test.fail_reportf "seed %d: dp %.9g vs ilp %.9g" seed dp_obj
              r.objective
          else true
      | None, Partitioner.No_feasible_partition -> true
      | Some _, _ ->
          QCheck.Test.fail_reportf "seed %d: dp found a cut, ilp did not" seed
      | None, Partitioner.Partitioned _ ->
          QCheck.Test.fail_reportf "seed %d: ilp found a cut, dp did not" seed
      | _, Partitioner.Solver_failure m ->
          QCheck.Test.fail_reportf "seed %d: %s" seed m)

let test_pipeline_dp_rejects_dag () =
  let spec = Apps.Synthetic.fig3_spec ~cpu_budget:2. in
  Alcotest.check_raises "dag rejected"
    (Invalid_argument "Pipeline_dp.solve: not a linear pipeline") (fun () ->
      ignore (Pipeline_dp.solve spec))

let () =
  (* the pivot counter is process-wide; start every suite from a
     clean slate so no test depends on which suite ran before it
     (asserted centrally in test_check.ml) *)
  Lp.Simplex.reset_cumulative_pivots ();
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "wishbone"
    [
      ( "movable",
        [
          tc "stateless classification" test_classify_stateless;
          tc "stateful modes" test_classify_stateful_modes;
          tc "server namespace pins" test_classify_server_namespace_pins;
          tc "conflict detected" test_classify_conflict_detected;
          tc "hardware on server rejected" test_classify_hardware_in_server_namespace;
        ] );
      ( "spec",
        [
          tc "cut stats" test_spec_cut_stats;
          tc "feasibility" test_spec_feasibility;
          tc "rate scaling" test_spec_scale_rate;
        ] );
      ( "preprocess",
        [
          tc "merges expanding ops" test_preprocess_merges_expanding;
          tc "keeps reducing ops" test_preprocess_keeps_reducing;
          tc "identity" test_preprocess_identity;
          tc "expand roundtrip" test_preprocess_expand_roundtrip;
          tc "preserves optimum" test_preprocess_preserves_optimum;
        ] );
      ( "fig3",
        [
          tc "budgets 2/3/4 -> bw 8/6/5" test_fig3_budgets;
          tc "vertical cut at budget 4" test_fig3_partition_shape;
        ] );
      ( "encodings",
        [
          tc "restricted = general on one-crossing" test_encodings_agree;
          tc "general is bidirectional" test_general_encoding_bidirectional;
        ] );
      ( "optimality",
        [
          QCheck_alcotest.to_alcotest prop_ilp_matches_brute;
          QCheck_alcotest.to_alcotest prop_alpha_beta_tradeoff;
        ] );
      ( "rate_search",
        [
          tc "finds the max rate" test_rate_search_finds_max;
          tc "monotone feasibility" test_rate_search_monotonicity;
          tc "overloaded start" test_rate_search_overloaded_start;
          tc "incremental = cold" test_rate_search_incremental_consistent;
        ] );
      ( "cutpoints",
        [
          tc "speech pipeline" test_cutpoints_on_speech;
          tc "rejects non-pipeline" test_cutpoints_reject_nonpipeline;
        ] );
      ("viz", [ tc "shapes and cut edges" test_viz_shapes_and_cut ]);
      ( "resources",
        [
          tc "RAM row forces an op off the node"
            test_resource_constraint_forces_server;
          tc "infeasible when pinned ops exceed it" test_resource_infeasible;
          tc "wrong length rejected" test_resource_wrong_length;
        ] );
      ( "pipeline_dp",
        [
          QCheck_alcotest.to_alcotest prop_pipeline_dp_matches_ilp;
          tc "rejects non-pipelines" test_pipeline_dp_rejects_dag;
        ] );
    ]
