(* Second-round coverage: solver edge cases, netsim link variants,
   profiler validation, cut-point corner cases. *)

open Lp

let feq ?(tol = 1e-6) = Alcotest.(check (float tol))

(* ---- simplex corner cases ---- *)

let test_beale_cycling_guard () =
  (* Beale's classic cycling example; Bland's fallback must terminate *)
  let p = Problem.create () in
  let x = Array.init 4 (fun _ -> Problem.add_var p) in
  Problem.add_constr p
    [ (x.(0), 0.25); (x.(1), -8.); (x.(2), -1.); (x.(3), 9.) ]
    Problem.Le 0.;
  Problem.add_constr p
    [ (x.(0), 0.5); (x.(1), -12.); (x.(2), -0.5); (x.(3), 3.) ]
    Problem.Le 0.;
  Problem.add_constr p [ (x.(2), 1.) ] Problem.Le 1.;
  Problem.set_objective p Problem.Maximize
    [ (x.(0), 0.75); (x.(1), -20.); (x.(2), 0.5); (x.(3), -6.) ];
  match Simplex.solve p with
  | Solution.Optimal s -> feq "beale optimum" 1.25 s.objective
  | st -> Alcotest.failf "beale: %a" Solution.pp_status st

let test_pivot_budget () =
  let p = Problem.create () in
  let vars = Array.init 20 (fun _ -> Problem.add_var ~hi:5. p) in
  for i = 0 to 18 do
    Problem.add_constr p [ (vars.(i), 1.); (vars.(i + 1), 1.) ] Problem.Le 7.
  done;
  Problem.set_objective p Problem.Maximize
    (Array.to_list (Array.map (fun v -> (v, 1.)) vars));
  let options = { Simplex.default_options with Simplex.max_pivots = 1 } in
  match Simplex.solve ~options p with
  | Solution.Iteration_limit -> ()
  | st -> Alcotest.failf "expected iteration limit, got %a" Solution.pp_status st

let test_redundant_equalities () =
  (* duplicate equality rows leave a redundant artificial basic at 0;
     phase 2 must still solve correctly *)
  let p = Problem.create () in
  let x = Problem.add_var p and y = Problem.add_var p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Eq 4.;
  Problem.add_constr p [ (x, 2.); (y, 2.) ] Problem.Eq 8.;
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  match Simplex.solve p with
  | Solution.Optimal s ->
      feq "x" 4. s.x.(x);
      feq "obj" 4. s.objective
  | st -> Alcotest.failf "redundant eq: %a" Solution.pp_status st

let test_empty_objective () =
  let p = Problem.create () in
  let x = Problem.add_var ~hi:3. p in
  Problem.add_constr p [ (x, 1.) ] Problem.Ge 1.;
  match Simplex.solve p with
  | Solution.Optimal s ->
      feq "feasible point" 0. s.objective;
      Alcotest.(check bool) "x in range" true (s.x.(x) >= 1. -. 1e-9)
  | st -> Alcotest.failf "empty objective: %a" Solution.pp_status st

let test_bb_time_limit () =
  (* a deliberately hard equality-knapsack; a tiny time budget must
     return rather than hang *)
  let rng = Prng.create 77 in
  let p = Problem.create () in
  let vars = Array.init 40 (fun _ -> Problem.add_var ~hi:1. ~integer:true p) in
  Problem.add_constr p
    (Array.to_list
       (Array.map (fun v -> (v, Float.of_int (100 + Prng.int rng 900))) vars))
    Problem.Eq 10_007.;
  Problem.set_objective p Problem.Maximize
    (Array.to_list (Array.map (fun v -> (v, 1.)) vars));
  let options =
    { Branch_bound.default_options with Branch_bound.time_limit = 0.2 }
  in
  let t0 = Unix.gettimeofday () in
  let _status, stats = Branch_bound.solve ~options p in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "returned promptly" true (dt < 5.);
  Alcotest.(check bool) "did not claim proof if budget hit" true
    ((not stats.proved_optimal) || stats.time_total <= 0.2 +. 1.)

let test_bb_gap_tolerance () =
  let p = Problem.create () in
  let vars = Array.init 12 (fun _ -> Problem.add_var ~hi:1. ~integer:true p) in
  Problem.add_constr p
    (Array.to_list (Array.map (fun v -> (v, 3.)) vars))
    Problem.Le 10.;
  Problem.set_objective p Problem.Maximize
    (Array.to_list (Array.map (fun v -> (v, 1.)) vars));
  let options =
    { Branch_bound.default_options with Branch_bound.gap_tol = 0.5 }
  in
  match Branch_bound.solve ~options p with
  | Solution.Optimal s, stats ->
      (* true optimum is 3; a 50% gap accepts >= 2 *)
      Alcotest.(check bool) "within gap" true (s.objective >= 2. -. 1e-9);
      Alcotest.(check bool) "terminated via gap" true stats.proved_optimal
  | st, _ -> Alcotest.failf "gap: %a" Solution.pp_status st

(* ---- netsim variants ---- *)

let probe () =
  let b = Dataflow.Builder.create () in
  let s =
    Dataflow.Builder.in_node b (fun () ->
        Dataflow.Builder.source b ~name:"s" ())
  in
  Dataflow.Builder.sink b ~name:"k" s;
  (Dataflow.Builder.build b, Dataflow.Builder.op_id s)

let test_wifi_carries_more () =
  let graph, src = probe () in
  let run link platform =
    let config =
      Netsim.Testbed.default_config ~n_nodes:1 ~duration:20. ~seed:2 ~platform
        ~link ()
    in
    let sources =
      [
        {
          Netsim.Testbed.source = src;
          rate = 40.;
          gen = (fun ~node:_ ~seq:_ -> Dataflow.Value.Int16_arr (Array.make 200 0));
        };
      ]
    in
    Netsim.Testbed.run config ~graph ~node_of:(fun i -> i = src) ~sources
  in
  let mote = run Netsim.Link.cc2420 Profiler.Platform.tmote_sky in
  let wifi = run Netsim.Link.wifi Profiler.Platform.meraki in
  (* 16 kB/s of raw frames: hopeless on the mote radio, easy on WiFi *)
  Alcotest.(check bool) "mote collapses" true (mote.msg_fraction < 0.05);
  Alcotest.(check bool) "wifi delivers" true (wifi.msg_fraction > 0.9)

let test_double_buffering () =
  (* processing takes 1.5 sample periods: with one buffered window the
     node should still process ~2/3 of inputs, not 1/2 *)
  let b = Dataflow.Builder.create () in
  let src = ref 0 in
  Dataflow.Builder.in_node b (fun () ->
      let s = Dataflow.Builder.source b ~name:"s" () in
      src := Dataflow.Builder.op_id s;
      let burn =
        Dataflow.Builder.map b ~name:"burn"
          (fun v ->
            (v, Dataflow.Workload.make ~int_ops:(1.5 *. 8e6 /. 10.) ()))
          s
      in
      Dataflow.Builder.sink b ~name:"k" burn);
  let graph = Dataflow.Builder.build b in
  let config =
    {
      (Netsim.Testbed.default_config ~n_nodes:1 ~duration:30. ~seed:3
         ~platform:Profiler.Platform.tmote_sky ~link:Netsim.Link.cc2420 ())
      with
      Netsim.Testbed.os_overhead = 1.0;
      per_packet_cpu_s = 0.;
    }
  in
  let sources =
    [
      {
        Netsim.Testbed.source = !src;
        rate = 10.;
        gen = (fun ~node:_ ~seq:_ -> Dataflow.Value.Int 0);
      };
    ]
  in
  let r =
    Netsim.Testbed.run config ~graph
      ~node_of:(fun i -> i <> Dataflow.Graph.n_ops graph - 1)
      ~sources
  in
  Alcotest.(check bool)
    (Printf.sprintf "~2/3 processed (got %.2f)" r.input_fraction)
    true
    (r.input_fraction > 0.6 && r.input_fraction < 0.72)

(* ---- profiler validation ---- *)

let test_scale_rate_validation () =
  let graph, src = probe () in
  let events =
    [ { Profiler.Profile.Trace.time = 0.; source = src;
        value = Dataflow.Value.Int 1 } ]
  in
  let raw = Profiler.Profile.collect ~duration:1. graph events in
  Alcotest.check_raises "nonpositive factor"
    (Invalid_argument "Profile.scale_rate: factor must be positive") (fun () ->
      ignore (Profiler.Profile.scale_rate raw 0.))

let test_collect_window_validation () =
  let graph, _ = probe () in
  Alcotest.check_raises "bad window"
    (Invalid_argument "Profile.collect: window must be positive") (fun () ->
      ignore (Profiler.Profile.collect ~window:0. ~duration:1. graph []))

(* ---- cutpoints: network-bound platform picks the source cut ---- *)

let test_best_cut_network_vs_compute () =
  let t = Apps.Speech.build () in
  let raw = Apps.Speech.profile ~duration:10. t in
  (* Meraki: big radio, slow soft-float CPU -> best rate at the source *)
  let cuts = Wishbone.Cutpoints.enumerate raw Profiler.Platform.meraki in
  (match Wishbone.Cutpoints.best_by_rate cuts with
  | Some c -> Alcotest.(check string) "meraki best" "source" c.Wishbone.Cutpoints.label
  | None -> Alcotest.fail "no cut");
  (* TMote: tiny radio -> best rate in the middle *)
  let cuts = Wishbone.Cutpoints.enumerate raw Profiler.Platform.tmote_sky in
  match Wishbone.Cutpoints.best_by_rate cuts with
  | Some c ->
      Alcotest.(check string) "tmote best" "filtbank" c.Wishbone.Cutpoints.label
  | None -> Alcotest.fail "no cut"

(* ---- graph utilities ---- *)

let test_map_ops_identity_check () =
  let t = Apps.Speech.build () in
  let renamed =
    Dataflow.Graph.map_ops
      (fun op -> { op with Dataflow.Op.kind = "x" })
      t.Apps.Speech.graph
  in
  Alcotest.(check string) "kind changed" "x"
    (Dataflow.Graph.op renamed 0).Dataflow.Op.kind;
  Alcotest.check_raises "id change rejected"
    (Invalid_argument "Graph.map_ops: id changed") (fun () ->
      ignore
        (Dataflow.Graph.map_ops
           (fun op -> { op with Dataflow.Op.id = op.Dataflow.Op.id + 1 })
           t.Apps.Speech.graph))

let test_value_pp_abbreviates () =
  let s =
    Format.asprintf "%a" Dataflow.Value.pp
      (Dataflow.Value.Tuple
         [ Dataflow.Value.Int 3; Dataflow.Value.Float_arr (Array.make 1000 0.) ])
  in
  Alcotest.(check bool) "short rendering" true (String.length s < 40)


(* ---- DES fuzzing: invariants over random configurations ---- *)

let prop_testbed_invariants =
  QCheck.Test.make ~count:60 ~name:"testbed invariants on random configs"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let graph, src = probe () in
      let link =
        if Prng.bool rng 0.5 then Netsim.Link.cc2420 else Netsim.Link.wifi
      in
      let platform =
        List.nth Profiler.Platform.all
          (Prng.int rng (List.length Profiler.Platform.all))
      in
      let config =
        {
          (Netsim.Testbed.default_config
             ~n_nodes:(1 + Prng.int rng 24)
             ~duration:(Prng.uniform rng 2. 15.)
             ~seed ~platform ~link ())
          with
          Netsim.Testbed.tx_queue_packets = 1 + Prng.int rng 40;
        }
      in
      let payload = 1 + Prng.int rng 300 in
      let sources =
        [
          {
            Netsim.Testbed.source = src;
            rate = Prng.uniform rng 0.2 80.;
            gen =
              (fun ~node:_ ~seq:_ ->
                Dataflow.Value.Int16_arr (Array.make payload 0));
          };
        ]
      in
      let r = Netsim.Testbed.run config ~graph ~node_of:(fun i -> i = src) ~sources in
      (* busy time is accumulated per event in float seconds, so the
         fraction can overshoot 1 by a few ulps-per-event (seen: 4e-5
         over a 15 s run) *)
      let frac_ok f = f >= 0. && f <= 1. +. 1e-4 in
      if not (frac_ok r.input_fraction) then
        QCheck.Test.fail_reportf "seed %d: input fraction %g" seed
          r.input_fraction
      else if not (frac_ok r.msg_fraction) then
        QCheck.Test.fail_reportf "seed %d: msg fraction %g" seed r.msg_fraction
      else if r.msgs_received > r.msgs_sent then
        QCheck.Test.fail_reportf "seed %d: received > sent" seed
      else if r.inputs_processed > r.inputs_offered then
        QCheck.Test.fail_reportf "seed %d: processed > offered" seed
      else if r.sink_outputs > r.msgs_received then
        QCheck.Test.fail_reportf "seed %d: sinks > deliveries" seed
      else if
        r.packets_lost_collision + r.packets_lost_channel > r.packets_sent
      then QCheck.Test.fail_reportf "seed %d: losses exceed transmissions" seed
      else if not (frac_ok r.node_busy_fraction) then
        QCheck.Test.fail_reportf "seed %d: busy fraction %g" seed
          r.node_busy_fraction
      else true)

let prop_rate_search_returns_feasible =
  QCheck.Test.make ~count:40 ~name:"rate search result is always feasible"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let spec =
        Apps.Synthetic.random_spec ~seed ~n_ops:(5 + (seed mod 6))
          ~cpu_budget:(0.1 +. Float.of_int (seed mod 4) /. 10.)
          ~net_budget:(30. +. Float.of_int (seed mod 6) *. 30.)
          ()
      in
      match Wishbone.Rate_search.search spec with
      | None -> true
      | Some { rate_multiplier; report } ->
          Wishbone.Spec.feasible
            (Wishbone.Spec.scale_rate spec rate_multiplier)
            ~node_side:report.Wishbone.Partitioner.assignment)

let () =
  (* the pivot counter is process-wide; start every suite from a
     clean slate so no test depends on which suite ran before it
     (asserted centrally in test_check.ml) *)
  Lp.Simplex.reset_cumulative_pivots ();
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "more"
    [
      ( "simplex_edge",
        [
          tc "beale cycling guard" test_beale_cycling_guard;
          tc "pivot budget" test_pivot_budget;
          tc "redundant equalities" test_redundant_equalities;
          tc "empty objective" test_empty_objective;
        ] );
      ( "bb_edge",
        [
          tc "time limit" test_bb_time_limit;
          tc "gap tolerance" test_bb_gap_tolerance;
        ] );
      ( "netsim_variants",
        [
          tc "wifi vs mote radio" test_wifi_carries_more;
          tc "double buffering" test_double_buffering;
        ] );
      ( "validation",
        [
          tc "scale_rate" test_scale_rate_validation;
          tc "collect window" test_collect_window_validation;
        ] );
      ( "cutpoints_platforms",
        [ tc "network- vs compute-bound best cut" test_best_cut_network_vs_compute ] );
      ( "graph_util",
        [
          tc "map_ops" test_map_ops_identity_check;
          tc "value pp" test_value_pp_abbreviates;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_testbed_invariants;
          QCheck_alcotest.to_alcotest prop_rate_search_returns_feasible;
        ] );
    ]
