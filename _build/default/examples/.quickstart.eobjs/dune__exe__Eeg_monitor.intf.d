examples/eeg_monitor.mli:
