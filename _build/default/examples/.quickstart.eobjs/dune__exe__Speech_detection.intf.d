examples/speech_detection.mli:
