examples/speech_detection.ml: Apps Array Dataflow List Netsim Printf Profiler Wishbone
