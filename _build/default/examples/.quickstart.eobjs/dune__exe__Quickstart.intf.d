examples/quickstart.mli:
