examples/eeg_monitor.ml: Apps Array Dataflow Dsp Float List Printf Profiler Runtime Value Wishbone
