examples/quickstart.ml: Array Builder Dataflow Dsp Format Graph List Op Printf Prng Profiler Value Wishbone
