examples/fleet_planner.mli:
