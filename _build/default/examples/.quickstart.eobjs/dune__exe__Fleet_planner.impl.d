examples/fleet_planner.ml: Apps Array Builder Dataflow Float Format Graph List Op Printf Profiler Value Wishbone Workload
