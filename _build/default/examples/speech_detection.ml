(* The paper's acoustic speech-detection scenario end to end:

   1. build the MFCC pipeline (§6.2),
   2. profile it on synthetic audio,
   3. compare the candidate platforms (Figure 5b style),
   4. binary-search the highest sustainable rate on a TMote (§4.3),
   5. deploy the chosen partition on the simulated 20-mote testbed and
      compare against the exhaustive per-cut ground truth (§7.3).

     dune exec examples/speech_detection.exe *)

let () =
  let app = Apps.Speech.build () in
  print_endline "profiling the MFCC pipeline on 30 s of synthetic speech...";
  let raw = Apps.Speech.profile ~duration:30. app in

  (* platform comparison *)
  Printf.printf "\n%-10s %16s %18s\n" "platform" "pipeline us/frame"
    "max rate (x8 kHz)";
  List.iter
    (fun p ->
      let cuts = Wishbone.Cutpoints.enumerate raw p in
      let last = List.nth cuts (List.length cuts - 1) in
      Printf.printf "%-10s %16.0f %18.3f\n" p.Profiler.Platform.name
        last.Wishbone.Cutpoints.node_us_per_input
        last.Wishbone.Cutpoints.max_rate_compute)
    Profiler.Platform.
      [ tmote_sky; nokia_n80; iphone; gumstix; meraki; voxnet; scheme_server ];

  (* TMote: find the best partition and rate *)
  let spec =
    match
      Wishbone.Spec.of_profile ~node_platform:Profiler.Platform.tmote_sky raw
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  print_newline ();
  (match Wishbone.Rate_search.search spec with
  | Some { rate_multiplier; report } ->
      Printf.printf
        "TMote: highest sustainable rate x%.3f (%.1f windows/s), cut after %s\n"
        rate_multiplier
        (rate_multiplier *. Apps.Speech.frame_rate)
        (match List.rev (Wishbone.Partitioner.node_ops report) with
        | last :: _ ->
            (Dataflow.Graph.op app.Apps.Speech.graph last).Dataflow.Op.name
        | [] -> "nothing")
  | None -> print_endline "TMote: no feasible partition at any rate");

  (* empirical ground truth on the simulated testbed *)
  Printf.printf "\nper-cut goodput on the simulated testbed (60 s each):\n";
  Printf.printf "%-4s %-10s %12s %12s\n" "cut" "after" "1 mote %" "20 motes %";
  List.iter
    (fun cut ->
      let assignment = Apps.Speech.cut_assignment app cut in
      let run n_nodes =
        let config =
          Netsim.Testbed.default_config ~n_nodes ~duration:60. ~seed:5
            ~platform:Profiler.Platform.tmote_sky ~link:Netsim.Link.cc2420 ()
        in
        Netsim.Testbed.run config ~graph:app.Apps.Speech.graph
          ~node_of:(fun i -> assignment.(i))
          ~sources:(Apps.Speech.testbed_sources ~rate_mult:1.0 app)
      in
      let name =
        (Dataflow.Graph.op app.Apps.Speech.graph
           app.Apps.Speech.order.(cut - 1))
          .Dataflow.Op.name
      in
      Printf.printf "%-4d %-10s %12.2f %12.2f\n" cut name
        (100. *. (run 1).goodput_fraction)
        (100. *. (run 20).goodput_fraction))
    (Apps.Speech.relevant_cutpoints app);
  print_newline ();
  print_endline
    "note how the single mote peaks at the filterbank cut while the\n\
     20-mote network, throttled by the shared channel, peaks at the\n\
     final compute-bound cut - exactly Figures 9/10 of the paper."
