(* Heterogeneous deployment planning with the §9 extensions:

   - a mixed network (TMote motes + Meraki gateways) gets one physical
     partition per node class (Wishbone.Mixed);
   - a three-tier architecture (motes -> microservers -> server) is
     partitioned with the two-level ILP (Wishbone.Three_tier);
   - an in-network aggregation operator's fan-in cost is modelled with
     Wishbone.Aggregation.

     dune exec examples/fleet_planner.exe *)

open Dataflow

let () =
  let app = Apps.Speech.build () in
  let raw = Apps.Speech.profile ~duration:20. app in

  (* ---- mixed network: per-class physical partitions ---- *)
  print_endline "mixed network: 16 TMotes and 2 Meraki gateways";
  (match
     Wishbone.Mixed.plan raw
       ~classes:
         [
           { Wishbone.Mixed.platform = Profiler.Platform.tmote_sky;
             n_nodes = 16; net_share = None };
           { Wishbone.Mixed.platform = Profiler.Platform.meraki; n_nodes = 2;
             net_share = None };
         ]
   with
  | Error m -> print_endline ("mixed plan failed: " ^ m)
  | Ok plans ->
      Format.printf "%a@." (Wishbone.Mixed.pp app.Apps.Speech.graph) plans);

  (* ---- three tiers: motes -> meraki microservers -> server ---- *)
  print_endline
    "\nthree-tier placement at 8% of the native rate (motes feed \
     microservers, microservers feed the server):";
  let slow = Profiler.Profile.scale_rate raw 0.08 in
  (match
     Wishbone.Three_tier.of_profile ~mote:Profiler.Platform.tmote_sky
       ~micro:Profiler.Platform.meraki ~micro_net_budget:300. slow
   with
  | Error m -> print_endline m
  | Ok t -> (
      match Wishbone.Three_tier.solve t with
      | Wishbone.Three_tier.Partitioned r ->
          let tier_name = function
            | Wishbone.Three_tier.Mote -> "mote"
            | Wishbone.Three_tier.Microserver -> "microserver"
            | Wishbone.Three_tier.Central -> "server"
          in
          Array.iteri
            (fun i tier ->
              Printf.printf "  %-10s -> %s\n"
                (Graph.op app.Apps.Speech.graph i).Op.name (tier_name tier))
            r.tiers;
          Printf.printf
            "mote radio %.1f B/s, microserver uplink %.1f B/s; mote cpu \
             %.1f%%, micro cpu %.1f%%\n"
            r.mote_net r.micro_net (100. *. r.mote_cpu) (100. *. r.micro_cpu)
      | Wishbone.Three_tier.No_feasible_partition ->
          print_endline "  no feasible three-tier placement"
      | Wishbone.Three_tier.Solver_failure m -> print_endline m));

  (* ---- in-network aggregation ---- *)
  print_endline "\nin-network aggregation: a mean-over-8-windows reducer";
  let b = Builder.create () in
  let reduce = ref 0 in
  Builder.in_node b (fun () ->
      let s = Builder.source b ~name:"sample" () in
      let r =
        Wishbone.Aggregation.reduce_op b ~name:"mean8" ~window:8
          ~combine:(fun vs ->
            let sum =
              List.fold_left
                (fun acc v ->
                  match v with Value.Float f -> acc +. f | _ -> acc)
                0. vs
            in
            (Value.Float (sum /. 8.), Workload.make ~float_ops:9. ~call_ops:1. ()))
          s
      in
      reduce := Builder.op_id r;
      Builder.sink b ~name:"collect" r);
  let graph = Builder.build b in
  let source = List.hd (Graph.sources graph) in
  let events =
    Profiler.Profile.Trace.periodic ~source ~rate:32. ~duration:20.
      ~gen:(fun i -> Value.Float (Float.of_int i))
  in
  let agg_raw = Profiler.Profile.collect ~duration:20. graph events in
  match
    Wishbone.Spec.of_profile ~mode:Wishbone.Movable.Permissive
      ~node_platform:Profiler.Platform.tmote_sky agg_raw
  with
  | Error m -> print_endline m
  | Ok spec ->
      Printf.printf "bandwidth saved per node when aggregating in-network: %.1f B/s\n"
        (Wishbone.Aggregation.in_network_benefit spec ~op:!reduce);
      List.iter
        (fun fan_in ->
          let annotated =
            Wishbone.Aggregation.annotate_fan_in spec ~op:!reduce ~fan_in
          in
          match Wishbone.Partitioner.solve annotated with
          | Wishbone.Partitioner.Partitioned r ->
              Printf.printf
                "  fan-in %4.0f: reduce runs %-10s (node cpu %5.1f%%, cut %.1f B/s)\n"
                fan_in
                (if r.assignment.(!reduce) then "in-network" else "at server")
                (100. *. r.cpu) r.net
          | _ -> Printf.printf "  fan-in %4.0f: no partition\n" fan_in)
        [ 1.; 8.; 64.; 512.; 4096. ]
