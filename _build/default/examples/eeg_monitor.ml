(* The paper's EEG seizure-onset detection scenario (§6.1):

   1. build the 22-channel, 1126-operator wavelet-cascade application,
   2. train a patient-specific SVM on labelled synthetic windows,
   3. run the detector live over a stretch of signal,
   4. profile and partition the full graph for a wearable (TMote-class)
      processor, sweeping the input rate as in Figure 5(a).

     dune exec examples/eeg_monitor.exe *)

open Dataflow

let () =
  (* train a patient-specific detector *)
  print_endline "collecting labelled feature windows for SVM training...";
  let trainer = Apps.Eeg.build () in
  let data = Apps.Eeg.collect_features ~seed:33 ~n_windows:150 trainer in
  let svm = Dsp.Svm.train data in
  let correct =
    Array.fold_left
      (fun acc (x, label) ->
        let c, _ = Dsp.Svm.classify svm x in
        if c = label then acc + 1 else acc)
      0 data
  in
  Printf.printf "training accuracy: %d/%d windows\n" correct (Array.length data);

  (* run the detector over fresh signal *)
  let app = Apps.Eeg.build ~svm () in
  let exec = Runtime.Exec.full app.Apps.Eeg.graph in
  let gen = Dsp.Siggen.Eeg.create ~seed:77 ~n_channels:22 () in
  let alarms = ref 0 and windows = 60 in
  for w = 1 to windows do
    let ictal = Dsp.Siggen.Eeg.in_seizure gen in
    let channels = Dsp.Siggen.Eeg.window gen Apps.Eeg.window_samples in
    let outputs = ref [] in
    Array.iteri
      (fun ch samples ->
        let q =
          Array.map (fun x -> int_of_float (Float.round x)) samples
        in
        let fired =
          Runtime.Exec.fire exec ~op:app.Apps.Eeg.sources.(ch) ~port:0
            (Value.Int16_arr q)
        in
        outputs := fired.sink_values @ !outputs)
      channels;
    List.iter
      (fun v ->
        match v with
        | Value.Tuple [ Value.Bool true; Value.Float d ] ->
            incr alarms;
            Printf.printf "window %3d: SEIZURE DECLARED (decision %+.2f, %s)\n"
              w d
              (if ictal then "true positive" else "false positive")
        | _ -> ())
      !outputs
  done;
  Printf.printf "%d alarm(s) over %d windows (2 s each)\n" !alarms windows;

  (* partition the 1126-operator graph for a wearable processor *)
  print_endline "\nprofiling the full 22-channel graph (120 s of signal)...";
  let raw = Apps.Eeg.profile ~duration:120. app in
  (match
     Wishbone.Spec.of_profile ~mode:Wishbone.Movable.Permissive
       ~node_platform:Profiler.Platform.tmote_sky raw
   with
  | Error m -> print_endline m
  | Ok spec ->
      let contracted = Wishbone.Preprocess.contract spec in
      let orig, super = Wishbone.Preprocess.reduction contracted in
      Printf.printf
        "preprocessing: %d movable operators -> %d movable supernodes\n" orig
        super;
      Printf.printf "%-8s %22s %14s\n" "rate x" "operators on node"
        "cut bandwidth B/s";
      List.iter
        (fun mult ->
          match
            Wishbone.Partitioner.solve (Wishbone.Spec.scale_rate spec mult)
          with
          | Wishbone.Partitioner.Partitioned r ->
              Printf.printf "%-8.2f %22d %14.1f\n" mult
                (List.length (Wishbone.Partitioner.node_ops r))
                r.net
          | Wishbone.Partitioner.No_feasible_partition ->
              Printf.printf "%-8.2f %22s %14s\n" mult "(does not fit)" "-"
          | Wishbone.Partitioner.Solver_failure m ->
              Printf.printf "%-8.2f solver failure: %s\n" mult m)
        [ 0.25; 0.5; 0.75; 1.0 ];
      print_endline
        "\nwhen the full 256 Hz x 22-channel load does not fit, Wishbone\n\
         reports how far the rate must drop (§4.3):";
      match Wishbone.Rate_search.search spec with
      | Some { rate_multiplier; report } ->
          Printf.printf
            "max sustainable rate x%.3f; %d operators in-network; %.1f B/s \
             to the server\n"
            rate_multiplier
            (List.length (Wishbone.Partitioner.node_ops report))
            report.net
      | None -> print_endline "no feasible partition at any rate")
