(* Quickstart: write a small stream program, profile it on sample
   data, and let Wishbone pick the optimal node/server partition for a
   TMote Sky.

     dune exec examples/quickstart.exe

   The program mirrors Figure 2 of the paper: a sensor source and a
   filter in the Node{} namespace, server-side processing after the
   implicit merge point. *)

open Dataflow

(* An 8-tap low-pass filter over 64-sample windows followed by 4x
   decimation: data-reducing, so worth running in-network if the CPU
   allows. *)
let filt_audio b stream =
  let taps = Dsp.Fir.low_pass ~cutoff:0.1 ~taps:8 in
  Builder.stateful b ~name:"filtAudio" ~kind:"fir"
    ~init:(fun () ->
      let fir = Dsp.Fir.create taps in
      fun ~port:_ v ->
        let samples = Value.float_arr v in
        let out, w = Dsp.Fir.decimate fir ~factor:4 samples in
        ([ Value.Float_arr out ], w))
    [ stream ]

(* Server-side feature: mean absolute amplitude per window. *)
let energy b stream =
  Builder.map b ~name:"energy" ~kind:"mag"
    (fun v ->
      let x = Value.float_arr v in
      let e, w = Dsp.Wavelet.mag_with_scale ~gain:(1. /. 16.) x in
      (Value.Float e, w))
    stream

let () =
  (* 1. wire the graph: namespace Node { s1 = readMic(); s2 =
     filtAudio(s1) }; main = energy(s2) *)
  let b = Builder.create () in
  let s2 =
    Builder.in_node b (fun () ->
        let s1 = Builder.source b ~name:"readMic" ~kind:"adc" () in
        filt_audio b s1)
  in
  let s3 = energy b s2 in
  Builder.sink b ~name:"display" s3;
  let graph = Builder.build b in
  let source = List.hd (Graph.sources graph) in
  Printf.printf "graph: %d operators, %d streams\n" (Graph.n_ops graph)
    (Graph.n_edges graph);

  (* 2. profile against sample data: 64-sample windows at 125 Hz
     (8 kHz audio) for 20 seconds *)
  let rng = Prng.create 42 in
  let events =
    Profiler.Profile.Trace.periodic ~source ~rate:125. ~duration:20.
      ~gen:(fun _ -> Value.Float_arr (Dsp.Siggen.white_noise rng 64))
  in
  let raw = Profiler.Profile.collect ~duration:20. graph events in
  Array.iter
    (fun (op : Op.t) ->
      let costed = Profiler.Profile.cost raw Profiler.Platform.tmote_sky in
      Printf.printf "  %-10s %8.1f us/fire  %5.1f%% of the TMote CPU\n"
        op.name
        (costed.seconds_per_fire.(op.id) *. 1e6)
        (100. *. costed.cpu_fraction.(op.id)))
    (Graph.ops graph);

  (* 3. partition for a TMote Sky *)
  (match Wishbone.Spec.of_profile ~mode:Wishbone.Movable.Permissive
           ~node_platform:Profiler.Platform.tmote_sky raw
   with
  | Error m -> print_endline ("cannot partition: " ^ m)
  | Ok spec -> (
      match Wishbone.Partitioner.solve spec with
      | Wishbone.Partitioner.Partitioned r ->
          Format.printf "%a@."
            (Wishbone.Partitioner.pp_report graph)
            r;
          (* 4. write the visualization *)
          let costed = Profiler.Profile.cost raw Profiler.Platform.tmote_sky in
          Wishbone.Viz.save ~path:"quickstart.dot" ~assignment:r.assignment
            ~costed raw;
          print_endline "wrote quickstart.dot (render with graphviz)"
      | Wishbone.Partitioner.No_feasible_partition -> (
          print_endline "no feasible partition at the full rate; searching...";
          match Wishbone.Rate_search.search spec with
          | Some { rate_multiplier; report } ->
              Printf.printf "max sustainable rate: x%.3f\n" rate_multiplier;
              Format.printf "%a@."
                (Wishbone.Partitioner.pp_report graph)
                report
          | None -> print_endline "no feasible partition at any rate")
      | Wishbone.Partitioner.Solver_failure m -> print_endline m))
