(* Fleet placement service benchmark: batch throughput under query
   sharding, and the cache's replay speedup.

   A mixed 32-query fleet batch (eeg14/eeg22/speech at several rates,
   synthetic instances with rate searches, and exact duplicates) is
   served cold at shard counts 1/2/4 — each on a fresh service, so
   every run does identical work — and then replayed against the
   shards=1 service's warm cache.  Answers must be byte-identical
   across every shard count, between cold and warm passes, and against
   the direct no-service solve path.

   Shard scaling is real parallel speedup only when the machine has
   cores to give; the JSON records the core count next to the numbers
   so a single-core container's flat curve reads as what it is.

   Writes BENCH_service.json at the repo root:

     dune exec bench/main.exe -- service
     dune exec bench/main.exe -- service-smoke   (CI: tiny batch, asserts)

   DESIGN.md §16. *)

type pass_result = {
  shards : int;
  wall_ms : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
  digests : string array;
}

let run_pass ~shards svc queries =
  let t0 = Unix.gettimeofday () in
  let responses = Wishbone.Service.run_batch ~shards svc queries in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let lat =
    Array.map (fun (r : Wishbone.Service.response) -> r.latency_ms) responses
  in
  Array.sort compare lat;
  {
    shards;
    wall_ms;
    qps = Float.of_int (Array.length queries) /. Float.max 1e-9 (wall_ms /. 1000.);
    p50_ms = Bench_util.percentile lat 0.5;
    p99_ms = Bench_util.percentile lat 0.99;
    digests =
      Array.map (fun (r : Wishbone.Service.response) -> r.digest) responses;
  }

(* direct-path reference answers, memoised per cache key so duplicate
   queries are solved once *)
let direct_digests svc queries =
  let memo = Hashtbl.create 16 in
  Array.map
    (fun q ->
      let key = Wishbone.Service.query_key svc q in
      match Hashtbl.find_opt memo key with
      | Some d -> d
      | None ->
          let d =
            Wishbone.Service.answer_digest (Wishbone.Service.solve_direct q)
          in
          Hashtbl.add memo key d;
          d)
    queries

let check label ok =
  if not ok then begin
    Printf.eprintf "service bench: FAILED: %s\n" label;
    exit 1
  end

let fleet_queries () =
  let q placement request = { Wishbone.Service.placement; request } in
  let rate pl r = q pl (Wishbone.Service.Rate r) in
  let search pl = q pl Wishbone.Service.Search in
  let app_pl spec = Wishbone.Placement.of_spec spec in
  let eeg14 =
    app_pl
      (Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
         ~platform:Profiler.Platform.tmote_sky
         (Apps.Eeg.profile ~duration:30. (Apps.Eeg.build ~n_channels:14 ())))
  in
  let eeg22 =
    app_pl
      (Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
         ~platform:Profiler.Platform.tmote_sky
         (Apps.Eeg.profile ~duration:30. (Apps.Eeg.build ())))
  in
  let speech =
    app_pl
      (Bench_util.spec_exn ~platform:Profiler.Platform.tmote_sky
         (Lazy.force Bench_util.speech_profile))
  in
  let synth seed =
    app_pl (Apps.Synthetic.random_spec ~seed ~n_ops:12 ())
  in
  (* fixed rates only on the profiled apps: a full-proof rate search
     on eeg22 brackets through deliberately overloaded instances whose
     optimality proofs run for minutes — searches ride on the
     synthetic instances instead *)
  let per_app pl =
    [ rate pl 0.4; rate pl 0.7; rate pl 1.0; rate pl 1.3;
      rate pl 0.7 (* duplicate *) ]
  in
  let synths =
    List.concat_map
      (fun seed -> [ rate (synth seed) 0.8; rate (synth seed) 1.2 ])
      [ 1; 2; 3; 4; 5 ]
    @ List.map (fun seed -> search (synth seed)) [ 1; 2; 3; 4 ]
    @ [ rate (synth 1) 0.8; rate (synth 2) 1.2; search (synth 1);
        search (synth 2); rate (synth 3) 0.8 (* duplicates *) ]
  in
  let speech_qs =
    [ rate speech 0.5; rate speech 1.0; rate speech 0.5 (* duplicate *) ]
  in
  let batch =
    Array.of_list (per_app eeg14 @ per_app eeg22 @ synths @ speech_qs)
  in
  (* near-repeats: the same instances at rates the cache has never
     seen — solved, but warm-started from the resident entries *)
  let near =
    Array.of_list
      [
        rate eeg14 0.55; rate eeg14 1.15; rate eeg22 0.55; rate eeg22 1.15;
        rate speech 0.7; rate (synth 1) 0.9; rate (synth 2) 1.05;
        rate (synth 3) 0.9;
      ]
  in
  (batch, near)

let write_json ~cores ~n ~cold ~warmed ~near ~near_warm_starts ~warm_speedup
    ~shard_speedup (c : Wishbone.Service.counters) =
  let oc = open_out "BENCH_service.json" in
  let pass (r : pass_result) =
    Printf.sprintf
      "    {\"shards\": %d, \"wall_ms\": %.4f, \"qps\": %.1f, \"p50_ms\": \
       %.4f, \"p99_ms\": %.4f}"
      r.shards r.wall_ms r.qps r.p50_ms r.p99_ms
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"placement_service\",\n\
    \  \"cores\": %d,\n\
    \  \"n_queries\": %d,\n\
    \  \"cold\": [\n%s\n  ],\n\
    \  \"warmed\": %s,\n\
    \  \"near_repeat\": {\"n_queries\": %d, \"wall_ms\": %.4f, \
     \"warm_starts\": %d},\n\
    \  \"warm_speedup_vs_cold\": %.2f,\n\
    \  \"shard4_speedup_vs_shard1\": %.2f,\n\
    \  \"counters\": {\"queries\": %d, \"hits\": %d, \"misses\": %d, \
     \"warm_starts\": %d, \"inserts\": %d, \"evictions\": %d, \"resident\": \
     %d},\n\
    \  \"equivalence_ok\": true\n\
     }\n"
    cores n
    (String.concat ",\n" (List.map pass cold))
    (String.trim (pass warmed))
    (Array.length near.digests) near.wall_ms near_warm_starts
    warm_speedup shard_speedup c.Wishbone.Service.queries
    c.Wishbone.Service.hits c.Wishbone.Service.misses
    c.Wishbone.Service.warm_starts c.Wishbone.Service.inserts
    c.Wishbone.Service.evictions c.Wishbone.Service.resident;
  close_out oc

let run () =
  Bench_util.header "placement service: sharded batches and cache replay";
  Bench_util.paper_vs
    "service answers are byte-identical to the direct solve path for every \
     shard count, cold or warm";
  let queries, near_queries = fleet_queries () in
  let n = Array.length queries in
  let cores = Domain.recommended_domain_count () in
  (* cold runs: a fresh service per shard count, identical work each *)
  let cold =
    List.map
      (fun shards ->
        let svc = Wishbone.Service.create ~capacity:64 () in
        let r = run_pass ~shards svc queries in
        Bench_util.row
          "cold  shards=%d  %8.1f ms  %7.1f queries/s  p50 %7.3f ms  p99 \
           %7.3f ms\n"
          shards r.wall_ms r.qps r.p50_ms r.p99_ms;
        (svc, r))
      [ 1; 2; 4 ]
  in
  let svc1, cold1 = List.hd cold in
  let cold_results = List.map snd cold in
  (* every shard count must produce identical bytes *)
  List.iter
    (fun (r : pass_result) ->
      check
        (Printf.sprintf "shards=%d digests differ from shards=1" r.shards)
        (r.digests = cold1.digests))
    cold_results;
  (* warmed replay through the shards=1 service's populated cache *)
  let warmed = run_pass ~shards:1 svc1 queries in
  Bench_util.row
    "warm  shards=1  %8.1f ms  %7.1f queries/s  p50 %7.3f ms  p99 %7.3f ms\n"
    warmed.wall_ms warmed.qps warmed.p50_ms warmed.p99_ms;
  check "warm digests differ from cold" (warmed.digests = cold1.digests);
  (* and the whole batch must match the no-service direct path *)
  let direct = direct_digests svc1 queries in
  check "served digests differ from direct solves" (direct = cold1.digests);
  (* near-repeats: unseen rates over resident instances warm-start
     from the stored tier assignment and root basis *)
  let warm0 = (Wishbone.Service.counters svc1).Wishbone.Service.warm_starts in
  let t0 = Unix.gettimeofday () in
  let near_resp = Wishbone.Service.run_batch ~shards:1 svc1 near_queries in
  let near =
    {
      shards = 1;
      wall_ms = (Unix.gettimeofday () -. t0) *. 1000.;
      qps = 0.;
      p50_ms = 0.;
      p99_ms = 0.;
      digests =
        Array.map
          (fun (r : Wishbone.Service.response) -> r.digest)
          near_resp;
    }
  in
  let near_warm_starts =
    (Wishbone.Service.counters svc1).Wishbone.Service.warm_starts - warm0
  in
  check "near-repeat digests differ from direct solves"
    (direct_digests svc1 near_queries = near.digests);
  Bench_util.row "near  shards=1  %8.1f ms  %d/%d queries warm-started\n"
    near.wall_ms near_warm_starts
    (Array.length near_queries);
  let warm_speedup = cold1.wall_ms /. Float.max 1e-9 warmed.wall_ms in
  let cold4 = List.nth cold_results 2 in
  let shard_speedup = cold1.wall_ms /. Float.max 1e-9 cold4.wall_ms in
  Bench_util.row
    "cache replay speedup %.1fx; shards=4 vs shards=1 %.2fx (%d cores)\n"
    warm_speedup shard_speedup cores;
  write_json ~cores ~n ~cold:cold_results ~warmed ~near ~near_warm_starts
    ~warm_speedup ~shard_speedup
    (Wishbone.Service.counters svc1);
  Bench_util.row "wrote BENCH_service.json\n"

(* CI smoke: a tiny synthetic batch, shards=2, asserting byte-identity
   against the direct path and counter conservation — seconds, not
   minutes *)
let smoke () =
  Bench_util.header "placement service: smoke";
  let pl seed = Wishbone.Placement.of_spec (Apps.Synthetic.random_spec ~seed ~n_ops:8 ()) in
  let q placement request = { Wishbone.Service.placement; request } in
  let queries =
    [|
      q (pl 1) (Wishbone.Service.Rate 0.8);
      q (pl 2) (Wishbone.Service.Rate 1.1);
      q (pl 3) Wishbone.Service.Search;
      q (pl 1) (Wishbone.Service.Rate 1.2);
      q (pl 1) (Wishbone.Service.Rate 0.8);
      q (pl 2) Wishbone.Service.Search;
      q (pl 2) (Wishbone.Service.Rate 1.1);
      q (pl 3) (Wishbone.Service.Rate 0.9);
    |]
  in
  let svc = Wishbone.Service.create ~capacity:4 () in
  let cold = run_pass ~shards:2 svc queries in
  let direct = direct_digests svc queries in
  check "smoke: served digests differ from direct solves"
    (direct = cold.digests);
  let warm = run_pass ~shards:2 svc queries in
  check "smoke: warm replay digests differ" (warm.digests = cold.digests);
  let c = Wishbone.Service.counters svc in
  check "smoke: hits + misses <> queries"
    (c.Wishbone.Service.hits + c.Wishbone.Service.misses
    = c.Wishbone.Service.queries);
  check "smoke: inserts - evictions <> resident"
    (c.Wishbone.Service.inserts - c.Wishbone.Service.evictions
    = c.Wishbone.Service.resident);
  check "smoke: resident over capacity" (c.Wishbone.Service.resident <= 4);
  Bench_util.row
    "smoke ok: %d queries x2 passes, %d hits, %d misses, digests match the \
     direct path\n"
    (Array.length queries) c.Wishbone.Service.hits c.Wishbone.Service.misses
