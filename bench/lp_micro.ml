(* LP warm-start micro-benchmark: the EEG rate search (the paper's
   §7.2 hot path — every bracket/bisection step is a full ILP solve)
   run twice, cold (every branch & bound node pays a fresh two-phase
   primal solve, no incumbent carried between rate steps) vs warm
   (parent-basis dual simplex re-solves + incremental rate search).

   Prints total simplex pivots and wall time for both modes and
   writes BENCH_lp.json at the repo root so later PRs have a perf
   baseline to regress against:

     dune exec bench/main.exe -- lp        -- default 22-channel EEG
     dune exec bench/main.exe -- lp 8      -- smaller instance *)

type mode_result = {
  pivots : int;
  lp_solves : int;
  hot_solves : int;
  refactorisations : int;
  ft_updates : int;
  ft_entries : int;
  wall_s : float;
  rate : float;
}

let run_mode ~label ~warm spec =
  let options =
    {
      Wishbone.Rate_search.default_search_options with
      Lp.Branch_bound.warm_start = warm;
    }
  in
  let p0 = Lp.Simplex.cumulative_pivots () in
  let c0 = Lp.Sparse.counters () in
  let t0 = Unix.gettimeofday () in
  let result =
    Wishbone.Rate_search.search ~incremental:warm ~options spec
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let pivots = Lp.Simplex.cumulative_pivots () - p0 in
  let c1 = Lp.Sparse.counters () in
  let lp_solves, hot_solves, rate =
    match result with
    | Some r ->
        let solver =
          r.Wishbone.Rate_search.report.Wishbone.Partitioner.solver
        in
        ( solver.Lp.Branch_bound.lp_solves,
          solver.Lp.Branch_bound.hot_solves,
          r.Wishbone.Rate_search.rate_multiplier )
    | None -> (0, 0, nan)
  in
  Bench_util.row "%-6s %10d pivots  %8.3f s  rate x%.4f\n" label pivots wall_s
    rate;
  {
    pivots;
    lp_solves;
    hot_solves;
    refactorisations =
      c1.Lp.Sparse.refactorisations - c0.Lp.Sparse.refactorisations;
    ft_updates = c1.Lp.Sparse.ft_updates - c0.Lp.Sparse.ft_updates;
    ft_entries = c1.Lp.Sparse.ft_entries - c0.Lp.Sparse.ft_entries;
    wall_s;
    rate;
  }

(* Fixed-rate comparison: partition the same scaled instance once with
   warm starts and once without, under a budget generous enough that
   both finish.  Same problem in, same partition out — this isolates
   the solver speedup from the rate search's budget dynamics. *)
type resolve_result = {
  r_pivots : int;
  r_refactorisations : int;
  r_ft_updates : int;
  r_wall_s : float;
  objective : float;
}

let resolve_at ~warm spec rate =
  let scaled = Wishbone.Spec.scale_rate spec rate in
  let options =
    {
      Wishbone.Rate_search.default_search_options with
      Lp.Branch_bound.warm_start = warm;
      time_limit = 120.;
    }
  in
  let p0 = Lp.Simplex.cumulative_pivots () in
  let c0 = Lp.Sparse.counters () in
  let t0 = Unix.gettimeofday () in
  match Wishbone.Partitioner.solve ~options scaled with
  | Wishbone.Partitioner.Partitioned r ->
      let c1 = Lp.Sparse.counters () in
      Some
        {
          r_pivots = Lp.Simplex.cumulative_pivots () - p0;
          r_refactorisations =
            c1.Lp.Sparse.refactorisations - c0.Lp.Sparse.refactorisations;
          r_ft_updates = c1.Lp.Sparse.ft_updates - c0.Lp.Sparse.ft_updates;
          r_wall_s = Unix.gettimeofday () -. t0;
          objective = r.Wishbone.Partitioner.objective;
        }
  | _ -> None

let write_json ~n_channels ~(cold : mode_result) ~(warm : mode_result)
    ~(rc : resolve_result option) ~(rw : resolve_result option) =
  let oc = open_out "BENCH_lp.json" in
  let mode name (r : mode_result) =
    Printf.sprintf
      "  \"%s\": {\"total_pivots\": %d, \"final_solve_lps\": %d, \
       \"final_solve_hot_lps\": %d, \"refactorisations\": %d, \
       \"ft_updates\": %d, \"ft_entries\": %d, \"wall_s\": %.6f, \
       \"rate_multiplier\": %.6f}"
      name r.pivots r.lp_solves r.hot_solves r.refactorisations r.ft_updates
      r.ft_entries r.wall_s r.rate
  in
  let resolve name = function
    | Some r ->
        Printf.sprintf
          "  \"resolve_%s\": {\"pivots\": %d, \"refactorisations\": %d, \
           \"ft_updates\": %d, \"wall_s\": %.6f, \"objective\": %.6f}"
          name r.r_pivots r.r_refactorisations r.r_ft_updates r.r_wall_s
          r.objective
    | None -> Printf.sprintf "  \"resolve_%s\": null" name
  in
  let pricing =
    match
      Lp.Branch_bound.default_options.Lp.Branch_bound.simplex
        .Lp.Simplex.pricing
    with
    | Lp.Simplex.Devex -> "devex"
    | Lp.Simplex.Dantzig -> "dantzig"
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"eeg_rate_search_warm_vs_cold\",\n\
    \  \"n_channels\": %d,\n\
    \  \"pricing\": \"%s\",\n\
     %s,\n\
     %s,\n\
     %s,\n\
     %s,\n\
    \  \"pivot_ratio\": %.3f,\n\
    \  \"speedup\": %.3f\n\
     }\n"
    n_channels pricing (mode "cold" cold) (mode "warm" warm) (resolve "cold" rc)
    (resolve "warm" rw)
    (Float.of_int cold.pivots /. Float.max 1. (Float.of_int warm.pivots))
    (cold.wall_s /. Float.max 1e-9 warm.wall_s);
  close_out oc

(* CI smoke: partition the speech and eeg14 instances with the dense
   tableau and with the sparse revised simplex forced under both
   pricing rules — devex exercises the reference-framework weights
   over the Forrest–Tomlin factor path, dantzig the candidate-list
   rule over the same factors — and fail loudly if any engine pair
   disagrees on the objective, or if the sparse runs never
   refactorised (meaning the LU path silently did not run).  Kept
   small enough that the CI step's wall-clock ceiling (see
   .github/workflows/ci.yml) catches any solver-path regression that
   turns sub-second solves into minutes. *)
let smoke () =
  Bench_util.header
    "bench smoke: dense vs sparse(devex|dantzig) LP engines, speech + eeg14";
  let run name rate spec =
    let spec = Wishbone.Spec.scale_rate spec rate in
    let solve solver pricing =
      let base = Lp.Branch_bound.default_options in
      let options =
        {
          base with
          Lp.Branch_bound.solver;
          simplex = { base.Lp.Branch_bound.simplex with Lp.Simplex.pricing };
        }
      in
      let t0 = Unix.gettimeofday () in
      match Wishbone.Partitioner.solve ~options spec with
      | Wishbone.Partitioner.Partitioned r ->
          (r.Wishbone.Partitioner.objective, Unix.gettimeofday () -. t0)
      | Wishbone.Partitioner.No_feasible_partition ->
          Printf.eprintf "smoke %s: unexpectedly infeasible\n" name;
          exit 1
      | Wishbone.Partitioner.Solver_failure m ->
          Printf.eprintf "smoke %s: solver failure: %s\n" name m;
          exit 1
    in
    let od, td = solve Lp.Branch_bound.Dense Lp.Simplex.Devex in
    let c0 = Lp.Sparse.counters () in
    let os, ts = solve Lp.Branch_bound.Sparse_revised Lp.Simplex.Devex in
    let oz, tz = solve Lp.Branch_bound.Sparse_revised Lp.Simplex.Dantzig in
    let c1 = Lp.Sparse.counters () in
    Bench_util.row
      "%-8s dense %12.6f (%6.3f s)   sparse/devex %12.6f (%6.3f s)   \
       sparse/dantzig %12.6f (%6.3f s)\n"
      name od td os ts oz tz;
    let agree a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs a) in
    if not (agree od os && agree od oz) then (
      Printf.eprintf
        "smoke %s: engines disagree: dense %.9g sparse/devex %.9g \
         sparse/dantzig %.9g\n"
        name od os oz;
      exit 1);
    if c1.Lp.Sparse.refactorisations <= c0.Lp.Sparse.refactorisations then (
      Printf.eprintf
        "smoke %s: sparse runs never refactorised — LU path did not run\n"
        name;
      exit 1)
  in
  run "speech" 0.05
    (Bench_util.spec_exn ~platform:Profiler.Platform.tmote_sky
       (Lazy.force Bench_util.speech_profile));
  run "eeg14" 1.0
    (Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
       ~platform:Profiler.Platform.tmote_sky
       (Apps.Eeg.profile ~duration:30. (Apps.Eeg.build ~n_channels:14 ())));
  Bench_util.row "smoke ok\n"

(* Default to 14 channels: the largest EEG instance where neither mode
   hits the rate search's 10 s per-attempt solver budget, so cold and
   warm provably agree on the found rate and the comparison is
   apples-to-apples.  At 22 channels the warm search proves feasibility
   at rates the cold search's budget cannot reach (run [lp 22] to see
   it win outright). *)
let run ?(n_channels = 14) () =
  Bench_util.header
    (Printf.sprintf
       "LP micro: warm-started dual simplex vs cold solves, %d-channel EEG \
        rate search"
       n_channels);
  Bench_util.paper_vs
    "MILP folklore: warm-starting child LPs from the parent basis is worth \
     10-100x on tree search";
  let raw = Apps.Eeg.profile ~duration:30. (Apps.Eeg.build ~n_channels ()) in
  let spec =
    Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
      ~platform:Profiler.Platform.tmote_sky raw
  in
  let cold = run_mode ~label:"cold" ~warm:false spec in
  let warm = run_mode ~label:"warm" ~warm:true spec in
  let ratio =
    Float.of_int cold.pivots /. Float.max 1. (Float.of_int warm.pivots)
  in
  Bench_util.row "pivot reduction: %.1fx  (wall-clock %.1fx, %d/%d final \
                  LPs hot)\n"
    ratio
    (cold.wall_s /. Float.max 1e-9 warm.wall_s)
    warm.hot_solves warm.lp_solves;
  (* fixed-rate re-solve at the cold search's found rate: both modes
     complete, partitions are identical, only the work differs *)
  let rc, rw =
    if Float.is_nan cold.rate then (None, None)
    else
      let rc = resolve_at ~warm:false spec cold.rate in
      let rw = resolve_at ~warm:true spec cold.rate in
      (match (rc, rw) with
      | Some c, Some w ->
          Bench_util.row
            "fixed-rate solve at x%.4f: cold %d pivots %.3f s | warm %d \
             pivots %.3f s (%.1fx wall)\n"
            cold.rate c.r_pivots c.r_wall_s w.r_pivots w.r_wall_s
            (c.r_wall_s /. Float.max 1e-9 w.r_wall_s)
      | _ -> ());
      (rc, rw)
  in
  write_json ~n_channels ~cold ~warm ~rc ~rw;
  Bench_util.row "wrote BENCH_lp.json\n"
