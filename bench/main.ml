(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md experiment index).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig7    -- one experiment
     dune exec bench/main.exe -- fig6 2100   -- full-size Figure 6
     dune exec bench/main.exe -- micro   -- Bechamel micro-benchmarks *)

let experiments =
  [
    ("fig3", fun () -> Fig3.run ());
    ("fig5a", fun () -> Fig5a.run ());
    ("fig5b", fun () -> Fig5b.run ());
    ("fig6", fun () -> Fig6.run ());
    ("fig7", fun () -> Fig7.run ());
    ("fig8", fun () -> Fig8.run ());
    ("fig9", fun () -> Fig9_10.run ());
    ("fig10", fun () -> Fig9_10.run ());
    ("headline", fun () -> Headline.run ());
    ("ablations", fun () -> Ablations.run ());
    ("micro", fun () -> Micro.run ());
    ("lp", fun () -> Lp_micro.run ());
    ("smoke", fun () -> Lp_micro.smoke ());
    ("faults", fun () -> Faults.run ());
    ("placement", fun () -> Placement_bench.run ());
    ("service", fun () -> Service_bench.run ());
    ("service-smoke", fun () -> Service_bench.smoke ());
    ("robust", fun () -> Robust_bench.run ());
    ("robust-smoke", fun () -> Robust_bench.smoke ());
    ("tree-smoke", fun () -> Placement_bench.smoke_tree ());
    ("scale", fun () -> Scale_bench.run ());
    ("scale-smoke", fun () -> Scale_bench.smoke ());
  ]

let default_order =
  [ "fig3"; "fig5a"; "fig5b"; "fig6"; "fig7"; "fig8"; "fig9"; "headline";
    "ablations"; "micro"; "lp"; "faults"; "placement"; "service"; "robust" ]

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
      print_endline "Wishbone reproduction: all evaluation experiments";
      List.iter (fun name -> (List.assoc name experiments) ()) default_order
  | [ _; "fig6"; count ] -> (
      match int_of_string_opt count with
      | Some count -> Fig6.run ~count ()
      | None ->
          Printf.eprintf "fig6: operator count must be an integer, got %s\n"
            count;
          exit 1)
  | [ _; "lp"; channels ] -> (
      match int_of_string_opt channels with
      | Some n_channels -> Lp_micro.run ~n_channels ()
      | None ->
          Printf.eprintf "lp: channel count must be an integer, got %s\n"
            channels;
          exit 1)
  | [ _; name ] -> (
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
  | _ ->
      prerr_endline "usage: main.exe [experiment] | fig6 <count>";
      exit 1
