(* Fault-contained serving benchmark: goodput under injected solver
   faults, gap-certified degradation under work-unit budgets, and
   checkpoint save/restore latency.

   The same 32-query eeg14/eeg22/synthetic fleet batch as the service
   bench is served under seeded fault plans at rates 0 .. 0.4 — each on
   a fresh service, so every sweep point does identical work — and
   under shrinking branch-and-bound node budgets.  Every faulted run
   must conserve ok + degraded + failed = queries, and the 10 % point
   is re-run at shards 1/2/4 to confirm the containment layer keeps
   answers and counters machine-shape independent.  Finally the warm
   service is checkpointed, the snapshot reloaded, and the whole batch
   replayed byte-identically through the restored cache.

   Writes BENCH_robust.json at the repo root:

     dune exec bench/main.exe -- robust
     dune exec bench/main.exe -- robust-smoke   (CI: asserts, seconds)

   DESIGN.md §17. *)

type sweep_point = {
  label : string;
  wall_ms : float;
  ok : int;
  degraded : int;
  failed : int;
  retries : int;
  deaths : int;
}

let check label ok =
  if not ok then begin
    Printf.eprintf "robust bench: FAILED: %s\n" label;
    exit 1
  end

let fleet_queries () =
  let q placement request = { Wishbone.Service.placement; request } in
  let rate pl r = q pl (Wishbone.Service.Rate r) in
  let search pl = q pl Wishbone.Service.Search in
  let app_pl spec = Wishbone.Placement.of_spec spec in
  let eeg14 =
    app_pl
      (Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
         ~platform:Profiler.Platform.tmote_sky
         (Apps.Eeg.profile ~duration:10. (Apps.Eeg.build ~n_channels:14 ())))
  in
  let eeg22 =
    app_pl
      (Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
         ~platform:Profiler.Platform.tmote_sky
         (Apps.Eeg.profile ~duration:10. (Apps.Eeg.build ())))
  in
  let synth seed =
    app_pl (Apps.Synthetic.random_spec ~seed ~n_ops:12 ())
  in
  let per_app pl =
    [ rate pl 0.4; rate pl 0.7; rate pl 1.0; rate pl 1.3; rate pl 0.7 ]
  in
  Array.of_list
    (per_app eeg14 @ per_app eeg22
    @ List.concat_map
        (fun seed -> [ rate (synth seed) 0.8; rate (synth seed) 1.2 ])
        [ 1; 2; 3; 4; 5 ]
    @ List.map (fun seed -> search (synth seed)) [ 1; 2; 3; 4 ]
    @ [ rate (synth 1) 0.8; rate (synth 2) 1.2; search (synth 1);
        search (synth 2); rate (synth 3) 0.8 ]
    @ [ rate eeg14 0.4; rate eeg22 1.0; rate (synth 4) 1.2 ])

let digests responses =
  Array.map (fun (r : Wishbone.Service.response) -> r.Wishbone.Service.digest)
    responses

let sweep_point ~label ?options ?fault_plan ?(retries = 1) ?(shards = 2)
    queries =
  let svc = Wishbone.Service.create ~capacity:64 ?options ~retries ?fault_plan () in
  let t0 = Unix.gettimeofday () in
  let responses = Wishbone.Service.run_batch ~shards svc queries in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let c = Wishbone.Service.counters svc in
  check
    (label ^ ": ok + degraded + failed <> queries")
    (c.Wishbone.Service.ok + c.Wishbone.Service.degraded
     + c.Wishbone.Service.failed
    = c.Wishbone.Service.queries);
  ( svc,
    responses,
    {
      label;
      wall_ms;
      ok = c.Wishbone.Service.ok;
      degraded = c.Wishbone.Service.degraded;
      failed = c.Wishbone.Service.failed;
      retries = c.Wishbone.Service.retries;
      deaths = c.Wishbone.Service.worker_deaths;
    } )

let point_json p =
  Printf.sprintf
    "    {\"point\": \"%s\", \"wall_ms\": %.4f, \"ok\": %d, \"degraded\": %d, \
     \"failed\": %d, \"retries\": %d, \"worker_deaths\": %d}"
    p.label p.wall_ms p.ok p.degraded p.failed p.retries p.deaths

let run () =
  Bench_util.header
    "fault-contained serving: goodput, degradation, checkpoints";
  Bench_util.paper_vs
    "injected solver faults are contained to Failed answers; budgets \
     degrade with a certified gap; snapshots replay byte-identically";
  let queries = fleet_queries () in
  let n = Array.length queries in
  (* goodput vs fault rate, one fresh service per point *)
  let fault_rates = [ 0.0; 0.05; 0.1; 0.2; 0.4 ] in
  let fault_points =
    List.map
      (fun rate ->
        let fault_plan =
          if rate = 0.0 then Wishbone.Service.Fault_plan.none
          else Wishbone.Service.Fault_plan.seeded ~rate 1
        in
        let _, _, p =
          sweep_point ~label:(Printf.sprintf "fault_rate=%.2f" rate)
            ~fault_plan queries
        in
        Bench_util.row
          "faults %.2f  %8.1f ms  ok %2d  degraded %2d  failed %2d  retries \
           %2d  deaths %d\n"
          rate p.wall_ms p.ok p.degraded p.failed p.retries p.deaths;
        p)
      fault_rates
  in
  (* the 10% point must be shard-shape independent *)
  let plan10 = Wishbone.Service.Fault_plan.seeded ~rate:0.1 1 in
  let shard_runs =
    List.map
      (fun shards ->
        let _, responses, p =
          sweep_point ~label:(Printf.sprintf "shards=%d" shards)
            ~fault_plan:plan10 ~shards queries
        in
        (digests responses, p))
      [ 1; 2; 4 ]
  in
  let d1, p1 = List.hd shard_runs in
  List.iter
    (fun (d, p) ->
      check (p.label ^ ": digests differ from shards=1") (d = d1);
      check
        (p.label ^ ": containment counters differ from shards=1")
        ((p.ok, p.degraded, p.failed, p.retries, p.deaths)
        = (p1.ok, p1.degraded, p1.failed, p1.retries, p1.deaths)))
    (List.tl shard_runs);
  Bench_util.row "shards 1/2/4 at 10%% faults: byte-identical\n";
  (* goodput vs node budget, faults off *)
  let budgets = [ 1; 2; 8; max_int ] in
  let budget_points =
    List.map
      (fun b ->
        let label =
          if b = max_int then "node_budget=inf"
          else Printf.sprintf "node_budget=%d" b
        in
        let options =
          { Lp.Branch_bound.default_options with max_nodes = b }
        in
        let _, _, p = sweep_point ~label ~options queries in
        Bench_util.row "budget %-8s  %8.1f ms  ok %2d  degraded %2d  failed %2d\n"
          (if b = max_int then "inf" else string_of_int b)
          p.wall_ms p.ok p.degraded p.failed;
        p)
      budgets
  in
  (* checkpoint round trip on a warm faults-off service *)
  let svc, responses, _ = sweep_point ~label:"warm" queries in
  let path = Filename.temp_file "wishbone_bench" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t0 = Unix.gettimeofday () in
      Wishbone.Service.checkpoint svc path;
      let save_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let size = (Unix.stat path).Unix.st_size in
      let t1 = Unix.gettimeofday () in
      let revived, outcome = Wishbone.Service.restore path in
      let load_ms = (Unix.gettimeofday () -. t1) *. 1000. in
      let restored =
        match outcome with
        | Wishbone.Service.Restored k -> k
        | Wishbone.Service.Cold_start reason ->
            check ("restore went cold: " ^ reason) false;
            0
      in
      let replay = Wishbone.Service.run_batch ~shards:2 revived queries in
      check "restored replay differs from the live service"
        (digests replay = digests responses);
      Bench_util.row
        "checkpoint: save %.2f ms, %d bytes, load %.2f ms, %d entries, \
         replay byte-identical\n"
        save_ms size load_ms restored;
      let oc = open_out "BENCH_robust.json" in
      Printf.fprintf oc
        "{\n\
        \  \"benchmark\": \"robust_service\",\n\
        \  \"n_queries\": %d,\n\
        \  \"fault_sweep\": [\n%s\n  ],\n\
        \  \"budget_sweep\": [\n%s\n  ],\n\
        \  \"shard_identity_at_10pct\": true,\n\
        \  \"checkpoint\": {\"save_ms\": %.4f, \"bytes\": %d, \"load_ms\": \
         %.4f, \"entries\": %d, \"replay_identical\": true}\n\
         }\n"
        n
        (String.concat ",\n" (List.map point_json fault_points))
        (String.concat ",\n" (List.map point_json budget_points))
        save_ms size load_ms restored;
      close_out oc);
  Bench_util.row "wrote BENCH_robust.json\n"

(* CI smoke: the acceptance batch — 32 queries over eeg14/eeg22 and
   synthetic instances at a 10% injected fault rate — served at shards
   1/2/4 with byte-identity and conservation asserts, plus a
   kill-and-restore replay.  Seconds, not minutes. *)
let smoke () =
  Bench_util.header "fault-contained serving: smoke";
  let queries = fleet_queries () in
  check "acceptance batch is 32 queries" (Array.length queries = 32);
  let plan = Wishbone.Service.Fault_plan.seeded ~rate:0.1 1 in
  let runs =
    List.map
      (fun shards ->
        let svc, responses, p =
          sweep_point ~label:(Printf.sprintf "shards=%d" shards)
            ~fault_plan:plan ~shards queries
        in
        (svc, digests responses, p))
      [ 1; 2; 4 ]
  in
  let _, d1, p1 = List.hd runs in
  List.iter
    (fun (_, d, p) ->
      check (p.label ^ ": digests differ from shards=1") (d = d1);
      check
        (p.label ^ ": counters differ from shards=1")
        ((p.ok, p.degraded, p.failed, p.retries, p.deaths)
        = (p1.ok, p1.degraded, p1.failed, p1.retries, p1.deaths)))
    (List.tl runs);
  check "smoke: conservation" (p1.ok + p1.degraded + p1.failed = 32);
  (* kill-and-restore: checkpoint the shards=2 service, reload, replay *)
  let svc2, d2, _ = List.nth runs 1 in
  let path = Filename.temp_file "wishbone_smoke" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Wishbone.Service.checkpoint svc2 path;
      let revived, outcome =
        Wishbone.Service.restore ~fault_plan:plan path
      in
      (match outcome with
      | Wishbone.Service.Restored _ -> ()
      | Wishbone.Service.Cold_start reason ->
          check ("smoke: restore went cold: " ^ reason) false);
      let replay = Wishbone.Service.run_batch ~shards:2 revived queries in
      let replay2 = Wishbone.Service.run_batch ~shards:2 svc2 queries in
      check "smoke: restored replay differs from the live service"
        (digests replay = digests replay2);
      ignore d2);
  Bench_util.row
    "smoke ok: 32 queries at 10%% faults, shards 1/2/4 byte-identical, ok %d \
     degraded %d failed %d (retries %d, deaths %d), kill-and-restore replay \
     byte-identical\n"
    p1.ok p1.degraded p1.failed p1.retries p1.deaths
