(* Fleet-scale simulator throughput (DESIGN.md §19): events/sec on
   synthetic fleets of 10^2..10^5 nodes, binary heap vs timing wheel,
   1/2/4 simulation domains.

   Every configuration of a given size must land on the bit-identical
   result — the digest check below is the bench-side replica of the
   [sched-equivalence] oracle and the re-pinned goldens — so the
   throughput ratios compare implementations of the *same* simulation,
   not different physics.  Domain scaling is real parallel speedup
   only when the machine has cores to give; the JSON records the core
   count next to the numbers.

   Writes BENCH_scale.json at the repo root:

     dune exec bench/main.exe -- scale
     dune exec bench/main.exe -- scale-smoke   (CI: 10k nodes, asserts)

   The simulated horizon shrinks as the fleet grows so each size does
   a few million events at most. *)

type run = {
  sched : Netsim.Sched.kind;
  domains : int;
  wall_s : float;
  events : int;
  events_per_sec : float;
  digest : string;
}

(* every counter and every float (as IEEE bits), in a fixed order:
   equal strings = bit-identical results *)
let digest (r : Netsim.Testbed.result) =
  let b = Buffer.create 256 in
  let i n = Buffer.add_string b (string_of_int n); Buffer.add_char b ',' in
  let f x =
    Buffer.add_string b (Printf.sprintf "%Lx," (Int64.bits_of_float x))
  in
  i r.inputs_offered; i r.inputs_processed; i r.msgs_sent; i r.msgs_received;
  i r.packets_sent; i r.packets_lost_collision; i r.packets_lost_channel;
  i r.packets_lost_queue; i r.sink_outputs; i r.msgs_duplicate;
  i r.msgs_expired; i r.msgs_pending; i r.retransmissions; i r.acks_sent;
  i r.acks_lost; i r.crashes; i r.inputs_lost_down; i r.events_processed;
  f r.input_fraction; f r.msg_fraction; f r.goodput_fraction;
  f r.node_busy_fraction; f r.offered_bytes_per_sec;
  Array.iter f r.edge_bytes_per_sec;
  Printf.sprintf "%08x" (Hashtbl.hash (Buffer.contents b))

let run_one ~(fleet : Netsim.Testbed.fleet) ~nodes ~duration ~sched ~domains =
  let config =
    Netsim.Testbed.default_config ~n_nodes:nodes ~duration ~seed:11 ~sched
      ~cells:fleet.cells ~domains ~platform:Profiler.Platform.tmote_sky
      ~link:Netsim.Link.cc2420 ()
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Netsim.Testbed.run config ~graph:fleet.graph
      ~node_of:(fun i -> i = fleet.source_op)
      ~sources:fleet.sources
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    sched;
    domains;
    wall_s;
    events = r.events_processed;
    events_per_sec = Float.of_int r.events_processed /. Float.max 1e-9 wall_s;
    digest = digest r;
  }

let sched_name = function Netsim.Sched.Heap -> "heap" | Wheel -> "wheel"

type size_result = {
  nodes : int;
  duration : float;
  runs : run list;
  wheel_speedup : float;  (* wheel vs heap, both domains = 1 *)
  identical : bool;
}

let bench_size ~nodes ~duration =
  let fleet = Netsim.Testbed.synthetic ~nodes ~seed:11 () in
  let go sched domains = run_one ~fleet ~nodes ~duration ~sched ~domains in
  let heap1 = go Netsim.Sched.Heap 1 in
  let wheel1 = go Netsim.Sched.Wheel 1 in
  let wheel2 = go Netsim.Sched.Wheel 2 in
  let wheel4 = go Netsim.Sched.Wheel 4 in
  let runs = [ heap1; wheel1; wheel2; wheel4 ] in
  let identical =
    List.for_all (fun r -> r.digest = heap1.digest && r.events = heap1.events)
      runs
  in
  {
    nodes;
    duration;
    runs;
    wheel_speedup = wheel1.events_per_sec /. heap1.events_per_sec;
    identical;
  }

let report (s : size_result) =
  List.iter
    (fun r ->
      Bench_util.row
        "  %6d nodes  %-5s d=%d  %9d events  %7.2f s  %10.0f ev/s\n"
        s.nodes (sched_name r.sched) r.domains r.events r.wall_s
        r.events_per_sec)
    s.runs;
  Bench_util.row "  %6d nodes  wheel/heap speedup %.2fx, digests %s\n"
    s.nodes s.wheel_speedup
    (if s.identical then "identical" else "DIVERGENT")

let write_json ~cores sizes =
  let oc = open_out "BENCH_scale.json" in
  let run_json (r : run) =
    Printf.sprintf
      "      {\"sched\": \"%s\", \"domains\": %d, \"wall_s\": %.4f, \
       \"events\": %d, \"events_per_sec\": %.0f, \"digest\": \"%s\"}"
      (sched_name r.sched) r.domains r.wall_s r.events r.events_per_sec
      r.digest
  in
  let size_json (s : size_result) =
    Printf.sprintf
      "    {\"nodes\": %d, \"duration_s\": %g, \"digests_identical\": %b, \
       \"wheel_speedup_vs_heap\": %.2f, \"runs\": [\n\
       %s\n\
      \    ]}"
      s.nodes s.duration s.identical s.wheel_speedup
      (String.concat ",\n" (List.map run_json s.runs))
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"netsim_scale\",\n\
    \  \"cores\": %d,\n\
    \  \"sizes\": [\n%s\n  ]\n\
     }\n"
    cores
    (String.concat ",\n" (List.map size_json sizes));
  close_out oc

let check label ok =
  if not ok then begin
    Printf.eprintf "scale bench: FAILED: %s\n" label;
    exit 1
  end

let run () =
  Bench_util.header "netsim scale: 10^2..10^5-node fleets, heap vs wheel";
  let cores = Domain.recommended_domain_count () in
  Bench_util.row "  %d cores available\n" cores;
  let sizes =
    List.map
      (fun (nodes, duration) -> bench_size ~nodes ~duration)
      [ (100, 60.); (1_000, 30.); (10_000, 8.); (100_000, 2.) ]
  in
  List.iter report sizes;
  List.iter
    (fun s -> check (Printf.sprintf "digests diverge at %d nodes" s.nodes)
        s.identical)
    sizes;
  write_json ~cores sizes;
  Bench_util.row "wrote BENCH_scale.json\n"

let smoke () =
  Bench_util.header "netsim scale: smoke (10k nodes)";
  let nodes = 10_000 and duration = 2. in
  let fleet = Netsim.Testbed.synthetic ~nodes ~seed:11 () in
  let wheel =
    run_one ~fleet ~nodes ~duration ~sched:Netsim.Sched.Wheel ~domains:1
  in
  let wheel2 =
    run_one ~fleet ~nodes ~duration ~sched:Netsim.Sched.Wheel ~domains:2
  in
  let heap =
    run_one ~fleet ~nodes ~duration ~sched:Netsim.Sched.Heap ~domains:1
  in
  check "no events simulated" (wheel.events > 0);
  check "wheel digest diverges from heap" (wheel.digest = heap.digest);
  check "domains 2 digest diverges" (wheel2.digest = wheel.digest);
  Bench_util.row
    "smoke ok: %d events, wheel %.0f ev/s (heap %.0f), digests identical\n"
    wheel.events wheel.events_per_sec heap.events_per_sec
