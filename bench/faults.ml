(* Fault-injection bench: goodput of the single-channel EEG app on the
   simulated TMote testbed as Gilbert-Elliott burst loss is injected on
   top of the clean channel (§7.3 + DESIGN.md §12).

   Three deployments per injected loss rate:
     static     - the profiled partition, best-effort transport
     reliable   - same partition over the ack/retry transport
   and, at the headline 10% loss point, the adaptive controller closing
   the loop (rate lattice descent + measured-rate repartitioning).

   Writes BENCH_faults.json at the repo root so the degradation curve
   is tracked across PRs:  dune exec bench/main.exe -- faults *)

let n_nodes = 4
let duration = 60.
let seed = 9

let loss_grid = [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.3 ]

type point = {
  loss : float;
  unreliable : Netsim.Testbed.result;
  reliable : Netsim.Testbed.result;
}

let config ~faults ~transport =
  Netsim.Testbed.default_config ~n_nodes ~duration ~seed
    ~platform:Profiler.Platform.tmote_sky ~link:Netsim.Link.cc2420 ~faults
    ~transport ()

let faults_of_loss loss =
  if loss <= 0. then Netsim.Faults.none
  else
    { Netsim.Faults.none with
      Netsim.Faults.burst = Some (Netsim.Faults.burst_of_loss loss) }

let deploy (eeg : Apps.Eeg.t) ~assignment ~loss ~transport ~rate =
  let cfg = config ~faults:(faults_of_loss loss) ~transport in
  Netsim.Testbed.run cfg ~graph:eeg.Apps.Eeg.graph
    ~node_of:(fun i -> assignment.(i))
    ~sources:(Apps.Eeg.testbed_sources ~rate_mult:rate eeg)

(* static partition of the profiled spec; if nothing fits at full rate,
   fall back to the source-only cut (everything but the ADC on the
   server) so the sweep still runs *)
let static_assignment (eeg : Apps.Eeg.t) spec =
  match Wishbone.Partitioner.solve spec with
  | Wishbone.Partitioner.Partitioned r -> r.Wishbone.Partitioner.assignment
  | _ ->
      let n = Array.length (Dataflow.Graph.ops eeg.Apps.Eeg.graph) in
      let a = Array.make n false in
      Array.iter (fun s -> a.(s) <- true) eeg.Apps.Eeg.sources;
      a

let write_json ~points ~(adaptive : Wishbone.Adaptive.outcome) ~adaptive_loss =
  let oc = open_out "BENCH_faults.json" in
  let pt p =
    Printf.sprintf
      "    {\"loss\": %.3f, \"unreliable_goodput\": %.4f, \
       \"reliable_goodput\": %.4f, \"reliable_expired\": %d, \
       \"reliable_duplicates\": %d, \"retransmissions\": %d}"
      p.loss p.unreliable.Netsim.Testbed.goodput_fraction
      p.reliable.Netsim.Testbed.goodput_fraction
      p.reliable.Netsim.Testbed.msgs_expired
      p.reliable.Netsim.Testbed.msgs_duplicate
      p.reliable.Netsim.Testbed.retransmissions
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"eeg_goodput_vs_injected_loss\",\n\
    \  \"app\": \"eeg1\",\n\
    \  \"n_nodes\": %d,\n\
    \  \"duration_s\": %.0f,\n\
    \  \"points\": [\n\
     %s\n\
    \  ],\n\
    \  \"adaptive\": {\"loss\": %.3f, \"goodput\": %.4f, \"rate\": %.4f, \
     \"steps\": %d, \"converged\": %b}\n\
     }\n"
    n_nodes duration
    (String.concat ",\n" (List.map pt points))
    adaptive_loss adaptive.Wishbone.Adaptive.goodput
    adaptive.Wishbone.Adaptive.rate
    (List.length adaptive.Wishbone.Adaptive.trace)
    adaptive.Wishbone.Adaptive.converged;
  close_out oc

let run () =
  Bench_util.header
    "Faults: EEG goodput vs injected burst loss (static / reliable / \
     adaptive)";
  Bench_util.paper_vs
    "§7.3: in-building packet delivery varied 45-99%; Wishbone treats \
     overload loss as a signal to re-plan";
  let eeg = Lazy.force Bench_util.eeg_channel in
  let raw = Lazy.force Bench_util.eeg_channel_profile in
  let spec =
    Bench_util.spec_exn ~platform:Profiler.Platform.tmote_sky raw
  in
  let assignment = static_assignment eeg spec in
  Bench_util.row "%-8s %14s %14s %14s %12s\n" "loss" "unreliable %"
    "reliable %" "retransmits" "expired";
  let points =
    List.map
      (fun loss ->
        let unreliable =
          deploy eeg ~assignment ~loss ~transport:Netsim.Transport.Unreliable
            ~rate:1.0
        in
        let reliable =
          deploy eeg ~assignment ~loss
            ~transport:(Netsim.Transport.default_reliable ())
            ~rate:1.0
        in
        Bench_util.row "%-8.2f %14.1f %14.1f %14d %12d\n" loss
          (100. *. unreliable.Netsim.Testbed.goodput_fraction)
          (100. *. reliable.Netsim.Testbed.goodput_fraction)
          reliable.Netsim.Testbed.retransmissions
          reliable.Netsim.Testbed.msgs_expired;
        { loss; unreliable; reliable })
      loss_grid
  in
  (* close the loop at the headline 10% loss point *)
  let adaptive_loss = 0.1 in
  let probe ~rate ~assignment =
    Wishbone.Adaptive.observe
      (deploy eeg ~assignment ~loss:adaptive_loss
         ~transport:(Netsim.Transport.default_reliable ()) ~rate)
  in
  let adaptive =
    Wishbone.Adaptive.run
      ~config:{ Wishbone.Adaptive.default_config with max_steps = 10 }
      ~spec ~assignment ~probe ()
  in
  Bench_util.row "adaptive @ %.0f%% loss: goodput %.1f%% at rate x%.4f \
                  (%d steps%s)\n"
    (100. *. adaptive_loss)
    (100. *. adaptive.Wishbone.Adaptive.goodput)
    adaptive.Wishbone.Adaptive.rate
    (List.length adaptive.Wishbone.Adaptive.trace)
    (if adaptive.Wishbone.Adaptive.converged then "" else ", not converged");
  write_json ~points ~adaptive ~adaptive_loss;
  Bench_util.row "wrote BENCH_faults.json\n"
