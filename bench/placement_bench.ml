(* Placement-core benchmark: the generic tier-graph solver on the
   two-tier hot path and on deeper chains.

   The tier-graph refactor routed every partitioner call through
   [Wishbone.Placement]; the number that must not regress is the
   two-tier hot path (the rate search re-solves it dozens of times).
   For each instance this bench times the full pipeline
   (contract + encode + branch & bound + verify) against the pure
   branch & bound on a pre-encoded problem — the irreducible solver
   floor — and reports the difference as builder overhead, which the
   refactor keeps under 10% at rate-search-boundary instances.

   Also solves a four-tier synthetic chain (tmote -> meraki ->
   gumstix -> server) end-to-end to exercise the level-variable
   encoding beyond the legacy formulations.

   Writes BENCH_placement.json at the repo root:

     dune exec bench/main.exe -- placement *)

type inst_result = {
  name : string;
  n_ops : int;
  n_super : int;
  rate : float;
  reps : int;
  total_ms : float;  (* mean ms per full Placement.solve *)
  solver_ms : float;  (* mean ms per pre-encoded Branch_bound.solve *)
  overhead_pct : float;
  objective : float;
  pivots : int;  (* solver work counters over one bare solve *)
  refactorisations : int;
  ft_updates : int;
  ft_entries : int;
  pricing : string;
}

let time_n reps f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) *. 1000. /. Float.of_int reps

(* Time two closures against the same clock by alternating them within
   one loop, after one untimed warm-up call each.  Two sequential
   [time_n] loops let allocator and cache state drift between the
   measurements — enough to report the solver "floor" slower than the
   full pipeline that contains it (a negative overhead, as the old
   eeg22 row showed).  Interleaving makes both sides see the same
   machine state rep for rep, and taking each side's *fastest* rep
   rather than its mean discards the reps a neighbouring tenant
   preempted: on this shared box the same deterministic work
   (identical pivot counts) has been clocked anywhere in a 4x wall
   range, and the minimum is the only estimator that converges on
   the machine's actual cost. *)
let time_interleaved reps f g =
  ignore (f ());
  ignore (g ());
  let tf = ref infinity and tg = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let t1 = Unix.gettimeofday () in
    ignore (g ());
    tf := Float.min !tf (t1 -. t0);
    tg := Float.min !tg (Unix.gettimeofday () -. t1)
  done;
  (!tf *. 1000., !tg *. 1000.)

let bench_two_tier ~name ~reps spec =
  (* pin the instance at its feasibility boundary — the rate the
     search hammers hardest *)
  let rate =
    match Wishbone.Rate_search.search_placement (Wishbone.Placement.of_spec spec) with
    | Some r -> r.Wishbone.Rate_search.placement_multiplier
    | None -> 1.0
  in
  let pl = Wishbone.Placement.of_spec (Wishbone.Spec.scale_rate spec rate) in
  let c = Wishbone.Preprocess.contract pl.Wishbone.Placement.spec in
  let enc = Wishbone.Placement.encode Wishbone.Placement.Restricted pl c in
  let total_ms, solver_ms =
    time_interleaved reps
      (fun () -> Wishbone.Placement.solve pl)
      (fun () -> Lp.Branch_bound.solve enc.Wishbone.Placement.problem)
  in
  let objective =
    match Wishbone.Placement.solve pl with
    | Wishbone.Placement.Partitioned r -> r.Wishbone.Placement.objective
    | _ -> nan
  in
  (* work counters over one bare solve: unlike wall time these are
     deterministic, so regressions in the pivot/refactorisation
     trajectory show through machine noise *)
  Lp.Sparse.reset_counters ();
  Lp.Simplex.reset_cumulative_pivots ();
  ignore (Lp.Branch_bound.solve enc.Wishbone.Placement.problem);
  let cnt = Lp.Sparse.counters () in
  let pivots = Lp.Simplex.cumulative_pivots () in
  let overhead_pct = 100. *. (total_ms -. solver_ms) /. Float.max 1e-9 total_ms in
  Bench_util.row
    "%-8s x%.4f  %8.3f ms/solve  (solver floor %8.3f ms)  overhead %5.1f%%\n"
    name rate total_ms solver_ms overhead_pct;
  {
    name;
    n_ops = Dataflow.Graph.n_ops pl.Wishbone.Placement.spec.Wishbone.Spec.graph;
    n_super = c.Wishbone.Preprocess.n_super;
    rate;
    reps;
    total_ms;
    solver_ms;
    overhead_pct;
    objective;
    pivots;
    refactorisations = cnt.Lp.Sparse.refactorisations;
    ft_updates = cnt.Lp.Sparse.ft_updates;
    ft_entries = cnt.Lp.Sparse.ft_entries;
    pricing =
      (match
         Lp.Branch_bound.default_options.Lp.Branch_bound.simplex
           .Lp.Simplex.pricing
       with
      | Lp.Simplex.Devex -> "devex"
      | Lp.Simplex.Dantzig -> "dantzig");
  }

(* four platforms deep: node radio, then two successively fatter
   uplinks, weights falling off 0.3 per hop as in Three_tier *)
let four_tier_chain raw spec =
  let n = Array.length spec.Wishbone.Spec.cpu in
  let tier (p : Profiler.Platform.t) =
    let costed = Profiler.Profile.cost raw p in
    {
      Wishbone.Placement.tname = p.name;
      cpu = costed.Profiler.Profile.cpu_fraction;
      cpu_budget = p.cpu_budget;
      alpha = 0.;
    }
  in
  let middles = [ Profiler.Platform.meraki; Profiler.Platform.gumstix ] in
  Wishbone.Placement.v ~spec
    ~tiers:
      ([
         {
           Wishbone.Placement.tname = "node";
           cpu = spec.Wishbone.Spec.cpu;
           cpu_budget = spec.Wishbone.Spec.cpu_budget;
           alpha = spec.Wishbone.Spec.alpha;
         };
       ]
      @ List.map tier middles
      @ [
          {
            Wishbone.Placement.tname = "server";
            cpu = Array.make n 0.;
            cpu_budget = infinity;
            alpha = 0.;
          };
        ])
    ~links:
      ({
         Wishbone.Placement.lname = "radio0";
         net_budget = spec.Wishbone.Spec.net_budget;
         beta = spec.Wishbone.Spec.beta;
       }
      :: List.mapi
           (fun i (p : Profiler.Platform.t) ->
             {
               Wishbone.Placement.lname = Printf.sprintf "uplink%d" (i + 1);
               net_budget = p.Profiler.Platform.radio_bytes_per_sec;
               beta = spec.Wishbone.Spec.beta *. (0.3 ** Float.of_int (i + 1));
             })
           middles)

type chain_result = {
  c_rate : float;
  c_wall_ms : float;
  c_objective : float;
  c_tiers : int array;  (* operator count per tier *)
}

let bench_chain raw spec =
  let pl = four_tier_chain raw spec in
  let rate =
    match Wishbone.Rate_search.search_placement pl with
    | Some r -> r.Wishbone.Rate_search.placement_multiplier
    | None -> 1.0
  in
  let pl = Wishbone.Placement.scale_rate pl rate in
  let wall_ms = time_n 20 (fun () -> Wishbone.Placement.solve pl) in
  match Wishbone.Placement.solve pl with
  | Wishbone.Placement.Partitioned r ->
      let counts = Array.make (Wishbone.Placement.n_tiers pl) 0 in
      Array.iter (fun t -> counts.(t) <- counts.(t) + 1) r.tier_of;
      Bench_util.row
        "4-tier   x%.4f  %8.3f ms/solve  objective %.1f  ops/tier %s\n" rate
        wall_ms r.objective
        (String.concat "/"
           (Array.to_list (Array.map string_of_int counts)));
      { c_rate = rate; c_wall_ms = wall_ms; c_objective = r.objective;
        c_tiers = counts }
  | _ ->
      Bench_util.row "4-tier   x%.4f  no feasible placement\n" rate;
      { c_rate = rate; c_wall_ms = wall_ms; c_objective = nan;
        c_tiers = [||] }

let write_json insts (chain : chain_result) =
  let oc = open_out "BENCH_placement.json" in
  (* absolute milliseconds are always reported; the relative-overhead
     guard applies only when the solver floor is at least 1ms.  Below
     that, rep-to-rep jitter on a shared machine swamps the encode
     cost and a percentage of microseconds gates nothing real — the
     absolute columns are the record for those instances.  At or
     above 1ms the old rule stands: overhead within [-1%, 10%), the
     lower edge because a pipeline genuinely faster than the solver
     it contains means the two timings were not taken consistently. *)
  let guard r =
    r.solver_ms < 1.0 || (r.overhead_pct >= -1. && r.overhead_pct < 10.)
  in
  let inst r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"n_ops\": %d, \"n_super\": %d, \"rate\": \
       %.6f, \"reps\": %d, \"total_ms\": %.4f, \"solver_ms\": %.4f, \
       \"overhead_pct\": %.2f, \"objective\": %.6f, \"pivots\": %d, \
       \"refactorisations\": %d, \"ft_updates\": %d, \"ft_entries\": %d, \
       \"pricing\": \"%s\", \"guard_ok\": %b}"
      r.name r.n_ops r.n_super r.rate r.reps r.total_ms r.solver_ms
      r.overhead_pct r.objective r.pivots r.refactorisations r.ft_updates
      r.ft_entries r.pricing (guard r)
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"placement_core_overhead\",\n\
    \  \"two_tier\": [\n%s\n  ],\n\
    \  \"four_tier_chain\": {\"rate\": %.6f, \"wall_ms\": %.4f, \
     \"objective\": %.6f, \"ops_per_tier\": [%s]}\n\
     }\n"
    (String.concat ",\n" (List.map inst insts))
    chain.c_rate chain.c_wall_ms chain.c_objective
    (String.concat ", "
       (Array.to_list (Array.map string_of_int chain.c_tiers)));
  close_out oc

let run () =
  Bench_util.header
    "placement core: generic tier-graph solve vs raw solver floor";
  Bench_util.paper_vs
    "refactor guard: the generic encoder must stay within 10% of the pure \
     branch & bound on the two-tier hot path";
  let speech_spec =
    Bench_util.spec_exn ~platform:Profiler.Platform.tmote_sky
      (Lazy.force Bench_util.speech_profile)
  in
  let eeg14_raw = Apps.Eeg.profile ~duration:30. (Apps.Eeg.build ~n_channels:14 ()) in
  let eeg14_spec =
    Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
      ~platform:Profiler.Platform.tmote_sky eeg14_raw
  in
  let eeg22_raw = Apps.Eeg.profile ~duration:30. (Apps.Eeg.build ()) in
  let eeg22_spec =
    Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
      ~platform:Profiler.Platform.tmote_sky eeg22_raw
  in
  (* bind sequentially: OCaml evaluates list elements right-to-left *)
  let speech_r = bench_two_tier ~name:"speech" ~reps:100 speech_spec in
  let eeg14_r = bench_two_tier ~name:"eeg14" ~reps:20 eeg14_spec in
  let eeg22_r = bench_two_tier ~name:"eeg22" ~reps:10 eeg22_spec in
  let insts = [ speech_r; eeg14_r; eeg22_r ] in
  let chain = bench_chain (Lazy.force Bench_util.speech_profile) speech_spec in
  write_json insts chain;
  Bench_util.row "wrote BENCH_placement.json\n"
