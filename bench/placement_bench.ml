(* Placement-core benchmark: the generic tier-graph solver on the
   two-tier hot path and on deeper chains.

   The tier-graph refactor routed every partitioner call through
   [Wishbone.Placement]; the number that must not regress is the
   two-tier hot path (the rate search re-solves it dozens of times).
   For each instance this bench times the full pipeline
   (contract + encode + branch & bound + verify) against the pure
   branch & bound on a pre-encoded problem — the irreducible solver
   floor — and reports the difference as builder overhead, which the
   refactor keeps under 10% at rate-search-boundary instances.

   Also solves a four-tier synthetic chain (tmote -> meraki ->
   gumstix -> server) end-to-end to exercise the level-variable
   encoding beyond the legacy formulations.

   Writes BENCH_placement.json at the repo root:

     dune exec bench/main.exe -- placement *)

type inst_result = {
  name : string;
  n_ops : int;
  n_super : int;
  rate : float;
  reps : int;
  total_ms : float;  (* mean ms per full Placement.solve *)
  solver_ms : float;  (* mean ms per pre-encoded Branch_bound.solve *)
  overhead_pct : float;
  objective : float;
  pivots : int;  (* solver work counters over one bare solve *)
  refactorisations : int;
  ft_updates : int;
  ft_entries : int;
  pricing : string;
}

let time_n reps f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) *. 1000. /. Float.of_int reps

(* Time two closures against the same clock by alternating them within
   one loop, after one untimed warm-up call each.  Two sequential
   [time_n] loops let allocator and cache state drift between the
   measurements — enough to report the solver "floor" slower than the
   full pipeline that contains it (a negative overhead, as the old
   eeg22 row showed).  Interleaving makes both sides see the same
   machine state rep for rep, and taking each side's *fastest* rep
   rather than its mean discards the reps a neighbouring tenant
   preempted: on this shared box the same deterministic work
   (identical pivot counts) has been clocked anywhere in a 4x wall
   range, and the minimum is the only estimator that converges on
   the machine's actual cost. *)
let time_interleaved reps f g =
  ignore (f ());
  ignore (g ());
  let tf = ref infinity and tg = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let t1 = Unix.gettimeofday () in
    ignore (g ());
    tf := Float.min !tf (t1 -. t0);
    tg := Float.min !tg (Unix.gettimeofday () -. t1)
  done;
  (!tf *. 1000., !tg *. 1000.)

let bench_two_tier ~name ~reps spec =
  (* pin the instance at its feasibility boundary — the rate the
     search hammers hardest *)
  let rate =
    match Wishbone.Rate_search.search_placement (Wishbone.Placement.of_spec spec) with
    | Some r -> r.Wishbone.Rate_search.placement_multiplier
    | None -> 1.0
  in
  let pl = Wishbone.Placement.of_spec (Wishbone.Spec.scale_rate spec rate) in
  let c = Wishbone.Preprocess.contract pl.Wishbone.Placement.spec in
  let enc = Wishbone.Placement.encode Wishbone.Placement.Restricted pl c in
  let total_ms, solver_ms =
    time_interleaved reps
      (fun () -> Wishbone.Placement.solve pl)
      (fun () -> Lp.Branch_bound.solve enc.Wishbone.Placement.problem)
  in
  let objective =
    match Wishbone.Placement.solve pl with
    | Wishbone.Placement.Partitioned r -> r.Wishbone.Placement.objective
    | _ -> nan
  in
  (* work counters over one bare solve: unlike wall time these are
     deterministic, so regressions in the pivot/refactorisation
     trajectory show through machine noise *)
  Lp.Sparse.reset_counters ();
  Lp.Simplex.reset_cumulative_pivots ();
  ignore (Lp.Branch_bound.solve enc.Wishbone.Placement.problem);
  let cnt = Lp.Sparse.counters () in
  let pivots = Lp.Simplex.cumulative_pivots () in
  let overhead_pct = 100. *. (total_ms -. solver_ms) /. Float.max 1e-9 total_ms in
  Bench_util.row
    "%-8s x%.4f  %8.3f ms/solve  (solver floor %8.3f ms)  overhead %5.1f%%\n"
    name rate total_ms solver_ms overhead_pct;
  {
    name;
    n_ops = Dataflow.Graph.n_ops pl.Wishbone.Placement.spec.Wishbone.Spec.graph;
    n_super = c.Wishbone.Preprocess.n_super;
    rate;
    reps;
    total_ms;
    solver_ms;
    overhead_pct;
    objective;
    pivots;
    refactorisations = cnt.Lp.Sparse.refactorisations;
    ft_updates = cnt.Lp.Sparse.ft_updates;
    ft_entries = cnt.Lp.Sparse.ft_entries;
    pricing =
      (match
         Lp.Branch_bound.default_options.Lp.Branch_bound.simplex
           .Lp.Simplex.pricing
       with
      | Lp.Simplex.Devex -> "devex"
      | Lp.Simplex.Dantzig -> "dantzig");
  }

(* four platforms deep: node radio, then two successively fatter
   uplinks, weights falling off 0.3 per hop as in Three_tier *)
let four_tier_chain raw spec =
  let n = Array.length spec.Wishbone.Spec.cpu in
  let tier (p : Profiler.Platform.t) =
    let costed = Profiler.Profile.cost raw p in
    {
      Wishbone.Placement.tname = p.name;
      cpu = costed.Profiler.Profile.cpu_fraction;
      cpu_budget = p.cpu_budget;
      alpha = 0.;
    }
  in
  let middles = [ Profiler.Platform.meraki; Profiler.Platform.gumstix ] in
  Wishbone.Placement.v ~spec
    ~tiers:
      ([
         {
           Wishbone.Placement.tname = "node";
           cpu = spec.Wishbone.Spec.cpu;
           cpu_budget = spec.Wishbone.Spec.cpu_budget;
           alpha = spec.Wishbone.Spec.alpha;
         };
       ]
      @ List.map tier middles
      @ [
          {
            Wishbone.Placement.tname = "server";
            cpu = Array.make n 0.;
            cpu_budget = infinity;
            alpha = 0.;
          };
        ])
    ~links:
      ({
         Wishbone.Placement.lname = "radio0";
         net_budget = spec.Wishbone.Spec.net_budget;
         beta = spec.Wishbone.Spec.beta;
       }
      :: List.mapi
           (fun i (p : Profiler.Platform.t) ->
             {
               Wishbone.Placement.lname = Printf.sprintf "uplink%d" (i + 1);
               net_budget = p.Profiler.Platform.radio_bytes_per_sec;
               beta = spec.Wishbone.Spec.beta *. (0.3 ** Float.of_int (i + 1));
             })
           middles)
    ()

type chain_result = {
  c_rate : float;
  c_wall_ms : float;
  c_objective : float;
  c_tiers : int array;  (* operator count per tier *)
}

let bench_chain raw spec =
  let pl = four_tier_chain raw spec in
  let rate =
    match Wishbone.Rate_search.search_placement pl with
    | Some r -> r.Wishbone.Rate_search.placement_multiplier
    | None -> 1.0
  in
  let pl = Wishbone.Placement.scale_rate pl rate in
  let wall_ms = time_n 20 (fun () -> Wishbone.Placement.solve pl) in
  match Wishbone.Placement.solve pl with
  | Wishbone.Placement.Partitioned r ->
      let counts = Array.make (Wishbone.Placement.n_tiers pl) 0 in
      Array.iter (fun t -> counts.(t) <- counts.(t) + 1) r.tier_of;
      Bench_util.row
        "4-tier   x%.4f  %8.3f ms/solve  objective %.1f  ops/tier %s\n" rate
        wall_ms r.objective
        (String.concat "/"
           (Array.to_list (Array.map string_of_int counts)));
      { c_rate = rate; c_wall_ms = wall_ms; c_objective = r.objective;
        c_tiers = counts }
  | _ ->
      Bench_util.row "4-tier   x%.4f  no feasible placement\n" rate;
      { c_rate = rate; c_wall_ms = wall_ms; c_objective = nan;
        c_tiers = [||] }

(* ---- tree topologies ----------------------------------------------- *)

type tree_result = {
  t_name : string;
  t_n_tiers : int;
  t_n_super : int;
  t_rate : float;
  t_reps : int;
  t_total_ms : float;
  t_solver_ms : float;
  t_overhead_pct : float;
  t_objective : float;
}

(* every leaf a copy of the spec's node tier, the unbudgeted server at
   the hub — the testbed's single-hop routing star.  No tier pins, so
   supernode contraction still applies and the extra tiers cost only
   level variables. *)
let star_placement ~n_leaves (spec : Wishbone.Spec.t) =
  let n = Array.length spec.Wishbone.Spec.cpu in
  let topo =
    Wishbone.Placement.Topology.of_parents
      (Netsim.Testbed.routing_parents ~n_nodes:n_leaves)
  in
  let tiers =
    List.init (n_leaves + 1) (fun k ->
        if k = n_leaves then
          {
            Wishbone.Placement.tname = "server";
            cpu = Array.make n 0.;
            cpu_budget = infinity;
            alpha = 0.;
          }
        else
          {
            Wishbone.Placement.tname = Printf.sprintf "leaf%d" k;
            cpu = spec.Wishbone.Spec.cpu;
            cpu_budget = spec.Wishbone.Spec.cpu_budget;
            alpha = spec.Wishbone.Spec.alpha;
          })
  in
  let links =
    List.init n_leaves (fun k ->
        {
          Wishbone.Placement.lname = Printf.sprintf "radio%d" k;
          net_budget = spec.Wishbone.Spec.net_budget;
          beta = spec.Wishbone.Spec.beta;
        })
  in
  Wishbone.Placement.v ~topology:topo ~spec ~tiers ~links ()

(* a 7-tier balanced binary tree: 4 node leaves, two meraki middles,
   the server at the root *)
let binary_placement raw (spec : Wishbone.Spec.t) =
  let n = Array.length spec.Wishbone.Spec.cpu in
  let leaf k =
    {
      Wishbone.Placement.tname = Printf.sprintf "leaf%d" k;
      cpu = spec.Wishbone.Spec.cpu;
      cpu_budget = spec.Wishbone.Spec.cpu_budget;
      alpha = spec.Wishbone.Spec.alpha;
    }
  in
  let mid k =
    let p = Profiler.Platform.meraki in
    let costed = Profiler.Profile.cost raw p in
    {
      Wishbone.Placement.tname = Printf.sprintf "%s%d" p.name k;
      cpu = costed.Profiler.Profile.cpu_fraction;
      cpu_budget = p.cpu_budget;
      alpha = 0.;
    }
  in
  let radio k =
    {
      Wishbone.Placement.lname = Printf.sprintf "radio%d" k;
      net_budget = spec.Wishbone.Spec.net_budget;
      beta = spec.Wishbone.Spec.beta;
    }
  in
  let uplink k =
    {
      Wishbone.Placement.lname = Printf.sprintf "uplink%d" k;
      net_budget = Profiler.Platform.meraki.Profiler.Platform.radio_bytes_per_sec;
      beta = spec.Wishbone.Spec.beta *. 0.3;
    }
  in
  Wishbone.Placement.v
    ~topology:(Wishbone.Placement.Topology.of_parents [| 4; 4; 5; 5; 6; 6; -1 |])
    ~spec
    ~tiers:
      [
        leaf 0; leaf 1; leaf 2; leaf 3; mid 4; mid 5;
        {
          Wishbone.Placement.tname = "server";
          cpu = Array.make n 0.;
          cpu_budget = infinity;
          alpha = 0.;
        };
      ]
    ~links:[ radio 0; radio 1; radio 2; radio 3; uplink 4; uplink 5 ]
    ()

(* the chain-vs-tree builder guard: the same interleaved full-pipeline
   vs pre-encoded-solver measurement as [bench_two_tier], on tree
   topologies.  [rate] pins the instance (the eeg testbed rows reuse
   the chain rows' boundary rate); omitted, the tree's own rate search
   finds the boundary. *)
let bench_tree ~name ~reps ?rate pl =
  let rate =
    match rate with
    | Some r -> r
    | None -> (
        match Wishbone.Rate_search.search_placement pl with
        | Some r -> r.Wishbone.Rate_search.placement_multiplier
        | None -> 1.0)
  in
  let pl = Wishbone.Placement.scale_rate pl rate in
  let c = Wishbone.Preprocess.contract pl.Wishbone.Placement.spec in
  let enc = Wishbone.Placement.encode Wishbone.Placement.Restricted pl c in
  let total_ms, solver_ms =
    time_interleaved reps
      (fun () -> Wishbone.Placement.solve pl)
      (fun () -> Lp.Branch_bound.solve enc.Wishbone.Placement.problem)
  in
  let objective =
    match Wishbone.Placement.solve pl with
    | Wishbone.Placement.Partitioned r -> r.Wishbone.Placement.objective
    | _ -> nan
  in
  let overhead_pct =
    100. *. (total_ms -. solver_ms) /. Float.max 1e-9 total_ms
  in
  Bench_util.row
    "%-14s x%.4f  %2d tiers  %8.3f ms/solve  (solver floor %8.3f ms)  \
     overhead %5.1f%%\n"
    name rate
    (Wishbone.Placement.n_tiers pl)
    total_ms solver_ms overhead_pct;
  {
    t_name = name;
    t_n_tiers = Wishbone.Placement.n_tiers pl;
    t_n_super = c.Wishbone.Preprocess.n_super;
    t_rate = rate;
    t_reps = reps;
    t_total_ms = total_ms;
    t_solver_ms = solver_ms;
    t_overhead_pct = overhead_pct;
    t_objective = objective;
  }

let write_json insts (chain : chain_result) trees =
  let oc = open_out "BENCH_placement.json" in
  (* absolute milliseconds are always reported; the relative-overhead
     guard applies only when the solver floor is at least 1ms.  Below
     that, rep-to-rep jitter on a shared machine swamps the encode
     cost and a percentage of microseconds gates nothing real — the
     absolute columns are the record for those instances.  At or
     above 1ms the old rule stands: overhead within [-1%, 10%), the
     lower edge because a pipeline genuinely faster than the solver
     it contains means the two timings were not taken consistently. *)
  let guard r =
    r.solver_ms < 1.0 || (r.overhead_pct >= -1. && r.overhead_pct < 10.)
  in
  let inst r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"n_ops\": %d, \"n_super\": %d, \"rate\": \
       %.6f, \"reps\": %d, \"total_ms\": %.4f, \"solver_ms\": %.4f, \
       \"overhead_pct\": %.2f, \"objective\": %.6f, \"pivots\": %d, \
       \"refactorisations\": %d, \"ft_updates\": %d, \"ft_entries\": %d, \
       \"pricing\": \"%s\", \"guard_ok\": %b}"
      r.name r.n_ops r.n_super r.rate r.reps r.total_ms r.solver_ms
      r.overhead_pct r.objective r.pivots r.refactorisations r.ft_updates
      r.ft_entries r.pricing (guard r)
  in
  (* the tree rows use the same guard as the two-tier hot path *)
  let tree_guard (r : tree_result) =
    r.t_solver_ms < 1.0
    || (r.t_overhead_pct >= -1. && r.t_overhead_pct < 10.)
  in
  let tree (r : tree_result) =
    Printf.sprintf
      "    {\"name\": \"%s\", \"n_tiers\": %d, \"n_super\": %d, \"rate\": \
       %.6f, \"reps\": %d, \"total_ms\": %.4f, \"solver_ms\": %.4f, \
       \"overhead_pct\": %.2f, \"objective\": %.6f, \"guard_ok\": %b}"
      r.t_name r.t_n_tiers r.t_n_super r.t_rate r.t_reps r.t_total_ms
      r.t_solver_ms r.t_overhead_pct r.t_objective (tree_guard r)
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"placement_core_overhead\",\n\
    \  \"two_tier\": [\n%s\n  ],\n\
    \  \"four_tier_chain\": {\"rate\": %.6f, \"wall_ms\": %.4f, \
     \"objective\": %.6f, \"ops_per_tier\": [%s]},\n\
    \  \"tree\": [\n%s\n  ]\n\
     }\n"
    (String.concat ",\n" (List.map inst insts))
    chain.c_rate chain.c_wall_ms chain.c_objective
    (String.concat ", "
       (Array.to_list (Array.map string_of_int chain.c_tiers)))
    (String.concat ",\n" (List.map tree trees));
  close_out oc

let run () =
  Bench_util.header
    "placement core: generic tier-graph solve vs raw solver floor";
  Bench_util.paper_vs
    "refactor guard: the generic encoder must stay within 10% of the pure \
     branch & bound on the two-tier hot path";
  let speech_spec =
    Bench_util.spec_exn ~platform:Profiler.Platform.tmote_sky
      (Lazy.force Bench_util.speech_profile)
  in
  let eeg14_raw = Apps.Eeg.profile ~duration:30. (Apps.Eeg.build ~n_channels:14 ()) in
  let eeg14_spec =
    Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
      ~platform:Profiler.Platform.tmote_sky eeg14_raw
  in
  let eeg22_raw = Apps.Eeg.profile ~duration:30. (Apps.Eeg.build ()) in
  let eeg22_spec =
    Bench_util.spec_exn ~mode:Wishbone.Movable.Permissive
      ~platform:Profiler.Platform.tmote_sky eeg22_raw
  in
  (* bind sequentially: OCaml evaluates list elements right-to-left *)
  let speech_r = bench_two_tier ~name:"speech" ~reps:100 speech_spec in
  let eeg14_r = bench_two_tier ~name:"eeg14" ~reps:20 eeg14_spec in
  let eeg22_r = bench_two_tier ~name:"eeg22" ~reps:10 eeg22_spec in
  let insts = [ speech_r; eeg14_r; eeg22_r ] in
  let chain = bench_chain (Lazy.force Bench_util.speech_profile) speech_spec in
  (* tree suite: routing star and binary tree on speech at their own
     boundary rates, the 20-mote testbed star at the eeg chain rates *)
  let speech_raw = Lazy.force Bench_util.speech_profile in
  let star_r =
    bench_tree ~name:"speech-star8" ~reps:50
      (star_placement ~n_leaves:8 speech_spec)
  in
  let bin_r =
    bench_tree ~name:"speech-bin7" ~reps:50 (binary_placement speech_raw speech_spec)
  in
  let eeg14_t =
    bench_tree ~name:"eeg14-testbed" ~reps:10 ~rate:eeg14_r.rate
      (star_placement ~n_leaves:20 eeg14_spec)
  in
  let eeg22_t =
    bench_tree ~name:"eeg22-testbed" ~reps:5 ~rate:eeg22_r.rate
      (star_placement ~n_leaves:20 eeg22_spec)
  in
  write_json insts chain [ star_r; bin_r; eeg14_t; eeg22_t ];
  Bench_util.row "wrote BENCH_placement.json\n"

(* ---- CI smoke: Y fixture + one testbed-tree placement -------------- *)

(* the hand-checked Y of test_placement.ml: two sensing branches
   sharing the microserver -> root uplink; shared budget 5.5 admits
   exactly one optimum (objective 9.5), 4.9 admits none although each
   branch alone would fit *)
let y_placement ~shared_budget =
  let passthrough () =
    Dataflow.Op.stateless_instance (fun v ->
        ([ v ], Dataflow.Workload.make ~call_ops:1. ()))
  in
  let mk_op ?(namespace = Dataflow.Op.Node) ?(side_effect = Dataflow.Op.Pure)
      id name =
    { Dataflow.Op.id; name; kind = "t"; namespace; stateful = false;
      side_effect; fresh = passthrough }
  in
  let ops =
    [|
      mk_op ~side_effect:Dataflow.Op.Sensor_input 0 "srcA";
      mk_op 1 "a";
      mk_op ~namespace:Dataflow.Op.Server
        ~side_effect:Dataflow.Op.Display_output 2 "sinkA";
      mk_op ~side_effect:Dataflow.Op.Sensor_input 3 "srcB";
      mk_op 4 "b";
      mk_op ~namespace:Dataflow.Op.Server
        ~side_effect:Dataflow.Op.Display_output 5 "sinkB";
    |]
  in
  let g =
    Dataflow.Graph.make ops [ (0, 1, 0); (1, 2, 0); (3, 4, 0); (4, 5, 0) ]
  in
  let placement =
    match Wishbone.Movable.classify Wishbone.Movable.Conservative g with
    | Ok p -> p
    | Error m -> failwith m
  in
  let leaf_cpu = [| 0.3; 0.4; 0.; 0.3; 0.4; 0. |] in
  let spec =
    {
      Wishbone.Spec.graph = g;
      placement;
      cpu = leaf_cpu;
      bandwidth = [| 4.; 1.; 4.; 2. |];
      cpu_budget = 0.5;
      net_budget = 1e9;
      alpha = 0.;
      beta = 1.;
    }
  in
  let leaf tname =
    { Wishbone.Placement.tname; cpu = leaf_cpu; cpu_budget = 0.5; alpha = 0. }
  in
  Wishbone.Placement.v
    ~topology:(Wishbone.Placement.Topology.of_parents [| 2; 2; 3; -1 |])
    ~pins:[ (3, 1) ] ~spec
    ~tiers:
      [
        leaf "leafA"; leaf "leafB";
        { Wishbone.Placement.tname = "micro";
          cpu = [| 0.; 0.2; 0.; 0.; 0.2; 0. |]; cpu_budget = 0.3; alpha = 0. };
        { Wishbone.Placement.tname = "root"; cpu = Array.make 6 0.;
          cpu_budget = infinity; alpha = 0. };
      ]
    ~links:
      [
        { Wishbone.Placement.lname = "leafA-up"; net_budget = infinity;
          beta = 1. };
        { Wishbone.Placement.lname = "leafB-up"; net_budget = infinity;
          beta = 1. };
        { Wishbone.Placement.lname = "shared-up"; net_budget = shared_budget;
          beta = 0.3 };
      ]
    ()

let smoke_tree () =
  Bench_util.header "tree placement: smoke (Y fixture + testbed star)";
  let check label ok =
    if not ok then begin
      Printf.eprintf "tree smoke: FAILED: %s\n" label;
      exit 1
    end
  in
  let feq a b = Float.abs (a -. b) <= 1e-6 in
  (match Wishbone.Placement.solve (y_placement ~shared_budget:5.5) with
  | Wishbone.Placement.Partitioned r ->
      check "Y objective 9.5" (feq r.Wishbone.Placement.objective 9.5);
      check "Y tier assignment"
        (r.Wishbone.Placement.tier_of = [| 0; 2; 3; 1; 3; 3 |]);
      check "Y shared uplink carries 5 B/s"
        (feq r.Wishbone.Placement.link_net.(2) 5.)
  | _ -> check "Y solve at shared budget 5.5" false);
  (match Wishbone.Placement.solve (y_placement ~shared_budget:4.9) with
  | Wishbone.Placement.No_feasible_partition -> ()
  | _ -> check "Y infeasible at shared budget 4.9" false);
  (* speech on the 20-mote routing star: the placement must reproduce
     the two-tier optimum with the whole cut on mote 0's uplink *)
  let spec =
    Wishbone.Spec.scale_rate
      (Bench_util.spec_exn ~platform:Profiler.Platform.tmote_sky
         (Lazy.force Bench_util.speech_profile))
      0.05
  in
  (match
     ( Wishbone.Placement.solve (star_placement ~n_leaves:20 spec),
       Wishbone.Placement.solve (Wishbone.Placement.of_spec spec) )
   with
  | Wishbone.Placement.Partitioned s, Wishbone.Placement.Partitioned two ->
      check "star objective = two-tier objective"
        (feq s.Wishbone.Placement.objective two.Wishbone.Placement.objective);
      check "cut rides mote 0's uplink"
        (feq s.Wishbone.Placement.link_net.(0)
           two.Wishbone.Placement.link_net.(0));
      check "all other radios idle"
        (Array.for_all (fun x -> feq x 0.)
           (Array.sub s.Wishbone.Placement.link_net 1 19))
  | _ -> check "testbed star solve" false);
  Bench_util.row
    "tree smoke ok: Y optimum 9.5 with binding shared uplink, infeasible \
     at 4.9; 21-tier testbed star matches the two-tier optimum\n"
