(** Multi-tier split execution: N engine instances joined in a tier
    tree by bounded channels, driven from a placement.

    The operator graph is cut into [n_tiers] slices (tier 0 an
    embedded node, the last tier the central server at the tree root)
    and each slice runs in its own {!Exec} engine; tier 0 is
    replicated [n_nodes] times, deeper tiers host per-node state for
    [Node]-namespace operators relocated off the node.  Each non-root
    tier sheds into its parent over its {e uplink} (link [k] = uplink
    of tier [k]; for the default chain, link [k] joins tiers [k] and
    [k+1] as it always did): either perfect (lossless, zero-latency —
    crossings are executed at the parent immediately) or a bounded
    {!Shed} channel with a per-injection service rate and per-operator
    drop accounting, the overloaded-link semantics of §6.

    A crossing emitted at tier [p] for an operator on an ancestor tier
    [q] traverses the uplinks on the [p → q] rootward path in order:
    it is counted as offered on each, forwarded straight through
    lossless links, and parked in the first bounded channel on its way
    (service then moves it onwards).  Channels are serviced in
    ascending link order — every tier's parent has a larger index, so
    data drains leaf-most first, matching the two-tier runtime exactly
    on chains.

    {!Splitrun} is the two-tier instance of this engine and keeps its
    historical behaviour bit-for-bit (pinned by regression tests). *)

type link_config = {
  policy : Shed.policy;
  capacity : int;  (** channel bound *)
  service : int;
      (** crossings serviced from this channel per injection; [0]
          defers all service to explicit {!drain} calls *)
  seed : int;  (** for probabilistic policies *)
}

type t

val create :
  ?n_nodes:int ->
  ?links:link_config option list ->
  ?parents:int array ->
  n_tiers:int ->
  tier_of:(int -> int) ->
  Dataflow.Graph.t ->
  t
(** [tier_of op] places each operator on a tier in [0 .. n_tiers-1].
    [links] configures the [n_tiers - 1] uplinks ([None] = perfect,
    the default for all).  [parents] joins the tiers in a rooted tree
    (entry [k] is tier [k]'s parent, [> k]; the last entry must be
    [-1]); it defaults to the historical chain.
    @raise Invalid_argument on a bad tier count, a tier out of range,
    a [links] list of the wrong length, or an invalid parent array. *)

val reset : t -> unit
(** Reset every engine, flush every channel and zero the traffic and
    drop counters. *)

val inject :
  ?node:int -> t -> source:int -> Dataflow.Value.t -> Dataflow.Value.t list
(** Push one sensor sample into [source] on the given node (default
    0).  Tier-0 sources address one of the [n_nodes] replicas; sources
    on a deeper tier (another leaf of a tier tree) have a single
    engine, so [node] must be 0.  Crossings are routed as described
    above; each bounded channel then services up to its [service]
    quota.  Returns the values that reached sink operators, in
    order. *)

val drain : ?limit:int -> t -> Dataflow.Value.t list
(** Service up to [limit] parked crossings (default: all), ascending
    link order, returning the resulting sink values.  Always [[]]
    when every link is perfect. *)

val n_tiers : t -> int
val n_nodes : t -> int
val tier_of : t -> int -> int

val tier_exec : t -> tier:int -> int -> Exec.t
(** [tier_exec t ~tier replica]: the engine of a tier (for statistics
    inspection).  Tier 0 has [n_nodes] replicas; deeper tiers exactly
    one. *)

val link_traffic : t -> int -> int * int
(** Per link: total (elements, bytes) {e offered} so far, shed
    crossings included. *)

val link_dropped : t -> int -> int
(** Crossings shed on a link so far (0 for a perfect link). *)

val link_drop_counts : t -> int -> int array
(** Per-operator shed counts of one link: index [i] counts dropped
    crossings emitted by operator [i]. *)

val link_queued : t -> int -> int
(** Crossings currently parked in a link's channel. *)
