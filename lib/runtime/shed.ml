type policy =
  | Drop_newest
  | Drop_oldest
  | Sample_hold of float

type 'a t = {
  policy : policy;
  cap : int;
  q : 'a Queue.t;
  rng : Prng.t;
  mutable pushed : int;
  mutable dropped : int;
}

let create ?(seed = 0) policy ~capacity =
  if capacity <= 0 then invalid_arg "Shed.create: capacity must be positive";
  (match policy with
  | Sample_hold p when p < 0. || p > 1. ->
      invalid_arg "Shed.create: Sample_hold probability outside [0, 1]"
  | _ -> ());
  {
    policy;
    cap = capacity;
    q = Queue.create ();
    rng = Prng.create seed;
    pushed = 0;
    dropped = 0;
  }

type 'a admitted = Queued | Dropped | Displaced of 'a

let push t x =
  t.pushed <- t.pushed + 1;
  if Queue.length t.q < t.cap then begin
    Queue.add x t.q;
    Queued
  end
  else begin
    t.dropped <- t.dropped + 1;
    let displace () =
      let old = Queue.pop t.q in
      Queue.add x t.q;
      Displaced old
    in
    match t.policy with
    | Drop_newest -> Dropped
    | Drop_oldest -> displace ()
    | Sample_hold keep ->
        if Prng.bool t.rng keep then displace () else Dropped
  end

let pop t = Queue.take_opt t.q
let length t = Queue.length t.q
let capacity t = t.cap
let pushed t = t.pushed
let dropped t = t.dropped
