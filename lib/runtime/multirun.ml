open Dataflow

type link_config = {
  policy : Shed.policy;
  capacity : int;
  service : int;
  seed : int;
}

type channel = {
  queue : (int * Exec.crossing) Shed.t;
  service : int;  (* crossings serviced per injection *)
}

type t = {
  tier_of : int array;
  n_tiers : int;
  parents : int array;  (* tier tree: parents.(root) = -1; chain default *)
  execs : Exec.t array array;  (* tier -> replicas; tier 0 has n_nodes *)
  channels : channel option array;  (* per link (= uplink of its tier);
                                       None = perfect *)
  cross_elems : int array;  (* per link: crossings offered *)
  cross_bytes : int array;
  drop_counts : int array array;  (* per link, per emitting operator *)
}

let create ?(n_nodes = 1) ?links ?parents ~n_tiers ~tier_of graph =
  if n_tiers < 2 then invalid_arg "Multirun.create: need at least two tiers";
  let parents =
    match parents with
    | None ->
        Array.init n_tiers (fun k -> if k = n_tiers - 1 then -1 else k + 1)
    | Some p ->
        if Array.length p <> n_tiers then
          invalid_arg "Multirun.create: need one parent entry per tier";
        Array.iteri
          (fun k pk ->
            if k = n_tiers - 1 then begin
              if pk <> -1 then
                invalid_arg
                  "Multirun.create: the last tier is the root and must have \
                   parent -1"
            end
            else if pk <= k || pk > n_tiers - 1 then
              invalid_arg
                (Printf.sprintf
                   "Multirun.create: tier %d needs a parent with a larger \
                    index"
                   k))
          p;
        Array.copy p
  in
  let n = Graph.n_ops graph in
  let tier_of = Array.init n tier_of in
  Array.iteri
    (fun i tier ->
      if tier < 0 || tier >= n_tiers then
        invalid_arg
          (Printf.sprintf "Multirun.create: op %d placed on tier %d of %d" i
             tier n_tiers))
    tier_of;
  let links =
    match links with
    | None -> Array.make (n_tiers - 1) None
    | Some l ->
        if List.length l <> n_tiers - 1 then
          invalid_arg "Multirun.create: need one link config per tier gap";
        Array.of_list l
  in
  let execs =
    Array.init n_tiers (fun tier ->
        let member i = tier_of.(i) = tier in
        if tier = 0 then
          Array.init n_nodes (fun _ -> Exec.create ~member graph)
        else
          (* Node-namespace operators relocated off the node keep
             per-node state instances *)
          let replicated i =
            (Graph.op graph i).Op.namespace = Op.Node && member i
          in
          [| Exec.create ~replicated ~member graph |])
  in
  {
    tier_of;
    n_tiers;
    parents;
    execs;
    channels =
      Array.map
        (Option.map (fun c ->
             {
               queue = Shed.create ~seed:c.seed c.policy ~capacity:c.capacity;
               service = c.service;
             }))
        links;
    cross_elems = Array.make (n_tiers - 1) 0;
    cross_bytes = Array.make (n_tiers - 1) 0;
    drop_counts = Array.init (n_tiers - 1) (fun _ -> Array.make n 0);
  }

let reset t =
  Array.iter (Array.iter Exec.reset) t.execs;
  Array.iter
    (function
      | Some ch ->
          let rec flush () =
            match Shed.pop ch.queue with Some _ -> flush () | None -> ()
          in
          flush ()
      | None -> ())
    t.channels;
  Array.fill t.cross_elems 0 (Array.length t.cross_elems) 0;
  Array.fill t.cross_bytes 0 (Array.length t.cross_bytes) 0;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) t.drop_counts

(* Fire a crossing's destination operator in its tier's engine,
   appending sink values (reversed — callers do one final [List.rev]),
   then route the resulting out-crossings further downstream. *)
let rec deliver t ~node (c : Exec.crossing) acc =
  let tier = t.tier_of.(c.edge.dst) in
  let fired =
    Exec.fire ~node t.execs.(tier).(0) ~op:c.edge.dst ~port:c.edge.dst_port
      c.value
  in
  acc := List.rev_append fired.Exec.sink_values !acc;
  route t ~node ~from_tier:tier fired.Exec.crossings acc

(* Offer each crossing leaving [from_tier] to link [from_tier] (its
   uplink): counted there, then pushed into the first bounded channel
   on its rootward path (shedding on overflow) or forwarded through
   perfect links until it reaches its destination tier.  Crossings to
   a tier that is not a strict ancestor are outside the
   monotone-descent contract and are ignored — for a chain ("strictly
   deeper tier") exactly the historical two-tier behaviour. *)
and route t ~node ~from_tier crossings acc =
  List.iter
    (fun (c : Exec.crossing) ->
      let dst = t.tier_of.(c.edge.dst) in
      let rec strict_ancestor x =
        let p = t.parents.(x) in
        p >= 0 && (p = dst || strict_ancestor p)
      in
      if strict_ancestor from_tier then send t ~node ~link:from_tier c acc)
    crossings

and send t ~node ~link (c : Exec.crossing) acc =
  t.cross_elems.(link) <- t.cross_elems.(link) + 1;
  t.cross_bytes.(link) <- t.cross_bytes.(link) + Value.size_bytes c.value;
  match t.channels.(link) with
  | Some ch -> (
      match Shed.push ch.queue (node, c) with
      | Shed.Queued -> ()
      | Shed.Dropped ->
          t.drop_counts.(link).(c.edge.src) <-
            t.drop_counts.(link).(c.edge.src) + 1
      | Shed.Displaced (_, old) ->
          t.drop_counts.(link).(old.Exec.edge.src) <-
            t.drop_counts.(link).(old.Exec.edge.src) + 1)
  | None ->
      if t.tier_of.(c.edge.dst) = t.parents.(link) then deliver t ~node c acc
      else send t ~node ~link:(t.parents.(link)) c acc

(* Pop one parked crossing off channel [link]; it either lands on the
   parent tier or continues across the parent's own uplink. *)
let service_one t ~link ch acc =
  match Shed.pop ch.queue with
  | None -> false
  | Some (node, c) ->
      if t.tier_of.(c.edge.dst) = t.parents.(link) then deliver t ~node c acc
      else send t ~node ~link:(t.parents.(link)) c acc;
      true

let drain ?limit t =
  let acc = ref [] in
  let budget = ref (match limit with None -> -1 | Some l -> l) in
  for link = 0 to t.n_tiers - 2 do
    match t.channels.(link) with
    | None -> ()
    | Some ch ->
        let rec go () =
          if !budget <> 0 then
            if service_one t ~link ch acc then begin
              decr budget;
              go ()
            end
        in
        go ()
  done;
  List.rev !acc

let inject ?(node = 0) t ~source value =
  (* sources live on any non-root tier: tier 0 addresses one of its
     [n_nodes] replicas, deeper tiers (e.g. another leaf of a tier
     tree) have a single engine *)
  let tier = t.tier_of.(source) in
  if node < 0 || node >= Array.length t.execs.(tier) then
    invalid_arg "Multirun.inject: bad node id";
  let fired = Exec.fire t.execs.(tier).(node) ~op:source ~port:0 value in
  let sink_values = ref (List.rev fired.Exec.sink_values) in
  route t ~node ~from_tier:tier fired.Exec.crossings sink_values;
  (* service bounded channels, node-most first; crossings relayed into
     a deeper channel are picked up by that channel's own quota (a
     tier's parent always has a larger index, so ascending link order
     services every relay in the same pass) *)
  for link = 0 to t.n_tiers - 2 do
    match t.channels.(link) with
    | Some ch when ch.service > 0 ->
        let rec go budget =
          if budget > 0 && service_one t ~link ch sink_values then
            go (budget - 1)
        in
        go ch.service
    | _ -> ()
  done;
  List.rev !sink_values

let n_tiers t = t.n_tiers
let n_nodes t = Array.length t.execs.(0)
let tier_of t i = t.tier_of.(i)
let tier_exec t ~tier replica = t.execs.(tier).(replica)
let link_traffic t k = (t.cross_elems.(k), t.cross_bytes.(k))

let link_dropped t k =
  match t.channels.(k) with Some ch -> Shed.dropped ch.queue | None -> 0

let link_drop_counts t k = Array.copy t.drop_counts.(k)

let link_queued t k =
  match t.channels.(k) with Some ch -> Shed.length ch.queue | None -> 0
