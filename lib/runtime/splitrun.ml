(* Since the multi-tier runtime refactor this module is the two-tier
   instance of [Multirun]: tier 0 is the node, tier 1 the server, and
   the optional shed config becomes the single link's channel.  The
   historical behaviour — every returned value, every counter — is
   preserved bit-for-bit (pinned by the regression tests in
   test_placement.ml). *)

type shed_config = {
  policy : Shed.policy;
  capacity : int;
  service : int;
  seed : int;
}

let default_shed =
  { policy = Shed.Drop_newest; capacity = 8; service = 1; seed = 0 }

type t = { mr : Multirun.t; node_of : bool array }

let create ?(n_nodes = 1) ?shed ~node_of graph =
  let n = Dataflow.Graph.n_ops graph in
  let node_mask = Array.init n node_of in
  let links =
    [
      Option.map
        (fun c ->
          {
            Multirun.policy = c.policy;
            capacity = c.capacity;
            service = c.service;
            seed = c.seed;
          })
        shed;
    ]
  in
  {
    mr =
      Multirun.create ~n_nodes ~links ~n_tiers:2
        ~tier_of:(fun i -> if node_mask.(i) then 0 else 1)
        graph;
    node_of = node_mask;
  }

let reset t = Multirun.reset t.mr

let inject ?(node = 0) t ~source value =
  (* historical error messages, checked in historical order *)
  if node < 0 || node >= Multirun.n_nodes t.mr then
    invalid_arg "Splitrun.inject: bad node id";
  if not t.node_of.(source) then
    invalid_arg "Splitrun.inject: source operator is not on the node";
  Multirun.inject ~node t.mr ~source value

let drain ?limit t = Multirun.drain ?limit t.mr
let node_exec t i = Multirun.tier_exec t.mr ~tier:0 i
let server_exec t = Multirun.tier_exec t.mr ~tier:1 0
let crossing_traffic t = Multirun.link_traffic t.mr 0
let dropped t = Multirun.link_dropped t.mr 0
let drop_counts t = Multirun.link_drop_counts t.mr 0
let queued t = Multirun.link_queued t.mr 0
