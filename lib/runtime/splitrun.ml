open Dataflow

type shed_config = {
  policy : Shed.policy;
  capacity : int;
  service : int;
  seed : int;
}

let default_shed =
  { policy = Shed.Drop_newest; capacity = 8; service = 1; seed = 0 }

type t = {
  graph : Graph.t;
  node_of : bool array;
  nodes : Exec.t array;
  server : Exec.t;
  mutable cross_elems : int;
  mutable cross_bytes : int;
  (* shedding-aware channel between the halves; [None] = the original
     lossless, zero-latency channel *)
  shed : (int * Exec.crossing) Shed.t option;
  service : int;
  drop_counts : int array;  (* per operator: crossings shed at its output *)
}

let create ?(n_nodes = 1) ?shed ~node_of graph =
  let n = Graph.n_ops graph in
  let node_mask = Array.init n node_of in
  let replicated i =
    (Graph.op graph i).Op.namespace = Op.Node && not node_mask.(i)
  in
  {
    graph;
    node_of = node_mask;
    nodes =
      Array.init n_nodes (fun _ ->
          Exec.create ~member:(fun i -> node_mask.(i)) graph);
    server =
      Exec.create ~replicated ~member:(fun i -> not node_mask.(i)) graph;
    cross_elems = 0;
    cross_bytes = 0;
    shed =
      Option.map
        (fun c -> Shed.create ~seed:c.seed c.policy ~capacity:c.capacity)
        shed;
    service = (match shed with None -> 0 | Some c -> c.service);
    drop_counts = Array.make n 0;
  }

let reset t =
  Array.iter Exec.reset t.nodes;
  Exec.reset t.server;
  t.cross_elems <- 0;
  t.cross_bytes <- 0;
  (match t.shed with
  | Some q ->
      let rec flush () = match Shed.pop q with Some _ -> flush () | None -> () in
      flush ()
  | None -> ());
  Array.fill t.drop_counts 0 (Array.length t.drop_counts) 0

let fire_server ?(node = 0) t (c : Exec.crossing) =
  let f = Exec.fire ~node t.server ~op:c.edge.dst ~port:c.edge.dst_port c.value in
  f.Exec.sink_values

let drain ?limit t =
  match t.shed with
  | None -> []
  | Some q ->
      let acc = ref [] in
      let budget = ref (match limit with None -> -1 | Some l -> l) in
      let rec go () =
        if !budget <> 0 then
          match Shed.pop q with
          | None -> ()
          | Some (node, c) ->
              decr budget;
              acc := List.rev_append (fire_server ~node t c) !acc;
              go ()
      in
      go ();
      List.rev !acc

let inject ?(node = 0) t ~source value =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Splitrun.inject: bad node id";
  if not t.node_of.(source) then
    invalid_arg "Splitrun.inject: source operator is not on the node";
  let fired = Exec.fire t.nodes.(node) ~op:source ~port:0 value in
  let sink_values = ref (List.rev fired.sink_values) in
  (match t.shed with
  | None ->
      List.iter
        (fun (c : Exec.crossing) ->
          t.cross_elems <- t.cross_elems + 1;
          t.cross_bytes <- t.cross_bytes + Value.size_bytes c.value;
          sink_values :=
            List.rev_append (fire_server ~node t c) !sink_values)
        fired.crossings
  | Some q ->
      (* crossings enter the bounded inter-half queue; the server half
         services a bounded number per injection, emulating a server
         that cannot keep up with the offered crossing rate *)
      List.iter
        (fun (c : Exec.crossing) ->
          t.cross_elems <- t.cross_elems + 1;
          t.cross_bytes <- t.cross_bytes + Value.size_bytes c.value;
          match Shed.push q (node, c) with
          | Shed.Queued -> ()
          | Shed.Dropped ->
              t.drop_counts.(c.edge.src) <- t.drop_counts.(c.edge.src) + 1
          | Shed.Displaced (_, old) ->
              t.drop_counts.(old.Exec.edge.src) <-
                t.drop_counts.(old.Exec.edge.src) + 1)
        fired.crossings;
      if t.service > 0 then
        sink_values :=
          List.rev_append (drain ~limit:t.service t) !sink_values);
  List.rev !sink_values

let node_exec t i = t.nodes.(i)
let server_exec t = t.server
let crossing_traffic t = (t.cross_elems, t.cross_bytes)

let dropped t =
  match t.shed with Some q -> Shed.dropped q | None -> 0

let drop_counts t = Array.copy t.drop_counts

let queued t = match t.shed with Some q -> Shed.length q | None -> 0
