(** Bounded queues with pluggable load-shedding policies.

    An overloaded node cannot process everything it is offered; §6 of
    the paper frames that overload as programmer-visible data loss.
    This module makes the loss an explicit, accounted policy decision
    instead of an implicit property of the radio stack: a bounded
    queue sheds according to one of three classic stream-processing
    policies, and every shed element is counted.

    - {!Drop_newest}: tail drop — arrivals beyond capacity are
      discarded (the TinyOS send-queue behaviour).
    - {!Drop_oldest}: head drop — arrivals displace the oldest queued
      element (fresh data is worth more than stale data).
    - {!Sample_hold}: probabilistic sampling — with probability [keep]
      an arrival displaces the oldest queued element, otherwise the
      arrival is dropped; the queue holds an approximately uniform
      sample of the offered stream under sustained overload. *)

type policy =
  | Drop_newest
  | Drop_oldest
  | Sample_hold of float  (** keep probability in [0, 1] *)

type 'a t

val create : ?seed:int -> policy -> capacity:int -> 'a t
(** [seed] (default 0) drives the {!Sample_hold} coin flips through
    the repo's seeded PRNG; the other policies draw nothing.
    @raise Invalid_argument when [capacity <= 0] or a [Sample_hold]
    probability is outside [0, 1]. *)

type 'a admitted =
  | Queued
  | Dropped  (** the arriving element was shed *)
  | Displaced of 'a  (** the arriving element evicted a queued one *)

val push : 'a t -> 'a -> 'a admitted
val pop : 'a t -> 'a option
val length : 'a t -> int
val capacity : 'a t -> int

val pushed : 'a t -> int
(** Elements offered so far. *)

val dropped : 'a t -> int
(** Elements shed so far (arrivals dropped plus queued elements
    displaced); [pushed t = dropped t + length t +] elements popped. *)
