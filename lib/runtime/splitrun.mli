(** Split execution of a partitioned program.

    Runs the node-side and server-side halves of a graph connected by
    a channel.  By default the channel is perfect (lossless,
    zero-latency) — the invariant behind Wishbone's freedom to move
    stateless operators (§2.1.1) and the reference for the netsim
    deploy path.

    Passing a {!shed_config} replaces the perfect channel with a
    bounded inter-half queue governed by a {!Shed.policy}: crossings
    are enqueued by {!inject}, at most [service] of them are processed
    by the server half per injection, and overflow is shed with
    per-operator drop accounting — emulating the overloaded-node
    semantics of §6 instead of assuming losslessness.  Loss is
    subtractive: a shedding run's sink outputs are a sub-multiset of
    the lossless run's (the [degradation] fuzz oracle), provided no
    stateful operator sits downstream of the queue — which is exactly
    what conservative-mode placement guarantees. *)

type shed_config = {
  policy : Shed.policy;
  capacity : int;  (** inter-half queue bound *)
  service : int;
      (** crossings the server half processes per injection; [0]
          defers all service to explicit {!drain} calls *)
  seed : int;  (** for probabilistic policies *)
}

val default_shed : shed_config
(** Drop-newest, capacity 8, service 1. *)

type t

val create :
  ?n_nodes:int -> ?shed:shed_config -> node_of:(int -> bool) ->
  Dataflow.Graph.t -> t
(** [node_of op] says whether the operator lives on the embedded node.
    Operators with a [Node] namespace that are placed on the server
    get per-node state instances.  Without [?shed] the behaviour (and
    every returned value) is identical to the historical lossless
    runtime. *)

val reset : t -> unit

val inject :
  ?node:int -> t -> source:int -> Dataflow.Value.t ->
  Dataflow.Value.t list
(** Push one sensor sample into [source] on the given node (default
    0).  Lossless mode: both halves execute and the values reaching
    server sinks during this traversal are returned in order.
    Shedding mode: the node half executes, crossings are enqueued
    (possibly shedding), up to [service] queued crossings are
    processed, and the sink values of this injection's node half plus
    the serviced crossings are returned. *)

val drain : ?limit:int -> t -> Dataflow.Value.t list
(** Process up to [limit] queued crossings (default: all), returning
    the resulting sink values.  Always [[]] in lossless mode. *)

val node_exec : t -> int -> Exec.t
(** Per-node executor (for statistics inspection). *)

val server_exec : t -> Exec.t

val crossing_traffic : t -> int * int
(** Total (elements, bytes) {e offered} to the node→server boundary so
    far (shed crossings included). *)

val dropped : t -> int
(** Crossings shed so far (0 in lossless mode). *)

val drop_counts : t -> int array
(** Per-operator shed counts: index [i] counts dropped crossings that
    were emitted by operator [i]. *)

val queued : t -> int
(** Crossings currently waiting in the inter-half queue. *)
