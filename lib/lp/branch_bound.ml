type lp_solver = Auto | Dense | Sparse_revised
type schedule = Wave | Steal

type options = {
  max_nodes : int;
  int_tol : float;
  gap_tol : float;
  time_limit : float;
  pivot_budget : int;
  on_node : (nodes:int -> pivots:int -> unit) option;
  warm_start : bool;
  workers : int;
  schedule : schedule;
  solver : lp_solver;
  simplex : Simplex.options;
}

let default_options =
  {
    max_nodes = 200_000;
    int_tol = 1e-6;
    gap_tol = 0.;
    time_limit = infinity;
    pivot_budget = max_int;
    on_node = None;
    warm_start = true;
    workers = 1;
    schedule = Wave;
    solver = Auto;
    simplex = Simplex.default_options;
  }

(* Auto picks the sparse revised simplex once the LP is big enough
   for the revised machinery to pay for itself; tiny models (fig3,
   unit fixtures) stay on the dense tableau they were tuned on. *)
let sparse_threshold = 48

type stats = {
  nodes_explored : int;
  lp_solves : int;
  hot_solves : int;
  total_pivots : int;
  time_to_incumbent : float;
  time_total : float;
  proved_optimal : bool;
  best_bound : float;
  incumbent_trace : (float * float) list;
  root_basis : Basis.t option;
}

(* Node bounds are delta-encoded: each node records only the single
   bound its branch tightened relative to its parent, and the full
   [lo]/[hi] arrays are materialised when the node is popped for
   expansion.  A tree of N open nodes then costs O(N) bound storage
   instead of O(N * vars), and pushing a child is O(1).  Bounds only
   tighten down a path, so replaying the deltas root-to-leaf with
   plain assignments reproduces the eager arrays exactly. *)
type bound_delta = {
  bvar : int;  (* branching variable; -1 on the root *)
  bup : bool;  (* true: raise lo to bval; false: lower hi to bval *)
  bval : float;
}

let no_delta = { bvar = -1; bup = false; bval = 0. }

let materialise ~lo0 ~hi0 deltas =
  let lo = Array.copy lo0 and hi = Array.copy hi0 in
  List.iter
    (fun d -> if d.bup then lo.(d.bvar) <- d.bval else hi.(d.bvar) <- d.bval)
    deltas;
  (lo, hi)

type node = {
  parent : node option;  (* branching chain up to the root *)
  delta : bound_delta;  (* the one bound this node tightened *)
  relax : Solution.t;
  basis : Basis.t option;  (* optimal basis of this node's relaxation *)
  mutable hot : Simplex.hot option;
      (* final tableau of this node's relaxation (dense solver only),
         kept for at most [hot_cache] recent nodes so child LPs can
         skip refactorisation; dropped tableaus degrade to [basis] *)
}

let deltas_of_node node =
  let rec go nd acc =
    match nd.parent with None -> acc | Some p -> go p (nd.delta :: acc)
  in
  go node []

(* How many recent nodes keep their full tableau alive.  Each costs
   O(rows * cols) floats, so this bounds warm-start memory while still
   covering best-first search's common case of popping a just-pushed
   child. *)
let hot_cache = 4

(* Most fractional integer variable, or [None] when integral within
   [int_tol]: score each candidate by its distance to the nearest
   integer (so a fractional part of .5 scores highest) and take the
   maximum, breaking ties towards the lowest index so the branching
   choice is deterministic. *)
let fractional_var ~int_tol int_vars (x : float array) =
  let best = ref None in
  let best_score = ref int_tol in
  List.iter
    (fun v ->
      let f = x.(v) -. Float.floor x.(v) in
      let score = Float.min f (1. -. f) in
      if score > !best_score then begin
        best_score := score;
        best := Some v
      end)
    int_vars;
  !best

let snap ~int_tol int_vars (x : float array) =
  let x = Array.copy x in
  List.iter
    (fun v ->
      let r = Float.round x.(v) in
      if Float.abs (x.(v) -. r) <= int_tol *. 10. then x.(v) <- r)
    int_vars;
  x

(* Deterministic incumbent tie-breaking: when two feasible points have
   (numerically) the same objective, keep the lexicographically
   smallest.  With parallel waves, tied integral leaves can surface in
   the same batch in any exploration order; this makes the returned
   point a pure function of the *set* discovered, not the schedule. *)
let lex_smaller (a : float array) (b : float array) =
  let n = Array.length a in
  let rec go i =
    if i >= n then false
    else if a.(i) < b.(i) -. 1e-9 then true
    else if a.(i) > b.(i) +. 1e-9 then false
    else go (i + 1)
  in
  go 0

(* One wave entry: a popped, non-stale open node.  Integral leaves
   carry no LP work; branch entries are expanded by a worker, results
   applied later in deterministic batch order. *)
type task = {
  t_node : node;
  t_var : int;
  mutable t_rec : Simplex.result option;
      (* dense-mode hot-tableau recovery solve, when one was needed *)
  mutable t_down : Simplex.result option;
  mutable t_up : Simplex.result option;
}

type entry = Leaf of node | Branch of task

(* The integral bound values either side of the branching variable's
   relaxed value; shared by the solve and apply phases so the bounds
   solved and the deltas recorded always agree. *)
let branch_vals (node : node) v =
  let xv = node.relax.x.(v) in
  ( Float.of_int (int_of_float (Float.floor xv)),
    Float.of_int (int_of_float (Float.ceil xv)) )

let solve ?(options = default_options) ?initial ?root_basis problem =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let minimize = Problem.direction problem = Problem.Minimize in
  (* internal keys are always "minimize": smaller is better *)
  let key_of_obj obj = if minimize then obj else -.obj in
  let obj_of_key key = if minimize then key else -.key in
  (* force every lazy accessor cache before any domain is spawned:
     workers treat the problem as strictly read-only *)
  let vars = Problem.vars problem in
  ignore (Problem.constrs problem);
  ignore (Problem.objective problem);
  let int_vars = Problem.integer_vars problem in
  let use_sparse =
    match options.solver with
    | Dense -> false
    | Sparse_revised -> true
    | Auto -> Problem.n_constrs problem >= sparse_threshold
  in
  let sdata = if use_sparse then Some (Sparse.of_problem problem) else None in
  let workers = Int.max 1 options.workers in
  let lp_solves = ref 0 in
  let hot_solves = ref 0 in
  let pivots = ref 0 in
  let root_b = ref None in
  (* pure LP relaxation solve — no shared counters, so safe from any
     worker domain; accounting happens on the main thread via
     [account] when the result is applied.  [simplex] carries the
     per-solve pivot cap derived from the tree-wide budget. *)
  let relaxation ?hot ?session ?(simplex = options.simplex) ~warm ~lo ~hi () =
    let warm, hot = if options.warm_start then (warm, hot) else (None, None) in
    match sdata with
    | Some data ->
        Sparse.solve_warm ~options:simplex ?warm ~lo ~hi ?session data
    | None ->
        Simplex.solve_warm ~options:simplex ?warm ?hot
          ~keep_hot:options.warm_start ~lo ~hi problem
  in
  (* the tree-wide pivot budget, capped into each LP solve so a single
     relaxation cannot blow through it unboundedly.  With the default
     unlimited budget this returns [options.simplex] itself, keeping
     the budget-free path bit-identical. *)
  let budgeted_simplex ~remaining =
    if options.pivot_budget = max_int then options.simplex
    else
      { options.simplex with
        Simplex.max_pivots =
          Int.min options.simplex.Simplex.max_pivots (Int.max 1 remaining) }
  in
  (* cooperative checkpoint: deterministic counters out, exceptions
     (fault injection) propagate to the caller *)
  let on_node ~nodes ~pivots =
    match options.on_node with Some f -> f ~nodes ~pivots | None -> ()
  in
  (* one reusable sparse solve session per worker slot: state arrays
     are pooled across solves, and re-solving the warm basis the
     session last refactorised (the second child of every node)
     restores the snapshotted factorisation instead of rebuilding it.
     Sessions never change results, only the work to reach them. *)
  let sessions =
    Array.init workers (fun _ -> Option.map Sparse.session sdata)
  in
  let account (r : Simplex.result) =
    incr lp_solves;
    if r.Simplex.hot_used then incr hot_solves;
    pivots := !pivots + r.Simplex.pivots
  in
  (* ring of nodes currently holding a hot tableau, newest first *)
  let hot_nodes = ref [] in
  let retain_hot node =
    if node.hot <> None then begin
      let rest = List.filter (fun o -> o != node) !hot_nodes in
      let keep, drop =
        let rec split i = function
          | [] -> ([], [])
          | l when i = 0 -> ([], l)
          | x :: tl ->
              let k, d = split (i - 1) tl in
              (x :: k, d)
        in
        split (hot_cache - 1) rest
      in
      List.iter (fun o -> o.hot <- None) drop;
      hot_nodes := node :: keep
    end
  in
  (* a node that has been expanded or pruned never needs its tableau
     again; free the slot for live nodes *)
  let release_hot node =
    if node.hot <> None then begin
      node.hot <- None;
      hot_nodes := List.filter (fun o -> o != node) !hot_nodes
    end
  in
  let lo0 = Array.map (fun (v : Problem.var_info) -> v.lo) vars in
  let hi0 = Array.map (fun (v : Problem.var_info) -> v.hi) vars in
  let finish status ~proved ~best_bound ~t_inc ~nodes ~trace =
    ( status,
      {
        nodes_explored = nodes;
        lp_solves = !lp_solves;
        hot_solves = !hot_solves;
        total_pivots = !pivots;
        time_to_incumbent = t_inc;
        time_total = elapsed ();
        proved_optimal = proved;
        best_bound;
        incumbent_trace = List.rev trace;
        root_basis = !root_b;
      } )
  in
  on_node ~nodes:0 ~pivots:0;
  let root =
    relaxation ?session:sessions.(0)
      ~simplex:(budgeted_simplex ~remaining:options.pivot_budget)
      ~warm:root_basis ~lo:lo0 ~hi:hi0 ()
  in
  account root;
  root_b := root.Simplex.basis;
  match root.Simplex.status with
  | Solution.Infeasible ->
      finish Solution.Infeasible ~proved:true ~best_bound:nan ~t_inc:0.
        ~nodes:0 ~trace:[]
  | Solution.Unbounded ->
      finish Solution.Unbounded ~proved:true ~best_bound:nan ~t_inc:0. ~nodes:0
        ~trace:[]
  | Solution.Iteration_limit ->
      finish Solution.Iteration_limit ~proved:false ~best_bound:nan ~t_inc:0.
        ~nodes:0 ~trace:[]
  | Solution.Optimal root_relax -> (
      let open_nodes : node Heap.Pqueue.t = Heap.Pqueue.create () in
      let root_node =
        { parent = None; delta = no_delta; relax = root_relax;
          basis = root.Simplex.basis; hot = root.Simplex.hot }
      in
      retain_hot root_node;
      Heap.Pqueue.push open_nodes (key_of_obj root_relax.objective) root_node;
      let node_bounds node = materialise ~lo0 ~hi0 (deltas_of_node node) in
      let incumbent = ref None in
      let incumbent_key = ref infinity in
      let t_incumbent = ref 0. in
      let trace = ref [] in
      let nodes = ref 0 in
      let hit_budget = ref false in
      let try_incumbent (sol : Solution.t) =
        let x = snap ~int_tol:options.int_tol int_vars sol.x in
        let obj = Problem.objective_value problem x in
        let key = key_of_obj obj in
        if Problem.constraint_violation problem x <= 1e-5 then begin
          if key < !incumbent_key -. 1e-12 then begin
            incumbent := Some { Solution.x; objective = obj };
            incumbent_key := key;
            t_incumbent := elapsed ();
            trace := (!t_incumbent, obj) :: !trace
          end
          else if key <= !incumbent_key +. 1e-12 then
            match !incumbent with
            | Some cur when lex_smaller x cur.Solution.x ->
                (* numerically tied objective: keep the canonical
                   (lexicographically smallest) point *)
                incumbent := Some { Solution.x; objective = obj };
                incumbent_key := Float.min key !incumbent_key
            | _ -> ()
        end
      in
      (* incremental callers (rate search) seed the incumbent with the
         previous step's feasible point: a valid primal bound that lets
         best-first search prune most of the tree immediately *)
      (match initial with
      | Some x0 when Array.length x0 = Array.length lo0 ->
          try_incumbent
            { Solution.x = x0; objective = Problem.objective_value problem x0 }
      | _ -> ());
      let gap_closed bound_key =
        match !incumbent with
        | None -> false
        | Some _ ->
            let gap = !incumbent_key -. bound_key in
            gap <= options.gap_tol *. Float.max 1. (Float.abs !incumbent_key)
                   +. 1e-9
      in
      (* expansion body run by a worker (or inline when [workers = 1]):
         both children, plus the dense-mode tableau recovery when the
         node's hot value was evicted.  Writes only into its own task
         record; [Domain.join] publishes the writes to the applier. *)
      let run_task ?session ?simplex tk =
        let node = tk.t_node in
        let lo, hi = node_bounds node in
        let parent_hot =
          match node.hot with
          | Some _ as h -> h
          | None when options.warm_start && sdata = None -> (
              match relaxation ?simplex ~warm:node.basis ~lo ~hi () with
              | { Simplex.status = Solution.Optimal _; hot; _ } as r ->
                  tk.t_rec <- Some r;
                  hot
              | r ->
                  tk.t_rec <- Some r;
                  None)
          | None -> None
        in
        let fl, ce = branch_vals node tk.t_var in
        let hi_down = Array.copy hi in
        hi_down.(tk.t_var) <- fl;
        let lo_up = Array.copy lo in
        lo_up.(tk.t_var) <- ce;
        tk.t_down <-
          Some (relaxation ?hot:parent_hot ?session ?simplex ~warm:node.basis
                  ~lo ~hi:hi_down ());
        tk.t_up <-
          Some (relaxation ?hot:parent_hot ?session ?simplex ~warm:node.basis
                  ~lo:lo_up ~hi ())
      in
      (* ---- work-stealing scheduler (schedule = Steal) ----
         Long-lived worker domains, each with a private best-bound
         heap; a worker whose heap runs dry steals the globally best
         open node.  All shared state (heaps, incumbent, counters)
         lives under one mutex — the point of this schedule is keeping
         every worker busy on deep trees, not lock-free throughput —
         and termination is by in-flight counting: the search is over
         when every heap is empty and no node is being expanded.
         Exploration order (and therefore node/pivot counts) depends
         on timing, but the returned optimum does not: pruning only
         discards nodes that provably cannot beat the incumbent, and
         tied incumbents keep the lexicographically smallest point. *)
      let steal_bound_key = ref infinity in
      let run_steal () =
        let mtx = Mutex.create () in
        let cond = Condition.create () in
        let heaps = Array.init workers (fun _ -> Heap.Pqueue.create ()) in
        Heap.Pqueue.push heaps.(0) (key_of_obj root_relax.objective) root_node;
        let in_flight = ref 0 in
        let finished = ref false in
        let heap_min_all () =
          let best = ref None in
          Array.iteri
            (fun i h ->
              match Heap.Pqueue.min_key h with
              | Some k -> (
                  match !best with
                  | Some (bk, _) when bk <= k -> ()
                  | _ -> best := Some (k, i))
              | None -> ())
            heaps;
          !best
        in
        let worker w () =
          let session = sessions.(w) in
          let running = ref true in
          while !running do
            Mutex.lock mtx;
            let acquired = ref None in
            let waiting = ref true in
            while !waiting do
              if !finished then waiting := false
              else begin
                (* cooperative checkpoint: an injected exception must
                   not strand the other workers, so mark the search
                   finished and wake everyone before propagating *)
                (try on_node ~nodes:!nodes ~pivots:!pivots
                 with e ->
                   hit_budget := true;
                   finished := true;
                   Condition.broadcast cond;
                   Mutex.unlock mtx;
                   raise e);
              if
                !nodes >= options.max_nodes
                || !pivots >= options.pivot_budget
                || elapsed () > options.time_limit
              then begin
                hit_budget := true;
                finished := true;
                Condition.broadcast cond;
                waiting := false
              end
              else begin
                let pick =
                  match Heap.Pqueue.min_key heaps.(w) with
                  | Some _ -> Some w
                  | None -> (
                      match heap_min_all () with
                      | Some (_, i) -> Some i
                      | None -> None)
                in
                match pick with
                | Some i -> (
                    match Heap.Pqueue.pop heaps.(i) with
                    | Some (key, node) ->
                        (* stale-node pruning, as in the wave driver *)
                        if key >= !incumbent_key -. 1e-12 || gap_closed key
                        then ()
                        else begin
                          incr nodes;
                          incr in_flight;
                          (* capture the remaining pivot budget while
                             the counter is mutex-protected; the
                             children's solves are capped by it *)
                          acquired :=
                            Some
                              ( node,
                                budgeted_simplex
                                  ~remaining:(options.pivot_budget - !pivots) );
                          waiting := false
                        end
                    | None -> ())
                | None ->
                    if !in_flight = 0 then begin
                      finished := true;
                      Condition.broadcast cond;
                      waiting := false
                    end
                    else Condition.wait cond mtx
              end
              end
            done;
            (match !acquired with None -> running := false | Some _ -> ());
            Mutex.unlock mtx;
            match !acquired with
            | None -> ()
            | Some (node, simplex) -> (
                match
                  fractional_var ~int_tol:options.int_tol int_vars node.relax.x
                with
                | None ->
                    Mutex.lock mtx;
                    try_incumbent node.relax;
                    decr in_flight;
                    Condition.broadcast cond;
                    Mutex.unlock mtx
                | Some v ->
                    let lo, hi = node_bounds node in
                    let fl, ce = branch_vals node v in
                    let hi_down = Array.copy hi in
                    hi_down.(v) <- fl;
                    let lo_up = Array.copy lo in
                    lo_up.(v) <- ce;
                    let rdown =
                      relaxation ?session ~simplex ~warm:node.basis ~lo
                        ~hi:hi_down ()
                    in
                    let rup =
                      relaxation ?session ~simplex ~warm:node.basis ~lo:lo_up
                        ~hi ()
                    in
                    Mutex.lock mtx;
                    let apply_child (r : Simplex.result) ~bup ~bval =
                      account r;
                      match r.Simplex.status with
                      | Solution.Optimal relax ->
                          let key = key_of_obj relax.Solution.objective in
                          if key < !incumbent_key -. 1e-12 then
                            Heap.Pqueue.push heaps.(w) key
                              { parent = Some node;
                                delta = { bvar = v; bup; bval };
                                relax; basis = r.Simplex.basis; hot = None }
                      | Solution.Infeasible -> ()
                      | Solution.Unbounded -> ()
                      | Solution.Iteration_limit -> hit_budget := true
                    in
                    apply_child rdown ~bup:false ~bval:fl;
                    apply_child rup ~bup:true ~bval:ce;
                    decr in_flight;
                    Condition.broadcast cond;
                    Mutex.unlock mtx)
          done
        in
        (match workers with
        | 1 -> worker 0 ()
        | _ ->
            let doms =
              List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
            in
            worker 0 ();
            List.iter Domain.join doms);
        steal_bound_key :=
          (match heap_min_all () with
          | Some (k, _) -> Float.min k !incumbent_key
          | None -> !incumbent_key)
      in
      let use_steal = options.schedule = Steal in
      if use_steal then run_steal ();
      let continue = ref (not use_steal) in
      while !continue do
        (* ---- collect a wave of up to [workers] non-stale nodes ----
           The first collection attempt of a wave replays the
           sequential loop-head checks exactly (so [workers = 1]
           reproduces the sequential search verbatim); a trigger after
           the wave already has entries merely closes the wave, and
           the next wave's head re-evaluates it against the applied
           results. *)
        let batch = ref [] in
        let batch_n = ref 0 in
        let collecting = ref true in
        while !collecting do
          if !batch_n >= workers then collecting := false
          else
            match Heap.Pqueue.min_key open_nodes with
            | None ->
                if !batch_n = 0 then continue := false;
                collecting := false
            | Some bound_key when gap_closed bound_key ->
                if !batch_n = 0 then continue := false;
                collecting := false
            | Some _ ->
                (* cooperative checkpoint: counters are only mutated in
                   the sequential collect/apply phases, so the values
                   seen here are a pure function of the search history *)
                on_node ~nodes:!nodes ~pivots:!pivots;
                if
                  !nodes >= options.max_nodes
                  || !pivots >= options.pivot_budget
                  || elapsed () > options.time_limit
                then begin
                  if !batch_n = 0 then begin
                    hit_budget := true;
                    continue := false
                  end;
                  collecting := false
                end
                else begin
                  match Heap.Pqueue.pop open_nodes with
                  | None ->
                      if !batch_n = 0 then continue := false;
                      collecting := false
                  | Some (key, node) ->
                      (* stale-node pruning: the bound was checked when
                         the node was pushed, but the incumbent may
                         have improved since; discard without
                         branching *)
                      if key >= !incumbent_key -. 1e-12 || gap_closed key then
                        release_hot node
                      else begin
                        incr nodes;
                        match
                          fractional_var ~int_tol:options.int_tol int_vars
                            node.relax.x
                        with
                        | None ->
                            release_hot node;
                            batch := Leaf node :: !batch;
                            incr batch_n
                        | Some v ->
                            batch :=
                              Branch
                                { t_node = node; t_var = v; t_rec = None;
                                  t_down = None; t_up = None }
                              :: !batch;
                            incr batch_n
                      end
                end
        done;
        let batch = List.rev !batch in
        (* ---- expand all branch entries, in parallel past one ---- *)
        let tasks =
          List.filter_map
            (function Branch tk -> Some tk | Leaf _ -> None)
            batch
        in
        (* every task of a wave sees the same remaining budget — the
           value at wave entry — so the wave's results stay a pure
           function of the search history and [workers] *)
        let wave_simplex =
          budgeted_simplex ~remaining:(options.pivot_budget - !pivots)
        in
        (match tasks with
        | [] -> ()
        | [ tk ] -> run_task ?session:sessions.(0) ~simplex:wave_simplex tk
        | tk0 :: rest ->
            let doms =
              List.mapi
                (fun i tk ->
                  Domain.spawn (fun () ->
                      run_task ?session:sessions.(i + 1) ~simplex:wave_simplex
                        tk))
                rest
            in
            run_task ?session:sessions.(0) ~simplex:wave_simplex tk0;
            List.iter Domain.join doms);
        (* ---- apply results in deterministic batch order ---- *)
        List.iter
          (function
            | Leaf node -> try_incumbent node.relax
            | Branch tk ->
                (match tk.t_rec with Some r -> account r | None -> ());
                let node = tk.t_node in
                release_hot node;
                let fl, ce = branch_vals node tk.t_var in
                let apply_child r ~bup ~bval =
                  account r;
                  match r.Simplex.status with
                  | Solution.Optimal relax ->
                      let key = key_of_obj relax.Solution.objective in
                      if key < !incumbent_key -. 1e-12 then begin
                        let child =
                          { parent = Some node;
                            delta = { bvar = tk.t_var; bup; bval };
                            relax; basis = r.Simplex.basis;
                            hot = r.Simplex.hot }
                        in
                        retain_hot child;
                        Heap.Pqueue.push open_nodes key child
                      end
                  | Solution.Infeasible -> ()
                  | Solution.Unbounded ->
                      (* a bounded parent cannot have an unbounded
                         child; treat as numerical noise *)
                      ()
                  | Solution.Iteration_limit -> hit_budget := true
                in
                (match tk.t_down with
                | Some r -> apply_child r ~bup:false ~bval:fl
                | None -> ());
                (match tk.t_up with
                | Some r -> apply_child r ~bup:true ~bval:ce
                | None -> ()))
          batch
      done;
      let best_bound_key =
        if use_steal then !steal_bound_key
        else
          match Heap.Pqueue.min_key open_nodes with
          | Some k -> Float.min k !incumbent_key
          | None -> !incumbent_key
      in
      match !incumbent with
      | Some sol ->
          let proved = (not !hit_budget) || gap_closed best_bound_key in
          finish (Solution.Optimal sol) ~proved
            ~best_bound:(obj_of_key best_bound_key) ~t_inc:!t_incumbent
            ~nodes:!nodes ~trace:!trace
      | None ->
          if !hit_budget then
            finish Solution.Iteration_limit ~proved:false
              ~best_bound:(obj_of_key best_bound_key) ~t_inc:0. ~nodes:!nodes
              ~trace:!trace
          else
            finish Solution.Infeasible ~proved:true ~best_bound:nan ~t_inc:0.
              ~nodes:!nodes ~trace:[])
