(* Sparse LU with Forrest-Tomlin updates: B = L U, row permutation
   implicit via porder/pos_of.  See factor.mli for the contract. *)

module A1 = Bigarray.Array1

type pool = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

let pool_create n : pool = A1.create Bigarray.float64 Bigarray.c_layout n

type t = {
  m : int;
  (* ---- L: column etas from factorize, applied in creation order.
     Eta s scatters multipliers off pivot row lr.(s); the pivot entry
     itself is untouched (unit diagonal, multipliers pre-divided). *)
  mutable n_l : int;
  lr : int array;  (* length m *)
  lstart : int array;  (* length m + 1 *)
  mutable lidx : int array;
  mutable lpool : pool;
  mutable lnnz : int;
  (* ---- U: one column per elimination position.  Position p pivots
     row porder.(p) with diagonal udiag.(p); off-diagonal entries sit
     at rows pivoted by earlier positions. *)
  porder : int array;
  pos_of : int array;  (* row -> position *)
  udiag : float array;
  ustart : int array;
  ulen : int array;
  mutable uidx : int array;
  mutable upool : pool;
  mutable unnz : int;  (* pool high-water; columns never grow in place *)
  (* ---- Forrest-Tomlin row etas, applied in creation order after L
     in ftran: x.(rr.(k)) -= sum mu_i * x.(i). *)
  mutable n_r : int;
  mutable rr : int array;
  mutable rstart : int array;
  mutable ridx : int array;
  mutable rpool : pool;
  mutable rnnz : int;
  mutable n_updates : int;
  mutable base_entries : int;  (* lnnz + unnz of the fresh factorisation *)
  mutable unstable : bool;
  (* scratch: dense accumulator with touched tracking *)
  work : float array;
  stamp : int array;
  mutable gen : int;
  touched : int array;
  mutable n_touched : int;
  (* second accumulator for the update's row elimination *)
  mu : float array;
  mu_stamp : int array;
  mutable mu_gen : int;
  (* static row counts from the last symbolic phase (Markowitz tie) *)
  row_cnt : int array;
  (* factorisation scratch, allocated once: L-eta index by pivot row,
     DFS stacks for the Gilbert-Peierls symbolic reach, and the
     symbolic-peel work arrays *)
  l_of_row : int array;
  dfs_row : int array;
  dfs_pos : int array;
  col_cnt : int array;
  row_ptr : int array;  (* m + 1 *)
  row_fill : int array;
  mutable row_pos : int array;  (* grows with basis nnz *)
  row_active : bool array;
  col_done : bool array;
  order : int array;
  pivot_of : int array;
  peel_stack : int array;
  assigned : bool array;
  slot_col : int array;
}

let create ~m =
  {
    m;
    n_l = 0;
    lr = Array.make (Int.max 1 m) 0;
    lstart = Array.make (m + 1) 0;
    lidx = Array.make 256 0;
    lpool = pool_create 256;
    lnnz = 0;
    porder = Array.init m (fun p -> p);
    pos_of = Array.init m (fun r -> r);
    udiag = Array.make (Int.max 1 m) 1.;
    ustart = Array.make (Int.max 1 m) 0;
    ulen = Array.make (Int.max 1 m) 0;
    uidx = Array.make 256 0;
    upool = pool_create 256;
    unnz = 0;
    n_r = 0;
    rr = Array.make 64 0;
    rstart = Array.make 65 0;
    ridx = Array.make 256 0;
    rpool = pool_create 256;
    rnnz = 0;
    n_updates = 0;
    base_entries = 0;
    unstable = false;
    work = Array.make m 0.;
    stamp = Array.make m (-1);
    gen = 0;
    touched = Array.make m 0;
    n_touched = 0;
    mu = Array.make m 0.;
    mu_stamp = Array.make m (-1);
    mu_gen = 0;
    row_cnt = Array.make m 0;
    l_of_row = Array.make m (-1);
    dfs_row = Array.make m 0;
    dfs_pos = Array.make m 0;
    col_cnt = Array.make m 0;
    row_ptr = Array.make (m + 1) 0;
    row_fill = Array.make m 0;
    row_pos = Array.make 256 0;
    row_active = Array.make m true;
    col_done = Array.make m false;
    order = Array.make m 0;
    pivot_of = Array.make m (-1);
    peel_stack = Array.make m 0;
    assigned = Array.make m false;
    slot_col = Array.make m (-1);
  }

let m f = f.m
let updates_since_refresh f = f.n_updates
let eta_entries f = f.lnnz + f.unnz + f.rnnz
let ft_entries f = f.rnnz

let set_identity f =
  f.n_l <- 0;
  f.lnnz <- 0;
  f.unnz <- 0;
  f.n_r <- 0;
  f.rnnz <- 0;
  f.n_updates <- 0;
  f.base_entries <- f.m;
  f.unstable <- false;
  for p = 0 to f.m - 1 do
    f.porder.(p) <- p;
    f.pos_of.(p) <- p;
    f.udiag.(p) <- 1.;
    f.ustart.(p) <- 0;
    f.ulen.(p) <- 0
  done

(* Refactorising costs roughly one FTRAN per basis column; an update
   costs one spike plus a row sweep.  A cap of ~m updates (floored for
   tiny bases) keeps the amortised cost bounded even when every update
   is numerically clean, and a fill cap catches pathological eta
   growth. *)
let needs_refresh f =
  f.unstable
  || f.n_updates >= Int.max 64 (Int.min 1024 f.m)
  || f.lnnz + f.unnz + f.rnnz > (4 * f.base_entries) + (16 * f.m)

let grow_int_pool arr need =
  let cap = ref (Array.length !arr) in
  if !cap < need then begin
    while !cap < need do
      cap := 2 * !cap
    done;
    let a = Array.make !cap 0 in
    Array.blit !arr 0 a 0 (Array.length !arr);
    arr := a
  end

let grow_float_pool (p : pool ref) need =
  let cap = ref (A1.dim !p) in
  if !cap < need then begin
    while !cap < need do
      cap := 2 * !cap
    done;
    let a = pool_create !cap in
    A1.blit !p (A1.sub a 0 (A1.dim !p));
    p := a
  end

let grow_l f need =
  let r = ref f.lidx in
  grow_int_pool r need;
  f.lidx <- !r;
  let r = ref f.lpool in
  grow_float_pool r need;
  f.lpool <- !r

let grow_u f need =
  let r = ref f.uidx in
  grow_int_pool r need;
  f.uidx <- !r;
  let r = ref f.upool in
  grow_float_pool r need;
  f.upool <- !r

let grow_r_etas f =
  let cap = Array.length f.rr in
  if f.n_r >= cap then begin
    let cap' = 2 * cap in
    let rr = Array.make cap' 0 in
    Array.blit f.rr 0 rr 0 cap;
    f.rr <- rr;
    let rs = Array.make (cap' + 1) 0 in
    Array.blit f.rstart 0 rs 0 (cap + 1);
    f.rstart <- rs
  end

let grow_r_pool f need =
  let r = ref f.ridx in
  grow_int_pool r need;
  f.ridx <- !r;
  let r = ref f.rpool in
  grow_float_pool r need;
  f.rpool <- !r

(* ---- snapshots ------------------------------------------------- *)

type snapshot = {
  s_m : int;
  mutable s_n_l : int;
  s_lr : int array;
  s_lstart : int array;
  mutable s_lidx : int array;
  mutable s_lpool : pool;
  mutable s_lnnz : int;
  s_porder : int array;
  s_pos_of : int array;
  s_udiag : float array;
  s_ustart : int array;
  s_ulen : int array;
  mutable s_uidx : int array;
  mutable s_upool : pool;
  mutable s_unnz : int;
  mutable s_n_r : int;
  mutable s_rr : int array;
  mutable s_rstart : int array;
  mutable s_ridx : int array;
  mutable s_rpool : pool;
  mutable s_rnnz : int;
  mutable s_n_updates : int;
  mutable s_base_entries : int;
  mutable s_unstable : bool;
}

let snapshot_create ~m =
  {
    s_m = m;
    s_n_l = 0;
    s_lr = Array.make (Int.max 1 m) 0;
    s_lstart = Array.make (m + 1) 0;
    s_lidx = Array.make 256 0;
    s_lpool = pool_create 256;
    s_lnnz = 0;
    s_porder = Array.make (Int.max 1 m) 0;
    s_pos_of = Array.make (Int.max 1 m) 0;
    s_udiag = Array.make (Int.max 1 m) 1.;
    s_ustart = Array.make (Int.max 1 m) 0;
    s_ulen = Array.make (Int.max 1 m) 0;
    s_uidx = Array.make 256 0;
    s_upool = pool_create 256;
    s_unnz = 0;
    s_n_r = 0;
    s_rr = Array.make 64 0;
    s_rstart = Array.make 65 0;
    s_ridx = Array.make 256 0;
    s_rpool = pool_create 256;
    s_rnnz = 0;
    s_n_updates = 0;
    s_base_entries = 0;
    s_unstable = false;
  }

let ensure_int (get : unit -> int array) (set : int array -> unit) need =
  let a = get () in
  if Array.length a < need then begin
    let r = ref a in
    grow_int_pool r need;
    set !r
  end

let ensure_pool (get : unit -> pool) (set : pool -> unit) need =
  let a = get () in
  if A1.dim a < need then begin
    let r = ref a in
    grow_float_pool r need;
    set !r
  end

let save f (s : snapshot) =
  if s.s_m <> f.m then invalid_arg "Factor.save: size mismatch";
  let m = f.m in
  s.s_n_l <- f.n_l;
  Array.blit f.lr 0 s.s_lr 0 f.n_l;
  Array.blit f.lstart 0 s.s_lstart 0 (f.n_l + 1);
  ensure_int (fun () -> s.s_lidx) (fun a -> s.s_lidx <- a) f.lnnz;
  ensure_pool (fun () -> s.s_lpool) (fun a -> s.s_lpool <- a) f.lnnz;
  Array.blit f.lidx 0 s.s_lidx 0 f.lnnz;
  if f.lnnz > 0 then A1.blit (A1.sub f.lpool 0 f.lnnz) (A1.sub s.s_lpool 0 f.lnnz);
  s.s_lnnz <- f.lnnz;
  Array.blit f.porder 0 s.s_porder 0 m;
  Array.blit f.pos_of 0 s.s_pos_of 0 m;
  Array.blit f.udiag 0 s.s_udiag 0 m;
  Array.blit f.ustart 0 s.s_ustart 0 m;
  Array.blit f.ulen 0 s.s_ulen 0 m;
  ensure_int (fun () -> s.s_uidx) (fun a -> s.s_uidx <- a) f.unnz;
  ensure_pool (fun () -> s.s_upool) (fun a -> s.s_upool <- a) f.unnz;
  Array.blit f.uidx 0 s.s_uidx 0 f.unnz;
  if f.unnz > 0 then A1.blit (A1.sub f.upool 0 f.unnz) (A1.sub s.s_upool 0 f.unnz);
  s.s_unnz <- f.unnz;
  s.s_n_r <- f.n_r;
  ensure_int (fun () -> s.s_rr) (fun a -> s.s_rr <- a) f.n_r;
  ensure_int (fun () -> s.s_rstart) (fun a -> s.s_rstart <- a) (f.n_r + 1);
  Array.blit f.rr 0 s.s_rr 0 f.n_r;
  Array.blit f.rstart 0 s.s_rstart 0 (f.n_r + 1);
  ensure_int (fun () -> s.s_ridx) (fun a -> s.s_ridx <- a) f.rnnz;
  ensure_pool (fun () -> s.s_rpool) (fun a -> s.s_rpool <- a) f.rnnz;
  Array.blit f.ridx 0 s.s_ridx 0 f.rnnz;
  if f.rnnz > 0 then A1.blit (A1.sub f.rpool 0 f.rnnz) (A1.sub s.s_rpool 0 f.rnnz);
  s.s_rnnz <- f.rnnz;
  s.s_n_updates <- f.n_updates;
  s.s_base_entries <- f.base_entries;
  s.s_unstable <- f.unstable

let restore (s : snapshot) f =
  if s.s_m <> f.m then invalid_arg "Factor.restore: size mismatch";
  let m = f.m in
  f.n_l <- s.s_n_l;
  Array.blit s.s_lr 0 f.lr 0 s.s_n_l;
  Array.blit s.s_lstart 0 f.lstart 0 (s.s_n_l + 1);
  grow_l f s.s_lnnz;
  Array.blit s.s_lidx 0 f.lidx 0 s.s_lnnz;
  if s.s_lnnz > 0 then A1.blit (A1.sub s.s_lpool 0 s.s_lnnz) (A1.sub f.lpool 0 s.s_lnnz);
  f.lnnz <- s.s_lnnz;
  Array.blit s.s_porder 0 f.porder 0 m;
  Array.blit s.s_pos_of 0 f.pos_of 0 m;
  Array.blit s.s_udiag 0 f.udiag 0 m;
  Array.blit s.s_ustart 0 f.ustart 0 m;
  Array.blit s.s_ulen 0 f.ulen 0 m;
  grow_u f s.s_unnz;
  Array.blit s.s_uidx 0 f.uidx 0 s.s_unnz;
  if s.s_unnz > 0 then A1.blit (A1.sub s.s_upool 0 s.s_unnz) (A1.sub f.upool 0 s.s_unnz);
  f.unnz <- s.s_unnz;
  f.n_r <- s.s_n_r;
  if Array.length f.rr < s.s_n_r then begin
    let r = ref f.rr in
    grow_int_pool r s.s_n_r;
    f.rr <- !r
  end;
  if Array.length f.rstart < s.s_n_r + 1 then begin
    let r = ref f.rstart in
    grow_int_pool r (s.s_n_r + 1);
    f.rstart <- !r
  end;
  Array.blit s.s_rr 0 f.rr 0 s.s_n_r;
  Array.blit s.s_rstart 0 f.rstart 0 (s.s_n_r + 1);
  grow_r_pool f s.s_rnnz;
  Array.blit s.s_ridx 0 f.ridx 0 s.s_rnnz;
  if s.s_rnnz > 0 then A1.blit (A1.sub s.s_rpool 0 s.s_rnnz) (A1.sub f.rpool 0 s.s_rnnz);
  f.rnnz <- s.s_rnnz;
  f.n_updates <- s.s_n_updates;
  f.base_entries <- s.s_base_entries;
  f.unstable <- s.s_unstable

(* ---- solves --------------------------------------------------- *)

let ftran f (x : float array) =
  (* L *)
  for s = 0 to f.n_l - 1 do
    let xr = x.(f.lr.(s)) in
    if xr <> 0. then
      for p = f.lstart.(s) to f.lstart.(s + 1) - 1 do
        let i = Array.unsafe_get f.lidx p in
        Array.unsafe_set x i
          (Array.unsafe_get x i -. (A1.unsafe_get f.lpool p *. xr))
      done
  done;
  (* Forrest-Tomlin row etas, creation order *)
  for k = 0 to f.n_r - 1 do
    let acc = ref 0. in
    for p = f.rstart.(k) to f.rstart.(k + 1) - 1 do
      acc :=
        !acc
        +. (A1.unsafe_get f.rpool p
            *. Array.unsafe_get x (Array.unsafe_get f.ridx p))
    done;
    let r = f.rr.(k) in
    x.(r) <- x.(r) -. !acc
  done;
  (* U backward, column sweeps *)
  for p = f.m - 1 downto 0 do
    let r = Array.unsafe_get f.porder p in
    let xr = Array.unsafe_get x r in
    if xr <> 0. then begin
      let tv = xr /. Array.unsafe_get f.udiag p in
      Array.unsafe_set x r tv;
      let s0 = f.ustart.(p) in
      for e = s0 to s0 + f.ulen.(p) - 1 do
        let i = Array.unsafe_get f.uidx e in
        Array.unsafe_set x i
          (Array.unsafe_get x i -. (A1.unsafe_get f.upool e *. tv))
      done
    end
  done

let btran f (y : float array) =
  (* U^T forward *)
  for p = 0 to f.m - 1 do
    let r = Array.unsafe_get f.porder p in
    let acc = ref (Array.unsafe_get y r) in
    let s0 = f.ustart.(p) in
    for e = s0 to s0 + f.ulen.(p) - 1 do
      acc :=
        !acc
        -. (A1.unsafe_get f.upool e
            *. Array.unsafe_get y (Array.unsafe_get f.uidx e))
    done;
    Array.unsafe_set y r (!acc /. Array.unsafe_get f.udiag p)
  done;
  (* row etas transposed, reverse creation order *)
  for k = f.n_r - 1 downto 0 do
    let yr = y.(f.rr.(k)) in
    if yr <> 0. then
      for p = f.rstart.(k) to f.rstart.(k + 1) - 1 do
        let i = Array.unsafe_get f.ridx p in
        Array.unsafe_set y i
          (Array.unsafe_get y i -. (A1.unsafe_get f.rpool p *. yr))
      done
  done;
  (* L^T, reverse creation order *)
  for s = f.n_l - 1 downto 0 do
    let acc = ref 0. in
    for p = f.lstart.(s) to f.lstart.(s + 1) - 1 do
      acc :=
        !acc
        +. (A1.unsafe_get f.lpool p
            *. Array.unsafe_get y (Array.unsafe_get f.lidx p))
    done;
    let r = f.lr.(s) in
    y.(r) <- y.(r) -. !acc
  done

(* ---- Forrest-Tomlin update ------------------------------------ *)

let singular_tol = 1e-11
let ft_stab_tol = 1e-7

let touch f i =
  if f.stamp.(i) <> f.gen then begin
    f.stamp.(i) <- f.gen;
    f.touched.(f.n_touched) <- i;
    f.n_touched <- f.n_touched + 1;
    f.work.(i) <- 0.
  end

let update f ~(w : float array) ~r =
  (* spike s = U w, accumulated sparsely in work *)
  f.gen <- f.gen + 1;
  f.n_touched <- 0;
  for p = 0 to f.m - 1 do
    let rp = f.porder.(p) in
    let wv = w.(rp) in
    if wv <> 0. then begin
      touch f rp;
      f.work.(rp) <- f.work.(rp) +. (f.udiag.(p) *. wv);
      let s0 = f.ustart.(p) in
      for e = s0 to s0 + f.ulen.(p) - 1 do
        let i = f.uidx.(e) in
        touch f i;
        f.work.(i) <- f.work.(i) +. (A1.unsafe_get f.upool e *. wv)
      done
    end
  done;
  (* rotate positions t+1..m-1 down one slot; along the way delete the
     leaving row's entry from each column and eliminate the exposed
     row with multipliers recorded as one row eta *)
  let t = f.pos_of.(r) in
  f.mu_gen <- f.mu_gen + 1;
  grow_r_etas f;
  let k = f.n_r in
  f.rstart.(k) <- f.rnnz;
  for p_old = t + 1 to f.m - 1 do
    let p = p_old - 1 in
    let prow = f.porder.(p_old) in
    let diag = f.udiag.(p_old) in
    let s0 = f.ustart.(p_old) in
    let len = ref f.ulen.(p_old) in
    (* row-r entry of this column, if any: capture and swap-delete *)
    let a = ref 0. in
    let e = ref s0 in
    let stop = ref (s0 + !len) in
    while !e < !stop do
      if f.uidx.(!e) = r then begin
        a := !a +. A1.unsafe_get f.upool !e;
        decr stop;
        decr len;
        f.uidx.(!e) <- f.uidx.(!stop);
        A1.unsafe_set f.upool !e (A1.unsafe_get f.upool !stop)
      end
      else begin
        (* fill contribution from already-eliminated positions *)
        let i = f.uidx.(!e) in
        if f.mu_stamp.(i) = f.mu_gen then
          a := !a -. (f.mu.(i) *. A1.unsafe_get f.upool !e);
        incr e
      end
    done;
    f.porder.(p) <- prow;
    f.pos_of.(prow) <- p;
    f.udiag.(p) <- diag;
    f.ustart.(p) <- s0;
    f.ulen.(p) <- !len;
    if !a <> 0. then begin
      let mv = !a /. diag in
      f.mu.(prow) <- mv;
      f.mu_stamp.(prow) <- f.mu_gen;
      grow_r_pool f (f.rnnz + 1);
      f.ridx.(f.rnnz) <- prow;
      A1.unsafe_set f.rpool f.rnnz mv;
      f.rnnz <- f.rnnz + 1
    end
  done;
  if f.rnnz > f.rstart.(k) then begin
    f.rr.(k) <- r;
    f.rstart.(k + 1) <- f.rnnz;
    f.n_r <- k + 1
  end;
  (* spike column moves to the last position; its row-r entry becomes
     the new diagonal after the row elimination *)
  let dnew = ref 0. in
  let smax = ref 0. in
  let count = ref 0 in
  for q = 0 to f.n_touched - 1 do
    let i = f.touched.(q) in
    let v = f.work.(i) in
    let av = Float.abs v in
    if av > !smax then smax := av;
    if i = r then dnew := !dnew +. v
    else begin
      if v <> 0. then incr count;
      if f.mu_stamp.(i) = f.mu_gen then dnew := !dnew -. (f.mu.(i) *. v)
    end
  done;
  grow_u f (f.unnz + !count);
  let s0 = f.unnz in
  let e = ref s0 in
  for q = 0 to f.n_touched - 1 do
    let i = f.touched.(q) in
    if i <> r && f.work.(i) <> 0. then begin
      f.uidx.(!e) <- i;
      A1.unsafe_set f.upool !e f.work.(i);
      incr e
    end;
    f.work.(i) <- 0.
  done;
  f.n_touched <- 0;
  f.unnz <- !e;
  let d = !dnew in
  if Float.abs d <= singular_tol || Float.abs d <= ft_stab_tol *. !smax then
    f.unstable <- true;
  let d = if Float.abs d < 1e-250 then (if d < 0. then -1e-250 else 1e-250) else d in
  let last = f.m - 1 in
  f.porder.(last) <- r;
  f.pos_of.(r) <- last;
  f.udiag.(last) <- d;
  f.ustart.(last) <- s0;
  f.ulen.(last) <- !e - s0;
  f.n_updates <- f.n_updates + 1

(* ---- factorize: singleton peel + Markowitz-style bump ---------- *)

(* Apply the partial L (etas built so far) to basis column [j],
   accumulated sparsely in [work]; during factorize n_r = 0.

   Gilbert-Peierls: a DFS from the column's rows through the L-eta
   graph (row r -> the rows its eta scatters into) collects exactly
   the rows that can become nonzero, in post-order.  Eta entries land
   only on rows pivoted later, so reverse post-order is a topological
   order consistent with eta creation order, and the numeric sweep
   applies just the reached etas.  Cost is O(flops in this column),
   independent of how many etas the factorisation has built. *)
let ftran_touched f ~ptr ~idx ~(vs : float array) j =
  f.gen <- f.gen + 1;
  f.n_touched <- 0;
  let gen = f.gen in
  for p = ptr.(j) to ptr.(j + 1) - 1 do
    let i0 = idx.(p) in
    if f.stamp.(i0) <> gen then begin
      f.stamp.(i0) <- gen;
      f.work.(i0) <- 0.;
      f.dfs_row.(0) <- i0;
      f.dfs_pos.(0) <- 0;
      let sp = ref 0 in
      while !sp >= 0 do
        let r = f.dfs_row.(!sp) in
        let s = f.l_of_row.(r) in
        let descended = ref false in
        if s >= 0 then begin
          let base = f.lstart.(s) in
          let len = f.lstart.(s + 1) - base in
          let q = ref f.dfs_pos.(!sp) in
          while (not !descended) && !q < len do
            let i = Array.unsafe_get f.lidx (base + !q) in
            incr q;
            if f.stamp.(i) <> gen then begin
              f.stamp.(i) <- gen;
              f.work.(i) <- 0.;
              f.dfs_pos.(!sp) <- !q;
              incr sp;
              f.dfs_row.(!sp) <- i;
              f.dfs_pos.(!sp) <- 0;
              descended := true
            end
          done
        end;
        if not !descended then begin
          f.touched.(f.n_touched) <- r;
          f.n_touched <- f.n_touched + 1;
          decr sp
        end
      done
    end
  done;
  for p = ptr.(j) to ptr.(j + 1) - 1 do
    let i = idx.(p) in
    f.work.(i) <- f.work.(i) +. vs.(p)
  done;
  for t = f.n_touched - 1 downto 0 do
    let r = f.touched.(t) in
    let s = f.l_of_row.(r) in
    if s >= 0 then begin
      let xr = f.work.(r) in
      if xr <> 0. then
        for p = f.lstart.(s) to f.lstart.(s + 1) - 1 do
          let i = Array.unsafe_get f.lidx p in
          Array.unsafe_set f.work i
            (Array.unsafe_get f.work i -. (A1.unsafe_get f.lpool p *. xr))
        done
    end
  done

let clear_touched f =
  for t = 0 to f.n_touched - 1 do
    f.work.(f.touched.(t)) <- 0.
  done;
  f.n_touched <- 0

(* Emit the U column and L eta for pivot row [r] at position [tpos]
   from the touched image in [work].  [assigned] marks rows already
   pivoted (U rows); everything else feeds the L eta. *)
let push_column f ~assigned ~r ~tpos =
  let d = f.work.(r) in
  f.porder.(tpos) <- r;
  f.pos_of.(r) <- tpos;
  f.udiag.(tpos) <- d;
  let nu = ref 0 and nl = ref 0 in
  for q = 0 to f.n_touched - 1 do
    let i = f.touched.(q) in
    if i <> r && f.work.(i) <> 0. then
      if assigned.(i) then incr nu else incr nl
  done;
  grow_u f (f.unnz + !nu);
  grow_l f (f.lnnz + !nl);
  let ue = ref f.unnz in
  let le = ref f.lnnz in
  for q = 0 to f.n_touched - 1 do
    let i = f.touched.(q) in
    let v = f.work.(i) in
    if i <> r && v <> 0. then
      if assigned.(i) then begin
        f.uidx.(!ue) <- i;
        A1.unsafe_set f.upool !ue v;
        incr ue
      end
      else begin
        f.lidx.(!le) <- i;
        A1.unsafe_set f.lpool !le (v /. d);
        incr le
      end
  done;
  f.ustart.(tpos) <- f.unnz;
  f.ulen.(tpos) <- !ue - f.unnz;
  f.unnz <- !ue;
  if !le > f.lnnz then begin
    f.lr.(f.n_l) <- r;
    f.lstart.(f.n_l) <- f.lnnz;
    f.lstart.(f.n_l + 1) <- !le;
    f.lnnz <- !le;
    f.l_of_row.(r) <- f.n_l;
    f.n_l <- f.n_l + 1
  end

let factorize f ~basis ~ptr ~idx ~vs =
  set_identity f;
  f.base_entries <- 0;
  let m = f.m in
  Array.fill f.l_of_row 0 m (-1);
  (* ---- symbolic peel: repeated column singletons ---- *)
  let col_cnt = f.col_cnt in
  let row_cnt = f.row_cnt in
  Array.fill row_cnt 0 m 0;
  for k = 0 to m - 1 do
    let j = basis.(k) in
    col_cnt.(k) <- ptr.(j + 1) - ptr.(j);
    for p = ptr.(j) to ptr.(j + 1) - 1 do
      row_cnt.(idx.(p)) <- row_cnt.(idx.(p)) + 1
    done
  done;
  (* row -> basis positions containing it (counting sort) *)
  let row_ptr = f.row_ptr in
  row_ptr.(0) <- 0;
  for i = 0 to m - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + row_cnt.(i)
  done;
  let fill = f.row_fill in
  Array.blit row_ptr 0 fill 0 m;
  let total = row_ptr.(m) in
  if Array.length f.row_pos < total then begin
    let r = ref f.row_pos in
    grow_int_pool r total;
    f.row_pos <- !r
  end;
  let row_pos = f.row_pos in
  for k = 0 to m - 1 do
    let j = basis.(k) in
    for p = ptr.(j) to ptr.(j + 1) - 1 do
      let i = idx.(p) in
      row_pos.(fill.(i)) <- k;
      fill.(i) <- fill.(i) + 1
    done
  done;
  let row_active = f.row_active in
  Array.fill row_active 0 m true;
  let col_done = f.col_done in
  Array.fill col_done 0 m false;
  let order = f.order in
  let pivot_of = f.pivot_of in
  Array.fill pivot_of 0 m (-1);
  let n_order = ref 0 in
  let stack = f.peel_stack in
  let sp = ref 0 in
  for k = 0 to m - 1 do
    if col_cnt.(k) = 1 then begin
      stack.(!sp) <- k;
      incr sp
    end
  done;
  while !sp > 0 do
    decr sp;
    let k = stack.(!sp) in
    if (not col_done.(k)) && col_cnt.(k) = 1 then begin
      (* its single active row *)
      let j = basis.(k) in
      let r = ref (-1) in
      for p = ptr.(j) to ptr.(j + 1) - 1 do
        if row_active.(idx.(p)) then r := idx.(p)
      done;
      if !r >= 0 then begin
        let r = !r in
        col_done.(k) <- true;
        row_active.(r) <- false;
        order.(!n_order) <- k;
        pivot_of.(k) <- r;
        incr n_order;
        for q = row_ptr.(r) to row_ptr.(r + 1) - 1 do
          let k' = row_pos.(q) in
          if not col_done.(k') then begin
            col_cnt.(k') <- col_cnt.(k') - 1;
            if col_cnt.(k') = 1 then begin
              stack.(!sp) <- k';
              incr sp
            end
          end
        done
      end
    end
  done;
  (* bump columns: everything not peeled, in position order *)
  for k = 0 to m - 1 do
    if not col_done.(k) then begin
      order.(!n_order) <- k;
      incr n_order
    end
  done;
  (* ---- numeric left-looking insertion in peel order ---- *)
  let assigned = f.assigned in
  Array.fill assigned 0 m false;
  let slot_col = f.slot_col in
  let ok = ref true in
  let t = ref 0 in
  while !ok && !t < m do
    let k = order.(!t) in
    let j = basis.(k) in
    ftran_touched f ~ptr ~idx ~vs j;
    let r =
      if pivot_of.(k) >= 0 then pivot_of.(k)
      else begin
        (* bump: Markowitz-style — among candidates within a fixed
           fraction of the column maximum, prefer the statically
           sparsest row; break ties on magnitude, then index *)
        let vmax = ref 0. in
        for q = 0 to f.n_touched - 1 do
          let i = f.touched.(q) in
          if not assigned.(i) then begin
            let a = Float.abs f.work.(i) in
            if a > !vmax then vmax := a
          end
        done;
        if !vmax <= singular_tol then -1
        else begin
          let thresh = 0.05 *. !vmax in
          let best = ref (-1) in
          let best_cnt = ref max_int in
          let best_mag = ref 0. in
          for q = 0 to f.n_touched - 1 do
            let i = f.touched.(q) in
            if not assigned.(i) then begin
              let a = Float.abs f.work.(i) in
              if a >= thresh then begin
                let c = row_cnt.(i) in
                if
                  c < !best_cnt
                  || (c = !best_cnt
                      && (a > !best_mag || (a = !best_mag && i < !best)))
                then begin
                  best := i;
                  best_cnt := c;
                  best_mag := a
                end
              end
            end
          done;
          !best
        end
      end
    in
    if r < 0 || Float.abs f.work.(r) <= singular_tol || assigned.(r) then
      ok := false
    else begin
      push_column f ~assigned ~r ~tpos:!t;
      assigned.(r) <- true;
      slot_col.(r) <- j
    end;
    clear_touched f;
    incr t
  done;
  if !ok then begin
    (* the factorisation defines the slot order: basis.(r) is the
       column pivoted at row r *)
    Array.blit slot_col 0 basis 0 m;
    f.base_entries <- f.lnnz + f.unnz + m;
    f.n_updates <- 0;
    f.unstable <- false;
    true
  end
  else begin
    set_identity f;
    false
  end
