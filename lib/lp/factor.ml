(* Product-form basis factorisation: B^-1 = E_K ... E_1, each eta one
   pivot.  See factor.mli for the contract. *)

module A1 = Bigarray.Array1

type pool = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

let pool_create n : pool = A1.create Bigarray.float64 Bigarray.c_layout n

type t = {
  m : int;
  (* eta file; eta k pivots row er.(k) with diagonal ed.(k) and
     off-diagonal entries estart.(k) .. estart.(k+1)-1 *)
  mutable n_eta : int;
  mutable er : int array;
  mutable ed : float array;
  mutable estart : int array;  (* length = eta capacity + 1 *)
  mutable eidx : int array;
  mutable epool : pool;
  mutable nnz : int;
  mutable base_etas : int;  (* etas from the last factorize *)
  (* factorisation scratch: dense accumulator with touched tracking *)
  work : float array;
  stamp : int array;
  mutable gen : int;
  mutable touched : int array;
  mutable n_touched : int;
}

let create ~m =
  {
    m;
    n_eta = 0;
    er = Array.make 64 0;
    ed = Array.make 64 0.;
    estart = Array.make 65 0;
    eidx = Array.make 256 0;
    epool = pool_create 256;
    nnz = 0;
    base_etas = 0;
    work = Array.make m 0.;
    stamp = Array.make m (-1);
    gen = 0;
    touched = Array.make m 0;
    n_touched = 0;
  }

let m f = f.m
let updates_since_refresh f = f.n_eta - f.base_etas
let eta_entries f = f.nnz

let set_identity f =
  f.n_eta <- 0;
  f.nnz <- 0;
  f.base_etas <- 0

let grow_etas f =
  let cap = Array.length f.er in
  let cap' = 2 * cap in
  let er = Array.make cap' 0 in
  Array.blit f.er 0 er 0 cap;
  f.er <- er;
  let ed = Array.make cap' 0. in
  Array.blit f.ed 0 ed 0 cap;
  f.ed <- ed;
  let es = Array.make (cap' + 1) 0 in
  Array.blit f.estart 0 es 0 (cap + 1);
  f.estart <- es

let grow_pool f need =
  let cap = ref (A1.dim f.epool) in
  while !cap < need do
    cap := 2 * !cap
  done;
  if !cap > A1.dim f.epool then begin
    let p = pool_create !cap in
    A1.blit f.epool (A1.sub p 0 (A1.dim f.epool));
    f.epool <- p;
    let idx = Array.make !cap 0 in
    Array.blit f.eidx 0 idx 0 f.nnz;
    f.eidx <- idx
  end

(* Append the eta for pivot row [r] taken from the dense vector [w]
   (entries exactly zero are structural zeros and skipped). *)
let push_eta f ~(w : float array) ~r =
  if f.n_eta >= Array.length f.er then grow_etas f;
  let k = f.n_eta in
  f.er.(k) <- r;
  f.ed.(k) <- w.(r);
  let count = ref 0 in
  for i = 0 to f.m - 1 do
    if i <> r && w.(i) <> 0. then incr count
  done;
  grow_pool f (f.nnz + !count);
  let p = ref f.nnz in
  for i = 0 to f.m - 1 do
    if i <> r && w.(i) <> 0. then begin
      f.eidx.(!p) <- i;
      A1.unsafe_set f.epool !p w.(i);
      incr p
    end
  done;
  f.nnz <- !p;
  f.estart.(k + 1) <- !p;
  f.n_eta <- k + 1

(* Sparse variant used during factorisation: the nonzeros of [work]
   are exactly the touched indices. *)
let push_eta_touched f ~r =
  if f.n_eta >= Array.length f.er then grow_etas f;
  let k = f.n_eta in
  f.er.(k) <- r;
  f.ed.(k) <- f.work.(r);
  grow_pool f (f.nnz + f.n_touched);
  let p = ref f.nnz in
  for t = 0 to f.n_touched - 1 do
    let i = f.touched.(t) in
    if i <> r && f.work.(i) <> 0. then begin
      f.eidx.(!p) <- i;
      A1.unsafe_set f.epool !p f.work.(i);
      incr p
    end
  done;
  f.nnz <- !p;
  f.estart.(k + 1) <- !p;
  f.n_eta <- k + 1

let update f ~w ~r = push_eta f ~w ~r

let ftran f (x : float array) =
  for k = 0 to f.n_eta - 1 do
    let r = f.er.(k) in
    let xr = x.(r) in
    if xr <> 0. then begin
      let t = xr /. f.ed.(k) in
      x.(r) <- t;
      if t <> 0. then
        for p = f.estart.(k) to f.estart.(k + 1) - 1 do
          let i = Array.unsafe_get f.eidx p in
          Array.unsafe_set x i
            (Array.unsafe_get x i -. (t *. A1.unsafe_get f.epool p))
        done
    end
  done

let btran f (y : float array) =
  for k = f.n_eta - 1 downto 0 do
    let r = f.er.(k) in
    let s = ref 0. in
    for p = f.estart.(k) to f.estart.(k + 1) - 1 do
      s :=
        !s
        +. (A1.unsafe_get f.epool p *. Array.unsafe_get y (Array.unsafe_get f.eidx p))
    done;
    y.(r) <- (y.(r) -. !s) /. f.ed.(k)
  done

(* ---- factorize: singleton-first PFI insertion ------------------- *)

let touch f i =
  if f.stamp.(i) <> f.gen then begin
    f.stamp.(i) <- f.gen;
    f.touched.(f.n_touched) <- i;
    f.n_touched <- f.n_touched + 1
  end

(* FTRAN through the current (partial) eta file with touched tracking:
   [work] holds column [j]'s image; only touched indices are nonzero. *)
let ftran_touched f ~ptr ~idx ~(vs : float array) j =
  f.gen <- f.gen + 1;
  f.n_touched <- 0;
  (* [work] is all-zero outside the touched set (cleared after every
     column), so scatter-add is safe *)
  for p = ptr.(j) to ptr.(j + 1) - 1 do
    let i = idx.(p) in
    touch f i;
    f.work.(i) <- f.work.(i) +. vs.(p)
  done;
  for k = 0 to f.n_eta - 1 do
    let r = f.er.(k) in
    if f.stamp.(r) = f.gen && f.work.(r) <> 0. then begin
      let t = f.work.(r) /. f.ed.(k) in
      f.work.(r) <- t;
      if t <> 0. then
        for p = f.estart.(k) to f.estart.(k + 1) - 1 do
          let i = f.eidx.(p) in
          touch f i;
          f.work.(i) <- f.work.(i) -. (t *. A1.unsafe_get f.epool p)
        done
    end
  done

let clear_touched f =
  for t = 0 to f.n_touched - 1 do
    f.work.(f.touched.(t)) <- 0.
  done;
  f.n_touched <- 0

let singular_tol = 1e-11

let factorize f ~basis ~ptr ~idx ~vs =
  set_identity f;
  let m = f.m in
  (* make sure the lazy-cleared scratch starts truly clean *)
  Array.fill f.work 0 m 0.;
  Array.fill f.stamp 0 m (-1);
  f.gen <- 0;
  (* ---- symbolic peel: repeated column singletons ---- *)
  let col_cnt = Array.make m 0 in
  let row_cnt = Array.make m 0 in
  for k = 0 to m - 1 do
    let j = basis.(k) in
    col_cnt.(k) <- ptr.(j + 1) - ptr.(j);
    for p = ptr.(j) to ptr.(j + 1) - 1 do
      row_cnt.(idx.(p)) <- row_cnt.(idx.(p)) + 1
    done
  done;
  (* row -> basis positions containing it (counting sort) *)
  let row_ptr = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + row_cnt.(i)
  done;
  let fill = Array.copy row_ptr in
  let total = row_ptr.(m) in
  let row_pos = Array.make (Int.max 1 total) 0 in
  for k = 0 to m - 1 do
    let j = basis.(k) in
    for p = ptr.(j) to ptr.(j + 1) - 1 do
      let i = idx.(p) in
      row_pos.(fill.(i)) <- k;
      fill.(i) <- fill.(i) + 1
    done
  done;
  let row_active = Array.make m true in
  let col_done = Array.make m false in
  let order = Array.make m 0 in
  let pivot_of = Array.make m (-1) in
  let n_order = ref 0 in
  let stack = Array.make m 0 in
  let sp = ref 0 in
  for k = 0 to m - 1 do
    if col_cnt.(k) = 1 then begin
      stack.(!sp) <- k;
      incr sp
    end
  done;
  while !sp > 0 do
    decr sp;
    let k = stack.(!sp) in
    if (not col_done.(k)) && col_cnt.(k) = 1 then begin
      (* its single active row *)
      let j = basis.(k) in
      let r = ref (-1) in
      for p = ptr.(j) to ptr.(j + 1) - 1 do
        if row_active.(idx.(p)) then r := idx.(p)
      done;
      if !r >= 0 then begin
        let r = !r in
        col_done.(k) <- true;
        row_active.(r) <- false;
        order.(!n_order) <- k;
        pivot_of.(k) <- r;
        incr n_order;
        for q = row_ptr.(r) to row_ptr.(r + 1) - 1 do
          let k' = row_pos.(q) in
          if not col_done.(k') then begin
            col_cnt.(k') <- col_cnt.(k') - 1;
            if col_cnt.(k') = 1 then begin
              stack.(!sp) <- k';
              incr sp
            end
          end
        done
      end
    end
  done;
  (* bump columns: everything not peeled, in position order *)
  for k = 0 to m - 1 do
    if not col_done.(k) then begin
      order.(!n_order) <- k;
      incr n_order
    end
  done;
  (* ---- numeric insertion in peel order ---- *)
  let assigned = Array.make m false in
  let slot_col = Array.make m (-1) in
  let ok = ref true in
  let t = ref 0 in
  while !ok && !t < m do
    let k = order.(!t) in
    let j = basis.(k) in
    ftran_touched f ~ptr ~idx ~vs j;
    let r =
      if pivot_of.(k) >= 0 then pivot_of.(k)
      else begin
        (* bump: numeric partial pivoting over unassigned rows *)
        let best = ref (-1) in
        let mag = ref singular_tol in
        for q = 0 to f.n_touched - 1 do
          let i = f.touched.(q) in
          if not assigned.(i) then begin
            let a = Float.abs f.work.(i) in
            if a > !mag then begin
              mag := a;
              best := i
            end
          end
        done;
        !best
      end
    in
    if r < 0 || Float.abs f.work.(r) <= singular_tol || assigned.(r) then
      ok := false
    else begin
      push_eta_touched f ~r;
      assigned.(r) <- true;
      slot_col.(r) <- j
    end;
    clear_touched f;
    incr t
  done;
  if !ok then begin
    (* the factorisation defines the slot order: basis.(r) is the
       column pivoted at row r *)
    Array.blit slot_col 0 basis 0 m;
    f.base_etas <- f.n_eta;
    true
  end
  else begin
    set_identity f;
    false
  end
