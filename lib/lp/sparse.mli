(** Sparse revised simplex for the partitioning hot path.

    The partition ILPs are near-network-flow: 2-3 nonzeros in almost
    every row.  The dense tableau in {!Simplex} pays O(rows x cols)
    per pivot regardless; this solver stores the constraint matrix
    once in compressed sparse column form, keeps the basis as a
    sparse LU factorisation with Forrest–Tomlin updates ({!Factor},
    refreshed when an update turns numerically marginal rather than
    on a fixed cadence), and so pays O(nnz) per pivot.  Pricing
    follows {!Simplex.options.pricing}: devex reference-framework
    weights by default — the BTRAN of the pivot row that feeds the
    weight update also updates the duals incrementally, so devex
    costs no extra BTRANs over Dantzig — or the candidate-list
    Dantzig rule, both with the Bland's-rule anti-cycling fallback.

    The solve semantics mirror {!Simplex.solve_warm} exactly: same
    column layout (structural, slack, artificial), same {!Basis.t}
    snapshots — a basis recorded by either solver warm-starts the
    other — same bounded-variable dual-repair warm path, and the same
    fallback discipline: whenever the sparse path cannot be trusted
    (singular basis, marginal dual pivot, post-solve feasibility
    breach) it falls back to a colder sparse start and finally to the
    verified dense solver, so results never change, only the work to
    reach them. *)

type data
(** A problem compiled to CSC form.  Immutable once built; safe to
    share across domains (the underlying {!Problem.t} accessor caches
    are forced at build time). *)

val of_problem : Problem.t -> data
val problem : data -> Problem.t
val n_rows : data -> int

type session
(** A reusable solve workspace bound to one {!data}: the per-solve
    state arrays plus a snapshot of the most recent warm-start
    factorisation, keyed by its basis.  Passing a session to
    {!solve_warm} removes per-solve allocation, and when the requested
    warm basis matches the snapshotted one (as a column set — bounds
    may differ) the refactorisation is skipped and the byte-identical
    factorisation restored, which is the common case for the second
    child of every branch & bound node.  A session is single-domain:
    never share one across threads.  Results are bit-identical with
    and without a session. *)

val session : data -> session

val solve_warm :
  ?options:Simplex.options ->
  ?warm:Basis.t ->
  ?lo:float array ->
  ?hi:float array ->
  ?session:session ->
  data ->
  Simplex.result
(** Like {!Simplex.solve_warm} on the compiled problem.  The returned
    [hot] field is always [None] — sparse refactorisation is cheap
    enough that the basis snapshot {e is} the hot path.  [warm_used]
    reports whether the supplied basis survived the sparse warm
    start; [pivots] counts sparse and (rare) dense-fallback pivots
    together and feeds the same process-wide cumulative counter. *)

val solve :
  ?options:Simplex.options ->
  ?lo:float array ->
  ?hi:float array ->
  Problem.t ->
  Solution.status
(** One-shot convenience: compile and solve cold. *)

val dense_fallbacks : unit -> int
(** Process-wide count of solves that ended on the dense fallback
    path; tests read deltas to assert the sparse path actually ran. *)

type counters = { refactorisations : int; ft_updates : int; ft_entries : int }
(** Process-wide factorisation work: basis refactorisations,
    Forrest–Tomlin updates applied, and row-eta entries appended by
    those updates.  Benchmarks and the verbose CLI report read deltas
    around a solve to track the pivot/refactorisation trajectory. *)

val counters : unit -> counters
val reset_counters : unit -> unit
