(** Sparse revised simplex for the partitioning hot path.

    The partition ILPs are near-network-flow: 2-3 nonzeros in almost
    every row.  The dense tableau in {!Simplex} pays O(rows x cols)
    per pivot regardless; this solver stores the constraint matrix
    once in compressed sparse column form, keeps [B^-1] in product
    form ({!Factor}: singleton-first refactorisation plus one eta per
    pivot, refreshed on a fixed cadence), prices with a candidate
    list over on-demand reduced costs, and so pays O(nnz) per pivot.

    The solve semantics mirror {!Simplex.solve_warm} exactly: same
    column layout (structural, slack, artificial), same {!Basis.t}
    snapshots — a basis recorded by either solver warm-starts the
    other — same bounded-variable dual-repair warm path, and the same
    fallback discipline: whenever the sparse path cannot be trusted
    (singular basis, marginal dual pivot, post-solve feasibility
    breach) it falls back to a colder sparse start and finally to the
    verified dense solver, so results never change, only the work to
    reach them. *)

type data
(** A problem compiled to CSC form.  Immutable once built; safe to
    share across domains (the underlying {!Problem.t} accessor caches
    are forced at build time). *)

val of_problem : Problem.t -> data
val problem : data -> Problem.t
val n_rows : data -> int

val solve_warm :
  ?options:Simplex.options ->
  ?warm:Basis.t ->
  ?lo:float array ->
  ?hi:float array ->
  data ->
  Simplex.result
(** Like {!Simplex.solve_warm} on the compiled problem.  The returned
    [hot] field is always [None] — sparse refactorisation is cheap
    enough that the basis snapshot {e is} the hot path.  [warm_used]
    reports whether the supplied basis survived the sparse warm
    start; [pivots] counts sparse and (rare) dense-fallback pivots
    together and feeds the same process-wide cumulative counter. *)

val solve :
  ?options:Simplex.options ->
  ?lo:float array ->
  ?hi:float array ->
  Problem.t ->
  Solution.status
(** One-shot convenience: compile and solve cold. *)

val dense_fallbacks : unit -> int
(** Process-wide count of solves that ended on the dense fallback
    path; tests read deltas to assert the sparse path actually ran. *)
