type cstat = At_lower | At_upper | Basic

type t = { rows : int array; stat : cstat array }

let n_rows b = Array.length b.rows
let n_cols b = Array.length b.stat
let copy b = { rows = Array.copy b.rows; stat = Array.copy b.stat }

let compatible b ~rows ~cols =
  Array.length b.rows = rows
  && Array.length b.stat = cols
  && Array.for_all (fun j -> j >= 0 && j < cols) b.rows

let equal a b = a.rows = b.rows && a.stat = b.stat

(* Canonical serialisation: row list, then one status character per
   column.  The encoding is injective (rows are decimal-rendered with
   separators), so digest equality coincides with [equal]. *)
let digest b =
  let buf = Buffer.create (Array.length b.stat + (8 * Array.length b.rows)) in
  Array.iter
    (fun j ->
      Buffer.add_string buf (string_of_int j);
      Buffer.add_char buf ',')
    b.rows;
  Buffer.add_char buf '|';
  Array.iter
    (fun s ->
      Buffer.add_char buf
        (match s with At_lower -> 'l' | At_upper -> 'u' | Basic -> 'b'))
    b.stat;
  Digest.to_hex (Digest.string (Buffer.contents buf))
