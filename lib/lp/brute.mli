(** Exhaustive reference solver for small mixed-integer programs.

    Enumerates every integer assignment within the declared bounds and
    solves the continuous remainder with {!Simplex}.  Exponential —
    intended only as a test oracle for {!Branch_bound} and for the
    partitioner property tests. *)

val solve : ?max_combinations:int -> Problem.t -> Solution.status
(** @raise Invalid_argument if an integer variable has an infinite
    bound or the assignment count exceeds [max_combinations]
    (default [2_000_000]). *)

val optimal_points :
  ?max_combinations:int ->
  ?obj_tol:float ->
  Problem.t ->
  (float * float array list) option
(** The optimal objective together with {e every} optimal assignment
    of the integer variables (projected onto {!Problem.integer_vars}
    order, objectives within [obj_tol] of the best; default [1e-6]).
    [None] when no integer assignment admits a feasible LP.  Used by
    the fuzz oracles to assert that a branch & bound answer is not
    merely optimal-valued but one of the true argmin assignments.
    @raise Invalid_argument under the same conditions as {!solve}. *)
