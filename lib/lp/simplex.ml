type pricing = Dantzig | Devex

type options = {
  max_pivots : int;
  feas_tol : float;
  cost_tol : float;
  degen_window : int;
  pricing : pricing;
}

let default_options =
  {
    max_pivots = 200_000;
    feas_tol = 1e-7;
    cost_tol = 1e-9;
    degen_window = 40;
    pricing = Devex;
  }

(* Column status in the bounded-variable simplex; shared with basis
   snapshots so warm starts can replay a previous solve's state. *)
type cstat = Basis.cstat = At_lower | At_upper | Basic

type tableau = {
  m : int;  (* rows *)
  ncols : int;  (* structural + slack + artificial columns *)
  n : int;  (* structural columns *)
  t : float array array;  (* m x ncols, kept reduced w.r.t. the basis *)
  beta : float array;  (* current value of the basic variable per row *)
  basis : int array;  (* column basic in each row *)
  in_row : int array;  (* column -> row index, or -1 when nonbasic *)
  stat : cstat array;  (* per column *)
  up : float array;  (* per-column upper bound in shifted space *)
  d : float array;  (* reduced costs for the current phase *)
  opts : options;
}

(* ---- process-wide pivot accounting: benchmarks read the deltas to
   aggregate across whole branch & bound trees and rate searches.
   Atomic so parallel branch & bound workers account correctly. ---- *)
let cumulative = Atomic.make 0
let cumulative_pivots () = Atomic.get cumulative
let reset_cumulative_pivots () = Atomic.set cumulative 0

let add_pivots k = if k <> 0 then ignore (Atomic.fetch_and_add cumulative k)

(* Value of column [j] in shifted space. *)
let col_value tab j =
  match tab.stat.(j) with
  | Basic -> tab.beta.(tab.in_row.(j))
  | At_lower -> 0.
  | At_upper -> tab.up.(j)

(* Reduced costs d_j = c_j - sum_i c_basis(i) * T[i][j]. *)
let compute_duals tab (c : float array) =
  Array.blit c 0 tab.d 0 tab.ncols;
  for i = 0 to tab.m - 1 do
    let cb = c.(tab.basis.(i)) in
    if cb <> 0. then begin
      let row = tab.t.(i) in
      let d = tab.d in
      for j = 0 to tab.ncols - 1 do
        d.(j) <- d.(j) -. (cb *. row.(j))
      done
    end
  done

let phase_objective tab (c : float array) =
  let v = ref 0. in
  for j = 0 to tab.ncols - 1 do
    if c.(j) <> 0. then v := !v +. (c.(j) *. col_value tab j)
  done;
  !v

(* Gauss-reduce all rows (and the dual row) against pivot row [r],
   column [j].  [beta] is updated separately by the caller via the
   step formula, so only the matrix and duals change here. *)
let row_reduce tab r j =
  let piv_row = tab.t.(r) in
  let inv = 1. /. piv_row.(j) in
  for k = 0 to tab.ncols - 1 do
    piv_row.(k) <- piv_row.(k) *. inv
  done;
  piv_row.(j) <- 1.;
  for i = 0 to tab.m - 1 do
    if i <> r then begin
      let f = tab.t.(i).(j) in
      if f <> 0. then begin
        let row = tab.t.(i) in
        for k = 0 to tab.ncols - 1 do
          row.(k) <- row.(k) -. (f *. piv_row.(k))
        done;
        row.(j) <- 0.
      end
    end
  done;
  let f = tab.d.(j) in
  if f <> 0. then begin
    for k = 0 to tab.ncols - 1 do
      tab.d.(k) <- tab.d.(k) -. (f *. piv_row.(k))
    done;
    tab.d.(j) <- 0.
  end

type step = Optimal_reached | Unbounded_ray | Budget_exhausted

(* Core bounded-variable primal simplex loop for the current [tab.d].
   [allowed j] filters entering candidates (used to freeze artificial
   columns in phase 2). *)
let iterate tab ~allowed ~pivots_left =
  let opts = tab.opts in
  let degen_run = ref 0 in
  let result = ref None in
  while !result = None do
    if !pivots_left <= 0 then result := Some Budget_exhausted
    else begin
      decr pivots_left;
      let use_bland = !degen_run > opts.degen_window in
      (* --- pricing: pick the entering column --- *)
      let enter = ref (-1) in
      let best = ref 0. in
      (let j = ref 0 in
       while !j < tab.ncols && not (use_bland && !enter >= 0) do
         let jj = !j in
         (if tab.stat.(jj) <> Basic && tab.up.(jj) > opts.feas_tol
             && allowed jj
          then
            let dj = tab.d.(jj) in
            let eligible =
              match tab.stat.(jj) with
              | At_lower -> dj < -.opts.cost_tol
              | At_upper -> dj > opts.cost_tol
              | Basic -> false
            in
            if eligible then
              let score = Float.abs dj in
              if use_bland || score > !best then begin
                best := score;
                enter := jj
              end);
         incr j
       done);
      if !enter < 0 then result := Some Optimal_reached
      else begin
        let j = !enter in
        let sigma = if tab.stat.(j) = At_lower then 1. else -1. in
        (* --- ratio test --- *)
        let tmax = ref tab.up.(j) in
        (* row index achieving the minimum, -1 = bound flip *)
        let leave = ref (-1) in
        let leave_to_upper = ref false in
        let best_alpha = ref 0. in
        for i = 0 to tab.m - 1 do
          let alpha = tab.t.(i).(j) in
          let rate = sigma *. alpha in
          if rate > opts.feas_tol then begin
            (* basic variable decreases towards 0 *)
            let limit = Float.max 0. (tab.beta.(i) /. rate) in
            if
              limit < !tmax -. opts.feas_tol
              || (limit <= !tmax +. opts.feas_tol
                  && !leave >= 0
                  && Float.abs alpha > !best_alpha)
            then begin
              tmax := Float.min limit !tmax;
              leave := i;
              leave_to_upper := false;
              best_alpha := Float.abs alpha
            end
          end
          else if rate < -.opts.feas_tol then begin
            let ub = tab.up.(tab.basis.(i)) in
            if Float.is_finite ub then begin
              (* basic variable increases towards its upper bound *)
              let limit = Float.max 0. ((ub -. tab.beta.(i)) /. -.rate) in
              if
                limit < !tmax -. opts.feas_tol
                || (limit <= !tmax +. opts.feas_tol
                    && !leave >= 0
                    && Float.abs alpha > !best_alpha)
              then begin
                tmax := Float.min limit !tmax;
                leave := i;
                leave_to_upper := true;
                best_alpha := Float.abs alpha
              end
            end
          end
        done;
        if Float.is_finite !tmax then begin
          let t = !tmax in
          let improvement = t *. Float.abs tab.d.(j) in
          if improvement <= opts.cost_tol then incr degen_run
          else degen_run := 0;
          (* apply the step to the basic values *)
          for i = 0 to tab.m - 1 do
            tab.beta.(i) <- tab.beta.(i) -. (sigma *. t *. tab.t.(i).(j))
          done;
          if !leave < 0 then begin
            (* pure bound flip of the entering column *)
            tab.stat.(j) <-
              (if tab.stat.(j) = At_lower then At_upper else At_lower)
          end
          else begin
            let r = !leave in
            let old = tab.basis.(r) in
            tab.stat.(old) <- (if !leave_to_upper then At_upper else At_lower);
            tab.in_row.(old) <- -1;
            let enter_val =
              (if tab.stat.(j) = At_lower then 0. else tab.up.(j))
              +. (sigma *. t)
            in
            tab.basis.(r) <- j;
            tab.in_row.(j) <- r;
            tab.stat.(j) <- Basic;
            row_reduce tab r j;
            tab.beta.(r) <- enter_val
          end
        end
        else result := Some Unbounded_ray
      end
    end
  done;
  match !result with Some s -> s | None -> assert false

(* ---- bounded-variable dual simplex -------------------------------

   Starting from a basis whose reduced costs are (near) dual feasible,
   repair primal infeasibility — basic values outside their bounds —
   one leaving row at a time.  This is what makes warm starts cheap: a
   branch & bound child differs from its parent by a single bound
   change, so the parent's optimal basis stays dual feasible for the
   child and a handful of dual pivots restore primal feasibility,
   replacing a full phase-1/phase-2 cold solve. *)

type dual_step =
  | Dual_feasible_point  (* all basic values inside their bounds *)
  | Primal_infeasible  (* a row certifies the LP infeasible *)
  | Dual_budget
  | Dual_stalled  (* only numerically marginal pivots available *)

let dual_iterate tab ~pivots_left =
  let opts = tab.opts in
  let result = ref None in
  while !result = None do
    if !pivots_left <= 0 then result := Some Dual_budget
    else begin
      (* --- leaving row: the largest bound violation --- *)
      let r = ref (-1) in
      let worst = ref opts.feas_tol in
      let above = ref false in
      for i = 0 to tab.m - 1 do
        let bi = tab.beta.(i) in
        if -.bi > !worst then begin
          worst := -.bi;
          r := i;
          above := false
        end;
        let ub = tab.up.(tab.basis.(i)) in
        if Float.is_finite ub && bi -. ub > !worst then begin
          worst := bi -. ub;
          r := i;
          above := true
        end
      done;
      if !r < 0 then result := Some Dual_feasible_point
      else begin
        decr pivots_left;
        let r = !r and above = !above in
        let row = tab.t.(r) in
        (* --- dual ratio test: entering column minimising |d_j /
           alpha_rj| among sign-compatible movable nonbasic columns,
           so the reduced costs stay dual feasible --- *)
        let enter = ref (-1) in
        let best_ratio = ref infinity in
        let best_mag = ref 0. in
        let marginal = ref false in
        for j = 0 to tab.ncols - 1 do
          if tab.stat.(j) <> Basic && tab.up.(j) > opts.feas_tol then begin
            let a = row.(j) in
            let good_sign =
              match (tab.stat.(j), above) with
              | At_lower, false -> a < 0.
              | At_upper, false -> a > 0.
              | At_lower, true -> a > 0.
              | At_upper, true -> a < 0.
              | Basic, _ -> false
            in
            let mag = Float.abs a in
            if good_sign && mag > 1e-9 then begin
              if mag <= opts.feas_tol then marginal := true
              else begin
                let d = tab.d.(j) in
                let dj =
                  match tab.stat.(j) with
                  | At_lower -> Float.max d 0.
                  | _ -> Float.max (-.d) 0.
                in
                let ratio = dj /. mag in
                if
                  ratio < !best_ratio -. 1e-12
                  || (ratio <= !best_ratio +. 1e-12 && mag > !best_mag)
                then begin
                  best_ratio := ratio;
                  best_mag := mag;
                  enter := j
                end
              end
            end
          end
        done;
        if !enter < 0 then
          (* no column can move the violated basic variable towards its
             bound.  With all candidate entries at machine zero the row
             is a sound infeasibility certificate; if any marginal
             entry exists, let the caller fall back to a cold solve
             rather than decide feasibility on noise. *)
          result := Some (if !marginal then Dual_stalled else Primal_infeasible)
        else begin
          let j = !enter in
          let target = if above then tab.up.(tab.basis.(r)) else 0. in
          let delta = (tab.beta.(r) -. target) /. row.(j) in
          for i = 0 to tab.m - 1 do
            tab.beta.(i) <- tab.beta.(i) -. (delta *. tab.t.(i).(j))
          done;
          let old = tab.basis.(r) in
          tab.stat.(old) <- (if above then At_upper else At_lower);
          tab.in_row.(old) <- -1;
          let xj =
            (match tab.stat.(j) with At_upper -> tab.up.(j) | _ -> 0.)
            +. delta
          in
          tab.basis.(r) <- j;
          tab.in_row.(j) <- r;
          tab.stat.(j) <- Basic;
          row_reduce tab r j;
          tab.beta.(r) <- xj
        end
      end
    end
  done;
  match !result with Some s -> s | None -> assert false

(* Degenerate pivot to remove a basic artificial variable sitting at
   zero after phase 1; returns false when the row is redundant. *)
let pivot_out_artificial tab r ~n_real =
  let best = ref (-1) in
  let best_mag = ref 1e-7 in
  for j = 0 to n_real - 1 do
    if tab.stat.(j) <> Basic then begin
      let mag = Float.abs tab.t.(r).(j) in
      if mag > !best_mag then begin
        best_mag := mag;
        best := j
      end
    end
  done;
  if !best < 0 then false
  else begin
    let j = !best in
    let old = tab.basis.(r) in
    tab.stat.(old) <- At_lower;
    tab.in_row.(old) <- -1;
    let v = col_value tab j in
    tab.basis.(r) <- j;
    tab.in_row.(j) <- r;
    tab.stat.(j) <- Basic;
    row_reduce tab r j;
    tab.beta.(r) <- v;
    true
  end

(* Fresh tableau over the all-artificial basis with beta = rhs; the
   shared starting point of both cold solves and warm refactorisation. *)
let build problem ~options ~lo ~hi ~n ~n_slack =
  let constrs = Problem.constrs problem in
  let m = Array.length constrs in
  let ncols = n + n_slack + m in
  let t = Array.init m (fun _ -> Array.make ncols 0.) in
  let beta = Array.make m 0. in
  let up = Array.make ncols infinity in
  for j = 0 to n - 1 do
    up.(j) <- Float.max 0. (hi.(j) -. lo.(j))
  done;
  (* fill rows; shift structural variables by their lower bound *)
  let slack_idx = ref n in
  Array.iteri
    (fun i (c : Problem.constr) ->
      let row = t.(i) in
      List.iter (fun (v, coef) -> row.(v) <- row.(v) +. coef) c.terms;
      let rhs = ref c.rhs in
      for j = 0 to n - 1 do
        if row.(j) <> 0. then rhs := !rhs -. (row.(j) *. lo.(j))
      done;
      (match c.sense with
      | Le ->
          row.(!slack_idx) <- 1.;
          incr slack_idx
      | Ge ->
          row.(!slack_idx) <- -1.;
          incr slack_idx
      | Eq -> ());
      (* row equilibration: normalise by the largest coefficient so
         mixed-magnitude models stay well conditioned *)
      let norm = ref 0. in
      for k = 0 to ncols - 1 do
        norm := Float.max !norm (Float.abs row.(k))
      done;
      if !norm > 0. && (!norm > 16. || !norm < 1. /. 16.) then begin
        let inv = 1. /. !norm in
        for k = 0 to ncols - 1 do
          row.(k) <- row.(k) *. inv
        done;
        rhs := !rhs *. inv
      end;
      if !rhs < 0. then begin
        for k = 0 to ncols - 1 do
          row.(k) <- -.row.(k)
        done;
        rhs := -. !rhs
      end;
      (* artificial column for this row *)
      row.(n + n_slack + i) <- 1.;
      beta.(i) <- !rhs)
    constrs;
  let basis = Array.init m (fun i -> n + n_slack + i) in
  let in_row = Array.make ncols (-1) in
  Array.iteri (fun i b -> in_row.(b) <- i) basis;
  let stat = Array.make ncols At_lower in
  Array.iter (fun b -> stat.(b) <- Basic) basis;
  { m; ncols; n; t; beta; basis; in_row; stat; up; d = Array.make ncols 0.;
    opts = options }

let snapshot tab =
  { Basis.rows = Array.copy tab.basis; stat = Array.copy tab.stat }

(* ---- hot tableau handoff ------------------------------------------

   A basis snapshot is compact but costs a full Gauss-Jordan
   refactorisation to reinstall — O(m) eliminations, which dwarfs the
   handful of dual pivots a branch & bound child actually needs.  A
   [hot] value instead keeps the parent's final *reduced tableau*;
   re-solving under new variable bounds is then a row-copy plus a
   direct rhs update (the reduced columns B^-1 A_j are already in the
   tableau), skipping refactorisation entirely.

   Validity: the tableau encodes the constraint coefficients, so a hot
   value may only be replayed against the SAME problem (possibly with
   different variable bounds).  Branch & bound guarantees this; the
   snapshot API remains the vehicle for cross-problem reuse such as
   rate-search steps where coefficients rescale. *)
type hot = {
  h_tab : tableau;  (* final reduced tableau, owned by this value *)
  h_lo : float array;  (* structural bounds the tableau was solved under *)
  h_hi : float array;
}

let clone_tableau tab ~options =
  {
    tab with
    t = Array.map Array.copy tab.t;
    beta = Array.copy tab.beta;
    basis = Array.copy tab.basis;
    in_row = Array.copy tab.in_row;
    stat = Array.copy tab.stat;
    up = Array.copy tab.up;
    d = Array.copy tab.d;
    opts = options;
  }

(* Rebase a cloned hot tableau from the bounds it was solved under to
   [lo]/[hi].  Uses the identity

     beta_i = (B^-1 b)_i - sum_{nonbasic j} t_ij * rest_j - lo_basis(i)

   where rest_j is the actual resting value of nonbasic column j, so a
   bound change is a rank-1 rhs update per affected column.  The
   resulting basic values may violate the new bounds; the dual simplex
   repairs that. *)
let rebase_bounds tab ~old_lo ~old_hi ~lo ~hi =
  let n = tab.n in
  for j = 0 to n - 1 do
    let up_new = Float.max 0. (hi.(j) -. lo.(j)) in
    (match tab.stat.(j) with
    | Basic ->
        let dlo = lo.(j) -. old_lo.(j) in
        if dlo <> 0. then begin
          let r = tab.in_row.(j) in
          tab.beta.(r) <- tab.beta.(r) -. dlo
        end
    | s ->
        let old_rest =
          match s with At_upper -> old_hi.(j) | _ -> old_lo.(j)
        in
        let new_stat =
          if s = At_upper && Float.is_finite up_new then At_upper
          else At_lower
        in
        let new_rest =
          match new_stat with At_upper -> hi.(j) | _ -> lo.(j)
        in
        tab.stat.(j) <- new_stat;
        let dv = new_rest -. old_rest in
        if dv <> 0. then
          for i = 0 to tab.m - 1 do
            tab.beta.(i) <- tab.beta.(i) -. (tab.t.(i).(j) *. dv)
          done);
    tab.up.(j) <- up_new
  done

(* Restore a recorded basis into a freshly built tableau: Gauss-Jordan
   eliminate each recorded basic column (carrying the rhs in [beta]),
   then shift the rhs by the nonbasic-at-upper-bound columns.  Returns
   false when the recorded basis is singular for the current
   coefficients (caller falls back to a cold solve). *)
let install_basis tab (b : Basis.t) =
  for j = 0 to tab.ncols - 1 do
    tab.in_row.(j) <- -1;
    tab.stat.(j) <-
      (match b.Basis.stat.(j) with
      | Basis.At_upper when Float.is_finite tab.up.(j) -> At_upper
      | _ -> At_lower)
  done;
  let assigned = Array.make tab.m false in
  let ok = ref true in
  Array.iter
    (fun j ->
      if !ok then begin
        (* the unassigned row with the largest pivot in column j *)
        let r = ref (-1) in
        let mag = ref 1e-8 in
        for i = 0 to tab.m - 1 do
          if not assigned.(i) then begin
            let a = Float.abs tab.t.(i).(j) in
            if a > !mag then begin
              mag := a;
              r := i
            end
          end
        done;
        if !r < 0 then ok := false
        else begin
          let r = !r in
          let piv = tab.t.(r) in
          let inv = 1. /. piv.(j) in
          for k = 0 to tab.ncols - 1 do
            piv.(k) <- piv.(k) *. inv
          done;
          piv.(j) <- 1.;
          tab.beta.(r) <- tab.beta.(r) *. inv;
          for i = 0 to tab.m - 1 do
            if i <> r then begin
              let f = tab.t.(i).(j) in
              if f <> 0. then begin
                let row = tab.t.(i) in
                for k = 0 to tab.ncols - 1 do
                  row.(k) <- row.(k) -. (f *. piv.(k))
                done;
                row.(j) <- 0.;
                tab.beta.(i) <- tab.beta.(i) -. (f *. tab.beta.(r))
              end
            end
          done;
          assigned.(r) <- true;
          tab.basis.(r) <- j;
          tab.in_row.(j) <- r;
          tab.stat.(j) <- Basic
        end
      end)
    b.Basis.rows;
  if !ok then begin
    (* beta is now B^-1 rhs; account for nonbasic columns resting at
       their upper bound *)
    for j = 0 to tab.ncols - 1 do
      if tab.stat.(j) = At_upper then begin
        let u = tab.up.(j) in
        if u <> 0. then
          for i = 0 to tab.m - 1 do
            tab.beta.(i) <- tab.beta.(i) -. (tab.t.(i).(j) *. u)
          done
      end
    done;
    true
  end
  else false

type result = {
  status : Solution.status;
  basis : Basis.t option;
  hot : hot option;  (* only when [keep_hot] and the solve was optimal *)
  pivots : int;
  warm_used : bool;
  hot_used : bool;
}

let solve_warm ?(options = default_options) ?warm ?hot ?(keep_hot = false) ?lo
    ?hi problem =
  let n = Problem.n_vars problem in
  let vars = Problem.vars problem in
  let constrs = Problem.constrs problem in
  let m = Array.length constrs in
  let lo =
    match lo with
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Simplex.solve: lo override has wrong length";
        a
    | None -> Array.map (fun (v : Problem.var_info) -> v.lo) vars
  in
  let hi =
    match hi with
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Simplex.solve: hi override has wrong length";
        a
    | None -> Array.map (fun (v : Problem.var_info) -> v.hi) vars
  in
  let bound_conflict = ref false in
  for j = 0 to n - 1 do
    if lo.(j) > hi.(j) +. options.feas_tol then bound_conflict := true
  done;
  if !bound_conflict then
    { status = Solution.Infeasible; basis = None; hot = None; pivots = 0;
      warm_used = false; hot_used = false }
  else begin
    let n_slack =
      Array.fold_left
        (fun acc (c : Problem.constr) ->
          match c.sense with Le | Ge -> acc + 1 | Eq -> acc)
        0 constrs
    in
    let ncols = n + n_slack + m in
    let n_real = n + n_slack in
    let minimize = Problem.direction problem = Problem.Minimize in
    (* phase-2 cost vector, shared by the cold and warm paths *)
    let c2 = Array.make ncols 0. in
    let offset = ref 0. in
    List.iter
      (fun (v, coef) ->
        let coef = if minimize then coef else -.coef in
        c2.(v) <- c2.(v) +. coef;
        offset := !offset +. (coef *. lo.(v)))
      (Problem.objective problem);
    let pivots_left = ref options.max_pivots in
    let spent () = options.max_pivots - !pivots_left in
    let warm_used = ref false in
    (* feasibility judged by the actual violation of each original
       constraint, with a tolerance that grows mildly with the
       right-hand-side magnitude (rounding accumulates in absolute
       terms). *)
    let violated tab =
      let x_now = Array.init n (fun j -> lo.(j) +. col_value tab j) in
      Array.exists
        (fun (c : Problem.constr) ->
          let lhs =
            List.fold_left
              (fun acc (v, coef) -> acc +. (coef *. x_now.(v)))
              0. c.terms
          in
          let viol =
            match c.sense with
            | Problem.Le -> lhs -. c.rhs
            | Problem.Ge -> c.rhs -. lhs
            | Problem.Eq -> Float.abs (lhs -. c.rhs)
          in
          let tol =
            options.feas_tol *. 100. *. (1. +. (1e-6 *. Float.abs c.rhs))
          in
          viol > tol)
        constrs
    in
    let extract tab =
      let x = Array.make n 0. in
      for j = 0 to n - 1 do
        x.(j) <- lo.(j) +. col_value tab j
      done;
      let obj = phase_objective tab c2 +. !offset in
      let obj = if minimize then obj else -.obj in
      Solution.Optimal { Solution.x; objective = obj }
    in
    let fresh () = build problem ~options ~lo ~hi ~n ~n_slack in
    let hot_used = ref false in
    (* Shared tail of both warm entries: dual repair, primal cleanup,
       then accept only if the point truly satisfies the original
       constraints; [on_fallback] unwinds the used flags before the
       caller retries a colder path. *)
    let reoptimise tab ~on_fallback =
      compute_duals tab c2;
      match dual_iterate tab ~pivots_left with
      | Dual_budget -> Some (Solution.Iteration_limit, None, None)
      | Primal_infeasible -> Some (Solution.Infeasible, None, None)
      | Dual_stalled ->
          on_fallback ();
          None
      | Dual_feasible_point -> (
          match iterate tab ~allowed:(fun j -> j < n_real) ~pivots_left with
          | Budget_exhausted -> Some (Solution.Iteration_limit, None, None)
          | Unbounded_ray -> Some (Solution.Unbounded, None, None)
          | Optimal_reached ->
              if violated tab then begin
                (* numerical drift through the warm path; retry colder *)
                on_fallback ();
                None
              end
              else Some (extract tab, Some (snapshot tab), Some tab))
    in
    (* ---- hottest path: replay a final tableau under new bounds ---- *)
    let try_hot (h : hot) =
      let t0 = h.h_tab in
      if t0.m <> m || t0.ncols <> ncols || t0.n <> n then None
      else begin
        let tab = clone_tableau t0 ~options in
        rebase_bounds tab ~old_lo:h.h_lo ~old_hi:h.h_hi ~lo ~hi;
        hot_used := true;
        warm_used := true;
        reoptimise tab
          ~on_fallback:(fun () ->
            hot_used := false;
            warm_used := false)
      end
    in
    (* ---- warm path: refactorise a basis snapshot, then repair ---- *)
    let try_warm b =
      if not (Basis.compatible b ~rows:m ~cols:ncols) then None
      else begin
        let tab = fresh () in
        for j = n_real to ncols - 1 do
          tab.up.(j) <- 0.
        done;
        if not (install_basis tab b) then None
        else begin
          warm_used := true;
          reoptimise tab ~on_fallback:(fun () -> warm_used := false)
        end
      end
    in
    (* ---- cold path: two-phase primal from the artificial basis ---- *)
    let cold () =
      let tab = fresh () in
      let c1 = Array.make ncols 0. in
      for j = n_real to ncols - 1 do
        c1.(j) <- 1.
      done;
      compute_duals tab c1;
      match iterate tab ~allowed:(fun _ -> true) ~pivots_left with
      | Budget_exhausted -> (Solution.Iteration_limit, None, None)
      | Unbounded_ray ->
          (* cannot happen: the phase-1 objective is bounded below *)
          (Solution.Infeasible, None, None)
      | Optimal_reached ->
          if violated tab then (Solution.Infeasible, None, None)
          else begin
            (* remove artificials from the basis where possible *)
            for i = 0 to m - 1 do
              if tab.basis.(i) >= n_real then
                ignore (pivot_out_artificial tab i ~n_real)
            done;
            for j = n_real to ncols - 1 do
              tab.up.(j) <- 0.
            done;
            compute_duals tab c2;
            match iterate tab ~allowed:(fun j -> j < n_real) ~pivots_left with
            | Budget_exhausted -> (Solution.Iteration_limit, None, None)
            | Unbounded_ray -> (Solution.Unbounded, None, None)
            | Optimal_reached -> (extract tab, Some (snapshot tab), Some tab)
          end
    in
    (* fallback ladder: hot tableau -> basis snapshot -> cold *)
    let attempt = match hot with Some h -> try_hot h | None -> None in
    let attempt =
      match attempt with
      | Some _ -> attempt
      | None -> ( match warm with Some b -> try_warm b | None -> None)
    in
    let status, basis, tab =
      match attempt with Some r -> r | None -> cold ()
    in
    add_pivots (spent ());
    let hot_out =
      if keep_hot then
        match tab with
        | Some tab ->
            Some { h_tab = tab; h_lo = Array.copy lo; h_hi = Array.copy hi }
        | None -> None
      else None
    in
    { status; basis; hot = hot_out; pivots = spent ();
      warm_used = !warm_used; hot_used = !hot_used }
  end

let solve ?options ?lo ?hi problem =
  (solve_warm ?options ?lo ?hi problem).status
