(* Sparse revised simplex.  See sparse.mli for the contract; the
   solve semantics deliberately mirror simplex.ml line for line where
   they overlap (column layout, equilibration, tolerances, pricing
   eligibility, ratio-test tie-breaking, dual-repair ladder) so that
   the two solvers agree bit-for-bit on which bases are optimal and
   basis snapshots stay interchangeable. *)

type cstat = Basis.cstat = At_lower | At_upper | Basic

(* ---- compiled problem: CSC over the dense solver's column layout --- *)

type data = {
  problem : Problem.t;
  n : int;  (* structural columns *)
  n_slack : int;
  m : int;  (* rows *)
  n_real : int;  (* n + n_slack *)
  ncols : int;  (* n + n_slack + m: artificials are real CSC columns *)
  ptr : int array;  (* ncols + 1 *)
  idx : int array;
  vs : float array;  (* row-equilibrated values, same scales as dense *)
  rhs0 : float array;  (* equilibrated rhs, before the lower-bound shift *)
  cobj : float array;  (* structural costs in minimize space, length n *)
  minimize : bool;
  constrs : Problem.constr array;  (* original rows: sense and rhs *)
  c_vars : int array array;  (* per-row term variables, list order *)
  c_coefs : float array array;  (* per-row term coefficients, list order *)
}

let problem d = d.problem
let n_rows d = d.m

let of_problem problem =
  (* force the accessor caches now: [data] must be safe to share
     across domains read-only *)
  let vars = Problem.vars problem in
  ignore (Problem.integer_vars problem);
  let n = Array.length vars in
  let constrs = Problem.constrs problem in
  let m = Array.length constrs in
  let n_slack =
    Array.fold_left
      (fun acc (c : Problem.constr) ->
        match c.sense with Le | Ge -> acc + 1 | Eq -> acc)
      0 constrs
  in
  let n_real = n + n_slack in
  let ncols = n_real + m in
  (* per-column entry lists, rows appended in increasing order *)
  let cols : (int * float) list array = Array.make ncols [] in
  let rhs0 = Array.make m 0. in
  let nnz = ref 0 in
  let acc = Array.make (Int.max 1 n) 0. in
  let stamp = Array.make (Int.max 1 n) (-1) in
  let touched = Array.make (Int.max 1 n) 0 in
  let slack_idx = ref n in
  Array.iteri
    (fun i (c : Problem.constr) ->
      (* sum duplicate terms, exactly as the dense row fill does *)
      let n_touched = ref 0 in
      List.iter
        (fun (v, coef) ->
          if stamp.(v) <> i then begin
            stamp.(v) <- i;
            acc.(v) <- 0.;
            touched.(!n_touched) <- v;
            incr n_touched
          end;
          acc.(v) <- acc.(v) +. coef)
        c.terms;
      let slack =
        match c.sense with
        | Le ->
            let s = !slack_idx in
            incr slack_idx;
            Some (s, 1.)
        | Ge ->
            let s = !slack_idx in
            incr slack_idx;
            Some (s, -1.)
        | Eq -> None
      in
      (* row equilibration: same norm and threshold as the dense
         build (slack included, artificial not) *)
      let norm = ref 0. in
      for t = 0 to !n_touched - 1 do
        norm := Float.max !norm (Float.abs acc.(touched.(t)))
      done;
      if slack <> None then norm := Float.max !norm 1.;
      let scale =
        if !norm > 0. && (!norm > 16. || !norm < 1. /. 16.) then 1. /. !norm
        else 1.
      in
      for t = 0 to !n_touched - 1 do
        let v = touched.(t) in
        let a = acc.(v) *. scale in
        if a <> 0. then begin
          cols.(v) <- (i, a) :: cols.(v);
          incr nnz
        end
      done;
      (match slack with
      | Some (s, sv) ->
          cols.(s) <- [ (i, sv *. scale) ];
          incr nnz
      | None -> ());
      cols.(n_real + i) <- [ (i, 1.) ];
      incr nnz;
      rhs0.(i) <- c.rhs *. scale)
    constrs;
  let ptr = Array.make (ncols + 1) 0 in
  for j = 0 to ncols - 1 do
    ptr.(j + 1) <- ptr.(j) + List.length cols.(j)
  done;
  let idx = Array.make (Int.max 1 !nnz) 0 in
  let vs = Array.make (Int.max 1 !nnz) 0. in
  for j = 0 to ncols - 1 do
    let p = ref ptr.(j + 1) in
    (* lists were built backwards: fill from the end *)
    List.iter
      (fun (i, a) ->
        decr p;
        idx.(!p) <- i;
        vs.(!p) <- a)
      cols.(j)
  done;
  let minimize = Problem.direction problem = Problem.Minimize in
  let cobj = Array.make (Int.max 1 n) 0. in
  List.iter
    (fun (v, coef) ->
      cobj.(v) <- cobj.(v) +. (if minimize then coef else -.coef))
    (Problem.objective problem);
  (* de-boxed copies of the constraint terms, in list order, for the
     post-solve feasibility verification: same arithmetic as folding
     the boxed lists, without chasing cons cells on every solve *)
  let c_vars =
    Array.map
      (fun (c : Problem.constr) -> Array.of_list (List.map fst c.terms))
      constrs
  in
  let c_coefs =
    Array.map
      (fun (c : Problem.constr) -> Array.of_list (List.map snd c.terms))
      constrs
  in
  { problem; n; n_slack; m; n_real; ncols; ptr; idx; vs; rhs0; cobj; minimize;
    constrs; c_vars; c_coefs }

(* ---- per-solve state ---------------------------------------------- *)

(* Raised whenever the sparse path cannot be trusted (singular
   refactorisation mid-solve, pivot value disagreeing with its BTRAN
   image, post-solve feasibility breach): the caller retries a colder
   path, ultimately the dense solver. *)
exception Decline

type state = {
  d : data;
  mutable opts : Simplex.options;
  wlo : float array;  (* working bounds per column, shifted space *)
  wup : float array;
  stat : cstat array;
  basis : int array;  (* slot -> column *)
  in_row : int array;  (* column -> slot, -1 when nonbasic *)
  beta : float array;  (* basic values per slot *)
  y : float array;  (* duals for the current [cost] and basis *)
  cost : float array;  (* current phase cost per column *)
  rhs : float array;  (* equilibrated rhs after the lower-bound shift *)
  f : Factor.t;
  w : float array;  (* FTRAN scratch *)
  rho : float array;  (* BTRAN scratch (dual row) *)
  dw : float array;  (* devex reference-framework weights per column *)
  mutable pivots_left : int ref;
}

(* A session keeps one solve state and a factor snapshot alive across
   warm solves of the same compiled problem, so a sequence of
   warm-started solves (the branch & bound hot loop) pays no per-solve
   allocation — and no refactorisation at all when the requested warm
   basis is the one already snapshotted, as happens for the second
   child of every branch node.  Single-domain use only. *)
type session = {
  sd : data;
  sstate : state;
  snap : Factor.snapshot;
  snap_basis : int array;  (* slot order fixed by the snapshot *)
  snap_mark : bool array;  (* column membership of snap_basis *)
  mutable snap_valid : bool;
}

(* ---- process-wide solver counters (benchmarks / verbose CLI) ---- *)

type counters = { refactorisations : int; ft_updates : int; ft_entries : int }

let refactor_count = Atomic.make 0
let ft_update_count = Atomic.make 0
let ft_entry_count = Atomic.make 0

let counters () =
  {
    refactorisations = Atomic.get refactor_count;
    ft_updates = Atomic.get ft_update_count;
    ft_entries = Atomic.get ft_entry_count;
  }

let reset_counters () =
  Atomic.set refactor_count 0;
  Atomic.set ft_update_count 0;
  Atomic.set ft_entry_count 0

let col_value st j =
  match st.stat.(j) with
  | Basic -> st.beta.(st.in_row.(j))
  | At_lower -> st.wlo.(j)
  | At_upper -> st.wup.(j)

let movable st j =
  st.stat.(j) <> Basic && st.wup.(j) -. st.wlo.(j) > st.opts.feas_tol

(* beta = B^-1 (rhs - sum_{nonbasic j} A_j * rest_j) *)
let compute_beta st =
  let d = st.d in
  Array.blit st.rhs 0 st.beta 0 d.m;
  for j = 0 to d.ncols - 1 do
    if st.stat.(j) <> Basic then begin
      let v = match st.stat.(j) with At_upper -> st.wup.(j) | _ -> st.wlo.(j) in
      if v <> 0. then
        for p = d.ptr.(j) to d.ptr.(j + 1) - 1 do
          st.beta.(d.idx.(p)) <- st.beta.(d.idx.(p)) -. (d.vs.(p) *. v)
        done
    end
  done;
  Factor.ftran st.f st.beta

(* y = B^-T c_B *)
let compute_y st =
  for r = 0 to st.d.m - 1 do
    st.y.(r) <- st.cost.(st.basis.(r))
  done;
  Factor.btran st.f st.y

(* Reduced cost of column [j] under the maintained duals. *)
let price st j =
  let d = st.d in
  let s = ref st.cost.(j) in
  for p = d.ptr.(j) to d.ptr.(j + 1) - 1 do
    s := !s -. (st.y.(d.idx.(p)) *. d.vs.(p))
  done;
  !s

let rebuild_in_row st =
  Array.fill st.in_row 0 st.d.ncols (-1);
  for r = 0 to st.d.m - 1 do
    st.in_row.(st.basis.(r)) <- r
  done

(* Full refresh: refactorise the current basis and recompute the
   derived state.  Raises [Decline] when the basis has gone singular. *)
let refresh st =
  Atomic.incr refactor_count;
  if not (Factor.factorize st.f ~basis:st.basis ~ptr:st.d.ptr ~idx:st.d.idx ~vs:st.d.vs)
  then raise Decline;
  rebuild_in_row st;
  compute_beta st;
  compute_y st

(* FTRAN of column [j] into the scratch [st.w]. *)
let ftran_col st j =
  let d = st.d in
  Array.fill st.w 0 d.m 0.;
  for p = d.ptr.(j) to d.ptr.(j + 1) - 1 do
    st.w.(d.idx.(p)) <- d.vs.(p)
  done;
  Factor.ftran st.f st.w

(* Replace the basic variable of slot [r] by column [j] whose FTRAN
   image is in [st.w]; [leaving_stat] is where the old variable rests.
   [enter_val] is the new basic value of [j].  Shared by the primal
   and dual pivots.  [y_done] means the caller already updated the
   duals incrementally (devex path); otherwise they are recomputed
   exactly.  Returns [true] when a stability-triggered refresh ran —
   after which every derived quantity is exact again. *)
let pivot st ~r ~j ~leaving_stat ~enter_val ~y_done =
  let old = st.basis.(r) in
  st.stat.(old) <- leaving_stat;
  st.in_row.(old) <- -1;
  st.basis.(r) <- j;
  st.in_row.(j) <- r;
  st.stat.(j) <- Basic;
  let e0 = Factor.ft_entries st.f in
  Factor.update st.f ~w:st.w ~r;
  Atomic.incr ft_update_count;
  let e1 = Factor.ft_entries st.f in
  if e1 > e0 then ignore (Atomic.fetch_and_add ft_entry_count (e1 - e0));
  st.beta.(r) <- enter_val;
  if Factor.needs_refresh st.f then begin
    refresh st;
    true
  end
  else begin
    if not y_done then compute_y st;
    false
  end

(* ---- primal simplex with candidate-list pricing ------------------- *)

type step = Optimal_reached | Unbounded_ray | Budget_exhausted

let cand_cap = 24

let primal st ~allowed =
  let opts = st.opts in
  let d = st.d in
  let ncols = st.d.ncols in
  let devex = opts.pricing = Simplex.Devex in
  (* fresh reference framework per primal phase *)
  if devex then Array.fill st.dw 0 ncols 1.;
  (* exact duals invariant: true whenever [st.y] was last set by
     [compute_y] / [refresh]; devex lets it drift between pivots and
     restores it before trusting an "optimal" verdict.  A preceding
     devex dual phase may already have left drift, so start dirty. *)
  let y_exact = ref (not devex) in
  let degen_run = ref 0 in
  let result = ref None in
  let cand = Array.make cand_cap (-1) in
  let n_cand = ref 0 in
  let eligible j dj =
    match st.stat.(j) with
    | At_lower -> dj < -.opts.cost_tol
    | At_upper -> dj > opts.cost_tol
    | Basic -> false
  in
  (* Devex: steepest scaled reduced cost d_j^2 / w_j over the
     reference-framework weights; one full pricing pass per pivot
     (the matrix averages a couple of nonzeros per column). *)
  let devex_scan () =
    let enter = ref (-1) in
    let best = ref 0. in
    for j = 0 to ncols - 1 do
      if movable st j && allowed j then begin
        let dj = price st j in
        if eligible j dj then begin
          let score = dj *. dj /. st.dw.(j) in
          if score > !best then begin
            best := score;
            enter := j
          end
        end
      end
    done;
    !enter
  in
  (* Bland's rule: lowest-index eligible column, exactly as the dense
     loop degrades after [degen_window] non-improving pivots *)
  let bland_scan () =
    let enter = ref (-1) in
    let j = ref 0 in
    while !j < ncols && !enter < 0 do
      let jj = !j in
      if movable st jj && allowed jj && eligible jj (price st jj) then
        enter := jj;
      incr j
    done;
    !enter
  in
  (* Full Dantzig scan; refills the candidate list with the runners-up
     so the next [cand_cap - 1] pivots price only the short list. *)
  let full_scan () =
    n_cand := 0;
    let enter = ref (-1) in
    let best = ref 0. in
    let worst_cand = ref 0 in
    (* index into cand of the smallest score *)
    let scores = Array.make cand_cap 0. in
    for j = 0 to ncols - 1 do
      if movable st j && allowed j then begin
        let dj = price st j in
        if eligible j dj then begin
          let score = Float.abs dj in
          if score > !best then begin
            best := score;
            enter := j
          end;
          if !n_cand < cand_cap then begin
            cand.(!n_cand) <- j;
            scores.(!n_cand) <- score;
            incr n_cand;
            if score < scores.(!worst_cand) then worst_cand := !n_cand - 1
          end
          else if score > scores.(!worst_cand) then begin
            cand.(!worst_cand) <- j;
            scores.(!worst_cand) <- score;
            worst_cand := 0;
            for k = 1 to cand_cap - 1 do
              if scores.(k) < scores.(!worst_cand) then worst_cand := k
            done
          end
        end
      end
    done;
    !enter
  in
  let pick_entering () =
    (* price the candidate list first; fall back to a full scan when
       it has gone stale *)
    let enter = ref (-1) in
    let best = ref 0. in
    for k = 0 to !n_cand - 1 do
      let j = cand.(k) in
      if j >= 0 && movable st j && allowed j then begin
        let dj = price st j in
        if eligible j dj then begin
          let score = Float.abs dj in
          if score > !best then begin
            best := score;
            enter := j
          end
        end
      end
    done;
    if !enter >= 0 then !enter else full_scan ()
  in
  while !result = None do
    if !(st.pivots_left) <= 0 then result := Some Budget_exhausted
    else begin
      decr st.pivots_left;
      let use_bland = !degen_run > opts.degen_window in
      let enter =
        if use_bland then begin
          (* Bland's rule takes the first eligible sign: it needs
             exact reduced costs, not drifted ones *)
          if not !y_exact then begin
            compute_y st;
            y_exact := true
          end;
          bland_scan ()
        end
        else if devex then begin
          let e = devex_scan () in
          if e >= 0 || !y_exact then e
          else begin
            (* no eligible column under drifted duals: recompute
               exactly and rescan before declaring optimality *)
            compute_y st;
            y_exact := true;
            devex_scan ()
          end
        end
        else pick_entering ()
      in
      if enter < 0 then result := Some Optimal_reached
      else begin
        let j = enter in
        let dj = price st j in
        let sigma = if st.stat.(j) = At_lower then 1. else -1. in
        ftran_col st j;
        let w = st.w in
        (* --- ratio test: identical limits and tie-breaks to dense --- *)
        let tmax = ref (st.wup.(j) -. st.wlo.(j)) in
        let leave = ref (-1) in
        let leave_to_upper = ref false in
        let best_alpha = ref 0. in
        for i = 0 to st.d.m - 1 do
          let alpha = w.(i) in
          let rate = sigma *. alpha in
          if rate > opts.feas_tol then begin
            (* basic variable decreases towards its lower bound *)
            let bi = st.basis.(i) in
            let limit = Float.max 0. ((st.beta.(i) -. st.wlo.(bi)) /. rate) in
            if
              limit < !tmax -. opts.feas_tol
              || (limit <= !tmax +. opts.feas_tol
                  && !leave >= 0
                  && Float.abs alpha > !best_alpha)
            then begin
              tmax := Float.min limit !tmax;
              leave := i;
              leave_to_upper := false;
              best_alpha := Float.abs alpha
            end
          end
          else if rate < -.opts.feas_tol then begin
            let bi = st.basis.(i) in
            let ub = st.wup.(bi) in
            if Float.is_finite ub then begin
              (* basic variable increases towards its upper bound *)
              let limit = Float.max 0. ((ub -. st.beta.(i)) /. -.rate) in
              if
                limit < !tmax -. opts.feas_tol
                || (limit <= !tmax +. opts.feas_tol
                    && !leave >= 0
                    && Float.abs alpha > !best_alpha)
              then begin
                tmax := Float.min limit !tmax;
                leave := i;
                leave_to_upper := true;
                best_alpha := Float.abs alpha
              end
            end
          end
        done;
        if Float.is_finite !tmax then begin
          let t = !tmax in
          let improvement = t *. Float.abs dj in
          if improvement <= opts.cost_tol then incr degen_run
          else degen_run := 0;
          for i = 0 to st.d.m - 1 do
            st.beta.(i) <- st.beta.(i) -. (sigma *. t *. w.(i))
          done;
          if !leave < 0 then
            st.stat.(j) <-
              (if st.stat.(j) = At_lower then At_upper else At_lower)
          else begin
            let r = !leave in
            let enter_val =
              (if st.stat.(j) = At_lower then st.wlo.(j) else st.wup.(j))
              +. (sigma *. t)
            in
            let leaving_stat = if !leave_to_upper then At_upper else At_lower in
            if devex && not use_bland then begin
              (* one BTRAN of e_r yields the pivot row, which feeds
                 both the reference-framework weight update and the
                 incremental dual update — replacing the per-pivot
                 BTRAN of c_B the Dantzig path pays *)
              Array.fill st.rho 0 d.m 0.;
              st.rho.(r) <- 1.;
              Factor.btran st.f st.rho;
              let arq = ref 0. in
              for p = d.ptr.(j) to d.ptr.(j + 1) - 1 do
                arq := !arq +. (st.rho.(d.idx.(p)) *. d.vs.(p))
              done;
              (* the row image of the entering column must agree with
                 its FTRAN image: a Forrest-Tomlin file gone stale
                 declines to a colder path rather than pivot on noise *)
              if
                Float.abs (st.w.(r) -. !arq)
                > 1e-6 *. (1. +. Float.abs !arq)
              then raise Decline;
              let arq = st.w.(r) in
              let wq = Float.max st.dw.(j) 1. in
              let old_basic = st.basis.(r) in
              for j' = 0 to ncols - 1 do
                if st.stat.(j') <> Basic && j' <> j then begin
                  let a = ref 0. in
                  for p = d.ptr.(j') to d.ptr.(j' + 1) - 1 do
                    a := !a +. (st.rho.(d.idx.(p)) *. d.vs.(p))
                  done;
                  if !a <> 0. then begin
                    let ratio = !a /. arq in
                    let cand_w = ratio *. ratio *. wq in
                    if cand_w > st.dw.(j') then st.dw.(j') <- cand_w
                  end
                end
              done;
              st.dw.(old_basic) <- Float.max (wq /. (arq *. arq)) 1.;
              let ty = dj /. arq in
              for i = 0 to d.m - 1 do
                st.y.(i) <- st.y.(i) +. (ty *. st.rho.(i))
              done;
              let refreshed =
                pivot st ~r ~j ~leaving_stat ~enter_val ~y_done:true
              in
              y_exact := refreshed
            end
            else begin
              ignore (pivot st ~r ~j ~leaving_stat ~enter_val ~y_done:false);
              y_exact := true
            end
          end
        end
        else result := Some Unbounded_ray
      end
    end
  done;
  match !result with Some s -> s | None -> assert false

(* ---- bounded-variable dual simplex -------------------------------- *)

type dual_step =
  | Dual_feasible_point
  | Primal_infeasible
  | Dual_budget
  | Dual_stalled

let dual st =
  let opts = st.opts in
  let d = st.d in
  let devex = opts.pricing = Simplex.Devex in
  let result = ref None in
  while !result = None do
    if !(st.pivots_left) <= 0 then result := Some Dual_budget
    else begin
      (* --- leaving row: the largest bound violation --- *)
      let r = ref (-1) in
      let worst = ref opts.feas_tol in
      let above = ref false in
      for i = 0 to d.m - 1 do
        let bi = st.basis.(i) in
        let below_by = st.wlo.(bi) -. st.beta.(i) in
        if below_by > !worst then begin
          worst := below_by;
          r := i;
          above := false
        end;
        let ub = st.wup.(bi) in
        if Float.is_finite ub && st.beta.(i) -. ub > !worst then begin
          worst := st.beta.(i) -. ub;
          r := i;
          above := true
        end
      done;
      if !r < 0 then result := Some Dual_feasible_point
      else begin
        decr st.pivots_left;
        let r = !r and above = !above in
        (* dual row: rho = B^-T e_r, alpha_rj = rho . A_j on demand *)
        Array.fill st.rho 0 d.m 0.;
        st.rho.(r) <- 1.;
        Factor.btran st.f st.rho;
        let enter = ref (-1) in
        let enter_alpha = ref 0. in
        let enter_dc = ref 0. in
        let best_ratio = ref infinity in
        let best_mag = ref 0. in
        let marginal = ref false in
        for j = 0 to d.ncols - 1 do
          if movable st j then begin
            let a = ref 0. in
            for p = d.ptr.(j) to d.ptr.(j + 1) - 1 do
              a := !a +. (st.rho.(d.idx.(p)) *. d.vs.(p))
            done;
            let a = !a in
            let good_sign =
              match (st.stat.(j), above) with
              | At_lower, false -> a < 0.
              | At_upper, false -> a > 0.
              | At_lower, true -> a > 0.
              | At_upper, true -> a < 0.
              | Basic, _ -> false
            in
            let mag = Float.abs a in
            if good_sign && mag > 1e-9 then begin
              if mag <= opts.feas_tol then marginal := true
              else begin
                let dc = price st j in
                let dj =
                  match st.stat.(j) with
                  | At_lower -> Float.max dc 0.
                  | _ -> Float.max (-.dc) 0.
                in
                let ratio = dj /. mag in
                if
                  ratio < !best_ratio -. 1e-12
                  || (ratio <= !best_ratio +. 1e-12 && mag > !best_mag)
                then begin
                  best_ratio := ratio;
                  best_mag := mag;
                  enter := j;
                  enter_alpha := a;
                  enter_dc := dc
                end
              end
            end
          end
        done;
        if !enter < 0 then
          result := Some (if !marginal then Dual_stalled else Primal_infeasible)
        else begin
          let j = !enter in
          ftran_col st j;
          (* the FTRAN image must agree with the BTRAN row value; a
             disagreement means the eta file has drifted — decline
             rather than pivot on noise *)
          if
            Float.abs st.w.(r) <= 0.5 *. opts.feas_tol
            || Float.abs (st.w.(r) -. !enter_alpha)
               > 1e-6 *. (1. +. Float.abs !enter_alpha)
          then raise Decline;
          let bi = st.basis.(r) in
          let target = if above then st.wup.(bi) else st.wlo.(bi) in
          let delta = (st.beta.(r) -. target) /. st.w.(r) in
          for i = 0 to d.m - 1 do
            st.beta.(i) <- st.beta.(i) -. (delta *. st.w.(i))
          done;
          let enter_val =
            (match st.stat.(j) with At_upper -> st.wup.(j) | _ -> st.wlo.(j))
            +. delta
          in
          let leaving_stat = if above then At_upper else At_lower in
          if devex then begin
            (* [st.rho] still holds B^-T e_r: update the duals
               incrementally instead of paying a BTRAN of c_B.  Any
               drift only shifts which dual pivot is preferred; the
               endpoint is re-verified by the primal cleanup pass. *)
            let ty = !enter_dc /. st.w.(r) in
            for i = 0 to d.m - 1 do
              st.y.(i) <- st.y.(i) +. (ty *. st.rho.(i))
            done;
            ignore (pivot st ~r ~j ~leaving_stat ~enter_val ~y_done:true)
          end
          else ignore (pivot st ~r ~j ~leaving_stat ~enter_val ~y_done:false)
        end
      end
    end
  done;
  match !result with Some s -> s | None -> assert false

(* ---- solve driver -------------------------------------------------- *)

let fallbacks = Atomic.make 0
let dense_fallbacks () = Atomic.get fallbacks

let make_state d =
  {
    d;
    opts = Simplex.default_options;
    wlo = Array.make d.ncols 0.;
    wup = Array.make d.ncols infinity;
    stat = Array.make d.ncols At_lower;
    basis = Array.init d.m (fun i -> d.n_real + i);
    in_row = Array.make d.ncols (-1);
    beta = Array.make d.m 0.;
    y = Array.make d.m 0.;
    cost = Array.make d.ncols 0.;
    rhs = Array.make d.m 0.;
    f = Factor.create ~m:d.m;
    w = Array.make d.m 0.;
    rho = Array.make d.m 0.;
    dw = Array.make d.ncols 1.;
    pivots_left = ref 0;
  }

let session d =
  {
    sd = d;
    sstate = make_state d;
    snap = Factor.snapshot_create ~m:d.m;
    snap_basis = Array.make (Int.max 1 d.m) 0;
    snap_mark = Array.make d.ncols false;
    snap_valid = false;
  }

let solve_warm ?(options = Simplex.default_options) ?warm ?lo ?hi ?session data
    =
  let d = data in
  let ses =
    match session with
    | Some s ->
        if s.sd != d then
          invalid_arg "Sparse.solve_warm: session built for another problem";
        Some s
    | None -> None
  in
  let n = d.n in
  let vars = Problem.vars d.problem in
  let lo =
    match lo with
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Sparse.solve: lo override has wrong length";
        a
    | None -> Array.map (fun (v : Problem.var_info) -> v.lo) vars
  in
  let hi =
    match hi with
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Sparse.solve: hi override has wrong length";
        a
    | None -> Array.map (fun (v : Problem.var_info) -> v.hi) vars
  in
  let bound_conflict = ref false in
  for j = 0 to n - 1 do
    if lo.(j) > hi.(j) +. options.feas_tol then bound_conflict := true
  done;
  if !bound_conflict then
    { Simplex.status = Solution.Infeasible; basis = None; hot = None;
      pivots = 0; warm_used = false; hot_used = false }
  else begin
    let pivots_left = ref options.max_pivots in
    let spent () = options.max_pivots - !pivots_left in
    let warm_used = ref false in
    (* shifted rhs for the current lower bounds *)
    let rhs = Array.copy d.rhs0 in
    for j = 0 to n - 1 do
      if lo.(j) <> 0. then
        for p = d.ptr.(j) to d.ptr.(j + 1) - 1 do
          rhs.(d.idx.(p)) <- rhs.(d.idx.(p)) -. (d.vs.(p) *. lo.(j))
        done
    done;
    let fresh () =
      let wlo = Array.make d.ncols 0. in
      let wup = Array.make d.ncols infinity in
      for j = 0 to n - 1 do
        wup.(j) <- Float.max 0. (hi.(j) -. lo.(j))
      done;
      (* artificials default to fixed-at-zero; the cold path widens
         them for phase 1 *)
      for j = d.n_real to d.ncols - 1 do
        wup.(j) <- 0.
      done;
      {
        d;
        opts = options;
        wlo;
        wup;
        stat = Array.make d.ncols At_lower;
        basis = Array.init d.m (fun i -> d.n_real + i);
        in_row = Array.make d.ncols (-1);
        beta = Array.make d.m 0.;
        y = Array.make d.m 0.;
        cost = Array.make d.ncols 0.;
        rhs;
        f = Factor.create ~m:d.m;
        w = Array.make d.m 0.;
        rho = Array.make d.m 0.;
        dw = Array.make d.ncols 1.;
        pivots_left;
      }
    in
    let set_phase2_cost st =
      Array.fill st.cost 0 d.ncols 0.;
      Array.blit d.cobj 0 st.cost 0 n
    in
    (* same check as folding [Problem.constrs] term lists — identical
       operations in identical order, so the verdict is bit-identical
       — but over the de-boxed term arrays and with column values read
       on demand, so it allocates nothing *)
    let violated st =
      let bad = ref false in
      let i = ref 0 in
      while (not !bad) && !i < d.m do
        let c = d.constrs.(!i) in
        let cv = d.c_vars.(!i) and cc = d.c_coefs.(!i) in
        let lhs = ref 0. in
        for t = 0 to Array.length cv - 1 do
          let v = cv.(t) in
          lhs := !lhs +. (cc.(t) *. (lo.(v) +. col_value st v))
        done;
        let viol =
          match c.sense with
          | Problem.Le -> !lhs -. c.rhs
          | Problem.Ge -> c.rhs -. !lhs
          | Problem.Eq -> Float.abs (!lhs -. c.rhs)
        in
        let tol =
          options.feas_tol *. 100. *. (1. +. (1e-6 *. Float.abs c.rhs))
        in
        if viol > tol then bad := true;
        incr i
      done;
      !bad
    in
    let extract st =
      let x = Array.make n 0. in
      let obj = ref 0. in
      for j = 0 to n - 1 do
        let v = col_value st j in
        x.(j) <- lo.(j) +. v;
        obj := !obj +. (d.cobj.(j) *. x.(j))
      done;
      let obj = if d.minimize then !obj else -. !obj in
      Solution.Optimal { Solution.x; objective = obj }
    in
    let snapshot st =
      { Basis.rows = Array.copy st.basis; stat = Array.copy st.stat }
    in
    (* shared tail of warm starts: dual repair, primal cleanup, then
       accept only a verified-feasible point (mirrors
       Simplex.reoptimise) *)
    let reoptimise st ~on_fallback =
      set_phase2_cost st;
      compute_y st;
      match dual st with
      | Dual_budget -> Some (Solution.Iteration_limit, None)
      | Primal_infeasible -> Some (Solution.Infeasible, None)
      | Dual_stalled ->
          on_fallback ();
          None
      | Dual_feasible_point -> (
          match primal st ~allowed:(fun j -> j < d.n_real) with
          | Budget_exhausted -> Some (Solution.Iteration_limit, None)
          | Unbounded_ray -> Some (Solution.Unbounded, None)
          | Optimal_reached ->
              if violated st then begin
                on_fallback ();
                None
              end
              else Some (extract st, Some (snapshot st)))
    in
    (* ---- warm path: refactorise a basis snapshot, then repair ---- *)
    let try_warm b =
      if not (Basis.compatible b ~rows:d.m ~cols:d.ncols) then None
      else begin
        let st =
          match ses with
          | Some s ->
              (* reinitialise the pooled state in place: no per-solve
                 allocation on the branch & bound hot path *)
              let st = s.sstate in
              st.opts <- options;
              st.pivots_left <- pivots_left;
              Array.blit rhs 0 st.rhs 0 d.m;
              for j = 0 to n - 1 do
                st.wlo.(j) <- 0.;
                st.wup.(j) <- Float.max 0. (hi.(j) -. lo.(j))
              done;
              for j = n to d.ncols - 1 do
                st.wlo.(j) <- 0.;
                st.wup.(j) <- (if j >= d.n_real then 0. else infinity)
              done;
              Array.fill st.dw 0 d.ncols 1.;
              st
          | None -> fresh ()
        in
        for j = 0 to d.ncols - 1 do
          st.stat.(j) <-
            (match b.Basis.stat.(j) with
            | Basis.At_upper when Float.is_finite st.wup.(j) -> At_upper
            | _ -> At_lower)
        done;
        Array.blit b.Basis.rows 0 st.basis 0 d.m;
        Array.iter (fun j -> st.stat.(j) <- Basic) st.basis;
        set_phase2_cost st;
        (* With a session, an identical warm basis (as a set) can skip
           the refactorisation entirely: restoring the snapshot replays
           the byte-identical factorisation the refresh would rebuild.
           Bounds may differ — the factor depends only on the matrix
           columns in the basis. *)
        let hit =
          match ses with
          | Some s when s.snap_valid ->
              let ok = ref true in
              for r = 0 to d.m - 1 do
                if not s.snap_mark.(st.basis.(r)) then ok := false
              done;
              !ok
          | _ -> false
        in
        match
          if hit then begin
            let s = Option.get ses in
            Factor.restore s.snap st.f;
            Array.blit s.snap_basis 0 st.basis 0 d.m;
            rebuild_in_row st;
            compute_beta st;
            compute_y st
          end
          else begin
            refresh st;
            match ses with
            | Some s ->
                Factor.save st.f s.snap;
                Array.blit st.basis 0 s.snap_basis 0 d.m;
                Array.fill s.snap_mark 0 d.ncols false;
                for r = 0 to d.m - 1 do
                  s.snap_mark.(st.basis.(r)) <- true
                done;
                s.snap_valid <- true
            | None -> ()
          end
        with
        | () ->
            warm_used := true;
            reoptimise st ~on_fallback:(fun () -> warm_used := false)
        | exception Decline -> None
      end
    in
    (* ---- cold path: two-phase primal from the artificial basis ---- *)
    let cold () =
      let st = fresh () in
      (* phase 1: artificial i spans [min(0, rhs_i), max(0, rhs_i)]
         with cost sign(rhs_i) — the sparse build keeps row signs
         as-is (no dense-style rhs flip), so infeasibility is driven
         out symmetrically from either side *)
      for i = 0 to d.m - 1 do
        let j = d.n_real + i in
        let b = st.rhs.(i) in
        st.wlo.(j) <- Float.min 0. b;
        st.wup.(j) <- Float.max 0. b;
        st.cost.(j) <- (if b >= 0. then 1. else -1.);
        st.stat.(j) <- Basic;
        st.in_row.(j) <- i;
        st.beta.(i) <- b
      done;
      Factor.set_identity st.f;
      compute_y st;
      (match primal st ~allowed:(fun _ -> true) with
      | Budget_exhausted -> (Solution.Iteration_limit, None)
      | Unbounded_ray ->
          (* cannot happen: the phase-1 objective is bounded below *)
          (Solution.Infeasible, None)
      | Optimal_reached ->
          if violated st then (Solution.Infeasible, None)
          else begin
            (* pivot artificials out of the basis where possible, then
               fix every artificial at zero *)
            for r = 0 to d.m - 1 do
              if st.basis.(r) >= d.n_real then begin
                Array.fill st.rho 0 d.m 0.;
                st.rho.(r) <- 1.;
                Factor.btran st.f st.rho;
                let best = ref (-1) in
                let best_mag = ref 1e-7 in
                for j = 0 to d.n_real - 1 do
                  if st.stat.(j) <> Basic then begin
                    let a = ref 0. in
                    for p = d.ptr.(j) to d.ptr.(j + 1) - 1 do
                      a := !a +. (st.rho.(d.idx.(p)) *. d.vs.(p))
                    done;
                    let mag = Float.abs !a in
                    if mag > !best_mag then begin
                      best_mag := mag;
                      best := j
                    end
                  end
                done;
                if !best >= 0 then begin
                  let j = !best in
                  ftran_col st j;
                  if Float.abs st.w.(r) > 1e-9 then
                    (* degenerate pivot: the artificial sits at zero,
                       the entering column stays at its resting value *)
                    ignore
                      (pivot st ~r ~j ~leaving_stat:At_lower
                         ~enter_val:(col_value st j) ~y_done:false)
                end
              end
            done;
            for jj = d.n_real to d.ncols - 1 do
              st.wlo.(jj) <- 0.;
              st.wup.(jj) <- 0.;
              if st.stat.(jj) <> Basic then st.stat.(jj) <- At_lower
            done;
            set_phase2_cost st;
            (* clamping the artificial bounds moved their resting
               values; refresh recomputes beta and y exactly *)
            refresh st;
            match primal st ~allowed:(fun j -> j < d.n_real) with
            | Budget_exhausted -> (Solution.Iteration_limit, None)
            | Unbounded_ray -> (Solution.Unbounded, None)
            | Optimal_reached ->
                (* the dense cold path trusts its endpoint; the sparse
                   one re-verifies and declines to the dense solver on
                   any breach, so results never change *)
                if violated st then raise Decline
                else (extract st, Some (snapshot st))
          end)
    in
    let attempt =
      match warm with
      | Some b -> ( try try_warm b with Decline -> warm_used := false; None)
      | None -> None
    in
    match attempt with
    | Some (status, basis) ->
        Simplex.add_pivots (spent ());
        { Simplex.status; basis; hot = None; pivots = spent ();
          warm_used = !warm_used; hot_used = false }
    | None -> (
        match cold () with
        | status, basis ->
            Simplex.add_pivots (spent ());
            { Simplex.status; basis; hot = None; pivots = spent ();
              warm_used = !warm_used; hot_used = false }
        | exception Decline ->
            (* verified dense fallback, with the remaining budget *)
            Atomic.incr fallbacks;
            Simplex.add_pivots (spent ());
            let sparse_spent = spent () in
            let options =
              { options with Simplex.max_pivots = Int.max 1 !pivots_left }
            in
            let r = Simplex.solve_warm ~options ?warm ~lo ~hi d.problem in
            { r with
              Simplex.pivots = r.Simplex.pivots + sparse_spent;
              warm_used = !warm_used || r.Simplex.warm_used })
  end

let solve ?options ?lo ?hi problem =
  (solve_warm ?options ?lo ?hi (of_problem problem)).Simplex.status
