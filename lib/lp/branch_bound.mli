(** Best-first branch & bound for mixed-integer linear programs, with
    warm-started LP re-solves.

    LP relaxations are solved by {!Simplex}; open nodes are kept in a
    min-heap ordered by relaxation bound so the most promising subtree
    is explored first (this mirrors how [lp_solve]'s branch-and-bound
    behaves on the Wishbone formulations and lets us reproduce the
    paper's Figure 6 "time to discover" vs "time to prove"
    distinction).

    Each node stores the optimal basis of its LP relaxation, and the
    most recently solved nodes additionally keep their final tableau
    ({!Simplex.hot}) alive: a child LP then re-solves by cloning the
    parent tableau and repairing one bound change with a handful of
    dual pivots — no refactorisation at all.  Nodes whose tableau has
    been evicted from the small hot ring fall back to refactorising
    their basis snapshot (once per expansion, shared by both
    children), and from there to a cold two-phase solve.  Disable with
    [warm_start = false] to measure the difference (see
    [bench/lp_micro.ml]).

    LP relaxations run on either the dense tableau ({!Simplex}) or
    the sparse revised simplex ({!Sparse}); [Auto] picks sparse once
    the model has enough rows for the revised machinery to pay for
    itself.  In sparse mode the warm-start vehicle is the basis
    snapshot alone (refactorising one is cheap), so the hot-tableau
    ring stays empty.

    With [workers > 1] the search runs in bulk-synchronous waves: up
    to [workers] open nodes are popped per wave, their children solved
    on concurrent [Domain]s, and the results applied to the frontier
    and incumbent in deterministic batch order — so the search, the
    returned optimum, and every statistic except wall-clock time are a
    pure function of [workers], reproducible run-to-run.  [workers =
    1] reproduces the sequential best-first search verbatim.  Tied
    incumbents are broken lexicographically, keeping the returned
    point stable across exploration schedules.

    Statistics record when the final incumbent was found
    ([time_to_incumbent]) separately from when optimality was proved
    ([time_total]). *)

type lp_solver =
  | Auto  (** sparse for models with >= 48 rows, dense below *)
  | Dense  (** always the dense tableau ({!Simplex}) *)
  | Sparse_revised  (** always the sparse revised simplex ({!Sparse}) *)

type schedule =
  | Wave
      (** bulk-synchronous waves of up to [workers] nodes, applied in
          deterministic batch order: the search and every statistic
          except wall-clock time are a pure function of [workers], and
          [workers = 1] is the sequential search verbatim (default) *)
  | Steal
      (** long-lived worker domains with per-worker best-bound heaps;
          an idle worker steals the globally best open node.  Keeps
          all workers busy on deep uneven trees, at the cost of a
          timing-dependent exploration order — the returned optimum is
          unchanged, but node and pivot counts vary run to run *)

type options = {
  max_nodes : int;
      (** open-node exploration budget — the deterministic {e node
          budget}: it counts work units, not seconds, so a bounded
          run stops at the same node on any machine (the CLI exposes
          it as [--node-budget]) *)
  int_tol : float;  (** how close to integral a relaxed value must be *)
  gap_tol : float;
      (** terminate when (incumbent - bound) / max(1, |incumbent|)
          falls below this; [0.] demands a full proof *)
  time_limit : float;  (** wall-clock seconds; [infinity] = unlimited *)
  pivot_budget : int;
      (** tree-wide simplex pivot budget ([max_int] = unlimited).
          Checked cooperatively at every node boundary and threaded
          into each LP solve as a per-solve pivot cap, so — unlike
          [time_limit] — a budgeted run is a pure function of the
          problem and [workers] (under [Wave]): the same machine-
          independent answer everywhere.  [max_int] leaves every code
          path bit-identical to a build without the budget. *)
  on_node : (nodes:int -> pivots:int -> unit) option;
      (** cooperative checkpoint, called with the deterministic node
          and cumulative-pivot counters before the root solve and
          before each node expansion (in [Steal] mode: by whichever
          worker reaches the scheduler first).  An exception raised
          here aborts the search and propagates to the caller —
          the fault-injection hook of the placement service's
          {!Wishbone.Service.Fault_plan}.  [None] (the default) adds
          no work at all. *)
  warm_start : bool;
      (** start child LPs from the parent's optimal basis (default
          [true]; results are identical either way, only pivot counts
          differ) *)
  workers : int;
      (** concurrent node expansions (default [1] = sequential); under
          [Wave] the optimum returned is deterministic for any fixed
          value *)
  schedule : schedule;  (** node scheduling across workers *)
  solver : lp_solver;  (** LP engine selection (default [Auto]) *)
  simplex : Simplex.options;
}

val default_options : options

type stats = {
  nodes_explored : int;
  lp_solves : int;
  hot_solves : int;
      (** LP solves served by replaying a retained parent tableau
          (subset of [lp_solves]); the rest refactorised a basis
          snapshot or ran cold *)
  total_pivots : int;
      (** simplex pivots summed over every LP solve of the tree *)
  time_to_incumbent : float;
      (** seconds until the returned solution was first discovered *)
  time_total : float;  (** seconds until termination (proof or budget) *)
  proved_optimal : bool;
  best_bound : float;
      (** strongest dual bound at termination, in the problem's own
          direction *)
  incumbent_trace : (float * float) list;
      (** (time, objective) for each incumbent improvement, in
          chronological order *)
  root_basis : Basis.t option;
      (** optimal basis of the root relaxation; feed it back as
          [?root_basis] when re-solving a rescaled instance of the
          same problem (rate search) *)
}

val fractional_var : int_tol:float -> int list -> float array -> int option
(** The integer variable whose value is farthest from any integer
    (ties broken towards the lowest index), or [None] when all are
    within [int_tol] of integrality.  Exposed for testing. *)

type bound_delta = {
  bvar : int;  (** branching variable *)
  bup : bool;  (** [true]: raise [lo.(bvar)]; [false]: lower [hi.(bvar)] *)
  bval : float;
}
(** Open nodes store their bounds delta-encoded: one tightened bound
    per node plus a parent reference, materialised into full arrays
    only when the node is popped for expansion. *)

val materialise :
  lo0:float array ->
  hi0:float array ->
  bound_delta list ->
  float array * float array
(** [materialise ~lo0 ~hi0 deltas] replays a root-to-leaf delta chain
    over the root bounds with plain assignments and returns the
    leaf's [(lo, hi)].  Exposed for testing the round-trip against
    eagerly maintained bound arrays. *)

val solve :
  ?options:options ->
  ?initial:float array ->
  ?root_basis:Basis.t ->
  Problem.t ->
  Solution.status * stats
(** Solves the problem honouring the [integer] markers set through
    {!Problem.add_var}.  Never mutates the problem.

    [initial], when given and feasible, seeds the incumbent before the
    search starts — a valid primal bound that prunes every subtree
    whose relaxation cannot beat it.  [root_basis] warm-starts the
    root relaxation (useful across rate-search steps, where only the
    coefficients scale).  Both are performance hints: they never
    change the returned status or objective. *)
