(** Two-phase primal simplex — plus a dual simplex phase for
    warm-started re-solves — for linear programs with bounded
    variables.

    The implementation is a dense-tableau bounded-variable simplex:
    nonbasic variables rest at either bound, the ratio test allows
    bound flips, and phase 1 drives a full set of artificial variables
    to zero.  Dantzig pricing is used with a Bland's-rule fallback
    after a run of degenerate pivots, which guarantees termination.

    {!solve_warm} additionally accepts a {!Basis.t} snapshot from a
    previous solve of a structurally identical problem: the basis is
    refactorised against the current coefficients and bounds, a
    bounded-variable {e dual} simplex repairs primal infeasibility
    (typically a handful of pivots after a single bound change, as in
    branch & bound), and a final primal pass mops up any residual dual
    infeasibility.  Whenever the warm path cannot be trusted —
    dimension mismatch, singular basis, numerically marginal dual
    pivot, or a post-solve feasibility check failure — it falls back
    to the cold two-phase solve, so warm starts never change results,
    only the work needed to reach them.

    Problem sizes in Wishbone are small (at most a few thousand rows
    after preprocessing), so a dense tableau is both simple and fast
    enough; see DESIGN.md §10. *)

type pricing = Dantzig | Devex

type options = {
  max_pivots : int;  (** total pivot budget across all phases *)
  feas_tol : float;  (** feasibility / integrality of the basis *)
  cost_tol : float;  (** reduced-cost optimality tolerance *)
  degen_window : int;
      (** consecutive non-improving pivots before switching to Bland *)
  pricing : pricing;
      (** entering-variable rule for the {e sparse} revised simplex
          ({!Sparse}): [Devex] (the default) maintains
          reference-framework weights and picks the steepest scaled
          reduced cost, typically halving the pivot count; [Dantzig]
          is the candidate-list largest-coefficient rule.  Both keep
          the Bland's-rule fallback after [degen_window] degenerate
          pivots.  The dense tableau solver always prices Dantzig —
          its per-pivot cost is dominated by the row reduction, not
          the scan — so this option does not change dense results. *)
}

val default_options : options

val solve :
  ?options:options ->
  ?lo:float array ->
  ?hi:float array ->
  Problem.t ->
  Solution.status
(** [solve p] ignores integrality markers and solves the LP
    relaxation.  [lo] / [hi], when given, override the problem's
    variable bounds without mutating it (used by branch & bound).
    Overriding arrays must have length [Problem.n_vars p]. *)

type hot
(** A retained final tableau from a previous optimal solve.  Replaying
    it under new variable bounds skips the refactorisation a
    {!Basis.t} snapshot would need: the clone is a flat copy and the
    bound change a direct right-hand-side update, after which the dual
    simplex repairs the (usually tiny) primal infeasibility.

    A [hot] value is only valid against the {e same} problem — the
    tableau embeds the constraint coefficients — whereas a basis
    snapshot survives uniform coefficient rescales.  Branch & bound
    replays hot tableaus within one tree and falls back to the basis
    snapshot (then to a cold solve) whenever a hot replay is
    unavailable or numerically untrustworthy. *)

type result = {
  status : Solution.status;
  basis : Basis.t option;
      (** the optimal basis, present exactly when [status] is
          [Optimal]; feed it back as [?warm] to re-solve after a bound
          change or a uniform coefficient rescale *)
  hot : hot option;
      (** the final tableau, present when [keep_hot] was set and
          [status] is [Optimal]; feed it back as [?hot] to re-solve
          the same problem under different bounds without
          refactorising.  Costs the tableau's memory (O(m * ncols))
          for as long as the value is retained. *)
  pivots : int;  (** simplex pivots spent, all phases combined *)
  warm_used : bool;
      (** the supplied warm basis or hot tableau was accepted (the
          result may still have required a cold fallback afterwards —
          in that case this is [false] again) *)
  hot_used : bool;
      (** the supplied hot tableau specifically was accepted *)
}

val solve_warm :
  ?options:options ->
  ?warm:Basis.t ->
  ?hot:hot ->
  ?keep_hot:bool ->
  ?lo:float array ->
  ?hi:float array ->
  Problem.t ->
  result
(** Like {!solve} but instrumented: returns the final basis alongside
    the solution and the pivot count, and optionally starts warm.
    [solve_warm ~hot ~lo ~hi p] is the branch & bound hot path: same
    problem, one changed bound, parent tableau in — child optimum out
    in a few dual pivots with no refactorisation.  The start ladder is
    [hot] (tableau replay), then [warm] (snapshot refactorisation),
    then the cold two-phase solve; every rung falls through to the
    next when it cannot be trusted, so warm starts never change
    results. *)

(** {1 Pivot accounting}

    A process-wide pivot counter, accumulated by every solve; the LP
    micro-benchmark reads deltas around whole branch & bound trees and
    rate searches to quantify the warm-start win. *)

val cumulative_pivots : unit -> int
val reset_cumulative_pivots : unit -> unit

val add_pivots : int -> unit
(** Credit externally-performed pivots (the sparse revised simplex
    reports through the same counter).  Atomic: safe from any domain. *)
