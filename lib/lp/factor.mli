(** Basis factorisation for the sparse revised simplex.

    Maintains [B^-1] in product form: an ordered eta file where each
    eta records one pivot (a column [w = B^-1 a_q] entering at row
    [r]).  {!factorize} builds the file from scratch for an arbitrary
    basis by inserting the basis columns one at a time in a
    singleton-first order — column singletons are peeled symbolically
    (the near-triangular part of a network-flow-like basis, which is
    almost all of it), and the small residual bump is pivoted with
    numeric partial pivoting over a dense float64 scratch.  {!update}
    appends one eta per simplex pivot between refactorisations; the
    caller refreshes the factorisation (and its right-hand side) when
    {!updates_since_refresh} passes its cadence.

    Eta values live in a [Bigarray] float64 pool so the hot
    {!ftran}/{!btran} kernels run over flat unboxed memory. *)

type t

val create : m:int -> t
(** Workspace for bases with [m] rows.  The eta pool grows on demand. *)

val m : t -> int

val set_identity : t -> unit
(** Reset to [B = I] (the all-artificial start): an empty eta file. *)

val factorize :
  t -> basis:int array -> ptr:int array -> idx:int array -> vs:float array ->
  bool
(** [factorize f ~basis ~ptr ~idx ~vs] rebuilds the factorisation for
    the basis formed by columns [basis] of the CSC matrix
    ([ptr]/[idx]/[vs], column [j] spanning [ptr.(j) .. ptr.(j+1)-1]).
    [basis] is treated as a {e set}: on success it is permuted in
    place so that [basis.(r)] is the column pivoted at row [r] — the
    caller must rebuild its row map and basic values afterwards.
    Returns [false] when the basis is numerically singular (the eta
    file is left empty; fall back to a cold or dense solve). *)

val ftran : t -> float array -> unit
(** [ftran f x] overwrites the dense vector [x] with [B^-1 x]. *)

val btran : t -> float array -> unit
(** [btran f y] overwrites the dense vector [y] with [B^-T y]. *)

val update : t -> w:float array -> r:int -> unit
(** [update f ~w ~r] appends the eta for a simplex pivot: entering
    column with FTRAN image [w] replaces the basic variable of row
    [r].  [w.(r)] must be the (nonzero) pivot element; the caller is
    responsible for rejecting numerically marginal pivots first. *)

val updates_since_refresh : t -> int
(** Etas appended by {!update} since the last {!factorize} /
    {!set_identity}; the refresh cadence trigger. *)

val eta_entries : t -> int
(** Total off-diagonal entries in the eta file (diagnostic). *)
