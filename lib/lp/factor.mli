(** Basis factorisation for the sparse revised simplex.

    Maintains a sparse LU factorisation [B = L U] with Forrest–Tomlin
    updates between refactorisations.  {!factorize} builds L and U
    from scratch for an arbitrary basis: column singletons are peeled
    symbolically (the near-triangular part of a network-flow-like
    basis, which is almost all of it), and the small residual bump is
    pivoted numerically with a Markowitz-style rule — among rows whose
    magnitude is within a fixed fraction of the column maximum, prefer
    the sparsest row.  {!update} performs one Forrest–Tomlin update
    per simplex pivot: the entering column's spike [U w] replaces the
    leaving column of U, the leaving position is rotated to the back,
    and the exposed row is eliminated into a compact row eta.  A
    refactorisation is {e stability-triggered}: {!needs_refresh} fires
    when an update produced a dangerously small new diagonal (relative
    to its spike) rather than on a fixed update count, with a generous
    cost/size cap as backstop.

    L-eta, U-column and row-eta values live in [Bigarray] float64
    pools so the hot {!ftran}/{!btran} kernels run over flat unboxed
    memory.  The row permutation is kept implicit: position [p] of U
    pivots row [porder.(p)], so no vectors are ever physically
    permuted. *)

type t

val create : m:int -> t
(** Workspace for bases with [m] rows.  All pools grow on demand. *)

val m : t -> int

val set_identity : t -> unit
(** Reset to [B = I] (the all-artificial start): empty L, identity U. *)

val factorize :
  t -> basis:int array -> ptr:int array -> idx:int array -> vs:float array ->
  bool
(** [factorize f ~basis ~ptr ~idx ~vs] rebuilds the factorisation for
    the basis formed by columns [basis] of the CSC matrix
    ([ptr]/[idx]/[vs], column [j] spanning [ptr.(j) .. ptr.(j+1)-1]).
    [basis] is treated as a {e set}: on success it is permuted in
    place so that [basis.(r)] is the column pivoted at row [r] — the
    caller must rebuild its row map and basic values afterwards.
    Returns [false] when the basis is numerically singular (the
    factorisation is reset to identity; fall back to a cold or dense
    solve). *)

val ftran : t -> float array -> unit
(** [ftran f x] overwrites the dense vector [x] with [B^-1 x]. *)

val btran : t -> float array -> unit
(** [btran f y] overwrites the dense vector [y] with [B^-T y]. *)

val update : t -> w:float array -> r:int -> unit
(** [update f ~w ~r] performs the Forrest–Tomlin update for a simplex
    pivot: entering column with FTRAN image [w] replaces the basic
    variable of row [r].  [w.(r)] must be the (nonzero) pivot element;
    the caller is responsible for rejecting numerically marginal
    pivots first.  If the update leaves a new diagonal that is tiny
    relative to its spike, the factorisation is flagged unstable and
    {!needs_refresh} returns [true]; the caller should refactorise
    before relying on further solves. *)

val needs_refresh : t -> bool
(** The stability trigger: [true] after an {!update} produced a
    numerically marginal diagonal, or when the accumulated update
    count / fill passes a generous cost cap.  Callers refactorise
    (and rebuild their right-hand side) when this fires. *)

val updates_since_refresh : t -> int
(** Forrest–Tomlin updates applied since the last {!factorize} /
    {!set_identity} (diagnostic). *)

val eta_entries : t -> int
(** Total stored entries — L multipliers, U off-diagonals and
    Forrest–Tomlin row-eta entries (diagnostic). *)

val ft_entries : t -> int
(** Row-eta entries accumulated by {!update} since the last
    refactorisation (diagnostic). *)

type snapshot
(** A saved copy of a factorisation's L/U/eta state.  Saving right
    after {!factorize} and restoring later replays the {e identical}
    factorisation without redoing the symbolic and numeric work —
    an O(entries) blit instead of an O(flops) rebuild.  The branch &
    bound warm path uses this to solve both children of a node from
    the same parent basis with a single refactorisation. *)

val snapshot_create : m:int -> snapshot
(** An empty snapshot buffer for bases with [m] rows; buffers grow on
    demand across {!save} calls. *)

val save : t -> snapshot -> unit
(** Copy the current factorisation state into the snapshot buffer. *)

val restore : snapshot -> t -> unit
(** Overwrite [t]'s factorisation state from the snapshot.  [t] must
    have the same [m] the snapshot was saved from.  Scratch state
    (generation stamps) is untouched, so a restore is safe at any
    point between solves. *)
