(** Simplex basis snapshots: the information needed to warm-start a
    bounded-variable simplex re-solve (see {!Simplex.solve_warm}).

    A snapshot records, for the tableau of a particular problem
    instance, which column is basic in each row and at which bound
    every nonbasic column rests.  It is valid for any problem with the
    same constraint/column structure — in particular for the same
    problem under different variable bounds (branch & bound children)
    or with uniformly rescaled coefficients (rate-search steps): the
    restoring solver refactorises the basis against the current
    coefficients, so only the {e structure} must match. *)

type cstat = At_lower | At_upper | Basic

type t = {
  rows : int array;  (** row index -> column basic in that row *)
  stat : cstat array;
      (** per tableau column (structural + slack + artificial) *)
}

val n_rows : t -> int
val n_cols : t -> int
val copy : t -> t

val compatible : t -> rows:int -> cols:int -> bool
(** Whether the snapshot can seed a tableau of [rows] x [cols]:
    dimensions match and every recorded basic column is in range. *)

val equal : t -> t -> bool
(** Structural equality: same basic column per row and same resting
    bound per column.  Two equal snapshots warm-start a re-solve
    identically, so caches (the placement service) may replace one
    with the other. *)

val digest : t -> string
(** Hex digest of the snapshot's canonical serialisation.  [equal a b]
    iff [digest a = digest b]; used by snapshot caches to key and
    cross-check stored bases without retaining a structural copy. *)
