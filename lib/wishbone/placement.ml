open Dataflow

type encoding = General | Restricted

module Topology = struct
  (* A rooted tier tree as a parent array.  Tiers are numbered so that
     every tier's parent has a strictly larger index; the last tier is
     the root (parent -1).  Tree edge [k] is the uplink of tier [k]
     (k < root), so a chain of [n] tiers keeps the historical link
     numbering: link k connects tier k to tier k+1. *)
  type t = { parents : int array; children : int list array }

  let of_parents parr =
    let n = Array.length parr in
    if n < 2 then
      invalid_arg "Placement.Topology.of_parents: need at least two tiers";
    Array.iteri
      (fun k p ->
        if k = n - 1 then begin
          if p <> -1 then
            invalid_arg
              "Placement.Topology.of_parents: the last tier is the root and \
               must have parent -1"
        end
        else if p <= k || p > n - 1 then
          invalid_arg
            (Printf.sprintf
               "Placement.Topology.of_parents: tier %d needs a parent with a \
                larger index (topological numbering)"
               k))
      parr;
    let parents = Array.copy parr in
    let children = Array.make n [] in
    for k = n - 2 downto 0 do
      children.(parents.(k)) <- k :: children.(parents.(k))
    done;
    { parents; children }

  let chain n =
    of_parents (Array.init n (fun k -> if k = n - 1 then -1 else k + 1))

  let n_tiers t = Array.length t.parents
  let root t = Array.length t.parents - 1
  let parent t k = t.parents.(k)
  let parents t = Array.copy t.parents
  let children t k = t.children.(k)

  let is_chain t =
    let n = Array.length t.parents in
    let ok = ref true in
    for k = 0 to n - 2 do
      if t.parents.(k) <> k + 1 then ok := false
    done;
    !ok

  (* [anc] is [tier] itself or one of its ancestors *)
  let ancestor_or_self t ~anc tier =
    let rec up x = x = anc || (t.parents.(x) <> -1 && up t.parents.(x)) in
    up tier

  (* tree edge [e] (the uplink of tier [e]) lies on the root path of
     [tier], i.e. [tier] sits in the subtree hanging below [e].  For a
     chain this is [e >= tier]. *)
  let on_root_path t e tier = ancestor_or_self t ~anc:e tier
  let equal a b = a.parents = b.parents

  let pp ppf t =
    Format.fprintf ppf "[%s]"
      (String.concat ";"
         (Array.to_list (Array.map string_of_int t.parents)))
end

type resource = { rname : string; per_op : float array; budget : float }

type tier = {
  tname : string;
  cpu : float array;
  cpu_budget : float;
  alpha : float;
}

type link = { lname : string; net_budget : float; beta : float }

type t = {
  spec : Spec.t;
  tiers : tier array;
  links : link array;
  topology : Topology.t;
  tier_pins : int option array;
}

let v ?topology ?(pins = []) ~spec ~tiers ~links () =
  let tiers = Array.of_list tiers and links = Array.of_list links in
  let n = Graph.n_ops spec.Spec.graph in
  if Array.length tiers < 2 then
    invalid_arg "Placement.v: need at least two tiers";
  if Array.length links <> Array.length tiers - 1 then
    invalid_arg "Placement.v: need exactly one link between consecutive tiers";
  let topology =
    match topology with
    | None -> Topology.chain (Array.length tiers)
    | Some topo ->
        if Topology.n_tiers topo <> Array.length tiers then
          invalid_arg
            "Placement.v: topology tier count does not match the tier list";
        topo
  in
  Array.iter
    (fun t ->
      if Array.length t.cpu <> n then
        invalid_arg
          (Printf.sprintf "Placement.v: tier %s has %d CPU costs for %d ops"
             t.tname (Array.length t.cpu) n))
    tiers;
  if tiers.(0).cpu <> spec.Spec.cpu then
    invalid_arg "Placement.v: tier 0 CPU costs must equal the spec's";
  let tier_pins = Array.make n None in
  List.iter
    (fun (op, tp) ->
      if op < 0 || op >= n then
        invalid_arg "Placement.v: tier pin names an unknown operator";
      if tp < 0 || tp >= Array.length tiers then
        invalid_arg "Placement.v: tier pin names an unknown tier";
      (match tier_pins.(op) with
      | Some tp' when tp' <> tp ->
          invalid_arg "Placement.v: conflicting tier pins for one operator"
      | _ -> ());
      tier_pins.(op) <- Some tp)
    pins;
  { spec; tiers; links; topology; tier_pins }

let of_spec (spec : Spec.t) =
  let n = Graph.n_ops spec.Spec.graph in
  {
    spec;
    tiers =
      [|
        {
          tname = "node";
          cpu = spec.Spec.cpu;
          cpu_budget = spec.Spec.cpu_budget;
          alpha = spec.Spec.alpha;
        };
        {
          tname = "server";
          cpu = Array.make n 0.;
          cpu_budget = infinity;
          alpha = 0.;
        };
      |];
    links =
      [|
        {
          lname = "radio";
          net_budget = spec.Spec.net_budget;
          beta = spec.Spec.beta;
        };
      |];
    topology = Topology.chain 2;
    tier_pins = Array.make n None;
  }

let n_tiers t = Array.length t.tiers

let scale_rate t factor =
  {
    t with
    spec = Spec.scale_rate t.spec factor;
    tiers =
      Array.map
        (fun tier -> { tier with cpu = Array.map (( *. ) factor) tier.cpu })
        t.tiers;
  }

type encoded = {
  problem : Lp.Problem.t;
  level_var : int array array;
  edge_vars : (int * int * int * int * int) array;
  encoding : encoding;
  topology : Topology.t;
}

(* Budget clamping (numerical scaling, not semantics): a vacuous budget
   is replaced by the total cost it bounds plus one — the same feasible
   region with far better-conditioned rows. *)
let clamp budget costs = Float.min budget (Array.fold_left ( +. ) 1. costs)

let encode ?(resources = []) encoding t (c : Preprocess.contracted) =
  let n_tiers = Array.length t.tiers in
  let levels = n_tiers - 1 in
  let p = Lp.Problem.create () in
  (* per-supernode CPU sums; tier 0 reuses the contraction's own sums
     so the two-tier instance is bit-identical to the historical
     encoder *)
  let super_cpu =
    Array.init n_tiers (fun tp ->
        if tp = 0 then c.Preprocess.cpu
        else
          Array.map
            (fun members ->
              List.fold_left
                (fun acc i -> acc +. t.tiers.(tp).cpu.(i))
                0. members)
            c.Preprocess.members)
  in
  let total_bw =
    Array.fold_left (fun acc (_, _, r) -> acc +. r) 1. c.Preprocess.edges
  in
  let topo = t.topology in
  let root = Topology.root topo in
  (* per-supernode tier pin: every member must agree (contraction is
     bypassed whenever tier pins are present, so in practice each
     supernode is a single operator here) *)
  let pin_of_super =
    Array.map
      (fun members ->
        List.fold_left
          (fun acc i ->
            match (t.tier_pins.(i), acc) with
            | None, acc -> acc
            | Some tp, None -> Some tp
            | Some tp, Some tp' ->
                if tp <> tp' then
                  invalid_arg
                    "Placement.encode: contraction merged operators with \
                     conflicting tier pins";
                acc)
          None members)
      c.Preprocess.members
  in
  (* level binaries d_k(s): "[s] sits in the subtree below tree edge k"
     (for a chain: tier(s) <= k, the historical meaning), k-major;
     pinning via bounds, eq. (1) — a pinned supernode fixes d_k = 1 on
     its tier's root path and 0 elsewhere *)
  let bounds s k =
    let pin_tier =
      match pin_of_super.(s) with
      | Some tp -> Some tp
      | None -> (
          match c.Preprocess.placement.(s) with
          | Movable.Pin_node -> Some 0
          | Movable.Pin_server -> Some root
          | Movable.Movable -> None)
    in
    match pin_tier with
    | Some tp -> if Topology.on_root_path topo k tp then (1., 1.) else (0., 0.)
    | None -> (0., 1.)
  in
  let level_var =
    Array.init levels (fun k ->
        Array.init c.Preprocess.n_super (fun s ->
            let lo, hi = bounds s k in
            Lp.Problem.add_var
              ~name:(Printf.sprintf "d%d_%d" k s)
              ~lo ~hi ~integer:true p))
  in
  (* objective coefficients accumulate per level variable *)
  let obj = Array.make (levels * c.Preprocess.n_super) 0. in
  (* tier p's occupancy is d_uplink(p) - sum_children(p) d_c (the root
     has an implicit uplink fixed at 1; for a chain: d_p - d_(p-1));
     its alpha-weighted CPU load lands on those variables.  The root
     tier's constant term (alpha_root * total cost) cannot live in an
     LP objective; [solve] reports the true objective recomputed from
     the assignment, so nothing is lost.  [of_spec] has alpha = 0 above
     tier 0, making the encoded objective exactly eq. (5). *)
  for tp = 0 to n_tiers - 1 do
    let a = t.tiers.(tp).alpha in
    if a <> 0. then
      Array.iteri
        (fun s cost ->
          if tp <> root then
            obj.(level_var.(tp).(s)) <- obj.(level_var.(tp).(s)) +. (a *. cost);
          List.iter
            (fun ch ->
              obj.(level_var.(ch).(s)) <-
                obj.(level_var.(ch).(s)) -. (a *. cost))
            (Topology.children topo tp))
        super_cpu.(tp)
  done;
  (* subtree consistency: membership below a tier's uplink dominates
     the sum of memberships below its child edges,
     d_uplink(p) - sum_children(p) d_c >= 0 (the child subtrees are
     disjoint, so the sum also enforces "at most one").  For a chain
     this is exactly the historical level ordering d_k <= d_(k+1)
     (vacuous with two tiers); a multi-child root gets the same
     disjointness as sum_children(root) d_c <= 1. *)
  for s = 0 to c.Preprocess.n_super - 1 do
    for tp = 1 to n_tiers - 2 do
      match Topology.children topo tp with
      | [] -> ()
      | chs ->
          Lp.Problem.add_constr p
            ((level_var.(tp).(s), 1.)
            :: List.map (fun ch -> (level_var.(ch).(s), -1.)) chs)
            Lp.Problem.Ge 0.
    done;
    match Topology.children topo root with
    | [] | [ _ ] -> ()
    | chs ->
        Lp.Problem.add_constr p
          (List.map (fun ch -> (level_var.(ch).(s), 1.)) chs)
          Lp.Problem.Le 1.
  done;
  (* budgeted tier CPU rows, eq. (2) per tier: occupancy of tier p is
     d_uplink(p) - sum_children(p) d_c, root occupancy is
     1 - sum_children(root) d_c *)
  for tp = 0 to n_tiers - 1 do
    let budget = t.tiers.(tp).cpu_budget in
    if Float.is_finite budget then begin
      let name = Printf.sprintf "cpu_%s" t.tiers.(tp).tname in
      if tp = root then
        Lp.Problem.add_constr ~name p
          (List.concat
             (Array.to_list
                (Array.mapi
                   (fun s cost ->
                     List.map
                       (fun ch -> (level_var.(ch).(s), -.cost))
                       (Topology.children topo root))
                   super_cpu.(tp))))
          Lp.Problem.Le
          (budget -. Array.fold_left ( +. ) 0. super_cpu.(tp))
      else
        match Topology.children topo tp with
        | [] ->
            (* leaf tier: occupancy is d_uplink alone (tier 0 of a
               chain is the historical case) *)
            Lp.Problem.add_constr ~name p
              (Array.to_list
                 (Array.mapi
                    (fun s cost -> (level_var.(tp).(s), cost))
                    super_cpu.(tp)))
              Lp.Problem.Le
              (clamp budget super_cpu.(tp))
        | chs ->
            Lp.Problem.add_constr ~name p
              (List.concat
                 (Array.to_list
                    (Array.mapi
                       (fun s cost ->
                         (level_var.(tp).(s), cost)
                         :: List.map
                              (fun ch -> (level_var.(ch).(s), -.cost))
                              chs)
                       super_cpu.(tp))))
              Lp.Problem.Le
              (clamp budget super_cpu.(tp))
    end
  done;
  (* per-edge rows; link k is crossed when d_k differs across the edge *)
  let net_terms = Array.make levels [] in
  let edge_vars = ref [] in
  (match encoding with
  | Restricted ->
      (* eq. (6) per level: d_k(u) >= d_k(v); eq. (7): each link's load
         telescopes to sum r (d_k(u) - d_k(v)) *)
      Array.iter
        (fun (u, v, r) ->
          for k = 0 to levels - 1 do
            Lp.Problem.add_constr
              ~name:(Printf.sprintf "dir%d_%d_%d" k u v)
              p
              [ (level_var.(k).(u), 1.); (level_var.(k).(v), -1.) ]
              Lp.Problem.Ge 0.;
            let b = t.links.(k).beta in
            obj.(level_var.(k).(u)) <- obj.(level_var.(k).(u)) +. (b *. r);
            obj.(level_var.(k).(v)) <- obj.(level_var.(k).(v)) -. (b *. r);
            net_terms.(k) <-
              (level_var.(k).(u), r)
              :: (level_var.(k).(v), -.r)
              :: net_terms.(k)
          done)
        c.Preprocess.edges
  | General ->
      (* eq. (3) per level: e >= d_k(v) - d_k(u), e' >= d_k(u) - d_k(v) *)
      Array.iter
        (fun (u, v, r) ->
          for k = 0 to levels - 1 do
            let e =
              Lp.Problem.add_var ~name:(Printf.sprintf "e%d_%d_%d" k u v) p
            in
            let e' =
              Lp.Problem.add_var ~name:(Printf.sprintf "e'%d_%d_%d" k u v) p
            in
            Lp.Problem.add_constr p
              [ (level_var.(k).(u), 1.); (level_var.(k).(v), -1.); (e, 1.) ]
              Lp.Problem.Ge 0.;
            Lp.Problem.add_constr p
              [ (level_var.(k).(v), 1.); (level_var.(k).(u), -1.); (e', 1.) ]
              Lp.Problem.Ge 0.;
            edge_vars := (k, u, v, e, e') :: !edge_vars;
            net_terms.(k) <- (e, r) :: (e', r) :: net_terms.(k)
          done)
        c.Preprocess.edges);
  (* link bandwidth rows, eq. (4) per link *)
  for k = 0 to levels - 1 do
    if Float.is_finite t.links.(k).net_budget then
      Lp.Problem.add_constr
        ~name:(Printf.sprintf "net_%s" t.links.(k).lname)
        p net_terms.(k) Lp.Problem.Le
        (Float.min t.links.(k).net_budget total_bw)
  done;
  (* optional resource rows: consumed on tier 0 *)
  let n_orig = Graph.n_ops t.spec.Spec.graph in
  List.iter
    (fun r ->
      if Array.length r.per_op <> n_orig then
        (* the historical message: callers reach this through the
           [Ilp.encode] facade and its tests pin the string *)
        invalid_arg
          (Printf.sprintf "Ilp.encode: resource %s has wrong length" r.rname);
      let terms =
        Array.to_list
          (Array.mapi
             (fun s members ->
               let cost =
                 List.fold_left (fun acc i -> acc +. r.per_op.(i)) 0. members
               in
               (level_var.(0).(s), cost))
             c.Preprocess.members)
      in
      let total = Array.fold_left ( +. ) 1. r.per_op in
      Lp.Problem.add_constr ~name:r.rname p terms Lp.Problem.Le
        (Float.min r.budget total))
    resources;
  (* objective, eq. (5) generalised *)
  let obj_terms =
    let base = ref [] in
    Array.iteri
      (fun var coef -> if coef <> 0. then base := (var, coef) :: !base)
      obj;
    (match encoding with
    | Restricted -> ()
    | General ->
        (* the e/e' variables carry each link's network cost directly *)
        for k = 0 to levels - 1 do
          List.iter
            (fun (var, r) ->
              if r <> 0. then base := (var, t.links.(k).beta *. r) :: !base)
            net_terms.(k)
        done);
    !base
  in
  Lp.Problem.set_objective p Lp.Problem.Minimize obj_terms;
  {
    problem = p;
    level_var;
    encoding;
    edge_vars = Array.of_list (List.rev !edge_vars);
    topology = topo;
  }

let super_tiers enc (c : Preprocess.contracted) (sol : Lp.Solution.t) =
  let levels = Array.length enc.level_var in
  if Topology.is_chain enc.topology then
    (* the historical chain decode: smallest k with d_k set *)
    Array.init c.Preprocess.n_super (fun s ->
        let rec find k =
          if k >= levels then levels
          else if sol.Lp.Solution.x.(enc.level_var.(k).(s)) >= 0.5 then k
          else find (k + 1)
        in
        find 0)
  else
    (* tree decode: from the root, descend into the unique child
       subtree the supernode is a member of *)
    Array.init c.Preprocess.n_super (fun s ->
        let rec descend tier =
          match
            List.find_opt
              (fun ch -> sol.Lp.Solution.x.(enc.level_var.(ch).(s)) >= 0.5)
              (Topology.children enc.topology tier)
          with
          | Some ch -> descend ch
          | None -> tier
        in
        descend (Topology.root enc.topology))

let tiers_of_solution enc (c : Preprocess.contracted) sol =
  let st = super_tiers enc c sol in
  Array.map (fun s -> st.(s)) c.Preprocess.super_of

let initial_point enc (c : Preprocess.contracted) (tier_of : int array) =
  if Array.length tier_of <> Array.length c.Preprocess.super_of then None
  else begin
    let levels = Array.length enc.level_var in
    let x = Array.make (Lp.Problem.n_vars enc.problem) 0. in
    (* every member of a supernode must sit on the same tier, or the
       assignment does not survive the contraction *)
    let consistent = ref true in
    Array.iteri
      (fun s members ->
        match members with
        | [] -> ()
        | first :: rest ->
            let tier = tier_of.(first) in
            if List.exists (fun i -> tier_of.(i) <> tier) rest then
              consistent := false
            else
              for k = 0 to levels - 1 do
                if Topology.on_root_path enc.topology k tier then
                  x.(enc.level_var.(k).(s)) <- 1.
              done)
      c.Preprocess.members;
    if not !consistent then None
    else begin
      (* general encoding: crossing variables at their minimal values *)
      Array.iter
        (fun (k, u, v, e, e') ->
          let du = x.(enc.level_var.(k).(u))
          and dv = x.(enc.level_var.(k).(v)) in
          x.(e) <- Float.max 0. (dv -. du);
          x.(e') <- Float.max 0. (du -. dv))
        enc.edge_vars;
      Some x
    end
  end

let stats t ~tier_of =
  let n_tiers = Array.length t.tiers in
  let tier_cpu = Array.make n_tiers 0. in
  Array.iteri
    (fun i tp -> tier_cpu.(tp) <- tier_cpu.(tp) +. t.tiers.(tp).cpu.(i))
    tier_of;
  let link_net = Array.make (n_tiers - 1) 0. in
  (* tree edge k carries a dataflow edge iff exactly one endpoint lies
     in the subtree below k; for a chain this is the historical
     lo <= k < hi band, accumulated in the same order *)
  let on_path =
    Array.init n_tiers (fun tier ->
        Array.init (n_tiers - 1) (fun k ->
            Topology.on_root_path t.topology k tier))
  in
  Array.iter
    (fun (e : Graph.edge) ->
      let su = on_path.(tier_of.(e.src)) and sv = on_path.(tier_of.(e.dst)) in
      for k = 0 to n_tiers - 2 do
        if su.(k) <> sv.(k) then
          link_net.(k) <- link_net.(k) +. t.spec.Spec.bandwidth.(e.eid)
      done)
    (Graph.edges t.spec.Spec.graph);
  (tier_cpu, link_net)

let objective_value t ~tier_of =
  let tier_cpu, link_net = stats t ~tier_of in
  let obj = ref 0. in
  Array.iteri (fun tp c -> obj := !obj +. (t.tiers.(tp).alpha *. c)) tier_cpu;
  Array.iteri (fun k n -> obj := !obj +. (t.links.(k).beta *. n)) link_net;
  !obj

let feasible ?(require_monotone = true) (t : t) ~tier_of =
  let top = Topology.root t.topology in
  let pin_ok =
    let ok = ref true in
    Array.iteri
      (fun i tier ->
        let want =
          match t.tier_pins.(i) with
          | Some tp -> Some tp
          | None -> (
              match t.spec.Spec.placement.(i) with
              | Movable.Pin_node -> Some 0
              | Movable.Pin_server -> Some top
              | Movable.Movable -> None)
        in
        match want with Some tp when tier <> tp -> ok := false | _ -> ())
      tier_of;
    !ok
  in
  (* monotone descent along the tree: data flows rootward, so the
     destination tier must be the source tier or one of its ancestors
     (for a chain: src <= dst) *)
  let monotone =
    Array.for_all
      (fun (e : Graph.edge) ->
        Topology.ancestor_or_self t.topology ~anc:tier_of.(e.dst)
          tier_of.(e.src))
      (Graph.edges t.spec.Spec.graph)
  in
  let tier_cpu, link_net = stats t ~tier_of in
  let cpu_ok =
    Array.for_all2
      (fun (tier : tier) c ->
        (not (Float.is_finite tier.cpu_budget))
        || c <= tier.cpu_budget +. 1e-9)
      t.tiers tier_cpu
  in
  let net_ok =
    Array.for_all2
      (fun (l : link) n ->
        (not (Float.is_finite l.net_budget)) || n <= l.net_budget +. 1e-6)
      t.links link_net
  in
  pin_ok && ((not require_monotone) || monotone) && cpu_ok && net_ok

type report = {
  tier_of : int array;
  tier_cpu : float array;
  link_net : float array;
  objective : float;
  solver : Lp.Branch_bound.stats;
  supernodes : int;
  movable_supernodes : int;
  encoding : encoding;
  preprocessed : bool;
}

type outcome =
  | Partitioned of report
  | No_feasible_partition
  | Solver_failure of string

let solve ?(encoding = Restricted) ?(preprocess = true) ?options
    ?(resources = []) ?initial ?root_basis t =
  (* contraction's dominance argument needs monotone descent (§2.1.2),
     so under the general encoding the uncontracted graph is solved —
     the PR 2 fuzz-oracle finding, preserved across the refactor.
     Tier pins also bypass contraction: a merged supernode cannot honor
     a pin on one member only. *)
  let c =
    if
      preprocess && encoding = Restricted
      && Array.for_all (fun p -> p = None) t.tier_pins
    then Preprocess.contract t.spec
    else Preprocess.identity t.spec
  in
  let enc = encode ~resources encoding t c in
  let initial = Option.bind initial (fun a -> initial_point enc c a) in
  let status, solver_stats =
    Lp.Branch_bound.solve ?options ?initial ?root_basis enc.problem
  in
  match status with
  | Lp.Solution.Optimal sol ->
      let tier_of = tiers_of_solution enc c sol in
      let require_monotone = encoding = Restricted in
      if not (feasible ~require_monotone t ~tier_of) then
        Solver_failure
          "internal error: ILP solution violates the original constraints"
      else
        let tier_cpu, link_net = stats t ~tier_of in
        Partitioned
          {
            tier_of;
            tier_cpu;
            link_net;
            objective = objective_value t ~tier_of;
            solver = solver_stats;
            supernodes = c.Preprocess.n_super;
            movable_supernodes = Movable.movable_count c.Preprocess.placement;
            encoding;
            preprocessed = preprocess;
          }
  | Lp.Solution.Infeasible -> No_feasible_partition
  | Lp.Solution.Unbounded ->
      Solver_failure "partitioning ILP unbounded (bad cost data?)"
  | Lp.Solution.Iteration_limit -> Solver_failure "solver budget exhausted"

let pp_report graph t ppf r =
  let counts = Array.make (Array.length t.tiers) 0 in
  Array.iter (fun tp -> counts.(tp) <- counts.(tp) + 1) r.tier_of;
  let enc =
    match r.encoding with Restricted -> "restricted" | General -> "general"
  in
  Format.fprintf ppf "@[<v>placement:";
  Array.iteri
    (fun tp (tier : tier) ->
      Format.fprintf ppf "@,  %-12s %3d ops, CPU %.1f%%%s" tier.tname
        counts.(tp)
        (100. *. r.tier_cpu.(tp))
        (if tp < Array.length t.links then
           Printf.sprintf ", downlink %.1f B/s" r.link_net.(tp)
         else ""))
    t.tiers;
  Format.fprintf ppf
    "@,objective %g, %d supernodes (%d movable), %s encoding%s@,\
     solver: %d nodes, %d LPs, %.3fs (proved=%b)@,ops by tier: %s@]"
    r.objective r.supernodes r.movable_supernodes enc
    (if r.preprocessed then " (preprocessed)" else "")
    r.solver.Lp.Branch_bound.nodes_explored
    r.solver.Lp.Branch_bound.lp_solves r.solver.Lp.Branch_bound.time_total
    r.solver.Lp.Branch_bound.proved_optimal
    (String.concat "; "
       (Array.to_list
          (Array.mapi
             (fun tp (tier : tier) ->
               let ops =
                 List.filteri (fun i _ -> r.tier_of.(i) = tp)
                   (List.init (Array.length r.tier_of) Fun.id)
               in
               Printf.sprintf "%s=%s" tier.tname
                 (String.concat ","
                    (List.map
                       (fun i -> (Graph.op graph i).Op.name)
                       ops)))
             t.tiers)))
