type comparison = {
  predicted_cpu : float;
  measured_cpu : float;
  predicted_net : float;
  measured_net : float;
  result : Netsim.Testbed.result;
}

let run ~config ~sources ~spec ~assignment =
  let predicted_cpu, predicted_net = Spec.cut_stats spec ~node_side:assignment in
  let result =
    Netsim.Testbed.run config ~graph:spec.Spec.graph
      ~node_of:(fun i -> assignment.(i))
      ~sources
  in
  {
    predicted_cpu;
    measured_cpu = result.node_busy_fraction;
    predicted_net;
    measured_net = result.offered_bytes_per_sec;
    result;
  }

type tier_comparison = {
  predicted_tier_cpu : float array;
  predicted_link_net : float array;
  offered_elems : int array;
  offered_bytes : int array;
  link_dropped : int array;
  link_drop_counts : int array array;
  sink_outputs : int;
}

let run_tiers ?n_nodes ?links ?(rounds = 100) ~placement ~tier_of ~sources ()
    =
  let predicted_tier_cpu, predicted_link_net =
    Placement.stats placement ~tier_of
  in
  let mr =
    Runtime.Multirun.create ?n_nodes ?links
      ~parents:(Placement.Topology.parents placement.Placement.topology)
      ~n_tiers:(Placement.n_tiers placement)
      ~tier_of:(fun i -> tier_of.(i))
      placement.Placement.spec.Spec.graph
  in
  let sinks = ref 0 in
  for seq = 0 to rounds - 1 do
    List.iter
      (fun (source, gen) ->
        (* tier-0 sources fire on every node replica; sources placed on
           another leaf of a tier tree have a single engine *)
        let replicas =
          if tier_of.(source) = 0 then Runtime.Multirun.n_nodes mr else 1
        in
        for node = 0 to replicas - 1 do
          sinks :=
            !sinks
            + List.length
                (Runtime.Multirun.inject ~node mr ~source (gen ~node ~seq))
        done)
      sources
  done;
  sinks := !sinks + List.length (Runtime.Multirun.drain mr);
  let n_links = Placement.n_tiers placement - 1 in
  {
    predicted_tier_cpu;
    predicted_link_net;
    offered_elems =
      Array.init n_links (fun k -> fst (Runtime.Multirun.link_traffic mr k));
    offered_bytes =
      Array.init n_links (fun k -> snd (Runtime.Multirun.link_traffic mr k));
    link_dropped = Array.init n_links (Runtime.Multirun.link_dropped mr);
    link_drop_counts =
      Array.init n_links (Runtime.Multirun.link_drop_counts mr);
    sink_outputs = !sinks;
  }
