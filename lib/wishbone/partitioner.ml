type report = {
  assignment : bool array;
  cpu : float;
  net : float;
  objective : float;
  solver : Lp.Branch_bound.stats;
  supernodes : int;
  movable_supernodes : int;
  encoding : Ilp.encoding;
  preprocessed : bool;
}

type outcome =
  | Partitioned of report
  | No_feasible_partition
  | Solver_failure of string

(* Convert a two-tier placement report back into this module's
   vocabulary: tier 0 = node.  The stats are recomputed against the
   spec (not copied from the report) so that [cpu]/[net]/[objective]
   keep their historical float-for-float values. *)
let report_of_placement spec (r : Placement.report) =
  let assignment = Array.map (fun tier -> tier = 0) r.Placement.tier_of in
  let cpu, net = Spec.cut_stats spec ~node_side:assignment in
  {
    assignment;
    cpu;
    net;
    objective = Spec.objective_value spec ~node_side:assignment;
    solver = r.Placement.solver;
    supernodes = r.Placement.supernodes;
    movable_supernodes = r.Placement.movable_supernodes;
    encoding = r.Placement.encoding;
    preprocessed = r.Placement.preprocessed;
  }

let solve ?encoding ?preprocess ?options ?resources ?initial ?root_basis spec =
  (* the two-way cut is the two-tier instance of the generic placement
     core; everything — contraction policy (the general encoding must
     solve uncontracted, the PR 2 finding), warm starts, verification —
     happens there *)
  let initial =
    Option.map (Array.map (fun on_node -> if on_node then 0 else 1)) initial
  in
  match
    Placement.solve ?encoding ?preprocess ?options ?resources ?initial
      ?root_basis (Placement.of_spec spec)
  with
  | Placement.Partitioned r -> Partitioned (report_of_placement spec r)
  | Placement.No_feasible_partition -> No_feasible_partition
  | Placement.Solver_failure msg -> Solver_failure msg

let brute_force ?(max_movable = 20) spec =
  let n = Array.length spec.Spec.placement in
  let movable =
    List.filter
      (fun i -> spec.Spec.placement.(i) = Movable.Movable)
      (List.init n Fun.id)
  in
  let m = List.length movable in
  if m > max_movable then
    invalid_arg "Partitioner.brute_force: too many movable operators";
  let movable = Array.of_list movable in
  let best = ref None in
  let assignment = Array.make n false in
  Array.iteri
    (fun i p -> assignment.(i) <- p = Movable.Pin_node)
    spec.Spec.placement;
  for mask = 0 to (1 lsl m) - 1 do
    Array.iteri
      (fun bit op -> assignment.(op) <- mask land (1 lsl bit) <> 0)
      movable;
    if Spec.feasible spec ~node_side:assignment then begin
      let obj = Spec.objective_value spec ~node_side:assignment in
      match !best with
      | Some (_, b) when b <= obj -> ()
      | _ -> best := Some (Array.copy assignment, obj)
    end
  done;
  !best

let node_ops r =
  let acc = ref [] in
  for i = Array.length r.assignment - 1 downto 0 do
    if r.assignment.(i) then acc := i :: !acc
  done;
  !acc

let pp_report graph ppf r =
  let enc =
    match r.encoding with
    | Ilp.Restricted -> "restricted"
    | Ilp.General -> "general"
  in
  Format.fprintf ppf
    "@[<v>partition: %d operators on node, %d on server@,\
     node CPU %.1f%%, cut bandwidth %.1f B/s, objective %g@,\
     %d supernodes (%d movable), %s encoding%s@,\
     solver: %d nodes, %d LPs, %.3fs (optimal found at %.3fs, proved=%b)@,\
     node ops: %s@]"
    (List.length (node_ops r))
    (Dataflow.Graph.n_ops graph - List.length (node_ops r))
    (100. *. r.cpu) r.net r.objective r.supernodes r.movable_supernodes enc
    (if r.preprocessed then " (preprocessed)" else "")
    r.solver.Lp.Branch_bound.nodes_explored r.solver.Lp.Branch_bound.lp_solves
    r.solver.Lp.Branch_bound.time_total
    r.solver.Lp.Branch_bound.time_to_incumbent
    r.solver.Lp.Branch_bound.proved_optimal
    (String.concat ","
       (List.map
          (fun i -> (Dataflow.Graph.op graph i).Dataflow.Op.name)
          (node_ops r)))
