(** Mixed networks (§9, future work).

    A single logical node partition can take on different physical
    partitions at different nodes: run the partitioning algorithm once
    per node class.  The server must then accept results at various
    stages of partial processing — which the per-node server state
    tables already support.

    Each per-class solve goes through {!Partitioner} and hence the
    generic {!Placement} core — this module owns only the budget
    splitting across classes, no ILP encoding of its own. *)

type class_spec = {
  platform : Profiler.Platform.t;
  n_nodes : int;
  net_share : float option;
      (** this class's share of the shared channel budget; [None]
          divides the platform budget by [n_nodes] *)
}

type class_plan = {
  platform : Profiler.Platform.t;
  n_nodes : int;
  report : Partitioner.report;
}

val plan :
  ?mode:Movable.mode ->
  ?alpha:float ->
  ?beta:float ->
  Profiler.Profile.raw ->
  classes:class_spec list ->
  (class_plan list, string) result
(** One optimal partition per node class.  Classes whose rate does not
    fit are reported through a rate search and the returned report is
    at the found rate.  [Error] if any class has no feasible partition
    at any rate. *)

val pp : Dataflow.Graph.t -> Format.formatter -> class_plan list -> unit
