(** The generic placement core: one assignment ILP over a tier graph.

    The paper states its ILP for a single node/server cut (§4.2.1) and
    sketches multi-node and mixed deployments (§4.2.2, §9).  This
    module is the single encoder behind all of them: platforms are the
    vertices of a {e tier chain} — tier 0 is the embedded node, the
    last tier the central server — each with a CPU budget, and
    consecutive tiers are connected by links with bandwidth budgets
    and per-byte objective weights.  Two-way partitioning
    ({!Partitioner}), three-tier placement ({!Three_tier}) and mixed
    networks ({!Mixed}) are all instances of {!solve}; none of them
    encodes costs or crossings itself.

    The encoding generalises the paper's two formulations with {e
    level} variables: for a chain of [P] tiers, each supernode [s]
    carries binaries [d_k(s)] ("[s] sits at tier [<= k]") for
    [k = 0 .. P-2], ordered [d_k <= d_(k+1)].  Tier [p]'s CPU load is
    [sum cpu_p(s) (d_p(s) - d_(p-1)(s))] and link [k] is crossed by an
    edge exactly when [d_k] differs across it.  With [P = 2] this is
    byte-for-byte the §4.2.1 ILP ([d_0 = f]); with [P = 3] it is the
    two-level [x <= y] encoding of {!Three_tier}. *)

(** {!General} is the bidirectional eqs. (1)–(5) formulation (two
    continuous crossing variables per edge and link); {!Restricted}
    the single-crossing eqs. (6)–(7) form (monotone tier descent along
    every edge, no crossing variables). *)
type encoding = General | Restricted

(** An additional per-operator resource (RAM, code storage) consumed
    only by tier-0 residents — §4.2.1's optional rows. *)
type resource = {
  rname : string;
  per_op : float array;  (** indexed by original operator id *)
  budget : float;
}

type tier = {
  tname : string;
  cpu : float array;
      (** per original operator: CPU fraction consumed when the
          operator runs on this tier.  Tier 0's array must equal the
          spec's [cpu] (it is what {!Preprocess} contracts over). *)
  cpu_budget : float;  (** [infinity] = unbudgeted: no ILP row *)
  alpha : float;  (** objective weight of this tier's CPU load *)
}

type link = {
  lname : string;
  net_budget : float;  (** bytes/s, [infinity] = unbudgeted *)
  beta : float;  (** objective weight per cut byte on this link *)
}

type t = {
  spec : Spec.t;
      (** the tier-0 problem: graph, placement pins, tier-0 CPU costs,
          edge bandwidths.  The spec's own budgets and objective
          weights are {e not} read — tiers and links carry them. *)
  tiers : tier array;  (** node-most first, central server last *)
  links : link array;  (** [links.(k)] connects tiers [k] and [k+1] *)
}

val v : spec:Spec.t -> tiers:tier list -> links:link list -> t
(** Validating constructor: at least two tiers, [links] one shorter
    than [tiers], every cost array as long as the operator count, and
    tier 0's costs equal to the spec's.
    @raise Invalid_argument otherwise. *)

val of_spec : Spec.t -> t
(** The classic two-way instance: tier 0 is the node (the spec's CPU
    costs, budget and [alpha]), tier 1 an unbudgeted server, and the
    single link carries the spec's network budget and [beta].
    [solve (of_spec spec)] is exactly {!Partitioner.solve}'s ILP. *)

val n_tiers : t -> int

val scale_rate : t -> float -> t
(** Scale every CPU cost and edge bandwidth by a factor — the §4.3
    data-rate free variable, across all tiers. *)

(** A built (not yet solved) ILP instance. *)
type encoded = {
  problem : Lp.Problem.t;
  level_var : int array array;
      (** [level_var.(k).(s)]: the [d_k] binary of supernode [s] *)
  edge_vars : (int * int * int * int * int) array;
      (** [General] only: (link, src supernode, dst supernode, e, e')
          crossing-variable pairs; empty for [Restricted] *)
  encoding : encoding;
}

val encode :
  ?resources:resource list -> encoding -> t -> Preprocess.contracted -> encoded
(** Build the ILP over a contraction of [t.spec].  Variable and
    constraint order is deterministic: level variables
    ([k]-major, supernode-minor), then per-supernode level ordering,
    budgeted tier CPU rows, per-edge rows (crossing variables created
    in place under [General]), link bandwidth rows, resource rows.
    With two tiers this reproduces the historical {!Ilp.encode}
    problem exactly — same variables, same constraints, same
    objective, in the same order.
    @raise Invalid_argument when a resource array has the wrong
    length. *)

val tiers_of_solution :
  encoded -> Preprocess.contracted -> Lp.Solution.t -> int array
(** Per-original-operator tier indices from a solved instance. *)

val initial_point :
  encoded -> Preprocess.contracted -> int array -> float array option
(** Lift a per-original-operator tier assignment to a full variable
    vector (crossing variables at their minimal feasible values),
    suitable as {!Lp.Branch_bound.solve}'s incumbent seed.  [None]
    when the assignment straddles a supernode or has the wrong
    length.  Feasibility is not checked here. *)

val stats : t -> tier_of:int array -> float array * float array
(** [(tier_cpu, link_net)] of an assignment: per-tier CPU load and
    per-link cut bandwidth (an edge loads link [k] when its endpoints
    lie on opposite sides of the [k]/[k+1] boundary). *)

val objective_value : t -> tier_of:int array -> float
(** [sum_p alpha_p * tier_cpu_p + sum_k beta_k * link_net_k]. *)

val feasible : ?require_monotone:bool -> t -> tier_of:int array -> bool
(** Pins respected, budgeted tiers and links within their budgets
    (with the same numeric slack {!Spec.feasible} uses), and — by
    default — tiers descend monotonically along every edge (the
    single-crossing restriction, per link).  Pass
    [~require_monotone:false] for {!General} solutions. *)

type report = {
  tier_of : int array;  (** per original operator *)
  tier_cpu : float array;
  link_net : float array;
  objective : float;
  solver : Lp.Branch_bound.stats;
  supernodes : int;
  movable_supernodes : int;
  encoding : encoding;
  preprocessed : bool;
}

type outcome =
  | Partitioned of report
  | No_feasible_partition
  | Solver_failure of string

val solve :
  ?encoding:encoding ->
  ?preprocess:bool ->
  ?options:Lp.Branch_bound.options ->
  ?resources:resource list ->
  ?initial:int array ->
  ?root_basis:Lp.Basis.t ->
  t ->
  outcome
(** Contract (under [Restricted]; the dominance argument behind
    {!Preprocess.contract} needs monotone descent, so [General] solves
    the uncontracted graph — the PR 2 fuzz finding, preserved here),
    encode, branch & bound, verify the returned assignment against
    {!feasible}, and expand to original operators.  [initial] (a
    per-original-operator tier assignment) seeds the incumbent and
    [root_basis] warm-starts the root relaxation — the PR 1 machinery,
    unchanged.

    [options] also selects the LP engine and parallelism
    ({!Lp.Branch_bound.options.solver} / [workers]): by default eeg-scale
    encodings run on the sparse revised simplex and small ones on the
    dense tableau, and any [workers] count returns the same partition
    (deterministic waves, see DESIGN.md §14). *)

val pp_report : Dataflow.Graph.t -> t -> Format.formatter -> report -> unit
