(** The generic placement core: one assignment ILP over a tier graph.

    The paper states its ILP for a single node/server cut (§4.2.1) and
    sketches multi-node and mixed deployments (§4.2.2, §9).  This
    module is the single encoder behind all of them: platforms are the
    vertices of a rooted {e tier tree} ({!Topology.t}) — tier 0 is an
    embedded node, the last tier the central server at the root — each
    with a CPU budget, and each non-root tier has an {e uplink} with
    its own bandwidth budget and per-byte objective weight.  The
    historical tier {e chain} is the single-child degenerate case and
    stays byte-identical through this encoder.  Two-way partitioning
    ({!Partitioner}), three-tier placement ({!Three_tier}) and mixed
    networks ({!Mixed}) are all instances of {!solve}; none of them
    encodes costs or crossings itself.

    The encoding generalises the paper's two formulations with {e
    subtree-membership} variables: each supernode [s] carries binaries
    [d_k(s)] ("[s] sits in the subtree below tree edge [k]", i.e. tier
    [k] or one of its descendants) for each non-root tier [k].  For a
    chain of [P] tiers this is exactly the historical level variable
    "[s] sits at tier [<= k]", ordered [d_k <= d_(k+1)]; in a tree the
    ordering becomes [d_uplink(p) >= sum_children(p) d_c] per tier.
    Tier [p]'s CPU load is [sum cpu_p(s) (d_uplink(p) -
    sum_children(p) d_c)] and tree edge [k] is crossed by a dataflow
    edge exactly when [d_k] differs across it — one network row {e per
    tree edge} (DESIGN.md §18).  With [P = 2] this is byte-for-byte
    the §4.2.1 ILP ([d_0 = f]); with a 3-chain it is the two-level
    [x <= y] encoding of {!Three_tier}. *)

(** {!General} is the bidirectional eqs. (1)–(5) formulation (two
    continuous crossing variables per edge and link); {!Restricted}
    the single-crossing eqs. (6)–(7) form (monotone tier descent along
    every edge, no crossing variables). *)
type encoding = General | Restricted

(** Rooted tier trees.  Tiers are numbered so that every tier's parent
    has a strictly larger index (topological numbering); the last tier
    is the root.  Tree edge [k] is the {e uplink} of non-root tier
    [k], so a chain keeps the historical link numbering (link [k]
    connects tiers [k] and [k+1]) and tier 0 is always a leaf. *)
module Topology : sig
  type t

  val of_parents : int array -> t
  (** Build from a parent array: [parents.(k)] is the parent tier of
      [k], [> k] for every non-root tier; the last entry (the root)
      must be [-1].
      @raise Invalid_argument otherwise. *)

  val chain : int -> t
  (** [chain n]: the degenerate [n]-tier chain [0 - 1 - ... - n-1]. *)

  val n_tiers : t -> int
  val root : t -> int
  val parent : t -> int -> int  (** [-1] for the root *)

  val parents : t -> int array  (** a fresh copy of the parent array *)

  val children : t -> int -> int list  (** ascending tier order *)

  val is_chain : t -> bool

  val ancestor_or_self : t -> anc:int -> int -> bool
  (** [ancestor_or_self t ~anc tier]: [anc] is [tier] itself or an
      ancestor of it — the monotone-descent order data flows along. *)

  val on_root_path : t -> int -> int -> bool
  (** [on_root_path t e tier]: tree edge [e] lies on [tier]'s path to
      the root, i.e. [tier] is in the subtree below [e].  For a chain
      this is [e >= tier]. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** An additional per-operator resource (RAM, code storage) consumed
    only by tier-0 residents — §4.2.1's optional rows. *)
type resource = {
  rname : string;
  per_op : float array;  (** indexed by original operator id *)
  budget : float;
}

type tier = {
  tname : string;
  cpu : float array;
      (** per original operator: CPU fraction consumed when the
          operator runs on this tier.  Tier 0's array must equal the
          spec's [cpu] (it is what {!Preprocess} contracts over). *)
  cpu_budget : float;  (** [infinity] = unbudgeted: no ILP row *)
  alpha : float;  (** objective weight of this tier's CPU load *)
}

type link = {
  lname : string;
  net_budget : float;  (** bytes/s, [infinity] = unbudgeted *)
  beta : float;  (** objective weight per cut byte on this link *)
}

type t = {
  spec : Spec.t;
      (** the tier-0 problem: graph, placement pins, tier-0 CPU costs,
          edge bandwidths.  The spec's own budgets and objective
          weights are {e not} read — tiers and links carry them. *)
  tiers : tier array;  (** node-most first, central server (root) last *)
  links : link array;
      (** [links.(k)] is the uplink of non-root tier [k] towards
          [Topology.parent topology k]; for a chain it connects tiers
          [k] and [k+1] as it always did *)
  topology : Topology.t;
  tier_pins : int option array;
      (** per original operator: [Some p] forces the operator onto
          tier [p], overriding its {!Movable} classification *)
}

val v :
  ?topology:Topology.t ->
  ?pins:(int * int) list ->
  spec:Spec.t ->
  tiers:tier list ->
  links:link list ->
  unit ->
  t
(** Validating constructor: at least two tiers, [links] one shorter
    than [tiers] (one uplink per non-root tier), every cost array as
    long as the operator count, and tier 0's costs equal to the
    spec's.  [topology] defaults to the chain over the given tiers;
    when present its tier count must match.  [pins] is a list of
    [(operator, tier)] pairs; a tier pin overrides the operator's
    {!Movable} classification (e.g. a sensor source pinned onto a
    {e different} leaf tier of a tree) and disables supernode
    contraction in {!solve}.
    @raise Invalid_argument otherwise. *)

val of_spec : Spec.t -> t
(** The classic two-way instance: tier 0 is the node (the spec's CPU
    costs, budget and [alpha]), tier 1 an unbudgeted server, and the
    single link carries the spec's network budget and [beta].
    [solve (of_spec spec)] is exactly {!Partitioner.solve}'s ILP. *)

val n_tiers : t -> int

val scale_rate : t -> float -> t
(** Scale every CPU cost and edge bandwidth by a factor — the §4.3
    data-rate free variable, across all tiers. *)

(** A built (not yet solved) ILP instance. *)
type encoded = {
  problem : Lp.Problem.t;
  level_var : int array array;
      (** [level_var.(k).(s)]: the [d_k] binary of supernode [s] *)
  edge_vars : (int * int * int * int * int) array;
      (** [General] only: (link, src supernode, dst supernode, e, e')
          crossing-variable pairs; empty for [Restricted] *)
  encoding : encoding;
  topology : Topology.t;  (** the tier tree the instance was built over *)
}

val encode :
  ?resources:resource list -> encoding -> t -> Preprocess.contracted -> encoded
(** Build the ILP over a contraction of [t.spec].  Variable and
    constraint order is deterministic: level variables
    ([k]-major, supernode-minor), then per-supernode level ordering,
    budgeted tier CPU rows, per-edge rows (crossing variables created
    in place under [General]), link bandwidth rows, resource rows.
    With two tiers this reproduces the historical {!Ilp.encode}
    problem exactly — same variables, same constraints, same
    objective, in the same order.
    @raise Invalid_argument when a resource array has the wrong
    length. *)

val tiers_of_solution :
  encoded -> Preprocess.contracted -> Lp.Solution.t -> int array
(** Per-original-operator tier indices from a solved instance. *)

val initial_point :
  encoded -> Preprocess.contracted -> int array -> float array option
(** Lift a per-original-operator tier assignment to a full variable
    vector (crossing variables at their minimal feasible values),
    suitable as {!Lp.Branch_bound.solve}'s incumbent seed.  [None]
    when the assignment straddles a supernode or has the wrong
    length.  Feasibility is not checked here. *)

val stats : t -> tier_of:int array -> float array * float array
(** [(tier_cpu, link_net)] of an assignment: per-tier CPU load and
    per-link cut bandwidth (an edge loads tree edge [k] when exactly
    one endpoint lies in the subtree below [k]; for a chain, when its
    endpoints straddle the [k]/[k+1] boundary). *)

val objective_value : t -> tier_of:int array -> float
(** [sum_p alpha_p * tier_cpu_p + sum_k beta_k * link_net_k]. *)

val feasible : ?require_monotone:bool -> t -> tier_of:int array -> bool
(** Pins (including tier pins) respected, budgeted tiers and links
    within their budgets (with the same numeric slack {!Spec.feasible}
    uses), and — by default — every dataflow edge runs rootward: the
    destination tier is the source tier or one of its ancestors (the
    single-crossing restriction, per tree edge; [src <= dst] on a
    chain).  Pass [~require_monotone:false] for {!General}
    solutions. *)

type report = {
  tier_of : int array;  (** per original operator *)
  tier_cpu : float array;
  link_net : float array;
  objective : float;
  solver : Lp.Branch_bound.stats;
  supernodes : int;
  movable_supernodes : int;
  encoding : encoding;
  preprocessed : bool;
}

type outcome =
  | Partitioned of report
  | No_feasible_partition
  | Solver_failure of string

val solve :
  ?encoding:encoding ->
  ?preprocess:bool ->
  ?options:Lp.Branch_bound.options ->
  ?resources:resource list ->
  ?initial:int array ->
  ?root_basis:Lp.Basis.t ->
  t ->
  outcome
(** Contract (under [Restricted] with no tier pins; the dominance
    argument behind {!Preprocess.contract} needs monotone descent, so
    [General] solves the uncontracted graph — the PR 2 fuzz finding,
    preserved here — and a merged supernode cannot honor a pin on one
    member only, so tier pins also disable contraction),
    encode, branch & bound, verify the returned assignment against
    {!feasible}, and expand to original operators.  [initial] (a
    per-original-operator tier assignment) seeds the incumbent and
    [root_basis] warm-starts the root relaxation — the PR 1 machinery,
    unchanged.

    [options] also selects the LP engine and parallelism
    ({!Lp.Branch_bound.options.solver} / [workers]): by default eeg-scale
    encodings run on the sparse revised simplex and small ones on the
    dense tableau, and any [workers] count returns the same partition
    (deterministic waves, see DESIGN.md §14). *)

val pp_report : Dataflow.Graph.t -> t -> Format.formatter -> report -> unit
