(** ILP encodings of the partitioning problem (§4.2.1).

    {!General} is the bidirectional formulation, eqs. (1)–(5): one
    binary [f_v] per supernode plus two continuous edge variables
    [e_uv], [e'_uv] linearizing the quadratic cut indicator.

    {!Restricted} exploits the single-crossing restriction of §2.1.2,
    eqs. (6)–(7): data flows only node→server, so [f_u >= f_v] along
    every edge and the edge variables disappear — [|V|] variables and
    at most [|E| + |V| + 1] constraints.  This is the formulation the
    prototype uses.

    Since the tier-graph refactor this module is a thin facade: both
    formulations are built by {!Placement.encode} (of which the
    two-way cut is the two-tier instance), and the types below are
    re-exports of the placement core's. *)

type encoding = Placement.encoding = General | Restricted

type encoded = {
  problem : Lp.Problem.t;
  f_var : int array;  (** supernode id -> ILP variable index *)
  encoding : encoding;
  edge_vars : (int * int * int * int) array;
      (** [General] only: per contracted edge, (src supernode, dst
          supernode, e variable, e' variable); empty for
          [Restricted] *)
}

(** An additional per-operator resource consumed only by node-resident
    operators — RAM under static allocation, or code storage.  §4.2.1:
    "adding additional constraints for RAM usage (assuming static
    allocation) or code storage is straightforward in this
    formulation". *)
type resource = Placement.resource = {
  rname : string;
  per_op : float array;  (** indexed by original operator id *)
  budget : float;
}

val encode :
  ?resources:resource list -> encoding -> Preprocess.contracted -> encoded
(** @raise Invalid_argument when a resource array has the wrong
    length. *)

val assignment_of_solution : encoded -> Lp.Solution.t -> bool array
(** Supernode assignment (true = node) from a solved instance. *)

val initial_point :
  encoded -> Preprocess.contracted -> bool array -> float array option
(** Lift an original-operator assignment (true = node) to a full ILP
    variable vector, suitable as {!Lp.Branch_bound.solve}'s [initial]
    incumbent seed.  Returns [None] when the assignment straddles a
    supernode (it cannot be expressed in the contracted variables) or
    has the wrong length.  Feasibility is {e not} checked here —
    branch & bound validates the seed before adopting it. *)
