(** Deploying a computed partition on the simulated testbed and
    comparing Wishbone's predictions against "measured" behaviour
    (§7.3).

    The ILP's cost model is additive and ignores OS overheads and the
    processor cost of communication; the testbed includes both, so
    [measured_cpu] runs a little hotter than [predicted_cpu] — the
    reproduction of the paper's Gumstix observation (11.5% predicted
    vs 15% measured). *)

type comparison = {
  predicted_cpu : float;  (** ILP additive model, fraction of node CPU *)
  measured_cpu : float;  (** testbed busy fraction *)
  predicted_net : float;  (** cut bandwidth, bytes/s *)
  measured_net : float;  (** offered bytes/s on the testbed *)
  result : Netsim.Testbed.result;
}

val run :
  config:Netsim.Testbed.config ->
  sources:Netsim.Testbed.source_spec list ->
  spec:Spec.t ->
  assignment:bool array ->
  comparison

(** Predicted-vs-offered comparison for a multi-tier deployment driven
    through {!Runtime.Multirun} (tier-level, no radio simulation —
    the radio testbed stays two-tier). *)
type tier_comparison = {
  predicted_tier_cpu : float array;  (** {!Placement.stats} CPU model *)
  predicted_link_net : float array;  (** cut bandwidth per link *)
  offered_elems : int array;  (** crossings offered per link *)
  offered_bytes : int array;
  link_dropped : int array;  (** crossings shed per bounded link *)
  link_drop_counts : int array array;  (** per link, per operator *)
  sink_outputs : int;
}

val run_tiers :
  ?n_nodes:int ->
  ?links:Runtime.Multirun.link_config option list ->
  ?rounds:int ->
  placement:Placement.t ->
  tier_of:int array ->
  sources:(int * (node:int -> seq:int -> Dataflow.Value.t)) list ->
  unit ->
  tier_comparison
(** Execute a placement end-to-end over the placement's tier topology
    (the runtime engines are joined by its tree; a chain behaves as it
    always did): [rounds] (default 100) rounds of one injection per
    (source, generator) pair per node replica (tier-0 sources fire on
    every node, sources on another leaf tier on their single engine),
    then a full drain.  [tier_of] is the per-operator tier assignment
    (typically a {!Placement.report}'s). *)
