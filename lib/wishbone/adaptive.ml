type observation = {
  goodput : float;
  input_fraction : float;
  msg_fraction : float;
  node_busy : float;
  edge_bytes_per_sec : float array;
}

let observe (r : Netsim.Testbed.result) =
  {
    goodput = r.Netsim.Testbed.goodput_fraction;
    input_fraction = r.Netsim.Testbed.input_fraction;
    msg_fraction = r.Netsim.Testbed.msg_fraction;
    node_busy = r.Netsim.Testbed.node_busy_fraction;
    edge_bytes_per_sec = r.Netsim.Testbed.edge_bytes_per_sec;
  }

type action =
  | Hold
  | Set_rate of float
  | Repartition of { assignment : bool array; rate : float }

type decision = {
  step : int;
  rate : float;
  obs : observation;
  action : action;
  note : string;
}

type config = {
  target : float;
  tol : float;
  max_steps : int;
  repartition : bool;
  rate_min : float;
}

let default_config =
  { target = 0.9; tol = 0.05; max_steps = 16; repartition = true;
    rate_min = 1e-4 }

type outcome = {
  rate : float;
  assignment : bool array;
  goodput : float;
  trace : decision list;
  converged : bool;
}

(* Fold the measured edge rates back into the spec: the testbed
   observed [bytes/s] at multiplier [rate] while processing
   [input_fraction] of the offered inputs, so the per-unit-rate
   bandwidth estimate is measured /. (rate *. input_fraction).  Edges
   the window never exercised keep their profiled value — no evidence,
   no update. *)
let respec (spec : Spec.t) (obs : observation) ~rate =
  let denom = rate *. Float.max 1e-9 obs.input_fraction in
  let bandwidth =
    Array.mapi
      (fun e profiled ->
        let measured = obs.edge_bytes_per_sec.(e) /. denom in
        if obs.edge_bytes_per_sec.(e) > 0. then measured else profiled)
      spec.Spec.bandwidth
  in
  { spec with Spec.bandwidth }

let run ?(config = default_config) ~spec ~assignment ~probe () =
  let trace = ref [] in
  let record d = trace := d :: !trace in
  (* bracket on the rate lattice: lo = highest rate known to meet the
     target, hi = lowest rate known to miss it *)
  let lo = ref None and hi = ref None in
  let root_basis = ref None in
  let assignment = ref (Array.copy assignment) in
  let rate = ref 1.0 in
  let best = ref None in
  let converged = ref false in
  let step = ref 0 in
  let gap_closed () =
    match (!lo, !hi) with
    | Some l, Some h -> (h -. l) /. l <= config.tol
    | Some _, None -> true  (* never missed: nothing to close *)
    | None, _ -> false
  in
  (try
     while !step < config.max_steps do
       incr step;
       let obs : observation = probe ~rate:!rate ~assignment:!assignment in
       if obs.goodput >= config.target then begin
         lo := Some !rate;
         best := Some (!rate, Array.copy !assignment, obs.goodput);
         if gap_closed () then begin
           converged := true;
           record
             {
               step = !step;
               rate = !rate;
               obs;
               action = Hold;
               note =
                 Printf.sprintf "goodput %.3f >= target %.3f; bracket closed"
                   obs.goodput config.target;
             };
           raise Exit
         end
         else begin
           (* climb back up inside the bracket *)
           let next = Float.sqrt (!rate *. Option.get !hi) in
           record
             {
               step = !step;
               rate = !rate;
               obs;
               action = Set_rate next;
               note =
                 Printf.sprintf
                   "goodput %.3f meets target; probing up towards %.4f"
                   obs.goodput (Option.get !hi);
             };
           rate := next
         end
       end
       else begin
         hi := Some !rate;
         (* candidate next rate: lattice descent *)
         let next =
           match !lo with
           | Some l -> Float.sqrt (l *. !rate)
           | None -> !rate /. 2.
         in
         if next < config.rate_min then begin
           record
             {
               step = !step;
               rate = !rate;
               obs;
               action = Hold;
               note = "rate floor reached without meeting the target";
             };
           raise Exit
         end;
         (* try a repartition informed by the measured edge rates *)
         let repartitioned =
           if not config.repartition then None
           else
             let spec' = Spec.scale_rate (respec spec obs ~rate:!rate) next in
             match
               Partitioner.solve ~initial:!assignment ?root_basis:!root_basis
                 spec'
             with
             | Partitioner.Partitioned r ->
                 (match r.Partitioner.solver.Lp.Branch_bound.root_basis with
                 | Some b -> root_basis := Some b
                 | None -> ());
                 if r.Partitioner.assignment <> !assignment then
                   Some r.Partitioner.assignment
                 else None
             | Partitioner.No_feasible_partition
             | Partitioner.Solver_failure _ -> None
         in
         (match repartitioned with
         | Some a ->
             record
               {
                 step = !step;
                 rate = !rate;
                 obs;
                 action = Repartition { assignment = Array.copy a; rate = next };
                 note =
                   Printf.sprintf
                     "goodput %.3f < target; measured rates favour a new cut \
                      at x%.4f"
                     obs.goodput next;
               };
             assignment := a
         | None ->
             record
               {
                 step = !step;
                 rate = !rate;
                 obs;
                 action = Set_rate next;
                 note =
                   Printf.sprintf
                     "goodput %.3f < target; descending the rate lattice"
                     obs.goodput;
               });
         rate := next
       end
     done
   with Exit -> ());
  let rate, assignment, goodput =
    match !best with
    | Some (r, a, g) -> (r, a, g)
    | None ->
        (!rate, !assignment,
         match !trace with d :: _ -> d.obs.goodput | [] -> 0.)
  in
  {
    rate;
    assignment;
    goodput;
    trace = List.rev !trace;
    converged = !converged;
  }

let testbed_probe ~config ~graph ~sources ~rate ~assignment =
  let r =
    Netsim.Testbed.run config ~graph
      ~node_of:(fun i -> assignment.(i))
      ~sources:(sources ~rate)
  in
  observe r

let pp_action ppf = function
  | Hold -> Format.fprintf ppf "hold"
  | Set_rate r -> Format.fprintf ppf "set-rate x%.4f" r
  | Repartition { assignment; rate } ->
      Format.fprintf ppf "repartition (%d node ops) @@ x%.4f"
        (Array.fold_left (fun n b -> if b then n + 1 else n) 0 assignment)
        rate

let pp_trace ppf trace =
  List.iter
    (fun d ->
      Format.fprintf ppf
        "step %2d  rate x%-8.4f goodput %5.1f%% (in %5.1f%%, msg %5.1f%%)  \
         -> %a@,    %s@."
        d.step d.rate (100. *. d.obs.goodput)
        (100. *. d.obs.input_fraction)
        (100. *. d.obs.msg_fraction)
        pp_action d.action d.note)
    trace
