(* The historical two-way encoder, now a facade: the actual
   cost/crossing encoding lives in [Placement.encode]; with two tiers
   it produces exactly the problem this module used to build (same
   variables, constraints and objective, in the same order), so every
   caller — and every warm-started basis — is unaffected. *)

type encoding = Placement.encoding = General | Restricted

type encoded = {
  problem : Lp.Problem.t;
  f_var : int array;
  encoding : encoding;
  edge_vars : (int * int * int * int) array;
}

type resource = Placement.resource = {
  rname : string;
  per_op : float array;
  budget : float;
}

let encode ?resources encoding (c : Preprocess.contracted) =
  let enc =
    Placement.encode ?resources encoding
      (Placement.of_spec c.Preprocess.spec)
      c
  in
  {
    problem = enc.Placement.problem;
    (* with two tiers there is a single level: d_0 = f *)
    f_var = enc.Placement.level_var.(0);
    encoding;
    edge_vars =
      Array.map (fun (_, u, v, e, e') -> (u, v, e, e')) enc.Placement.edge_vars;
  }

let assignment_of_solution enc (sol : Lp.Solution.t) =
  Array.map (fun v -> sol.x.(v) >= 0.5) enc.f_var

let initial_point enc (c : Preprocess.contracted) (assign : bool array) =
  if Array.length assign <> Array.length c.super_of then None
  else begin
    let x = Array.make (Lp.Problem.n_vars enc.problem) 0. in
    (* every member of a supernode must sit on the same side, or the
       assignment does not survive the contraction *)
    let consistent = ref true in
    Array.iteri
      (fun s members ->
        match members with
        | [] -> ()
        | first :: rest ->
            let side = assign.(first) in
            if List.exists (fun i -> assign.(i) <> side) rest then
              consistent := false
            else x.(enc.f_var.(s)) <- (if side then 1. else 0.))
      c.members;
    if not !consistent then None
    else begin
      (* general encoding: the cut-indicator variables take their
         minimal feasible values *)
      Array.iter
        (fun (u, v, e, e') ->
          let fu = x.(enc.f_var.(u)) and fv = x.(enc.f_var.(v)) in
          x.(e) <- Float.max 0. (fv -. fu);
          x.(e') <- Float.max 0. (fu -. fv))
        enc.edge_vars;
      Some x
    end
  end
