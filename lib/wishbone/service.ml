open Dataflow

type request = Rate of float | Search

type query = { placement : Placement.t; request : request }

type answer =
  | Placed of { rate : float; report : Placement.report }
  | Degraded of { rate : float; report : Placement.report; gap : float }
  | Infeasible
  | Failed of string

type served = Hit | Warm_start | Cold

type counters = {
  queries : int;
  hits : int;
  misses : int;
  warm_starts : int;
  inserts : int;
  evictions : int;
  resident : int;
  ok : int;
  degraded : int;
  failed : int;
  retries : int;
  worker_deaths : int;
}

type response = {
  answer : answer;
  digest : string;
  served : served;
  latency_ms : float;
  counters : counters;
}

exception Injected_fault of string

(* Raised by a [Kill_worker] fault to take its whole [Domain] down —
   the one exception the per-query supervisor deliberately does not
   contain.  Never escapes [run_batch]. *)
exception Worker_killed

(* ---- fault injection ---------------------------------------------- *)

module Fault_plan = struct
  type kind =
    | Transient  (* first attempt raises; a retry succeeds *)
    | Permanent  (* every attempt raises *)
    | Crash_at of int  (* first attempt raises at the k-th B&B node *)
    | Kill_worker  (* first attempt kills its Domain *)

  type t = Off | Seeded of { seed : int; rate : float }

  let none = Off
  let seeded ?(rate = 0.1) seed = Seeded { seed; rate }

  (* The decision for the [seq]-th solved query of the service's
     lifetime, derived from the root seed with the documented path
     [11; seq] ([11] is the service-fault namespace; [Netsim.Testbed]
     owns [1; k], [Check.Fuzz] owns [oracle; case]).  Pure function of
     [(plan, seq)]: replays identically across runs, shard counts and
     retry attempts. *)
  let decide t ~seq =
    match t with
    | Off -> None
    | Seeded { seed; rate } ->
        let g = Prng.create (Prng.derive seed [ 11; seq ]) in
        if not (Prng.bool g rate) then None
        else
          Some
            (match Prng.int g 4 with
            | 0 -> Transient
            | 1 -> Permanent
            | 2 -> Crash_at (Prng.int g 8)
            | _ -> Kill_worker)
end

(* ---- canonical digests ------------------------------------------- *)

(* Everything the solver reads is rendered bit-exactly (floats as
   their IEEE-754 bit patterns) into one canonical byte string, then
   hashed.  Budgets and objective weights are part of the key: two
   placements that differ only in a CPU budget solve differently and
   must never collide. *)

let add_f buf x =
  Buffer.add_string buf (Printf.sprintf "%Lx;" (Int64.bits_of_float x))

let add_s buf s =
  (* length-prefixed so name boundaries cannot alias *)
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let instance_key (pl : Placement.t) =
  let spec = pl.Placement.spec in
  let g = spec.Spec.graph in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "ops%d;" (Graph.n_ops g));
  Array.iter
    (fun (o : Op.t) ->
      Buffer.add_string buf (string_of_int o.id);
      add_s buf o.name;
      add_s buf o.kind;
      Buffer.add_char buf (match o.namespace with Op.Node -> 'n' | Op.Server -> 's');
      Buffer.add_char buf (if o.stateful then 'T' else 'F');
      Buffer.add_char buf
        (match o.side_effect with
        | Op.Pure -> 'p'
        | Op.Sensor_input -> 'i'
        | Op.Actuator -> 'a'
        | Op.Display_output -> 'o'))
    (Graph.ops g);
  Buffer.add_string buf "|pins";
  Array.iter
    (fun p ->
      Buffer.add_char buf
        (match p with
        | Movable.Pin_node -> 'N'
        | Movable.Pin_server -> 'S'
        | Movable.Movable -> 'M'))
    spec.Spec.placement;
  Buffer.add_string buf "|cpu";
  Array.iter (add_f buf) spec.Spec.cpu;
  Buffer.add_string buf "|edges";
  Array.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d," e.eid e.src e.dst e.dst_port);
      add_f buf spec.Spec.bandwidth.(e.eid))
    (Graph.edges g);
  Buffer.add_string buf "|spec";
  add_f buf spec.Spec.cpu_budget;
  add_f buf spec.Spec.net_budget;
  add_f buf spec.Spec.alpha;
  add_f buf spec.Spec.beta;
  Buffer.add_string buf "|tiers";
  Array.iter
    (fun (t : Placement.tier) ->
      add_s buf t.Placement.tname;
      Array.iter (add_f buf) t.Placement.cpu;
      add_f buf t.Placement.cpu_budget;
      add_f buf t.Placement.alpha)
    pl.Placement.tiers;
  Buffer.add_string buf "|links";
  Array.iter
    (fun (l : Placement.link) ->
      add_s buf l.Placement.lname;
      add_f buf l.Placement.net_budget;
      add_f buf l.Placement.beta)
    pl.Placement.links;
  (* tree topologies and per-operator tier pins extend the key; the
     degenerate chain with no pins keeps its historical bytes, so
     every pre-topology digest (caches, checkpoints) stays valid *)
  if
    (not (Placement.Topology.is_chain pl.Placement.topology))
    || Array.exists Option.is_some pl.Placement.tier_pins
  then begin
    Buffer.add_string buf "|topo";
    Array.iter
      (fun p ->
        Buffer.add_string buf (string_of_int p);
        Buffer.add_char buf ',')
      (Placement.Topology.parents pl.Placement.topology);
    Buffer.add_string buf "|tpins";
    Array.iter
      (fun p ->
        match p with
        | None -> Buffer.add_char buf '.'
        | Some tp ->
            Buffer.add_string buf (string_of_int tp);
            Buffer.add_char buf ',')
      pl.Placement.tier_pins
  end;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let add_tiers buf tier_of =
  Array.iter
    (fun tp ->
      Buffer.add_string buf (string_of_int tp);
      Buffer.add_char buf ',')
    tier_of

let answer_digest = function
  | Placed { rate; report } ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "placed;";
      add_f buf rate;
      add_f buf report.Placement.objective;
      add_tiers buf report.Placement.tier_of;
      Digest.to_hex (Digest.string (Buffer.contents buf))
  | Degraded { rate; report; gap } ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "degraded;";
      add_f buf rate;
      add_f buf report.Placement.objective;
      add_f buf gap;
      add_tiers buf report.Placement.tier_of;
      Digest.to_hex (Digest.string (Buffer.contents buf))
  | Infeasible -> Digest.to_hex (Digest.string "infeasible")
  | Failed m -> Digest.to_hex (Digest.string ("failed;" ^ m))

(* ---- the shared solve path --------------------------------------- *)

(* The certified interval a degraded answer reports: the true optimum
   lies within [gap] (relatively) of the incumbent's objective.  Both
   quantities come from the branch & bound itself, so the bound is as
   strong as the proof would have been. *)
let relative_gap (report : Placement.report) =
  let s = report.Placement.solver in
  Float.abs (report.Placement.objective -. s.Lp.Branch_bound.best_bound)
  /. Float.max 1. (Float.abs report.Placement.objective)

let classify ~rate (report : Placement.report) =
  if report.Placement.solver.Lp.Branch_bound.proved_optimal then
    Placed { rate; report }
  else Degraded { rate; report; gap = relative_gap report }

(* One function serves both the daemon and the no-service reference:
   byte-identity of served answers reduces to warm hints being
   answer-preserving, which the service-equivalence oracle fuzzes. *)
let solve_query ~options ~tol ~max_multiplier ?initial_tiers ?root_basis q =
  match q.request with
  | Rate r -> (
      match
        Placement.solve ~options ?initial:initial_tiers ?root_basis
          (Placement.scale_rate q.placement r)
      with
      | Placement.Partitioned report -> classify ~rate:r report
      | Placement.No_feasible_partition -> Infeasible
      | Placement.Solver_failure m -> Failed m)
  | Search -> (
      match
        Rate_search.search_placement ~options ~tol ~max_multiplier
          ?initial_tiers ?root_basis q.placement
      with
      | Some
          { Rate_search.placement_multiplier; placement_report;
            placement_exact } ->
          if placement_exact then
            Placed { rate = placement_multiplier; report = placement_report }
          else
            (* some probe died on the budget: the rate is a safe lower
               bound and the gap certifies the placement at it *)
            Degraded
              {
                rate = placement_multiplier;
                report = placement_report;
                gap = relative_gap placement_report;
              }
      | None -> Infeasible)

let default_options = Lp.Branch_bound.default_options

let solve_direct ?(options = default_options) ?(tol = 0.01)
    ?(max_multiplier = 65536.) q =
  solve_query ~options ~tol ~max_multiplier q

(* ---- the daemon --------------------------------------------------- *)

type entry = {
  e_key : string;
  e_instance : string;
  e_answer : answer;
  e_digest : string;
  e_tiers : int array option;  (* warm-start seed for near-repeats *)
  e_basis : Lp.Basis.t option;
  e_born : int;  (* insertion stamp: the newest entry anchors warm starts *)
  mutable e_stamp : int;  (* recency stamp: least recent is evicted *)
}

type t = {
  capacity : int;
  options : Lp.Branch_bound.options;
  tol : float;
  max_multiplier : float;
  retries : int;
  fault_plan : Fault_plan.t;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable c_queries : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_warm : int;
  mutable c_inserts : int;
  mutable c_evictions : int;
  mutable c_ok : int;
  mutable c_degraded : int;
  mutable c_failed : int;
  mutable c_retries : int;
  mutable c_deaths : int;
}

let create ?(capacity = 512) ?(options = default_options) ?(tol = 0.01)
    ?(max_multiplier = 65536.) ?(retries = 1) ?(fault_plan = Fault_plan.none)
    () =
  if capacity < 0 then invalid_arg "Service.create: negative capacity";
  if retries < 0 then invalid_arg "Service.create: negative retries";
  {
    capacity;
    options;
    tol;
    max_multiplier;
    retries;
    fault_plan;
    table = Hashtbl.create (Int.max 16 capacity);
    clock = 0;
    c_queries = 0;
    c_hits = 0;
    c_misses = 0;
    c_warm = 0;
    c_inserts = 0;
    c_evictions = 0;
    c_ok = 0;
    c_degraded = 0;
    c_failed = 0;
    c_retries = 0;
    c_deaths = 0;
  }

let counters t =
  {
    queries = t.c_queries;
    hits = t.c_hits;
    misses = t.c_misses;
    warm_starts = t.c_warm;
    inserts = t.c_inserts;
    evictions = t.c_evictions;
    resident = Hashtbl.length t.table;
    ok = t.c_ok;
    degraded = t.c_degraded;
    failed = t.c_failed;
    retries = t.c_retries;
    worker_deaths = t.c_deaths;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let request_tag t = function
  | Rate r -> Printf.sprintf "r:%Lx" (Int64.bits_of_float r)
  | Search ->
      Printf.sprintf "s:%Lx:%Lx"
        (Int64.bits_of_float t.tol)
        (Int64.bits_of_float t.max_multiplier)

let query_key t q = instance_key q.placement ^ "#" ^ request_tag t q.request

(* The warm anchor for a missed query: the most recently inserted
   resident entry with the same placement structure and a stored tier
   assignment.  Insertion stamps are unique, so the fold is
   deterministic regardless of hash-table iteration order. *)
let warm_anchor t inst =
  Hashtbl.fold
    (fun _ e best ->
      if e.e_instance = inst && e.e_tiers <> None then
        match best with
        | Some b when b.e_born >= e.e_born -> best
        | _ -> Some e
      else best)
    t.table None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e best ->
        match best with
        | Some b when b.e_stamp <= e.e_stamp -> best
        | _ -> Some e)
      t.table None
  in
  match victim with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.table e.e_key;
      t.c_evictions <- t.c_evictions + 1

let insert t ~key ~inst answer digest =
  let tiers, basis =
    match answer with
    | Placed { report; _ } | Degraded { report; _ } ->
        ( Some report.Placement.tier_of,
          report.Placement.solver.Lp.Branch_bound.root_basis )
    | Infeasible | Failed _ -> (None, None)
  in
  let stamp = tick t in
  Hashtbl.replace t.table key
    {
      e_key = key;
      e_instance = inst;
      e_answer = answer;
      e_digest = digest;
      e_tiers = tiers;
      e_basis = basis;
      e_born = stamp;
      e_stamp = stamp;
    };
  t.c_inserts <- t.c_inserts + 1;
  while Hashtbl.length t.table > t.capacity do
    evict_lru t
  done

(* Per-query batch plan, fixed sequentially against the cache state at
   batch entry; the solves it schedules are data-independent, which is
   what makes query-level sharding answer-preserving. *)
type plan =
  | P_replay of entry
  | P_alias of int  (* exact duplicate of an earlier in-batch query *)
  | P_solve of { seed_tiers : int array option; seed_basis : Lp.Basis.t option }

let run_batch ?(shards = 1) t queries =
  if shards < 1 then invalid_arg "Service.run_batch: shards must be >= 1";
  let n = Array.length queries in
  (* global query sequence numbers key the fault plan: decisions
     depend on the query history, never on sharding *)
  let base = t.c_queries in
  t.c_queries <- t.c_queries + n;
  let insts = Array.map (fun q -> instance_key q.placement) queries in
  let keys =
    Array.mapi (fun i q -> insts.(i) ^ "#" ^ request_tag t q.request) queries
  in
  (* ---- plan (sequential) ---- *)
  let first_of_key = Hashtbl.create n in
  let plans =
    Array.init n (fun i ->
        match Hashtbl.find_opt t.table keys.(i) with
        | Some e ->
            t.c_hits <- t.c_hits + 1;
            e.e_stamp <- tick t;
            P_replay e
        | None -> (
            match Hashtbl.find_opt first_of_key keys.(i) with
            | Some j ->
                t.c_hits <- t.c_hits + 1;
                P_alias j
            | None ->
                t.c_misses <- t.c_misses + 1;
                Hashtbl.add first_of_key keys.(i) i;
                let seed_tiers, seed_basis =
                  match warm_anchor t insts.(i) with
                  | Some e ->
                      t.c_warm <- t.c_warm + 1;
                      (e.e_tiers, e.e_basis)
                  | None -> (None, None)
                in
                P_solve { seed_tiers; seed_basis }))
  in
  (* ---- solve (sharded, supervised) ---- *)
  let results : answer option array = Array.make n None in
  let latency = Array.make n 0. in
  let killed = Array.make n false in
  let extra = Array.make n 0 in
  let work =
    List.filter
      (fun i -> match plans.(i) with P_solve _ -> true | _ -> false)
      (List.init n Fun.id)
  in
  let solve_raw i ~crash_at =
    let options =
      match crash_at with
      | None -> t.options
      | Some k ->
          (* an attempt-local node counter drives the injected crash;
             composes with (and preserves) any caller-installed hook *)
          let count = ref 0 in
          let prev = t.options.Lp.Branch_bound.on_node in
          {
            t.options with
            Lp.Branch_bound.on_node =
              Some
                (fun ~nodes ~pivots ->
                  (match prev with Some f -> f ~nodes ~pivots | None -> ());
                  let c = !count in
                  incr count;
                  if c = k then
                    raise
                      (Injected_fault
                         (Printf.sprintf "injected crash at node %d" k)));
          }
    in
    match plans.(i) with
    | P_solve { seed_tiers; seed_basis } ->
        solve_query ~options ~tol:t.tol ~max_multiplier:t.max_multiplier
          ?initial_tiers:seed_tiers ?root_basis:seed_basis queries.(i)
    | P_replay _ | P_alias _ -> assert false
  in
  let attempt i a =
    match Fault_plan.decide t.fault_plan ~seq:(base + i) with
    | None -> solve_raw i ~crash_at:None
    | Some Fault_plan.Transient when a = 0 ->
        raise (Injected_fault "injected transient decline")
    | Some Fault_plan.Permanent ->
        raise (Injected_fault "injected permanent fault")
    | Some (Fault_plan.Crash_at k) when a = 0 -> solve_raw i ~crash_at:(Some k)
    | Some Fault_plan.Kill_worker when a = 0 ->
        killed.(i) <- true;
        raise Worker_killed
    | Some _ -> solve_raw i ~crash_at:None
  in
  (* The per-query supervisor: bounded retries with a small capped
     backoff, every exception except [Worker_killed] contained into a
     [Failed] answer.  A killed query resumes at attempt 1 (kills fire
     only at attempt 0, so it cannot die twice). *)
  let supervised i =
    let start = if killed.(i) then 1 else 0 in
    let t0 = Unix.gettimeofday () in
    let rec go a =
      match attempt i a with
      | ans ->
          extra.(i) <- a;
          ans
      | exception Worker_killed -> raise Worker_killed
      | exception e ->
          if a < start + t.retries then begin
            Unix.sleepf (Float.min 0.02 (0.002 *. float_of_int (1 lsl (a - start))));
            go (a + 1)
          end
          else begin
            extra.(i) <- a;
            Failed (Printexc.to_string e)
          end
    in
    let ans = go start in
    latency.(i) <- latency.(i) +. ((Unix.gettimeofday () -. t0) *. 1000.);
    results.(i) <- Some ans
  in
  let run_stripe shards k =
    (* round-robin striping; each index is written by exactly one
       domain and [Domain.join] publishes the writes (a dying domain's
       writes included) *)
    List.iteri
      (fun pos i -> if pos mod shards = k then supervised i)
      work
  in
  let shards = Int.max 1 (Int.min shards (List.length work)) in
  (if shards = 1 then (try run_stripe 1 0 with Worker_killed -> ())
   else begin
     let doms =
       List.init shards (fun k -> Domain.spawn (fun () -> run_stripe shards k))
     in
     List.iter (fun d -> try Domain.join d with Worker_killed -> ()) doms
   end);
  (* absorb worker deaths: anything a dead domain stranded re-runs
     inline, victims resuming at attempt 1.  Each pass either finishes
     every pending query or trips at least one fresh kill, and a query
     kills at most once, so this terminates. *)
  let rec sweep () =
    let pending = List.filter (fun i -> results.(i) = None) work in
    if pending <> [] then begin
      (try List.iter supervised pending with Worker_killed -> ());
      sweep ()
    end
  in
  sweep ();
  List.iter (fun i -> t.c_retries <- t.c_retries + extra.(i)) work;
  Array.iter (fun k -> if k then t.c_deaths <- t.c_deaths + 1) killed;
  (* ---- commit (sequential, query order) ---- *)
  let out = Array.make n None in
  for i = 0 to n - 1 do
    (match plans.(i) with
    | P_replay e -> out.(i) <- Some (e.e_answer, e.e_digest, Hit)
    | P_alias j ->
        let a, d, _ = Option.get out.(j) in
        out.(i) <- Some (a, d, Hit)
    | P_solve { seed_tiers; seed_basis } ->
        let a = Option.get results.(i) in
        let d = answer_digest a in
        let served =
          if seed_tiers <> None || seed_basis <> None then Warm_start else Cold
        in
        out.(i) <- Some (a, d, served);
        (* failures are not worth pinning in the cache; with the
           default full-proof options and no fault plan they cannot
           occur.  Degraded answers are deterministic and cached. *)
        (match a with
        | Failed _ -> ()
        | Placed _ | Degraded _ | Infeasible ->
            insert t ~key:keys.(i) ~inst:insts.(i) a d));
    match Option.get out.(i) with
    | Placed _, _, _ | Infeasible, _, _ -> t.c_ok <- t.c_ok + 1
    | Degraded _, _, _ -> t.c_degraded <- t.c_degraded + 1
    | Failed _, _, _ -> t.c_failed <- t.c_failed + 1
  done;
  let c = counters t in
  Array.init n (fun i ->
      let answer, digest, served = Option.get out.(i) in
      { answer; digest; served; latency_ms = latency.(i); counters = c })

(* ---- crash-safe checkpoints --------------------------------------- *)

type restore_outcome = Restored of int | Cold_start of string

let magic = "WISHBONE-SERVICE-CHECKPOINT v1"

(* Snapshot layout: the magic line, then framed sections — an ASCII
   "length md5hex" header line followed by that many Marshal bytes.
   Section 0 is the header tuple (capacity, tol/max-multiplier bits,
   clock, counters, entry count); each entry follows as its own
   section.  Every section's bytes are digest-checked on load, and
   each entry's stored answer digest is recomputed from the answer
   itself, so bit rot anywhere degrades to a cold cache rather than a
   wrong replay.  Options, retries and the fault plan hold closures /
   configuration and are deliberately not persisted. *)

let write_section oc payload =
  let s = Marshal.to_string payload [] in
  Printf.fprintf oc "%d %s\n" (String.length s)
    (Digest.to_hex (Digest.string s));
  output_string oc s

let read_section ic =
  let line = input_line ic in
  match String.index_opt line ' ' with
  | None -> failwith "malformed section header"
  | Some sp -> (
      match int_of_string_opt (String.sub line 0 sp) with
      | None -> failwith "malformed section length"
      | Some len ->
          if len < 0 || len > 1 lsl 30 then failwith "absurd section length";
          let md5 = String.sub line (sp + 1) (String.length line - sp - 1) in
          let s = really_input_string ic len in
          if Digest.to_hex (Digest.string s) <> md5 then
            failwith "section bytes fail their digest";
          Marshal.from_string s 0)

type header = int * int64 * int64 * int * int list * int

type entry_wire =
  string * string * answer * string * int array option * Lp.Basis.t option
  * int * int

let checkpoint t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () ->
      output_string oc (magic ^ "\n");
      write_section oc
        (( t.capacity,
           Int64.bits_of_float t.tol,
           Int64.bits_of_float t.max_multiplier,
           t.clock,
           [
             t.c_queries; t.c_hits; t.c_misses; t.c_warm; t.c_inserts;
             t.c_evictions; t.c_ok; t.c_degraded; t.c_failed; t.c_retries;
             t.c_deaths;
           ],
           Hashtbl.length t.table )
          : header);
      (* insertion-stamp order: equal caches write byte-identical
         snapshots regardless of hash-table iteration order *)
      let entries =
        List.sort
          (fun a b -> compare a.e_born b.e_born)
          (Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
      in
      List.iter
        (fun e ->
          write_section oc
            (( e.e_key, e.e_instance, e.e_answer, e.e_digest, e.e_tiers,
               e.e_basis, e.e_born, e.e_stamp )
              : entry_wire))
        entries);
  Sys.rename tmp path

let restore ?capacity ?options ?tol ?max_multiplier ?retries ?fault_plan path =
  let cold reason =
    ( create ?capacity ?options ?tol ?max_multiplier ?retries ?fault_plan (),
      Cold_start reason )
  in
  let want_tol = Option.value tol ~default:0.01 in
  let want_mm = Option.value max_multiplier ~default:65536. in
  match open_in_bin path with
  | exception Sys_error m -> cold ("cannot open snapshot: " ^ m)
  | ic ->
      let result =
        try
          if input_line ic <> magic then failwith "bad magic"
          else begin
            let ((cap, tol_bits, mm_bits, clock, counts, n_entries) : header) =
              read_section ic
            in
            if cap < 0 || n_entries < 0 || clock < 0 then
              failwith "corrupt header";
            if
              tol_bits <> Int64.bits_of_float want_tol
              || mm_bits <> Int64.bits_of_float want_mm
            then failwith "stale parameters (tol/max-multiplier changed)";
            let t =
              create ~capacity:cap ?options ~tol:want_tol
                ~max_multiplier:want_mm ?retries ?fault_plan ()
            in
            (match counts with
            | [ q; h; m; w; ins; ev; ok; dg; fl; rt; dk ] ->
                t.c_queries <- q;
                t.c_hits <- h;
                t.c_misses <- m;
                t.c_warm <- w;
                t.c_inserts <- ins;
                t.c_evictions <- ev;
                t.c_ok <- ok;
                t.c_degraded <- dg;
                t.c_failed <- fl;
                t.c_retries <- rt;
                t.c_deaths <- dk
            | _ -> failwith "corrupt counter block");
            t.clock <- clock;
            for _ = 1 to n_entries do
              let (( e_key, e_instance, e_answer, e_digest, e_tiers, e_basis,
                     e_born, e_stamp )
                    : entry_wire) =
                read_section ic
              in
              (* semantic integrity on top of the byte digest: the
                 stored answer must still hash to its stored digest *)
              if answer_digest e_answer <> e_digest then
                failwith "entry answer fails its stored digest";
              Hashtbl.replace t.table e_key
                {
                  e_key; e_instance; e_answer; e_digest; e_tiers; e_basis;
                  e_born; e_stamp;
                }
            done;
            (match input_line ic with
            | exception End_of_file -> ()
            | _ -> failwith "trailing bytes after the last entry");
            if Hashtbl.length t.table > cap then
              failwith "more entries than capacity";
            Ok t
          end
        with
        | Failure m -> Error m
        | End_of_file -> Error "truncated snapshot"
        | Sys_error m -> Error m
      in
      close_in_noerr ic;
      (match result with
      | Ok t -> (t, Restored (Hashtbl.length t.table))
      | Error m -> cold ("snapshot rejected: " ^ m))

let pp_response ppf r =
  let tag =
    match r.served with Hit -> "hit" | Warm_start -> "warm" | Cold -> "cold"
  in
  (match r.answer with
  | Placed { rate; report } ->
      Format.fprintf ppf "placed rate x%.4f objective %g" rate
        report.Placement.objective
  | Degraded { rate; report; gap } ->
      Format.fprintf ppf "degraded rate x%.4f objective %g gap %.3g" rate
        report.Placement.objective gap
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Failed m -> Format.fprintf ppf "failed: %s" m);
  Format.fprintf ppf "  [%s, %.2f ms, %s]" tag r.latency_ms
    (String.sub r.digest 0 12)
