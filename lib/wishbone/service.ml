open Dataflow

type request = Rate of float | Search

type query = { placement : Placement.t; request : request }

type answer =
  | Placed of { rate : float; report : Placement.report }
  | Infeasible
  | Failed of string

type served = Hit | Warm_start | Cold

type counters = {
  queries : int;
  hits : int;
  misses : int;
  warm_starts : int;
  inserts : int;
  evictions : int;
  resident : int;
}

type response = {
  answer : answer;
  digest : string;
  served : served;
  latency_ms : float;
  counters : counters;
}

(* ---- canonical digests ------------------------------------------- *)

(* Everything the solver reads is rendered bit-exactly (floats as
   their IEEE-754 bit patterns) into one canonical byte string, then
   hashed.  Budgets and objective weights are part of the key: two
   placements that differ only in a CPU budget solve differently and
   must never collide. *)

let add_f buf x =
  Buffer.add_string buf (Printf.sprintf "%Lx;" (Int64.bits_of_float x))

let add_s buf s =
  (* length-prefixed so name boundaries cannot alias *)
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let instance_key (pl : Placement.t) =
  let spec = pl.Placement.spec in
  let g = spec.Spec.graph in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "ops%d;" (Graph.n_ops g));
  Array.iter
    (fun (o : Op.t) ->
      Buffer.add_string buf (string_of_int o.id);
      add_s buf o.name;
      add_s buf o.kind;
      Buffer.add_char buf (match o.namespace with Op.Node -> 'n' | Op.Server -> 's');
      Buffer.add_char buf (if o.stateful then 'T' else 'F');
      Buffer.add_char buf
        (match o.side_effect with
        | Op.Pure -> 'p'
        | Op.Sensor_input -> 'i'
        | Op.Actuator -> 'a'
        | Op.Display_output -> 'o'))
    (Graph.ops g);
  Buffer.add_string buf "|pins";
  Array.iter
    (fun p ->
      Buffer.add_char buf
        (match p with
        | Movable.Pin_node -> 'N'
        | Movable.Pin_server -> 'S'
        | Movable.Movable -> 'M'))
    spec.Spec.placement;
  Buffer.add_string buf "|cpu";
  Array.iter (add_f buf) spec.Spec.cpu;
  Buffer.add_string buf "|edges";
  Array.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d," e.eid e.src e.dst e.dst_port);
      add_f buf spec.Spec.bandwidth.(e.eid))
    (Graph.edges g);
  Buffer.add_string buf "|spec";
  add_f buf spec.Spec.cpu_budget;
  add_f buf spec.Spec.net_budget;
  add_f buf spec.Spec.alpha;
  add_f buf spec.Spec.beta;
  Buffer.add_string buf "|tiers";
  Array.iter
    (fun (t : Placement.tier) ->
      add_s buf t.Placement.tname;
      Array.iter (add_f buf) t.Placement.cpu;
      add_f buf t.Placement.cpu_budget;
      add_f buf t.Placement.alpha)
    pl.Placement.tiers;
  Buffer.add_string buf "|links";
  Array.iter
    (fun (l : Placement.link) ->
      add_s buf l.Placement.lname;
      add_f buf l.Placement.net_budget;
      add_f buf l.Placement.beta)
    pl.Placement.links;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let answer_digest = function
  | Placed { rate; report } ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "placed;";
      add_f buf rate;
      add_f buf report.Placement.objective;
      Array.iter
        (fun tp ->
          Buffer.add_string buf (string_of_int tp);
          Buffer.add_char buf ',')
        report.Placement.tier_of;
      Digest.to_hex (Digest.string (Buffer.contents buf))
  | Infeasible -> Digest.to_hex (Digest.string "infeasible")
  | Failed m -> Digest.to_hex (Digest.string ("failed;" ^ m))

(* ---- the shared solve path --------------------------------------- *)

(* One function serves both the daemon and the no-service reference:
   byte-identity of served answers reduces to warm hints being
   answer-preserving, which the service-equivalence oracle fuzzes. *)
let solve_query ~options ~tol ~max_multiplier ?initial_tiers ?root_basis q =
  match q.request with
  | Rate r -> (
      match
        Placement.solve ~options ?initial:initial_tiers ?root_basis
          (Placement.scale_rate q.placement r)
      with
      | Placement.Partitioned report -> Placed { rate = r; report }
      | Placement.No_feasible_partition -> Infeasible
      | Placement.Solver_failure m -> Failed m)
  | Search -> (
      match
        Rate_search.search_placement ~options ~tol ~max_multiplier
          ?initial_tiers ?root_basis q.placement
      with
      | Some { Rate_search.placement_multiplier; placement_report } ->
          Placed { rate = placement_multiplier; report = placement_report }
      | None -> Infeasible)

let default_options = Lp.Branch_bound.default_options

let solve_direct ?(options = default_options) ?(tol = 0.01)
    ?(max_multiplier = 65536.) q =
  solve_query ~options ~tol ~max_multiplier q

(* ---- the daemon --------------------------------------------------- *)

type entry = {
  e_key : string;
  e_instance : string;
  e_answer : answer;
  e_digest : string;
  e_tiers : int array option;  (* warm-start seed for near-repeats *)
  e_basis : Lp.Basis.t option;
  e_born : int;  (* insertion stamp: the newest entry anchors warm starts *)
  mutable e_stamp : int;  (* recency stamp: least recent is evicted *)
}

type t = {
  capacity : int;
  options : Lp.Branch_bound.options;
  tol : float;
  max_multiplier : float;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable c_queries : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_warm : int;
  mutable c_inserts : int;
  mutable c_evictions : int;
}

let create ?(capacity = 512) ?(options = default_options) ?(tol = 0.01)
    ?(max_multiplier = 65536.) () =
  if capacity < 0 then invalid_arg "Service.create: negative capacity";
  {
    capacity;
    options;
    tol;
    max_multiplier;
    table = Hashtbl.create (Int.max 16 capacity);
    clock = 0;
    c_queries = 0;
    c_hits = 0;
    c_misses = 0;
    c_warm = 0;
    c_inserts = 0;
    c_evictions = 0;
  }

let counters t =
  {
    queries = t.c_queries;
    hits = t.c_hits;
    misses = t.c_misses;
    warm_starts = t.c_warm;
    inserts = t.c_inserts;
    evictions = t.c_evictions;
    resident = Hashtbl.length t.table;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let request_tag t = function
  | Rate r -> Printf.sprintf "r:%Lx" (Int64.bits_of_float r)
  | Search ->
      Printf.sprintf "s:%Lx:%Lx"
        (Int64.bits_of_float t.tol)
        (Int64.bits_of_float t.max_multiplier)

let query_key t q = instance_key q.placement ^ "#" ^ request_tag t q.request

(* The warm anchor for a missed query: the most recently inserted
   resident entry with the same placement structure and a stored tier
   assignment.  Insertion stamps are unique, so the fold is
   deterministic regardless of hash-table iteration order. *)
let warm_anchor t inst =
  Hashtbl.fold
    (fun _ e best ->
      if e.e_instance = inst && e.e_tiers <> None then
        match best with
        | Some b when b.e_born >= e.e_born -> best
        | _ -> Some e
      else best)
    t.table None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e best ->
        match best with
        | Some b when b.e_stamp <= e.e_stamp -> best
        | _ -> Some e)
      t.table None
  in
  match victim with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.table e.e_key;
      t.c_evictions <- t.c_evictions + 1

let insert t ~key ~inst answer digest =
  let tiers, basis =
    match answer with
    | Placed { report; _ } ->
        ( Some report.Placement.tier_of,
          report.Placement.solver.Lp.Branch_bound.root_basis )
    | Infeasible | Failed _ -> (None, None)
  in
  let stamp = tick t in
  Hashtbl.replace t.table key
    {
      e_key = key;
      e_instance = inst;
      e_answer = answer;
      e_digest = digest;
      e_tiers = tiers;
      e_basis = basis;
      e_born = stamp;
      e_stamp = stamp;
    };
  t.c_inserts <- t.c_inserts + 1;
  while Hashtbl.length t.table > t.capacity do
    evict_lru t
  done

(* Per-query batch plan, fixed sequentially against the cache state at
   batch entry; the solves it schedules are data-independent, which is
   what makes query-level sharding answer-preserving. *)
type plan =
  | P_replay of entry
  | P_alias of int  (* exact duplicate of an earlier in-batch query *)
  | P_solve of { seed_tiers : int array option; seed_basis : Lp.Basis.t option }

let run_batch ?(shards = 1) t queries =
  if shards < 1 then invalid_arg "Service.run_batch: shards must be >= 1";
  let n = Array.length queries in
  t.c_queries <- t.c_queries + n;
  let insts = Array.map (fun q -> instance_key q.placement) queries in
  let keys =
    Array.mapi (fun i q -> insts.(i) ^ "#" ^ request_tag t q.request) queries
  in
  (* ---- plan (sequential) ---- *)
  let first_of_key = Hashtbl.create n in
  let plans =
    Array.init n (fun i ->
        match Hashtbl.find_opt t.table keys.(i) with
        | Some e ->
            t.c_hits <- t.c_hits + 1;
            e.e_stamp <- tick t;
            P_replay e
        | None -> (
            match Hashtbl.find_opt first_of_key keys.(i) with
            | Some j ->
                t.c_hits <- t.c_hits + 1;
                P_alias j
            | None ->
                t.c_misses <- t.c_misses + 1;
                Hashtbl.add first_of_key keys.(i) i;
                let seed_tiers, seed_basis =
                  match warm_anchor t insts.(i) with
                  | Some e ->
                      t.c_warm <- t.c_warm + 1;
                      (e.e_tiers, e.e_basis)
                  | None -> (None, None)
                in
                P_solve { seed_tiers; seed_basis }))
  in
  (* ---- solve (sharded) ---- *)
  let results : answer option array = Array.make n None in
  let latency = Array.make n 0. in
  let work =
    List.filter
      (fun i -> match plans.(i) with P_solve _ -> true | _ -> false)
      (List.init n Fun.id)
  in
  let solve_one i =
    match plans.(i) with
    | P_solve { seed_tiers; seed_basis } ->
        let t0 = Unix.gettimeofday () in
        let a =
          solve_query ~options:t.options ~tol:t.tol
            ~max_multiplier:t.max_multiplier ?initial_tiers:seed_tiers
            ?root_basis:seed_basis queries.(i)
        in
        latency.(i) <- (Unix.gettimeofday () -. t0) *. 1000.;
        results.(i) <- Some a
    | P_replay _ | P_alias _ -> ()
  in
  let shards = Int.max 1 (Int.min shards (List.length work)) in
  if shards = 1 then List.iter solve_one work
  else begin
    (* round-robin striping; each index is written by exactly one
       domain and [Domain.join] publishes the writes *)
    let doms =
      List.init shards (fun k ->
          Domain.spawn (fun () ->
              List.iteri
                (fun pos i -> if pos mod shards = k then solve_one i)
                work))
    in
    List.iter Domain.join doms
  end;
  (* ---- commit (sequential, query order) ---- *)
  let out = Array.make n None in
  for i = 0 to n - 1 do
    match plans.(i) with
    | P_replay e -> out.(i) <- Some (e.e_answer, e.e_digest, Hit)
    | P_alias j ->
        let a, d, _ = Option.get out.(j) in
        out.(i) <- Some (a, d, Hit)
    | P_solve { seed_tiers; seed_basis } ->
        let a = Option.get results.(i) in
        let d = answer_digest a in
        let served =
          if seed_tiers <> None || seed_basis <> None then Warm_start else Cold
        in
        out.(i) <- Some (a, d, served);
        (* budget failures are not worth pinning in the cache; with the
           default full-proof options they cannot occur *)
        (match a with
        | Failed _ -> ()
        | Placed _ | Infeasible -> insert t ~key:keys.(i) ~inst:insts.(i) a d)
  done;
  let c = counters t in
  Array.init n (fun i ->
      let answer, digest, served = Option.get out.(i) in
      { answer; digest; served; latency_ms = latency.(i); counters = c })

let pp_response ppf r =
  let tag =
    match r.served with Hit -> "hit" | Warm_start -> "warm" | Cold -> "cold"
  in
  (match r.answer with
  | Placed { rate; report } ->
      Format.fprintf ppf "placed rate x%.4f objective %g" rate
        report.Placement.objective
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Failed m -> Format.fprintf ppf "failed: %s" m);
  Format.fprintf ppf "  [%s, %.2f ms, %s]" tag r.latency_ms
    (String.sub r.digest 0 12)
