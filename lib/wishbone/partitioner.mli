(** The Wishbone partitioner: profile → preprocess → ILP → optimal
    node/server assignment (§3–§4).

    [solve] finds the minimum-cost single cut of the operator graph
    subject to the CPU and network budgets, or reports that no
    feasible partition exists (in which case §4.3's {!Rate_search}
    can find the highest sustainable input rate). *)

type report = {
  assignment : bool array;
      (** per original operator: [true] = embedded node *)
  cpu : float;  (** node CPU fraction consumed by the cut *)
  net : float;  (** cut bandwidth, bytes/s *)
  objective : float;  (** alpha*cpu + beta*net *)
  solver : Lp.Branch_bound.stats;
  supernodes : int;  (** problem size after preprocessing *)
  movable_supernodes : int;
  encoding : Ilp.encoding;
  preprocessed : bool;
}

type outcome =
  | Partitioned of report
  | No_feasible_partition
  | Solver_failure of string

val solve :
  ?encoding:Ilp.encoding ->
  ?preprocess:bool ->
  ?options:Lp.Branch_bound.options ->
  ?resources:Ilp.resource list ->
  ?initial:bool array ->
  ?root_basis:Lp.Basis.t ->
  Spec.t ->
  outcome
(** Defaults: [Restricted] encoding with preprocessing on — the
    configuration of the paper's prototype.  Graph contraction's
    dominance argument assumes the single-crossing restriction, so
    under the [General] encoding the [preprocess] flag is ignored and
    the uncontracted graph is solved (found by the fuzz oracles: a
    contracted supernode cannot express the general optimum that
    places an operator server-side below node-side successors).  [resources] adds §4.2.1's
    optional RAM / code-storage rows; the returned report's assignment
    respects them (they are checked by the ILP, not by
    {!Spec.feasible}).

    [initial] (a per-original-operator assignment, true = node) seeds
    the branch & bound incumbent, and [root_basis] warm-starts the
    root LP relaxation — both performance hints used by the
    incremental {!Rate_search}; neither changes the outcome.  The
    solved report's [solver.root_basis] can be fed back into the next
    structurally identical solve. *)

val report_of_placement : Spec.t -> Placement.report -> report
(** View a two-tier {!Placement.report} (tier 0 = node) through this
    module's report type, recomputing [cpu]/[net]/[objective] from the
    assignment via {!Spec.cut_stats}.  [solve] is exactly
    [Placement.solve (Placement.of_spec spec)] followed by this
    conversion. *)

val brute_force : ?max_movable:int -> Spec.t -> (bool array * float) option
(** Exhaustive search over all assignments of the movable operators
    (test oracle; refuses more than [max_movable] (default 20)
    movable ops).  Returns the best feasible assignment and its
    objective, or [None] when no assignment is feasible. *)

val node_ops : report -> int list
(** Original operator ids assigned to the node, ascending. *)

val pp_report : Dataflow.Graph.t -> Format.formatter -> report -> unit
