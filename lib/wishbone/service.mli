(** The fleet placement service: a persistent query daemon over the
    placement core (DESIGN.md §16).

    The paper treats partitioning as a one-shot compile step; a fleet
    of heterogeneous devices instead asks the same solver thousands of
    placement and rate-search questions, most of them repeats or
    near-repeats of each other (re-profiling, firmware updates, churn).
    This module turns {!Placement.solve} / {!Rate_search} into a
    server loop:

    - {e batches}: queries arrive as arrays and independent solves are
      sharded across [Domain]s at the {e query} level (the per-solve
      [workers] knob composes badly with one core per search);
    - {e caching}: completed solves are stored in an LRU-bounded cache
      keyed by [spec digest x platform digest x request].  An exact
      key hit replays the stored response without solving; a miss on a
      placement whose structure is already resident warm-starts from
      the stored tier assignment and {!Lp.Basis.t} root snapshot;
    - {e determinism}: responses (and every cache counter) are a pure
      function of the query history — independent of the shard count,
      and byte-identical to the direct no-service solve path
      ({!solve_direct}), which the [service-equivalence] fuzz oracle
      and the [@service] test suite enforce.

    The determinism argument: each batch is {e planned} sequentially
    against the cache state at batch entry (hit / alias / solve, warm
    hints chosen from already-resident entries), the planned solves
    are data-independent and run on any number of shards, and cache
    insertion/eviction replays sequentially in query-index order after
    the shards join.  Shard count therefore changes wall-clock only.
    Warm hints never change answers (the repo-wide warm-start
    contract, PR 1/5/6); the service additionally runs full proofs
    ([gap_tol = 0], no wall-clock limit) by default so that a
    budget-truncated solve cannot leak timing into an answer. *)

(** What a query asks of its placement: solve at one fixed rate
    multiplier, or binary-search the maximum sustainable rate
    (§4.3). *)
type request = Rate of float | Search

type query = { placement : Placement.t; request : request }

type answer =
  | Placed of { rate : float; report : Placement.report }
      (** feasible: the rate actually solved at (the query's fixed
          rate, or the rate the search settled on) and the placement
          report.  Replayed answers return the originally stored
          report, solver statistics included. *)
  | Infeasible  (** no feasible placement (at this rate / at any rate) *)
  | Failed of string  (** solver failure (budget exhaustion, bad data) *)

(** How a response was produced. *)
type served =
  | Hit  (** replayed from the cache (or from an identical query
             earlier in the same batch) *)
  | Warm_start
      (** solved, warm-started from a resident entry with the same
          placement structure at a different rate *)
  | Cold  (** solved from scratch *)

type counters = {
  queries : int;
  hits : int;  (** [hits + misses = queries] *)
  misses : int;  (** solved queries, warm or cold *)
  warm_starts : int;  (** subset of [misses] *)
  inserts : int;  (** [inserts - evictions = resident] *)
  evictions : int;
  resident : int;  (** entries currently cached, [<= capacity] *)
}

type response = {
  answer : answer;
  digest : string;
      (** hex digest of the canonical answer rendering (status, rate,
          objective, tier assignment — never solver timings), the
          byte-identity token of the equivalence oracle *)
  served : served;
  latency_ms : float;  (** wall-clock of this query's solve; ~0 on hits *)
  counters : counters;
      (** service counters as of the end of this query's batch *)
}

type t

val default_options : Lp.Branch_bound.options
(** {!Lp.Branch_bound.default_options}: full optimality proofs
    ([gap_tol = 0]) and no wall-clock limit, so answers are a pure
    function of the query and never of machine speed.  Callers who
    prefer the rate search's bounded-latency profile can pass
    {!Rate_search.default_search_options} to {!create} — equivalence
    to {!solve_direct} under the same options still holds, but answers
    then depend on the node/time budgets. *)

val create :
  ?capacity:int ->
  ?options:Lp.Branch_bound.options ->
  ?tol:float ->
  ?max_multiplier:float ->
  unit ->
  t
(** A fresh service.  [capacity] (default 512) bounds the cache in
    entries, LRU-evicted; [0] disables retention entirely (every
    insert evicts immediately, keeping the counter algebra intact).
    [options] drives every branch & bound ({!default_options});
    [tol] / [max_multiplier] parameterise [Search] queries exactly as
    in {!Rate_search.search_placement} (defaults 0.01 / 65536). *)

val counters : t -> counters
(** Cumulative counters across every batch served so far. *)

val instance_key : Placement.t -> string
(** Hex digest of the placement {e structure}: graph shape, operator
    identities and pins, bit-exact CPU/bandwidth coefficients, every
    tier and link budget and objective weight.  Two placements share
    an instance key iff the solver sees identical numbers — budgets
    included, so two specs equal modulo CPU budget never collide. *)

val query_key : t -> query -> string
(** [instance_key] extended with the request (rate bits, or the
    search's [tol]/[max_multiplier] bits): the cache key. *)

val answer_digest : answer -> string
(** The canonical digest stored in {!response.digest}: bit-exact over
    status, rate, objective and tier assignment; independent of solver
    statistics, cache state and wall-clock. *)

val run_batch : ?shards:int -> t -> query array -> response array
(** Serve one batch: plan against the cache, solve the misses on
    [shards] concurrent [Domain]s (default 1), commit results to the
    cache in query order.  [responses.(i)] answers [queries.(i)];
    answers, digests and counters are identical for every shard
    count.  Exact-duplicate queries within one batch are solved once
    and the copies served as {!Hit}s. *)

val solve_direct :
  ?options:Lp.Branch_bound.options ->
  ?tol:float ->
  ?max_multiplier:float ->
  query ->
  answer
(** The no-service reference path: the exact solve a fresh service
    would run for this query alone — {!Placement.solve} at the scaled
    rate, or {!Rate_search.search_placement} — with no cache and no
    warm hints.  The service-equivalence oracle holds every served
    answer to this function's output, byte for byte. *)

val pp_response : Format.formatter -> response -> unit
