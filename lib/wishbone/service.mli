(** The fleet placement service: a persistent query daemon over the
    placement core (DESIGN.md §16), with fault containment and
    crash-safe checkpoints (§17).

    The paper treats partitioning as a one-shot compile step; a fleet
    of heterogeneous devices instead asks the same solver thousands of
    placement and rate-search questions, most of them repeats or
    near-repeats of each other (re-profiling, firmware updates, churn).
    This module turns {!Placement.solve} / {!Rate_search} into a
    server loop:

    - {e batches}: queries arrive as arrays and independent solves are
      sharded across [Domain]s at the {e query} level (the per-solve
      [workers] knob composes badly with one core per search);
    - {e caching}: completed solves are stored in an LRU-bounded cache
      keyed by [spec digest x platform digest x request].  An exact
      key hit replays the stored response without solving; a miss on a
      placement whose structure is already resident warm-starts from
      the stored tier assignment and {!Lp.Basis.t} root snapshot;
    - {e determinism}: responses (and every cache counter) are a pure
      function of the query history — independent of the shard count,
      and byte-identical to the direct no-service solve path
      ({!solve_direct}), which the [service-equivalence] fuzz oracle
      and the [@service] test suite enforce;
    - {e containment}: every solve runs inside a per-query supervisor.
      An exception (the sparse engine's factorisation instability, a
      fault-plan injection, a plain bug) is retried up to [retries]
      times with a small capped backoff and then converted into a
      {!Failed} answer carrying the exception rendering — it never
      takes the batch down, and [ok + degraded + failed = queries]
      holds after every batch.  A simulated worker death
      ({!Fault_plan}) kills its [Domain]; the batch re-runs the
      stranded queries inline, so even that path changes no response
      byte.  All containment counters are pure functions of the query
      history and fault plan — identical on 1, 2 or 8 shards;
    - {e degradation}: under a finite {!Lp.Branch_bound} budget
      ([max_nodes] / [pivot_budget]) an unproved-but-feasible solve
      returns {!Degraded} — the best incumbent, verified feasible,
      with its relative gap from the branch & bound dual bound —
      never an exception, never a silently suboptimal {!Placed}.

    The determinism argument: each batch is {e planned} sequentially
    against the cache state at batch entry (hit / alias / solve, warm
    hints chosen from already-resident entries), the planned solves
    are data-independent and run on any number of shards, and cache
    insertion/eviction replays sequentially in query-index order after
    the shards join.  Shard count therefore changes wall-clock only.
    Warm hints never change answers (the repo-wide warm-start
    contract, PR 1/5/6); the service additionally runs full proofs
    ([gap_tol = 0], no wall-clock limit) by default so that a
    budget-truncated solve cannot leak timing into an answer.  Under a
    finite {e work-unit} budget ([pivot_budget]/[max_nodes], unlike
    [time_limit]) answers stay machine-independent, so a budgeted
    service is still reproducible — only [time_limit] trades that
    away. *)

(** What a query asks of its placement: solve at one fixed rate
    multiplier, or binary-search the maximum sustainable rate
    (§4.3). *)
type request = Rate of float | Search

type query = { placement : Placement.t; request : request }

type answer =
  | Placed of { rate : float; report : Placement.report }
      (** feasible and proved optimal: the rate actually solved at
          (the query's fixed rate, or the rate the search settled on)
          and the placement report.  Replayed answers return the
          originally stored report, solver statistics included. *)
  | Degraded of { rate : float; report : Placement.report; gap : float }
      (** feasible but unproved: the solver budget ran out with a
          verified-feasible incumbent in hand.  [gap] is the relative
          distance from the branch & bound dual bound,
          [|objective - best_bound| / max(1, |objective|)] — the
          certified interval the true optimum lies in.  For [Search]
          queries, degraded additionally means the rate itself is a
          safe lower bound on the true maximum (some bisection probe
          died on the budget and was conservatively treated as
          infeasible); [gap] then bounds the placement objective at
          the returned rate. *)
  | Infeasible
      (** no feasible placement.  For [Rate] queries this is a proof;
          for [Search] queries under a finite budget it means no rate
          could be {e certified} feasible (conservative). *)
  | Failed of string
      (** solver failure: budget exhausted with no incumbent, bad
          data, or an exception contained by the supervisor (the
          rendering includes the exception; injected faults read
          [Injected_fault]).  Never cached. *)

(** How a response was produced. *)
type served =
  | Hit  (** replayed from the cache (or from an identical query
             earlier in the same batch) *)
  | Warm_start
      (** solved, warm-started from a resident entry with the same
          placement structure at a different rate *)
  | Cold  (** solved from scratch *)

type counters = {
  queries : int;
  hits : int;  (** [hits + misses = queries] *)
  misses : int;  (** solved queries, warm or cold *)
  warm_starts : int;  (** subset of [misses] *)
  inserts : int;  (** [inserts - evictions = resident] *)
  evictions : int;
  resident : int;  (** entries currently cached, [<= capacity] *)
  ok : int;  (** [Placed]/[Infeasible] responses; [ok + degraded + failed = queries] *)
  degraded : int;  (** [Degraded] responses (replayed hits included) *)
  failed : int;  (** [Failed] responses *)
  retries : int;
      (** extra solve attempts beyond each query's first — a pure
          function of the query history and fault plan, independent
          of shard count *)
  worker_deaths : int;
      (** simulated worker kills absorbed ({!Fault_plan}); each
          planned kill counts exactly once, on any shard count *)
}

type response = {
  answer : answer;
  digest : string;
      (** hex digest of the canonical answer rendering (status, rate,
          objective, gap, tier assignment — never solver timings), the
          byte-identity token of the equivalence oracle *)
  served : served;
  latency_ms : float;  (** wall-clock of this query's solve; ~0 on hits *)
  counters : counters;
      (** service counters as of the end of this query's batch *)
}

exception Injected_fault of string
(** The exception raised by {!Fault_plan} injections — transient
    declines, permanent faults and mid-solve crashes all surface as
    [Injected_fault] so tests can tell injected failures from real
    ones.  Contained by the supervisor like any other exception. *)

(** Seeded solver-fault injection — the PR 3 network-fault recipe
    ({!Netsim.Testbed}) applied to the service layer.  A plan decides,
    per global query sequence number, whether a solve misbehaves and
    how:

    - {e transient decline}: the first attempt raises
      {!Injected_fault}; a retry succeeds — the factorisation
      instability path;
    - {e permanent fault}: every attempt raises — exhausts the retry
      budget and surfaces as {!Failed};
    - {e mid-solve crash}: the first attempt raises from inside branch
      & bound at its k-th node expansion (via
      {!Lp.Branch_bound.options.on_node}); a retry runs clean;
    - {e worker death}: the first attempt kills its worker [Domain];
      the batch absorbs the death, re-runs the stranded queries
      inline, and resumes the victim at attempt 1.

    Decisions derive as [Prng.derive seed [11; seq]] ([11] is the
    service-fault namespace; the network testbed uses [[1; k]], the
    fuzzer [[oracle; case]]), so a plan replays bit-identically across
    runs and shard counts, and {!none} leaves every code path
    bit-identical to a build without fault injection. *)
module Fault_plan : sig
  type t

  val none : t
  (** No injection; zero overhead — the default. *)

  val seeded : ?rate:float -> int -> t
  (** [seeded seed] injects a fault into roughly [rate] (default 0.1)
      of solved queries, kind chosen uniformly among the four above.
      Equal seeds give equal plans. *)
end

type t

val default_options : Lp.Branch_bound.options
(** {!Lp.Branch_bound.default_options}: full optimality proofs
    ([gap_tol = 0]) and no wall-clock limit, so answers are a pure
    function of the query and never of machine speed.  Callers who
    prefer the rate search's bounded-latency profile can pass
    {!Rate_search.default_search_options} to {!create} — equivalence
    to {!solve_direct} under the same options still holds, but answers
    then depend on the node/time budgets.  For a {e reproducible}
    deadline, bound [max_nodes]/[pivot_budget] instead of
    [time_limit]: work-unit budgets stop at the same node on every
    machine, and exhaustion surfaces as {!Degraded} or {!Failed},
    never as a timing-dependent wrong answer. *)

val create :
  ?capacity:int ->
  ?options:Lp.Branch_bound.options ->
  ?tol:float ->
  ?max_multiplier:float ->
  ?retries:int ->
  ?fault_plan:Fault_plan.t ->
  unit ->
  t
(** A fresh service.  [capacity] (default 512) bounds the cache in
    entries, LRU-evicted; [0] disables retention entirely (every
    insert evicts immediately, keeping the counter algebra intact).
    [options] drives every branch & bound ({!default_options});
    [tol] / [max_multiplier] parameterise [Search] queries exactly as
    in {!Rate_search.search_placement} (defaults 0.01 / 65536).
    [retries] (default 1) bounds the supervisor's extra attempts per
    query; [fault_plan] (default {!Fault_plan.none}) injects seeded
    solver faults for testing. *)

val counters : t -> counters
(** Cumulative counters across every batch served so far. *)

val instance_key : Placement.t -> string
(** Hex digest of the placement {e structure}: graph shape, operator
    identities and pins, bit-exact CPU/bandwidth coefficients, every
    tier and link budget and objective weight.  Two placements share
    an instance key iff the solver sees identical numbers — budgets
    included, so two specs equal modulo CPU budget never collide. *)

val query_key : t -> query -> string
(** [instance_key] extended with the request (rate bits, or the
    search's [tol]/[max_multiplier] bits): the cache key. *)

val answer_digest : answer -> string
(** The canonical digest stored in {!response.digest}: bit-exact over
    status, rate, objective, gap and tier assignment; independent of
    solver statistics, cache state and wall-clock. *)

val run_batch : ?shards:int -> t -> query array -> response array
(** Serve one batch: plan against the cache, solve the misses on
    [shards] concurrent [Domain]s (default 1), commit results to the
    cache in query order.  [responses.(i)] answers [queries.(i)];
    answers, digests and counters are identical for every shard
    count.  Exact-duplicate queries within one batch are solved once
    and the copies served as {!Hit}s.  No exception escapes: solver
    faults (real or injected) surface as {!Failed} answers and
    simulated worker deaths are absorbed and re-run. *)

val solve_direct :
  ?options:Lp.Branch_bound.options ->
  ?tol:float ->
  ?max_multiplier:float ->
  query ->
  answer
(** The no-service reference path: the exact solve a fresh service
    would run for this query alone — {!Placement.solve} at the scaled
    rate, or {!Rate_search.search_placement} — with no cache, no warm
    hints, no supervisor and no fault plan.  The service-equivalence
    oracle holds every served answer to this function's output, byte
    for byte. *)

(** {2 Crash-safe checkpoints}

    [checkpoint] persists the cache — every entry's key, answer,
    warm-start tier assignment and {!Lp.Basis.t} snapshot — plus the
    LRU clock and cumulative counters, so a restarted service replays
    byte-identically to one that never died.  The file carries a
    per-section MD5 and each entry's stored answer digest is
    recomputed on load; any mismatch (corruption, truncation, a stale
    format, changed [tol]/[max_multiplier]) degrades to a cold cache —
    never to wrong answers.  Solver options, retry budget and fault
    plan are configuration, not state: they are not persisted and are
    supplied afresh to {!restore}. *)

type restore_outcome =
  | Restored of int  (** the cache came back with this many entries *)
  | Cold_start of string
      (** the snapshot was unusable (the reason says why); the
          returned service is fresh, exactly as {!create} *)

val checkpoint : t -> string -> unit
(** [checkpoint t path] atomically writes the snapshot (a temporary
    file renamed into place), so a crash mid-write leaves any previous
    snapshot intact. *)

val restore :
  ?capacity:int ->
  ?options:Lp.Branch_bound.options ->
  ?tol:float ->
  ?max_multiplier:float ->
  ?retries:int ->
  ?fault_plan:Fault_plan.t ->
  string ->
  t * restore_outcome
(** [restore path] loads a snapshot.  On success the cache capacity,
    clock, counters and entries come from the file ([?capacity] is
    ignored); on any integrity or staleness failure the optional
    arguments feed a fresh {!create} and the outcome says why.
    Passing [tol]/[max_multiplier] different (bit-exactly) from the
    snapshot's is a staleness failure: cached [Search] answers were
    computed under the old parameters and must not be replayed under
    new ones. *)

val pp_response : Format.formatter -> response -> unit
