(** Restricted three-tier partitioning (§9, future work).

    Motes communicate only with microservers and microservers only
    with the central server.  Each operator is assigned one of three
    tiers, monotonically descending along the dataflow (a stream may
    cross mote→microserver once and microserver→server once).

    ILP: two ordered binaries per supernode, [x_v] ("at least as deep
    as the mote") and [y_v] ("at least as deep as a microserver"),
    with [x_v <= y_v]; per-edge monotonicity [x_u >= x_v],
    [y_u >= y_v]; CPU budgets per tier and bandwidth budgets per link
    layer; objective a weighted sum of the two cut bandwidths.

    Since the tier-graph refactor that ILP is built and solved by
    {!Placement} (the mote/microserver/central chain is its three-tier
    instance); this module constructs the instance and translates the
    report.  {!brute_force} remains an independent enumeration — the
    oracle the placement core is fuzzed against. *)

type tier = Mote | Microserver | Central

type t

val of_spec :
  ?mote_cpu_budget:float ->
  ?micro_cpu_budget:float ->
  ?mote_net_budget:float ->
  ?micro_net_budget:float ->
  ?beta_mote:float ->
  ?beta_micro:float ->
  micro_cpu:float array ->
  Spec.t ->
  t
(** Build an instance directly from a two-way spec (the mote tier)
    plus per-operator microserver CPU costs.  Mote budgets default to
    the spec's; microserver budgets default to unbudgeted; [beta_mote]
    defaults to 1 and [beta_micro] to 0.3.  Used by {!of_profile} and
    by the placement-equivalence fuzz oracle.
    @raise Invalid_argument when [micro_cpu] has the wrong length. *)

val of_profile :
  ?mode:Movable.mode ->
  ?mote_cpu_budget:float ->
  ?micro_cpu_budget:float ->
  ?mote_net_budget:float ->
  ?micro_net_budget:float ->
  ?beta_mote:float ->
  ?beta_micro:float ->
  mote:Profiler.Platform.t ->
  micro:Profiler.Platform.t ->
  Profiler.Profile.raw ->
  (t, string) result
(** Budgets default to each platform's descriptor.  [beta_mote]
    (default 1) and [beta_micro] (default 0.3) weight the two radio
    layers in the objective — mote radio bytes are usually the scarce
    resource. *)

type report = {
  tiers : tier array;  (** per original operator *)
  mote_cpu : float;
  micro_cpu : float;
  mote_net : float;  (** mote→microserver cut bandwidth, bytes/s *)
  micro_net : float;  (** microserver→server cut bandwidth *)
  objective : float;
  solver : Lp.Branch_bound.stats;
}

type outcome =
  | Partitioned of report
  | No_feasible_partition
  | Solver_failure of string

val solve : ?options:Lp.Branch_bound.options -> t -> outcome

val brute_force : ?max_super:int -> t -> (tier array * float) option
(** Exhaustive enumeration of every monotone tier assignment of the
    contracted supernodes (test oracle; refuses more than [max_super]
    (default 12) supernodes).  Returns per-original-operator tiers of
    the best feasible assignment and its objective — the same
    [beta_mote * mote_cut + beta_micro * micro_cut] the ILP minimises —
    or [None] when no assignment fits the budgets. *)

val tier_counts : report -> int * int * int
(** (mote, microserver, central) operator counts. *)
