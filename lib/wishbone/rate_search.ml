type result = { rate_multiplier : float; report : Partitioner.report }

type placement_result = {
  placement_multiplier : float;
  placement_report : Placement.report;
  placement_exact : bool;
}

(* Near the feasibility boundary the CPU constraint becomes a tight
   knapsack and exact branch & bound can take minutes (the paper saw
   12-minute proof tails, §7.1, and suggests terminating on an
   approximate bound).  The search therefore defaults to a small
   optimality gap and a per-solve budget: the returned partition may
   be marginally suboptimal at the boundary but the found rate is
   always feasible. *)
let default_search_options =
  {
    Lp.Branch_bound.default_options with
    Lp.Branch_bound.gap_tol = 0.005;
    max_nodes = 5_000;
    time_limit = 10.;
  }

let feasible_at ?encoding ?preprocess ?(options = default_search_options) spec
    factor =
  Partitioner.solve ?encoding ?preprocess ~options
    (Spec.scale_rate spec factor)

(* A probe's verdict at one rate multiple.  [Feasible (r, proved)]
   carries a verified-feasible report ([proved] = its optimality was
   certified within the solver budget); [Infeasible_at] is a proven
   infeasibility; [Unknown_at] is a budget exhaustion with no
   incumbent — the solver cannot say either way. *)
type 'a verdict = Feasible of 'a * bool | Infeasible_at | Unknown_at

(* The monotone bracket-and-bisect skeleton shared by the two-tier and
   tier-graph searches.  [attempt factor] solves at one rate multiple;
   feasibility must be monotone in [factor] for the bisection to be
   exact (up to [tol]).

   Degradation is conservative: an [Unknown_at] verdict is treated
   exactly like a proven infeasibility, so the bisection only ever
   keeps rates whose feasibility was positively demonstrated — the
   returned rate is always safe to deploy, merely possibly lower than
   the true maximum when budgets bite.  The returned [exact] flag is
   true iff no step's verdict was degraded: every kept report was
   proved optimal and every rejection was a proven infeasibility. *)
let bracket ~tol ~max_multiplier attempt =
  let exact = ref true in
  let note = function
    | Feasible (_, proved) -> if not proved then exact := false
    | Infeasible_at -> ()
    | Unknown_at -> exact := false
  in
  let attempt factor =
    let v = attempt factor in
    note v;
    v
  in
  (* establish a feasible lower bracket *)
  let rec find_lo factor =
    if factor < 1e-9 then None
    else
      match attempt factor with
      | Feasible (r, _) -> Some (factor, r)
      | Infeasible_at | Unknown_at -> find_lo (factor /. 4.)
  in
  match find_lo 1.0 with
  | None -> None
  | Some (lo0, r0) ->
      (* grow the upper bracket while feasible *)
      let rec find_hi lo best =
        let hi = lo *. 2. in
        if hi > max_multiplier then (lo, best, lo *. 2.)
        else
          match attempt hi with
          | Feasible (r, _) -> find_hi hi r
          | Infeasible_at | Unknown_at -> (lo, best, hi)
      in
      let lo, best, hi = find_hi lo0 r0 in
      let lo = ref lo and hi = ref hi and best = ref best in
      while (!hi -. !lo) /. !lo > tol do
        let mid = Float.sqrt (!lo *. !hi) in
        match attempt mid with
        | Feasible (r, _) ->
            best := r;
            lo := mid
        | Infeasible_at | Unknown_at -> hi := mid
      done;
      Some (!lo, !best, !exact)

let search ?encoding ?preprocess ?(options = default_search_options)
    ?(tol = 0.01) ?(max_multiplier = 65536.) ?(incremental = true) spec =
  (* Incremental state threaded across bracket/bisection steps.  Every
     step solves the same ILP with uniformly rescaled coefficients, so
     (a) the last feasible assignment, re-evaluated under the new
     scale, seeds the incumbent — a valid primal bound that prunes
     most of the tree near the feasibility boundary — and (b) the
     previous root basis warm-starts the root relaxation.  Both are
     hints: disabling [incremental] changes work, not answers. *)
  let prev_assignment = ref None in
  let root_basis = ref None in
  let attempt factor =
    let initial = if incremental then !prev_assignment else None in
    let basis = if incremental then !root_basis else None in
    match
      Partitioner.solve ?encoding ?preprocess ~options ?initial
        ?root_basis:basis
        (Spec.scale_rate spec factor)
    with
    | Partitioner.Partitioned r ->
        prev_assignment := Some r.Partitioner.assignment;
        (match r.Partitioner.solver.Lp.Branch_bound.root_basis with
        | Some b -> root_basis := Some b
        | None -> ());
        Feasible (r, r.Partitioner.solver.Lp.Branch_bound.proved_optimal)
    | Partitioner.No_feasible_partition -> Infeasible_at
    | Partitioner.Solver_failure _ -> Unknown_at
  in
  Option.map
    (fun (m, r, _) -> { rate_multiplier = m; report = r })
    (bracket ~tol ~max_multiplier attempt)

let search_placement ?encoding ?preprocess
    ?(options = default_search_options) ?(tol = 0.01)
    ?(max_multiplier = 65536.) ?(incremental = true) ?initial_tiers
    ?root_basis:basis0 pl =
  (* [initial_tiers]/[root_basis] pre-seed the incremental state with a
     solve of the same structure at another rate (the placement
     service's near-repeat warm start); like every warm hint in this
     repo they change work, not answers *)
  let prev_tiers = ref initial_tiers in
  let root_basis = ref basis0 in
  let attempt factor =
    let initial = if incremental then !prev_tiers else None in
    let basis = if incremental then !root_basis else None in
    match
      Placement.solve ?encoding ?preprocess ~options ?initial
        ?root_basis:basis
        (Placement.scale_rate pl factor)
    with
    | Placement.Partitioned r ->
        prev_tiers := Some r.Placement.tier_of;
        (match r.Placement.solver.Lp.Branch_bound.root_basis with
        | Some b -> root_basis := Some b
        | None -> ());
        Feasible (r, r.Placement.solver.Lp.Branch_bound.proved_optimal)
    | Placement.No_feasible_partition -> Infeasible_at
    | Placement.Solver_failure _ -> Unknown_at
  in
  Option.map
    (fun (m, r, exact) ->
      { placement_multiplier = m; placement_report = r;
        placement_exact = exact })
    (bracket ~tol ~max_multiplier attempt)
