(** Closed-loop rate/partition adaptation.

    Wishbone's plan is static: a partition and input rate chosen from
    {e profiled} costs.  §7.3 shows what happens when the deployment
    disagrees with the profile — queue drops, collisions and processor
    involvement in communication push goodput far below the additive
    model's prediction, and nothing in the static story reacts.

    This controller closes the loop.  It repeatedly {e probes} an
    operating point (a rate multiplier and an assignment), observes
    the achieved goodput over a window, and when the observation
    misses the target it steps the rate down the §4.3 binary-search
    lattice — exactly the lattice {!Rate_search} descends at plan
    time, now driven by measured instead of predicted feasibility —
    and/or re-solves the partition with the {e measured} edge rates
    ({!Netsim.Testbed.result.edge_bytes_per_sec}), warm-starting the
    ILP from the previous solve's root basis.  (Re-solves go through
    {!Partitioner} and hence the generic {!Placement} core.)  Every
    step is recorded in a decision trace for inspection.

    The controller is environment-agnostic: it only sees the [probe]
    callback, so tests can drive it with a synthetic response surface
    and deployments with {!testbed_probe}. *)

type observation = {
  goodput : float;  (** goodput fraction achieved over the window *)
  input_fraction : float;
  msg_fraction : float;
  node_busy : float;
  edge_bytes_per_sec : float array;  (** measured, indexed by [eid] *)
}

val observe : Netsim.Testbed.result -> observation

type action =
  | Hold  (** converged: stay at this operating point *)
  | Set_rate of float  (** move to this rate multiplier *)
  | Repartition of { assignment : bool array; rate : float }
      (** switch to a re-solved partition at this rate *)

type decision = {
  step : int;
  rate : float;  (** rate multiplier in effect during the window *)
  obs : observation;
  action : action;
  note : string;
}

type config = {
  target : float;  (** goodput fraction to hold (default 0.9) *)
  tol : float;  (** lattice resolution, like {!Rate_search} (0.05) *)
  max_steps : int;  (** probe budget (default 16) *)
  repartition : bool;
      (** re-solve with measured edge rates on each miss (default
          true); when false the controller only moves the rate *)
  rate_min : float;  (** give up below this multiplier (1e-4) *)
}

val default_config : config

type outcome = {
  rate : float;  (** final operating rate multiplier *)
  assignment : bool array;  (** final partition *)
  goodput : float;  (** goodput observed at the final point *)
  trace : decision list;  (** oldest first *)
  converged : bool;
      (** the final point meets [target] and the bracket has closed to
          within [tol] (or no lower bracket exists to close) *)
}

val run :
  ?config:config ->
  spec:Spec.t ->
  assignment:bool array ->
  probe:(rate:float -> assignment:bool array -> observation) ->
  unit ->
  outcome
(** [spec] must be the {e unscaled} (multiplier 1) instance the static
    plan was computed from; measured edge rates are folded back into
    it before re-solving.  [assignment] is the static plan's
    partition, probed first at rate 1. *)

val testbed_probe :
  config:Netsim.Testbed.config ->
  graph:Dataflow.Graph.t ->
  sources:(rate:float -> Netsim.Testbed.source_spec list) ->
  rate:float ->
  assignment:bool array ->
  observation
(** Probe one operating point by running the simulated testbed:
    [sources ~rate] must build the source list with every source rate
    scaled by the multiplier. *)

val pp_trace : Format.formatter -> decision list -> unit
