open Dataflow

type tier = Mote | Microserver | Central

(* Since the tier-graph refactor the three-tier ILP is the three-tier
   instance of [Placement]; this module only builds the instance and
   translates reports.  [brute_force] stays an independent enumeration
   — it is the test oracle the placement core is checked against. *)
type t = { pl : Placement.t }

let of_spec ?mote_cpu_budget ?micro_cpu_budget ?mote_net_budget
    ?micro_net_budget ?(beta_mote = 1.) ?(beta_micro = 0.3) ~micro_cpu
    (spec : Spec.t) =
  let n = Graph.n_ops spec.Spec.graph in
  if Array.length micro_cpu <> n then
    invalid_arg "Three_tier.of_spec: micro_cpu has wrong length";
  let dflt o v = match o with Some x -> x | None -> v in
  {
    pl =
      Placement.v ~spec
        ~tiers:
          [
            {
              Placement.tname = "mote";
              cpu = spec.Spec.cpu;
              cpu_budget = dflt mote_cpu_budget spec.Spec.cpu_budget;
              alpha = 0.;
            };
            {
              Placement.tname = "microserver";
              cpu = micro_cpu;
              cpu_budget = dflt micro_cpu_budget infinity;
              alpha = 0.;
            };
            {
              Placement.tname = "central";
              cpu = Array.make n 0.;
              cpu_budget = infinity;
              alpha = 0.;
            };
          ]
        ~links:
          [
            {
              Placement.lname = "mote_radio";
              net_budget = dflt mote_net_budget spec.Spec.net_budget;
              beta = beta_mote;
            };
            {
              Placement.lname = "micro_uplink";
              net_budget = dflt micro_net_budget infinity;
              beta = beta_micro;
            };
          ]
        ();
  }

let of_profile ?(mode = Movable.Conservative) ?mote_cpu_budget
    ?micro_cpu_budget ?mote_net_budget ?micro_net_budget ?beta_mote
    ?beta_micro ~mote ~micro raw =
  match Spec.of_profile ~mode ~node_platform:mote raw with
  | Error _ as e -> e
  | Ok spec ->
      let micro_costed = Profiler.Profile.cost raw micro in
      Ok
        (of_spec
           ~mote_cpu_budget:
             (Option.value mote_cpu_budget
                ~default:mote.Profiler.Platform.cpu_budget)
           ~micro_cpu_budget:
             (Option.value micro_cpu_budget
                ~default:micro.Profiler.Platform.cpu_budget)
           ~mote_net_budget:
             (Option.value mote_net_budget
                ~default:mote.Profiler.Platform.radio_bytes_per_sec)
           ~micro_net_budget:
             (Option.value micro_net_budget
                ~default:micro.Profiler.Platform.radio_bytes_per_sec)
           ?beta_mote ?beta_micro
           ~micro_cpu:micro_costed.Profiler.Profile.cpu_fraction spec)

type report = {
  tiers : tier array;
  mote_cpu : float;
  micro_cpu : float;
  mote_net : float;
  micro_net : float;
  objective : float;
  solver : Lp.Branch_bound.stats;
}

type outcome =
  | Partitioned of report
  | No_feasible_partition
  | Solver_failure of string

let tier_of_index = function 0 -> Mote | 1 -> Microserver | _ -> Central

let solve ?options t =
  match Placement.solve ?options t.pl with
  | Placement.Partitioned r ->
      Partitioned
        {
          tiers = Array.map tier_of_index r.Placement.tier_of;
          mote_cpu = r.Placement.tier_cpu.(0);
          micro_cpu = r.Placement.tier_cpu.(1);
          mote_net = r.Placement.link_net.(0);
          micro_net = r.Placement.link_net.(1);
          objective = r.Placement.objective;
          solver = r.Placement.solver;
        }
  | Placement.No_feasible_partition -> No_feasible_partition
  | Placement.Solver_failure m -> Solver_failure m

let brute_force ?(max_super = 12) t =
  let spec = t.pl.Placement.spec in
  let c = Preprocess.contract spec in
  let n = c.Preprocess.n_super in
  if n > max_super then
    invalid_arg "Three_tier.brute_force: too many supernodes";
  let micro_cpu_per_op = t.pl.Placement.tiers.(1).Placement.cpu in
  let micro_cpu =
    Array.map
      (fun members ->
        List.fold_left (fun acc i -> acc +. micro_cpu_per_op.(i)) 0. members)
      c.Preprocess.members
  in
  let mote_cpu_budget_raw = t.pl.Placement.tiers.(0).Placement.cpu_budget in
  let micro_cpu_budget_raw = t.pl.Placement.tiers.(1).Placement.cpu_budget in
  let mote_net_budget_raw = t.pl.Placement.links.(0).Placement.net_budget in
  let micro_net_budget_raw = t.pl.Placement.links.(1).Placement.net_budget in
  let beta_mote = t.pl.Placement.links.(0).Placement.beta in
  let beta_micro = t.pl.Placement.links.(1).Placement.beta in
  (* the same vacuous-budget clamp the ILP encoding applies *)
  let clamp budget costs =
    Float.min budget (Array.fold_left ( +. ) 1. costs)
  in
  let mote_cpu_budget = clamp mote_cpu_budget_raw c.Preprocess.cpu in
  let micro_cpu_budget = clamp micro_cpu_budget_raw micro_cpu in
  let total_bw =
    Array.fold_left (fun acc (_, _, r) -> acc +. r) 1. c.Preprocess.edges
  in
  let mote_net_budget = Float.min mote_net_budget_raw total_bw in
  let micro_net_budget = Float.min micro_net_budget_raw total_bw in
  let rank = function Mote -> 2 | Microserver -> 1 | Central -> 0 in
  let allowed s =
    match c.Preprocess.placement.(s) with
    | Movable.Pin_node -> [ Mote ]
    | Movable.Pin_server -> [ Central ]
    | Movable.Movable -> [ Mote; Microserver; Central ]
  in
  let tiers = Array.make n Central in
  let best = ref None in
  let evaluate () =
    let monotone =
      Array.for_all
        (fun (u, v, _) -> rank tiers.(u) >= rank tiers.(v))
        c.Preprocess.edges
    in
    if monotone then begin
      let mote_cpu = ref 0. and micro_used = ref 0. in
      Array.iteri
        (fun s tier ->
          match tier with
          | Mote -> mote_cpu := !mote_cpu +. c.Preprocess.cpu.(s)
          | Microserver -> micro_used := !micro_used +. micro_cpu.(s)
          | Central -> ())
        tiers;
      let mote_net = ref 0. and micro_net = ref 0. in
      Array.iter
        (fun (u, v, r) ->
          if tiers.(u) = Mote && tiers.(v) <> Mote then
            mote_net := !mote_net +. r;
          if tiers.(u) <> Central && tiers.(v) = Central then
            micro_net := !micro_net +. r)
        c.Preprocess.edges;
      if
        !mote_cpu <= mote_cpu_budget +. 1e-9
        && !micro_used <= micro_cpu_budget +. 1e-9
        && !mote_net <= mote_net_budget +. 1e-6
        && !micro_net <= micro_net_budget +. 1e-6
      then begin
        let obj = (beta_mote *. !mote_net) +. (beta_micro *. !micro_net) in
        match !best with
        | Some (_, b) when b <= obj -> ()
        | _ -> best := Some (Array.copy tiers, obj)
      end
    end
  in
  let rec go s =
    if s = n then evaluate ()
    else
      List.iter
        (fun tier ->
          tiers.(s) <- tier;
          go (s + 1))
        (allowed s)
  in
  go 0;
  Option.map
    (fun (super_tiers, obj) ->
      let n_orig = Graph.n_ops spec.Spec.graph in
      (Array.init n_orig (fun i -> super_tiers.(c.Preprocess.super_of.(i))), obj))
    !best

let tier_counts r =
  Array.fold_left
    (fun (m, mi, c) t ->
      match t with
      | Mote -> (m + 1, mi, c)
      | Microserver -> (m, mi + 1, c)
      | Central -> (m, mi, c + 1))
    (0, 0, 0) r.tiers
