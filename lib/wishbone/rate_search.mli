(** Data rate as a free variable (§4.3).

    When no partition satisfies the budgets at the requested input
    rate, Wishbone binary-searches for the maximum rate multiplier
    that still admits a feasible partition.  Because CPU and network
    load grow monotonically with input rate, feasibility is monotone
    and binary search is exact (up to [tol]). *)

type result = {
  rate_multiplier : float;
      (** highest feasible multiple of the profiled input rate *)
  report : Partitioner.report;  (** the partition at that rate *)
}

type placement_result = {
  placement_multiplier : float;
      (** highest feasible multiple of the profiled input rate *)
  placement_report : Placement.report;  (** the placement at that rate *)
  placement_exact : bool;
      (** [true]: every probe that steered the search carried a proof —
          kept reports were proved optimal, rejections were proven
          infeasibilities — so the rate is the true maximum (up to
          [tol]).  [false]: some probe died on the solver budget
          (either returning an unproven incumbent, or no verdict at
          all, which the search conservatively treats as infeasible),
          so the returned rate is a {e safe lower bound} on the
          maximum: the reported placement is verified feasible at it,
          but a larger budget might have certified a higher rate. *)
}

val default_search_options : Lp.Branch_bound.options
(** A small optimality gap (0.5%) and a per-solve node/time budget.
    Near the feasibility boundary the CPU constraint is a tight
    knapsack and exact proofs can take minutes (the paper's §7.1 tail);
    the search trades marginal optimality for bounded runtime, as the
    paper itself suggests ("use an approximate lower bound to establish
    a termination condition").  Engine selection and worker count are
    inherited from {!Lp.Branch_bound.default_options} ([Auto] /
    sequential); override [solver]/[workers] here to force an engine or
    parallelise each solve — the rates found are identical either way. *)

val search :
  ?encoding:Ilp.encoding ->
  ?preprocess:bool ->
  ?options:Lp.Branch_bound.options ->
  ?tol:float ->
  ?max_multiplier:float ->
  ?incremental:bool ->
  Spec.t ->
  result option
(** [None] when even a vanishing input rate has no feasible partition
    (contradictory pinning or zero budgets).  [tol] is the relative
    precision of the search (default 0.01); [max_multiplier] caps the
    upward bracket (default 65536).  [options] defaults to
    {!default_search_options}.

    [incremental] (default [true]) makes each bracket/bisection step
    reuse the previous one: the last feasible assignment seeds the
    next solve's incumbent, and the root LP basis is carried across
    the rescaled instances.  On any instance a step solves to
    completion, reuse cannot change the feasibility verdict — warm
    starts are performance hints only.  When a step instead dies on
    [options]' node or time budget, a warm-started solve may prove
    feasibility inside a budget the cold solve exhausts, so on
    budget-bound instances the incremental search can find a
    ({e genuinely feasible}) rate the cold search misses — never the
    other way around.  Pass [false] to measure the cold baseline. *)

val search_placement :
  ?encoding:Placement.encoding ->
  ?preprocess:bool ->
  ?options:Lp.Branch_bound.options ->
  ?tol:float ->
  ?max_multiplier:float ->
  ?incremental:bool ->
  ?initial_tiers:int array ->
  ?root_basis:Lp.Basis.t ->
  Placement.t ->
  placement_result option
(** {!search} generalised to an arbitrary tier topology — any
    {!Placement.Topology.t} tree, of which a chain is the
    single-child special case: the same
    bracket-and-bisect loop (and the same defaults) driven through
    {!Placement.solve} via {!Placement.scale_rate}, threading the last
    feasible tier assignment and root basis across steps when
    [incremental].  [search] on a spec and [search_placement] on
    [Placement.of_spec spec] explore identical rate sequences.

    [initial_tiers] and [root_basis] pre-seed the incremental state
    from a completed solve of the same placement structure at another
    rate — {!Service}'s near-repeat warm start.  Both are performance
    hints with the same caveats as [incremental] itself. *)

val feasible_at : ?encoding:Ilp.encoding -> ?preprocess:bool ->
  ?options:Lp.Branch_bound.options -> Spec.t -> float ->
  Partitioner.outcome
(** Partition the problem with all rates scaled by the given factor. *)
