open Dataflow

type outcome = Pass | Fail of string

let is_pass = function Pass -> true | Fail _ -> false
let describe = function Pass -> "pass" | Fail msg -> msg

let failf fmt = Format.kasprintf (fun s -> Fail s) fmt

(* ---- oracle 1: LP optimality certificates ---- *)

let status_tag = function
  | Lp.Solution.Optimal _ -> "optimal"
  | Lp.Solution.Infeasible -> "infeasible"
  | Lp.Solution.Unbounded -> "unbounded"
  | Lp.Solution.Iteration_limit -> "iteration-limit"

let certified label ?lo ?hi problem (r : Lp.Simplex.result) =
  match Certificate.check_result ?lo ?hi problem r with
  | Certificate.Valid -> Ok ()
  | Certificate.Invalid msgs ->
      Error
        (Printf.sprintf "%s solve fails certificate: %s" label
           (String.concat "; " msgs))

let lp_certificate rng problem =
  let r0 = Lp.Simplex.solve_warm ~keep_hot:true problem in
  match certified "cold" problem r0 with
  | Error msg -> Fail msg
  | Ok () -> (
      (* perturb one variable's bounds and re-solve three ways *)
      let n = Lp.Problem.n_vars problem in
      let vars = Lp.Problem.vars problem in
      let lo = Array.map (fun (v : Lp.Problem.var_info) -> v.lo) vars in
      let hi = Array.map (fun (v : Lp.Problem.var_info) -> v.hi) vars in
      let v = Prng.int rng n in
      let span =
        if Float.is_finite hi.(v) then hi.(v) -. lo.(v) else 4.
      in
      if Prng.bool rng 0.5 then
        lo.(v) <- lo.(v) +. Prng.uniform rng 0. (0.6 *. span)
      else
        hi.(v) <-
          (if Float.is_finite hi.(v) then
             hi.(v) -. Prng.uniform rng 0. (0.6 *. span)
           else lo.(v) +. Prng.uniform rng 0. 4.);
      let cold = Lp.Simplex.solve_warm ~lo ~hi problem in
      let warm = Lp.Simplex.solve_warm ?warm:r0.basis ~lo ~hi problem in
      let hot = Lp.Simplex.solve_warm ?hot:r0.hot ~lo ~hi problem in
      (* the sparse revised simplex must agree with every dense path,
         cold and warm-started from a dense basis alike; its bases are
         certified by the same dense reconstruction.  The default runs
         use devex pricing over the Forrest–Tomlin factor path; the
         dantzig-forced pair pins the pricing rules to the same
         optimum on every case *)
      let sdata = Lp.Sparse.of_problem problem in
      let sparse_cold = Lp.Sparse.solve_warm ~lo ~hi sdata in
      let sparse_warm = Lp.Sparse.solve_warm ?warm:r0.basis ~lo ~hi sdata in
      let dz =
        { Lp.Simplex.default_options with pricing = Lp.Simplex.Dantzig }
      in
      let sparse_dz = Lp.Sparse.solve_warm ~options:dz ~lo ~hi sdata in
      let sparse_dz_warm =
        Lp.Sparse.solve_warm ~options:dz ?warm:r0.basis ~lo ~hi sdata
      in
      let runs =
        [
          ("cold", cold);
          ("warm", warm);
          ("hot", hot);
          ("sparse-cold", sparse_cold);
          ("sparse-warm", sparse_warm);
          ("sparse-dantzig-cold", sparse_dz);
          ("sparse-dantzig-warm", sparse_dz_warm);
        ]
      in
      if
        List.exists
          (fun (_, (r : Lp.Simplex.result)) ->
            r.status = Lp.Solution.Iteration_limit)
          runs
      then Pass (* inconclusive: a pivot budget ran out *)
      else begin
        let mismatch =
          List.find_opt
            (fun (_, (r : Lp.Simplex.result)) ->
              status_tag r.status <> status_tag cold.status)
            runs
        in
        match mismatch with
        | Some (label, r) ->
            failf "after bound perturbation, %s solve says %s but cold says %s"
              label (status_tag r.status) (status_tag cold.status)
        | None -> (
            let objective (r : Lp.Simplex.result) =
              match r.status with
              | Lp.Solution.Optimal s -> Some s.objective
              | _ -> None
            in
            let bad_obj =
              match objective cold with
              | None -> None
              | Some reference ->
                  List.find_opt
                    (fun (_, r) ->
                      match objective r with
                      | Some o ->
                          Float.abs (o -. reference)
                          > 1e-5 *. (1. +. Float.abs reference)
                      | None -> false)
                    runs
            in
            match bad_obj with
            | Some (label, r) ->
                failf "%s objective %g disagrees with cold %g" label
                  (Option.get (objective r))
                  (Option.get (objective cold))
            | None -> (
                let rec certify_all = function
                  | [] -> Pass
                  | (label, r) :: rest -> (
                      match certified label ~lo ~hi problem r with
                      | Ok () -> certify_all rest
                      | Error msg -> Fail msg)
                in
                certify_all runs))
      end)

(* ---- oracle 2: branch & bound vs exhaustive enumeration ---- *)

let ilp_brute problem =
  let status, stats = Lp.Branch_bound.solve problem in
  if
    status = Lp.Solution.Iteration_limit
    || ((not stats.Lp.Branch_bound.proved_optimal)
       && Lp.Solution.is_optimal status)
  then Pass (* inconclusive: node budget exhausted *)
  else
    let brute = Lp.Brute.solve problem in
    if status_tag status <> status_tag brute then
      failf "branch & bound says %s but enumeration says %s"
        (status_tag status) (status_tag brute)
    else
      match status with
      | Lp.Solution.Optimal sol -> (
          let brute_sol = Lp.Solution.get brute in
          let tol = 1e-5 *. (1. +. Float.abs brute_sol.objective) in
          if Float.abs (sol.objective -. brute_sol.objective) > tol then
            failf "incumbent objective %g but enumeration found %g"
              sol.objective brute_sol.objective
          else
            let viol = Lp.Problem.constraint_violation problem sol.x in
            if viol > 1e-5 then
              failf "incumbent violates constraints by %g" viol
            else
              let ints = Lp.Problem.integer_vars problem in
              let frac =
                List.exists
                  (fun v ->
                    Float.abs (sol.x.(v) -. Float.round sol.x.(v)) > 1e-6)
                  ints
              in
              if frac then Fail "incumbent is not integral"
              else
                match Lp.Brute.optimal_points ~obj_tol:1e-4 problem with
                | None -> Fail "enumeration lost its optimum on re-run"
                | Some (_, points) ->
                    let proj =
                      Array.of_list
                        (List.map (fun v -> Float.round sol.x.(v)) ints)
                    in
                    let member =
                      List.exists
                        (fun p ->
                          Array.length p = Array.length proj
                          && Array.for_all2
                               (fun a b -> Float.abs (a -. b) < 0.5)
                               p proj)
                        points
                    in
                    if member then Pass
                    else
                      failf
                        "incumbent integer assignment is not among the %d \
                         optimal points"
                        (List.length points))
      | _ -> Pass

(* ---- oracle 3: partitioner vs exhaustive cut enumeration ---- *)

let resource_ok resources node_side =
  List.for_all
    (fun (r : Wishbone.Ilp.resource) ->
      let used = ref 0. in
      Array.iteri
        (fun i on -> if on then used := !used +. r.per_op.(i))
        node_side;
      !used <= r.budget +. 1e-6)
    resources

let enumerate_cuts ?(resources = []) (spec : Wishbone.Spec.t)
    ~single_crossing =
  let n = Array.length spec.placement in
  let movable =
    List.filter
      (fun i -> spec.placement.(i) = Wishbone.Movable.Movable)
      (List.init n Fun.id)
  in
  let k = List.length movable in
  let node_side =
    Array.map (fun p -> p = Wishbone.Movable.Pin_node) spec.placement
  in
  let best = ref None in
  for mask = 0 to (1 lsl k) - 1 do
    List.iteri
      (fun bit i -> node_side.(i) <- mask land (1 lsl bit) <> 0)
      movable;
    if
      Wishbone.Spec.feasible ~require_single_crossing:single_crossing spec
        ~node_side
      && resource_ok resources node_side
    then begin
      let obj = Wishbone.Spec.objective_value spec ~node_side in
      match !best with
      | Some b when b <= obj -> ()
      | _ -> best := Some obj
    end
  done;
  !best

let check_config ?(resources = []) (spec : Wishbone.Spec.t) ~encoding
    ~preprocess ~best =
  let label =
    Printf.sprintf "%s/%s"
      (match encoding with
      | Wishbone.Ilp.Restricted -> "restricted"
      | Wishbone.Ilp.General -> "general")
      (if preprocess then "preprocessed" else "direct")
  in
  match Wishbone.Partitioner.solve ~encoding ~preprocess ~resources spec with
  | Wishbone.Partitioner.Solver_failure msg ->
      Error (Printf.sprintf "%s: solver failure: %s" label msg)
  | Wishbone.Partitioner.No_feasible_partition -> (
      match best with
      | None -> Ok ()
      | Some b ->
          Error
            (Printf.sprintf
               "%s: reported infeasible but a cut with objective %g exists"
               label b))
  | Wishbone.Partitioner.Partitioned rep -> (
      match best with
      | None ->
          Error
            (Printf.sprintf
               "%s: reported a partition but enumeration finds none feasible"
               label)
      | Some b ->
          let node_side = rep.assignment in
          let single = encoding = Wishbone.Ilp.Restricted in
          if
            not
              (Wishbone.Spec.feasible ~require_single_crossing:single spec
                 ~node_side)
          then Error (Printf.sprintf "%s: returned assignment infeasible" label)
          else if not (resource_ok resources node_side) then
            Error
              (Printf.sprintf "%s: returned assignment breaks a resource row"
                 label)
          else begin
            let cpu, net = Wishbone.Spec.cut_stats spec ~node_side in
            let obj = Wishbone.Spec.objective_value spec ~node_side in
            let tol = 1e-5 *. (1. +. Float.abs b) in
            if Float.abs (cpu -. rep.cpu) > tol then
              Error
                (Printf.sprintf "%s: reported cpu %g but cut_stats says %g"
                   label rep.cpu cpu)
            else if Float.abs (net -. rep.net) > tol then
              Error
                (Printf.sprintf "%s: reported net %g but cut_stats says %g"
                   label rep.net net)
            else if Float.abs (obj -. rep.objective) > tol then
              Error
                (Printf.sprintf
                   "%s: reported objective %g but assignment evaluates to %g"
                   label rep.objective obj)
            else if Float.abs (rep.objective -. b) > tol then
              Error
                (Printf.sprintf
                   "%s: objective %g but enumeration's optimum is %g" label
                   rep.objective b)
            else Ok ()
          end)

let cut_enumeration ?(resources = []) (spec : Wishbone.Spec.t) =
  let n_movable =
    Array.fold_left
      (fun acc p -> if p = Wishbone.Movable.Movable then acc + 1 else acc)
      0 spec.placement
  in
  if n_movable > 16 then Pass
  else begin
    let best_r = enumerate_cuts ~resources spec ~single_crossing:true in
    let best_g = enumerate_cuts ~resources spec ~single_crossing:false in
    let configs =
      [
        (Wishbone.Ilp.Restricted, true, best_r);
        (Wishbone.Ilp.Restricted, false, best_r);
        (Wishbone.Ilp.General, true, best_g);
        (Wishbone.Ilp.General, false, best_g);
      ]
    in
    let rec run = function
      | [] -> (
          match (best_r, best_g) with
          | Some r, Some g when g > r +. (1e-5 *. (1. +. Float.abs r)) ->
              failf
                "general optimum %g is worse than restricted optimum %g" g r
          | Some _, None ->
              Fail "restricted cut exists but no general cut does"
          | _ -> Pass)
      | (encoding, preprocess, best) :: rest -> (
          match check_config ~resources spec ~encoding ~preprocess ~best with
          | Ok () -> run rest
          | Error msg -> Fail msg)
    in
    run configs
  end

(* ---- oracle 4: split execution preserves semantics ---- *)

let sort_values = List.sort Stdlib.compare

let equal_multisets a b =
  List.length a = List.length b
  && List.for_all2 Dataflow.Value.equal (sort_values a) (sort_values b)

let run_split_equiv (spec : Wishbone.Spec.t) cut ~label =
  let g = spec.graph in
  let sources =
    Array.to_list (Graph.ops g)
    |> List.filter (fun (o : Dataflow.Op.t) ->
           o.side_effect = Dataflow.Op.Sensor_input)
    |> List.map (fun (o : Dataflow.Op.t) -> o.id)
  in
  let full = Runtime.Exec.full g in
  let split = Runtime.Splitrun.create ~node_of:(fun i -> cut.(i)) g in
  let failure = ref None in
  let record fmt =
    Format.kasprintf
      (fun s -> if !failure = None then failure := Some s)
      fmt
  in
  for k = 0 to 11 do
    List.iter
      (fun src ->
        let v = Dataflow.Value.Int ((13 * k) + src) in
        let fired = Runtime.Exec.fire full ~op:src ~port:0 v in
        let split_out = Runtime.Splitrun.inject split ~source:src v in
        if
          not
            (equal_multisets fired.Runtime.Exec.sink_values split_out)
        then
          record
            "%s: injection %d into op %d: full run delivered %d sink values, \
             split run %d (or different values)"
            label k src
            (List.length fired.Runtime.Exec.sink_values)
            (List.length split_out))
      sources
  done;
  (match !failure with
  | Some _ -> ()
  | None ->
      let node = Runtime.Splitrun.node_exec split 0 in
      let server = Runtime.Splitrun.server_exec split in
      for o = 0 to Graph.n_ops g - 1 do
        let f = Runtime.Exec.op_fires full o in
        let s =
          Runtime.Exec.op_fires node o + Runtime.Exec.op_fires server o
        in
        if f <> s then
          record "%s: op %d fired %d times in full run but %d split" label o
            f s
      done;
      let elems = ref 0 and bytes = ref 0 in
      Array.iter
        (fun (e : Graph.edge) ->
          if cut.(e.src) && not cut.(e.dst) then begin
            elems := !elems + Runtime.Exec.edge_elements full e.eid;
            bytes := !bytes + Runtime.Exec.edge_bytes full e.eid
          end)
        (Graph.edges g);
      let selems, sbytes = Runtime.Splitrun.crossing_traffic split in
      if (selems, sbytes) <> (!elems, !bytes) then
        record
          "%s: split runtime crossed (%d elements, %d bytes) but the full \
           run's cut edges carried (%d, %d)"
          label selems sbytes !elems !bytes);
  match !failure with None -> Ok () | Some msg -> Error msg

(* ---- oracle 5: shedding degrades, never corrupts ---- *)

(* every element of [small] occurs in [big] with at least the same
   multiplicity; both lists are consumed sorted *)
let rec sub_sorted small big =
  match (small, big) with
  | [], _ -> true
  | _ :: _, [] -> false
  | s :: s', b :: b' ->
      let c = Stdlib.compare s b in
      if c = 0 then sub_sorted s' b'
      else if c > 0 then sub_sorted small b'
      else false

let sub_multiset small big = sub_sorted (sort_values small) (sort_values big)

let degradation rng (spec : Wishbone.Spec.t) =
  let g = spec.graph in
  let cut = Gen.random_cut rng spec in
  (* The subtractive-loss property needs every stateful operator
     upstream of the lossy inter-half queue — exactly what the paper's
     conservative placement guarantees.  The rare instance that puts a
     stateful operator server-side (permissive mode) is out of the
     property's scope and passes trivially. *)
  let unsafe =
    Array.exists
      (fun (o : Dataflow.Op.t) -> o.stateful && not cut.(o.id))
      (Graph.ops g)
  in
  if unsafe then Pass
  else begin
    let sources =
      Array.to_list (Graph.ops g)
      |> List.filter (fun (o : Dataflow.Op.t) ->
             o.side_effect = Dataflow.Op.Sensor_input)
      |> List.map (fun (o : Dataflow.Op.t) -> o.id)
    in
    let policy =
      match Prng.int rng 3 with
      | 0 -> Runtime.Shed.Drop_newest
      | 1 -> Runtime.Shed.Drop_oldest
      | _ -> Runtime.Shed.Sample_hold (Prng.uniform rng 0.2 0.9)
    in
    let shed =
      {
        Runtime.Splitrun.policy;
        capacity = 1 + Prng.int rng 4;
        service = Prng.int rng 2;
        seed = Int64.to_int (Prng.int64 rng);
      }
    in
    let full = Runtime.Exec.full g in
    let split = Runtime.Splitrun.create ~shed ~node_of:(fun i -> cut.(i)) g in
    let full_sinks = ref [] in
    let shed_sinks = ref [] in
    for k = 0 to 11 do
      List.iter
        (fun src ->
          let v = Dataflow.Value.Int ((13 * k) + src) in
          let fired = Runtime.Exec.fire full ~op:src ~port:0 v in
          full_sinks :=
            List.rev_append fired.Runtime.Exec.sink_values !full_sinks;
          shed_sinks :=
            List.rev_append
              (Runtime.Splitrun.inject split ~source:src v)
              !shed_sinks)
        sources
    done;
    (* late service: whatever survived the queue is processed now *)
    shed_sinks := List.rev_append (Runtime.Splitrun.drain split) !shed_sinks;
    let dropped = Runtime.Splitrun.dropped split in
    let per_op = Array.fold_left ( + ) 0 (Runtime.Splitrun.drop_counts split) in
    if Runtime.Splitrun.queued split <> 0 then
      failf "degradation: queue not empty after an unbounded drain"
    else if per_op <> dropped then
      failf
        "degradation: per-operator drop counters sum to %d but the queue shed \
         %d crossings"
        per_op dropped
    else if not (sub_multiset !shed_sinks !full_sinks) then
      failf
        "degradation: the shedding run emitted a sink value the lossless run \
         never produced (%d vs %d sink values; loss must be subtractive)"
        (List.length !shed_sinks) (List.length !full_sinks)
    else if dropped = 0 && not (equal_multisets !shed_sinks !full_sinks) then
      failf
        "degradation: nothing was shed yet sink multisets differ (%d vs %d)"
        (List.length !shed_sinks) (List.length !full_sinks)
    else Pass
  end

(* ---- oracle 6: generic placement vs the dedicated solvers ---- *)

(* "solver budget exhausted" is the one Solver_failure that is not a
   bug — the branch & bound hit its node/time budget, so the case is
   inconclusive, like the ilp-brute budget guard *)
let budget_failure msg = msg = "solver budget exhausted"

let two_tier_placement (spec : Wishbone.Spec.t) =
  let pl = Wishbone.Placement.of_spec spec in
  let brute = Wishbone.Partitioner.brute_force spec in
  match (Wishbone.Placement.solve pl, brute) with
  | Wishbone.Placement.Solver_failure msg, _ ->
      if budget_failure msg then Ok ()
      else Error (Printf.sprintf "two-tier: solver failure: %s" msg)
  | Wishbone.Placement.No_feasible_partition, None -> Ok ()
  | Wishbone.Placement.No_feasible_partition, Some (_, b) ->
      Error
        (Printf.sprintf
           "two-tier: placement says infeasible but a cut with objective %g \
            exists"
           b)
  | Wishbone.Placement.Partitioned _, None ->
      Error "two-tier: placement found a cut but enumeration finds none"
  | Wishbone.Placement.Partitioned r, Some (_, b) ->
      let node_side =
        Array.map (fun tier -> tier = 0) r.Wishbone.Placement.tier_of
      in
      let tol = 1e-5 *. (1. +. Float.abs b) in
      if not (Wishbone.Spec.feasible spec ~node_side) then
        Error "two-tier: placement's assignment is infeasible"
      else if not (Wishbone.Placement.feasible pl ~tier_of:r.tier_of) then
        Error "two-tier: Placement.feasible rejects its own solution"
      else begin
        let obj = Wishbone.Spec.objective_value spec ~node_side in
        let cpu, net = Wishbone.Placement.stats pl ~tier_of:r.tier_of in
        let gobj = Wishbone.Placement.objective_value pl ~tier_of:r.tier_of in
        if Float.abs (obj -. b) > tol then
          Error
            (Printf.sprintf
               "two-tier: placement objective %g but enumeration's optimum \
                is %g"
               obj b)
        else if Float.abs (r.objective -. gobj) > tol then
          Error
            (Printf.sprintf
               "two-tier: report objective %g but the assignment evaluates \
                to %g"
               r.objective gobj)
        else if
          Float.abs (cpu.(0) -. r.tier_cpu.(0)) > tol
          || Float.abs (net.(0) -. r.link_net.(0)) > tol
        then
          Error
            (Printf.sprintf
               "two-tier: report says (cpu %g, net %g) but stats say (%g, %g)"
               r.tier_cpu.(0) r.link_net.(0) cpu.(0) net.(0))
        else Ok ()
      end

let three_tier_placement rng (spec : Wishbone.Spec.t) =
  (* synthesize a microserver tier: cheaper per-op CPU than the mote,
     randomly budgeted middle resources, a randomly weighted uplink *)
  let micro_cpu =
    Array.map (fun c -> c *. Prng.uniform rng 0.05 0.6) spec.cpu
  in
  let micro_total = Array.fold_left ( +. ) 0. micro_cpu in
  let micro_cpu_budget =
    if Prng.bool rng 0.5 then infinity
    else Prng.uniform rng 0.3 1.2 *. Float.max 1e-6 micro_total
  in
  let total_bw = Array.fold_left ( +. ) 0. spec.bandwidth in
  let micro_net_budget =
    if Prng.bool rng 0.5 then infinity
    else Prng.uniform rng 0.3 1.2 *. Float.max 1e-6 total_bw
  in
  let beta_micro = Prng.uniform rng 0.05 1.0 in
  let tt =
    Wishbone.Three_tier.of_spec ~micro_cpu_budget ~micro_net_budget
      ~beta_micro ~micro_cpu spec
  in
  match (Wishbone.Three_tier.solve tt, Wishbone.Three_tier.brute_force tt) with
  | Wishbone.Three_tier.Solver_failure msg, _ ->
      if budget_failure msg then Ok ()
      else Error (Printf.sprintf "three-tier: solver failure: %s" msg)
  | Wishbone.Three_tier.No_feasible_partition, None -> Ok ()
  | Wishbone.Three_tier.No_feasible_partition, Some (_, b) ->
      Error
        (Printf.sprintf
           "three-tier: placement says infeasible but an assignment with \
            objective %g exists"
           b)
  | Wishbone.Three_tier.Partitioned _, None ->
      Error "three-tier: placement found an assignment, enumeration none"
  | Wishbone.Three_tier.Partitioned r, Some (_, b) ->
      let tol = 1e-5 *. (1. +. Float.abs b) in
      let rank = function
        | Wishbone.Three_tier.Mote -> 2
        | Wishbone.Three_tier.Microserver -> 1
        | Wishbone.Three_tier.Central -> 0
      in
      let non_monotone =
        Array.exists
          (fun (e : Graph.edge) ->
            rank r.tiers.(e.src) < rank r.tiers.(e.dst))
          (Graph.edges spec.graph)
      in
      if non_monotone then
        Error "three-tier: returned tiers ascend along an edge"
      else if Float.abs (r.objective -. b) > tol then
        Error
          (Printf.sprintf
             "three-tier: placement objective %g but enumeration's optimum \
              is %g"
             r.objective b)
      else Ok ()

let placement_equivalence rng (spec : Wishbone.Spec.t) =
  let n_movable =
    Array.fold_left
      (fun acc p -> if p = Wishbone.Movable.Movable then acc + 1 else acc)
      0 spec.placement
  in
  let c = Wishbone.Preprocess.contract spec in
  if n_movable > 16 || c.Wishbone.Preprocess.n_super > 12 then Pass
  else
    match two_tier_placement spec with
    | Error msg -> Fail msg
    | Ok () -> (
        match three_tier_placement rng spec with
        | Error msg -> Fail msg
        | Ok () -> Pass)

(* ---- oracle 9: tree-topology equivalence ---- *)

(* Independent evaluation of a tier assignment on a tree instance:
   monotonicity, per-tier CPU, per-tree-edge network and the
   objective, all recomputed from the parent array with root-path
   walks — no shared code with Placement.stats/feasible. *)
let tree_eval (pl : Wishbone.Placement.t) ~monotone tier_of =
  let topo = pl.Wishbone.Placement.topology in
  let n_tiers = Array.length pl.Wishbone.Placement.tiers in
  let root = n_tiers - 1 in
  let spec = pl.Wishbone.Placement.spec in
  (* root-path edge set of each tier: tier k's uplink is edge k *)
  let path tier =
    let rec up x acc =
      if x = root then acc
      else up (Wishbone.Placement.Topology.parent topo x) (x :: acc)
    in
    up tier []
  in
  let pin_ok =
    let ok = ref true in
    Array.iteri
      (fun i tier ->
        (match pl.Wishbone.Placement.tier_pins.(i) with
        | Some tp -> if tier <> tp then ok := false
        | None -> (
            match spec.Wishbone.Spec.placement.(i) with
            | Wishbone.Movable.Pin_node -> if tier <> 0 then ok := false
            | Wishbone.Movable.Pin_server -> if tier <> root then ok := false
            | Wishbone.Movable.Movable -> ())))
      tier_of;
    !ok
  in
  let monotone_ok =
    (not monotone)
    || Array.for_all
         (fun (e : Graph.edge) ->
           let rec up x =
             x = tier_of.(e.dst)
             ||
             let p = Wishbone.Placement.Topology.parent topo x in
             p >= 0 && up p
           in
           up tier_of.(e.src))
         (Graph.edges spec.Wishbone.Spec.graph)
  in
  let tier_cpu = Array.make n_tiers 0. in
  Array.iteri
    (fun i tp ->
      tier_cpu.(tp) <-
        tier_cpu.(tp) +. pl.Wishbone.Placement.tiers.(tp).Wishbone.Placement.cpu.(i))
    tier_of;
  let link_net = Array.make (n_tiers - 1) 0. in
  Array.iter
    (fun (e : Graph.edge) ->
      let ps = path tier_of.(e.src) and pd = path tier_of.(e.dst) in
      List.iter
        (fun k ->
          if not (List.mem k pd) then
            link_net.(k) <-
              link_net.(k) +. spec.Wishbone.Spec.bandwidth.(e.eid))
        ps;
      List.iter
        (fun k ->
          if not (List.mem k ps) then
            link_net.(k) <-
              link_net.(k) +. spec.Wishbone.Spec.bandwidth.(e.eid))
        pd)
    (Graph.edges spec.Wishbone.Spec.graph);
  let cpu_ok =
    Array.for_all2
      (fun (t : Wishbone.Placement.tier) c ->
        (not (Float.is_finite t.Wishbone.Placement.cpu_budget))
        || c <= t.Wishbone.Placement.cpu_budget +. 1e-9)
      pl.Wishbone.Placement.tiers tier_cpu
  in
  let net_ok =
    Array.for_all2
      (fun (l : Wishbone.Placement.link) n ->
        (not (Float.is_finite l.Wishbone.Placement.net_budget))
        || n <= l.Wishbone.Placement.net_budget +. 1e-6)
      pl.Wishbone.Placement.links link_net
  in
  let obj = ref 0. in
  Array.iteri
    (fun tp c ->
      obj := !obj +. (pl.Wishbone.Placement.tiers.(tp).Wishbone.Placement.alpha *. c))
    tier_cpu;
  Array.iteri
    (fun k n ->
      obj := !obj +. (pl.Wishbone.Placement.links.(k).Wishbone.Placement.beta *. n))
    link_net;
  (pin_ok && monotone_ok && cpu_ok && net_ok, !obj)

(* Brute-force optimum over per-supernode tiers, enumerating the same
   contraction [Placement.solve] uses (Three_tier.brute_force's
   precedent), judged by [tree_eval] only.  [None] = no feasible
   assignment. *)
let tree_brute_force (pl : Wishbone.Placement.t) ~contracted ~monotone =
  let n_tiers = Array.length pl.Wishbone.Placement.tiers in
  let root = n_tiers - 1 in
  let c =
    if contracted then Wishbone.Preprocess.contract pl.Wishbone.Placement.spec
    else Wishbone.Preprocess.identity pl.Wishbone.Placement.spec
  in
  let n_super = c.Wishbone.Preprocess.n_super in
  let allowed =
    Array.init n_super (fun s ->
        let pin =
          List.fold_left
            (fun acc i ->
              match pl.Wishbone.Placement.tier_pins.(i) with
              | Some tp -> Some tp
              | None -> acc)
            None
            c.Wishbone.Preprocess.members.(s)
        in
        match pin with
        | Some tp -> [ tp ]
        | None -> (
            match c.Wishbone.Preprocess.placement.(s) with
            | Wishbone.Movable.Pin_node -> [ 0 ]
            | Wishbone.Movable.Pin_server -> [ root ]
            | Wishbone.Movable.Movable ->
                let rec tiers tp =
                  if tp >= n_tiers then [] else tp :: tiers (tp + 1)
                in
                tiers 0))
  in
  let best = ref None in
  let choice = Array.make n_super 0 in
  let rec enum s =
    if s = n_super then begin
      let tier_of =
        Array.map (fun sp -> choice.(sp)) c.Wishbone.Preprocess.super_of
      in
      let ok, obj = tree_eval pl ~monotone tier_of in
      if ok then
        match !best with
        | Some (_, b) when b <= obj -> ()
        | _ -> best := Some (Array.copy tier_of, obj)
    end
    else
      List.iter
        (fun tp ->
          choice.(s) <- tp;
          enum (s + 1))
        allowed.(s)
  in
  enum 0;
  !best

let tree_equivalence rng (spec : Wishbone.Spec.t) =
  let n_movable =
    Array.fold_left
      (fun acc p -> if p = Wishbone.Movable.Movable then acc + 1 else acc)
      0 spec.placement
  in
  let c = Wishbone.Preprocess.contract spec in
  if n_movable > 7 || c.Wishbone.Preprocess.n_super > 10 then Pass
  else begin
    let module P = Wishbone.Placement in
    let n = Array.length spec.cpu in
    (* random rooted tree, 3..5 tiers, topological parent numbering *)
    let n_tiers = 3 + Prng.int rng 3 in
    let parents =
      Array.init n_tiers (fun k ->
          if k = n_tiers - 1 then -1 else 0)
    in
    for k = 0 to n_tiers - 2 do
      parents.(k) <- k + 1 + Prng.int rng (n_tiers - 1 - k)
    done;
    let topo = P.Topology.of_parents parents in
    let total_bw = Array.fold_left ( +. ) 0. spec.bandwidth in
    (* tier 0 is the spec's node; middles are cheaper, randomly
       budgeted platforms; the root an unbudgeted server *)
    let mk_tier tp =
      if tp = 0 then
        {
          P.tname = "t0";
          cpu = spec.cpu;
          cpu_budget = spec.cpu_budget;
          alpha = spec.alpha;
        }
      else if tp = n_tiers - 1 then
        {
          P.tname = "root";
          cpu = Array.make n 0.;
          cpu_budget = infinity;
          alpha = 0.;
        }
      else begin
        let cpu = Array.map (fun cc -> cc *. Prng.uniform rng 0.05 0.6) spec.cpu in
        let total = Array.fold_left ( +. ) 0. cpu in
        let cpu_budget =
          if Prng.bool rng 0.5 then infinity
          else Prng.uniform rng 0.3 1.2 *. Float.max 1e-6 total
        in
        { P.tname = Printf.sprintf "t%d" tp; cpu; cpu_budget; alpha = 0. }
      end
    in
    let mk_link k =
      let net_budget =
        if Prng.bool rng 0.5 then infinity
        else Prng.uniform rng 0.3 1.2 *. Float.max 1e-6 total_bw
      in
      { P.lname = Printf.sprintf "up%d" k; net_budget; beta = Prng.uniform rng 0.05 1.0 }
    in
    let rec build mk i stop = if i >= stop then [] else
      let x = mk i in
      x :: build mk (i + 1) stop
    in
    let tiers = build mk_tier 0 n_tiers in
    let links = build mk_link 0 (n_tiers - 1) in
    (* occasionally tier-pin one movable operator to a random tier *)
    let pins =
      if Prng.bool rng 0.3 then begin
        let movable =
          List.filter
            (fun i -> spec.placement.(i) = Wishbone.Movable.Movable)
            (List.init n Fun.id)
        in
        match movable with
        | [] -> []
        | l -> [ (List.nth l (Prng.int rng (List.length l)), Prng.int rng n_tiers) ]
      end
      else []
    in
    let pl = P.v ~topology:topo ~pins ~spec ~tiers ~links () in
    let check ~encoding ~monotone label =
      (* enumerate the same space the solve uses: contraction under
         Restricted with no tier pins, the full graph otherwise *)
      let contracted = encoding = P.Restricted && pins = [] in
      match P.solve ~encoding pl with
      | P.Solver_failure msg ->
          if budget_failure msg then Ok ()
          else Error (Printf.sprintf "%s: solver failure: %s" label msg)
      | outcome -> (
          match (outcome, tree_brute_force pl ~contracted ~monotone) with
          | P.No_feasible_partition, None -> Ok ()
          | P.No_feasible_partition, Some (_, b) ->
              Error
                (Printf.sprintf
                   "%s: placement says infeasible but an assignment with \
                    objective %g exists"
                   label b)
          | P.Partitioned _, None ->
              Error
                (Printf.sprintf
                   "%s: placement found an assignment, enumeration none" label)
          | P.Partitioned r, Some (_, b) ->
              let tol = 1e-5 *. (1. +. Float.abs b) in
              let ok, obj = tree_eval pl ~monotone r.P.tier_of in
              let cpu, net = P.stats pl ~tier_of:r.P.tier_of in
              if not ok then
                Error
                  (Printf.sprintf "%s: returned assignment is infeasible"
                     label)
              else if Float.abs (r.P.objective -. obj) > tol then
                Error
                  (Printf.sprintf
                     "%s: report objective %g but the assignment evaluates \
                      to %g"
                     label r.P.objective obj)
              else if Float.abs (obj -. b) > tol then
                Error
                  (Printf.sprintf
                     "%s: placement objective %g but enumeration's optimum \
                      is %g"
                     label obj b)
              else if
                Array.exists2
                  (fun a b -> Float.abs (a -. b) > tol)
                  cpu r.P.tier_cpu
                || Array.exists2
                     (fun a b -> Float.abs (a -. b) > tol)
                     net r.P.link_net
              then Error (Printf.sprintf "%s: report stats disagree" label)
              else Ok ()
          | P.Solver_failure _, _ -> assert false)
    in
    (* the qcheck byte-identity property: a chain expressed as an
       explicit degenerate tree encodes the very same ILP (variables,
       rows, names, objective) as the implicit-chain constructor *)
    let chain_identical =
      let chain_tiers = build mk_tier 0 3
      and chain_links = build mk_link 0 2 in
      let plc = P.v ~spec ~tiers:chain_tiers ~links:chain_links () in
      let plt =
        P.v
          ~topology:(P.Topology.of_parents [| 1; 2; -1 |])
          ~spec ~tiers:chain_tiers ~links:chain_links ()
      in
      let cc = Wishbone.Preprocess.contract spec in
      let show pl =
        Format.asprintf "%a" Lp.Problem.pp
          (P.encode P.Restricted pl cc).P.problem
      in
      show plc = show plt
    in
    if not chain_identical then
      Fail "tree: chain-as-degenerate-tree encodes a different ILP"
    else
      match check ~encoding:P.Restricted ~monotone:true "tree-restricted" with
      | Error msg -> Fail msg
      | Ok () -> (
          match
            check ~encoding:P.General ~monotone:false "tree-general"
          with
          | Error msg -> Fail msg
          | Ok () -> Pass)
  end

(* ---- oracle 7: service equivalence ---- *)

let pp_request = function
  | Wishbone.Service.Rate r -> Printf.sprintf "rate %.6g" r
  | Wishbone.Service.Search -> "search"

let answers_equal a b =
  match (a, b) with
  | Wishbone.Service.Infeasible, Wishbone.Service.Infeasible -> true
  | Wishbone.Service.Failed m, Wishbone.Service.Failed m' -> m = m'
  | Wishbone.Service.Placed p, Wishbone.Service.Placed p' ->
      (* bit-exact: rate and objective compared as IEEE-754 patterns *)
      Int64.bits_of_float p.rate = Int64.bits_of_float p'.rate
      && Int64.bits_of_float p.report.Wishbone.Placement.objective
         = Int64.bits_of_float p'.report.Wishbone.Placement.objective
      && p.report.Wishbone.Placement.tier_of
         = p'.report.Wishbone.Placement.tier_of
  | Wishbone.Service.Degraded p, Wishbone.Service.Degraded p' ->
      Int64.bits_of_float p.rate = Int64.bits_of_float p'.rate
      && Int64.bits_of_float p.report.Wishbone.Placement.objective
         = Int64.bits_of_float p'.report.Wishbone.Placement.objective
      && Int64.bits_of_float p.gap = Int64.bits_of_float p'.gap
      && p.report.Wishbone.Placement.tier_of
         = p'.report.Wishbone.Placement.tier_of
  | _ -> false

let service_equivalence rng (spec : Wishbone.Spec.t) =
  let n_movable =
    Array.fold_left
      (fun acc p -> if p = Wishbone.Movable.Movable then acc + 1 else acc)
      0 spec.placement
  in
  if n_movable > 16 then Pass
  else begin
    let pl = Wishbone.Placement.of_spec spec in
    (* a budget-perturbed sibling: same graph and costs, tighter node
       CPU — its cache entries must never be served for [pl] *)
    let sibling =
      Wishbone.Placement.of_spec
        { spec with Wishbone.Spec.cpu_budget = spec.Wishbone.Spec.cpu_budget *. 0.7 }
    in
    let options = Lp.Branch_bound.default_options in
    let tol = 0.01 and max_multiplier = 256. in
    (* a small candidate-rate pool so repeats and near-repeats arise *)
    let rates =
      [| Prng.uniform rng 0.2 0.8; Prng.uniform rng 0.8 1.6;
         Prng.uniform rng 1.6 4.0 |]
    in
    let n_q = 4 + Prng.int rng 4 in
    let queries =
      Array.init n_q (fun _ ->
          let placement = if Prng.bool rng 0.25 then sibling else pl in
          let request =
            if Prng.bool rng 0.25 then Wishbone.Service.Search
            else Wishbone.Service.Rate rates.(Prng.int rng 3)
          in
          { Wishbone.Service.placement; request })
    in
    let capacity = 1 + Prng.int rng 4 in
    let shards = 1 + Prng.int rng 2 in
    let svc = Wishbone.Service.create ~capacity ~options ~tol ~max_multiplier () in
    (* direct answers memoised per query key, computed with no cache
       and no hints — the reference the service must reproduce *)
    let memo = Hashtbl.create 8 in
    let direct i =
      let key = Wishbone.Service.query_key svc queries.(i) in
      match Hashtbl.find_opt memo key with
      | Some a -> a
      | None ->
          let a =
            Wishbone.Service.solve_direct ~options ~tol ~max_multiplier
              queries.(i)
          in
          Hashtbl.add memo key a;
          a
    in
    (* budget-dependent answers: warm starts legitimately change how
       far a finite budget reaches, so these are not held to
       byte-identity (the default full-proof options never produce
       them; the guard is for caller-supplied budgets) *)
    let budgeted = function
      | Wishbone.Service.Failed _ | Wishbone.Service.Degraded _ -> true
      | _ -> false
    in
    let check_pass pass (responses : Wishbone.Service.response array) =
      let bad = ref None in
      Array.iteri
        (fun i (r : Wishbone.Service.response) ->
          if !bad = None then begin
            let d = direct i in
            if budgeted d || budgeted r.Wishbone.Service.answer then ()
            else if not (answers_equal d r.Wishbone.Service.answer) then
              bad :=
                Some
                  (Printf.sprintf
                     "service: %s pass, query %d (%s): served answer differs \
                      from direct solve"
                     pass i
                     (pp_request queries.(i).Wishbone.Service.request))
            else if
              Wishbone.Service.answer_digest d <> r.Wishbone.Service.digest
            then
              bad :=
                Some
                  (Printf.sprintf
                     "service: %s pass, query %d (%s): digest disagrees with \
                      the canonical answer digest"
                     pass i
                     (pp_request queries.(i).Wishbone.Service.request))
          end)
        responses;
      !bad
    in
    let r1 = Wishbone.Service.run_batch ~shards svc queries in
    match check_pass "cold" r1 with
    | Some msg -> Fail msg
    | None -> (
        (* replay against the warm cache: hits must replay byte-identically *)
        let r2 = Wishbone.Service.run_batch ~shards svc queries in
        match check_pass "warm" r2 with
        | Some msg -> Fail msg
        | None ->
            let c = Wishbone.Service.counters svc in
            if c.Wishbone.Service.hits + c.Wishbone.Service.misses
               <> c.Wishbone.Service.queries
            then
              failf "service: counters leak: %d hits + %d misses <> %d queries"
                c.Wishbone.Service.hits c.Wishbone.Service.misses
                c.Wishbone.Service.queries
            else if
              c.Wishbone.Service.inserts - c.Wishbone.Service.evictions
              <> c.Wishbone.Service.resident
            then
              failf
                "service: cache leak: %d inserts - %d evictions <> %d resident"
                c.Wishbone.Service.inserts c.Wishbone.Service.evictions
                c.Wishbone.Service.resident
            else if c.Wishbone.Service.resident > capacity then
              failf "service: %d resident entries over capacity %d"
                c.Wishbone.Service.resident capacity
            else Pass)
  end

(* ---- oracle 8: degraded answers are sound ---- *)

let degraded_soundness rng (spec : Wishbone.Spec.t) =
  let n_movable =
    Array.fold_left
      (fun acc p -> if p = Wishbone.Movable.Movable then acc + 1 else acc)
      0 spec.placement
  in
  if n_movable > 16 then Pass
  else begin
    let pl = Wishbone.Placement.of_spec spec in
    let base = Lp.Branch_bound.default_options in
    (* a random work-unit budget tight enough to bite: node and/or
       tree-wide pivot budgets, never wall-clock (determinism) *)
    let budget_nodes = Prng.bool rng 0.7 in
    let options =
      let o =
        if budget_nodes then
          { base with Lp.Branch_bound.max_nodes = Prng.int rng 6 }
        else base
      in
      if (not budget_nodes) || Prng.bool rng 0.5 then
        { o with Lp.Branch_bound.pivot_budget = 1 + Prng.int rng 40 }
      else o
    in
    let tol = 0.01 and max_multiplier = 256. in
    let request =
      if Prng.bool rng 0.25 then Wishbone.Service.Search
      else Wishbone.Service.Rate (Prng.uniform rng 0.2 4.0)
    in
    let q = { Wishbone.Service.placement = pl; request } in
    let a = Wishbone.Service.solve_direct ~options ~tol ~max_multiplier q in
    (* budget = infinity plumbing: a huge-but-finite pivot budget must
       reproduce the unbudgeted default path byte for byte *)
    let huge = { base with Lp.Branch_bound.pivot_budget = 1_000_000_000 } in
    let a_huge =
      Wishbone.Service.solve_direct ~options:huge ~tol ~max_multiplier q
    in
    let a_exact =
      Wishbone.Service.solve_direct ~options:base ~tol ~max_multiplier q
    in
    if
      Wishbone.Service.answer_digest a_huge
      <> Wishbone.Service.answer_digest a_exact
    then
      failf
        "degraded-soundness: a huge finite pivot budget changed the answer \
         vs the unlimited path"
    else
      match a with
      | Wishbone.Service.Failed _ ->
          (* budget exhausted before any incumbent: inconclusive *)
          Pass
      | Wishbone.Service.Placed { report; _ } ->
          if not report.Wishbone.Placement.solver.Lp.Branch_bound.proved_optimal
          then
            failf
              "degraded-soundness: Placed answer without an optimality proof"
          else Pass
      | Wishbone.Service.Infeasible -> (
          match request with
          | Wishbone.Service.Search ->
              (* under a finite budget, Search's None is conservative
                 ("no rate could be certified"), not a proof *)
              Pass
          | Wishbone.Service.Rate r -> (
              match
                Wishbone.Partitioner.brute_force
                  (Wishbone.Spec.scale_rate spec r)
              with
              | None -> Pass
              | Some (_, b) ->
                  failf
                    "degraded-soundness: infeasible claimed at rate %g but a \
                     cut with objective %g exists"
                    r b))
      | Wishbone.Service.Degraded { rate = r; report; gap } ->
          let s = report.Wishbone.Placement.solver in
          let expect_gap =
            Float.abs
              (report.Wishbone.Placement.objective
              -. s.Lp.Branch_bound.best_bound)
            /. Float.max 1.
                 (Float.abs report.Wishbone.Placement.objective)
          in
          if
            not
              (Wishbone.Placement.feasible
                 (Wishbone.Placement.scale_rate pl r)
                 ~tier_of:report.Wishbone.Placement.tier_of)
          then
            failf "degraded-soundness: degraded incumbent infeasible at \
                   rate %g" r
          else if Int64.bits_of_float gap <> Int64.bits_of_float expect_gap
          then
            failf
              "degraded-soundness: reported gap %g but bound arithmetic \
               gives %g"
              gap expect_gap
          else if (not (Float.is_nan gap)) && gap < 0. then
            failf "degraded-soundness: negative gap %g" gap
          else (
            match request with
            | Wishbone.Service.Search ->
                (* the rate is a certified-feasible lower bound (checked
                   above); the maximum itself is uncheckable cheaply *)
                Pass
            | Wishbone.Service.Rate _ -> (
                match
                  Wishbone.Partitioner.brute_force
                    (Wishbone.Spec.scale_rate spec r)
                with
                | None ->
                    failf
                      "degraded-soundness: feasible degraded incumbent but \
                       enumeration finds none"
                | Some (_, b) ->
                    let eps = 1e-5 *. (1. +. Float.abs b) in
                    if b > report.Wishbone.Placement.objective +. eps then
                      failf
                        "degraded-soundness: enumeration optimum %g beats \
                         the degraded incumbent %g (not a minimum?)"
                        b report.Wishbone.Placement.objective
                    else if
                      (not (Float.is_nan s.Lp.Branch_bound.best_bound))
                      && b < s.Lp.Branch_bound.best_bound -. eps
                    then
                      failf
                        "degraded-soundness: enumeration optimum %g lies \
                         below the certified dual bound %g"
                        b s.Lp.Branch_bound.best_bound
                    else Pass))
  end

let split_equivalence rng (spec : Wishbone.Spec.t) =
  let cuts = [ ("random cut", Gen.random_cut rng spec) ] in
  let cuts =
    match Wishbone.Partitioner.solve spec with
    | Wishbone.Partitioner.Partitioned rep ->
        cuts @ [ ("solver cut", rep.assignment) ]
    | _ -> cuts
  in
  let rec run = function
    | [] -> Pass
    | (label, cut) :: rest -> (
        match run_split_equiv spec cut ~label with
        | Ok () -> run rest
        | Error msg -> Fail msg)
  in
  run cuts

(* ---- oracle 10: scheduler equivalence on the simulated testbed ---- *)

let testbed_result_mismatch (a : Netsim.Testbed.result)
    (b : Netsim.Testbed.result) =
  let ints =
    [
      ("inputs_offered", a.inputs_offered, b.inputs_offered);
      ("inputs_processed", a.inputs_processed, b.inputs_processed);
      ("msgs_sent", a.msgs_sent, b.msgs_sent);
      ("msgs_received", a.msgs_received, b.msgs_received);
      ("packets_sent", a.packets_sent, b.packets_sent);
      ("packets_lost_collision", a.packets_lost_collision,
       b.packets_lost_collision);
      ("packets_lost_channel", a.packets_lost_channel,
       b.packets_lost_channel);
      ("packets_lost_queue", a.packets_lost_queue, b.packets_lost_queue);
      ("sink_outputs", a.sink_outputs, b.sink_outputs);
      ("msgs_duplicate", a.msgs_duplicate, b.msgs_duplicate);
      ("msgs_expired", a.msgs_expired, b.msgs_expired);
      ("msgs_pending", a.msgs_pending, b.msgs_pending);
      ("retransmissions", a.retransmissions, b.retransmissions);
      ("acks_sent", a.acks_sent, b.acks_sent);
      ("acks_lost", a.acks_lost, b.acks_lost);
      ("crashes", a.crashes, b.crashes);
      ("inputs_lost_down", a.inputs_lost_down, b.inputs_lost_down);
      ("events_processed", a.events_processed, b.events_processed);
      ("edge_rows", Array.length a.edge_bytes_per_sec,
       Array.length b.edge_bytes_per_sec);
    ]
  in
  let floats =
    [
      ("input_fraction", a.input_fraction, b.input_fraction);
      ("msg_fraction", a.msg_fraction, b.msg_fraction);
      ("goodput_fraction", a.goodput_fraction, b.goodput_fraction);
      ("node_busy_fraction", a.node_busy_fraction, b.node_busy_fraction);
      ("offered_bytes_per_sec", a.offered_bytes_per_sec,
       b.offered_bytes_per_sec);
    ]
  in
  let bad_int =
    List.find_opt (fun (_, x, y) -> x <> y) ints
  in
  match bad_int with
  | Some (name, x, y) -> Some (Printf.sprintf "%s: %d vs %d" name x y)
  | None -> (
      let differs x y =
        not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      in
      match List.find_opt (fun (_, x, y) -> differs x y) floats with
      | Some (name, x, y) ->
          Some (Printf.sprintf "%s: %.17g vs %.17g" name x y)
      | None ->
          let n = Array.length a.edge_bytes_per_sec in
          let rec scan i =
            if i >= n then None
            else if differs a.edge_bytes_per_sec.(i) b.edge_bytes_per_sec.(i)
            then
              Some
                (Printf.sprintf "edge_bytes_per_sec.(%d): %.17g vs %.17g" i
                   a.edge_bytes_per_sec.(i) b.edge_bytes_per_sec.(i))
            else scan (i + 1)
          in
          scan 0)

let sched_equivalence rng =
  (* a random small fleet: both schedulers must walk the identical
     event sequence (trace digest over the [?probe] hook) and land on
     the identical result, and the cell decomposition must be
     invariant under the domain count *)
  let n_nodes = 2 + Prng.int rng 11 in
  let rate = Prng.uniform rng 0.5 8. in
  let payload = 8 + (2 * Prng.int rng 56) in
  let duration = Prng.uniform rng 2. 8. in
  let seed = Prng.int rng 1_000_000 in
  let faults =
    if Prng.bool rng 0.5 then
      {
        Netsim.Faults.crash_rate =
          (if Prng.bool rng 0.5 then Prng.uniform rng 0.005 0.05 else 0.);
        reboot_s = Prng.uniform rng 0.5 3.;
        burst =
          (if Prng.bool rng 0.7 then
             Some (Netsim.Faults.burst_of_loss (Prng.uniform rng 0.05 0.3))
           else None);
        clock_drift =
          (if Prng.bool rng 0.5 then Prng.uniform rng 0. 100e-6 else 0.);
      }
    else Netsim.Faults.none
  in
  let reliable = Prng.bool rng 0.5 in
  let transport =
    if reliable then Netsim.Transport.default_reliable ()
    else Netsim.Transport.Unreliable
  in
  let b = Builder.create () in
  let src = Builder.in_node b (fun () -> Builder.source b ~name:"probe" ()) in
  Builder.sink b ~name:"collect" src;
  let graph = Builder.build b and src = Builder.op_id src in
  let payload_arr = Array.make (Int.max 1 ((payload - 2) / 2)) 0 in
  let sources =
    [
      {
        Netsim.Testbed.source = src;
        rate;
        gen = (fun ~node:_ ~seq:_ -> Value.Int16_arr payload_arr);
      };
    ]
  in
  let go ?probe ?cells ?(domains = 1) sched =
    let config =
      Netsim.Testbed.default_config ~n_nodes ~duration ~seed ~faults
        ~transport ~sched ?cells ~domains
        ~platform:Profiler.Platform.tmote_sky ~link:Netsim.Link.cc2420 ()
    in
    Netsim.Testbed.run ?probe config ~graph
      ~node_of:(fun i -> i = src)
      ~sources
  in
  let digest_run sched =
    let dg = ref 0x9E3779B97F4A7C1 in
    let probe t ev =
      let tb = Int64.to_int (Int64.bits_of_float t) land max_int in
      dg := (((!dg * 0x100000001B3) lxor tb) * 0x100000001B3) lxor ev
    in
    let r = go ~probe sched in
    (!dg, r)
  in
  let dh, rh = digest_run Netsim.Sched.Heap in
  let dw, rw = digest_run Netsim.Sched.Wheel in
  if rh.Netsim.Testbed.events_processed <= 0 then
    failf "sched-equivalence: vacuous case, no events processed"
  else if dh <> dw then
    failf
      "sched-equivalence: heap and wheel event traces diverge (digest %x vs \
       %x; %d vs %d events)"
      dh dw rh.Netsim.Testbed.events_processed
      rw.Netsim.Testbed.events_processed
  else
    match testbed_result_mismatch rh rw with
    | Some msg -> failf "sched-equivalence: heap vs wheel result: %s" msg
    | None ->
        if
          reliable
          && rh.Netsim.Testbed.msgs_sent
             <> rh.Netsim.Testbed.msgs_received
                + rh.Netsim.Testbed.msgs_expired
                + rh.Netsim.Testbed.msgs_pending
        then
          failf
            "sched-equivalence: reliable conservation broken: %d sent <> %d \
             received + %d expired + %d pending"
            rh.Netsim.Testbed.msgs_sent rh.Netsim.Testbed.msgs_received
            rh.Netsim.Testbed.msgs_expired rh.Netsim.Testbed.msgs_pending
        else begin
          let cell_size = 1 + Prng.int rng 4 in
          let cells = Array.init n_nodes (fun i -> i / cell_size) in
          let c1 = go ~cells Netsim.Sched.Wheel in
          let c2 = go ~cells ~domains:2 Netsim.Sched.Wheel in
          let ch = go ~cells ~domains:2 Netsim.Sched.Heap in
          match testbed_result_mismatch c1 c2 with
          | Some msg ->
              failf "sched-equivalence: wheel domains 1 vs 2: %s" msg
          | None -> (
              match testbed_result_mismatch c1 ch with
              | Some msg ->
                  failf
                    "sched-equivalence: multi-cell wheel vs heap: %s" msg
              | None -> Pass)
        end
