type oracle =
  | Lp_certificate
  | Ilp_brute
  | Cut_enumeration
  | Split_equivalence
  | Degradation
  | Placement_equivalence
  | Service_equivalence
  | Degraded_soundness
  | Tree_equivalence
  | Sched_equivalence

let all_oracles =
  [ Lp_certificate; Ilp_brute; Cut_enumeration; Split_equivalence;
    Degradation; Placement_equivalence; Service_equivalence;
    Degraded_soundness; Tree_equivalence; Sched_equivalence ]

let oracle_name = function
  | Lp_certificate -> "lp-certificate"
  | Ilp_brute -> "ilp-brute"
  | Cut_enumeration -> "cut-enumeration"
  | Split_equivalence -> "split-equivalence"
  | Degradation -> "degradation"
  | Placement_equivalence -> "placement-equivalence"
  | Service_equivalence -> "service-equivalence"
  | Degraded_soundness -> "degraded-soundness"
  | Tree_equivalence -> "tree-equivalence"
  | Sched_equivalence -> "sched-equivalence"

let oracle_of_name s =
  let s = String.lowercase_ascii (String.trim s) in
  (* "placement", "service", "degraded", "tree" and "sched" are short
     aliases *)
  if s = "placement" then Some Placement_equivalence
  else if s = "service" then Some Service_equivalence
  else if s = "degraded" then Some Degraded_soundness
  else if s = "tree" then Some Tree_equivalence
  else if s = "sched" then Some Sched_equivalence
  else List.find_opt (fun o -> oracle_name o = s) all_oracles

let oracle_index = function
  | Lp_certificate -> 0
  | Ilp_brute -> 1
  | Cut_enumeration -> 2
  | Split_equivalence -> 3
  | Degradation -> 4
  | Placement_equivalence -> 5
  | Service_equivalence -> 6
  | Degraded_soundness -> 7
  | Tree_equivalence -> 8
  | Sched_equivalence -> 9

type config = {
  seed : int;
  count : int;
  start : int;
  size : int;
  oracles : oracle list;
  shrink : bool;
  verbose : bool;
}

let default =
  {
    seed = 42;
    count = 100;
    start = 0;
    size = 8;
    oracles = all_oracles;
    shrink = true;
    verbose = false;
  }

type failure = {
  oracle : oracle;
  case : int;
  case_seed : int;
  message : string;
  reproducer : string;
  replay : string;
}

type summary = { cases_run : int; failures : failure list }

let all_passed s = s.failures = []

(* Per-case seed, reachable without generating earlier cases so that
   [--start i --count 1] replays case [i] exactly; derived through the
   repo-wide scheme (see prng.mli) rather than ad-hoc mixing. *)
let case_seed ~seed ~oracle ~case =
  Prng.derive seed [ oracle_index oracle; case ]

(* Randomised generator configuration for the spec-based oracles; all
   draws come from the case generator so replay is exact. *)
let spec_cfg rng ~size =
  {
    Gen.default_cfg with
    Gen.n_ops = 3 + Prng.int rng (Int.max 1 (size - 2));
    extra_edge_prob = Prng.uniform rng 0.05 0.35;
    stateful_prob = Prng.uniform rng 0. 0.4;
    mode =
      (if Prng.bool rng 0.5 then Wishbone.Movable.Conservative
       else Wishbone.Movable.Permissive);
    tightness = Prng.uniform rng 0. 1.;
    alpha = (if Prng.bool rng 0.3 then Prng.uniform rng 0. 2. else 0.);
  }

let safe_fails check x =
  match check x with Oracle.Pass -> false | Oracle.Fail _ -> true
  | exception _ -> false

let run_case cfg oracle ~case =
  let cs = case_seed ~seed:cfg.seed ~oracle ~case in
  let gen_rng = Prng.create cs in
  (* the oracle's own randomness is re-derivable, so the shrink
     predicate is a pure function of the instance *)
  let chk () = Prng.create (cs lxor 0x2545F491) in
  (* when the shrinker reduced the instance, report the (possibly
     different) failure message of the minimal reproducer *)
  let remsg check small orig =
    match check small with Oracle.Fail m -> m | _ | (exception _) -> orig
  in
  let mk message reproducer =
    Some
      {
        oracle;
        case;
        case_seed = cs;
        message;
        reproducer;
        replay =
          Printf.sprintf
            "fuzz --seed %d --start %d --count 1 --size %d --oracle %s"
            cfg.seed case cfg.size (oracle_name oracle);
      }
  in
  let pp_problem p = Format.asprintf "%a" Lp.Problem.pp p in
  let pp_spec s = Format.asprintf "%a" Gen.pp_spec s in
  match oracle with
  | Lp_certificate -> (
      let p = Gen.lp gen_rng ~size:cfg.size in
      let check p = Oracle.lp_certificate (chk ()) p in
      match check p with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          let small =
            if cfg.shrink then Shrink.problem (safe_fails check) p else p
          in
          mk (remsg check small msg) (pp_problem small))
  | Ilp_brute -> (
      let p = Gen.ilp gen_rng ~size:cfg.size in
      match Oracle.ilp_brute p with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          let small =
            if cfg.shrink then
              Shrink.problem (safe_fails Oracle.ilp_brute) p
            else p
          in
          mk (remsg Oracle.ilp_brute small msg) (pp_problem small))
  | Cut_enumeration -> (
      let scfg = spec_cfg gen_rng ~size:cfg.size in
      let s = Gen.spec gen_rng scfg in
      let resources = Gen.resources gen_rng s in
      match Oracle.cut_enumeration ~resources s with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          (* the shrinker cannot reproject resource rows across graph
             rewrites, so minimise only when the failure survives
             without them *)
          let check s' = Oracle.cut_enumeration s' in
          if cfg.shrink && safe_fails check s then begin
            let small = Shrink.spec (safe_fails check) s in
            mk (remsg check small msg) (pp_spec small)
          end
          else
            mk msg
              (pp_spec s
              ^ Printf.sprintf "\n  with %d resource rows (not shrunk)"
                  (List.length resources)))
  | Split_equivalence -> (
      let scfg = spec_cfg gen_rng ~size:cfg.size in
      let s = Gen.spec gen_rng scfg in
      let check s = Oracle.split_equivalence (chk ()) s in
      match check s with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          let small =
            if cfg.shrink then Shrink.spec (safe_fails check) s else s
          in
          mk (remsg check small msg) (pp_spec small))
  | Degradation -> (
      (* conservative placement keeps stateful operators upstream of
         the shedding queue, the property's domain of validity *)
      let scfg =
        { (spec_cfg gen_rng ~size:cfg.size) with
          Gen.mode = Wishbone.Movable.Conservative }
      in
      let s = Gen.spec gen_rng scfg in
      let check s = Oracle.degradation (chk ()) s in
      match check s with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          let small =
            if cfg.shrink then Shrink.spec (safe_fails check) s else s
          in
          mk (remsg check small msg) (pp_spec small))
  | Placement_equivalence -> (
      let scfg = spec_cfg gen_rng ~size:cfg.size in
      let s = Gen.spec gen_rng scfg in
      (* the synthesized microserver tier re-derives from the case
         seed, so the shrink predicate stays a pure function of the
         spec *)
      let check s = Oracle.placement_equivalence (chk ()) s in
      match check s with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          let small =
            if cfg.shrink then Shrink.spec (safe_fails check) s else s
          in
          mk (remsg check small msg) (pp_spec small))
  | Service_equivalence -> (
      let scfg = spec_cfg gen_rng ~size:cfg.size in
      let s = Gen.spec gen_rng scfg in
      (* the query batch, capacity and shard count re-derive from the
         case seed, so the shrink predicate stays a pure function of
         the spec *)
      let check s = Oracle.service_equivalence (chk ()) s in
      match check s with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          let small =
            if cfg.shrink then Shrink.spec (safe_fails check) s else s
          in
          mk (remsg check small msg) (pp_spec small))
  | Degraded_soundness -> (
      let scfg = spec_cfg gen_rng ~size:cfg.size in
      let s = Gen.spec gen_rng scfg in
      (* budgets and the request re-derive from the case seed, so the
         shrink predicate stays a pure function of the spec *)
      let check s = Oracle.degraded_soundness (chk ()) s in
      match check s with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          let small =
            if cfg.shrink then Shrink.spec (safe_fails check) s else s
          in
          mk (remsg check small msg) (pp_spec small))
  | Tree_equivalence -> (
      let scfg = spec_cfg gen_rng ~size:cfg.size in
      let s = Gen.spec gen_rng scfg in
      (* the random tier tree, platforms, uplink budgets and tier pins
         re-derive from the case seed, so the shrink predicate stays a
         pure function of the spec *)
      let check s = Oracle.tree_equivalence (chk ()) s in
      match check s with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          let small =
            if cfg.shrink then Shrink.spec (safe_fails check) s else s
          in
          mk (remsg check small msg) (pp_spec small))
  | Sched_equivalence -> (
      (* the testbed instance (fleet, faults, transport, cells) is
         drawn inside the oracle from the check stream, so the whole
         case re-derives from the case seed; there is no structure to
         shrink *)
      ignore gen_rng;
      match Oracle.sched_equivalence (chk ()) with
      | Oracle.Pass -> None
      | Oracle.Fail msg ->
          mk msg "(testbed instance re-derived from the case seed)")

let null_formatter =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>FAIL %s case %d (case seed %d)@,  %s@,  replay: %s@,%s@]"
    (oracle_name f.oracle) f.case f.case_seed f.message f.replay
    f.reproducer

let pp_summary ppf s =
  if s.failures = [] then
    Format.fprintf ppf "fuzz: %d cases, all oracles passed@." s.cases_run
  else
    Format.fprintf ppf "@[<v>fuzz: %d cases, %d FAILURES@,%a@]@." s.cases_run
      (List.length s.failures)
      (Format.pp_print_list pp_failure)
      s.failures

let run ?(out = null_formatter) cfg =
  let cases_run = ref 0 in
  let failures = ref [] in
  List.iter
    (fun oracle ->
      if cfg.verbose then
        Format.fprintf out "fuzz: %s, %d cases from %d@."
          (oracle_name oracle) cfg.count cfg.start;
      for case = cfg.start to cfg.start + cfg.count - 1 do
        incr cases_run;
        match run_case cfg oracle ~case with
        | None -> ()
        | Some f ->
            failures := f :: !failures;
            Format.fprintf out "%a@." pp_failure f
      done)
    cfg.oracles;
  { cases_run = !cases_run; failures = List.rev !failures }
