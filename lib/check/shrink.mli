(** Greedy minimisation of failing fuzz cases.

    Given a deterministic predicate "this instance still fails", each
    shrinker repeatedly tries size-reducing transformations and keeps
    any that preserve the failure, until no transformation applies —
    the classic QuickCheck shrink loop, specialised to partitioning
    specs and linear programs.  Predicates must be pure: the fuzz
    driver re-derives each oracle's PRNG from the case seed so that
    repeated evaluation is deterministic. *)

val spec :
  (Wishbone.Spec.t -> bool) -> Wishbone.Spec.t -> Wishbone.Spec.t
(** Transformations tried, in order: delete an interior operator
    (splicing every predecessor to every successor and inheriting the
    incoming edge's bandwidth), delete a single edge of a
    multi-input operator, zero an operator's CPU cost, zero an edge's
    bandwidth, relax either budget to the instance's total (making
    the row vacuous), and zero the [alpha] weight. *)

val problem : (Lp.Problem.t -> bool) -> Lp.Problem.t -> Lp.Problem.t
(** Transformations tried, in order: delete a constraint, delete a
    variable (dropping its terms everywhere), zero one constraint or
    objective coefficient, and zero a right-hand side. *)
