(** The randomized fuzz driver behind [bin/fuzz] and the [@fuzz] dune
    alias.

    Every case derives its own PRNG seed deterministically from
    [(seed, case index)], and each oracle check is a pure function of
    the generated instance plus that case seed — so any failure
    replays exactly with [--seed S --start I --count 1], and the
    shrinker can re-evaluate the failing predicate as often as it
    likes. *)

type oracle =
  | Lp_certificate
  | Ilp_brute
  | Cut_enumeration
  | Split_equivalence
  | Degradation
      (** shedding split execution loses subtractively, never corrupts *)
  | Placement_equivalence
      (** the generic placement core agrees with the dedicated two- and
          three-tier enumerations ("placement" is a CLI alias) *)
  | Service_equivalence
      (** the fleet placement service replays, warm-starts and shards
          byte-identically to the direct solve path ("service" is a
          CLI alias) *)
  | Degraded_soundness
      (** budget-degraded answers are feasible, gap-certified and
          bracket the brute-force optimum; budget = infinity is
          byte-identical to the unbudgeted path ("degraded" is a CLI
          alias) *)
  | Tree_equivalence
      (** tree-topology placement agrees with brute-force enumeration
          over random tier trees, and a chain expressed as a
          degenerate tree encodes the byte-identical ILP ("tree" is a
          CLI alias) *)
  | Sched_equivalence
      (** the timing-wheel event scheduler walks the identical event
          trace and lands on the bit-identical testbed result as the
          historical binary heap, across schedulers, cell
          decompositions and simulation-domain counts ("sched" is a
          CLI alias) *)

val all_oracles : oracle list
val oracle_name : oracle -> string
val oracle_of_name : string -> oracle option

type config = {
  seed : int;
  count : int;  (** cases per oracle *)
  start : int;  (** index of the first case (for replaying one case) *)
  size : int;  (** approximate instance size (operators / variables) *)
  oracles : oracle list;
  shrink : bool;  (** minimise failing cases before reporting *)
  verbose : bool;
}

val default : config
(** seed 42, 100 cases from 0, size 8, all oracles, shrinking on. *)

type failure = {
  oracle : oracle;
  case : int;  (** absolute case index — feed back via [start] *)
  case_seed : int;
  message : string;  (** the original failure *)
  reproducer : string;  (** rendered minimal instance *)
  replay : string;  (** command line that replays this case *)
}

type summary = { cases_run : int; failures : failure list }

val run : ?out:Format.formatter -> config -> summary
(** Runs [count] cases of every configured oracle.  Progress and
    failures go to [out] (default a null formatter; the CLI passes
    stderr). *)

val all_passed : summary -> bool
val pp_summary : Format.formatter -> summary -> unit
