(** The nine correctness oracles behind [bin/fuzz] (DESIGN.md §11).

    Each oracle takes one generated instance and either passes or
    fails with a human-readable explanation.  All randomness is drawn
    from the caller's {!Prng.t}, so a failing case replays exactly
    from its seed. *)

type outcome = Pass | Fail of string

val is_pass : outcome -> bool
val describe : outcome -> string

val lp_certificate : Prng.t -> Lp.Problem.t -> outcome
(** Solve the LP relaxation cold (keeping the basis and hot tableau),
    certify the answer with {!Certificate.check_result}; then perturb
    one variable's bounds and re-solve five ways: dense cold, dense
    warm (basis), dense hot (tableau replay), sparse revised simplex
    cold, and sparse warm-started from the dense basis.  All five must
    agree on status and, when optimal, on the objective — and every
    optimal answer must carry a valid certificate. *)

val ilp_brute : Lp.Problem.t -> outcome
(** Branch & bound versus exhaustive enumeration on a small all-integer
    program: statuses agree; optimal objectives match; the incumbent
    is feasible, integral, and its integer projection appears among
    {!Lp.Brute.optimal_points}.  Inconclusive solver budgets pass. *)

val cut_enumeration :
  ?resources:Wishbone.Ilp.resource list -> Wishbone.Spec.t -> outcome
(** Run {!Wishbone.Partitioner.solve} under all four configurations
    ([Restricted]/[General] x preprocessing on/off) and compare each
    against this module's own exhaustive enumeration of movable
    assignments filtered by {!Wishbone.Spec.feasible} (and the
    resource rows, checked directly).  Reported cpu/net/objective
    must match {!Wishbone.Spec.cut_stats} on the returned assignment,
    and the general optimum can never be worse than the restricted
    one.  Specs with more than 16 movable operators pass trivially. *)

val degradation : Prng.t -> Wishbone.Spec.t -> outcome
(** Execute the same injected samples through {!Runtime.Exec.full} and
    through a {!Runtime.Splitrun} with a bounded, shedding inter-half
    queue (random policy, capacity and service rate) along a random
    predecessor-closed cut.  Loss must be {e subtractive, never
    corrupting}: the shedding run's sink values must form a
    sub-multiset of the lossless run's, the per-operator drop counters
    must account for every shed crossing, and when nothing was shed
    the two runs must agree exactly.  Instances that place a stateful
    operator downstream of the queue (outside conservative placement's
    guarantee) pass trivially. *)

val placement_equivalence : Prng.t -> Wishbone.Spec.t -> outcome
(** The generic {!Wishbone.Placement} core against the dedicated
    solvers' independent enumerations.  Two-tier:
    [Placement.solve (Placement.of_spec spec)] must agree with
    {!Wishbone.Partitioner.brute_force} on feasibility and optimal
    objective, its report must be internally consistent with
    {!Wishbone.Placement.stats}/[objective_value], and
    {!Wishbone.Placement.feasible} must accept the solution.
    Three-tier: a randomly synthesized microserver tier (cheaper
    per-op CPU, random budgets and uplink weight) solved through
    {!Wishbone.Three_tier} (hence {!Wishbone.Placement}) must agree
    with {!Wishbone.Three_tier.brute_force} and return monotonically
    descending tiers.  Instances with more than 16 movable operators
    or 12 supernodes pass trivially, as do solves that exhaust the
    branch-and-bound budget. *)

val service_equivalence : Prng.t -> Wishbone.Spec.t -> outcome
(** The fleet placement service against the direct solve path.  A
    random batch of queries — fixed-rate and rate-search, with repeats
    and near-repeats, over the spec's two-tier placement and a
    budget-perturbed sibling — is pushed through {!Wishbone.Service}
    (random LRU capacity and shard count), then through
    {!Wishbone.Service.solve_direct} with the same solver options.
    Every served answer must agree {e byte for byte} (status, chosen
    rate, objective, tier assignment, and the canonical digest); the
    batch is then replayed against the warm cache and must agree
    again; and the service counters must conserve
    ([hits + misses = queries], [inserts - evictions = resident <=
    capacity]).  Specs with more than 16 movable operators pass
    trivially, as does any query whose solver budget is exhausted on
    either path (warm starts legitimately change how far a budget
    reaches). *)

val degraded_soundness : Prng.t -> Wishbone.Spec.t -> outcome
(** Gap-certified degradation is sound.  The spec's two-tier placement
    is solved through {!Wishbone.Service.solve_direct} under a random
    {e work-unit} budget (a node budget of 0–5 and/or a tree-wide
    pivot budget of 1–40) as a random fixed-rate or rate-search query.
    A [Degraded] answer's incumbent must pass
    {!Wishbone.Placement.feasible} at its rate, its gap must equal the
    bound arithmetic bit-for-bit and be non-negative, and on these
    small instances the brute-force optimum must lie inside the
    certified interval [[best_bound, objective]].  A [Placed] answer
    must carry an optimality proof; a fixed-rate [Infeasible] must
    agree with enumeration (a search [Infeasible] under budget is
    conservative and passes).  Independently, a huge-but-finite pivot
    budget must reproduce the unbudgeted default path byte for byte.
    [Failed] (budget exhausted, no incumbent) is inconclusive.  Specs
    with more than 16 movable operators pass trivially. *)

val tree_equivalence : Prng.t -> Wishbone.Spec.t -> outcome
(** The tree-topology placement core against a brute-force enumerator
    over per-path cuts.  A random rooted tier tree (3–5 tiers,
    topological parent numbering), random middle platforms (cheaper
    per-op CPU, random budgets), per-uplink budgets/weights, and an
    occasional tier pin are built over the spec; [Placement.solve]
    under both encodings must agree on feasibility and optimal
    objective with an exhaustive enumeration over the same supernode
    space (contracted under [Restricted] with no pins, the full graph
    otherwise), judged by an independent root-path-walk evaluation of
    monotonicity, budgets and objective.  The returned report must be
    internally consistent with [Placement.stats].  Additionally the
    chain-as-degenerate-tree property is checked byte-for-byte: a
    3-tier chain built with an explicit [Topology.of_parents]
    [[|1;2;-1|]] must encode the {e identical} ILP (variables, rows,
    names, objective) as the implicit-chain constructor.  Specs with
    more than 7 movable operators or 10 supernodes pass trivially, as
    do solves that exhaust the branch-and-bound budget. *)

val split_equivalence : Prng.t -> Wishbone.Spec.t -> outcome
(** Execute the same injected samples through {!Runtime.Exec.full} and
    through {!Runtime.Splitrun} split along a random
    predecessor-closed cut (plus, when the partitioner finds one, its
    own restricted-encoding cut): sink deliveries must match as
    multisets per injection, every operator must fire the same number
    of times, and the split runtime's crossing traffic must equal the
    full run's traffic over the cut edges. *)

val sched_equivalence : Prng.t -> outcome
(** The timing-wheel scheduler against the historical binary heap on a
    random small testbed fleet (2–12 nodes, random rate / payload /
    duration / seed, random fault and transport mix).  Heap and wheel
    runs must walk the {e identical} event sequence — an
    order-sensitive digest over the testbed's [?probe] hook — and land
    on the identical {!Netsim.Testbed.result}, floats compared bit for
    bit.  A random cell decomposition must then be invariant under the
    simulation-domain count (wheel, domains 1 vs 2) and under the
    scheduler (multi-cell heap vs wheel).  Under reliable transport
    the message-conservation invariant
    [sent = received + expired + pending] is re-checked along the
    way. *)
