type verdict = Valid | Invalid of string list

let pp_verdict ppf = function
  | Valid -> Format.fprintf ppf "valid"
  | Invalid msgs ->
      Format.fprintf ppf "@[<v>invalid:@,%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut
           Format.pp_print_string)
        msgs

(* Dense Gaussian elimination with partial pivoting.  [a] is m x m and
   is consumed; returns None when the matrix is numerically singular. *)
let solve_linear a b =
  let m = Array.length b in
  let x = Array.copy b in
  let ok = ref true in
  (try
     for k = 0 to m - 1 do
       let piv = ref k in
       for i = k + 1 to m - 1 do
         if Float.abs a.(i).(k) > Float.abs a.(!piv).(k) then piv := i
       done;
       if Float.abs a.(!piv).(k) < 1e-11 then begin
         ok := false;
         raise Exit
       end;
       if !piv <> k then begin
         let tmp = a.(k) in
         a.(k) <- a.(!piv);
         a.(!piv) <- tmp;
         let t = x.(k) in
         x.(k) <- x.(!piv);
         x.(!piv) <- t
       end;
       for i = k + 1 to m - 1 do
         let f = a.(i).(k) /. a.(k).(k) in
         if f <> 0. then begin
           for j = k to m - 1 do
             a.(i).(j) <- a.(i).(j) -. (f *. a.(k).(j))
           done;
           x.(i) <- x.(i) -. (f *. x.(k))
         end
       done
     done
   with Exit -> ());
  if not !ok then None
  else begin
    for k = m - 1 downto 0 do
      let s = ref x.(k) in
      for j = k + 1 to m - 1 do
        s := !s -. (a.(k).(j) *. x.(j))
      done;
      x.(k) <- !s /. a.(k).(k)
    done;
    Some x
  end

let check ?(tol = 1e-6) ?lo ?hi problem (sol : Lp.Solution.t)
    (basis : Lp.Basis.t) =
  let n = Lp.Problem.n_vars problem in
  let constrs = Lp.Problem.constrs problem in
  let m = Array.length constrs in
  let vars = Lp.Problem.vars problem in
  let lo =
    match lo with
    | Some a -> a
    | None -> Array.map (fun (v : Lp.Problem.var_info) -> v.lo) vars
  in
  let hi =
    match hi with
    | Some a -> a
    | None -> Array.map (fun (v : Lp.Problem.var_info) -> v.hi) vars
  in
  let errs = ref [] in
  let fail fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  if Array.length sol.x <> n then
    fail "solution has %d entries for %d variables" (Array.length sol.x) n;
  if Array.length lo <> n || Array.length hi <> n then
    fail "bound overrides have the wrong length";
  if !errs <> [] then Invalid (List.rev !errs)
  else begin
    (* column layout mirroring the solver's tableau, unscaled *)
    let n_slack =
      Array.fold_left
        (fun acc (c : Lp.Problem.constr) ->
          match c.sense with Le | Ge -> acc + 1 | Eq -> acc)
        0 constrs
    in
    let ncols = n + n_slack + m in
    let slack_row = Array.make n_slack 0 in
    let slack_sign = Array.make n_slack 0. in
    let k = ref 0 in
    Array.iteri
      (fun i (c : Lp.Problem.constr) ->
        match c.sense with
        | Le ->
            slack_row.(!k) <- i;
            slack_sign.(!k) <- 1.;
            incr k
        | Ge ->
            slack_row.(!k) <- i;
            slack_sign.(!k) <- -1.;
            incr k
        | Eq -> ())
      constrs;
    (* column j of the augmented system as a dense length-m vector *)
    let column j =
      let col = Array.make m 0. in
      if j < n then
        Array.iteri
          (fun i (c : Lp.Problem.constr) ->
            List.iter
              (fun (v, coef) -> if v = j then col.(i) <- col.(i) +. coef)
              c.terms)
          constrs
      else if j < n + n_slack then col.(slack_row.(j - n)) <- slack_sign.(j - n)
      else col.(j - n - n_slack) <- 1.;
      col
    in
    let col_lo j = if j < n then lo.(j) else 0. in
    let col_hi j =
      if j < n then hi.(j) else if j < n + n_slack then infinity else 0.
    in
    (* minimisation-space costs *)
    let minimize = Lp.Problem.direction problem = Lp.Problem.Minimize in
    let cost = Array.make ncols 0. in
    List.iter
      (fun (v, coef) ->
        cost.(v) <- cost.(v) +. (if minimize then coef else -.coef))
      (Lp.Problem.objective problem);
    (* ---- primal feasibility and the full augmented point ---- *)
    let z = Array.make ncols 0. in
    Array.blit sol.x 0 z 0 n;
    for j = 0 to n - 1 do
      let scale = 1. +. Float.max (Float.abs lo.(j)) (Float.abs sol.x.(j)) in
      if sol.x.(j) < lo.(j) -. (tol *. scale) then
        fail "x%d = %g below lower bound %g" j sol.x.(j) lo.(j);
      if sol.x.(j) > hi.(j) +. (tol *. scale) then
        fail "x%d = %g above upper bound %g" j sol.x.(j) hi.(j)
    done;
    Array.iteri
      (fun i (c : Lp.Problem.constr) ->
        let lhs =
          List.fold_left
            (fun acc (v, coef) -> acc +. (coef *. sol.x.(v)))
            0. c.terms
        in
        let scale = 1. +. Float.max (Float.abs lhs) (Float.abs c.rhs) in
        (match c.sense with
        | Le ->
            if lhs > c.rhs +. (tol *. scale) then
              fail "row %d (%s): %g > rhs %g" i c.cname lhs c.rhs
        | Ge ->
            if lhs < c.rhs -. (tol *. scale) then
              fail "row %d (%s): %g < rhs %g" i c.cname lhs c.rhs
        | Eq ->
            if Float.abs (lhs -. c.rhs) > tol *. scale then
              fail "row %d (%s): %g <> rhs %g" i c.cname lhs c.rhs);
        ())
      constrs;
    (* slack values close the equality system exactly *)
    for s = 0 to n_slack - 1 do
      let c = constrs.(slack_row.(s)) in
      let lhs =
        List.fold_left
          (fun acc (v, coef) -> acc +. (coef *. sol.x.(v)))
          0. c.terms
      in
      z.(n + s) <- slack_sign.(s) *. (c.rhs -. lhs)
    done;
    let obj_at_x = Lp.Problem.objective_value problem sol.x in
    let obj_scale =
      1. +. Float.max (Float.abs obj_at_x) (Float.abs sol.objective)
    in
    if Float.abs (obj_at_x -. sol.objective) > tol *. obj_scale then
      fail "reported objective %g but c.x = %g" sol.objective obj_at_x;
    (* ---- basis shape ---- *)
    if not (Lp.Basis.compatible basis ~rows:m ~cols:ncols) then begin
      fail "basis incompatible with a %d x %d tableau" m ncols;
      Invalid (List.rev !errs)
    end
    else begin
      let is_basic = Array.make ncols false in
      Array.iter (fun j -> is_basic.(j) <- true) basis.rows;
      Array.iteri
        (fun j st ->
          let basic_flag = st = Lp.Basis.Basic in
          if basic_flag <> is_basic.(j) then
            fail "column %d: status %s disagrees with basis rows" j
              (if basic_flag then "Basic" else "nonbasic"))
        basis.stat;
      (* nonbasic columns must rest at their recorded bound *)
      for j = 0 to ncols - 1 do
        let scale = 1. +. Float.abs z.(j) in
        match basis.stat.(j) with
        | Lp.Basis.Basic -> ()
        | Lp.Basis.At_lower ->
            if Float.abs (z.(j) -. col_lo j) > tol *. scale then
              fail "nonbasic column %d at_lower but value %g <> %g" j z.(j)
                (col_lo j)
        | Lp.Basis.At_upper ->
            let up = col_hi j in
            if up = infinity then
              fail "nonbasic column %d at_upper with infinite bound" j
            else if Float.abs (z.(j) -. up) > tol *. scale then
              fail "nonbasic column %d at_upper but value %g <> %g" j z.(j)
                up
      done;
      (* ---- duals: B^T y = c_B ---- *)
      let bt =
        Array.init m (fun i ->
            let col = column basis.rows.(i) in
            Array.init m (fun j -> col.(j)))
      in
      (* bt currently holds B's columns as rows, i.e. B^T already *)
      let c_b = Array.map (fun j -> cost.(j)) basis.rows in
      match solve_linear bt c_b with
      | None -> Invalid (List.rev ("singular basis matrix" :: !errs))
      | Some y ->
          (* reduced costs and their sign conditions *)
          let d = Array.make ncols 0. in
          for j = 0 to ncols - 1 do
            let col = column j in
            let yaj = ref 0. in
            for i = 0 to m - 1 do
              yaj := !yaj +. (y.(i) *. col.(i))
            done;
            d.(j) <- cost.(j) -. !yaj
          done;
          let dtol = tol *. 100. in
          for j = 0 to ncols - 1 do
            let fixed = col_hi j -. col_lo j <= tol in
            match basis.stat.(j) with
            | Lp.Basis.Basic ->
                if Float.abs d.(j) > dtol *. (1. +. Float.abs cost.(j)) then
                  fail "basic column %d has reduced cost %g" j d.(j)
            | Lp.Basis.At_lower ->
                if (not fixed) && d.(j) < -.dtol then
                  fail "column %d at lower bound has reduced cost %g < 0" j
                    d.(j)
            | Lp.Basis.At_upper ->
                if (not fixed) && d.(j) > dtol then
                  fail "column %d at upper bound has reduced cost %g > 0" j
                    d.(j)
          done;
          (* ---- duality gap: c.z = y.b + sum_j d_j z_j ---- *)
          let primal = ref 0. in
          for j = 0 to ncols - 1 do
            primal := !primal +. (cost.(j) *. z.(j))
          done;
          let dual = ref 0. in
          Array.iteri
            (fun i (c : Lp.Problem.constr) ->
              dual := !dual +. (y.(i) *. c.rhs))
            constrs;
          for j = 0 to ncols - 1 do
            if basis.stat.(j) <> Lp.Basis.Basic then
              dual := !dual +. (d.(j) *. z.(j))
          done;
          let scale =
            1. +. Float.max (Float.abs !primal) (Float.abs !dual)
          in
          if Float.abs (!primal -. !dual) > dtol *. scale then
            fail "duality gap: primal %g vs dual %g" !primal !dual;
          if !errs = [] then Valid else Invalid (List.rev !errs)
    end
  end

let check_result ?tol ?lo ?hi problem (r : Lp.Simplex.result) =
  match r.status with
  | Lp.Solution.Optimal sol -> (
      match r.basis with
      | Some b -> check ?tol ?lo ?hi problem sol b
      | None -> Invalid [ "optimal result carries no basis" ])
  | Lp.Solution.Infeasible | Lp.Solution.Unbounded
  | Lp.Solution.Iteration_limit ->
      Valid
