(** Seeded random-instance generators for the correctness oracles.

    Everything is driven by an explicit {!Prng.t}, so every generated
    instance — and therefore every fuzz failure — is replayable from
    its seed alone.  Unlike [Apps.Synthetic], the operator DAGs built
    here carry {e real} deterministic work functions (integer
    arithmetic, filters, expanders, stateful counters/decimators), so
    the same instance can exercise both the partitioning solvers and
    the split-execution runtime. *)

type cfg = {
  n_ops : int;  (** total operators, source and sink included (>= 3) *)
  extra_edge_prob : float;  (** fan-out beyond the random spanning spine *)
  stateful_prob : float;  (** interior ops that keep private state *)
  mode : Wishbone.Movable.mode;
  tightness : float;
      (** budget pressure in [0, 1]: 0 makes both budgets vacuous, 1
          pushes them towards the pinned-only boundary so a good
          fraction of instances is infeasible *)
  alpha : float;  (** objective CPU weight *)
  beta : float;  (** objective network weight *)
}

val default_cfg : cfg
(** 8 ops, mild fan-out, conservative mode, moderate tightness,
    [alpha = 0, beta = 1] (the paper's configuration). *)

val graph : Prng.t -> cfg -> Dataflow.Graph.t
(** A random connected DAG: one sensor source, one server sink,
    interior operators drawn from a small family of deterministic
    integer transforms (affine maps, filters, expanders, stateful
    counters and decimators). *)

val spec : Prng.t -> cfg -> Wishbone.Spec.t
(** A full partitioning instance over {!graph}: random CPU costs and
    edge bandwidths, budgets drawn according to [cfg.tightness]. *)

val random_cut : Prng.t -> Wishbone.Spec.t -> bool array
(** A random single-crossing assignment (true = node): respects the
    spec's pinning and is closed under predecessors, so every crossing
    edge flows node → server — exactly the cuts {!Runtime.Splitrun}
    can execute. *)

val lp : Prng.t -> size:int -> Lp.Problem.t
(** A random pure LP: [2 .. size+1] bounded variables (occasionally
    with an infinite upper bound), a mix of [Le]/[Ge]/[Eq] rows, random
    direction.  Instances may be infeasible or unbounded — oracles
    must agree on the status, not just the optimum. *)

val ilp : Prng.t -> size:int -> Lp.Problem.t
(** Like {!lp} but every variable is integral with small finite
    bounds, so {!Lp.Brute} can enumerate it. *)

val resources : Prng.t -> Wishbone.Spec.t -> Wishbone.Ilp.resource list
(** 0–2 random per-operator resource rows (RAM / code-storage shape)
    sized so they sometimes bind. *)

val pp_spec : Format.formatter -> Wishbone.Spec.t -> unit
(** Compact replayable rendering of a spec instance: placements, CPU
    costs, edges with bandwidths, budgets and objective weights.  Used
    for minimal-reproducer reports. *)
