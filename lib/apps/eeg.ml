open Dataflow

type t = { graph : Graph.t; sources : int array; n_channels : int }

let sample_rate = 256.
let window_samples = 512
let window_rate = sample_rate /. Float.of_int window_samples
let features_per_channel = 3

(* band-energy normalisation per feature level (5, 6, 7) *)
let filter_gains = [| 1. /. 16.; 1. /. 8.; 1. /. 4. |]

(* ---- elementary work functions ---- *)

let notch_work v =
  (* 60 Hz-suppressing 3-tap high-shelf; also converts the int16 ADC
     samples to floats for the wavelet cascade *)
  let x = Value.int16_arr v in
  let n = Array.length x in
  let f = Array.map Float.of_int x in
  let out =
    Array.init n (fun i ->
        let prev = if i > 0 then f.(i - 1) else 0. in
        let next = if i < n - 1 then f.(i + 1) else 0. in
        f.(i) -. (0.25 *. (prev +. next)))
  in
  let nf = Float.of_int n in
  ( Value.Float_arr out,
    Workload.make ~float_ops:(4. *. nf) ~mem_ops:(3. *. nf) ~branch_ops:nf
      ~call_ops:1. () )

let get_parity_work ~odd v =
  let x = Value.float_arr v in
  let n = Array.length x / 2 in
  let off = if odd then 1 else 0 in
  let out = Array.init n (fun i -> x.((2 * i) + off)) in
  let nf = Float.of_int n in
  ( Value.Float_arr out,
    Workload.make ~int_ops:(2. *. nf) ~mem_ops:(2. *. nf) ~branch_ops:nf
      ~call_ops:1. () )

let elementwise_workload n =
  let nf = Float.of_int n in
  Workload.make ~float_ops:nf ~mem_ops:(3. *. nf) ~branch_ops:nf ~call_ops:1. ()

(* ---- composite operator constructors (Figure 1 structure) ---- *)

let fir_op b ~name taps strm =
  Builder.stateful b ~name ~kind:"fir"
    ~init:(fun () ->
      let f = Dsp.Fir.create taps in
      fun ~port:_ v ->
        let y, w = Dsp.Fir.filter_frame f (Value.float_arr v) in
        ([ Value.Float_arr y ], w))
    [ strm ]

let add_op b ~name s0 s1 =
  Builder.stateful b ~name ~kind:"add"
    ~init:(fun () ->
      let q0 : Value.t Queue.t = Queue.create () in
      let q1 : Value.t Queue.t = Queue.create () in
      fun ~port v ->
        (if port = 0 then Queue.add v q0 else Queue.add v q1);
        if Queue.is_empty q0 || Queue.is_empty q1 then
          ([], Workload.make ~call_ops:1. ())
        else begin
          let a = Value.float_arr (Queue.pop q0) in
          let c = Value.float_arr (Queue.pop q1) in
          let n = Int.min (Array.length a) (Array.length c) in
          let out = Array.init n (fun i -> a.(i) +. c.(i)) in
          ([ Value.Float_arr out ], elementwise_workload n)
        end)
    [ s0; s1 ]

(* LowFreqFilter / HighFreqFilter of Figure 1: split even/odd, 2-tap
   polyphase FIR on each, recombine. *)
let freq_filter b ~prefix kind strm =
  let taps =
    match kind with
    | Dsp.Wavelet.Low -> Dsp.Wavelet.qmf_low
    | Dsp.Wavelet.High -> Dsp.Wavelet.qmf_high
  in
  let even_taps = [| taps.(0); taps.(2) |] in
  let odd_taps = [| taps.(1); taps.(3) |] in
  let even =
    Builder.map b ~name:(prefix ^ "_even") ~kind:"split"
      (get_parity_work ~odd:false) strm
  in
  let odd =
    Builder.map b ~name:(prefix ^ "_odd") ~kind:"split"
      (get_parity_work ~odd:true) strm
  in
  let fe = fir_op b ~name:(prefix ^ "_firE") even_taps even in
  let fo = fir_op b ~name:(prefix ^ "_firO") odd_taps odd in
  add_op b ~name:(prefix ^ "_add") fe fo

let mag_op b ~name ~gain strm =
  Builder.map b ~name ~kind:"mag"
    (fun v ->
      let e, w = Dsp.Wavelet.mag_with_scale ~gain (Value.float_arr v) in
      (Value.Float e, w))
    strm

(* zipN: buffer one value per input port, emit when all present. *)
let zip_op b ~name ~combine inputs =
  let k = List.length inputs in
  Builder.stateful b ~name ~kind:"zip"
    ~init:(fun () ->
      let queues = Array.init k (fun _ -> Queue.create ()) in
      fun ~port v ->
        Queue.add v queues.(port);
        if Array.for_all (fun q -> not (Queue.is_empty q)) queues then begin
          let vs = Array.to_list (Array.map Queue.pop queues) in
          let out, w = combine vs in
          ([ out ], w)
        end
        else ([], Workload.make ~call_ops:1. ()))
    inputs

let zip_tuple vs =
  ( Value.Tuple vs,
    Workload.make ~mem_ops:(Float.of_int (List.length vs)) ~call_ops:1. () )

(* flatten a list of float / tuple-of-float values into one vector *)
let zip_flatten vs =
  let rec floats v acc =
    match v with
    | Value.Float f -> f :: acc
    | Value.Tuple inner -> List.fold_right floats inner acc
    | _ -> invalid_arg "eeg: non-float feature"
  in
  let flat = List.fold_right floats vs [] in
  let arr = Array.of_list flat in
  ( Value.Float_arr arr,
    Workload.make
      ~mem_ops:(2. *. Float.of_int (Array.length arr))
      ~call_ops:1. () )

(* GetChannelFeatures (Figure 1): 7-level cascade, band energies from
   the high-pass outputs of levels 5..7. *)
let channel_features b ~ch strm =
  let name level s = Printf.sprintf "c%02d_%s%d" ch s level in
  let notch =
    Builder.map b ~name:(Printf.sprintf "c%02d_notch" ch) ~kind:"fir"
      notch_work strm
  in
  let rec lows level strm acc =
    if level > 6 then (strm, List.rev acc)
    else begin
      let low =
        freq_filter b ~prefix:(name level "low") Dsp.Wavelet.Low strm
      in
      lows (level + 1) low ((level, strm, low) :: acc)
    end
  in
  let _last_low, levels = lows 1 notch [] in
  (* high-pass taps come off the previous level's low output *)
  let feature idx source_level_input =
    let level = idx + 5 in
    let high =
      freq_filter b
        ~prefix:(name level "high")
        Dsp.Wavelet.High source_level_input
    in
    mag_op b
      ~name:(Printf.sprintf "c%02d_level%d" ch level)
      ~gain:filter_gains.(idx) high
  in
  let low_out l =
    let _, _, out = List.find (fun (lv, _, _) -> lv = l) levels in
    out
  in
  let l5 = feature 0 (low_out 4) in
  let l6 = feature 1 (low_out 5) in
  let l7 = feature 2 (low_out 6) in
  zip_op b ~name:(Printf.sprintf "c%02d_zip" ch) ~combine:zip_tuple
    [ l5; l6; l7 ]

let default_svm n_channels =
  let dim = n_channels * features_per_channel in
  (* positive weight on every low-frequency band energy; threshold set
     against the synthetic background level *)
  { Dsp.Svm.weights = Array.make dim 1e-3; bias = -1.5 }

let build ?(n_channels = 22) ?svm () =
  let svm =
    match svm with Some s -> s | None -> default_svm n_channels
  in
  let b = Builder.create () in
  let sources = Array.make n_channels 0 in
  let channel_streams =
    Builder.in_node b (fun () ->
        List.init n_channels (fun ch ->
            let src =
              Builder.source b ~name:(Printf.sprintf "ch%02d" ch) ~kind:"eeg"
                ()
            in
            sources.(ch) <- Builder.op_id src;
            channel_features b ~ch src))
  in
  let features =
    zip_op b ~name:"zip_channels" ~combine:zip_flatten channel_streams
  in
  let decision =
    Builder.map b ~name:"svm" ~kind:"svm"
      (fun v ->
        let x = Value.float_arr v in
        let d, w = Dsp.Svm.decision svm x in
        (Value.Tuple [ Value.Float d; Value.Bool (d > 0.) ], w))
      features
  in
  let declared =
    Builder.stateful b ~name:"detect" ~kind:"debounce"
      ~init:(fun () ->
        let st = Dsp.Svm.Debounce.create ~k:3 in
        fun ~port:_ v ->
          match v with
          | Value.Tuple [ Value.Float d; Value.Bool positive ] ->
              let fired = Dsp.Svm.Debounce.step st positive in
              ( [ Value.Tuple [ Value.Bool fired; Value.Float d ] ],
                Workload.make ~int_ops:2. ~branch_ops:2. ~call_ops:1. () )
          | _ -> invalid_arg "eeg: bad svm output")
      [ decision ]
  in
  Builder.sink b ~name:"alarm" declared;
  let graph = Builder.build b in
  { graph; sources; n_channels }

let single_channel () =
  let b = Builder.create () in
  let sources = Array.make 1 0 in
  let features =
    Builder.in_node b (fun () ->
        let src = Builder.source b ~name:"ch00" ~kind:"eeg" () in
        sources.(0) <- Builder.op_id src;
        channel_features b ~ch:0 src)
  in
  Builder.sink b ~name:"features" features;
  let graph = Builder.build b in
  { graph; sources; n_channels = 1 }

(* ---- synthetic input ---- *)

let quantize samples =
  Array.map
    (fun x ->
      let q = int_of_float (Float.round x) in
      Int.max (-32768) (Int.min 32767 q))
    samples

let profile ?(duration = 120.) ?(seed = 7) t =
  let gen = Dsp.Siggen.Eeg.create ~seed ~n_channels:t.n_channels ~sample_rate () in
  let n_windows = int_of_float (duration *. window_rate) in
  let events = ref [] in
  for w = 0 to n_windows - 1 do
    let time = Float.of_int w /. window_rate in
    let channels = Dsp.Siggen.Eeg.window gen window_samples in
    Array.iteri
      (fun ch samples ->
        events :=
          {
            Profiler.Profile.Trace.time;
            source = t.sources.(ch);
            value = Value.Int16_arr (quantize samples);
          }
          :: !events)
      channels
  done;
  let events =
    List.stable_sort
      (fun a b ->
        Float.compare a.Profiler.Profile.Trace.time
          b.Profiler.Profile.Trace.time)
      (List.rev !events)
  in
  Profiler.Profile.collect ~duration t.graph events

let testbed_sources ?(seed = 2000) ~rate_mult t =
  (* one generator per node; all of the node's channel sources fire at
     the same instants with the same [seq], so a one-window cache keeps
     the channels of a window mutually consistent *)
  let per_node :
      (int, Dsp.Siggen.Eeg.t * int ref * int array array ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let state node =
    match Hashtbl.find_opt per_node node with
    | Some s -> s
    | None ->
        let g =
          Dsp.Siggen.Eeg.create ~seed:(seed + node) ~n_channels:t.n_channels
            ~sample_rate ()
        in
        let s = (g, ref (-1), ref [||]) in
        Hashtbl.add per_node node s;
        s
  in
  let gen ch ~node ~seq =
    let g, last, window = state node in
    while !last < seq do
      window := Array.map quantize (Dsp.Siggen.Eeg.window g window_samples);
      incr last
    done;
    Value.Int16_arr !window.(ch)
  in
  Array.to_list
    (Array.mapi
       (fun ch src ->
         {
           Netsim.Testbed.source = src;
           rate = rate_mult *. window_rate;
           gen = gen ch;
         })
       t.sources)

let collect_features ?(seed = 11) ~n_windows t =
  let gen = Dsp.Siggen.Eeg.create ~seed ~n_channels:t.n_channels ~sample_rate () in
  (* per-channel offline cascade, mathematically identical to the
     5-operator graph structure *)
  let lows =
    Array.init t.n_channels (fun _ ->
        Array.init 6 (fun _ -> Dsp.Wavelet.create_branch Dsp.Wavelet.Low))
  in
  let highs =
    Array.init t.n_channels (fun _ ->
        Array.init 3 (fun _ -> Dsp.Wavelet.create_branch Dsp.Wavelet.High))
  in
  Array.init n_windows (fun _ ->
      let in_seizure = Dsp.Siggen.Eeg.in_seizure gen in
      let channels = Dsp.Siggen.Eeg.window gen window_samples in
      let features =
        Array.mapi
          (fun ch samples ->
            let notched, _ = notch_work (Value.Int16_arr (quantize samples)) in
            let x = Value.float_arr notched in
            (* run the low chain, tapping highs at levels 5..7 *)
            let stream = ref x in
            let taps = ref [] in
            for level = 1 to 7 do
              if level >= 5 then begin
                let h, _ = Dsp.Wavelet.apply highs.(ch).(level - 5) !stream in
                let e, _ =
                  Dsp.Wavelet.mag_with_scale ~gain:filter_gains.(level - 5) h
                in
                taps := e :: !taps
              end;
              if level <= 6 then begin
                let l, _ = Dsp.Wavelet.apply lows.(ch).(level - 1) !stream in
                stream := l
              end
            done;
            List.rev !taps |> Array.of_list)
          channels
      in
      let flat = Array.concat (Array.to_list features) in
      (flat, in_seizure))
