(** The patient-specific seizure-onset detection application (§6.1).

    22 channels sampled at 256 Hz, 16 bits, processed in 2-second
    windows.  Each channel runs a 7-level polyphase wavelet cascade
    built exactly as in Figure 1 — every [LowFreqFilter] /
    [HighFreqFilter] is five operators (GetEven, GetOdd, two 2-tap
    polyphase FIRs, Add) — with band energies ([MagWithScale]) taken
    from the high-pass outputs of the last three levels.  All 66
    features are zipped into one vector and classified by a linear
    SVM; a seizure is declared after three consecutive positive
    windows.

    The full graph has 1126 operators (22 × 51 per-channel plus the
    shared zip/SVM/detect/sink); the paper reports 1412 for its
    WaveScript build — the difference is compiler-inserted plumbing
    operators, not structure, and does not change partitioning
    behaviour (see EXPERIMENTS.md). *)

type t = {
  graph : Dataflow.Graph.t;
  sources : int array;  (** one per channel *)
  n_channels : int;
}

val sample_rate : float  (** 256 Hz *)

val window_samples : int  (** 512 (2 s) *)

val window_rate : float  (** 0.5 windows/s *)

val features_per_channel : int  (** 3 *)

val build : ?n_channels:int -> ?svm:Dsp.Svm.t -> unit -> t
(** Default: 22 channels, canned SVM weights. *)

val single_channel : unit -> t
(** The one-channel subset used for the Figure 5(a) sweep (the shared
    SVM stage is omitted; the channel's feature stream feeds the sink
    directly). *)

val profile :
  ?duration:float -> ?seed:int -> t -> Profiler.Profile.raw
(** Profile on synthetic EEG (default 120 s, i.e. 60 windows,
    including seizure episodes). *)

val testbed_sources :
  ?seed:int -> rate_mult:float -> t -> Netsim.Testbed.source_spec list
(** Per-node independent synthetic EEG streams at
    [rate_mult *. window_rate] windows/s; a node's channel sources stay
    window-consistent with each other. *)

val collect_features :
  ?seed:int -> n_windows:int -> t -> (float array * bool) array
(** Run the generator and full graph offline, returning (feature
    vector, in-seizure ground truth) pairs for SVM training. *)
