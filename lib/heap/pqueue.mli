(** Minimal binary min-heap keyed by floats.

    Two hot paths share it: branch & bound orders open nodes by their
    LP relaxation bound (best-first), and [Netsim.Sched]'s [Heap]
    scheduler kind wraps it as the reference event queue — the wheel
    scheduler is validated against this exact pop order.

    Entries with equal keys pop in an order determined by the heap's
    internal structure (deterministic for a given push/pop sequence,
    but not FIFO); callers that need a total order add their own
    tie-break key. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ~capacity ()] preallocates room for [capacity] entries so
    hot loops do not regrow the arrays (default 16; values < 1 are
    clamped to 1). *)

val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest key. *)

val min_key : 'a t -> float option
