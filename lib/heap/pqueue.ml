type 'a t = {
  mutable keys : float array;
  mutable data : 'a option array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  let capacity = Int.max 1 capacity in
  { keys = Array.make capacity 0.; data = Array.make capacity None; size = 0 }

let is_empty q = q.size = 0
let length q = q.size

let grow q =
  let cap = Array.length q.keys in
  if q.size = cap then begin
    let keys = Array.make (2 * cap) 0. in
    let data = Array.make (2 * cap) None in
    Array.blit q.keys 0 keys 0 cap;
    Array.blit q.data 0 data 0 cap;
    q.keys <- keys;
    q.data <- data
  end

let swap q i j =
  let k = q.keys.(i) and d = q.data.(i) in
  q.keys.(i) <- q.keys.(j);
  q.data.(i) <- q.data.(j);
  q.keys.(j) <- k;
  q.data.(j) <- d

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.keys.(i) < q.keys.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.keys.(l) < q.keys.(!smallest) then smallest := l;
  if r < q.size && q.keys.(r) < q.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q key v =
  grow q;
  q.keys.(q.size) <- key;
  q.data.(q.size) <- Some v;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let key = q.keys.(0) in
    let v = match q.data.(0) with Some v -> v | None -> assert false in
    q.size <- q.size - 1;
    q.keys.(0) <- q.keys.(q.size);
    q.data.(0) <- q.data.(q.size);
    q.data.(q.size) <- None;
    if q.size > 0 then sift_down q 0;
    Some (key, v)
  end

let min_key q = if q.size = 0 then None else Some q.keys.(0)
