type t = {
  bitrate_bps : float;
  header_bytes : int;
  payload_bytes : int;
  turnaround_s : float;
  backoff_s : float;
  per_packet_overhead_s : float;
  base_loss : float;
  retries : int;
}

let cc2420 =
  {
    bitrate_bps = 250_000.;
    header_bytes = 11;
    payload_bytes = 28;
    turnaround_s = 0.3e-3;
    backoff_s = 3.0e-3;
    per_packet_overhead_s = 11.0e-3;
    base_loss = 0.03;
    retries = 2;
  }

let wifi =
  {
    bitrate_bps = 5_500_000.;
    header_bytes = 34;
    payload_bytes = 1024;
    turnaround_s = 0.1e-3;
    backoff_s = 0.8e-3;
    per_packet_overhead_s = 0.3e-3;
    base_loss = 0.02;
    retries = 3;
  }

let packet_airtime l =
  (* framing + payload + MAC/OS processing time *)
  (Float.of_int (l.header_bytes + l.payload_bytes) *. 8. /. l.bitrate_bps)
  +. l.per_packet_overhead_s

let short_packet_airtime l ~bytes =
  (Float.of_int (l.header_bytes + bytes) *. 8. /. l.bitrate_bps)
  +. l.per_packet_overhead_s

let packets_of_bytes l bytes =
  if bytes <= 0 then 1
  else (bytes + l.payload_bytes - 1) / l.payload_bytes

let saturation_msgs_per_sec l = 1. /. packet_airtime l
